// Suite-level benchmarks: one testing.B benchmark per table/figure of
// the paper's evaluation. Each benchmark drives the same code paths the
// rpbreport tool uses, so `go test -bench=.` regenerates the raw
// numbers behind every artifact. Per-benchmark sub-benchmarks report
// seconds-of-kernel-time via b.ReportMetric in addition to ns/op.
//
// Scale note: these run at ScaleTest so the whole suite benches in
// minutes; use cmd/rpbreport -scale small|default for the full-size
// numbers recorded in EXPERIMENTS.md.
package repro

import (
	"io"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/report"
)

const benchThreads = 4

// BenchmarkTable1Patterns regenerates the Table 1 pattern census.
func BenchmarkTable1Patterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		report.Table1(&sb)
		if !strings.Contains(sb.String(), "sssp") {
			b.Fatal("census incomplete")
		}
	}
}

// BenchmarkTable2Graphs regenerates the Table 2 input statistics.
func BenchmarkTable2Graphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		report.Table2(&sb, bench.ScaleTest)
	}
}

// BenchmarkFig3Census regenerates the Fig 3 access-pattern distribution.
func BenchmarkFig3Census(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		report.Fig3(&sb)
	}
}

// benchPair measures a single bench-input pair under one variant and
// thread count, as the Fig 4 harness does.
func benchPair(b *testing.B, name, input string, v bench.Variant, threads int) {
	spec, err := bench.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	inst := spec.Make(input, bench.ScaleTest)
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		secs, err := bench.Measure(inst, v, threads, 1)
		if err != nil {
			b.Fatal(err)
		}
		total += secs
	}
	b.ReportMetric(total/float64(b.N), "kernel-s/op")
}

// BenchmarkFig4a: every bench-input pair, library vs direct, 1 thread.
func BenchmarkFig4a(b *testing.B) {
	core.SetMode(core.ModeUnchecked)
	for _, spec := range bench.All() {
		for _, input := range spec.Inputs {
			key := spec.Name + "-" + input
			b.Run(key+"/direct", func(b *testing.B) { benchPair(b, spec.Name, input, bench.VariantDirect, 1) })
			b.Run(key+"/rpb", func(b *testing.B) { benchPair(b, spec.Name, input, bench.VariantLibrary, 1) })
		}
	}
}

// BenchmarkFig4b: every bench-input pair at benchThreads threads.
func BenchmarkFig4b(b *testing.B) {
	core.SetMode(core.ModeUnchecked)
	for _, spec := range bench.All() {
		for _, input := range spec.Inputs {
			key := spec.Name + "-" + input
			b.Run(key+"/direct", func(b *testing.B) { benchPair(b, spec.Name, input, bench.VariantDirect, benchThreads) })
			b.Run(key+"/rpb", func(b *testing.B) { benchPair(b, spec.Name, input, bench.VariantLibrary, benchThreads) })
		}
	}
}

// BenchmarkFig5a: checked vs unchecked SngInd on bw, lrs, sa.
func BenchmarkFig5a(b *testing.B) {
	defer core.SetMode(core.ModeUnchecked)
	for _, name := range []string{"bw", "lrs", "sa"} {
		spec, _ := bench.Find(name)
		input := spec.Inputs[0]
		b.Run(name+"/unchecked", func(b *testing.B) {
			core.SetMode(core.ModeUnchecked)
			benchPair(b, name, input, bench.VariantLibrary, benchThreads)
		})
		b.Run(name+"/checked", func(b *testing.B) {
			core.SetMode(core.ModeChecked)
			benchPair(b, name, input, bench.VariantLibrary, benchThreads)
		})
	}
}

// BenchmarkFig5b: synchronized vs unchecked expressions.
func BenchmarkFig5b(b *testing.B) {
	defer core.SetMode(core.ModeUnchecked)
	pairs := []struct{ name, input string }{
		{"bw", "wiki"}, {"lrs", "wiki"}, {"sa", "wiki"},
		{"mis", "link"}, {"mm", "rmat"}, {"msf", "rmat"}, {"sf", "link"},
		{"hist", "exponential"}, {"isort", "exponential"},
	}
	for _, p := range pairs {
		b.Run(p.name+"-"+p.input+"/unchecked", func(b *testing.B) {
			core.SetMode(core.ModeUnchecked)
			benchPair(b, p.name, p.input, bench.VariantLibrary, benchThreads)
		})
		b.Run(p.name+"-"+p.input+"/synchronized", func(b *testing.B) {
			core.SetMode(core.ModeSynchronized)
			benchPair(b, p.name, p.input, bench.VariantLibrary, benchThreads)
		})
	}
}

// BenchmarkFig6 runs the appendix hash microbenchmark variants.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Fig6(io.Discard, report.Fig6Config{
			N: 1 << 18, TaskCap: 1 << 14, Threads: benchThreads, Reps: 1,
		})
	}
}
