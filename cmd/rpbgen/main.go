// rpbgen generates and summarizes the suite's synthetic inputs: the
// three graphs of Table 2, the Zipfian text, the exponential integer
// sequences and the Kuzmin point sets. It regenerates Table 2 with
// -stats, exports inputs in the original PBBS text formats with -out
// (so the C++ PBBS and Rust RPB can consume them), summarizes existing
// PBBS files with -in, and prints input samples otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbbsio"
	"repro/internal/report"
	"repro/internal/seqgen"
)

func main() {
	var (
		stats  = flag.Bool("stats", false, "print Table 2 graph statistics")
		scale  = flag.String("scale", "small", "input scale: test, small, or default")
		what   = flag.String("what", "all", "input family: graphs, text, seq, points, all")
		seed   = flag.Uint64("seed", 1, "generator seed")
		outDir = flag.String("out", "", "write inputs as PBBS-format files into this directory")
		inFile = flag.String("in", "", "summarize an existing PBBS AdjacencyGraph file and exit")
	)
	flag.Parse()

	var sc bench.Scale
	switch *scale {
	case "test":
		sc = bench.ScaleTest
	case "small":
		sc = bench.ScaleSmall
	case "default":
		sc = bench.ScaleDefault
	default:
		fmt.Fprintf(os.Stderr, "rpbgen: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err := pbbsio.ReadAdjacencyGraph(f)
		if err != nil {
			fatal(err)
		}
		fmt.Println(graph.ComputeStats(nil, filepath.Base(*inFile), g))
		return
	}

	if *stats {
		report.Table2(os.Stdout, sc)
		return
	}

	core.Run(func(w *core.Worker) {
		if *what == "graphs" || *what == "all" {
			for _, name := range graph.GraphInputs {
				g := graph.LoadUndirected(w, name, sc, *seed)
				fmt.Println(graph.ComputeStats(w, name, g))
				if *outDir != "" {
					writeFile(filepath.Join(*outDir, name+".adj"), func(f *os.File) error {
						return pbbsio.WriteAdjacencyGraph(f, g)
					})
					wg := graph.LoadUndirectedWeighted(w, name, sc, *seed)
					writeFile(filepath.Join(*outDir, name+".wadj"), func(f *os.File) error {
						return pbbsio.WriteWeightedAdjacencyGraph(f, wg)
					})
				}
			}
		}
		if *what == "text" || *what == "all" {
			n := bench.TextSize(sc)
			txt := seqgen.Text(w, n, *seed)
			fmt.Printf("text   n=%-9d sample=%q\n", n, string(txt[:min(60, len(txt))]))
			if *outDir != "" {
				writeFile(filepath.Join(*outDir, "wiki.txt"), func(f *os.File) error {
					_, err := f.Write(txt)
					return err
				})
			}
		}
		if *what == "seq" || *what == "all" {
			n := bench.SeqSize(sc)
			xs := seqgen.ExponentialInts(w, n, *seed)
			fmt.Printf("seq    n=%-9d mean=%.0f max=%d\n", n,
				float64(core.Sum(w, toInt64(w, xs)))/float64(n), core.Max(w, xs))
			if *outDir != "" {
				writeFile(filepath.Join(*outDir, "exponential.seq"), func(f *os.File) error {
					return pbbsio.WriteSequenceInt(f, xs)
				})
			}
		}
		if *what == "points" || *what == "all" {
			n := bench.PointCount(sc)
			pts := seqgen.KuzminPoints(w, n, *seed)
			fmt.Printf("points n=%-9d first=(%.3f, %.3f)\n", n, pts[0].X, pts[0].Y)
			if *outDir != "" {
				writeFile(filepath.Join(*outDir, "kuzmin.pts"), func(f *os.File) error {
					return pbbsio.WritePoints2D(f, pts)
				})
			}
		}
	})
}

func writeFile(path string, write func(*os.File) error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpbgen:", err)
	os.Exit(1)
}

func toInt64(w *core.Worker, xs []uint32) []int64 {
	return core.Tabulate(w, len(xs), func(i int) int64 { return int64(xs[i]) })
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
