package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, dir string, baseline map[string]map[string]float64) string {
	t.Helper()
	data, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateReportsAllRegressionsInOneRun pins the gate's diagnosability
// contract: a run with several regressing benchmarks (and a benchmark
// missing outright) surfaces every violation from a single invocation,
// sorted by name, so one CI log names everything that needs fixing.
func TestGateReportsAllRegressionsInOneRun(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), map[string]map[string]float64{
		"BenchmarkA": {"allocs_op": 0},
		"BenchmarkB": {"allocs_op": 10},
		"BenchmarkC": {"allocs_op": 5},
		"BenchmarkD": {"allocs_op": 2},
	})
	results := map[string]map[string]float64{
		"BenchmarkA": {"allocs_op": 50},  // regressed: 50 > 0*1.30+2
		"BenchmarkB": {"allocs_op": 100}, // regressed: 100 > 10*1.30+2
		"BenchmarkD": {"allocs_op": 2},   // clean
		// BenchmarkC missing from the run entirely
	}
	bad, err := runGate(path, results, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(bad), bad)
	}
	for i, wantSub := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"} {
		if !strings.Contains(bad[i], wantSub) {
			t.Errorf("violation[%d] = %q, want it to name %s", i, bad[i], wantSub)
		}
	}
	if !strings.Contains(bad[2], "missing from this run") {
		t.Errorf("violation[2] = %q, want a missing-benchmark report", bad[2])
	}
}

func TestGateTolerance(t *testing.T) {
	cases := []struct {
		old, new float64
		bad      bool
	}{
		{0, 0, false},
		{0, 2, false}, // exactly at the +2 slack
		{0, 3, true},
		{10, 15, false}, // 15 = 10*1.30+2, at the boundary
		{10, 16, true},
		{100, 132, false},
		{100, 133, true},
	}
	for _, c := range cases {
		if got := gateTolerance(c.old, c.new); got != c.bad {
			t.Errorf("gateTolerance(%v, %v) = %v, want %v", c.old, c.new, got, c.bad)
		}
	}
}

// TestGateBaselineAdd pins the first-appearance path: unknown
// benchmarks are appended to the baseline file and do not fail the
// gate, while known benchmarks are still gated in the same run.
func TestGateBaselineAdd(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), map[string]map[string]float64{
		"BenchmarkOld": {"allocs_op": 1},
	})
	results := map[string]map[string]float64{
		"BenchmarkOld": {"allocs_op": 90}, // still gated
		"BenchmarkNew": {"allocs_op": 40}, // first appearance: tracked, not gated
	}
	bad, err := runGate(path, results, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkOld") {
		t.Fatalf("violations = %v, want exactly the BenchmarkOld regression", bad)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var baseline map[string]map[string]float64
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatal(err)
	}
	if got := baseline["BenchmarkNew"]["allocs_op"]; got != 40 {
		t.Fatalf("BenchmarkNew not appended to baseline: %v", baseline)
	}

	// A second run of the new benchmark is now gated against the
	// appended entry.
	bad, err = runGate(path, map[string]map[string]float64{
		"BenchmarkOld": {"allocs_op": 1},
		"BenchmarkNew": {"allocs_op": 80},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkNew") {
		t.Fatalf("violations = %v, want exactly the BenchmarkNew regression", bad)
	}
}
