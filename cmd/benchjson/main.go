// benchjson converts `go test -bench` output on stdin into a JSON file
// mapping benchmark name → metrics (ns/op, B/op, allocs/op, and any
// custom b.ReportMetric units such as splits/op), while echoing the
// original output to stdout. It is the exporter behind `make
// bench-sched`, which records the scheduler fast-path microbenchmarks in
// BENCH_sched.json so regressions are visible in review and CI.
//
//	go test -bench . -benchmem ./internal/sched/ | go run ./cmd/benchjson -out BENCH_sched.json
//
// A FAIL anywhere in the stream (or a stream with no benchmark lines)
// makes benchjson exit non-zero so piped CI steps cannot silently pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkSchedJoin-8   10611117   112.2 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// stripProcSuffix removes the trailing -N go test appends when
// GOMAXPROCS>1, so names stay stable across machines. Only the exact
// current GOMAXPROCS value is stripped; sub-benchmark names that happen
// to end in a number (grain-64) are left alone.
func stripProcSuffix(name string) string {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 {
		return name
	}
	suffix := fmt.Sprintf("-%d", procs)
	return strings.TrimSuffix(name, suffix)
}

func main() {
	out := flag.String("out", "BENCH_sched.json", "output JSON path")
	flag.Parse()

	results := map[string]map[string]float64{}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.Contains(line, "FAIL") {
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		metrics := map[string]float64{}
		if iters, err := strconv.ParseFloat(m[2], 64); err == nil {
			metrics["iterations"] = iters
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := strings.NewReplacer("/", "_", "-", "_").Replace(fields[i+1])
			metrics[unit] = v
		}
		results[name] = metrics
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: FAIL seen in benchmark output")
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
