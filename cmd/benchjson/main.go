// benchjson converts `go test -bench` output on stdin into a JSON file
// mapping benchmark name → metrics (ns/op, B/op, allocs/op, and any
// custom b.ReportMetric units such as splits/op), while echoing the
// original output to stdout. It is the exporter behind `make
// bench-sched`, which records the scheduler fast-path microbenchmarks in
// BENCH_sched.json so regressions are visible in review and CI.
//
//	go test -bench . -benchmem ./internal/sched/ | go run ./cmd/benchjson -out BENCH_sched.json
//
// A FAIL anywhere in the stream (or a stream with no benchmark lines)
// makes benchjson exit non-zero so piped CI steps cannot silently pass.
//
// With -gate <baseline.json>, benchjson additionally diffs the run's
// allocs/op against a committed baseline and exits non-zero when any
// benchmark regresses past the tolerance (new > old*1.30 + 2 — the
// slack absorbs lazy-splitting noise on loaded CI hosts while catching
// every real "this hot path allocates again" regression) or when a
// baseline benchmark is missing from the run. This is the
// alloc-regression gate behind `make bench-mem-gate` (docs/MEMORY.md).
//
// -baseline-add (only with -gate) gives first-appearance benchmarks a
// clean landing: benchmarks present in the run but absent from the
// baseline are appended to the baseline file (and a missing baseline
// file is created from the run outright) instead of being silently
// untracked, so a new benchmark tier needs no manual baseline dance —
// the next gate run tracks it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkSchedJoin-8   10611117   112.2 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// stripProcSuffix removes the trailing -N go test appends when
// GOMAXPROCS>1, so names stay stable across machines. Only the exact
// current GOMAXPROCS value is stripped; sub-benchmark names that happen
// to end in a number (grain-64) are left alone.
func stripProcSuffix(name string) string {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 {
		return name
	}
	suffix := fmt.Sprintf("-%d", procs)
	return strings.TrimSuffix(name, suffix)
}

// gateTolerance reports whether a fresh allocs/op value regresses past
// the gate's tolerance relative to the baseline value.
func gateTolerance(old, new float64) bool {
	return new > old*1.30+2
}

// runGate compares the run's allocs/op against the baseline file and
// returns the list of violations. With baselineAdd, benchmarks the
// baseline does not know yet are appended to it (a missing baseline
// file counts as knowing none), so a first-appearance benchmark passes
// the gate and is tracked from then on.
func runGate(baselinePath string, results map[string]map[string]float64, baselineAdd bool) ([]string, error) {
	baseline := map[string]map[string]float64{}
	data, err := os.ReadFile(baselinePath)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &baseline); err != nil {
			return nil, fmt.Errorf("parse %s: %w", baselinePath, err)
		}
	case os.IsNotExist(err) && baselineAdd:
		// First run ever: the whole result set is first-appearance.
	default:
		return nil, err
	}
	if baselineAdd {
		added := 0
		for name, m := range results {
			if _, known := baseline[name]; !known {
				baseline[name] = m
				added++
			}
		}
		if added > 0 {
			out, err := json.MarshalIndent(baseline, "", "  ")
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(baselinePath, append(out, '\n'), 0o644); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "benchjson: gate: added %d first-appearance benchmark(s) to %s\n", added, baselinePath)
		}
	}
	var bad []string
	for name, oldM := range baseline {
		old, tracked := oldM["allocs_op"]
		if !tracked {
			continue
		}
		newM, ok := results[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: in baseline %s but missing from this run", name, baselinePath))
			continue
		}
		if new, ok := newM["allocs_op"]; ok && gateTolerance(old, new) {
			bad = append(bad, fmt.Sprintf("%s: allocs/op regressed %v -> %v (tolerance %.0f)",
				name, old, new, old*1.30+2))
		}
	}
	sort.Strings(bad)
	return bad, nil
}

func main() {
	out := flag.String("out", "BENCH_sched.json", "output JSON path")
	gate := flag.String("gate", "", "baseline JSON to diff allocs/op against; regressions past old*1.30+2 fail")
	baselineAdd := flag.Bool("baseline-add", false, "with -gate: append first-appearance benchmarks to the baseline instead of leaving them untracked")
	flag.Parse()

	results := map[string]map[string]float64{}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.Contains(line, "FAIL") {
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		metrics := map[string]float64{}
		if iters, err := strconv.ParseFloat(m[2], 64); err == nil {
			metrics["iterations"] = iters
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := strings.NewReplacer("/", "_", "-", "_").Replace(fields[i+1])
			metrics[unit] = v
		}
		results[name] = metrics
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: FAIL seen in benchmark output")
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)

	if *gate != "" {
		bad, err := runGate(*gate, results, *baselineAdd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %v\n", err)
			os.Exit(1)
		}
		if len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "benchjson: gate: %s\n", b)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d allocation regression(s) vs %s\n", len(bad), *gate)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate clean vs %s\n", *gate)
	}
}
