// rpb runs one benchmark of the suite under a chosen variant,
// expression mode, thread count and input scale, verifying the result —
// the per-benchmark driver of the reproduction.
//
// Usage:
//
//	rpb -bench sort [-input exponential] [-variant rpb|direct]
//	    [-mode unchecked|checked|synchronized] [-threads 4]
//	    [-scale test|small|default] [-reps 3] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to run (see -list)")
		input     = flag.String("input", "", "input name (default: the benchmark's first input)")
		variant   = flag.String("variant", "rpb", "rpb (library) or direct (hand-rolled baseline)")
		mode      = flag.String("mode", "unchecked", "unchecked, checked, or synchronized")
		threads   = flag.Int("threads", 4, "worker count (0 = run library variant sequentially)")
		scale     = flag.String("scale", "small", "input scale: test, small, or default")
		reps      = flag.Int("reps", 3, "repetitions (mean reported)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		dyn       = flag.Bool("dyn", false, "print per-pattern primitive invocation counts after the run")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-28s %s\n", "name", "benchmark", "inputs")
		for _, s := range bench.All() {
			fmt.Printf("%-8s %-28s %s\n", s.Name, s.Long, strings.Join(s.Inputs, ","))
		}
		return
	}
	if *benchName == "" {
		fmt.Fprintln(os.Stderr, "rpb: -bench is required (use -list to see the suite)")
		os.Exit(2)
	}
	spec, err := bench.Find(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpb:", err)
		os.Exit(2)
	}
	in := *input
	if in == "" {
		in = spec.Inputs[0]
	}
	ok := false
	for _, i := range spec.Inputs {
		if i == in {
			ok = true
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "rpb: %s has inputs %v, not %q\n", spec.Name, spec.Inputs, in)
		os.Exit(2)
	}

	var sc bench.Scale
	switch *scale {
	case "test":
		sc = bench.ScaleTest
	case "small":
		sc = bench.ScaleSmall
	case "default":
		sc = bench.ScaleDefault
	default:
		fmt.Fprintf(os.Stderr, "rpb: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	switch *mode {
	case "unchecked":
		core.SetMode(core.ModeUnchecked)
	case "checked":
		core.SetMode(core.ModeChecked)
	case "synchronized":
		core.SetMode(core.ModeSynchronized)
	default:
		fmt.Fprintf(os.Stderr, "rpb: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	v := bench.Variant(*variant)
	if v != bench.VariantLibrary && v != bench.VariantDirect {
		fmt.Fprintf(os.Stderr, "rpb: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	fmt.Printf("preparing %s-%s at scale %s...\n", spec.Name, in, *scale)
	inst := spec.Make(in, sc)
	if *dyn {
		core.ResetDynamicCounts()
		defer core.EnableDynamicCensus(core.EnableDynamicCensus(true))
	}
	secs, err := bench.Measure(inst, v, *threads, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpb:", err)
		os.Exit(1)
	}
	fmt.Printf("%s-%s variant=%s mode=%s threads=%d reps=%d: %.4fs (verified)\n",
		spec.Name, in, v, core.GetMode(), *threads, *reps, secs)
	if *dyn {
		counts := core.DynamicCounts()
		for _, p := range core.Patterns {
			fmt.Printf("  %-7s %d\n", p, counts[p])
		}
	}
}
