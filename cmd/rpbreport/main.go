// rpbreport regenerates the paper's tables and figures from live runs:
//
//	rpbreport -what table1|table2|table3|fig3|fig4|fig5a|fig5b|fig6|all
//	          [-scale test|small|default] [-threads N] [-reps N]
//	          [-benches sort,hist,...]
//
// Each output block names the paper artifact it reproduces and, where
// the paper reports a headline number, quotes it for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/report"
)

func main() {
	var (
		what    = flag.String("what", "all", "artifact: table1, table2, table3, fig3, fig4, fig5a, fig5b, fig6, dyncensus, fearreport, sched, mem, graph, coverage, certs, races, lifetimes, all")
		scale   = flag.String("scale", "small", "input scale: test, small, or default")
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "parallel thread count (the paper's 24-core point)")
		reps    = flag.Int("reps", 3, "repetitions per measurement")
		benches = flag.String("benches", "", "comma-separated benchmark subset for fig4 (default: all)")
	)
	flag.Parse()

	var sc bench.Scale
	switch *scale {
	case "test":
		sc = bench.ScaleTest
	case "small":
		sc = bench.ScaleSmall
	case "default":
		sc = bench.ScaleDefault
	default:
		fmt.Fprintf(os.Stderr, "rpbreport: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	var subset []string
	if *benches != "" {
		subset = strings.Split(*benches, ",")
	}

	out := os.Stdout
	run := func(name string, f func() error) {
		if *what != name && *what != "all" {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "rpbreport: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}

	run("table1", func() error { report.Table1(out); return nil })
	run("table2", func() error { report.Table2(out, sc); return nil })
	run("table3", func() error { report.Table3(out); return nil })
	run("fig3", func() error { report.Fig3(out); return nil })
	run("fig4", func() error {
		return report.Fig4(out, report.Fig4Config{
			Scale: sc, Threads: *threads, Reps: *reps, Benches: subset,
		})
	})
	run("fig5a", func() error {
		return report.Fig5a(out, report.Fig5Config{Scale: sc, Threads: *threads, Reps: *reps})
	})
	run("fig5b", func() error {
		return report.Fig5b(out, report.Fig5Config{Scale: sc, Threads: *threads, Reps: *reps})
	})
	run("fig6", func() error {
		report.Fig6(out, report.Fig6Config{Threads: *threads, Reps: *reps})
		return nil
	})
	run("dyncensus", func() error {
		return report.DynCensus(out, sc, *threads)
	})
	run("fearreport", func() error { return report.FearReport(out, "") })
	run("sched", func() error {
		counts := []int{1, 2, 4, 8}
		if *threads > 8 {
			counts = append(counts, *threads)
		}
		return report.SchedReport(out, sc, "sort", counts)
	})
	run("mem", func() error { return report.MemReport(out, "", "") })
	run("graph", func() error { return report.GraphReport(out, "", "", sc, *threads) })
	run("coverage", func() error { report.Coverage(out); return nil })
	run("certs", func() error {
		return report.Certs(out, report.Fig5Config{Scale: sc, Threads: *threads, Reps: *reps})
	})
	run("races", func() error { return report.RacesReport(out) })
	run("lifetimes", func() error { return report.LifetimesReport(out) })
}
