// Command rpblint is the suite's source-level fear checker: it
// re-derives the pattern census from source, cross-checks it against
// the DeclareSite registry, audits scared-construct containment, and
// runs race heuristics over parallel bodies. See docs/LINT.md.
//
// Usage:
//
//	rpblint [-root dir] [-json] [-census] [packages...]
//	rpblint -certify [-write-certs] [-certs file] [packages...]
//	rpblint -races [-write-races] [-races-file file] [packages...]
//
// Packages are directory patterns relative to the module root
// ("./...", "./internal/bench", "examples/..."); with none given the
// whole module is checked. -certify runs the offset-provenance prover
// over every certifiable call site and compares the result against the
// committed certificate file (-write-certs rewrites it instead).
// -races runs the parallel-write certification pass: every write to
// captured or escaping state inside a parallel region is classified
// (worker-local, atomic, lock-guarded, index-disjoint, or refused) and
// the result is compared against the committed lint-races.json. Exit
// status: 0 clean, 1 diagnostics found / stale or unexplained
// certificates, 2 analysis error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		root       = flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
		asJSON     = flag.Bool("json", false, "emit the full report (census, packages, diagnostics) as JSON")
		census     = flag.Bool("census", false, "print the static pattern census")
		verbose    = flag.Bool("v", false, "print the per-package scared-construct table")
		certify    = flag.Bool("certify", false, "run the offset-provenance certification pass")
		certsFile  = flag.String("certs", "lint-certs.json", "certificate file, relative to the module root")
		writeCerts = flag.Bool("write-certs", false, "with -certify: rewrite the certificate file instead of comparing")
		races      = flag.Bool("races", false, "run the parallel-write certification pass")
		racesFile  = flag.String("races-file", "lint-races.json", "race-certificate file, relative to the module root")
		writeRaces = flag.Bool("write-races", false, "with -races: rewrite the race-certificate file instead of comparing")
	)
	flag.Parse()

	r := *root
	if r == "" {
		var err error
		r, err = findRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
	}

	if *certify {
		runCertify(r, *certsFile, *writeCerts, flag.Args(), *asJSON)
		return
	}
	if *races {
		runRaces(r, *racesFile, *writeRaces, flag.Args(), *asJSON)
		return
	}

	rep, err := lint.Run(lint.Config{Root: r, Dirs: flag.Args(), CertsFile: certsPath(r, *certsFile)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpblint:", err)
		os.Exit(2)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
	} else {
		if *census {
			fmt.Print(rep.Census.String())
		}
		if *verbose {
			fmt.Printf("%-22s %-10s %5s %9s %7s %5s %4s %7s %7s\n",
				"package", "role", "files", "unchecked", "atomics", "sync", "go", "helpers", "engines")
			for _, p := range rep.Packages {
				fmt.Printf("%-22s %-10s %5d %9d %7d %5d %4d %7d %7d\n",
					p.Path, p.Role, p.Files, p.Unchecked, p.Atomics, p.SyncDecls, p.GoStmts, p.AWHelpers, p.Engines)
			}
		}
		for _, d := range rep.Diags {
			fmt.Println(d)
		}
		if len(rep.Diags) == 0 && !*census && !*verbose {
			fmt.Printf("rpblint: clean — %d census sites (%d irregular), %d packages\n",
				rep.Census.Total, rep.Census.Irregular, len(rep.Packages))
		}
	}
	if len(rep.Diags) > 0 {
		os.Exit(1)
	}
}

// certsPath resolves the -certs flag against the module root. The
// default value maps to the empty string so lint.Run treats a missing
// file as "no certificates" rather than an error; an explicit -certs
// must exist.
func certsPath(root, certs string) string {
	if certs == "lint-certs.json" {
		return ""
	}
	if filepath.IsAbs(certs) {
		return certs
	}
	return filepath.Join(root, certs)
}

// runCertify executes the certification pass, then either rewrites the
// certificate file (-write-certs) or byte-compares it against the
// committed one and fails when stale.
func runCertify(root, certs string, write bool, dirs []string, asJSON bool) {
	rep, err := lint.Certify(lint.Config{Root: root, Dirs: dirs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpblint:", err)
		os.Exit(2)
	}
	if asJSON {
		os.Stdout.Write(rep.Marshal())
	} else {
		fmt.Print(rep.String())
	}

	path := certs
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	if write {
		if err := os.WriteFile(path, rep.Marshal(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rpblint: wrote %s\n", path)
		return
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpblint: no committed certificate file %s (run rpblint -certify -write-certs)\n", path)
		os.Exit(1)
	}
	if !bytes.Equal(committed, rep.Marshal()) {
		fmt.Fprintf(os.Stderr, "rpblint: %s is stale (run rpblint -certify -write-certs and commit the result)\n", path)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rpblint: %s is current\n", path)
}

// runRaces executes the parallel-write certification pass, then either
// rewrites the race-certificate file (-write-races) or byte-compares it
// against the committed one. Unexplained refusals (no //lint:scared
// marker, in an enforced directory) fail regardless of staleness.
func runRaces(root, racesFile string, write bool, dirs []string, asJSON bool) {
	rep, err := lint.Races(lint.Config{Root: root, Dirs: dirs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpblint:", err)
		os.Exit(2)
	}
	if asJSON {
		os.Stdout.Write(rep.Marshal())
	} else {
		fmt.Print(rep.String())
	}

	fail := false
	if rep.Unexplained > 0 {
		fmt.Fprintf(os.Stderr, "rpblint: %d unexplained refusals in enforced directories (add //lint:scared markers or fix the writes)\n", rep.Unexplained)
		fail = true
	}

	path := racesFile
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	if write {
		if err := os.WriteFile(path, rep.Marshal(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rpblint: wrote %s\n", path)
		if fail {
			os.Exit(1)
		}
		return
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpblint: no committed race-certificate file %s (run rpblint -races -write-races)\n", path)
		os.Exit(1)
	}
	if !bytes.Equal(committed, rep.Marshal()) {
		fmt.Fprintf(os.Stderr, "rpblint: %s is stale (run rpblint -races -write-races and commit the result)\n", path)
		os.Exit(1)
	}
	if fail {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rpblint: %s is current\n", path)
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}
