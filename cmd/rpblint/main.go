// Command rpblint is the suite's source-level fear checker: it
// re-derives the pattern census from source, cross-checks it against
// the DeclareSite registry, audits scared-construct containment, and
// runs race heuristics over parallel bodies. See docs/LINT.md.
//
// Usage:
//
//	rpblint [-root dir] [-json] [-census] [packages...]
//
// Packages are directory patterns relative to the module root
// ("./...", "./internal/bench", "examples/..."); with none given the
// whole module is checked. Exit status: 0 clean, 1 diagnostics found,
// 2 analysis error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	var (
		root    = flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
		asJSON  = flag.Bool("json", false, "emit the full report (census, packages, diagnostics) as JSON")
		census  = flag.Bool("census", false, "print the static pattern census")
		verbose = flag.Bool("v", false, "print the per-package scared-construct table")
	)
	flag.Parse()

	r := *root
	if r == "" {
		var err error
		r, err = findRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
	}

	rep, err := lint.Run(lint.Config{Root: r, Dirs: flag.Args()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpblint:", err)
		os.Exit(2)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
	} else {
		if *census {
			fmt.Print(rep.Census.String())
		}
		if *verbose {
			fmt.Printf("%-22s %-10s %5s %9s %7s %5s %4s %7s %7s\n",
				"package", "role", "files", "unchecked", "atomics", "sync", "go", "helpers", "engines")
			for _, p := range rep.Packages {
				fmt.Printf("%-22s %-10s %5d %9d %7d %5d %4d %7d %7d\n",
					p.Path, p.Role, p.Files, p.Unchecked, p.Atomics, p.SyncDecls, p.GoStmts, p.AWHelpers, p.Engines)
			}
		}
		for _, d := range rep.Diags {
			fmt.Println(d)
		}
		if len(rep.Diags) == 0 && !*census && !*verbose {
			fmt.Printf("rpblint: clean — %d census sites (%d irregular), %d packages\n",
				rep.Census.Total, rep.Census.Irregular, len(rep.Packages))
		}
	}
	if len(rep.Diags) > 0 {
		os.Exit(1)
	}
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}
