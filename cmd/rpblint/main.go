// Command rpblint is the suite's source-level fear checker: it
// re-derives the pattern census from source, cross-checks it against
// the DeclareSite registry, audits scared-construct containment, and
// runs race and lifetime heuristics over parallel bodies. See
// docs/LINT.md.
//
// Usage:
//
//	rpblint [-root dir] [-json] [-census] [packages...]
//	rpblint -certify [-write-certify] [-certify-file file] [packages...]
//	rpblint -races [-write-races] [-races-file file] [packages...]
//	rpblint -lifetimes [-write-lifetimes] [-lifetimes-file file] [packages...]
//
// Packages are directory patterns relative to the module root
// ("./...", "./internal/bench", "examples/..."); with none given the
// whole module is checked.
//
// The three certification passes share one artifact discipline:
// -certify proves offset provenance (lint-certs.json), -races proves
// parallel-write exclusivity (lint-races.json), -lifetimes proves
// arena-checkout confinement (lint-lifetimes.json). Each renders its
// report, then either rewrites its committed artifact (-write-<pass>)
// or byte-compares against it and fails when stale; unexplained
// refusals in enforced directories fail regardless of staleness. Exit
// status: 0 clean, 1 diagnostics / stale or unexplained certificates,
// 2 analysis error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		root    = flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
		asJSON  = flag.Bool("json", false, "emit the full report as JSON")
		census  = flag.Bool("census", false, "print the static pattern census")
		verbose = flag.Bool("v", false, "print the per-package scared-construct table")

		certify   = flag.Bool("certify", false, "run the offset-provenance certification pass")
		races     = flag.Bool("races", false, "run the parallel-write certification pass")
		lifetimes = flag.Bool("lifetimes", false, "run the arena lifetime certification pass")

		certsFile = flag.String("certs", "lint-certs.json", "certificate file, relative to the module root")
		racesFile = flag.String("races-file", "lint-races.json", "race-certificate file, relative to the module root")
		lifeFile  = flag.String("lifetimes-file", "lint-lifetimes.json", "lifetime-certificate file, relative to the module root")

		writeCerts = flag.Bool("write-certs", false, "with -certify: rewrite the certificate file instead of comparing")
		writeRaces = flag.Bool("write-races", false, "with -races: rewrite the race-certificate file instead of comparing")
		writeLife  = flag.Bool("write-lifetimes", false, "with -lifetimes: rewrite the lifetime-certificate file instead of comparing")
	)
	flag.Parse()

	r := *root
	if r == "" {
		var err error
		r, err = findRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
	}
	cfg := lint.Config{Root: r, Dirs: flag.Args()}

	// The certification passes share one artifact code path; each
	// contributes only its runner and its refusal count.
	switch {
	case *certify:
		runPass(r, *certsFile, *writeCerts, *asJSON, "-certify -write-certs", func() (passOut, error) {
			rep, err := lint.Certify(cfg)
			if err != nil {
				return passOut{}, err
			}
			return passOut{artifact: rep.Marshal(), text: rep.String()}, nil
		})
		return
	case *races:
		runPass(r, *racesFile, *writeRaces, *asJSON, "-races -write-races", func() (passOut, error) {
			rep, err := lint.Races(cfg)
			if err != nil {
				return passOut{}, err
			}
			return passOut{artifact: rep.Marshal(), text: rep.String(), unexplained: rep.Unexplained}, nil
		})
		return
	case *lifetimes:
		runPass(r, *lifeFile, *writeLife, *asJSON, "-lifetimes -write-lifetimes", func() (passOut, error) {
			rep, err := lint.Lifetimes(cfg)
			if err != nil {
				return passOut{}, err
			}
			return passOut{artifact: rep.Marshal(), text: rep.String(), unexplained: rep.Unexplained}, nil
		})
		return
	}

	rep, err := lint.Run(lint.Config{Root: r, Dirs: flag.Args(), CertsFile: certsPath(r, *certsFile)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpblint:", err)
		os.Exit(2)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
	} else {
		if *census {
			fmt.Print(rep.Census.String())
		}
		if *verbose {
			fmt.Printf("%-22s %-10s %5s %9s %7s %5s %4s %7s %7s\n",
				"package", "role", "files", "unchecked", "atomics", "sync", "go", "helpers", "engines")
			for _, p := range rep.Packages {
				fmt.Printf("%-22s %-10s %5d %9d %7d %5d %4d %7d %7d\n",
					p.Path, p.Role, p.Files, p.Unchecked, p.Atomics, p.SyncDecls, p.GoStmts, p.AWHelpers, p.Engines)
			}
		}
		for _, d := range rep.Diags {
			fmt.Println(d)
		}
		if len(rep.Diags) == 0 && !*census && !*verbose {
			fmt.Printf("rpblint: clean — %d census sites (%d irregular), %d packages\n",
				rep.Census.Total, rep.Census.Irregular, len(rep.Packages))
		}
	}
	if len(rep.Diags) > 0 {
		os.Exit(1)
	}
}

// passOut is what one certification pass hands the shared plumbing.
type passOut struct {
	artifact    []byte // canonical committed-file bytes
	text        string // human rendering
	unexplained int    // unexplained refusals in enforced directories
}

// runPass executes one certification pass and applies the shared
// artifact discipline: print the report, then rewrite the committed
// file (write=true) or byte-compare against it and fail when stale.
// Unexplained refusals fail the run regardless of staleness.
func runPass(root, file string, write, asJSON bool, updateHint string, run func() (passOut, error)) {
	out, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpblint:", err)
		os.Exit(2)
	}
	if asJSON {
		os.Stdout.Write(out.artifact)
	} else {
		fmt.Print(out.text)
	}

	fail := false
	if out.unexplained > 0 {
		fmt.Fprintf(os.Stderr, "rpblint: %d unexplained refusals in enforced directories (add //lint:scared markers or fix the sites)\n", out.unexplained)
		fail = true
	}

	path := file
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	if write {
		if err := os.WriteFile(path, out.artifact, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rpblint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rpblint: wrote %s\n", path)
		if fail {
			os.Exit(1)
		}
		return
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpblint: no committed certificate file %s (run rpblint %s)\n", path, updateHint)
		os.Exit(1)
	}
	if !bytes.Equal(committed, out.artifact) {
		fmt.Fprintf(os.Stderr, "rpblint: %s is stale (run rpblint %s and commit the result)\n", path, updateHint)
		os.Exit(1)
	}
	if fail {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rpblint: %s is current\n", path)
}

// certsPath resolves the -certs flag against the module root. The
// default value maps to the empty string so lint.Run treats a missing
// file as "no certificates" rather than an error; an explicit -certs
// must exist.
func certsPath(root, certs string) string {
	if certs == "lint-certs.json" {
		return ""
	}
	if filepath.IsAbs(certs) {
		return certs
	}
	return filepath.Join(root, certs)
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}
