# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test lint race bench report figures inputs clean

build:
	$(GO) build ./...

test: lint
	$(GO) test ./...

# Source-level fear checker: static census + containment + race
# heuristics (docs/LINT.md). Shared by CI.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/rpblint ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at small scale.
report:
	$(GO) run ./cmd/rpbreport -what all -scale small

# The paper-scale (default) evaluation; slower.
figures:
	$(GO) run ./cmd/rpbreport -what all -scale default

# Export PBBS-format inputs for interchange with C++ PBBS / Rust RPB.
inputs:
	$(GO) run ./cmd/rpbgen -scale small -out ./inputs

clean:
	rm -rf ./inputs
