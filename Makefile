# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build check test lint certify certify-update races races-update lifetimes lifetimes-update race fuzz-smoke bench bench-sched bench-mem bench-mem-gate bench-graph bench-graph-gate bench-graph-xl bench-graph-xl-gate report figures inputs clean

build:
	$(GO) build ./...

test: lint
	$(GO) test ./...

# Everything the merge gate needs in one target: build, the full fear
# checker (vet + census), all three certification passes against their
# committed artifacts, then the test suite. CI runs exactly this.
check: build lint certify races lifetimes test

# Source-level fear checker: static census + containment + race
# heuristics (docs/LINT.md). Shared by CI.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/rpblint ./...

# Offset-provenance certification (docs/LINT.md "Certification"):
# re-derives every proof and fails if the committed lint-certs.json is
# stale. Shared by CI; certify-update regenerates the file.
certify:
	$(GO) run ./cmd/rpblint -certify

certify-update:
	$(GO) run ./cmd/rpblint -certify -write-certs

# Parallel-write certification (docs/LINT.md "Write certification"):
# classifies every shared write in every parallel region and fails on
# unexplained refusals in the enforced packages or a stale committed
# lint-races.json. Shared by CI; races-update regenerates the file.
races:
	$(GO) run ./cmd/rpblint -races

races-update:
	$(GO) run ./cmd/rpblint -races -write-races

# Arena-lifetime certification (docs/LINT.md "Lifetime certification"):
# classifies every arena checkout's lifetime and fails on unexplained
# refusals in the enforced packages or a stale committed
# lint-lifetimes.json. Shared by CI; lifetimes-update regenerates it.
lifetimes:
	$(GO) run ./cmd/rpblint -lifetimes

lifetimes-update:
	$(GO) run ./cmd/rpblint -lifetimes -write-lifetimes

race:
	$(GO) test -race ./...

# Codec fuzz smoke: run FuzzCodecRoundTrip — both varint generations,
# group-skip probes, shard assembly — for a few wall-clock seconds of
# mutation on top of the seed corpus. Not a soak; just enough for CI to
# catch an encoder change that breaks round-tripping on shapes the unit
# tests don't enumerate.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME) ./internal/graph/

bench:
	$(GO) test -bench=. -benchmem ./...

# Scheduler fast-path microbenchmarks (lazy splitting, join frames,
# park/wake) plus the check-elision microbenchmark (what a certificate
# buys; docs/LINT.md), exported to BENCH_sched.json as benchmark name
# -> ns/op, allocs/op, splits/op. CI runs this with BENCHTIME=1x as a
# smoke test so the fast path cannot silently rot; see docs/SCHED.md.
SCHED_BENCH = BenchmarkSchedFor|BenchmarkSchedJoin|BenchmarkForOverhead|BenchmarkJoinFib|BenchmarkSpawnJoinOverhead|BenchmarkGrainSweep|BenchmarkCheckElision|BenchmarkAtomicElision
BENCHTIME ?= 1s
bench-sched:
	$(GO) test -run xxx -bench '$(SCHED_BENCH)' -benchmem -benchtime $(BENCHTIME) ./internal/sched/ ./internal/core/ | $(GO) run ./cmd/benchjson -out BENCH_sched.json

# Steady-state allocation benchmarks (bench_mem_test.go): per-round
# allocs/op and B/op of every converted kernel and sequence primitive,
# exported to BENCH_mem.json. bench-mem-gate reruns them into a scratch
# file and diffs allocs/op against the committed BENCH_mem.json with
# `benchjson -gate` (tolerance new > old*1.30+2), failing on any
# regression — the alloc-regression gate in CI (docs/MEMORY.md).
MEM_BENCH = BenchmarkMem
bench-mem:
	$(GO) test -run xxx -bench '$(MEM_BENCH)' -benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson -out BENCH_mem.json

bench-mem-gate:
	$(GO) test -run xxx -bench '$(MEM_BENCH)' -benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson -out BENCH_mem.gate.json -gate BENCH_mem.json
	rm -f BENCH_mem.gate.json

# Graph-kernel wall-clock benchmarks (bench_graph_test.go): hybrid BFS,
# batched delta-stepping SSSP, and the degree-aware CSR builder at
# small scale, exported to BENCH_graph.json. The committed
# BENCH_graph_before.json is the pre-batching snapshot that `rpbreport
# -what graph` diffs against (docs/GRAPH.md). bench-graph-gate reruns
# into a scratch file and gates ns/op-adjacent allocs against the
# committed BENCH_graph.json, the same regression discipline as
# bench-mem-gate.
GRAPH_BENCH = BenchmarkGraph
bench-graph:
	$(GO) test -run xxx -bench '$(GRAPH_BENCH)' -benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson -out BENCH_graph.json

bench-graph-gate:
	$(GO) test -run xxx -bench '$(GRAPH_BENCH)' -benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson -out BENCH_graph.gate.json -gate BENCH_graph.json
	rm -f BENCH_graph.gate.json

# Beyond-LLC graph benchmarks (bench_graph_xl_test.go): the same BFS /
# SSSP kernels at ScaleLarge over plain and compressed CSR, reporting
# bytes/edge and MTEPS into BENCH_graph_xl.json — the compressed-CSR
# acceptance data (docs/GRAPH.md "Compressed CSR") — plus the
# BenchmarkXLGraphDecode* decode-bandwidth family (GB/s and edges/ns:
# plain stream vs v1 scalar varint vs group-varint, forward and
# transpose), which the BenchmarkXLGraph regex picks up so the gate's
# smoke row covers decode too. Building the inputs takes minutes,
# hence the long timeout; CI runs the gate variant at BENCHTIME=1x as
# a smoke test. -baseline-add lets a first-appearance benchmark enter
# the committed baseline instead of failing the gate.
XLGRAPH_BENCH = BenchmarkXLGraph
bench-graph-xl:
	$(GO) test -run xxx -bench '$(XLGRAPH_BENCH)' -benchmem -benchtime $(BENCHTIME) -timeout 90m . | $(GO) run ./cmd/benchjson -out BENCH_graph_xl.json

bench-graph-xl-gate:
	$(GO) test -run xxx -bench '$(XLGRAPH_BENCH)' -benchmem -benchtime $(BENCHTIME) -timeout 90m . | $(GO) run ./cmd/benchjson -out BENCH_graph_xl.gate.json -gate BENCH_graph_xl.json -baseline-add
	rm -f BENCH_graph_xl.gate.json

# Regenerate every table and figure at small scale.
report:
	$(GO) run ./cmd/rpbreport -what all -scale small

# The paper-scale (default) evaluation; slower.
figures:
	$(GO) run ./cmd/rpbreport -what all -scale default

# Export PBBS-format inputs for interchange with C++ PBBS / Rust RPB.
inputs:
	$(GO) run ./cmd/rpbgen -scale small -out ./inputs

clean:
	rm -rf ./inputs
