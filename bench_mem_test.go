// Steady-state allocation benchmarks: the memory-telemetry layer's data
// source (docs/MEMORY.md). Every BenchmarkMem* below measures allocs/op
// and B/op of a hot path in its steady state — pool created once, one
// warm-up run outside the timer, then b.N timed runs reusing per-worker
// scratch — so the numbers isolate per-round allocation behavior from
// pool and input setup. `make bench-mem` exports them to BENCH_mem.json
// via cmd/benchjson; CI diffs that file against the committed baseline
// with `benchjson -gate` so a hot path cannot silently start allocating
// again. BENCH_mem_before.json preserves the same benchmarks measured
// before the arena conversion, rendered side by side by
// `rpbreport -what mem`.
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/radix"
)

// memThreads is the pool size for the steady-state benchmarks. Two
// workers keep the concurrent machinery (stealing, lazy splits, arena
// checkout on more than one worker) engaged without drowning the
// numbers in split noise on the single-CPU CI host.
const memThreads = 2

// benchMemKernel measures one registered benchmark's library expression
// in its steady state: instance and pool built once, a warm-up round
// outside the timer, then b.N timed rounds (Reset + RunLibrary) on the
// same pool — the round structure under which per-worker scratch reuse
// is observable. The run is verified once after the timer stops.
func benchMemKernel(b *testing.B, name string) {
	spec, err := bench.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	core.SetMode(core.ModeUnchecked)
	inst := spec.Make(spec.Inputs[0], bench.ScaleSmall)
	pool := core.NewPool(memThreads)
	defer pool.Close()
	b.ReportAllocs()
	pool.Do(func(w *core.Worker) {
		runOnce := func() {
			if inst.Reset != nil {
				inst.Reset()
			}
			inst.RunLibrary(w)
		}
		runOnce() // warm-up: grow scratch, fill caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce()
		}
		b.StopTimer()
	})
	if inst.Verify != nil {
		if err := inst.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemKernelSort(b *testing.B)  { benchMemKernel(b, "sort") }
func BenchmarkMemKernelIsort(b *testing.B) { benchMemKernel(b, "isort") }
func BenchmarkMemKernelHist(b *testing.B)  { benchMemKernel(b, "hist") }
func BenchmarkMemKernelDedup(b *testing.B) { benchMemKernel(b, "dedup") }
func BenchmarkMemKernelMIS(b *testing.B)   { benchMemKernel(b, "mis") }
func BenchmarkMemKernelMSF(b *testing.B)   { benchMemKernel(b, "msf") }
func BenchmarkMemKernelSF(b *testing.B)    { benchMemKernel(b, "sf") }
func BenchmarkMemKernelSA(b *testing.B)    { benchMemKernel(b, "sa") }

// benchMemLoop runs body b.N times on one pool worker after an untimed
// warm-up call — the steady-state harness for primitive-level
// measurements.
func benchMemLoop(b *testing.B, body func(w *core.Worker)) {
	pool := core.NewPool(memThreads)
	defer pool.Close()
	b.ReportAllocs()
	pool.Do(func(w *core.Worker) {
		body(w) // warm-up
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body(w)
		}
		b.StopTimer()
	})
}

const memPrimN = 1 << 18

// BenchmarkMemScanExclusive: in-place exclusive sum scan. Steady-state
// target after the arena conversion: 0 allocs/op.
func BenchmarkMemScanExclusive(b *testing.B) {
	xs := make([]int32, memPrimN)
	benchMemLoop(b, func(w *core.Worker) {
		for i := range xs {
			xs[i] = 1
		}
		if got := core.ScanExclusive(w, xs); got != memPrimN {
			panic("scan total mismatch")
		}
	})
}

// BenchmarkMemScanInclusive: in-place inclusive sum scan.
func BenchmarkMemScanInclusive(b *testing.B) {
	xs := make([]int32, memPrimN)
	benchMemLoop(b, func(w *core.Worker) {
		for i := range xs {
			xs[i] = 1
		}
		core.ScanInclusive(w, xs)
	})
}

// BenchmarkMemScanInclusiveInto: destination-passing inclusive scan —
// source untouched, output in a caller-reused buffer. 0 allocs/op.
func BenchmarkMemScanInclusiveInto(b *testing.B) {
	src := make([]int32, memPrimN)
	for i := range src {
		src[i] = 1
	}
	dst := make([]int32, memPrimN)
	benchMemLoop(b, func(w *core.Worker) {
		if got := core.ScanInclusiveInto(w, dst, src); got != memPrimN {
			panic("scan total mismatch")
		}
	})
}

// BenchmarkMemPackIndexInto: index pack into a caller-reused
// destination. 0 allocs/op once the buffer has warmed.
func BenchmarkMemPackIndexInto(b *testing.B) {
	var idx []int32
	benchMemLoop(b, func(w *core.Worker) {
		idx = core.PackIndexInto(w, memPrimN, func(i int) bool { return i%3 == 0 }, idx)
		if len(idx) == 0 {
			panic("empty pack")
		}
	})
}

// BenchmarkMemPackIndex: index pack with a fresh output slice per call
// (the allocating form; contrast with BenchmarkMemPackIndexInto).
func BenchmarkMemPackIndex(b *testing.B) {
	benchMemLoop(b, func(w *core.Worker) {
		idx := core.PackIndex(w, memPrimN, func(i int) bool { return i%3 == 0 })
		if len(idx) == 0 {
			panic("empty pack")
		}
	})
}

// BenchmarkMemRadixSortPairs: one full radix sort of 32-bit keys with
// carried values — the counting passes and ping-pong buffers are the
// scratch the radix.Scratch conversion reuses.
func BenchmarkMemRadixSortPairs(b *testing.B) {
	keys := make([]uint64, memPrimN)
	vals := make([]int32, memPrimN)
	benchMemLoop(b, func(w *core.Worker) {
		for i := range keys {
			keys[i] = uint64(uint32(i * 2654435761))
			vals[i] = int32(i)
		}
		radix.SortPairs(w, keys, vals, 32)
	})
}
