// Package repro is a Go reproduction of "When Is Parallelism Fearless
// and Zero-Cost with Rust?" (SPAA 2024): the RPB benchmark suite, a
// Rayon-analog work-stealing parallel-patterns library with the paper's
// checked indirect-access adapters, the MultiQueue scheduler, and a
// harness regenerating every table and figure of the evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root package exists to host the suite-level benchmarks
// in bench_test.go; the implementation lives under internal/.
package repro
