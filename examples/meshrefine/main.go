// Mesh refinement: triangulate Kuzmin-distributed points and refine
// away skinny triangles with the speculative parallel engine — the
// paper's dr benchmark as an application, reporting mesh quality before
// and after.
package main

import (
	"flag"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/seqgen"
)

func main() {
	n := flag.Int("n", 2_000, "number of input points")
	bound := flag.Float64("bound", 1.5, "radius-edge ratio bound (sqrt(2) is Ruppert's classic)")
	flag.Parse()

	pts := seqgen.KuzminPoints(nil, *n, 11)
	maxR := 1.0
	for _, p := range pts {
		if r := math.Hypot(p.X, p.Y); r > maxR {
			maxR = r
		}
	}
	opt := geom.DefaultRefineOptions(len(pts))
	opt.Bound = *bound

	m := geom.NewMesh(pts, opt.MaxSteiner+8, maxR+1)
	inserted := m.Triangulate()
	fmt.Printf("triangulated %d points into %d triangles\n",
		inserted, len(m.LiveTriangles(false)))

	var before, after geom.QualityStats
	var stats geom.RefineStats
	core.Run(func(w *core.Worker) {
		before = m.Quality(w, opt.Bound)
		stats = m.RefineParallel(w, opt)
		after = m.Quality(w, opt.Bound)
	})
	fmt.Println("quality before:", before)
	fmt.Printf("refinement: %d Steiner points over %d rounds (%d reservation conflicts)\n",
		stats.Inserted, stats.Rounds, stats.Conflicts)
	fmt.Println("quality after: ", after)
	if err := m.CheckInvariants(); err != nil {
		fmt.Println("mesh invariants violated:", err)
		return
	}
	fmt.Println("mesh invariants hold (CCW orientation, mutual adjacency)")
}
