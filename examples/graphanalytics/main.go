// Graph analytics: generate an R-MAT graph, run MultiQueue-scheduled
// BFS and SSSP over it (the paper's Sec 6 benchmarks), and report
// reachability and distance statistics — the irregular, dynamically
// scheduled end of the taxonomy.
package main

import (
	"flag"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mq"
)

func main() {
	scale := flag.Int("scale", 14, "R-MAT scale (2^scale vertices)")
	workers := flag.Int("workers", 4, "MultiQueue worker threads")
	flag.Parse()

	var g *graph.WGraph
	core.Run(func(w *core.Worker) {
		edges := graph.RMAT(w, *scale, 8, 42)
		sym := graph.Symmetrize(w, edges)
		wedges := graph.AddWeights(w, sym, 100, 43)
		g = graph.BuildWCSR(w, int32(1<<*scale), wedges)
	})
	fmt.Printf("graph: %d vertices, %d directed edges\n", g.N, g.M())

	const inf = ^uint32(0)
	dist := make([]uint32, g.N)

	// BFS levels from vertex 0 over the MultiQueue.
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	mq.Process(*workers, []mq.Item{{Pri: 0, Val: 0}}, func(_ int, it mq.Item, push mq.Pusher) {
		v := int32(it.Val)
		d := uint32(it.Pri)
		if atomic.LoadUint32(&dist[v]) < d {
			return
		}
		for _, u := range g.Neighbors(v) {
			if core.WriteMinU32(&dist[u], d+1) {
				push.Push(mq.Item{Pri: uint64(d + 1), Val: uint64(u)})
			}
		}
	})
	reach, maxLevel := 0, uint32(0)
	for _, d := range dist {
		if d != inf {
			reach++
			if d > maxLevel {
				maxLevel = d
			}
		}
	}
	fmt.Printf("bfs:  %d reachable vertices, eccentricity %d\n", reach, maxLevel)

	// Weighted SSSP from vertex 0.
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	mq.Process(*workers, []mq.Item{{Pri: 0, Val: 0}}, func(_ int, it mq.Item, push mq.Pusher) {
		v := int32(it.Val)
		d := uint32(it.Pri)
		if atomic.LoadUint32(&dist[v]) < d {
			return
		}
		adj, wgt := g.WNeighbors(v)
		for i, u := range adj {
			nd := d + wgt[i]
			if core.WriteMinU32(&dist[u], nd) {
				push.Push(mq.Item{Pri: uint64(nd), Val: uint64(u)})
			}
		}
	})
	var sum uint64
	var far uint32
	for _, d := range dist {
		if d != inf {
			sum += uint64(d)
			if d > far {
				far = d
			}
		}
	}
	fmt.Printf("sssp: mean distance %.1f, max %d\n", float64(sum)/float64(reach), far)
}
