// Pipeline & futures: the two "absent from RPB" patterns (paper
// Sec 7.1) implemented as extensions of the core library. A three-stage
// text pipeline (generate -> hash -> fold) runs as a wavefront, and
// futures overlap independent suffix-array builds — the non-strict
// fork-join shape of Sec 6.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seqgen"
	"repro/internal/suffix"
)

func main() {
	core.Run(func(w *core.Worker) {
		// Pipeline: items flow through stages with wavefront parallelism;
		// each (stage, item) cell has exclusive access to its item.
		const items = 64
		const chunk = 4096
		texts := make([][]byte, items)
		sums := make([]uint64, items)
		var folded uint64
		core.Pipeline(w, items, []func(int){
			func(i int) { texts[i] = seqgen.Text(nil, chunk, uint64(i)) },
			func(i int) {
				var h uint64
				for _, b := range texts[i] {
					h = seqgen.Hash64(h ^ uint64(b))
				}
				sums[i] = h
			},
			func(i int) { folded ^= sums[i] }, // stage 3 is sequential-safe
		})
		fmt.Printf("pipeline folded %d chunks into %#x\n", items, folded)

		// Futures: kick off two independent suffix arrays, then combine.
		left := core.Async(w, func(w *core.Worker) []int32 {
			return suffix.Array(w, seqgen.Text(w, 50_000, 1))
		})
		right := core.Async(w, func(w *core.Worker) []int32 {
			return suffix.Array(w, seqgen.Text(w, 50_000, 2))
		})
		l, r := left.Wait(w), right.Wait(w)
		fmt.Printf("futures: built suffix arrays of %d and %d suffixes concurrently\n", len(l), len(r))
	})
}
