// Quickstart: the parallel-patterns library in ten lines of use — a
// parallel map (Stride), a reduction (RO), a parallel sort (D&C) and a
// checked indirect scatter (SngInd), mirroring the paper's Listings 3,
// 4 and 6.
package main

import (
	"fmt"

	"repro/internal/core"
)

// descending returns the reversing permutation [n-1, ..., 0]. The
// certifier's interprocedural summary proves the returned slice is a
// permutation of [0, n), so scatters through it are certified at the
// call sites below even though the fill happens in here.
func descending(n int) []int32 {
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(n - 1 - i)
	}
	return out
}

func main() {
	core.Run(func(w *core.Worker) {
		// Stride: square every element in place (Listing 4(e)).
		v := core.Tabulate(w, 1_000_000, func(i int) int64 { return int64(i % 1000) })
		core.ForEachIdx(w, v, 0, func(_ int, x *int64) { *x *= *x })

		// RO: reduce without mutating shared state (Listing 3(c)).
		sum := core.Sum(w, v)
		fmt.Println("sum of squares:", sum)

		// D&C: parallel merge sort (Listing 9).
		core.Sort(w, v)
		fmt.Println("sorted:", core.IsSorted(w, v, func(a, b int64) bool { return a < b }))

		// SngInd: scatter through an offsets permutation with the
		// run-time uniqueness check (Listing 6(f)).
		out := make([]int64, 8)
		offsets := descending(8)
		err := core.IndForEach(w, out, offsets, func(i int, slot *int64) { *slot = int64(i) })
		fmt.Println("reversed scatter:", out, "err:", err)

		// The certifier proves the same property statically (rpblint
		// -certify: offsets certify via the descending summary), so the
		// unchecked variant is Fearless under certificate.
		core.IndForEachUnchecked(w, out, offsets, func(i int, slot *int64) { *slot = int64(7 - i) })
		fmt.Println("certified scatter:", out)

		// A planted duplicate is caught by the run-time check, not
		// raced — and the certifier refuses the site (literal offsets
		// are not modeled), so the check correctly stays.
		dup := []int32{7, 6, 5, 4, 3, 2, 1, 0}
		dup[3] = 7
		err = core.IndForEach(w, out, dup, func(i int, slot *int64) { *slot = int64(i) })
		fmt.Println("planted duplicate detected:", err)
	})
}
