// Text indexing: build a suffix array over generated Zipfian text, find
// the longest repeated substring, and round-trip a Burrows–Wheeler
// transform — the paper's text benchmarks (sa, lrs, bw) as an
// application.
package main

import (
	"bytes"
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/seqgen"
	"repro/internal/suffix"
)

func main() {
	n := flag.Int("n", 200_000, "text length in bytes")
	checked := flag.Bool("checked", false, "use run-time-checked SngInd scatters (Comfortable, slower)")
	flag.Parse()

	core.Run(func(w *core.Worker) {
		text := seqgen.Text(w, *n, 7)
		fmt.Printf("text: %d bytes, sample %q...\n", len(text), string(text[:40]))

		sa := suffix.ArrayOpts(w, text, *checked)
		fmt.Printf("suffix array built (checked=%v); smallest suffix starts at %d\n", *checked, sa[0])

		lcp := suffix.LCP(text, sa)
		best := core.MaxIndex(w, lcp)
		l := int(lcp[best])
		at1, at2 := sa[best], sa[best+1]
		snippet := string(text[at1 : at1+int32(min(l, 50))])
		fmt.Printf("longest repeated substring: %d bytes at %d and %d: %q...\n", l, at1, at2, snippet)

		bwt := suffix.BWTEncode(w, text)
		decoded := suffix.BWTDecodeOpts(w, bwt, *checked)
		fmt.Printf("bwt round-trip: %v (%d bytes)\n", bytes.Equal(decoded, text), len(bwt))
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
