// Wordcount: a downstream-style application composed from the suite's
// parts — parallel tokenization (Block over byte chunks with boundary
// stitching), concurrent frequency counting (the AW hash table), and a
// parallel sort of the results (D&C). Reads a file if given, else
// generates Zipfian text.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/seqgen"
)

// wordID packs a short lowercase word into a uint64 key (up to 8
// bytes; longer words hash). It keeps the hot path allocation-free.
func wordID(word []byte) uint64 {
	if len(word) <= 8 {
		var k uint64
		for _, b := range word {
			k = k<<8 | uint64(b)
		}
		return k
	}
	h := uint64(len(word))
	for _, b := range word {
		h = seqgen.Hash64(h ^ uint64(b))
	}
	return h | 1<<63 // mark hashed keys so they cannot collide with packed ones
}

func isLetter(b byte) bool { return b >= 'a' && b <= 'z' }

func main() {
	path := flag.String("file", "", "text file to count (default: generated text)")
	n := flag.Int("n", 2_000_000, "generated text length when no file is given")
	top := flag.Int("top", 10, "how many top words to print")
	flag.Parse()

	var text []byte
	if *path != "" {
		var err error
		text, err = os.ReadFile(*path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wordcount:", err)
			os.Exit(1)
		}
	}

	core.Run(func(w *core.Worker) {
		if text == nil {
			text = seqgen.Text(w, *n, 123)
		}
		counts := hashtable.NewCountMap(1 << 16)

		// Tokenize chunk-parallel: each chunk counts the words that
		// *start* inside it, extending across the boundary as needed, so
		// every word is counted exactly once (Block + AW).
		const chunkSize = 1 << 15
		core.Chunks(w, text, chunkSize, func(ci int, chunk []byte) {
			base := ci * chunkSize
			i := 0
			// Skip a word that started in the previous chunk.
			if base > 0 && isLetter(text[base-1]) {
				for i < len(chunk) && isLetter(chunk[i]) {
					i++
				}
			}
			for i < len(chunk) {
				if !isLetter(chunk[i]) {
					i++
					continue
				}
				start := base + i
				end := start
				for end < len(text) && isLetter(text[end]) {
					end++
				}
				counts.InsertAdd(wordID(text[start:end]), 1)
				i = end - base
			}
		})

		// Extract (key, count) pairs from the table slots and sort by
		// count descending (D&C).
		type kc struct {
			key   uint64
			count int64
		}
		idx := core.PackIndex(w, counts.Capacity(), func(i int) bool {
			_, _, ok := counts.Slot(i)
			return ok
		})
		pairs := make([]kc, len(idx))
		core.ForRange(w, 0, len(idx), 0, func(i int) {
			k, c, _ := counts.Slot(int(idx[i]))
			pairs[i] = kc{key: k, count: c}
		})
		core.SortBy(w, pairs, func(a, b kc) bool {
			if a.count != b.count {
				return a.count > b.count
			}
			return a.key < b.key
		})

		unpack := func(k uint64) string {
			if k>>63 == 1 {
				return fmt.Sprintf("<long:%x>", k)
			}
			var buf [8]byte
			n := 0
			for k > 0 {
				buf[7-n] = byte(k)
				k >>= 8
				n++
			}
			return string(buf[8-n:])
		}
		total := core.Reduce(w, pairs, int64(0),
			func(p kc) int64 { return p.count },
			func(a, b int64) int64 { return a + b })
		fmt.Printf("%d words, %d distinct\n", total, len(pairs))
		for i := 0; i < *top && i < len(pairs); i++ {
			fmt.Printf("%8d  %s\n", pairs[i].count, unpack(pairs[i].key))
		}
	})
}
