// Steady-state graph-kernel benchmarks: the data source behind
// BENCH_graph.json (docs/GRAPH.md). Every BenchmarkGraph* measures the
// wall-clock and allocation steady state of a MultiQueue-scheduled (or
// direction-optimizing) graph kernel: instance and pool built once, one
// warm-up round outside the timer, then b.N timed rounds reusing the
// instance's persistent frontiers and scratch. `make bench-graph`
// exports them via cmd/benchjson; CI reruns them with `benchjson -gate`
// against the committed BENCH_graph.json so the graph hot paths cannot
// silently start allocating again. BENCH_graph_before.json preserves
// the same benchmarks measured before the batched-MultiQueue /
// direction-optimizing rework, rendered side by side by
// `rpbreport -what graph`.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
)

// benchGraphKernel measures one registered graph benchmark's library
// expression in its steady state at GOMAXPROCS workers — the
// configuration of the ≥1.5x bench-graph acceptance gate.
func benchGraphKernel(b *testing.B, name, input string) {
	spec, err := bench.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	core.SetMode(core.ModeUnchecked)
	inst := spec.Make(input, bench.ScaleSmall)
	pool := core.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	b.ReportAllocs()
	pool.Do(func(w *core.Worker) {
		runOnce := func() {
			if inst.Reset != nil {
				inst.Reset()
			}
			inst.RunLibrary(w)
		}
		runOnce() // warm-up: grow persistent frontiers and scratch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce()
		}
		b.StopTimer()
	})
	if err := inst.Verify(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGraphBFSRmat(b *testing.B)  { benchGraphKernel(b, "bfs", graph.InputRMAT) }
func BenchmarkGraphBFSLink(b *testing.B)  { benchGraphKernel(b, "bfs", graph.InputLink) }
func BenchmarkGraphBFSRoad(b *testing.B)  { benchGraphKernel(b, "bfs", graph.InputRoad) }
func BenchmarkGraphSSSPRmat(b *testing.B) { benchGraphKernel(b, "sssp", graph.InputRMAT) }
func BenchmarkGraphSSSPLink(b *testing.B) { benchGraphKernel(b, "sssp", graph.InputLink) }
func BenchmarkGraphSSSPRoad(b *testing.B) { benchGraphKernel(b, "sssp", graph.InputRoad) }

func BenchmarkGraphCCRmat(b *testing.B)    { benchGraphKernel(b, "cc", graph.InputRMAT) }
func BenchmarkGraphCCLink(b *testing.B)    { benchGraphKernel(b, "cc", graph.InputLink) }
func BenchmarkGraphCCRoad(b *testing.B)    { benchGraphKernel(b, "cc", graph.InputRoad) }
func BenchmarkGraphPRRmat(b *testing.B)    { benchGraphKernel(b, "pr", graph.InputRMAT) }
func BenchmarkGraphPRLink(b *testing.B)    { benchGraphKernel(b, "pr", graph.InputLink) }
func BenchmarkGraphPRRoad(b *testing.B)    { benchGraphKernel(b, "pr", graph.InputRoad) }
func BenchmarkGraphTCRmat(b *testing.B)    { benchGraphKernel(b, "tc", graph.InputRMAT) }
func BenchmarkGraphTCLink(b *testing.B)    { benchGraphKernel(b, "tc", graph.InputLink) }
func BenchmarkGraphTCRoad(b *testing.B)    { benchGraphKernel(b, "tc", graph.InputRoad) }
func BenchmarkGraphKCoreRmat(b *testing.B) { benchGraphKernel(b, "kcore", graph.InputRMAT) }
func BenchmarkGraphKCoreLink(b *testing.B) { benchGraphKernel(b, "kcore", graph.InputLink) }
func BenchmarkGraphKCoreRoad(b *testing.B) { benchGraphKernel(b, "kcore", graph.InputRoad) }

// BenchmarkGraphPRRmatCompressed is the ISSUE-10 headline row at the
// cache-resident tier: the identical pull iteration gathering over the
// shared-pool compressed transpose instead of plain CSR rows (the XL
// tier repeats the pair beyond LLC).
func BenchmarkGraphPRRmatCompressed(b *testing.B) {
	core.SetMode(core.ModeUnchecked)
	g := graph.LoadUndirectedSorted(nil, graph.InputRMAT, bench.ScaleSmall, 0x9a6)
	var cb graph.Builder
	cg := cb.Compress(nil, g)
	ctg := cb.CompressTranspose(nil, g)
	k := bench.NewPRKernel(cg, ctg)
	k.SetWant(bench.PROracle(cg, ctg, 20))
	pool := core.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	b.ReportAllocs()
	pool.Do(func(w *core.Worker) {
		k.Reset()
		k.Run(w) // warm-up: grow arena scratch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Reset()
			k.Run(w)
		}
		b.StopTimer()
	})
	if err := k.Verify(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGraphBuildCSR measures the steady state of CSR construction
// on the rmat edge list — degree count, offset scan, and edge scatter —
// through a reused graph.Builder, whose buffers grow on the warm-up
// build and are checked out again on every later round.
func BenchmarkGraphBuildCSR(b *testing.B) {
	core.SetMode(core.ModeUnchecked)
	pool := core.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	b.ReportAllocs()
	pool.Do(func(w *core.Worker) {
		edges := graph.RMAT(w, 14, 6, 0xc5a)
		sym := graph.Symmetrize(w, edges)
		n := int32(1 << 14)
		var bld graph.Builder
		g := bld.Build(w, n, sym)
		if g.M() == 0 {
			b.Fatal("empty graph")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g = bld.Build(w, n, sym)
		}
		b.StopTimer()
		if g.N != n {
			b.Fatal("bad build")
		}
	})
}
