package sched

// Tests and benchmarks for the demand-driven fast path: lazy splitting
// in For, allocation-free join frames, and the contention-free
// park/wake protocol.

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// An uncontended single-worker For must degenerate to a sequential loop:
// no lazy splits, no spawned subrange tasks — O(1) scheduler work for
// 1e6 elements instead of the eager splitter's n/grain tasks.
func TestUncontendedForSpawnsO1(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	const n = 1_000_000
	var sum int64
	p.Do(func(w *Worker) {
		w.For(0, n, 0, func(_ *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				sum += int64(i)
			}
		})
	})
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	var splits, executed int64
	for _, s := range p.Stats() {
		splits += s.SplitsSpawned
		executed += s.Executed
	}
	if splits != 0 {
		t.Fatalf("uncontended 1-worker For spawned %d splits, want 0", splits)
	}
	// Only the Do body itself should have been executed as a task.
	if executed > 2 {
		t.Fatalf("executed %d tasks for an uncontended For, want <= 2", executed)
	}
}

// waitParked blocks until at least k workers of p are parked, so tests
// can establish observable demand deterministically (on a 1-CPU host the
// fresh worker goroutines may otherwise not have run yet).
func waitParked(t *testing.T, p *Pool, k int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.nparked.Load() < k {
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers parked, want %d", p.nparked.Load(), k)
		}
		time.Sleep(time.Millisecond)
	}
}

// With idle workers present, the lazy splitter must engage: splits are
// spawned and the demand telemetry observes them.
func TestLazySplitEngagesUnderDemand(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	waitParked(t, p, 4)
	const n = 1 << 16
	var sum atomic.Int64
	p.Do(func(w *Worker) {
		w.For(0, n, 64, func(_ *Worker, lo, hi int) {
			local := int64(0)
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
	})
	if want := int64(n) * (n - 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	var splits int64
	for _, s := range p.Stats() {
		splits += s.SplitsSpawned
	}
	if splits == 0 {
		t.Fatal("no lazy splits spawned despite 3 idle workers")
	}
	// The point of lazy splitting: far fewer tasks than eager n/grain
	// subdivision (n/grain = 1024 leaves here).
	if splits > 256 {
		t.Fatalf("%d splits spawned; lazy splitter should stay well under n/grain = %d", splits, n/64)
	}
}

// WakeSkips must count spawns that skipped the wake path: on a
// single-worker pool nobody is ever parked during a spawn.
func TestWakeSkipTelemetry(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var ran atomic.Int64
	p.Do(func(w *Worker) {
		for i := 0; i < 100; i++ {
			w.SpawnTask(func(*Worker) { ran.Add(1) })
		}
		w.HelpUntil(func() bool { return ran.Load() == 100 })
	})
	var skips int64
	for _, s := range p.Stats() {
		skips += s.WakeSkips
	}
	if skips < 100 {
		t.Fatalf("WakeSkips = %d, want >= 100 (no worker can be parked during these spawns)", skips)
	}
}

// Overflow spills must be visible in the telemetry and lose no tasks.
func TestOverflowTelemetry(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	const n = dequeCapacity + 100
	var done atomic.Int64
	p.Do(func(w *Worker) {
		for i := 0; i < n; i++ {
			w.SpawnTask(func(*Worker) { done.Add(1) })
		}
		w.HelpUntil(func() bool { return done.Load() == n })
	})
	var overflows int64
	for _, s := range p.Stats() {
		overflows += s.Overflows
	}
	if overflows < 100 {
		t.Fatalf("Overflows = %d, want >= 100 after spawning %d tasks through a %d-slot deque", overflows, n, dequeCapacity)
	}
}

// A panic in a branch that was genuinely stolen by another worker must
// still surface as a *TaskPanic at the fork point. The fa branch spins
// until the thief has started fb, so the test deterministically
// exercises the stolen-frame path (fb can only start on a thief while fa
// is still running).
func TestPanicPropagatesFromStolenBranch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		r := recover()
		tp, ok := r.(*TaskPanic)
		if !ok || tp.Value != "stolen-fb" {
			t.Fatalf("recovered %v, want TaskPanic(stolen-fb)", r)
		}
	}()
	var started atomic.Bool
	p.Do(func(w *Worker) {
		w.Join(
			func(*Worker) {
				for !started.Load() {
					runtime.Gosched()
				}
			},
			func(*Worker) {
				started.Store(true)
				panic("stolen-fb")
			},
		)
	})
	t.Fatal("Join returned despite stolen branch panicking")
}

// Join frames are cached and reused per nesting depth; a panicking Join
// must leave its frame clean for the next Join at the same depth.
func TestJoinFrameReuseAfterPanic(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	p.Do(func(w *Worker) {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Error("no panic from first Join")
				}
			}()
			w.Join(func(*Worker) {}, func(*Worker) { panic("poison") })
		}()
		// Same depth, same frame: must run cleanly with no stale panic.
		var a, b bool
		w.Join(func(*Worker) { a = true }, func(*Worker) { b = true })
		if !a || !b {
			t.Errorf("reused frame incomplete: a=%v b=%v", a, b)
		}
		if w.joinDepth != 0 {
			t.Errorf("joinDepth = %d after balanced Joins, want 0", w.joinDepth)
		}
		for d, f := range w.frames {
			if f.fb != nil || f.tp.Load() != nil {
				t.Errorf("frame %d retains state after release", d)
			}
		}
	})
}

// Stress the announce/re-check parking protocol against concurrent
// publishers: many alternating bursts from several goroutines must never
// strand a task or deadlock a parked worker. Sized to run under -race.
func TestParkWakeStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const goroutines = 4
	const rounds = 30
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for r := 0; r < rounds; r++ {
				var n atomic.Int64
				p.Do(func(w *Worker) {
					w.For(0, 500, 7, func(_ *Worker, lo, hi int) {
						n.Add(int64(hi - lo))
					})
				})
				if n.Load() != 500 {
					t.Errorf("round %d: covered %d of 500", r, n.Load())
					return
				}
				// Idle gap so workers park between bursts.
				runtime.Gosched()
			}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
}

// Stress join-frame reuse across depths with concurrent stealing: a
// nested fork tree where every level's branch can be stolen. Sized to
// run under -race.
func TestJoinFrameStressNested(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var leaves atomic.Int64
	var rec func(w *Worker, depth int)
	rec = func(w *Worker, depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		w.Join(
			func(w *Worker) { rec(w, depth-1) },
			func(w *Worker) { rec(w, depth-1) },
		)
	}
	for round := 0; round < 20; round++ {
		leaves.Store(0)
		p.Do(func(w *Worker) { rec(w, 8) })
		if leaves.Load() != 256 {
			t.Fatalf("round %d: %d leaves, want 256", round, leaves.Load())
		}
	}
}

// BenchmarkSchedJoin measures the unstolen Join fast path in isolation:
// a single worker forking and joining pre-built no-op branches. The
// acceptance bar is 0 allocs/op — the join frame, latch, and panic slot
// all ride the per-worker frame cache.
func BenchmarkSchedJoin(b *testing.B) {
	p := NewPool(1)
	defer p.Close()
	fa := func(*Worker) {}
	fb := func(*Worker) {}
	b.ReportAllocs()
	b.ResetTimer()
	p.Do(func(w *Worker) {
		for i := 0; i < b.N; i++ {
			w.Join(fa, fb)
		}
	})
}

// BenchmarkSchedFor measures an uncontended parallel loop end to end
// (including Pool.Do submission) and reports how many split tasks the
// lazy splitter spawned per op — ~0 on a single-worker pool, versus
// n/grain for an eager splitter.
func BenchmarkSchedFor(b *testing.B) {
	p := NewPool(1)
	defer p.Close()
	data := make([]int64, 1<<20)
	var before int64
	for _, s := range p.Stats() {
		before += s.SplitsSpawned
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Do(func(w *Worker) {
			w.For(0, len(data), 0, func(_ *Worker, lo, hi int) {
				for j := lo; j < hi; j++ {
					data[j]++
				}
			})
		})
	}
	b.StopTimer()
	var after int64
	for _, s := range p.Stats() {
		after += s.SplitsSpawned
	}
	b.ReportMetric(float64(after-before)/float64(b.N), "splits/op")
}
