package sched

// Tests for the allocation-free ForBody path: coverage and correctness
// under forced splitting, zero-allocation steady state, panic
// propagation, and frame reuse across nesting depths.

import (
	"sync/atomic"
	"testing"
)

// markBody marks each visited index; concurrent-safe via atomics so
// overlap (a double visit) is detected exactly.
type markBody struct {
	seen []atomic.Int32
}

func (m *markBody) RunRange(_ *Worker, lo, hi int) {
	for i := lo; i < hi; i++ {
		m.seen[i].Add(1)
	}
}

func TestForBodyCoversRangeOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 100_000
	body := &markBody{seen: make([]atomic.Int32, n)}
	p.Do(func(w *Worker) {
		w.ForBody(0, n, 64, body)
	})
	for i := range body.seen {
		if got := body.seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, got)
		}
	}
}

func TestForBodyEmptyAndReversedRange(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	body := &markBody{seen: make([]atomic.Int32, 8)}
	p.Do(func(w *Worker) {
		w.ForBody(3, 3, 0, body)
		w.ForBody(5, 2, 0, body)
	})
	for i := range body.seen {
		if got := body.seen[i].Load(); got != 0 {
			t.Fatalf("index %d visited %d times on empty ranges, want 0", i, got)
		}
	}
}

// splitHungryBody forces splitting by making shouldSplit's demand signal
// fire: it runs on a multi-worker pool where the other workers park and
// raid, and uses a tiny grain over a large range.
func TestForBodySplitsUnderDemand(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	waitParked(t, p, 3)
	const n = 1 << 16
	body := &markBody{seen: make([]atomic.Int32, n)}
	p.Do(func(w *Worker) {
		w.ForBody(0, n, 16, body)
	})
	for i := range body.seen {
		if got := body.seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, got)
		}
	}
	var splits int64
	for _, s := range p.Stats() {
		splits += s.SplitsSpawned
	}
	if splits == 0 {
		t.Fatalf("ForBody with parked workers spawned 0 splits, want > 0")
	}
}

// sumBody accumulates into a per-instance total with atomics.
type sumBody struct {
	total atomic.Int64
}

func (s *sumBody) RunRange(_ *Worker, lo, hi int) {
	var t int64
	for i := lo; i < hi; i++ {
		t += int64(i)
	}
	s.total.Add(t)
}

// nestBody runs a nested ForBody per outer range to exercise forFrame
// reuse across depths.
type nestBody struct {
	inner *sumBody
	width int
}

func (n *nestBody) RunRange(w *Worker, lo, hi int) {
	for i := lo; i < hi; i++ {
		w.ForBody(0, n.width, 8, n.inner)
	}
}

func TestForBodyNestedFrameReuse(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const outer, width = 64, 1024
	inner := &sumBody{}
	body := &nestBody{inner: inner, width: width}
	p.Do(func(w *Worker) {
		w.ForBody(0, outer, 4, body)
	})
	want := int64(outer) * int64(width) * int64(width-1) / 2
	if got := inner.total.Load(); got != want {
		t.Fatalf("nested ForBody sum = %d, want %d", got, want)
	}
}

// panicBody panics at one specific index.
type panicBody struct {
	at int
}

func (p *panicBody) RunRange(_ *Worker, lo, hi int) {
	for i := lo; i < hi; i++ {
		if i == p.at {
			panic("forbody boom")
		}
	}
}

func TestForBodyPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		r := recover()
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *TaskPanic", r, r)
		}
		if tp.Value != "forbody boom" {
			t.Fatalf("panic value = %v, want forbody boom", tp.Value)
		}
	}()
	p.Do(func(w *Worker) {
		// Index near the top so the panic often lands in a split half.
		w.ForBody(0, 1<<16, 16, &panicBody{at: 1<<16 - 7})
	})
	t.Fatal("ForBody with panicking body returned normally")
}

// The steady-state ForBody must not allocate, split or not. The body is
// a heap pointer (as in real use: a per-worker box), so the interface
// conversion at the call site is free.
func TestForBodyZeroAllocSteadyState(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const n = 1 << 15
	body := &sumBody{}
	var allocs float64
	p.Do(func(w *Worker) {
		// Warm up frame caches at every depth this range can reach.
		w.ForBody(0, n, 64, body)
		allocs = testing.AllocsPerRun(20, func() {
			w.ForBody(0, n, 64, body)
		})
	})
	if allocs != 0 {
		t.Fatalf("steady-state ForBody allocated %.1f per run, want 0", allocs)
	}
}

func BenchmarkForBodyOverhead(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	const n = 1 << 18
	body := &sumBody{}
	b.ReportAllocs()
	p.Do(func(w *Worker) {
		w.ForBody(0, n, 0, body) // warm-up
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.ForBody(0, n, 0, body)
		}
		b.StopTimer()
	})
}
