package sched

import (
	"sync/atomic"
	"testing"
)

func TestSpawnTaskManyComplete(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 5000
	var done atomic.Int64
	p.Do(func(w *Worker) {
		for i := 0; i < n; i++ {
			w.SpawnTask(func(*Worker) { done.Add(1) })
		}
		w.HelpUntil(func() bool { return done.Load() == n })
	})
	if done.Load() != n {
		t.Fatalf("completed %d of %d spawned tasks", done.Load(), n)
	}
}

func TestSpawnOverflowsToInjector(t *testing.T) {
	// Spawning more tasks than the deque holds must route the excess to
	// the injector, not lose it.
	p := NewPool(2)
	defer p.Close()
	const n = dequeCapacity + 500
	var done atomic.Int64
	p.Do(func(w *Worker) {
		for i := 0; i < n; i++ {
			w.SpawnTask(func(*Worker) { done.Add(1) })
		}
		w.HelpUntil(func() bool { return done.Load() == n })
	})
	if done.Load() != n {
		t.Fatalf("completed %d of %d tasks across deque overflow", done.Load(), n)
	}
}

func TestHelpUntilDrivesOwnDeque(t *testing.T) {
	// With one worker, the spawned task can only run if HelpUntil
	// executes it from the worker's own deque.
	p := NewPool(1)
	defer p.Close()
	var hit atomic.Bool
	p.Do(func(w *Worker) {
		w.SpawnTask(func(*Worker) { hit.Store(true) })
		w.HelpUntil(func() bool { return hit.Load() })
	})
	if !hit.Load() {
		t.Fatal("task never ran")
	}
}

func TestDeeplyNestedFor(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.Do(func(w *Worker) {
		w.For(0, 10, 1, func(w *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				w.For(0, 10, 1, func(w *Worker, lo2, hi2 int) {
					for j := lo2; j < hi2; j++ {
						w.For(0, 10, 1, func(_ *Worker, lo3, hi3 int) {
							total.Add(int64(hi3 - lo3))
						})
					}
				})
			}
		})
	})
	if total.Load() != 1000 {
		t.Fatalf("nested For total = %d, want 1000", total.Load())
	}
}

func TestForEachWorkerRuns(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var calls atomic.Int64
	p.Do(func(w *Worker) {
		w.ForEachWorker(func(w *Worker) {
			if w.ID() < 0 || w.ID() >= 3 {
				t.Errorf("bad worker id %d", w.ID())
			}
			calls.Add(1)
		})
	})
	if calls.Load() != 3 {
		t.Fatalf("ForEachWorker ran %d times, want 3", calls.Load())
	}
}

func TestPoolSurvivesWorkBursts(t *testing.T) {
	// Alternating bursts and idle periods exercise parking/unparking.
	p := NewPool(3)
	defer p.Close()
	for burst := 0; burst < 20; burst++ {
		var n atomic.Int64
		p.Do(func(w *Worker) {
			w.For(0, 1000, 10, func(_ *Worker, lo, hi int) {
				n.Add(int64(hi - lo))
			})
		})
		if n.Load() != 1000 {
			t.Fatalf("burst %d incomplete: %d", burst, n.Load())
		}
	}
}

func BenchmarkGrainSweep(b *testing.B) {
	// Ablation: recursive-split grain size vs overhead for a cheap body.
	p := NewPool(0)
	defer p.Close()
	data := make([]int64, 1<<18)
	for _, grain := range []int{1, 64, 1024, 16384} {
		b.Run(benchName("grain", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Do(func(w *Worker) {
					w.For(0, len(data), grain, func(_ *Worker, lo, hi int) {
						for j := lo; j < hi; j++ {
							data[j]++
						}
					})
				})
			}
		})
	}
}

func benchName(prefix string, v int) string {
	digits := ""
	if v == 0 {
		digits = "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return prefix + "-" + digits
}

func BenchmarkSpawnJoinOverhead(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Do(func(w *Worker) {
			w.Join(func(*Worker) {}, func(*Worker) {})
		})
	}
}

func TestPanicPropagatesFromDo(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		r := recover()
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *TaskPanic", r, r)
		}
		if tp.Value != "boom" {
			t.Fatalf("panic value %v", tp.Value)
		}
		if tp.Error() == "" {
			t.Fatal("empty TaskPanic error")
		}
	}()
	p.Do(func(w *Worker) { panic("boom") })
	t.Fatal("Do returned despite panic")
}

func TestPanicPropagatesFromJoinBranches(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for _, branch := range []string{"fa", "fb"} {
		branch := branch
		func() {
			defer func() {
				r := recover()
				tp, ok := r.(*TaskPanic)
				if !ok || tp.Value != branch {
					t.Fatalf("branch %s: recovered %v", branch, r)
				}
			}()
			p.Do(func(w *Worker) {
				w.Join(
					func(*Worker) {
						if branch == "fa" {
							panic("fa")
						}
					},
					func(*Worker) {
						if branch == "fb" {
							panic("fb")
						}
					},
				)
			})
			t.Fatalf("branch %s: no panic surfaced", branch)
		}()
	}
}

func TestPanicInForBody(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic surfaced from For body")
		}
	}()
	p.Do(func(w *Worker) {
		w.For(0, 1000, 10, func(_ *Worker, lo, hi int) {
			if lo <= 500 && 500 < hi {
				panic("in body")
			}
		})
	})
}

func TestPoolUsableAfterPanic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.Do(func(w *Worker) { panic("first") })
	}()
	ran := false
	p.Do(func(w *Worker) { ran = true })
	if !ran {
		t.Fatal("pool dead after recovered panic")
	}
}

func TestPoolStatsAccounting(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const tasks = 2000
	var done atomic.Int64
	p.Do(func(w *Worker) {
		for i := 0; i < tasks; i++ {
			w.SpawnTask(func(*Worker) { done.Add(1) })
		}
		w.HelpUntil(func() bool { return done.Load() == tasks })
	})
	stats := p.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d workers", len(stats))
	}
	var executed int64
	for _, s := range stats {
		executed += s.Executed
		if s.Executed < 0 || s.Stolen < 0 || s.Parked < 0 {
			t.Fatalf("negative counter: %+v", s)
		}
	}
	// Every spawned task plus the Do body itself was executed somewhere.
	if executed < tasks+1 {
		t.Fatalf("executed %d, want >= %d", executed, tasks+1)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Do(func(w *Worker) {})
	p.Close()
	p.Close() // second close must not panic or hang
}
