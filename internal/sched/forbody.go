package sched

import "runtime/debug"

// This file holds the allocation-free variant of the demand-driven
// parallel loop. For (for.go) takes its body as a closure, which Go
// heap-allocates at every call site: the split path stores the body in
// a stealable frame, so escape analysis pins the closure (and the two
// subrange closures built at each split) to the heap. That fixed cost
// is invisible under a kernel that allocates O(n) scratch, but it is
// exactly what stands between the scan/pack hot paths and 0 allocs/op
// once their scratch comes from per-worker arenas.
//
// ForBody removes it by taking the body as an interface. Callers keep
// the body state in a reusable per-worker box (internal/arena's box
// stacks), so the interface value is a pointer into already-live
// memory and the call allocates nothing; the split path reuses cached
// forFrames the same way Join reuses its join frames. The steady-state
// ForBody — split or not — performs zero heap allocations.

// RangeBody is a parallel loop body in object form: RunRange is invoked
// over disjoint subranges of [lo, hi), possibly concurrently on
// different workers, and must be safe under that concurrency. It is the
// allocation-free analog of For's body closure.
type RangeBody interface {
	RunRange(w *Worker, lo, hi int)
}

// ForBody executes body.RunRange over [lo, hi) with the same lazy
// demand-driven splitting as For, but without allocating: the body
// travels as an interface value and splits ride reusable per-worker
// frames. grain <= 0 selects the automatic grain. Subranges passed to
// RunRange are at most grain elements.
func (w *Worker) ForBody(lo, hi, grain int, body RangeBody) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = grainFor(hi-lo, w.pool.Workers())
	}
	w.forBodyAdaptive(lo, hi, grain, body)
}

// forBodyAdaptive mirrors forAdaptive for interface bodies: sequential
// grain-sized chunks between demand checks, splitting the remaining
// upper half on demand through a cached frame pair.
func (w *Worker) forBodyAdaptive(lo, hi, grain int, body RangeBody) {
	for hi-lo > grain {
		if w.shouldSplit() {
			w.nSplits.Add(1)
			w.forBodySplit(lo, lo+(hi-lo)/2, hi, grain, body)
			return
		}
		next := lo + grain
		body.RunRange(w, lo, next)
		lo = next
	}
	if hi > lo {
		body.RunRange(w, lo, hi)
	}
}

// forFrame is the stealable record for one lazy split of a ForBody: the
// upper half's range and body, plus a trampoline closure bound to the
// frame once at construction. Frames live in a per-worker cache indexed
// by split nesting depth — splits nest in strict LIFO order (the split
// returns only after both halves completed, and any split entered while
// helping is strictly deeper) — so the steady-state split allocates
// nothing.
//
// Reuse is race-free for the same reason join frames are: a thief
// executing fn reads the frame's fields before it flips the paired join
// frame's completion latch, and the owner recycles the frame only after
// observing that latch.
type forFrame struct {
	lo, hi, grain int
	body          RangeBody
	fn            func(w *Worker) // runs the upper half via the frame
}

// acquireForFrame returns the reusable split frame for the worker's
// current split depth, growing the cache on first use of a new depth
// (the only allocation the ForBody path ever performs).
func (w *Worker) acquireForFrame() *forFrame {
	d := w.forDepth
	w.forDepth++
	if d == len(w.forFrames) {
		fr := &forFrame{}
		fr.fn = func(w2 *Worker) { w2.forBodyAdaptive(fr.lo, fr.hi, fr.grain, fr.body) }
		w.forFrames = append(w.forFrames, fr)
	}
	return w.forFrames[d]
}

// releaseForFrame returns the current split frame to the cache.
func (w *Worker) releaseForFrame(fr *forFrame) {
	fr.body = nil // do not retain the body between splits
	w.forDepth--
}

// forBodySplit is the split step: offer [mid, hi) for stealing through
// a cached forFrame + joinFrame pair, run [lo, mid) inline, then wait
// with Join's help-first discipline. Structured like Join but with
// method recursion in place of branch closures, so the path allocates
// nothing.
func (w *Worker) forBodySplit(lo, mid, hi, grain int, body RangeBody) {
	fr := w.acquireForFrame()
	fr.lo, fr.hi, fr.grain, fr.body = mid, hi, grain, body
	jf := w.acquireFrame()
	jf.fb = fr.fn
	jf.tp.Store(nil)
	jf.state.Store(framePending)
	w.Spawn(&jf.task)
	leftPanic := w.forBodyLeft(lo, mid, grain, body)
	w.waitFrame(jf)
	rightPanic := jf.tp.Load()
	w.releaseFrame(jf)
	w.releaseForFrame(fr)
	if leftPanic != nil {
		panic(leftPanic)
	}
	if rightPanic != nil {
		panic(rightPanic)
	}
}

// forBodyLeft runs the lower half, converting a panic into a *TaskPanic
// exactly like capture does — as a method, so the non-panicking path
// builds no closure.
func (w *Worker) forBodyLeft(lo, hi, grain int, body RangeBody) (tp *TaskPanic) {
	defer func() {
		if r := recover(); r != nil {
			if inner, ok := r.(*TaskPanic); ok {
				tp = inner
				return
			}
			tp = &TaskPanic{Value: r, Stack: string(debug.Stack())}
		}
	}()
	w.forBodyAdaptive(lo, hi, grain, body)
	return nil
}
