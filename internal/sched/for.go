package sched

// This file holds the demand-driven parallel loop. The paper's Fig 4/6
// claim — a pattern library costing ≈1x over hand-rolled code at one
// thread — rests on the scheduler's uncontended path being near-free, so
// For splits lazily, Rayon-style: run the range as a sequential chunk
// loop and carve off the upper half only when a demand signal (a parked
// worker, or a thief raiding this worker's deque) indicates idle
// capacity. An uncontended For therefore executes O(steals) tasks
// instead of the O(n/grain) an eager splitter creates.

// For executes body over [lo, hi), lazily splitting off stealable
// subranges while idle workers exist, and running grain-sized chunks
// sequentially otherwise. Ranges passed to body are at most grain
// elements. grain <= 0 selects an automatic grain (about 8 tasks per
// worker under full subdivision). body may be invoked concurrently on
// disjoint subranges and must be safe under that concurrency.
func (w *Worker) For(lo, hi, grain int, body func(w *Worker, lo, hi int)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = grainFor(hi-lo, w.pool.Workers())
	}
	w.forAdaptive(lo, hi, grain, body)
}

// forAdaptive is the lazy splitter: between grain-sized sequential
// chunks it consults shouldSplit, and on demand forks the remaining
// range's upper half through Join (whose frame is allocation-free when
// the half is not stolen). Each stolen half re-enters forAdaptive on the
// thief, so subdivision recursively tracks the number of idle workers.
func (w *Worker) forAdaptive(lo, hi, grain int, body func(w *Worker, lo, hi int)) {
	for hi-lo > grain {
		if w.shouldSplit() {
			mid := lo + (hi-lo)/2
			lo1, mid2, hi2 := lo, mid, hi
			w.nSplits.Add(1)
			w.Join(
				func(w *Worker) { w.forAdaptive(lo1, mid, grain, body) },
				func(w *Worker) { w.forAdaptive(mid2, hi2, grain, body) },
			)
			return
		}
		next := lo + grain
		body(w, lo, next)
		lo = next
	}
	if hi > lo {
		body(w, lo, hi)
	}
}

// shouldSplit is the demand hint behind lazy splitting: split when idle
// capacity is observable — some worker is parked, or this worker's deque
// was raided since the last check (a thief is actively looking for our
// work). On a single-worker pool it is constant false, so a 1-worker For
// is a plain sequential loop.
func (w *Worker) shouldSplit() bool {
	p := w.pool
	if len(p.workers) <= 1 {
		return false
	}
	if p.nparked.Load() > 0 {
		return true
	}
	if s := w.deque.Raids(); s != w.lastRaid {
		w.lastRaid = s
		return true
	}
	return false
}

// ForEachWorker runs body once per pool worker, in parallel, passing each
// invocation its worker. It is useful for initializing or reducing
// per-worker scratch state. Invocations are not guaranteed to land on
// distinct workers; bodies needing per-worker effects should key off
// w.ID().
func (w *Worker) ForEachWorker(body func(w *Worker)) {
	n := w.pool.Workers()
	w.For(0, n, 1, func(w *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(w)
		}
	})
}
