// Package sched implements a Cilk/Rayon-style work-stealing scheduler:
// a fixed pool of worker goroutines, each owning a Chase-Lev deque, with
// random stealing, an overflow injector queue, and help-first joins.
//
// The fast path is demand-driven (see docs/SCHED.md): For runs ranges
// sequentially and splits only on observed demand, Join reuses per-worker
// stack-discipline join frames instead of allocating, and Spawn skips the
// pool mutex entirely when no worker is parked.
//
// This is the runtime substrate under the parallel-patterns library in
// internal/core, playing the role Rayon's thread pool plays in the paper.
package sched

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a unit of work executed by a pool worker. The worker executing
// the task is passed in so the task can spawn and join subtasks.
type Task func(w *Worker)

// Pool is a work-stealing pool of worker goroutines.
type Pool struct {
	workers []*Worker

	mu       sync.Mutex
	injector []*Task // overflow + external-submission queue (LIFO)
	parked   []*Worker
	closed   bool

	// ninject mirrors len(injector) so idle probes and parking re-checks
	// can observe queued external work without taking the mutex.
	_       [64]byte
	ninject atomic.Int64
	// nparked mirrors len(parked). Publishers (Spawn, inject) read it to
	// skip the wake path when nobody is parked — the contention-free
	// wakeup fast path — so it lives on its own cache line.
	_       [56]byte
	nparked atomic.Int32
	_       [60]byte
}

// Worker is a single pool worker. Worker methods (Spawn, Join, For) may
// be called only from code running on this worker.
type Worker struct {
	pool *Pool
	id   int
	rng  uint64
	park chan struct{}

	// Join-frame cache: frames[d] is the reusable frame for a Join at
	// nesting depth d on this worker. Joins nest in strict LIFO order,
	// so reuse by depth is safe and the steady-state Join allocates
	// nothing. Owner-only.
	frames    []*joinFrame
	joinDepth int

	// lastRaid is the deque raid count observed at the previous split
	// check; a change means a thief stole from us. Owner-only.
	lastRaid int64

	// scratch is an opaque per-worker scratch slot, reserved for
	// higher layers (internal/arena hangs its per-worker bump arena
	// and typed box stacks here). Owner-only during execution; Pool
	// readers (Scratches) may inspect it only while the pool is
	// quiescent.
	scratch any

	// forFrame cache: forFrames[d] is the reusable split frame for a
	// lazily split ForBody at nesting depth d on this worker (see
	// forbody.go). Like join frames, splits nest in strict LIFO order,
	// so reuse by depth is safe. Owner-only.
	forFrames []*forFrame
	forDepth  int

	// The deque is written by thieves (top, steals); keep it off the
	// cache lines holding the owner-only state above and the counters
	// below (the deque pads its own interior fields).
	_     [64]byte
	deque deque

	// Observability counters (atomic; owner-incremented, racily read).
	_          [64]byte
	nExecuted  atomic.Int64
	nStolen    atomic.Int64
	nParked    atomic.Int64
	nSplits    atomic.Int64
	nWakeSkips atomic.Int64
	nOverflows atomic.Int64
}

// WorkerStats is a snapshot of one worker's activity counters.
type WorkerStats struct {
	Executed      int64 // tasks this worker ran
	Stolen        int64 // tasks it obtained by stealing from a victim
	Parked        int64 // times it went to sleep for lack of work
	SplitsSpawned int64 // For halves it spawned via lazy splitting
	WakeSkips     int64 // Spawns that skipped the wake path (nobody parked)
	Overflows     int64 // Spawns routed to the injector on a full deque
}

// Stats returns a racy snapshot of per-worker activity since the pool
// started — the observability hook behind the scheduler ablations.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		out[i] = WorkerStats{
			Executed:      w.nExecuted.Load(),
			Stolen:        w.nStolen.Load(),
			Parked:        w.nParked.Load(),
			SplitsSpawned: w.nSplits.Load(),
			WakeSkips:     w.nWakeSkips.Load(),
			Overflows:     w.nOverflows.Load(),
		}
	}
	return out
}

// NewPool starts a pool with n workers. If n <= 0, GOMAXPROCS workers are
// started. The pool runs until Close is called.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.workers = make([]*Worker, n)
	for i := range p.workers {
		w := &Worker{
			pool: p,
			id:   i,
			rng:  splitmix64(uint64(i+1) * 0x9e3779b97f4a7c15),
			park: make(chan struct{}, 1),
		}
		p.workers[i] = w
	}
	for _, w := range p.workers {
		go w.run()
	}
	return p
}

// Workers returns the number of workers in the pool.
func (p *Pool) Workers() int { return len(p.workers) }

// Close shuts the pool down. Tasks still queued are dropped; callers must
// ensure all Do calls have returned before closing.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	parked := p.parked
	p.parked = nil
	p.nparked.Store(0)
	p.mu.Unlock()
	for _, w := range parked {
		select {
		case w.park <- struct{}{}:
		default:
		}
	}
}

// Do runs f on some pool worker and waits for it (and only it) to return.
// Do must be called from outside the pool; pool tasks that need nested
// parallelism should use Worker.Join or Worker.For instead. A panic in
// f (or in a joined subtask) is re-raised from Do as a *TaskPanic.
func (p *Pool) Do(f func(w *Worker)) {
	done := make(chan *TaskPanic, 1)
	t := Task(func(w *Worker) {
		done <- capture(f, w)
	})
	p.inject(&t)
	if tp := <-done; tp != nil {
		panic(tp)
	}
}

// inject adds a task to the global queue and wakes a parked worker.
func (p *Pool) inject(t *Task) {
	p.pushInjector(t)
	p.wakeOne()
}

// pushInjector appends t to the global queue. It is the single audited
// path for every task that bypasses a worker deque: external submissions
// (Do) and deque-overflow spills from Worker.Spawn both land here. The
// ninject bump must happen before the caller consults nparked, pairing
// with the announce-then-recheck order in parkUntilWork.
func (p *Pool) pushInjector(t *Task) {
	p.mu.Lock()
	p.injector = append(p.injector, t)
	p.ninject.Add(1)
	p.mu.Unlock()
}

// popInjector removes a task from the global queue, or returns nil.
func (p *Pool) popInjector() *Task {
	if p.ninject.Load() == 0 {
		return nil
	}
	p.mu.Lock()
	var t *Task
	if n := len(p.injector); n > 0 {
		t = p.injector[n-1]
		p.injector[n-1] = nil
		p.injector = p.injector[:n-1]
		p.ninject.Add(-1)
	}
	p.mu.Unlock()
	return t
}

// wakeOne unparks a single parked worker, if any, and reports whether it
// woke one. When nparked reads zero — the common case on the fork-join
// fast path — it returns without touching the pool mutex. Callers must
// publish their work (deque push or pushInjector) before calling, so the
// publish/read-nparked order here pairs with the announce/re-check order
// in parkUntilWork: one side always observes the other.
func (p *Pool) wakeOne() bool {
	if p.nparked.Load() == 0 {
		return false
	}
	p.mu.Lock()
	var w *Worker
	if n := len(p.parked); n > 0 {
		w = p.parked[n-1]
		p.parked = p.parked[:n-1]
		p.nparked.Add(-1)
	}
	p.mu.Unlock()
	if w == nil {
		return false
	}
	select {
	case w.park <- struct{}{}:
	default:
	}
	return true
}

// ID returns the worker's index in [0, Pool.Workers()). It is stable for
// the lifetime of the pool, making it usable for per-worker scratch space.
func (w *Worker) ID() int { return w.id }

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.pool }

// Scratch returns the worker's opaque scratch slot (nil until
// SetScratch). Owner-only: call it from code running on this worker.
func (w *Worker) Scratch() any { return w.scratch }

// SetScratch installs the worker's scratch slot, typically a lazily
// created per-worker arena. Owner-only.
func (w *Worker) SetScratch(s any) { w.scratch = s }

// Scratches snapshots every worker's scratch slot. It must only be
// called while the pool is quiescent (no Do in flight): the slots are
// owner-written without synchronization. It exists so harnesses can
// reset or inspect per-worker arenas between benchmark rounds.
func (p *Pool) Scratches() []any {
	out := make([]any, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.scratch
	}
	return out
}

// Spawn schedules t to run asynchronously on the pool. The caller is
// responsible for tracking completion (Join does this automatically).
func (w *Worker) Spawn(t *Task) {
	if !w.deque.PushBottom(t) {
		// Deque full: spill to the global queue through the one audited
		// overflow path.
		w.nOverflows.Add(1)
		w.pool.pushInjector(t)
	}
	if !w.pool.wakeOne() {
		w.nWakeSkips.Add(1)
	}
}

// next finds the next task to run: own deque, then injector, then steal.
func (w *Worker) next() *Task {
	if t := w.deque.PopBottom(); t != nil {
		return t
	}
	if t := w.pool.popInjector(); t != nil {
		return t
	}
	return w.trySteal()
}

// trySteal attempts a few rounds of random-victim stealing.
func (w *Worker) trySteal() *Task {
	n := len(w.pool.workers)
	if n <= 1 {
		return nil
	}
	for round := 0; round < 2; round++ {
		start := int(w.nextRand() % uint64(n))
		for i := 0; i < n; i++ {
			v := w.pool.workers[(start+i)%n]
			if v == w {
				continue
			}
			if t := v.deque.Steal(); t != nil {
				w.nStolen.Add(1)
				return t
			}
		}
	}
	return nil
}

// workAvailable is the parking re-check: it reports whether any work is
// visible in the injector or another worker's deque. Called after the
// worker has announced itself parked (nparked incremented), so that a
// publisher that missed the announcement is observed here instead.
func (w *Worker) workAvailable() bool {
	p := w.pool
	if p.ninject.Load() > 0 {
		return true
	}
	for _, v := range p.workers {
		if v != w && !v.deque.Empty() {
			return true
		}
	}
	return false
}

// parkUntilWork parks the worker until a publisher wakes it. It returns
// false when the pool has been closed. The protocol is
// announce-then-recheck: the worker first joins the parked list (making
// nparked visible to publishers), then re-checks for work; publishers
// push work first and read nparked second. Under sequential consistency
// one of the two sides must observe the other, so no wakeup is lost even
// though publishers skip the mutex when nparked reads zero.
func (w *Worker) parkUntilWork() bool {
	p := w.pool
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.parked = append(p.parked, w)
	p.nparked.Add(1)
	p.mu.Unlock()

	if w.workAvailable() {
		// Retract the announcement and go look for that work.
		removed := false
		p.mu.Lock()
		for i, pw := range p.parked {
			if pw == w {
				p.parked = append(p.parked[:i], p.parked[i+1:]...)
				p.nparked.Add(-1)
				removed = true
				break
			}
		}
		closed := p.closed
		p.mu.Unlock()
		if removed {
			return !closed
		}
		// A waker already popped us; its signal is in flight (or
		// delivered). Consume it so it cannot go stale.
		<-w.park
		p.mu.Lock()
		closed = p.closed
		p.mu.Unlock()
		return !closed
	}

	w.nParked.Add(1)
	<-w.park
	// Wakers (wakeOne, Close) remove a worker from the parked list
	// before signaling it, so no list cleanup is needed here.
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	return !closed
}

// run is the worker main loop.
func (w *Worker) run() {
	idleSpins := 0
	for {
		t := w.next()
		if t != nil {
			idleSpins = 0
			w.nExecuted.Add(1)
			(*t)(w)
			continue
		}
		idleSpins++
		if idleSpins < 4 {
			runtime.Gosched()
			continue
		}
		idleSpins = 0
		if !w.parkUntilWork() {
			return
		}
	}
}

// nextRand returns the next value of the worker's xorshift RNG.
func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// splitmix64 is used to seed worker RNGs with well-mixed values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// grainFor picks a default grain so a balanced recursive split produces
// roughly 8 tasks per worker, the Rayon heuristic. Under lazy splitting
// the grain doubles as the demand-check interval: an uncontended For
// re-examines the split hint once per grain-sized chunk.
func grainFor(n, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	g := n / (workers * 8)
	if g < 1 {
		g = 1
	}
	return g
}

// ceilPow2 returns the smallest power of two >= v (v > 0).
func ceilPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(v-1))
}
