// Package sched implements a Cilk/Rayon-style work-stealing scheduler:
// a fixed pool of worker goroutines, each owning a Chase-Lev deque, with
// random stealing, an overflow injector queue, and help-first joins.
//
// This is the runtime substrate under the parallel-patterns library in
// internal/core, playing the role Rayon's thread pool plays in the paper.
package sched

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a unit of work executed by a pool worker. The worker executing
// the task is passed in so the task can spawn and join subtasks.
type Task func(w *Worker)

// Pool is a work-stealing pool of worker goroutines.
type Pool struct {
	workers []*Worker

	mu       sync.Mutex
	injector []*Task // overflow + external-submission queue (LIFO)
	parked   []*Worker
	closed   bool

	// pending counts tasks submitted but not yet started, used only to
	// keep parked workers from missing work; correctness does not depend
	// on it being exact.
	pending atomic.Int64

	seq atomic.Uint64 // seed sequence for worker RNGs
}

// Worker is a single pool worker. Worker methods (Spawn, Join, For) may
// be called only from code running on this worker.
type Worker struct {
	pool  *Pool
	id    int
	deque deque
	rng   uint64
	park  chan struct{}

	// Observability counters (atomic; owner-incremented, racily read).
	nExecuted atomic.Int64
	nStolen   atomic.Int64
	nParked   atomic.Int64
}

// WorkerStats is a snapshot of one worker's activity counters.
type WorkerStats struct {
	Executed int64 // tasks this worker ran
	Stolen   int64 // tasks it obtained by stealing from a victim
	Parked   int64 // times it went to sleep for lack of work
}

// Stats returns a racy snapshot of per-worker activity since the pool
// started — the observability hook behind the scheduler ablations.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		out[i] = WorkerStats{
			Executed: w.nExecuted.Load(),
			Stolen:   w.nStolen.Load(),
			Parked:   w.nParked.Load(),
		}
	}
	return out
}

// NewPool starts a pool with n workers. If n <= 0, GOMAXPROCS workers are
// started. The pool runs until Close is called.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.workers = make([]*Worker, n)
	for i := range p.workers {
		w := &Worker{
			pool: p,
			id:   i,
			rng:  splitmix64(uint64(i+1) * 0x9e3779b97f4a7c15),
			park: make(chan struct{}, 1),
		}
		p.workers[i] = w
	}
	for _, w := range p.workers {
		go w.run()
	}
	return p
}

// Workers returns the number of workers in the pool.
func (p *Pool) Workers() int { return len(p.workers) }

// Close shuts the pool down. Tasks still queued are dropped; callers must
// ensure all Do calls have returned before closing.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	parked := p.parked
	p.parked = nil
	p.mu.Unlock()
	for _, w := range parked {
		select {
		case w.park <- struct{}{}:
		default:
		}
	}
}

// Do runs f on some pool worker and waits for it (and only it) to return.
// Do must be called from outside the pool; pool tasks that need nested
// parallelism should use Worker.Join or Worker.For instead. A panic in
// f (or in a joined subtask) is re-raised from Do as a *TaskPanic.
func (p *Pool) Do(f func(w *Worker)) {
	done := make(chan *TaskPanic, 1)
	t := Task(func(w *Worker) {
		done <- capture(f, w)
	})
	p.inject(&t)
	if tp := <-done; tp != nil {
		panic(tp)
	}
}

// inject adds a task to the global queue and wakes a parked worker.
func (p *Pool) inject(t *Task) {
	p.pending.Add(1)
	p.mu.Lock()
	p.injector = append(p.injector, t)
	p.mu.Unlock()
	p.wakeOne()
}

// popInjector removes a task from the global queue, or returns nil.
func (p *Pool) popInjector() *Task {
	if p.pending.Load() == 0 {
		return nil
	}
	p.mu.Lock()
	var t *Task
	if n := len(p.injector); n > 0 {
		t = p.injector[n-1]
		p.injector[n-1] = nil
		p.injector = p.injector[:n-1]
	}
	p.mu.Unlock()
	return t
}

// wakeOne unparks a single parked worker, if any.
func (p *Pool) wakeOne() {
	p.mu.Lock()
	var w *Worker
	if n := len(p.parked); n > 0 {
		w = p.parked[n-1]
		p.parked = p.parked[:n-1]
	}
	p.mu.Unlock()
	if w != nil {
		select {
		case w.park <- struct{}{}:
		default:
		}
	}
}

// ID returns the worker's index in [0, Pool.Workers()). It is stable for
// the lifetime of the pool, making it usable for per-worker scratch space.
func (w *Worker) ID() int { return w.id }

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.pool }

// Spawn schedules t to run asynchronously on the pool. The caller is
// responsible for tracking completion (Join does this automatically).
func (w *Worker) Spawn(t *Task) {
	w.pool.pending.Add(1)
	if !w.deque.PushBottom(t) {
		// Deque full: fall back to the injector. pending was already
		// incremented, so inject manually to avoid double counting.
		w.pool.mu.Lock()
		w.pool.injector = append(w.pool.injector, t)
		w.pool.mu.Unlock()
	}
	w.pool.wakeOne()
}

// next finds the next task to run: own deque, then injector, then steal.
func (w *Worker) next() *Task {
	if t := w.deque.PopBottom(); t != nil {
		return t
	}
	if t := w.pool.popInjector(); t != nil {
		return t
	}
	return w.trySteal()
}

// trySteal attempts a few rounds of random-victim stealing.
func (w *Worker) trySteal() *Task {
	n := len(w.pool.workers)
	if n <= 1 {
		return nil
	}
	for round := 0; round < 2; round++ {
		start := int(w.nextRand() % uint64(n))
		for i := 0; i < n; i++ {
			v := w.pool.workers[(start+i)%n]
			if v == w {
				continue
			}
			if t := v.deque.Steal(); t != nil {
				w.nStolen.Add(1)
				return t
			}
		}
	}
	return nil
}

// run is the worker main loop.
func (w *Worker) run() {
	idleSpins := 0
	for {
		t := w.next()
		if t != nil {
			idleSpins = 0
			w.pool.pending.Add(-1)
			w.nExecuted.Add(1)
			(*t)(w)
			continue
		}
		idleSpins++
		if idleSpins < 4 {
			runtime.Gosched()
			continue
		}
		// Park until new work is injected or spawned.
		p := w.pool
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		if p.pending.Load() > 0 {
			p.mu.Unlock()
			idleSpins = 0
			continue
		}
		p.parked = append(p.parked, w)
		p.mu.Unlock()
		w.nParked.Add(1)
		<-w.park
		p.mu.Lock()
		closed := p.closed
		// Remove self from parked list if still present (spurious wake
		// paths leave us there).
		for i, pw := range p.parked {
			if pw == w {
				p.parked = append(p.parked[:i], p.parked[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
		if closed {
			return
		}
		idleSpins = 0
	}
}

// nextRand returns the next value of the worker's xorshift RNG.
func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// splitmix64 is used to seed worker RNGs with well-mixed values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// grainFor picks a default grain so a balanced recursive split produces
// roughly 8 tasks per worker, the Rayon heuristic.
func grainFor(n, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	g := n / (workers * 8)
	if g < 1 {
		g = 1
	}
	return g
}

// ceilPow2 returns the smallest power of two >= v (v > 0).
func ceilPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(v-1))
}
