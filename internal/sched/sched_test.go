package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeLIFOOwner(t *testing.T) {
	var d deque
	mk := func(i int) *Task {
		t := Task(func(*Worker) { _ = i })
		return &t
	}
	tasks := []*Task{mk(1), mk(2), mk(3)}
	for _, tk := range tasks {
		if !d.PushBottom(tk) {
			t.Fatal("push failed on empty deque")
		}
	}
	for i := 2; i >= 0; i-- {
		got := d.PopBottom()
		if got != tasks[i] {
			t.Fatalf("pop %d: got %p want %p", i, got, tasks[i])
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("pop on empty deque should return nil")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	var d deque
	mk := func() *Task {
		t := Task(func(*Worker) {})
		return &t
	}
	a, b := mk(), mk()
	d.PushBottom(a)
	d.PushBottom(b)
	if got := d.Steal(); got != a {
		t.Fatalf("steal: got %p want oldest %p", got, a)
	}
	if got := d.PopBottom(); got != b {
		t.Fatalf("pop: got %p want %p", got, b)
	}
	if d.Steal() != nil {
		t.Fatal("steal on empty deque should return nil")
	}
}

func TestDequeFull(t *testing.T) {
	var d deque
	tk := Task(func(*Worker) {})
	for i := 0; i < dequeCapacity; i++ {
		if !d.PushBottom(&tk) {
			t.Fatalf("push %d failed before capacity", i)
		}
	}
	if d.PushBottom(&tk) {
		t.Fatal("push beyond capacity should fail")
	}
}

func TestDequeConcurrentStealers(t *testing.T) {
	// One owner pushes/pops, several thieves steal; every task must be
	// executed exactly once.
	const n = 20000
	const thieves = 4
	var d deque
	var executed atomic.Int64
	counts := make([]atomic.Int32, n)

	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tk := d.Steal(); tk != nil {
					(*tk)(nil)
					executed.Add(1)
				}
			}
		}()
	}
	pushed := 0
	for pushed < n {
		i := pushed
		tk := Task(func(*Worker) { counts[i].Add(1) })
		if d.PushBottom(&tk) {
			pushed++
		}
		if pushed%3 == 0 {
			if tk := d.PopBottom(); tk != nil {
				(*tk)(nil)
				executed.Add(1)
			}
		}
	}
	for {
		tk := d.PopBottom()
		if tk == nil {
			break
		}
		(*tk)(nil)
		executed.Add(1)
	}
	// Drain any in-flight thief executions.
	for executed.Load() < n {
	}
	close(stop)
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d executed %d times", i, c)
		}
	}
}

func TestPoolDoRuns(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ran := false
	p.Do(func(w *Worker) { ran = true })
	if !ran {
		t.Fatal("Do did not run the task")
	}
}

func TestPoolDoSequentialPool(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var sum int
	p.Do(func(w *Worker) {
		if !w.Sequential() {
			t.Error("1-worker pool should report Sequential")
		}
		w.For(0, 100, 10, func(_ *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				sum += i
			}
		})
	})
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestJoinBothRun(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var a, b atomic.Bool
	p.Do(func(w *Worker) {
		w.Join(
			func(*Worker) { a.Store(true) },
			func(*Worker) { b.Store(true) },
		)
	})
	if !a.Load() || !b.Load() {
		t.Fatalf("join incomplete: a=%v b=%v", a.Load(), b.Load())
	}
}

func TestJoinNestedFibonacci(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var fib func(w *Worker, n int) int
	fib = func(w *Worker, n int) int {
		if n < 2 {
			return n
		}
		var x, y int
		w.Join(
			func(w *Worker) { x = fib(w, n-1) },
			func(w *Worker) { y = fib(w, n-2) },
		)
		return x + y
	}
	var got int
	p.Do(func(w *Worker) { got = fib(w, 18) })
	if got != 2584 {
		t.Fatalf("fib(18) = %d, want 2584", got)
	}
}

func TestForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		const n = 100000
		counts := make([]atomic.Int32, n)
		p.Do(func(w *Worker) {
			w.For(0, n, 0, func(_ *Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
			})
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
		p.Close()
	}
}

func TestForEmptyAndReversedRange(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	called := false
	p.Do(func(w *Worker) {
		w.For(5, 5, 1, func(*Worker, int, int) { called = true })
		w.For(7, 3, 1, func(*Worker, int, int) { called = true })
	})
	if called {
		t.Fatal("body called on empty/reversed range")
	}
}

func TestForSumProperty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(n uint16, grain uint8) bool {
		size := int(n%5000) + 1
		var sum atomic.Int64
		p.Do(func(w *Worker) {
			w.For(0, size, int(grain), func(_ *Worker, lo, hi int) {
				local := int64(0)
				for i := lo; i < hi; i++ {
					local += int64(i)
				}
				sum.Add(local)
			})
		})
		want := int64(size) * int64(size-1) / 2
		return sum.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyConcurrentDos(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			p.Do(func(w *Worker) {
				w.For(0, 1000, 16, func(_ *Worker, lo, hi int) {
					total.Add(int64(hi - lo))
				})
			})
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if total.Load() != 8000 {
		t.Fatalf("total = %d, want 8000", total.Load())
	}
}

func TestWorkerIDsDistinct(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	seen := map[int]bool{}
	for _, w := range p.workers {
		if w.ID() < 0 || w.ID() >= 3 {
			t.Fatalf("worker ID %d out of range", w.ID())
		}
		if seen[w.ID()] {
			t.Fatalf("duplicate worker ID %d", w.ID())
		}
		seen[w.ID()] = true
		if w.Pool() != p {
			t.Fatal("worker Pool() mismatch")
		}
	}
}

func TestGrainFor(t *testing.T) {
	if g := grainFor(0, 4); g != 1 {
		t.Fatalf("grainFor(0,4) = %d, want 1", g)
	}
	if g := grainFor(3200, 4); g != 100 {
		t.Fatalf("grainFor(3200,4) = %d, want 100", g)
	}
	if g := grainFor(100, 0); g != 12 {
		t.Fatalf("grainFor(100,0) = %d, want 12", g)
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Fatalf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSplitmix64NonZero(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		if splitmix64(i) == 0 {
			t.Fatalf("splitmix64(%d) = 0", i)
		}
	}
}

func BenchmarkForOverhead(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	data := make([]int64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Do(func(w *Worker) {
			w.For(0, len(data), 0, func(_ *Worker, lo, hi int) {
				for j := lo; j < hi; j++ {
					data[j]++
				}
			})
		})
	}
}

func BenchmarkJoinFib(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	var fib func(w *Worker, n int) int
	fib = func(w *Worker, n int) int {
		if n < 2 {
			return n
		}
		var x, y int
		w.Join(
			func(w *Worker) { x = fib(w, n-1) },
			func(w *Worker) { y = fib(w, n-2) },
		)
		return x + y
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Do(func(w *Worker) { _ = fib(w, 15) })
	}
}
