package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
)

// TaskPanic wraps a panic that escaped a task running on the pool, so
// it can be re-raised at the fork point (Join, Do) instead of killing
// an arbitrary worker goroutine. Value is the original panic value and
// Stack the panicking task's stack.
type TaskPanic struct {
	Value any
	Stack string
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("sched: task panicked: %v", p.Value)
}

// capture runs f(w), converting a panic into a *TaskPanic. A nested
// *TaskPanic (already wrapped at an inner fork point) passes through
// unwrapped so the original site's stack survives.
func capture(f func(w *Worker), w *Worker) (tp *TaskPanic) {
	defer func() {
		if r := recover(); r != nil {
			if inner, ok := r.(*TaskPanic); ok {
				tp = inner
				return
			}
			tp = &TaskPanic{Value: r, Stack: string(debug.Stack())}
		}
	}()
	f(w)
	return nil
}

// Join runs fa and fb, potentially in parallel, and returns when both have
// completed. fb is made available for stealing while the current worker
// runs fa; if nobody stole it, the current worker runs it too. While
// waiting for a stolen fb, the worker helps by executing other pool tasks
// (help-first joining, as in Cilk and Rayon).
//
// A panic in either branch is re-raised from Join as a *TaskPanic —
// after both branches have completed, preserving structured
// concurrency even on the failure path.
func (w *Worker) Join(fa, fb func(w *Worker)) {
	var done atomic.Bool
	var fbPanic atomic.Pointer[TaskPanic]
	t := Task(func(w2 *Worker) {
		if tp := capture(fb, w2); tp != nil {
			fbPanic.Store(tp)
		}
		done.Store(true)
	})
	w.Spawn(&t)
	faPanic := capture(fa, w)
	// Fast path: the task we spawned is still at the bottom of our deque
	// if fa spawned and joined in strict stack order.
	for {
		if done.Load() {
			if faPanic != nil {
				panic(faPanic)
			}
			if tp := fbPanic.Load(); tp != nil {
				panic(tp)
			}
			return
		}
		local := w.deque.PopBottom()
		if local != nil {
			w.pool.pending.Add(-1)
			w.nExecuted.Add(1)
			(*local)(w)
			continue
		}
		// Our deque is empty; the spawned task was stolen (or routed to
		// the injector). Help with any available work while waiting.
		other := w.pool.popInjector()
		if other == nil {
			other = w.trySteal()
		}
		if other != nil {
			w.pool.pending.Add(-1)
			w.nExecuted.Add(1)
			(*other)(w)
			continue
		}
		runtime.Gosched()
	}
}

// For executes body over [lo, hi) by recursive binary splitting, creating
// stealable subranges until ranges are at most grain elements. grain <= 0
// selects an automatic grain (about 8 tasks per worker). body may be
// invoked concurrently on disjoint subranges and must be safe under that
// concurrency.
func (w *Worker) For(lo, hi, grain int, body func(w *Worker, lo, hi int)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = grainFor(hi-lo, w.pool.Workers())
	}
	w.forSplit(lo, hi, grain, body)
}

func (w *Worker) forSplit(lo, hi, grain int, body func(w *Worker, lo, hi int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		lo2, hi2 := mid, hi
		w.Join(
			func(w *Worker) { w.forSplit(lo, mid, grain, body) },
			func(w *Worker) { w.forSplit(lo2, hi2, grain, body) },
		)
		return
	}
	body(w, lo, hi)
}

// ForEachWorker runs body once per pool worker, in parallel, passing each
// invocation its worker. It is useful for initializing or reducing
// per-worker scratch state.
func (w *Worker) ForEachWorker(body func(w *Worker)) {
	n := w.pool.Workers()
	w.For(0, n, 1, func(w *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(w)
		}
	})
}

// Sequential reports whether the pool has a single worker, in which case
// callers may prefer cheaper sequential code paths.
func (w *Worker) Sequential() bool { return w.pool.Workers() == 1 }

// SpawnTask schedules f to run asynchronously on the pool (a closure
// convenience over Spawn).
func (w *Worker) SpawnTask(f func(w *Worker)) {
	t := Task(f)
	w.Spawn(&t)
}

// HelpUntil executes available pool work until cond() reports true. It
// is the waiting discipline of Join exposed for user-level
// synchronization (futures): the waiter makes progress on other tasks
// instead of blocking. cond must eventually be satisfied by work
// reachable from the pool (a task that only completes outside the pool
// can stall the helper on nested waits).
func (w *Worker) HelpUntil(cond func() bool) {
	for !cond() {
		if t := w.next(); t != nil {
			w.pool.pending.Add(-1)
			w.nExecuted.Add(1)
			(*t)(w)
			continue
		}
		runtime.Gosched()
	}
}
