package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
)

// TaskPanic wraps a panic that escaped a task running on the pool, so
// it can be re-raised at the fork point (Join, Do) instead of killing
// an arbitrary worker goroutine. Value is the original panic value and
// Stack the panicking task's stack.
type TaskPanic struct {
	Value any
	Stack string
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("sched: task panicked: %v", p.Value)
}

// capture runs f(w), converting a panic into a *TaskPanic. A nested
// *TaskPanic (already wrapped at an inner fork point) passes through
// unwrapped so the original site's stack survives.
func capture(f func(w *Worker), w *Worker) (tp *TaskPanic) {
	defer func() {
		if r := recover(); r != nil {
			if inner, ok := r.(*TaskPanic); ok {
				tp = inner
				return
			}
			tp = &TaskPanic{Value: r, Stack: string(debug.Stack())}
		}
	}()
	f(w)
	return nil
}

// Frame states for joinFrame.state.
const (
	framePending uint32 = iota
	frameDone
)

// joinFrame is the bookkeeping record for one Join: the stealable branch,
// a completion latch, and a panic slot in a single struct, plus a
// pre-built trampoline Task bound to the frame. Frames live in a
// per-worker cache indexed by Join nesting depth — joins on one worker
// nest in strict LIFO order (a Join returns only after its branch
// completed, and any Join started while helping is strictly deeper) — so
// each depth's frame is reused across calls and the steady-state Join
// performs zero heap allocations on the unstolen path.
//
// Reuse is race-free because a frame is recycled only after its owner
// observed state == frameDone, which the (unique) executor stores last;
// a thief that read the frame's task pointer from a previous round can
// never win its top CAS once that round's task was claimed.
type joinFrame struct {
	fb    func(w *Worker) // branch offered to thieves; nil between Joins
	state atomic.Uint32   // framePending until fb has run
	tp    atomic.Pointer[TaskPanic]
	task  Task // trampoline: runs fb via the frame; built once per frame
}

// run executes the frame's branch and flips the completion latch. It may
// run on any worker: the owner (unstolen fast path) or a thief.
func (f *joinFrame) run(w *Worker) {
	if tp := capture(f.fb, w); tp != nil {
		f.tp.Store(tp)
	}
	f.state.Store(frameDone)
}

// acquireFrame returns the reusable join frame for the worker's current
// nesting depth, growing the cache on first use of a new depth (the only
// allocation the Join path ever performs).
func (w *Worker) acquireFrame() *joinFrame {
	d := w.joinDepth
	w.joinDepth++
	if d == len(w.frames) {
		f := &joinFrame{}
		f.task = func(w2 *Worker) { f.run(w2) }
		w.frames = append(w.frames, f)
	}
	return w.frames[d]
}

// releaseFrame returns the current frame to the cache.
func (w *Worker) releaseFrame(f *joinFrame) {
	f.fb = nil // do not retain the branch closure between Joins
	w.joinDepth--
}

// Join runs fa and fb, potentially in parallel, and returns when both have
// completed. fb is made available for stealing while the current worker
// runs fa; if nobody stole it, the current worker runs it too. While
// waiting for a stolen fb, the worker helps by executing other pool tasks
// (help-first joining, as in Cilk and Rayon).
//
// The unstolen path — the overwhelmingly common case under lazy
// splitting — allocates nothing: the branch rides a cached join frame and
// comes straight back off the bottom of the deque.
//
// A panic in either branch is re-raised from Join as a *TaskPanic —
// after both branches have completed, preserving structured
// concurrency even on the failure path.
func (w *Worker) Join(fa, fb func(w *Worker)) {
	f := w.acquireFrame()
	f.fb = fb
	f.tp.Store(nil)
	f.state.Store(framePending)
	w.Spawn(&f.task)
	faPanic := capture(fa, w)
	w.waitFrame(f)
	fbPanic := f.tp.Load()
	w.releaseFrame(f)
	if faPanic != nil {
		panic(faPanic)
	}
	if fbPanic != nil {
		panic(fbPanic)
	}
}

// waitFrame is Join's help-first waiting discipline, shared with the
// allocation-free ForBody split (forbody.go): run pool work until f's
// branch has completed.
func (w *Worker) waitFrame(f *joinFrame) {
	for f.state.Load() != frameDone {
		// Fast path: the task we spawned is still at the bottom of our
		// deque if the branch spawned and joined in strict stack order.
		if local := w.deque.PopBottom(); local != nil {
			w.nExecuted.Add(1)
			(*local)(w)
			continue
		}
		// Our deque is empty; the spawned branch was stolen (or routed
		// to the injector). Help with any available work while waiting.
		other := w.pool.popInjector()
		if other == nil {
			other = w.trySteal()
		}
		if other != nil {
			w.nExecuted.Add(1)
			(*other)(w)
			continue
		}
		runtime.Gosched()
	}
}

// Sequential reports whether the pool has a single worker, in which case
// callers may prefer cheaper sequential code paths.
func (w *Worker) Sequential() bool { return w.pool.Workers() == 1 }

// SpawnTask schedules f to run asynchronously on the pool (a closure
// convenience over Spawn).
func (w *Worker) SpawnTask(f func(w *Worker)) {
	t := Task(f)
	w.Spawn(&t)
}

// HelpUntil executes available pool work until cond() reports true. It
// is the waiting discipline of Join exposed for user-level
// synchronization (futures): the waiter makes progress on other tasks
// instead of blocking. cond must eventually be satisfied by work
// reachable from the pool (a task that only completes outside the pool
// can stall the helper on nested waits).
func (w *Worker) HelpUntil(cond func() bool) {
	for !cond() {
		if t := w.next(); t != nil {
			w.nExecuted.Add(1)
			(*t)(w)
			continue
		}
		runtime.Gosched()
	}
}
