package sched

import "sync/atomic"

// dequeCapacity is the fixed capacity of each worker's deque. Fork-join
// recursion pushes at most O(depth) outstanding tasks per chain, so a deep
// deque combined with the injector-overflow path in Worker.Spawn is ample.
const dequeCapacity = 1 << 13

// deque is a Chase-Lev work-stealing deque with a fixed-size circular
// buffer. The owning worker pushes and pops at the bottom; thieves steal
// from the top. All cross-thread coordination goes through the atomic
// top/bottom indices and atomic task slots, following Chase & Lev,
// "Dynamic Circular Work-Stealing Deque" (SPAA 2005), with the dynamic
// growth replaced by an overflow path handled by the caller.
//
// top (thief-CAS'd), bottom (owner-written), and steals (thief-written)
// each sit on their own cache line: a thief hammering CAS on top must not
// invalidate the line the owner's push/pop path reads bottom from, and
// vice versa — the false-sharing half of making the uncontended fast
// path cheap.
type deque struct {
	top    atomic.Int64 // next index to steal from
	_      [56]byte
	bottom atomic.Int64 // next index to push at (owner-only writes)
	_      [56]byte
	steals atomic.Int64 // successful steals from this deque, ever
	_      [56]byte
	tasks  [dequeCapacity]atomic.Pointer[Task]
}

// PushBottom adds t at the bottom of the deque. It returns false when the
// deque is full, in which case the caller must route the task elsewhere.
// Only the owning worker may call PushBottom.
func (d *deque) PushBottom(t *Task) bool {
	b := d.bottom.Load()
	top := d.top.Load()
	if b-top >= dequeCapacity {
		return false
	}
	d.tasks[b&(dequeCapacity-1)].Store(t)
	d.bottom.Store(b + 1)
	return true
}

// PopBottom removes and returns the most recently pushed task, or nil when
// the deque is empty. Only the owning worker may call PopBottom.
func (d *deque) PopBottom() *Task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	top := d.top.Load()
	if top > b {
		// Deque was already empty; restore bottom.
		d.bottom.Store(top)
		return nil
	}
	t := d.tasks[b&(dequeCapacity-1)].Load()
	if top != b {
		return t // more than one task remained; no race with thieves
	}
	// Single task left: race against thieves via CAS on top.
	if !d.top.CompareAndSwap(top, top+1) {
		t = nil // a thief got it first
	}
	d.bottom.Store(top + 1)
	return t
}

// Steal removes and returns the oldest task, or nil when the deque is
// empty or the steal race was lost. Any worker may call Steal. A
// successful steal bumps the deque's raid counter, which the owner reads
// as the "my deque was raided" demand hint driving lazy splitting.
func (d *deque) Steal() *Task {
	top := d.top.Load()
	b := d.bottom.Load()
	if top >= b {
		return nil
	}
	t := d.tasks[top&(dequeCapacity-1)].Load()
	if !d.top.CompareAndSwap(top, top+1) {
		return nil
	}
	d.steals.Add(1)
	return t
}

// Raids returns the number of successful steals from this deque since the
// pool started — a monotone counter the owner compares against a snapshot
// to detect demand.
func (d *deque) Raids() int64 { return d.steals.Load() }

// Empty reports whether the deque currently appears empty. It is a racy
// snapshot intended for heuristics only.
func (d *deque) Empty() bool {
	return d.top.Load() >= d.bottom.Load()
}
