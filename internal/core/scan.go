package core

// Scans and packs (paper's "scan" and "pack" algorithmic patterns) are
// implemented as two-pass blocked algorithms: a Block-pattern pass
// computing per-chunk summaries, a short sequential scan over the chunk
// summaries, and a second Block-pattern pass writing results. Both
// passes touch disjoint chunks, so the whole construction is Fearless.
//
// Allocation discipline (docs/MEMORY.md): the per-chunk summary buffers
// come from the calling worker's scratch arena (internal/arena) under a
// Mark/Release scope, the loop bodies are reusable per-worker boxes
// driven through sched.ForBody, and every primitive has a
// destination-passing *Into form that reuses a caller-owned output
// buffer. In their steady state the scans and packs allocate nothing.

import (
	"fmt"
	"math"
	"unsafe"

	"repro/internal/arena"
)

// scanTargetBytes is the cache budget per scan chunk: the per-chunk
// grain is derived from the element size so one chunk's worth of data
// (~64 KiB, half a typical L2 slice, read once and written once per
// pass) stays resident between the two touches. A var so the grain
// sweep in EXPERIMENTS.md can measure alternatives.
var scanTargetBytes = 64 << 10

// scanBlockMin floors the derived grain so pathological element sizes
// cannot degenerate the two-pass structure into per-element tasks.
const scanBlockMin = 512

// scanBlockFor returns the per-chunk element count for elements of the
// given size, targeting scanTargetBytes per chunk.
func scanBlockFor(elemSize uintptr) int {
	if elemSize == 0 {
		return 1 << 16
	}
	b := scanTargetBytes / int(elemSize)
	if b < scanBlockMin {
		b = scanBlockMin
	}
	return b
}

// scanGrain is scanBlockFor over a type parameter.
func scanGrain[T any]() int {
	return scanBlockFor(unsafe.Sizeof(*new(T)))
}

// packIndexLimit bounds the index space of PackIndex/Filter: packed
// indices are int32, so n past this limit would overflow silently.
// A var (not const) so the guard path is testable with a small
// injected limit instead of a 2^31-element input.
var packIndexLimit = int64(math.MaxInt32) + 1

// ensureLen is the destination-passing growth rule: reuse dst's backing
// array when it is big enough, reallocate (amortized, to exactly n)
// when not. Steady-state calls with a warmed destination do not
// allocate.
func ensureLen[T any](dst []T, n int) []T {
	if n <= cap(dst) {
		return dst[:n]
	}
	return make([]T, n)
}

// EnsureLen resizes dst to length n, reusing its backing array whenever
// capacity allows. It is the helper behind every *Into primitive,
// exported so benchmark kernels can apply the same convention to their
// own round-persistent buffers.
func EnsureLen[T any](dst []T, n int) []T {
	return ensureLen(dst, n)
}

// Phases of the two-pass scan/pack bodies.
const (
	phaseCount uint8 = iota
	phaseWrite
)

// sumScanBody is the reusable loop body for the two block passes of a
// sum scan. It ranges over block indices; src and dst may alias (the
// in-place forms). Acquired from the worker's box stack, so the
// steady-state scan builds no closures and allocates nothing.
type sumScanBody[T Number] struct {
	src, dst  []T
	sums      []T
	block     int
	phase     uint8
	inclusive bool
}

func (s *sumScanBody[T]) RunRange(_ *Worker, lo, hi int) {
	for ci := lo; ci < hi; ci++ {
		blo := ci * s.block
		bhi := min(blo+s.block, len(s.src))
		switch {
		case s.phase == phaseCount:
			var acc T
			for i := blo; i < bhi; i++ {
				acc += s.src[i]
			}
			s.sums[ci] = acc
		case s.inclusive:
			acc := s.sums[ci]
			for i := blo; i < bhi; i++ {
				acc += s.src[i]
				s.dst[i] = acc
			}
		default:
			acc := s.sums[ci]
			for i := blo; i < bhi; i++ {
				v := s.src[i]
				s.dst[i] = acc
				acc += v
			}
		}
	}
}

// sumScan is the shared engine: scan src into dst (which may alias src)
// and return the total. dst must have length len(src).
func sumScan[T Number](w *Worker, dst, src []T, inclusive bool) T {
	var total T
	n := len(src)
	if n == 0 {
		return total
	}
	block := scanGrain[T]()
	countDyn(Block)
	countDyn(Block)
	if w == nil || n <= block {
		// Single sequential pass; no summary buffer needed at all.
		if inclusive {
			for i, v := range src {
				total += v
				dst[i] = total
			}
		} else {
			for i, v := range src {
				dst[i] = total
				total += v
			}
		}
		return total
	}
	nblocks := (n + block - 1) / block
	a := arena.Of(w)
	m := a.Mark()
	sums := arena.AllocUninit[T](a, nblocks)
	b := arena.AcquireBox[sumScanBody[T]](w)
	b.src, b.dst, b.sums = src, dst, sums
	b.block, b.inclusive = block, inclusive
	b.phase = phaseCount
	w.ForBody(0, nblocks, 1, b)
	for ci := range sums {
		s := sums[ci]
		sums[ci] = total
		total += s
	}
	b.phase = phaseWrite
	w.ForBody(0, nblocks, 1, b)
	b.src, b.dst, b.sums = nil, nil, nil
	arena.ReleaseBox(w, b)
	a.Release(m)
	return total
}

// ScanExclusive replaces xs[i] with the sum of xs[0..i) in place and
// returns the total sum of the original slice. Steady state: 0 allocs.
func ScanExclusive[T Number](w *Worker, xs []T) T {
	return sumScan(w, xs, xs, false)
}

// ScanExclusiveInto writes the exclusive prefix sums of xs into dst
// (len(dst) >= len(xs)), leaving xs intact, and returns the total.
func ScanExclusiveInto[T Number](w *Worker, dst, xs []T) T {
	return sumScan(w, dst[:len(xs)], xs, false)
}

// ScanInclusive replaces xs[i] with the sum of xs[0..i] in place and
// returns the total sum.
func ScanInclusive[T Number](w *Worker, xs []T) T {
	return sumScan(w, xs, xs, true)
}

// ScanInclusiveInto writes the inclusive prefix sums of xs into dst
// (len(dst) >= len(xs)), leaving xs intact, and returns the total.
// Steady state: 0 allocs.
func ScanInclusiveInto[T Number](w *Worker, dst, xs []T) T {
	return sumScan(w, dst[:len(xs)], xs, true)
}

// opScanBody is sumScanBody for a caller-supplied combiner.
type opScanBody[T any] struct {
	xs       []T
	sums     []T
	block    int
	phase    uint8
	identity T
	op       func(a, b T) T
}

func (s *opScanBody[T]) RunRange(_ *Worker, lo, hi int) {
	for ci := lo; ci < hi; ci++ {
		blo := ci * s.block
		bhi := min(blo+s.block, len(s.xs))
		if s.phase == phaseCount {
			acc := s.identity
			for i := blo; i < bhi; i++ {
				acc = s.op(acc, s.xs[i])
			}
			s.sums[ci] = acc
		} else {
			acc := s.sums[ci]
			for i := blo; i < bhi; i++ {
				v := s.xs[i]
				s.xs[i] = acc
				acc = s.op(acc, v)
			}
		}
	}
}

// ScanExclusiveOp replaces xs[i] with op(identity, xs[0], ..., xs[i-1])
// in place and returns the total op-fold of the original slice. op must
// be associative with identity as its unit. The per-chunk summary
// buffer comes from the worker's arena (for pointer-free T; pointered
// element types fall back to a heap summary buffer).
func ScanExclusiveOp[T any](w *Worker, xs []T, identity T, op func(a, b T) T) T {
	n := len(xs)
	if n == 0 {
		return identity
	}
	block := scanGrain[T]()
	countDyn(Block)
	countDyn(Block)
	if w == nil || n <= block {
		total := identity
		for i := range xs {
			v := xs[i]
			xs[i] = total
			total = op(total, v)
		}
		return total
	}
	nblocks := (n + block - 1) / block
	a := arena.Of(w)
	m := a.Mark()
	sums := arena.AllocUninit[T](a, nblocks)
	b := arena.AcquireBox[opScanBody[T]](w)
	b.xs, b.sums = xs, sums
	b.block, b.identity, b.op = block, identity, op
	b.phase = phaseCount
	w.ForBody(0, nblocks, 1, b)
	total := identity
	for ci := range sums {
		s := sums[ci]
		sums[ci] = total
		total = op(total, s)
	}
	b.phase = phaseWrite
	w.ForBody(0, nblocks, 1, b)
	b.xs, b.sums, b.op = nil, nil, nil
	arena.ReleaseBox(w, b)
	a.Release(m)
	return total
}

// packBody is the reusable loop body for the two block passes of an
// index pack: count matches per block, then (after the offsets scan)
// write matching indices into disjoint output ranges.
type packBody struct {
	n, block int
	keep     func(i int) bool
	counts   []int32 // per-block match counts, then exclusive offsets
	out      []int32
	phase    uint8
}

func (p *packBody) RunRange(_ *Worker, lo, hi int) {
	for ci := lo; ci < hi; ci++ {
		blo := ci * p.block
		bhi := min(blo+p.block, p.n)
		if p.phase == phaseCount {
			var c int32
			for i := blo; i < bhi; i++ {
				if p.keep(i) {
					c++
				}
			}
			p.counts[ci] = c
		} else {
			at := p.counts[ci]
			for i := blo; i < bhi; i++ {
				if p.keep(i) {
					p.out[at] = int32(i) //lint:scared pack cursor: at walks [counts[ci], counts[ci+1]), this chunk's slots by the exclusive-scan invariant
					at++
				}
			}
		}
	}
}

// packCount runs the counting pass and offset scan for an index pack
// over [0, n), leaving b.counts holding exclusive block offsets.
// Returns the total match count. The caller owns releasing b and m.
func packCount(w *Worker, a *arena.Arena, b *packBody, n int, keep func(i int) bool) int32 {
	if int64(n) > packIndexLimit {
		panic(fmt.Sprintf("core.PackIndex: index space %d exceeds int32 packed-index limit %d; indices would overflow", n, packIndexLimit))
	}
	block := scanBlockFor(unsafe.Sizeof(int32(0)))
	nblocks := (n + block - 1) / block
	b.n, b.block, b.keep = n, block, keep
	b.counts = arena.AllocUninit[int32](a, nblocks)
	b.phase = phaseCount
	countDyn(Block)
	countDyn(Block)
	if w == nil || nblocks <= 1 {
		b.RunRange(nil, 0, nblocks)
	} else {
		w.ForBody(0, nblocks, 1, b)
	}
	var total int32
	for ci := range b.counts {
		c := b.counts[ci]
		b.counts[ci] = total
		total += c
	}
	return total
}

// packWrite runs the writing pass of an index pack into out.
func packWrite(w *Worker, b *packBody, out []int32) {
	nblocks := len(b.counts)
	b.out = out
	b.phase = phaseWrite
	if w == nil || nblocks <= 1 {
		b.RunRange(nil, 0, nblocks)
	} else {
		w.ForBody(0, nblocks, 1, b)
	}
	b.keep, b.counts, b.out = nil, nil, nil
}

// PackIndexInto writes, in order, every index i in [0, n) for which
// keep(i) is true into dst (reusing its backing array when capacity
// allows) and returns the packed slice. Steady state with a warmed
// destination: 0 allocs. It is the destination-passing form of the
// paper's "pack" pattern.
func PackIndexInto(w *Worker, n int, keep func(i int) bool, dst []int32) []int32 {
	if n <= 0 {
		return dst[:0]
	}
	a := arena.Of(w)
	m := a.Mark()
	b := arena.AcquireBox[packBody](w)
	total := packCount(w, a, b, n, keep)
	dst = ensureLen(dst, int(total))
	packWrite(w, b, dst)
	arena.ReleaseBox(w, b)
	a.Release(m)
	return dst
}

// PackIndex returns, in order, every index i in [0, n) for which
// keep(i) is true. The result is freshly allocated; hot paths that can
// reuse a buffer should call PackIndexInto.
func PackIndex(w *Worker, n int, keep func(i int) bool) []int32 {
	if n <= 0 {
		return nil
	}
	return PackIndexInto(w, n, keep, nil)
}

// gatherBody copies src[idx[i]] into dst[i] — the writing half of
// Filter, as a box so the steady-state FilterInto builds no closures.
type gatherBody[T any] struct {
	idx      []int32
	src, dst []T
}

func (g *gatherBody[T]) RunRange(_ *Worker, lo, hi int) {
	for i := lo; i < hi; i++ {
		g.dst[i] = g.src[g.idx[i]]
	}
}

// FilterInto writes, in order, the elements of xs satisfying keep into
// dst (reusing its backing array when capacity allows) and returns the
// filtered slice. The packed-index scratch lives in the worker's arena.
func FilterInto[T any](w *Worker, xs []T, keep func(x T) bool, dst []T) []T {
	if len(xs) == 0 {
		return dst[:0]
	}
	a := arena.Of(w)
	m := a.Mark()
	b := arena.AcquireBox[packBody](w)
	total := packCount(w, a, b, len(xs), func(i int) bool { return keep(xs[i]) })
	idx := arena.AllocUninit[int32](a, total)
	packWrite(w, b, idx)
	arena.ReleaseBox(w, b)
	dst = ensureLen(dst, int(total))
	g := arena.AcquireBox[gatherBody[T]](w)
	g.idx, g.src, g.dst = idx, xs, dst
	countDyn(Stride)
	if w == nil || len(idx) <= 1 {
		g.RunRange(nil, 0, len(idx))
	} else {
		w.ForBody(0, len(idx), 0, g)
	}
	g.idx, g.src, g.dst = nil, nil, nil
	arena.ReleaseBox(w, g)
	a.Release(m)
	return dst
}

// Filter returns, in order, the elements of xs satisfying keep.
func Filter[T any](w *Worker, xs []T, keep func(x T) bool) []T {
	return FilterInto(w, xs, keep, nil)
}

// FlattenInto concatenates nested into dst (reusing its backing array
// when capacity allows), in parallel: a Stride pass collects lengths,
// a scan turns them into offsets, and each task copies its sub-slice
// into its own output range — RngInd with monotonicity guaranteed by
// the scan itself, so the unchecked traversal is safe by construction
// (the situation where PBBS's flatten needs no run-time check).
//
// Offsets are int64, so a total past math.MaxInt32 concatenates
// correctly instead of wrapping (the scatter target length is checked
// against the address space by make itself). The offsets scratch lives
// in the worker's arena.
func FlattenInto[T any](w *Worker, nested [][]T, dst []T) []T {
	a := arena.Of(w)
	m := a.Mark()
	offsets := arena.Alloc[int64](a, len(nested)+1)
	ForRange(w, 0, len(nested), 0, func(i int) {
		offsets[i+1] = int64(len(nested[i]))
	})
	ScanInclusive(w, offsets[1:])
	total := offsets[len(nested)]
	dst = ensureLen(dst, int(total))
	IndChunksUnchecked(w, dst, offsets, func(i int, chunk []T) {
		copy(chunk, nested[i])
	})
	a.Release(m)
	return dst
}

// Flatten concatenates nested into one freshly allocated slice.
func Flatten[T any](w *Worker, nested [][]T) []T {
	return FlattenInto(w, nested, nil)
}
