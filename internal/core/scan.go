package core

// Scans and packs (paper's "scan" and "pack" algorithmic patterns) are
// implemented as two-pass blocked algorithms: a Block-pattern pass
// computing per-chunk summaries, a short sequential scan over the chunk
// summaries, and a second Block-pattern pass writing results. Both
// passes touch disjoint chunks, so the whole construction is Fearless.

// scanBlockSize is the per-chunk grain for two-pass scans.
const scanBlockSize = 2048

// ScanExclusiveOp replaces xs[i] with op(identity, xs[0], ..., xs[i-1])
// in place and returns the total op-fold of the original slice. op must
// be associative with identity as its unit.
func ScanExclusiveOp[T any](w *Worker, xs []T, identity T, op func(a, b T) T) T {
	n := len(xs)
	if n == 0 {
		return identity
	}
	nblocks := (n + scanBlockSize - 1) / scanBlockSize
	sums := make([]T, nblocks)
	Chunks(w, xs, scanBlockSize, func(ci int, chunk []T) {
		acc := identity
		for i := range chunk {
			acc = op(acc, chunk[i])
		}
		sums[ci] = acc
	})
	total := identity
	for ci := 0; ci < nblocks; ci++ {
		s := sums[ci]
		sums[ci] = total
		total = op(total, s)
	}
	Chunks(w, xs, scanBlockSize, func(ci int, chunk []T) {
		acc := sums[ci]
		for i := range chunk {
			v := chunk[i]
			chunk[i] = acc
			acc = op(acc, v)
		}
	})
	return total
}

// ScanExclusive replaces xs[i] with the sum of xs[0..i) in place and
// returns the total sum of the original slice.
func ScanExclusive[T Number](w *Worker, xs []T) T {
	var zero T
	return ScanExclusiveOp(w, xs, zero, func(a, b T) T { return a + b })
}

// ScanInclusive replaces xs[i] with the sum of xs[0..i] in place and
// returns the total sum.
func ScanInclusive[T Number](w *Worker, xs []T) T {
	n := len(xs)
	if n == 0 {
		var zero T
		return zero
	}
	nblocks := (n + scanBlockSize - 1) / scanBlockSize
	sums := make([]T, nblocks)
	Chunks(w, xs, scanBlockSize, func(ci int, chunk []T) {
		var acc T
		for i := range chunk {
			acc += chunk[i]
		}
		sums[ci] = acc
	})
	var total T
	for ci := 0; ci < nblocks; ci++ {
		s := sums[ci]
		sums[ci] = total
		total += s
	}
	Chunks(w, xs, scanBlockSize, func(ci int, chunk []T) {
		acc := sums[ci]
		for i := range chunk {
			acc += chunk[i]
			chunk[i] = acc
		}
	})
	return total
}

// PackIndex returns, in order, every index i in [0, n) for which keep(i)
// is true. It is the index-space form of the paper's "pack" pattern.
func PackIndex(w *Worker, n int, keep func(i int) bool) []int32 {
	nblocks := (n + scanBlockSize - 1) / scanBlockSize
	if nblocks == 0 {
		return nil
	}
	counts := make([]int32, nblocks)
	ForRange(w, 0, nblocks, 1, func(ci int) {
		lo, hi := ci*scanBlockSize, (ci+1)*scanBlockSize
		if hi > n {
			hi = n
		}
		var c int32
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[ci] = c
	})
	total := ScanExclusive(w, counts)
	out := make([]int32, total)
	ForRange(w, 0, nblocks, 1, func(ci int) {
		lo, hi := ci*scanBlockSize, (ci+1)*scanBlockSize
		if hi > n {
			hi = n
		}
		at := counts[ci]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[at] = int32(i)
				at++
			}
		}
	})
	return out
}

// Filter returns, in order, the elements of xs satisfying keep.
func Filter[T any](w *Worker, xs []T, keep func(x T) bool) []T {
	idx := PackIndex(w, len(xs), func(i int) bool { return keep(xs[i]) })
	out := make([]T, len(idx))
	ForRange(w, 0, len(idx), 0, func(i int) { out[i] = xs[idx[i]] })
	return out
}

// Flatten concatenates nested into one slice, in parallel: a Stride
// pass collects lengths, a scan turns them into offsets, and each task
// copies its sub-slice into its own output range — RngInd with
// monotonicity guaranteed by the scan itself, so the unchecked
// traversal is safe by construction (the situation where PBBS's
// flatten needs no run-time check).
func Flatten[T any](w *Worker, nested [][]T) []T {
	offsets := make([]int32, len(nested)+1)
	ForRange(w, 0, len(nested), 0, func(i int) {
		offsets[i+1] = int32(len(nested[i]))
	})
	ScanInclusive(w, offsets[1:])
	out := make([]T, offsets[len(nested)])
	IndChunksUnchecked(w, out, offsets, func(i int, chunk []T) {
		copy(chunk, nested[i])
	})
	return out
}
