package core

import "sort"

// Parallel stable merge sort — the divide-and-conquer (D&C) pattern of
// paper Listing 9: split, recursively sort halves via Join, then merge
// (itself parallelized by binary-search splitting). Tasks work on
// disjoint halves, so the construction is Fearless.

// sortSeqThreshold is the subproblem size below which the sort runs
// sequentially (Listing 9's "go sequential" threshold).
const sortSeqThreshold = 4096

// mergeSeqThreshold is the combined size below which merges are serial.
const mergeSeqThreshold = 8192

// SortBy sorts xs in place, in parallel, using less as a strict weak
// ordering. The sort is stable.
func SortBy[T any](w *Worker, xs []T, less func(a, b T) bool) {
	countDyn(DC)
	if len(xs) < 2 {
		return
	}
	if w == nil || len(xs) <= sortSeqThreshold {
		sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	buf := make([]T, len(xs))
	mergeSortInto(w, xs, buf, false, less)
}

// mergeSortInto sorts src; if toBuf is true the sorted output lands in
// buf, otherwise in src. The two slices alternate roles down the
// recursion so every merge copies exactly once.
func mergeSortInto[T any](w *Worker, src, buf []T, toBuf bool, less func(a, b T) bool) {
	n := len(src)
	if n <= sortSeqThreshold {
		sort.SliceStable(src, func(i, j int) bool { return less(src[i], src[j]) })
		if toBuf {
			copy(buf, src)
		}
		return
	}
	mid := n / 2
	w.Join(
		func(w *Worker) { mergeSortInto(w, src[:mid], buf[:mid], !toBuf, less) },
		func(w *Worker) { mergeSortInto(w, src[mid:], buf[mid:], !toBuf, less) },
	)
	if toBuf {
		parMerge(w, src[:mid], src[mid:], buf, less)
	} else {
		parMerge(w, buf[:mid], buf[mid:], src, less)
	}
}

// parMerge merges sorted a and b into out (len(out) == len(a)+len(b)),
// splitting recursively: the larger input is halved at its median and
// the other input split by binary search, yielding independent
// sub-merges (a D&C Fearless construction).
func parMerge[T any](w *Worker, a, b, out []T, less func(a, b T) bool) {
	if len(a)+len(b) <= mergeSeqThreshold || w == nil {
		seqMerge(a, b, out, less)
		return
	}
	if len(a) < len(b) {
		// Keep a as the larger side; stability requires care: elements
		// equal across the boundary must take a's first. Swapping sides
		// flips tie-breaking, so instead split on b when it is larger,
		// searching a with the mirrored predicate.
		mid := len(b) / 2
		pivot := b[mid]
		// First index in a with pivot < a[i] (a-elements equal to pivot
		// stay on the left to preserve stability).
		cut := sort.Search(len(a), func(i int) bool { return less(pivot, a[i]) })
		w.Join(
			func(w *Worker) { parMerge(w, a[:cut], b[:mid+1], out[:cut+mid+1], less) },
			func(w *Worker) { parMerge(w, a[cut:], b[mid+1:], out[cut+mid+1:], less) },
		)
		return
	}
	mid := len(a) / 2
	pivot := a[mid]
	// First index in b with !(b[i] < pivot): b-elements equal to pivot go
	// to the right of a[mid], preserving stability.
	cut := sort.Search(len(b), func(i int) bool { return !less(b[i], pivot) })
	w.Join(
		func(w *Worker) { parMerge(w, a[:mid], b[:cut], out[:mid+cut], less) },
		func(w *Worker) { parMerge(w, a[mid:], b[cut:], out[mid+cut:], less) },
	)
}

func seqMerge[T any](a, b, out []T, less func(a, b T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// Sort sorts a slice of ordered numbers in place, in parallel.
func Sort[T Number](w *Worker, xs []T) {
	SortBy(w, xs, func(a, b T) bool { return a < b })
}

// IsSorted reports whether xs is non-decreasing under less (RO check).
func IsSorted[T any](w *Worker, xs []T, less func(a, b T) bool) bool {
	if len(xs) < 2 {
		return true
	}
	return MapReduce(w, len(xs)-1, true,
		func(i int) bool { return !less(xs[i+1], xs[i]) },
		func(a, b bool) bool { return a && b })
}
