package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// testPool is a shared 4-worker pool for the package tests.
var testPool = NewPool(4)

// on runs f on the shared test pool and waits for it.
func on(f func(w *Worker)) { testPool.Do(f) }

func TestRunDefaultPool(t *testing.T) {
	var ran atomic.Bool
	Run(func(w *Worker) { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("Run did not execute")
	}
	// Second Run reuses the default pool.
	Run(func(w *Worker) {})
}

func TestModeRoundTrip(t *testing.T) {
	defer SetMode(ModeUnchecked)
	for _, m := range []Mode{ModeUnchecked, ModeChecked, ModeSynchronized} {
		SetMode(m)
		if GetMode() != m {
			t.Fatalf("GetMode() = %v after SetMode(%v)", GetMode(), m)
		}
	}
	if ModeUnchecked.String() != "unchecked" || ModeChecked.String() != "checked" ||
		ModeSynchronized.String() != "synchronized" || Mode(99).String() != "invalid" {
		t.Fatal("Mode.String values wrong")
	}
}

func TestForRangeParallelAndSequential(t *testing.T) {
	for _, par := range []bool{false, true} {
		got := make([]int, 1000)
		body := func(i int) { got[i] = i * 2 }
		if par {
			on(func(w *Worker) { ForRange(w, 0, len(got), 0, body) })
		} else {
			ForRange(nil, 0, len(got), 0, body)
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("par=%v: got[%d] = %d", par, i, v)
			}
		}
	}
}

func TestForEachIdxStride(t *testing.T) {
	xs := make([]int, 5000)
	on(func(w *Worker) {
		ForEachIdx(w, xs, 0, func(i int, x *int) { *x = i * i })
	})
	for i, v := range xs {
		if v != i*i {
			t.Fatalf("xs[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachIdxEmptyAndSingle(t *testing.T) {
	ForEachIdx(nil, []int{}, 0, func(int, *int) { t.Fatal("called on empty") })
	one := []int{7}
	on(func(w *Worker) {
		ForEachIdx(w, one, 0, func(i int, x *int) { *x = 42 })
	})
	if one[0] != 42 {
		t.Fatal("single element not visited")
	}
}

func TestChunksBlock(t *testing.T) {
	xs := make([]int, 103)
	var calls atomic.Int32
	on(func(w *Worker) {
		Chunks(w, xs, 10, func(ci int, chunk []int) {
			calls.Add(1)
			for j := range chunk {
				chunk[j] = ci
			}
		})
	})
	if calls.Load() != 11 {
		t.Fatalf("chunks calls = %d, want 11", calls.Load())
	}
	for i, v := range xs {
		if v != i/10 {
			t.Fatalf("xs[%d] = %d, want %d", i, v, i/10)
		}
	}
}

func TestChunksZeroSizeClamped(t *testing.T) {
	xs := make([]int, 5)
	n := 0
	Chunks(nil, xs, 0, func(ci int, chunk []int) { n += len(chunk) })
	if n != 5 {
		t.Fatalf("visited %d elements, want 5", n)
	}
}

func TestFillTabulateCopy(t *testing.T) {
	on(func(w *Worker) {
		xs := make([]int, 777)
		Fill(w, xs, 9)
		for _, v := range xs {
			if v != 9 {
				t.Fatal("Fill missed an element")
			}
		}
		tab := Tabulate(w, 100, func(i int) int { return 3 * i })
		for i, v := range tab {
			if v != 3*i {
				t.Fatalf("Tabulate[%d] = %d", i, v)
			}
		}
		dst := make([]int, 100)
		CopyInto(w, dst, tab)
		for i := range dst {
			if dst[i] != tab[i] {
				t.Fatal("CopyInto mismatch")
			}
		}
	})
}

func TestCopyIntoPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CopyInto(nil, make([]int, 1), make([]int, 2))
}

func TestSumMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int64, 100000)
	var want int64
	for i := range xs {
		xs[i] = rng.Int63n(1000)
		want += xs[i]
	}
	var got int64
	on(func(w *Worker) { got = Sum(w, xs) })
	if got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
	if s := Sum(nil, xs); s != want {
		t.Fatalf("sequential Sum = %d, want %d", s, want)
	}
}

func TestReduceDeterministicFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	var a, b float64
	on(func(w *Worker) { a = Sum(w, xs) })
	on(func(w *Worker) { b = Sum(w, xs) })
	if a != b {
		t.Fatalf("float Sum not deterministic: %v vs %v", a, b)
	}
}

func TestMinMaxCountAll(t *testing.T) {
	xs := []int{5, -3, 9, 0, 7, -3, 9}
	on(func(w *Worker) {
		if m := Max(w, xs); m != 9 {
			t.Errorf("Max = %d", m)
		}
		if m := Min(w, xs); m != -3 {
			t.Errorf("Min = %d", m)
		}
		if c := Count(w, xs, func(x int) bool { return x < 0 }); c != 2 {
			t.Errorf("Count = %d", c)
		}
		if All(w, xs, func(x int) bool { return x >= -3 }) != true {
			t.Error("All false")
		}
		if All(w, xs, func(x int) bool { return x > 0 }) != false {
			t.Error("All true")
		}
	})
}

func TestMaxIndexTiesSmallest(t *testing.T) {
	xs := []int{1, 4, 2, 4, 3}
	on(func(w *Worker) {
		if i := MaxIndex(w, xs); i != 1 {
			t.Errorf("MaxIndex = %d, want 1", i)
		}
	})
	big := make([]int, 100000)
	big[70000] = 5
	big[70001] = 5
	on(func(w *Worker) {
		if i := MaxIndex(w, big); i != 70000 {
			t.Errorf("MaxIndex = %d, want 70000", i)
		}
	})
}

func TestMaxPanicsEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"Max":      func() { Max(nil, []int{}) },
		"Min":      func() { Min(nil, []int{}) },
		"MaxIndex": func() { MaxIndex(nil, []int{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on empty slice", name)
				}
			}()
			f()
		}()
	}
}

func TestMapReduceIndexSpace(t *testing.T) {
	var got int
	on(func(w *Worker) {
		got = MapReduce(w, 10000, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	})
	if got != 10000*9999/2 {
		t.Fatalf("MapReduce = %d", got)
	}
}

func TestReducePropertyMatchesFold(t *testing.T) {
	f := func(xs []int32) bool {
		var want int64
		for _, x := range xs {
			want += int64(x)
		}
		var got int64
		on(func(w *Worker) {
			got = Reduce(w, xs, 0, func(x int32) int64 { return int64(x) }, func(a, b int64) int64 { return a + b })
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicCountsTrackInvocations(t *testing.T) {
	defer EnableDynamicCensus(EnableDynamicCensus(true))
	ResetDynamicCounts()
	ForRange(nil, 0, 10, 0, func(int) {})
	Chunks(nil, make([]int, 10), 2, func(int, []int) {})
	IndForEachUnchecked(nil, make([]int, 4), []int32{0, 1, 2, 3}, func(int, *int) {})
	m := DynamicCounts()
	if m[Stride] < 1 || m[Block] < 1 || m[SngInd] < 1 {
		t.Fatalf("dynamic counts missing: %v", m)
	}
	ResetDynamicCounts()
	if DynamicCounts()[Stride] != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestSegReduce(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6}
	offsets := []int32{0, 2, 2, 5, 6}
	var got []int
	var err error
	on(func(w *Worker) {
		got, err = SegReduce(w, xs, offsets, 0,
			func(x int) int { return x },
			func(a, b int) int { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, 12, 6}
	if len(got) != len(want) {
		t.Fatalf("SegReduce = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SegReduce = %v, want %v", got, want)
		}
	}
}

func TestSegReduceValidatesBoundaries(t *testing.T) {
	_, err := SegReduce(nil, []int{1, 2}, []int32{0, 3}, 0,
		func(x int) int { return x }, func(a, b int) int { return a + b })
	if err == nil {
		t.Fatal("out-of-range boundary accepted")
	}
	_, err = SegReduce(nil, []int{1, 2}, []int32{1, 0}, 0,
		func(x int) int { return x }, func(a, b int) int { return a + b })
	if err == nil {
		t.Fatal("decreasing boundary accepted")
	}
	got, err := SegReduce(nil, []int{1}, []int32{}, 0,
		func(x int) int { return x }, func(a, b int) int { return a + b })
	if err != nil || got != nil {
		t.Fatalf("empty offsets: %v %v", got, err)
	}
}

func TestSegReducePropertyMatchesSequential(t *testing.T) {
	f := func(raw []uint8, cuts []uint8) bool {
		xs := make([]int, len(raw))
		for i, r := range raw {
			xs[i] = int(r)
		}
		offsets := []int32{0}
		for _, c := range cuts {
			next := offsets[len(offsets)-1] + int32(c%5)
			if next > int32(len(xs)) {
				next = int32(len(xs))
			}
			offsets = append(offsets, next)
		}
		var got []int
		var err error
		on(func(w *Worker) {
			got, err = SegReduce(w, xs, offsets, 0,
				func(x int) int { return x }, func(a, b int) int { return a + b })
		})
		if err != nil {
			return false
		}
		for i := 0; i+1 < len(offsets); i++ {
			want := 0
			for _, v := range xs[offsets[i]:offsets[i+1]] {
				want += v
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStencil2DHeatStep(t *testing.T) {
	const w0, h0 = 64, 32
	src := make([]float64, w0*h0)
	src[15*w0+20] = 100 // a hot spot
	avg := func(g []float64, x, y int) float64 {
		get := func(xx, yy int) float64 {
			if xx < 0 || xx >= w0 || yy < 0 || yy >= h0 {
				return 0
			}
			return g[yy*w0+xx]
		}
		return (get(x, y) + get(x-1, y) + get(x+1, y) + get(x, y-1) + get(x, y+1)) / 5
	}
	// Parallel result vs sequential oracle, over several steps.
	par := append([]float64(nil), src...)
	seq := append([]float64(nil), src...)
	parBuf := make([]float64, len(src))
	seqBuf := make([]float64, len(src))
	for step := 0; step < 5; step++ {
		on(func(wk *Worker) { Stencil2D(wk, par, parBuf, w0, avg) })
		Stencil2D(nil, seq, seqBuf, w0, avg)
		par, parBuf = parBuf, par
		seq, seqBuf = seqBuf, seq
	}
	var totalPar, totalSeq float64
	for i := range par {
		if par[i] != seq[i] {
			t.Fatalf("cell %d: parallel %v != sequential %v", i, par[i], seq[i])
		}
		totalPar += par[i]
		totalSeq += seq[i]
	}
	if totalPar == 0 {
		t.Fatal("heat vanished entirely")
	}
}

func TestStencil2DGuards(t *testing.T) {
	for name, f := range map[string]func(){
		"zero width": func() { Stencil2D(nil, []int{1}, []int{0}, 0, nil) },
		"mismatched": func() { Stencil2D(nil, []int{1, 2}, []int{0}, 1, nil) },
		"aliased": func() {
			g := []int{1, 2}
			Stencil2D(nil, g, g, 2, func([]int, int, int) int { return 0 })
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
