package core

import (
	"fmt"
	"sync/atomic"
)

// This file reproduces the paper's central library contribution: the two
// interior-unsafe adapters for irregular local read-write parallelism
// (Sec 5.1). IndForEach is the analog of par_ind_iter_mut (Listing 6(f)):
// it validates at run time that the offsets are unique before handing
// each task a disjoint element, upgrading the programmer from Scared to
// Comfortable at the price of an O(n) parallel check. IndChunks is the
// analog of par_ind_chunks_mut (Listing 7(c)): it validates that chunk
// boundaries increase monotonically, a check so cheap that Comfortable
// costs almost nothing. The *Unchecked variants are the analog of the
// unsafe-block expression (Listing 6(d)): no validation, full trust.

// DuplicateOffsetError reports that a checked SngInd traversal found two
// tasks targeting the same element.
type DuplicateOffsetError struct {
	Index  int // position in offsets of the (second) duplicate
	Offset int // the duplicated target offset
}

func (e *DuplicateOffsetError) Error() string {
	return fmt.Sprintf("core.IndForEach: duplicate offset %d (at offsets[%d]); tasks are not independent", e.Offset, e.Index)
}

// OffsetRangeError reports an offset outside the target slice.
type OffsetRangeError struct {
	Index  int
	Offset int
	Len    int
}

func (e *OffsetRangeError) Error() string {
	return fmt.Sprintf("core.IndForEach: offsets[%d] = %d out of range for target of length %d", e.Index, e.Offset, e.Len)
}

// NonMonotoneError reports that a checked RngInd traversal found chunk
// boundaries that are not monotonically non-decreasing or out of range.
type NonMonotoneError struct {
	Index int
	Lo    int
	Hi    int
	Len   int
}

func (e *NonMonotoneError) Error() string {
	return fmt.Sprintf("core.IndChunks: boundaries offsets[%d..%d] = [%d, %d) invalid for target of length %d; chunks are not disjoint", e.Index, e.Index+1, e.Lo, e.Hi, e.Len)
}

// IndForEach is the checked SngInd primitive: it invokes
// f(i, &out[offsets[i]]) for every i, after validating in parallel that
// all offsets are in range and mutually distinct. On validation failure
// it returns an error without invoking f. This run-time check is the
// price of Comfortable irregular parallelism; the paper reports it can
// cost up to 2.8x on check-dominated benchmarks (Fig 5a). When rpblint
// -certify proves the offsets unique statically, it flags the site
// elidable-check: the validation duplicates the proof and the call may
// switch to IndForEachUnchecked.
func IndForEach[T any, I IndexInt](w *Worker, out []T, offsets []I, f func(i int, slot *T)) error {
	countDyn(SngInd)
	if err := checkUniqueOffsets(w, len(out), offsets); err != nil {
		return err
	}
	indForEachBody(w, out, offsets, f)
	return nil
}

// IndForEachUnchecked is the unchecked SngInd primitive — the analog of
// the unsafe-Rust expression. The caller asserts that all offsets are in
// range and mutually distinct; violations are silent data races (Scared).
//
// Certificate obligation (rpblint -certify, docs/LINT.md): a call site
// is Fearless under certificate when the offsets slice provably holds
// pairwise-distinct values in [0, len(out)) at the call — accepted
// proof sources are a core.PackIndex result used unmodified, a
// complete affine fill offsets[i] = a*i+c with constant a != 0, or an
// identity fill permuted only by core.Sort/SortBy/radix.SortPairs.
// Sites without a current certificate must carry a DeclareSite entry
// or a //lint:scared marker.
func IndForEachUnchecked[T any, I IndexInt](w *Worker, out []T, offsets []I, f func(i int, slot *T)) {
	countDyn(SngInd)
	indForEachBody(w, out, offsets, f)
}

func indForEachBody[T any, I IndexInt](w *Worker, out []T, offsets []I, f func(i int, slot *T)) {
	if w == nil {
		for i := range offsets {
			f(i, &out[offsets[i]])
		}
		return
	}
	w.For(0, len(offsets), 0, func(_ *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i, &out[offsets[i]])
		}
	})
}

// checkUniqueOffsets validates offsets in parallel using a shared atomic
// bitmap over the target index space. It returns the first violation
// found (by atomic claim, so exactly one error survives a racy run).
func checkUniqueOffsets[I IndexInt](w *Worker, outLen int, offsets []I) error {
	bitmap := make([]atomic.Uint32, (outLen+31)/32)
	var errSlot atomic.Pointer[error]
	setErr := func(e error) { errSlot.CompareAndSwap(nil, &e) }
	ForRange(w, 0, len(offsets), 0, func(i int) {
		if errSlot.Load() != nil {
			return
		}
		off := int64(offsets[i])
		if off < 0 || off >= int64(outLen) {
			setErr(&OffsetRangeError{Index: i, Offset: int(off), Len: outLen})
			return
		}
		word, bit := off/32, uint32(1)<<(off%32)
		for {
			old := bitmap[word].Load()
			if old&bit != 0 {
				setErr(&DuplicateOffsetError{Index: i, Offset: int(off)})
				return
			}
			if bitmap[word].CompareAndSwap(old, old|bit) {
				return
			}
		}
	})
	if ep := errSlot.Load(); ep != nil {
		return *ep
	}
	return nil
}

// IndChunks is the checked RngInd primitive: offsets holds k+1 chunk
// boundaries, and f(i, out[offsets[i]:offsets[i+1]]) is invoked for each
// of the k chunks after validating in parallel that the boundaries are
// monotonically non-decreasing and within range. The check is O(k) and
// cheap relative to the chunk work, making Comfortable nearly free
// (paper Sec 5.1). Statically proved sites are flagged elidable-check
// by rpblint -certify and may switch to IndChunksUnchecked.
func IndChunks[T any, I IndexInt](w *Worker, out []T, offsets []I, f func(i int, chunk []T)) error {
	countDyn(RngInd)
	if len(offsets) == 0 {
		return nil
	}
	var errSlot atomic.Pointer[error]
	ForRange(w, 0, len(offsets)-1, 0, func(i int) {
		lo, hi := int64(offsets[i]), int64(offsets[i+1])
		if lo > hi || lo < 0 || hi > int64(len(out)) {
			e := error(&NonMonotoneError{Index: i, Lo: int(lo), Hi: int(hi), Len: len(out)})
			errSlot.CompareAndSwap(nil, &e)
		}
	})
	if ep := errSlot.Load(); ep != nil {
		return *ep
	}
	indChunksBody(w, out, offsets, f)
	return nil
}

// IndChunksUnchecked is the unchecked RngInd primitive: the caller
// asserts boundary monotonicity (Scared).
//
// Certificate obligation (rpblint -certify, docs/LINT.md): a call site
// is Fearless under certificate when offsets provably holds
// monotonically non-decreasing boundaries within [0, len(out)] —
// accepted proof sources are a prefix sum (ScanInclusive/ScanExclusive
// over non-negative values, unmutated between scan and call, with
// len(out) bound to the scan's returned total) or an ascending affine
// fill. Sites without a current certificate must carry a DeclareSite
// entry or a //lint:scared marker.
func IndChunksUnchecked[T any, I IndexInt](w *Worker, out []T, offsets []I, f func(i int, chunk []T)) {
	countDyn(RngInd)
	if len(offsets) == 0 {
		return
	}
	indChunksBody(w, out, offsets, f)
}

func indChunksBody[T any, I IndexInt](w *Worker, out []T, offsets []I, f func(i int, chunk []T)) {
	k := len(offsets) - 1
	if w == nil {
		for i := 0; i < k; i++ {
			f(i, out[offsets[i]:offsets[i+1]])
		}
		return
	}
	w.For(0, k, 1, func(_ *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i, out[offsets[i]:offsets[i+1]])
		}
	})
}

// Scatter writes vals[i] into out[offsets[i]] using the expression
// selected by the suite-wide Mode: unchecked (Scared, fast), checked
// (Comfortable, paying the uniqueness check), or synchronized. It is the
// convenience wrapper benchmarks use for plain SngInd scatters
// (Listing 6's out[offsets[i]] = input[i]).
func Scatter[T any, I IndexInt](w *Worker, out []T, offsets []I, vals []T) error {
	switch GetMode() {
	case ModeChecked:
		return IndForEach(w, out, offsets, func(i int, slot *T) { *slot = vals[i] })
	default:
		IndForEachUnchecked(w, out, offsets, func(i int, slot *T) { *slot = vals[i] })
		return nil
	}
}
