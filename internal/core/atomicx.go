package core

import (
	"sync"
	"sync/atomic"
)

// AW (arbitrary read-write) helpers — paper Sec 5.2. These are the
// synchronization tools that the paper finds necessary (and "Scared")
// for tasks with overlapping conflicting accesses: CAS-based priority
// updates (write-min/write-max, as in PBBS), and sharded locks for
// element types too large for hardware atomics (the hist case of
// Fig 5b). Using them correctly remains the caller's burden; the library
// cannot rule out atomicity violations, deadlock, or livelock.

// WriteMin32 atomically lowers *a to v if v is smaller, returning true
// when this call performed the update. This is the priority-update
// primitive of Shun et al. used throughout PBBS's irregular kernels.
func WriteMin32(a *atomic.Uint32, v uint32) bool {
	countDyn(AW)
	for {
		old := a.Load()
		if v >= old {
			return false
		}
		if a.CompareAndSwap(old, v) {
			return true
		}
	}
}

// WriteMin64 is WriteMin32 for 64-bit values.
func WriteMin64(a *atomic.Uint64, v uint64) bool {
	countDyn(AW)
	for {
		old := a.Load()
		if v >= old {
			return false
		}
		if a.CompareAndSwap(old, v) {
			return true
		}
	}
}

// WriteMax32 atomically raises *a to v if v is larger, returning true
// when this call performed the update.
func WriteMax32(a *atomic.Uint32, v uint32) bool {
	countDyn(AW)
	for {
		old := a.Load()
		if v <= old {
			return false
		}
		if a.CompareAndSwap(old, v) {
			return true
		}
	}
}

// CASLoop32 applies f to the current value of a until a compare-and-swap
// installs the result, returning the final (old, new) pair. If f returns
// (x, false) the loop stops without writing and returns (x, x).
func CASLoop32(a *atomic.Uint32, f func(old uint32) (uint32, bool)) (uint32, uint32) {
	countDyn(AW)
	for {
		old := a.Load()
		nw, write := f(old)
		if !write {
			return old, old
		}
		if a.CompareAndSwap(old, nw) {
			return old, nw
		}
	}
}

// ShardedLocks is a fixed-size array of mutexes guarding an index space,
// the expression PBBS-style code reaches for when element types are too
// large for atomics (paper Fig 5b's hist). Lock(i) guards index i; the
// mapping is many-to-one, so two distinct indices may contend on one
// lock but a single index is always guarded by exactly one.
type ShardedLocks struct {
	locks []sync.Mutex
	mask  uint64
}

// NewShardedLocks creates a sharded lock set with at least n shards,
// rounded up to a power of two.
func NewShardedLocks(n int) *ShardedLocks {
	size := ceilPow2Int(n)
	return &ShardedLocks{locks: make([]sync.Mutex, size), mask: uint64(size - 1)}
}

// Lock acquires the shard guarding index i.
func (s *ShardedLocks) Lock(i int) {
	countDyn(AW)
	s.locks[uint64(i)&s.mask].Lock()
}

// Unlock releases the shard guarding index i.
func (s *ShardedLocks) Unlock(i int) {
	s.locks[uint64(i)&s.mask].Unlock()
}

// With runs f while holding the shard guarding index i.
func (s *ShardedLocks) With(i int, f func()) {
	s.Lock(i)
	f()
	s.Unlock(i)
}

// Shards returns the number of shards.
func (s *ShardedLocks) Shards() int { return len(s.locks) }

func ceilPow2Int(v int) int {
	if v <= 1 {
		return 1
	}
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// ScatterAtomic32 stores vals[i] into out[offsets[i]] with atomic stores
// — the "placate the type system with atomics" expression of paper
// Listing 6(e). It synchronizes each store but validates nothing, so it
// remains Scared: duplicate offsets silently lose updates.
func ScatterAtomic32[I IndexInt](w *Worker, out []atomic.Uint32, offsets []I, vals []uint32) {
	countDyn(SngInd)
	ForRange(w, 0, len(offsets), 0, func(i int) {
		out[offsets[i]].Store(vals[i])
	})
}

// WriteMinU32 is WriteMin32 over a plain uint32 slot, for kernels that
// keep dense arrays of ordinary integers and tag individual accesses
// atomic — the Go spelling of the paper's "loads and stores tagged with
// Relaxed ordering".
func WriteMinU32(p *uint32, v uint32) bool {
	countDyn(AW)
	for {
		old := atomic.LoadUint32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// SetBit atomically sets bit i of the packed bitmap bm (bit i%64 of
// word bm[i/64]), returning true when this call flipped it from 0 to 1.
// This is the claim primitive of bitmap frontiers (direction-optimizing
// BFS): concurrent setters of distinct bits in one word race on the
// word, so the access is AW; the boolean result makes the claim exact —
// exactly one caller wins each bit. Implemented as a CAS loop (an
// atomic fetch-OR needs Go 1.23's atomic.OrUint64).
func SetBit(bm []uint64, i int32) bool {
	countDyn(AW)
	p := &bm[uint32(i)>>6]
	mask := uint64(1) << (uint32(i) & 63)
	for {
		old := atomic.LoadUint64(p)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(p, old, old|mask) {
			return true
		}
	}
}

// TestBit reads bit i of the packed bitmap bm with a plain load. Use it
// only where a racing read is benign for the algorithm (level-
// synchronous frontiers read the previous level's bitmap, which no one
// writes during the step).
func TestBit(bm []uint64, i int32) bool {
	return bm[uint32(i)>>6]&(uint64(1)<<(uint32(i)&63)) != 0
}

// WriteMinU64 is WriteMinU32 for 64-bit slots.
func WriteMinU64(p *uint64, v uint64) bool {
	countDyn(AW)
	for {
		old := atomic.LoadUint64(p)
		if v >= old {
			return false
		}
		if a := atomic.CompareAndSwapUint64(p, old, v); a {
			return true
		}
	}
}
