package core

import (
	"fmt"
	"testing"
)

// BenchmarkScanGrainSweep measures ScanInclusive over a fixed 4M-int32
// input while varying scanTargetBytes, the cache budget from which
// scanBlockFor derives the per-chunk element count. The sweep behind
// the 64 KiB default recorded in EXPERIMENTS.md: small chunks pay
// per-chunk dispatch twice per scan, huge chunks spill the chunk out of
// L2 between the count and write passes.
func BenchmarkScanGrainSweep(b *testing.B) {
	const n = 1 << 22
	xs := make([]int32, n)
	for _, target := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("target=%dKiB", target>>10), func(b *testing.B) {
			defer func(old int) { scanTargetBytes = old }(scanTargetBytes)
			scanTargetBytes = target
			pool := NewPool(4)
			defer pool.Close()
			b.ReportAllocs()
			b.SetBytes(int64(n * 4))
			pool.Do(func(w *Worker) {
				for i := range xs {
					xs[i] = 1
				}
				ScanInclusive(w, xs) // warm-up: grow arena, fill caches
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ScanInclusive(w, xs)
				}
				b.StopTimer()
			})
		})
	}
}
