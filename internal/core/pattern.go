package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Pattern classifies a parallel access to shared data, following the
// paper's taxonomy (Table 3).
type Pattern uint8

const (
	RO Pattern = iota // read-only
	Stride
	Block
	DC // divide and conquer
	SngInd
	RngInd
	AW // arbitrary reads and writes
	numPatterns
)

// Patterns lists all patterns in the paper's Table 3 order.
var Patterns = []Pattern{RO, Stride, Block, DC, SngInd, RngInd, AW}

func (p Pattern) String() string {
	switch p {
	case RO:
		return "RO"
	case Stride:
		return "Stride"
	case Block:
		return "Block"
	case DC:
		return "D&C"
	case SngInd:
		return "SngInd"
	case RngInd:
		return "RngInd"
	case AW:
		return "AW"
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// WritePattern describes the pattern's write structure as in Table 3.
func (p Pattern) WritePattern() string {
	switch p {
	case RO:
		return "Read only (AXM)"
	case Stride:
		return "Striding"
	case Block:
		return "Blocking"
	case DC:
		return "Divide and Conquer"
	case SngInd:
		return "Single-valued indirection"
	case RngInd:
		return "Ranged indirection"
	case AW:
		return "Arbitrary writes"
	}
	return "unknown"
}

// Expression names the library construct that expresses the pattern, the
// analog of Table 3's "Parallel expression" column.
func (p Pattern) Expression() string {
	switch p {
	case RO:
		return "Reduce / MapReduce (core)"
	case Stride:
		return "ForEachIdx (core)"
	case Block:
		return "Chunks (core)"
	case DC:
		return "Worker.Join (sched)"
	case SngInd:
		return "IndForEach (core, checked)"
	case RngInd:
		return "IndChunks (core, checked)"
	case AW:
		return "mix of above + atomics/locks"
	}
	return "unknown"
}

// Fear is the paper's spectrum of fear in parallel programming (Fig 2).
type Fear uint8

const (
	// Fearless: errors are structurally impossible for correct use of the
	// primitive (the paper: caught at compile time).
	Fearless Fear = iota
	// Comfortable: errors are caught at run time with symptoms close to
	// their causes (the primitive's dynamic check reports them).
	Comfortable
	// Scared: errors may happen without being detected.
	Scared
)

func (f Fear) String() string {
	switch f {
	case Fearless:
		return "Fearless"
	case Comfortable:
		return "Comfortable"
	case Scared:
		return "Scared"
	}
	return fmt.Sprintf("Fear(%d)", uint8(f))
}

// Fear returns the fear level the recommended expression of the pattern
// grants (Table 3's final column).
func (p Pattern) Fear() Fear {
	switch p {
	case RO, Stride, Block, DC:
		return Fearless
	case SngInd, RngInd:
		return Comfortable
	case AW:
		return Scared
	}
	return Scared
}

// Irregular reports whether the pattern is one of the paper's irregular
// access patterns (Sec 5: SngInd, RngInd, AW).
func (p Pattern) Irregular() bool {
	return p == SngInd || p == RngInd || p == AW
}

// Site identifies one static access to a shared data structure inside a
// parallel region, the unit the paper's Sec 7.2 census counts.
type Site struct {
	Bench   string
	Label   string
	Pattern Pattern
}

// SiteConflict records a re-declaration of an existing (bench, label)
// site under a different pattern — two pieces of code disagreeing about
// what a shared access does, which would silently corrupt the census.
type SiteConflict struct {
	Bench      string
	Label      string
	First      Pattern // pattern of the declaration that won
	Redeclared Pattern // conflicting later pattern, ignored
}

var (
	siteMu        sync.Mutex
	siteSet       = map[string]Site{}
	siteOrder     []string
	siteConflicts []SiteConflict
)

// DeclareSite registers a static parallel access site. Benchmarks declare
// one site per shared-data access in their parallel regions, adjacent to
// the code performing the access; the registry deduplicates by
// (bench, label) so declarations are idempotent across runs. The
// resulting census regenerates Table 1 and Fig 3.
//
// Re-declaring an existing (bench, label) with the same pattern is a
// no-op. Re-declaring it with a different pattern keeps the first
// declaration, records a SiteConflict, and returns an error; most
// callers declare at init time and ignore the return, so conflicts are
// also surfaced through SiteConflicts (and the rpblint fear report).
func DeclareSite(bench, label string, p Pattern) error {
	key := bench + "\x00" + label
	siteMu.Lock()
	defer siteMu.Unlock()
	if prev, ok := siteSet[key]; ok {
		if prev.Pattern != p {
			siteConflicts = append(siteConflicts, SiteConflict{
				Bench: bench, Label: label,
				First: prev.Pattern, Redeclared: p,
			})
			return fmt.Errorf("core: site (%s, %q) re-declared as %s; first declared %s wins",
				bench, label, p, prev.Pattern)
		}
		return nil
	}
	siteSet[key] = Site{Bench: bench, Label: label, Pattern: p}
	siteOrder = append(siteOrder, key)
	return nil
}

// SiteConflicts returns every conflicting re-declaration seen so far,
// in occurrence order.
func SiteConflicts() []SiteConflict {
	siteMu.Lock()
	defer siteMu.Unlock()
	return append([]SiteConflict(nil), siteConflicts...)
}

// Sites returns all declared sites in declaration order.
func Sites() []Site {
	siteMu.Lock()
	defer siteMu.Unlock()
	out := make([]Site, 0, len(siteOrder))
	for _, k := range siteOrder {
		out = append(out, siteSet[k])
	}
	return out
}

// ResetSites clears the site registry and conflict log (used by tests).
func ResetSites() {
	siteMu.Lock()
	defer siteMu.Unlock()
	siteSet = map[string]Site{}
	siteOrder = nil
	siteConflicts = nil
}

// Census summarizes the declared sites: per-pattern site counts and the
// per-benchmark set of patterns used.
type Census struct {
	Total     int
	PerKind   map[Pattern]int
	PerBench  map[string]map[Pattern]bool
	Benches   []string // sorted
	Irregular int      // sites with an irregular pattern
}

// TakeCensus computes the access-pattern census over all declared sites.
func TakeCensus() Census {
	sites := Sites()
	c := Census{
		PerKind:  map[Pattern]int{},
		PerBench: map[string]map[Pattern]bool{},
	}
	for _, s := range sites {
		c.Total++
		c.PerKind[s.Pattern]++
		if s.Pattern.Irregular() {
			c.Irregular++
		}
		m := c.PerBench[s.Bench]
		if m == nil {
			m = map[Pattern]bool{}
			c.PerBench[s.Bench] = m
		}
		m[s.Pattern] = true
	}
	for b := range c.PerBench {
		c.Benches = append(c.Benches, b)
	}
	sort.Strings(c.Benches)
	return c
}

// dynCounts tracks how many times each pattern primitive has been invoked
// at run time — a dynamic complement to the static census.
var dynCounts [numPatterns]atomic.Int64

// dynEnabled gates the run-time census. Counting costs an atomic RMW on
// a shared counter per primitive invocation — per *relaxation* for the
// AW helpers, which dominates graph-kernel hot loops — so the counters
// only accrue while a census consumer has switched them on; everyone
// else pays a read-mostly flag load.
var dynEnabled atomic.Bool

func countDyn(p Pattern) {
	if dynEnabled.Load() {
		dynCounts[p].Add(1)
	}
}

// EnableDynamicCensus switches run-time pattern counting on or off and
// returns the previous setting. Census consumers (rpb -census,
// rpbreport -what dyncensus) enable it around their measured runs; it
// is off by default so benchmark hot paths stay at hardware speed.
func EnableDynamicCensus(on bool) bool { return dynEnabled.Swap(on) }

// CountDynamic records one run-time invocation of pattern p in the
// dynamic census. Kernel code that drives sched loops directly (the
// box-based ForBody bodies of internal/radix, which bypass the closure
// primitives above) calls it so the fear report's dynamic column stays
// truthful about what actually ran.
func CountDynamic(p Pattern) { countDyn(p) }

// DynamicCounts returns the number of run-time invocations per pattern
// since the last reset.
func DynamicCounts() map[Pattern]int64 {
	m := make(map[Pattern]int64, numPatterns)
	for _, p := range Patterns {
		m[p] = dynCounts[p].Load()
	}
	return m
}

// ResetDynamicCounts zeroes the per-pattern invocation counters.
func ResetDynamicCounts() {
	for i := range dynCounts {
		dynCounts[i].Store(0)
	}
}
