package core

import (
	"errors"
	"strings"
	"testing"
)

// The certificate story (rpblint -certify, docs/LINT.md) rests on two
// claims these tests pin down: the certified offset shapes really are
// race-free when run unchecked (the race detector agrees), and the
// dynamic checks they elide really do fire on the shapes the certifier
// refuses.

func TestOffsetRangeErrorMessage(t *testing.T) {
	err := IndForEach(nil, make([]int, 10), []int32{0, 1, 12}, func(int, *int) {})
	var oor *OffsetRangeError
	if !errors.As(err, &oor) {
		t.Fatalf("want OffsetRangeError, got %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"core.IndForEach", "offsets[2]", "12", "out of range", "length 10"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}

func TestNonMonotoneErrorMessage(t *testing.T) {
	err := IndChunks(nil, make([]int, 50), []int32{0, 30, 20, 50}, func(int, []int) {})
	var nm *NonMonotoneError
	if !errors.As(err, &nm) {
		t.Fatalf("want NonMonotoneError, got %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"core.IndChunks", "offsets[1..2]", "[30, 20)", "length 50", "not disjoint"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}

// TestUncheckedCertifiedShapeRaceClean runs the unchecked primitives on
// offsets of exactly the shapes the certifier proves — an affine fill
// offsets[i] = 2*i+1 (stride 2, unique by construction) and a prefix
// sum — under the full worker pool. With -race this asserts the
// "Fearless under certificate" claim: no synchronization is needed
// because the proved property makes the element accesses disjoint.
func TestUncheckedCertifiedShapeRaceClean(t *testing.T) {
	const n = 4096
	out := make([]int32, 2*n+1)
	offsets := make([]int32, n)
	for i := range offsets {
		offsets[i] = int32(2*i + 1)
	}
	on(func(w *Worker) {
		IndForEachUnchecked(w, out, offsets, func(i int, slot *int32) { *slot = int32(i) })
	})
	for i, off := range offsets {
		if out[off] != int32(i) {
			t.Fatalf("out[%d] = %d, want %d", off, out[off], i)
		}
	}

	// RngInd: boundaries from a prefix sum over non-negative chunk sizes.
	sizes := make([]int32, 64)
	for i := range sizes {
		sizes[i] = int32(i % 7)
	}
	boundaries := make([]int32, len(sizes)+1)
	copy(boundaries[1:], sizes)
	total := ScanInclusive(nil, boundaries[1:])
	chunked := make([]int32, total)
	on(func(w *Worker) {
		IndChunksUnchecked(w, chunked, boundaries, func(i int, chunk []int32) {
			for j := range chunk {
				chunk[j] = int32(i)
			}
		})
	})
	for d := 0; d < len(sizes); d++ {
		for _, v := range chunked[boundaries[d]:boundaries[d+1]] {
			if v != int32(d) {
				t.Fatalf("chunk %d contains %d", d, v)
			}
		}
	}
}

// TestCheckedCatchesUncertifiableShape is the counterpoint: the same
// scatter with a duplicated offset — the shape the certifier refuses —
// is caught by the checked primitive before the body runs.
func TestCheckedCatchesUncertifiableShape(t *testing.T) {
	const n = 4096
	out := make([]int32, 2*n+1)
	offsets := make([]int32, n)
	for i := range offsets {
		offsets[i] = int32(2*i + 1)
	}
	offsets[100] = offsets[200] // no longer unique: stride proof impossible
	var err error
	on(func(w *Worker) {
		err = IndForEach(w, out, offsets, func(i int, slot *int32) { *slot = int32(i) })
	})
	var dup *DuplicateOffsetError
	if !errors.As(err, &dup) {
		t.Fatalf("want DuplicateOffsetError, got %v", err)
	}
	if dup.Offset != int(offsets[100]) {
		t.Fatalf("error names offset %d, want %d", dup.Offset, offsets[100])
	}
}
