package core

// This file holds the read-only (RO) primitives (paper Sec 4.1,
// Listing 3): tasks summarize shared collections without mutating them,
// so AXM holds trivially and the pattern is Fearless. Reductions use a
// deterministic binary combining tree mirroring the scheduler's range
// split, so results are identical across thread counts for associative
// combiners (and for float sums, reproducible run to run).

// Reduce folds xs with an associative combiner: it maps each element
// through mapf and combines results pairwise, starting from identity.
func Reduce[T, R any](w *Worker, xs []T, identity R, mapf func(T) R, comb func(R, R) R) R {
	countDyn(RO)
	grain := 1024
	var rec func(w *Worker, lo, hi int) R
	rec = func(w *Worker, lo, hi int) R {
		if w == nil || hi-lo <= grain {
			acc := identity
			for i := lo; i < hi; i++ {
				acc = comb(acc, mapf(xs[i]))
			}
			return acc
		}
		mid := lo + (hi-lo)/2
		var a, b R
		w.Join(
			func(w *Worker) { a = rec(w, lo, mid) },
			func(w *Worker) { b = rec(w, mid, hi) },
		)
		return comb(a, b)
	}
	return rec(w, 0, len(xs))
}

// MapReduce folds the index space [0, n) with an associative combiner:
// it computes mapf(i) for each index and combines pairwise. It is Reduce
// for computations not shaped as a slice walk.
func MapReduce[R any](w *Worker, n int, identity R, mapf func(i int) R, comb func(R, R) R) R {
	countDyn(RO)
	grain := 1024
	var rec func(w *Worker, lo, hi int) R
	rec = func(w *Worker, lo, hi int) R {
		if w == nil || hi-lo <= grain {
			acc := identity
			for i := lo; i < hi; i++ {
				acc = comb(acc, mapf(i))
			}
			return acc
		}
		mid := lo + (hi-lo)/2
		var a, b R
		w.Join(
			func(w *Worker) { a = rec(w, lo, mid) },
			func(w *Worker) { b = rec(w, mid, hi) },
		)
		return comb(a, b)
	}
	return rec(w, 0, n)
}

// Sum returns the sum of xs (paper Listing 3(c)).
func Sum[T Number](w *Worker, xs []T) T {
	var zero T
	return Reduce(w, xs, zero, func(x T) T { return x }, func(a, b T) T { return a + b })
}

// Max returns the maximum element of xs; it panics on an empty slice.
func Max[T Number](w *Worker, xs []T) T {
	if len(xs) == 0 {
		panic("core.Max: empty slice")
	}
	return Reduce(w, xs, xs[0], func(x T) T { return x }, func(a, b T) T {
		if a > b {
			return a
		}
		return b
	})
}

// Min returns the minimum element of xs; it panics on an empty slice.
func Min[T Number](w *Worker, xs []T) T {
	if len(xs) == 0 {
		panic("core.Min: empty slice")
	}
	return Reduce(w, xs, xs[0], func(x T) T { return x }, func(a, b T) T {
		if a < b {
			return a
		}
		return b
	})
}

// MaxIndex returns the index of the maximum element of xs, taking the
// smallest index among ties; it panics on an empty slice.
func MaxIndex[T Number](w *Worker, xs []T) int {
	if len(xs) == 0 {
		panic("core.MaxIndex: empty slice")
	}
	best := MapReduce(w, len(xs), 0, func(i int) int { return i }, func(a, b int) int {
		if xs[b] > xs[a] || (xs[b] == xs[a] && b < a) {
			return b
		}
		return a
	})
	return best
}

// Count returns the number of elements satisfying pred (RO).
func Count[T any](w *Worker, xs []T, pred func(T) bool) int {
	return Reduce(w, xs, 0, func(x T) int {
		if pred(x) {
			return 1
		}
		return 0
	}, func(a, b int) int { return a + b })
}

// All reports whether pred holds for every element (RO).
func All[T any](w *Worker, xs []T, pred func(T) bool) bool {
	return Reduce(w, xs, true, pred, func(a, b bool) bool { return a && b })
}

// SegReduce performs a segmented reduction — the "segmentation" pattern
// of the paper's Sec 7.1 inventory: offsets holds k+1 segment
// boundaries into xs, and the result's i-th element is the map/combine
// fold of segment xs[offsets[i]:offsets[i+1]]. Segments are reduced in
// parallel with each other (each output slot written by exactly one
// task — Stride on the output, RO on the input), sequentially within.
// Boundaries are validated as in IndChunks; invalid boundaries return
// a NonMonotoneError.
func SegReduce[T, R any, I IndexInt](w *Worker, xs []T, offsets []I, identity R, mapf func(T) R, comb func(R, R) R) ([]R, error) {
	if len(offsets) == 0 {
		return nil, nil
	}
	out := make([]R, len(offsets)-1)
	err := IndChunks(w, xs, offsets, func(i int, seg []T) {
		acc := identity
		for j := range seg {
			acc = comb(acc, mapf(seg[j]))
		}
		out[i] = acc
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
