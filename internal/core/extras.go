package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/sched"
)

// Extension patterns. The paper's Sec 7.1 inventories the parallel
// patterns of McCool et al. and finds eight absent from RPB — pipeline,
// futures, speculative selection, and others — leaving them to future
// work. This file implements the two most broadly useful of those on
// top of the same scheduler, with the same fear-level discipline:
// Pipeline stages receive each item exclusively (Fearless by
// construction), and Future transfers ownership of its result to the
// single Wait-er.

// TaskPanic re-exports the scheduler's wrapped-panic type: panics that
// escape pool tasks re-raise as *TaskPanic at their fork/join point.
type TaskPanic = sched.TaskPanic

// Future is a one-shot asynchronous computation scheduled on the pool:
// the non-strict fork-join shape (paper Sec 6) where a task may be
// joined by any task, not just its parent. Create with Async, claim
// with Wait.
type Future[T any] struct {
	done   atomic.Bool
	result T
	failed atomic.Pointer[TaskPanic]
}

// Async schedules f on w's pool and returns a Future for its result.
func Async[T any](w *Worker, f func(w *Worker) T) *Future[T] {
	countDyn(DC)
	fut := &Future[T]{}
	body := func(w2 *Worker) {
		defer fut.done.Store(true)
		defer func() {
			if r := recover(); r != nil {
				if tp, ok := r.(*TaskPanic); ok {
					fut.failed.Store(tp)
					return
				}
				fut.failed.Store(&TaskPanic{Value: r})
			}
		}()
		fut.result = f(w2) //lint:scared single-writer future: only this task writes result, and Wait's done.Load acquire-orders the read after it
	}
	if w == nil {
		body(nil)
		return fut
	}
	w.SpawnTask(body)
	return fut
}

// Wait blocks until the future completes, helping the pool with other
// work in the meantime (as Join does), and returns the result. Any
// worker may Wait, not only the spawner; callers must ensure a single
// consumer of the result or treat it as shared immutable data after.
// If the future's computation panicked, Wait re-raises the *TaskPanic.
func (f *Future[T]) Wait(w *Worker) T {
	if w == nil {
		for !f.done.Load() {
			yield()
		}
	} else {
		w.HelpUntil(func() bool { return f.done.Load() })
	}
	if tp := f.failed.Load(); tp != nil {
		panic(tp)
	}
	return f.result
}

// Ready reports whether the future has completed (non-blocking).
func (f *Future[T]) Ready() bool { return f.done.Load() }

// Pipeline runs a linear chain of stages over n sequence indices, with
// stage s processing item i strictly after stage s-1 processed item i
// and after stage s processed item i-1 (the classic pipeline pattern,
// absent from RPB per the paper's Sec 7.1). Each (stage, item) cell
// therefore executes exactly once with exclusive access to its item,
// making the construction Fearless. Parallelism comes from the
// anti-diagonal wavefront.
//
// stages[s] is invoked as stages[s](i) for each item index i.
func Pipeline(w *Worker, n int, stages []func(i int)) {
	countDyn(DC)
	if n <= 0 || len(stages) == 0 {
		return
	}
	if w == nil {
		for _, st := range stages {
			for i := 0; i < n; i++ {
				st(i)
			}
		}
		return
	}
	// progress[s] = number of items stage s has completed.
	progress := make([]atomic.Int64, len(stages))
	// One long-lived task per stage, each spin-waiting (yielding) for
	// its predecessor to stay ahead. Stages must NOT help-execute pool
	// tasks while waiting: a stage could then run its own successor
	// nested on its stack and deadlock against itself. Spinning is safe
	// because a stage's predecessor has always already started (the fork
	// order below guarantees it) and keeps running on its own worker.
	var run func(w *Worker, s int)
	run = func(w *Worker, s int) {
		for i := 0; i < n; i++ {
			for s > 0 && progress[s-1].Load() <= int64(i) {
				yield()
			}
			stages[s](i)
			progress[s].Add(1)
		}
	}
	// Fork stages as a right-leaning join tree so stage tasks can steal
	// each other's stalls away.
	var fork func(w *Worker, s int)
	fork = func(w *Worker, s int) {
		if s == len(stages)-1 {
			run(w, s)
			return
		}
		w.Join(
			func(w *Worker) { run(w, s) },
			func(w *Worker) { fork(w, s+1) },
		)
	}
	fork(w, 0)
}

// yield cedes the processor to other goroutines during pipeline spins.
func yield() { runtime.Gosched() }
