package core

import (
	"sync/atomic"
	"testing"
)

// BenchmarkCheckElision measures exactly what a certificate buys: the
// same irregular traversal with the dynamic check paid (checked) and
// elided (certified), for both adapter shapes. The offsets are the
// certifiable shapes themselves — an affine scatter for SngInd and
// prefix-sum boundaries for RngInd — so checked/certified compute
// identical results and the delta is pure check cost (the repo's
// Fig 5 micro-view; rpbreport -what certs gives the bench-level one).
func BenchmarkCheckElision(b *testing.B) {
	const n = 1 << 16

	offsets := make([]int32, n)
	for i := range offsets {
		offsets[i] = int32(i)
	}
	out := make([]int32, n)
	body := func(i int, slot *int32) { *slot = int32(i) }

	b.Run("sngind/checked", func(b *testing.B) {
		on(func(w *Worker) {
			for i := 0; i < b.N; i++ {
				if err := IndForEach(w, out, offsets, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("sngind/certified", func(b *testing.B) {
		on(func(w *Worker) {
			for i := 0; i < b.N; i++ {
				IndForEachUnchecked(w, out, offsets, body)
			}
		})
	})

	const chunks = 1 << 10
	boundaries := make([]int32, chunks+1)
	for d := 0; d < chunks; d++ {
		boundaries[d+1] = int32(d % 17)
	}
	total := ScanInclusive(nil, boundaries[1:])
	data := make([]int32, total)
	chunkBody := func(i int, chunk []int32) {
		for j := range chunk {
			chunk[j] = int32(i)
		}
	}

	b.Run("rngind/checked", func(b *testing.B) {
		on(func(w *Worker) {
			for i := 0; i < b.N; i++ {
				if err := IndChunks(w, data, boundaries, chunkBody); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("rngind/certified", func(b *testing.B) {
		on(func(w *Worker) {
			for i := 0; i < b.N; i++ {
				IndChunksUnchecked(w, data, boundaries, chunkBody)
			}
		})
	})
}

// BenchmarkAtomicElision measures what the write certificate buys: the
// msf reset-sweep shape (clearBest) with the atomic store paid
// (synchronized) and elided under the index-disjoint proof (certified).
// best[v] is task-affine, so both variants write identical values and
// the delta is the cost of the full-barrier store alone.
func BenchmarkAtomicElision(b *testing.B) {
	const n = 1 << 16
	const none = ^uint64(0)
	best := make([]uint64, n)

	b.Run("reset/synchronized", func(b *testing.B) {
		on(func(w *Worker) {
			for i := 0; i < b.N; i++ {
				ForRange(w, 0, n, 0, func(v int) {
					atomic.StoreUint64(&best[v], none)
				})
			}
		})
	})
	b.Run("reset/certified", func(b *testing.B) {
		on(func(w *Worker) {
			for i := 0; i < b.N; i++ {
				ForRange(w, 0, n, 0, func(v int) {
					best[v] = none
				})
			}
		})
	})
}
