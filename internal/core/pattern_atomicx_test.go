package core

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestPatternStringsAndFear(t *testing.T) {
	wantFear := map[Pattern]Fear{
		RO: Fearless, Stride: Fearless, Block: Fearless, DC: Fearless,
		SngInd: Comfortable, RngInd: Comfortable, AW: Scared,
	}
	for _, p := range Patterns {
		if p.String() == "" || strings.HasPrefix(p.String(), "Pattern(") {
			t.Errorf("pattern %d has no name", p)
		}
		if p.Fear() != wantFear[p] {
			t.Errorf("%v fear = %v, want %v", p, p.Fear(), wantFear[p])
		}
		if p.WritePattern() == "unknown" || p.Expression() == "unknown" {
			t.Errorf("%v missing Table 3 text", p)
		}
	}
	if Pattern(99).String() == "" {
		t.Error("out-of-range pattern String empty")
	}
	if Fearless.String() != "Fearless" || Comfortable.String() != "Comfortable" || Scared.String() != "Scared" {
		t.Error("fear names wrong")
	}
}

func TestIrregularClassification(t *testing.T) {
	irregular := map[Pattern]bool{SngInd: true, RngInd: true, AW: true}
	for _, p := range Patterns {
		if p.Irregular() != irregular[p] {
			t.Errorf("%v Irregular() = %v", p, p.Irregular())
		}
	}
}

func TestSiteRegistryAndCensus(t *testing.T) {
	ResetSites()
	defer ResetSites()
	DeclareSite("foo", "scatter", SngInd)
	DeclareSite("foo", "scatter", SngInd) // idempotent
	DeclareSite("foo", "scan", Block)
	DeclareSite("bar", "reduce", RO)
	sites := Sites()
	if len(sites) != 3 {
		t.Fatalf("sites = %d, want 3 (dedup failed?)", len(sites))
	}
	c := TakeCensus()
	if c.Total != 3 || c.PerKind[SngInd] != 1 || c.PerKind[Block] != 1 || c.PerKind[RO] != 1 {
		t.Fatalf("census wrong: %+v", c)
	}
	if c.Irregular != 1 {
		t.Fatalf("irregular = %d, want 1", c.Irregular)
	}
	if len(c.Benches) != 2 || c.Benches[0] != "bar" || c.Benches[1] != "foo" {
		t.Fatalf("benches = %v", c.Benches)
	}
	if !c.PerBench["foo"][SngInd] || c.PerBench["bar"][SngInd] {
		t.Fatal("per-bench pattern sets wrong")
	}
}

func TestWriteMin32(t *testing.T) {
	var a atomic.Uint32
	a.Store(100)
	if !WriteMin32(&a, 50) {
		t.Fatal("WriteMin32 should have updated")
	}
	if a.Load() != 50 {
		t.Fatalf("value = %d", a.Load())
	}
	if WriteMin32(&a, 60) {
		t.Fatal("WriteMin32 should not update with larger value")
	}
	if WriteMin32(&a, 50) {
		t.Fatal("WriteMin32 should not update with equal value")
	}
}

func TestWriteMinConcurrentConverges(t *testing.T) {
	var a atomic.Uint32
	a.Store(1 << 30)
	on(func(w *Worker) {
		ForRange(w, 1, 10001, 0, func(i int) {
			WriteMin32(&a, uint32(i))
		})
	})
	if a.Load() != 1 {
		t.Fatalf("converged to %d, want 1", a.Load())
	}
}

func TestWriteMin64AndMax32(t *testing.T) {
	var a atomic.Uint64
	a.Store(10)
	if !WriteMin64(&a, 3) || a.Load() != 3 || WriteMin64(&a, 5) {
		t.Fatal("WriteMin64 misbehaved")
	}
	var b atomic.Uint32
	if !WriteMax32(&b, 7) || b.Load() != 7 || WriteMax32(&b, 2) {
		t.Fatal("WriteMax32 misbehaved")
	}
}

func TestCASLoop32(t *testing.T) {
	var a atomic.Uint32
	a.Store(5)
	old, nw := CASLoop32(&a, func(v uint32) (uint32, bool) { return v * 2, true })
	if old != 5 || nw != 10 || a.Load() != 10 {
		t.Fatalf("CASLoop32 = (%d, %d), value %d", old, nw, a.Load())
	}
	old, nw = CASLoop32(&a, func(v uint32) (uint32, bool) { return 0, false })
	if old != 10 || nw != 10 || a.Load() != 10 {
		t.Fatal("CASLoop32 no-write case wrote")
	}
}

func TestShardedLocksGuardIncrements(t *testing.T) {
	locks := NewShardedLocks(64)
	if locks.Shards() != 64 {
		t.Fatalf("shards = %d", locks.Shards())
	}
	counts := make([]int, 256) // plain ints: only safe under the locks
	on(func(w *Worker) {
		ForRange(w, 0, 100000, 0, func(i int) {
			slot := i % 256
			locks.With(slot, func() { counts[slot]++ })
		})
	})
	for i, c := range counts {
		want := 100000 / 256
		if i < 100000%256 {
			want++
		}
		if c != want {
			t.Fatalf("counts[%d] = %d, want %d", i, c, want)
		}
	}
}

func TestShardedLocksRoundsUp(t *testing.T) {
	if NewShardedLocks(5).Shards() != 8 {
		t.Fatal("shards not rounded to power of two")
	}
	if NewShardedLocks(0).Shards() != 1 {
		t.Fatal("zero shards should clamp to 1")
	}
}

func TestScatterAtomic32(t *testing.T) {
	out := make([]atomic.Uint32, 4)
	on(func(w *Worker) {
		ScatterAtomic32(w, out, []int32{3, 1, 0, 2}, []uint32{30, 10, 0, 20})
	})
	for i := range out {
		if out[i].Load() != uint32(i*10) {
			t.Fatalf("out[%d] = %d", i, out[i].Load())
		}
	}
}

func BenchmarkSum(b *testing.B) {
	xs := make([]int64, 1<<20)
	for i := range xs {
		xs[i] = int64(i)
	}
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			on(func(w *Worker) { _ = Sum(w, xs) })
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Sum(nil, xs)
		}
	})
}

func BenchmarkIndForEachCheckedVsUnchecked(b *testing.B) {
	const n = 1 << 18
	offsets := permutation(n, 11)
	out := make([]int32, n)
	body := func(i int, slot *int32) { *slot = int32(i) }
	b.Run("checked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			on(func(w *Worker) { _ = IndForEach(w, out, offsets, body) })
		}
	})
	b.Run("unchecked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			on(func(w *Worker) { IndForEachUnchecked(w, out, offsets, body) })
		}
	})
}

func BenchmarkSortBy(b *testing.B) {
	const n = 1 << 18
	src := make([]int, n)
	rngState := uint64(12345)
	for i := range src {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		src[i] = int(rngState >> 33)
	}
	xs := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, src)
		on(func(w *Worker) { Sort(w, xs) })
	}
}
