package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func permutation(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestIndForEachScattersThroughPermutation(t *testing.T) {
	const n = 20000
	offsets := permutation(n, 7)
	out := make([]int32, n)
	var err error
	on(func(w *Worker) {
		err = IndForEach(w, out, offsets, func(i int, slot *int32) { *slot = int32(i) })
	})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for i, off := range offsets {
		if out[off] != int32(i) {
			t.Fatalf("out[%d] = %d, want %d", off, out[off], i)
		}
	}
}

func TestIndForEachDetectsDuplicate(t *testing.T) {
	const n = 10000
	offsets := permutation(n, 8)
	offsets[1234] = offsets[998] // plant the bug the paper warns about
	out := make([]int32, n)
	touched := false
	var err error
	on(func(w *Worker) {
		err = IndForEach(w, out, offsets, func(i int, slot *int32) { touched = true })
	})
	var dup *DuplicateOffsetError
	if !errors.As(err, &dup) {
		t.Fatalf("want DuplicateOffsetError, got %v", err)
	}
	if dup.Offset != int(offsets[1234]) {
		t.Fatalf("error names offset %d, want %d", dup.Offset, offsets[1234])
	}
	if touched {
		t.Fatal("body ran despite failed validation")
	}
	if dup.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestIndForEachDetectsOutOfRange(t *testing.T) {
	out := make([]int, 10)
	offsets := []int32{0, 1, 12, 3}
	err := IndForEach(nil, out, offsets, func(int, *int) {})
	var oor *OffsetRangeError
	if !errors.As(err, &oor) {
		t.Fatalf("want OffsetRangeError, got %v", err)
	}
	if oor.Offset != 12 || oor.Index != 2 || oor.Len != 10 {
		t.Fatalf("error fields wrong: %+v", oor)
	}
	if oor.Error() == "" {
		t.Fatal("empty error message")
	}
	err = IndForEach(nil, out, []int32{-1}, func(int, *int) {})
	if !errors.As(err, &oor) {
		t.Fatalf("negative offset: want OffsetRangeError, got %v", err)
	}
}

func TestIndForEachSequentialPath(t *testing.T) {
	out := make([]int, 5)
	err := IndForEach(nil, out, []int{4, 3, 2, 1, 0}, func(i int, slot *int) { *slot = i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 4-i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestIndForEachUncheckedTrustsCaller(t *testing.T) {
	out := make([]int32, 1000)
	offsets := permutation(1000, 9)
	on(func(w *Worker) {
		IndForEachUnchecked(w, out, offsets, func(i int, slot *int32) { *slot = int32(i) + 1 })
	})
	for i, off := range offsets {
		if out[off] != int32(i)+1 {
			t.Fatalf("out[%d] = %d", off, out[off])
		}
	}
}

func TestIndForEachPropertyUniquenessDecision(t *testing.T) {
	// Property: IndForEach errors iff offsets contain a duplicate or an
	// out-of-range value.
	f := func(raw []uint16, outLen uint16) bool {
		n := int(outLen%512) + 1
		offsets := make([]int32, len(raw))
		for i, r := range raw {
			offsets[i] = int32(r % 1024)
		}
		seen := map[int32]bool{}
		shouldFail := false
		for _, o := range offsets {
			if int(o) >= n || seen[o] {
				shouldFail = true
				break
			}
			seen[o] = true
		}
		out := make([]int, n)
		err := IndForEach(nil, out, offsets, func(int, *int) {})
		return (err != nil) == shouldFail
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIndChunksDisjointRanges(t *testing.T) {
	out := make([]int, 100)
	offsets := []int32{0, 10, 10, 55, 100}
	var err error
	on(func(w *Worker) {
		err = IndChunks(w, out, offsets, func(i int, chunk []int) {
			for j := range chunk {
				chunk[j] = i + 1
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		var want int
		switch {
		case i < 10:
			want = 1
		case i < 55:
			want = 3 // chunk 2 is empty
		default:
			want = 4
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestIndChunksDetectsNonMonotone(t *testing.T) {
	out := make([]int, 100)
	offsets := []int32{0, 30, 20, 100}
	err := IndChunks(nil, out, offsets, func(int, []int) {
		t.Fatal("body ran despite invalid boundaries")
	})
	var nm *NonMonotoneError
	if !errors.As(err, &nm) {
		t.Fatalf("want NonMonotoneError, got %v", err)
	}
	if nm.Index != 1 || nm.Lo != 30 || nm.Hi != 20 {
		t.Fatalf("error fields wrong: %+v", nm)
	}
	if nm.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestIndChunksDetectsOutOfRange(t *testing.T) {
	out := make([]int, 10)
	err := IndChunks(nil, out, []int32{0, 5, 11}, func(int, []int) {})
	var nm *NonMonotoneError
	if !errors.As(err, &nm) {
		t.Fatalf("want NonMonotoneError, got %v", err)
	}
}

func TestIndChunksEmptyOffsets(t *testing.T) {
	if err := IndChunks(nil, []int{1}, []int32{}, func(int, []int) {}); err != nil {
		t.Fatal(err)
	}
	IndChunksUnchecked(nil, []int{1}, []int32{}, func(int, []int) {})
}

func TestIndChunksUnchecked(t *testing.T) {
	out := make([]int, 20)
	offsets := []int{0, 7, 20}
	on(func(w *Worker) {
		IndChunksUnchecked(w, out, offsets, func(i int, chunk []int) {
			for j := range chunk {
				chunk[j] = i
			}
		})
	})
	if out[0] != 0 || out[6] != 0 || out[7] != 1 || out[19] != 1 {
		t.Fatalf("unexpected contents: %v", out)
	}
}

func TestIndChunksPropertyMonotoneDecision(t *testing.T) {
	f := func(raw []uint8, outLen uint8) bool {
		n := int(outLen) + 1
		offsets := make([]int32, len(raw)+1)
		for i, r := range raw {
			offsets[i+1] = int32(r % 64)
		}
		valid := true
		for i := 0; i+1 < len(offsets); i++ {
			if offsets[i] > offsets[i+1] || int(offsets[i+1]) > n {
				valid = false
				break
			}
		}
		out := make([]int, n)
		err := IndChunks(nil, out, offsets, func(int, []int) {})
		return (err == nil) == valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterRespectsMode(t *testing.T) {
	defer SetMode(ModeUnchecked)
	vals := []int{10, 20, 30}
	offsets := []int32{2, 0, 1}

	SetMode(ModeChecked)
	out := make([]int, 3)
	if err := Scatter(nil, out, offsets, vals); err != nil {
		t.Fatal(err)
	}
	if out[2] != 10 || out[0] != 20 || out[1] != 30 {
		t.Fatalf("scatter wrong: %v", out)
	}
	// Checked mode catches duplicates...
	if err := Scatter(nil, out, []int32{1, 1, 0}, vals); err == nil {
		t.Fatal("checked Scatter missed duplicate")
	}
	// ...unchecked mode does not (Scared).
	SetMode(ModeUnchecked)
	if err := Scatter(nil, out, []int32{1, 1, 0}, vals); err != nil {
		t.Fatal("unchecked Scatter should not validate")
	}
}
