package core

import (
	"strings"
	"testing"
)

// Edge-length coverage for the blocked two-pass primitives: empty
// input, a single block (sequential fast path), and lengths that land
// exactly on block boundaries — the off-by-one hot spots of the
// count/scan/write structure. Each case runs both sequentially (nil
// worker) and on the shared pool.

// edgeLengths returns the boundary-sensitive input sizes for elements
// whose derived scan grain is g.
func edgeLengths(g int) []int {
	return []int{0, 1, g - 1, g, g + 1, 2 * g, 2*g + 1, 3 * g}
}

func TestScanIntoLeavesSourceIntact(t *testing.T) {
	for _, n := range edgeLengths(scanGrain[int64]()) {
		src := make([]int64, n)
		for i := range src {
			src[i] = int64(i%7) - 3
		}
		orig := append([]int64(nil), src...)
		wantEx := make([]int64, n)
		wantIn := make([]int64, n)
		var acc int64
		for i, v := range src {
			wantEx[i] = acc
			acc += v
			wantIn[i] = acc
		}
		for _, par := range []bool{false, true} {
			dstEx := make([]int64, n)
			dstIn := make([]int64, n)
			var totEx, totIn int64
			run := func(w *Worker) {
				totEx = ScanExclusiveInto(w, dstEx, src)
				totIn = ScanInclusiveInto(w, dstIn, src)
			}
			if par {
				on(run)
			} else {
				run(nil)
			}
			if totEx != acc || totIn != acc {
				t.Fatalf("n=%d par=%v: totals %d/%d, want %d", n, par, totEx, totIn, acc)
			}
			for i := range src {
				if src[i] != orig[i] {
					t.Fatalf("n=%d par=%v: source modified at %d", n, par, i)
				}
				if dstEx[i] != wantEx[i] || dstIn[i] != wantIn[i] {
					t.Fatalf("n=%d par=%v: dst[%d] = %d/%d, want %d/%d",
						n, par, i, dstEx[i], dstIn[i], wantEx[i], wantIn[i])
				}
			}
		}
	}
}

func TestScanExclusiveOpBlockBoundaries(t *testing.T) {
	for _, n := range edgeLengths(scanGrain[int32]()) {
		for _, par := range []bool{false, true} {
			xs := make([]int32, n)
			for i := range xs {
				xs[i] = int32(i % 11)
			}
			want := make([]int32, n)
			wantTotal := int32(0)
			for i := range xs {
				want[i] = wantTotal
				wantTotal += xs[i]
			}
			add := func(a, b int32) int32 { return a + b }
			var total int32
			if par {
				on(func(w *Worker) { total = ScanExclusiveOp(w, xs, 0, add) })
			} else {
				total = ScanExclusiveOp(nil, xs, 0, add)
			}
			if total != wantTotal {
				t.Fatalf("n=%d par=%v: total = %d, want %d", n, par, total, wantTotal)
			}
			for i := range xs {
				if xs[i] != want[i] {
					t.Fatalf("n=%d par=%v: xs[%d] = %d, want %d", n, par, i, xs[i], want[i])
				}
			}
		}
	}
}

func TestFilterBlockBoundaries(t *testing.T) {
	keep := func(x int32) bool { return x%3 == 0 }
	for _, n := range edgeLengths(scanBlockFor(4)) {
		xs := make([]int32, n)
		for i := range xs {
			xs[i] = int32(i)
		}
		var want []int32
		for _, x := range xs {
			if keep(x) {
				want = append(want, x)
			}
		}
		for _, par := range []bool{false, true} {
			var got []int32
			if par {
				on(func(w *Worker) { got = Filter(w, xs, keep) })
			} else {
				got = Filter(nil, xs, keep)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d par=%v: len = %d, want %d", n, par, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d par=%v: got[%d] = %d, want %d", n, par, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFlattenBlockBoundaries(t *testing.T) {
	g := scanGrain[int32]()
	cases := [][]int{
		{},            // no sub-slices at all
		{0},           // one empty sub-slice
		{0, 0, 0},     // all empty
		{1},           // single element
		{g},           // one exact block
		{g, 0, g},     // empties between blocks
		{g - 1, 1, g}, // boundary straddle
		{3, 2*g + 1, 5},
	}
	for ci, lens := range cases {
		nested := make([][]int32, len(lens))
		var want []int32
		next := int32(0)
		for i, l := range lens {
			nested[i] = make([]int32, l)
			for j := range nested[i] {
				nested[i][j] = next
				want = append(want, next)
				next++
			}
		}
		for _, par := range []bool{false, true} {
			var got []int32
			if par {
				on(func(w *Worker) { got = Flatten(w, nested) })
			} else {
				got = Flatten(nil, nested)
			}
			if len(got) != len(want) {
				t.Fatalf("case %d par=%v: len = %d, want %d", ci, par, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("case %d par=%v: got[%d] = %d, want %d", ci, par, i, got[i], want[i])
				}
			}
		}
	}
}

// TestIntoFormsReuseDestination pins the destination-passing contract:
// with a warmed destination of sufficient capacity the *Into forms
// return a slice sharing its backing array instead of reallocating.
func TestIntoFormsReuseDestination(t *testing.T) {
	n := 1000
	dst := make([]int32, n)
	got := PackIndexInto(nil, n, func(i int) bool { return i%2 == 0 }, dst)
	if &got[0] != &dst[0] {
		t.Fatal("PackIndexInto reallocated despite sufficient capacity")
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(i)
	}
	fdst := make([]int32, n)
	fgot := FilterInto(nil, xs, func(x int32) bool { return x%2 == 0 }, fdst)
	if &fgot[0] != &fdst[0] {
		t.Fatal("FilterInto reallocated despite sufficient capacity")
	}
	flat := FlattenInto(nil, [][]int32{xs[:10], xs[10:20]}, fdst)
	if &flat[0] != &fdst[0] {
		t.Fatal("FlattenInto reallocated despite sufficient capacity")
	}
	// Too small: must grow, leaving the original untouched beyond its use.
	small := make([]int32, 1)
	grown := PackIndexInto(nil, n, func(i int) bool { return true }, small)
	if len(grown) != n {
		t.Fatalf("grown pack len = %d, want %d", len(grown), n)
	}
}

// TestPackIndexOverflowGuard injects a small packIndexLimit and checks
// that an index space past it panics with the overflow message instead
// of wrapping int32 indices silently. (The real limit needs a
// 2^31-element input to exercise.)
func TestPackIndexOverflowGuard(t *testing.T) {
	defer func(old int64) { packIndexLimit = old }(packIndexLimit)
	packIndexLimit = 1 << 10
	// At the limit: fine.
	if got := PackIndex(nil, 1<<10, func(i int) bool { return i == 0 }); len(got) != 1 {
		t.Fatalf("pack at limit: len = %d, want 1", len(got))
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PackIndex past the limit did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "packed-index limit") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	PackIndex(nil, 1<<10+1, func(i int) bool { return true })
}
