package core

import "testing"

// TestDeclareSiteConflict covers the registry's three re-declaration
// outcomes: new site, idempotent repeat, and conflicting pattern.
func TestDeclareSiteConflict(t *testing.T) {
	ResetSites()
	defer ResetSites()

	if err := DeclareSite("x", "shared write", SngInd); err != nil {
		t.Fatalf("first declaration: %v", err)
	}
	if err := DeclareSite("x", "shared write", SngInd); err != nil {
		t.Fatalf("idempotent re-declaration: %v", err)
	}
	if got := SiteConflicts(); len(got) != 0 {
		t.Fatalf("conflicts after idempotent re-declaration: %v", got)
	}

	err := DeclareSite("x", "shared write", AW)
	if err == nil {
		t.Fatal("conflicting re-declaration: want error, got nil")
	}
	conflicts := SiteConflicts()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v, want 1 entry", conflicts)
	}
	c := conflicts[0]
	if c.Bench != "x" || c.Label != "shared write" || c.First != SngInd || c.Redeclared != AW {
		t.Fatalf("conflict = %+v, want {x, shared write, SngInd, AW}", c)
	}

	// The first declaration wins: the census is unchanged by the
	// conflicting attempt.
	sites := Sites()
	if len(sites) != 1 || sites[0].Pattern != SngInd {
		t.Fatalf("sites = %v, want single SngInd site", sites)
	}

	ResetSites()
	if got := SiteConflicts(); len(got) != 0 {
		t.Fatalf("conflicts survive ResetSites: %v", got)
	}
}
