package core

// This file holds the Fearless regular-access primitives: Stride and
// Block (Sec 4 of the paper). Each task receives disjoint state by
// construction, so no synchronization and no run-time validation is
// needed — the Go analog of Rayon's par_iter_mut / par_chunks_mut
// zero-cost abstractions.

// ForRange invokes f(i) for every i in [lo, hi), in parallel. It is the
// index-space workhorse under the Stride pattern: typical bodies write
// out[i] for distinct arrays out. grain <= 0 selects an automatic grain.
func ForRange(w *Worker, lo, hi, grain int, f func(i int)) {
	countDyn(Stride)
	if w == nil || hi-lo <= 1 {
		for i := lo; i < hi; i++ {
			f(i)
		}
		return
	}
	w.For(lo, hi, grain, func(_ *Worker, l, h int) {
		for i := l; i < h; i++ {
			f(i)
		}
	})
}

// ForEachIdx invokes f(i, &xs[i]) for every element of xs, in parallel —
// the Stride pattern (paper Listing 4(e), Rayon's par_iter_mut). Each
// task may mutate only the element passed to it.
func ForEachIdx[T any](w *Worker, xs []T, grain int, f func(i int, x *T)) {
	countDyn(Stride)
	if w == nil || len(xs) <= 1 {
		for i := range xs {
			f(i, &xs[i])
		}
		return
	}
	w.For(0, len(xs), grain, func(_ *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i, &xs[i])
		}
	})
}

// Chunks splits xs into contiguous chunks of size elements (the final
// chunk may be shorter) and invokes f(ci, chunk) for each, in parallel —
// the Block pattern (paper Listing 5, Rayon's par_chunks_mut). Each task
// may mutate only its chunk.
func Chunks[T any](w *Worker, xs []T, size int, f func(ci int, chunk []T)) {
	if size <= 0 {
		size = 1
	}
	countDyn(Block)
	n := (len(xs) + size - 1) / size
	body := func(ci int) {
		lo := ci * size
		hi := lo + size
		if hi > len(xs) {
			hi = len(xs)
		}
		f(ci, xs[lo:hi])
	}
	if w == nil || n <= 1 {
		for ci := 0; ci < n; ci++ {
			body(ci)
		}
		return
	}
	w.For(0, n, 1, func(_ *Worker, lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			body(ci)
		}
	})
}

// Fill sets every element of xs to v, in parallel (Stride).
func Fill[T any](w *Worker, xs []T, v T) {
	ForEachIdx(w, xs, 0, func(_ int, x *T) { *x = v })
}

// Tabulate builds a slice of length n whose i-th element is f(i),
// computed in parallel (Stride writes into a fresh slice).
func Tabulate[T any](w *Worker, n int, f func(i int) T) []T {
	out := make([]T, n)
	ForEachIdx(w, out, 0, func(i int, x *T) { *x = f(i) })
	return out
}

// CopyInto copies src into dst (which must be at least as long), in
// parallel (Stride).
func CopyInto[T any](w *Worker, dst, src []T) {
	if len(dst) < len(src) {
		panic("core.CopyInto: dst shorter than src")
	}
	ForRange(w, 0, len(src), 0, func(i int) { dst[i] = src[i] })
}

// Stencil2D computes one step of a two-dimensional stencil: for every
// cell (x, y) of an height x width grid it writes
// dst[y*width+x] = f(src, x, y), parallelized over rows. src and dst
// are distinct buffers, so tasks read freely and write disjoint rows —
// the "stencil" entry of the paper's Sec 7.1 present-pattern list,
// classified (like all regular local read-write operators on structured
// data) as Fearless. f receives the whole src grid; neighbor indexing
// and boundary policy stay with the caller.
func Stencil2D[T any](w *Worker, src, dst []T, width int, f func(src []T, x, y int) T) {
	if width <= 0 {
		panic("core.Stencil2D: width must be positive")
	}
	if len(src) != len(dst) {
		panic("core.Stencil2D: src and dst lengths differ")
	}
	if len(src) == 0 {
		return
	}
	if &src[0] == &dst[0] {
		panic("core.Stencil2D: src and dst must not alias")
	}
	height := len(src) / width
	countDyn(Block)
	body := func(y int) {
		row := dst[y*width : (y+1)*width]
		for x := range row {
			row[x] = f(src, x, y)
		}
	}
	if w == nil || height <= 1 {
		for y := 0; y < height; y++ {
			body(y)
		}
		return
	}
	w.For(0, height, 0, func(_ *Worker, lo, hi int) {
		for y := lo; y < hi; y++ {
			body(y)
		}
	})
}
