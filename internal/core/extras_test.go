package core

import (
	"sync/atomic"
	"testing"
)

func TestAsyncWaitBasic(t *testing.T) {
	on(func(w *Worker) {
		f := Async(w, func(w *Worker) int { return 41 + 1 })
		if got := f.Wait(w); got != 42 {
			t.Errorf("Wait = %d", got)
		}
		if !f.Ready() {
			t.Error("future not ready after Wait")
		}
	})
}

func TestAsyncSequentialPath(t *testing.T) {
	f := Async[string](nil, func(*Worker) string { return "done" })
	if !f.Ready() || f.Wait(nil) != "done" {
		t.Fatal("nil-worker future misbehaved")
	}
}

func TestAsyncManyFutures(t *testing.T) {
	on(func(w *Worker) {
		futs := make([]*Future[int], 100)
		for i := range futs {
			i := i
			futs[i] = Async(w, func(w *Worker) int {
				// Each future itself computes in parallel.
				return int(MapReduce(w, 100, 0, func(j int) int { return i + j },
					func(a, b int) int { return a + b }))
			})
		}
		for i, f := range futs {
			want := 100*i + 99*100/2
			if got := f.Wait(w); got != want {
				t.Fatalf("future %d = %d, want %d", i, got, want)
			}
		}
	})
}

func TestFutureWaitedByNonSpawner(t *testing.T) {
	// Non-strict fork-join: a different task joins the future.
	on(func(w *Worker) {
		f := Async(w, func(*Worker) int { return 7 })
		var got atomic.Int64
		w.Join(
			func(w *Worker) { got.Store(int64(f.Wait(w))) },
			func(w *Worker) {},
		)
		if got.Load() != 7 {
			t.Fatalf("cross-task wait = %d", got.Load())
		}
	})
}

func TestPipelineOrdering(t *testing.T) {
	const n = 200
	const stages = 4
	// Record, per item, the order stages observed it.
	state := make([][stages]int32, n)
	var clock atomic.Int32
	fns := make([]func(int), stages)
	for s := 0; s < stages; s++ {
		s := s
		fns[s] = func(i int) {
			state[i][s] = clock.Add(1)
		}
	}
	on(func(w *Worker) { Pipeline(w, n, fns) })
	for i := 0; i < n; i++ {
		for s := 1; s < stages; s++ {
			if state[i][s] <= state[i][s-1] {
				t.Fatalf("item %d: stage %d ran at %d before stage %d at %d",
					i, s, state[i][s], s-1, state[i][s-1])
			}
		}
	}
	for s := 0; s < stages; s++ {
		for i := 1; i < n; i++ {
			if state[i][s] <= state[i-1][s] {
				t.Fatalf("stage %d: item %d ran before item %d", s, i, i-1)
			}
		}
	}
}

func TestPipelineComputesChain(t *testing.T) {
	const n = 1000
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	on(func(w *Worker) {
		Pipeline(w, n, []func(int){
			func(i int) { data[i] *= 2 },
			func(i int) { data[i] += 3 },
			func(i int) { data[i] *= data[i] },
		})
	})
	for i := range data {
		want := (i*2 + 3) * (i*2 + 3)
		if data[i] != want {
			t.Fatalf("data[%d] = %d, want %d", i, data[i], want)
		}
	}
}

func TestPipelineSequentialAndDegenerate(t *testing.T) {
	ran := 0
	Pipeline(nil, 5, []func(int){func(i int) { ran++ }})
	if ran != 5 {
		t.Fatalf("sequential pipeline ran %d items", ran)
	}
	Pipeline(nil, 0, []func(int){func(int) { t.Fatal("ran on n=0") }})
	Pipeline(nil, 5, nil)
	on(func(w *Worker) {
		Pipeline(w, 0, []func(int){func(int) { t.Error("ran on n=0 parallel") }})
	})
}

func TestPipelineSingleWorkerPool(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var order []int
	p.Do(func(w *Worker) {
		Pipeline(w, 3, []func(int){
			func(i int) { order = append(order, i) },
			func(i int) { order = append(order, 10+i) },
		})
	})
	if len(order) != 6 {
		t.Fatalf("ran %d cells", len(order))
	}
}

func TestHelpUntilImmediate(t *testing.T) {
	on(func(w *Worker) {
		w.HelpUntil(func() bool { return true })
	})
}

func TestFuturePanicSurfacesAtWait(t *testing.T) {
	on(func(w *Worker) {
		f := Async(w, func(*Worker) int { panic("future boom") })
		defer func() {
			r := recover()
			tp, ok := r.(*TaskPanic)
			if !ok || tp.Value != "future boom" {
				t.Errorf("recovered %v", r)
			}
		}()
		f.Wait(w)
		t.Error("Wait returned despite panic")
	})
}
