// Package core is the parallel-patterns library at the heart of this
// reproduction: the Go analog of Rust+Rayon as studied in "When Is
// Parallelism Fearless and Zero-Cost with Rust?" (SPAA 2024).
//
// Every exported primitive expresses one of the paper's seven parallel
// access patterns (Table 3):
//
//	RO      read-only operators               — Reduce, Sum, MapReduce    (Fearless)
//	Stride  array[i] = f()                    — ForEachIdx, ForRange      (Fearless)
//	Block   array[i*s..(i+1)*s] = f()         — Chunks                    (Fearless)
//	D&C     divide and conquer                — Join (via Worker), SortBy (Fearless)
//	SngInd  array[B[i]] = f()                 — IndForEach[Unchecked]     (Comfortable / Scared)
//	RngInd  array[B[i]..B[i+1]] = f()         — IndChunks[Unchecked]      (Comfortable / Scared)
//	AW      arbitrary reads and writes        — atomics, ShardedLocks     (Scared)
//
// Go has no borrow checker, so the compile-time/run-time split the paper
// studies is reproduced as API structure: the "Fearless" primitives are
// safe by construction (each task receives disjoint state), the
// "Comfortable" primitives perform the paper's proposed dynamic checks
// (offset uniqueness, boundary monotonicity) and report violations as
// errors, and the "Scared" primitives — the *Unchecked variants and the
// raw synchronization helpers — trust the caller exactly like an unsafe
// block does.
package core

import (
	"sync/atomic"

	"repro/internal/sched"
)

// Worker is the scheduler worker type, re-exported so that callers only
// import core. All primitives accept a nil Worker, in which case they run
// sequentially on the calling goroutine; this is both a convenience and
// the 1-thread baseline used throughout the evaluation.
type Worker = sched.Worker

// Pool re-exports the scheduler pool type.
type Pool = sched.Pool

// NewPool starts a work-stealing pool with n workers (GOMAXPROCS if
// n <= 0). Callers owning a pool must Close it.
func NewPool(n int) *Pool { return sched.NewPool(n) }

var defaultPool atomic.Pointer[sched.Pool]

// Run executes f on the process-default pool, creating the pool with
// GOMAXPROCS workers on first use. It returns when f returns.
func Run(f func(w *Worker)) {
	p := defaultPool.Load()
	if p == nil {
		np := sched.NewPool(0)
		if defaultPool.CompareAndSwap(nil, np) {
			p = np
		} else {
			np.Close()
			p = defaultPool.Load()
		}
	}
	p.Do(f)
}

// Mode is the suite-wide switch for how benchmarks express their
// irregular (SngInd / AW) accesses — the Go analog of RPB's toggles for
// unsafe parallel features.
type Mode int32

const (
	// ModeUnchecked expresses SngInd/AW with unchecked primitives — the
	// analog of unsafe Rust. Fast and Scared.
	ModeUnchecked Mode = iota
	// ModeChecked expresses SngInd/RngInd with the run-time-validated
	// primitives (IndForEach, IndChunks) — Comfortable, paying the check.
	ModeChecked
	// ModeSynchronized expresses SngInd/AW with synchronization (atomics
	// or mutexes) — the "placate the type system" option; Scared.
	ModeSynchronized
)

func (m Mode) String() string {
	switch m {
	case ModeUnchecked:
		return "unchecked"
	case ModeChecked:
		return "checked"
	case ModeSynchronized:
		return "synchronized"
	}
	return "invalid"
}

var currentMode atomic.Int32

// SetMode sets the suite-wide expression mode. Benchmarks read it at the
// start of a run; changing it mid-run has no effect on that run.
func SetMode(m Mode) { currentMode.Store(int32(m)) }

// GetMode returns the current suite-wide expression mode.
func GetMode() Mode { return Mode(currentMode.Load()) }

// Number is the constraint shared by the arithmetic reductions and scans.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// IndexInt is the constraint for offset/index arrays used by the
// indirect-access primitives.
type IndexInt interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}
