package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScanExclusiveSmall(t *testing.T) {
	xs := []int{3, 1, 4, 1, 5}
	total := ScanExclusive(nil, xs)
	want := []int{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total = %d", total)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("xs = %v, want %v", xs, want)
		}
	}
}

func TestScanInclusiveSmall(t *testing.T) {
	xs := []int{3, 1, 4, 1, 5}
	total := ScanInclusive(nil, xs)
	want := []int{3, 4, 8, 9, 14}
	if total != 14 {
		t.Fatalf("total = %d", total)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("xs = %v, want %v", xs, want)
		}
	}
}

func TestScanEmpty(t *testing.T) {
	if ScanExclusive(nil, []int{}) != 0 {
		t.Fatal("empty exclusive scan total != 0")
	}
	if ScanInclusive(nil, []int{}) != 0 {
		t.Fatal("empty inclusive scan total != 0")
	}
}

func TestScanParallelMatchesSequentialProperty(t *testing.T) {
	f := func(xs []int32, big bool) bool {
		data := make([]int64, len(xs))
		for i, x := range xs {
			data[i] = int64(x)
		}
		if big {
			// Stretch across multiple scan blocks.
			for len(data) < 3*scanGrain[int64]() {
				data = append(data, data...)
				if len(data) == 0 {
					break
				}
			}
		}
		seq := append([]int64(nil), data...)
		var seqTotal int64
		for i := range seq {
			v := seq[i]
			seq[i] = seqTotal
			seqTotal += v
		}
		var parTotal int64
		on(func(w *Worker) { parTotal = ScanExclusive(w, data) })
		if parTotal != seqTotal {
			return false
		}
		for i := range data {
			if data[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScanExclusiveOpMaxMonoid(t *testing.T) {
	xs := []int{2, 9, 1, 7}
	maxOp := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	total := ScanExclusiveOp(nil, xs, -1<<62, maxOp)
	if total != 9 {
		t.Fatalf("total = %d", total)
	}
	want := []int{-1 << 62, 2, 9, 9}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("xs = %v, want %v", xs, want)
		}
	}
}

func TestPackIndexAndFilter(t *testing.T) {
	on(func(w *Worker) {
		idx := PackIndex(w, 10, func(i int) bool { return i%3 == 0 })
		want := []int32{0, 3, 6, 9}
		if len(idx) != len(want) {
			t.Fatalf("idx = %v", idx)
		}
		for i := range want {
			if idx[i] != want[i] {
				t.Fatalf("idx = %v, want %v", idx, want)
			}
		}
		xs := []int{5, 2, 8, 1, 9, 3}
		got := Filter(w, xs, func(x int) bool { return x > 4 })
		wantF := []int{5, 8, 9}
		if len(got) != len(wantF) {
			t.Fatalf("Filter = %v", got)
		}
		for i := range wantF {
			if got[i] != wantF[i] {
				t.Fatalf("Filter = %v, want %v", got, wantF)
			}
		}
	})
}

func TestPackIndexLargeKeepsOrder(t *testing.T) {
	const n = 100000
	var idx []int32
	on(func(w *Worker) {
		idx = PackIndex(w, n, func(i int) bool { return i%7 == 2 })
	})
	at := 0
	for i := 0; i < n; i++ {
		if i%7 == 2 {
			if idx[at] != int32(i) {
				t.Fatalf("idx[%d] = %d, want %d", at, idx[at], i)
			}
			at++
		}
	}
	if at != len(idx) {
		t.Fatalf("packed %d, want %d", len(idx), at)
	}
}

func TestPackIndexEmpty(t *testing.T) {
	if got := PackIndex(nil, 0, func(int) bool { return true }); len(got) != 0 {
		t.Fatalf("PackIndex(0) = %v", got)
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 100, sortSeqThreshold + 1, 50000} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		on(func(w *Worker) { Sort(w, xs) })
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: sort mismatch at %d", n, i)
			}
		}
	}
}

func TestSortByStable(t *testing.T) {
	type kv struct{ k, v int }
	rng := rand.New(rand.NewSource(4))
	const n = 30000
	xs := make([]kv, n)
	for i := range xs {
		xs[i] = kv{k: rng.Intn(50), v: i}
	}
	on(func(w *Worker) {
		SortBy(w, xs, func(a, b kv) bool { return a.k < b.k })
	})
	for i := 1; i < n; i++ {
		if xs[i-1].k > xs[i].k {
			t.Fatalf("not sorted at %d", i)
		}
		if xs[i-1].k == xs[i].k && xs[i-1].v > xs[i].v {
			t.Fatalf("not stable at %d: %v before %v", i, xs[i-1], xs[i])
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(xs []int16) bool {
		data := make([]int16, len(xs))
		copy(data, xs)
		want := append([]int16(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		on(func(w *Worker) { Sort(w, data) })
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSorted(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	on(func(w *Worker) {
		if !IsSorted(w, []int{1, 2, 2, 3}, less) {
			t.Error("sorted slice reported unsorted")
		}
		if IsSorted(w, []int{1, 3, 2}, less) {
			t.Error("unsorted slice reported sorted")
		}
		if !IsSorted(w, []int{}, less) || !IsSorted(w, []int{1}, less) {
			t.Error("trivial slices should be sorted")
		}
	})
}

func TestSeqMerge(t *testing.T) {
	a := []int{1, 3, 5}
	b := []int{2, 3, 4, 6}
	out := make([]int, 7)
	seqMerge(a, b, out, func(x, y int) bool { return x < y })
	want := []int{1, 2, 3, 3, 4, 5, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merge = %v, want %v", out, want)
		}
	}
}

func TestFlatten(t *testing.T) {
	nested := [][]int{{1, 2}, {}, {3}, {4, 5, 6}}
	var got []int
	on(func(w *Worker) { got = Flatten(w, nested) })
	want := []int{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Flatten = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Flatten = %v, want %v", got, want)
		}
	}
	if out := Flatten[int](nil, nil); len(out) != 0 {
		t.Fatalf("Flatten(nil) = %v", out)
	}
}

func TestFlattenPropertyMatchesAppend(t *testing.T) {
	f := func(raw []uint8) bool {
		// Build nested slices with lengths from raw.
		var nested [][]int
		next := 0
		for _, r := range raw {
			l := int(r % 7)
			s := make([]int, l)
			for i := range s {
				s[i] = next
				next++
			}
			nested = append(nested, s)
		}
		var want []int
		for _, s := range nested {
			want = append(want, s...)
		}
		var got []int
		on(func(w *Worker) { got = Flatten(w, nested) })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
