package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

var testPool = core.NewPool(4)

func on(f func(w *core.Worker)) { testPool.Do(f) }

func TestSortPairsSmall(t *testing.T) {
	keys := []uint64{5, 1, 4, 1, 3}
	vals := []int32{0, 1, 2, 3, 4}
	on(func(w *core.Worker) { SortPairs(w, keys, vals, 8) })
	wantK := []uint64{1, 1, 3, 4, 5}
	wantV := []int32{1, 3, 4, 2, 0} // stable: first 1 keeps original order
	for i := range wantK {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("keys=%v vals=%v", keys, vals)
		}
	}
}

func TestSortPairsStability(t *testing.T) {
	// Only the low 8 bits are sorted; the upper bits tag original order.
	const n = 30000
	keys := make([]uint64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = uint64(rng.Intn(16)) | uint64(i)<<32
	}
	on(func(w *core.Worker) { SortPairs(w, keys, nil, 8) })
	for i := 1; i < n; i++ {
		a, b := keys[i-1], keys[i]
		if a&0xff > b&0xff {
			t.Fatalf("not sorted at %d", i)
		}
		if a&0xff == b&0xff && a>>32 > b>>32 {
			t.Fatalf("not stable at %d", i)
		}
	}
}

func TestSortPairsOddAndEvenPassCounts(t *testing.T) {
	for _, bits := range []int{8, 16, 24, 32, 40} {
		const n = 5000
		rng := rand.New(rand.NewSource(int64(bits)))
		keys := make([]uint64, n)
		vals := make([]int32, n)
		mask := uint64(1)<<bits - 1
		for i := range keys {
			keys[i] = rng.Uint64() & mask
			vals[i] = int32(i)
		}
		orig := append([]uint64(nil), keys...)
		on(func(w *core.Worker) { SortPairs(w, keys, vals, bits) })
		want := append([]uint64(nil), orig...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("bits=%d: keys not sorted at %d", bits, i)
			}
			if orig[vals[i]] != keys[i] {
				t.Fatalf("bits=%d: payload decoupled from key at %d", bits, i)
			}
		}
	}
}

func TestSortPairsEmptyAndSingle(t *testing.T) {
	SortPairs(nil, nil, nil, 8)
	k := []uint64{9}
	SortPairs(nil, k, []int32{1}, 8)
	if k[0] != 9 {
		t.Fatal("single element changed")
	}
}

func TestSortPairsMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortPairs(nil, []uint64{1, 2}, []int32{1}, 8)
}

func TestSortPairsPropertyMatchesStdlib(t *testing.T) {
	f := func(raw []uint32) bool {
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r)
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		on(func(w *core.Worker) { SortPairs(w, keys, nil, 32) })
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortU32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint32, 40000)
	for i := range keys {
		keys[i] = rng.Uint32() % 100000
	}
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	on(func(w *core.Worker) { SortU32(w, keys, BitsFor(100000)) })
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 3: 2, 255: 8, 256: 9, 1 << 40: 41}
	for in, want := range cases {
		if got := BitsFor(in); got != want {
			t.Fatalf("BitsFor(%d) = %d, want %d", in, got, want)
		}
	}
}

func BenchmarkSortPairs1M(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(3))
	src := make([]uint64, n)
	for i := range src {
		src[i] = uint64(rng.Uint32())
	}
	keys := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, src)
		on(func(w *core.Worker) { SortPairs(w, keys, nil, 32) })
	}
}
