// Package radix implements a parallel least-significant-digit radix
// sort over 8-bit digits — the kernel under the isort benchmark and the
// suffix-array construction. Each counting pass is the textbook PBBS
// composition of the suite's patterns: a Block pass counting digit
// occurrences per input chunk, a scan over the (digit, chunk) count
// matrix, and a scatter in which each chunk writes its elements through
// precomputed disjoint cursors — SngInd with independence guaranteed by
// the scan (the algorithmic guarantee the paper's Sec 5.1 discusses).
package radix

import "repro/internal/core"

const digitBits = 8
const radixSize = 1 << digitBits

// blockSizeFor picks the per-chunk grain for counting passes.
func blockSizeFor(n int) int {
	bs := 1 << 14
	if n < bs {
		bs = n
	}
	if bs == 0 {
		bs = 1
	}
	return bs
}

// SortPairs sorts keys (and vals along with it) by ascending key,
// examining only the low `bits` bits of each key. vals may be nil.
// Both slices are reordered in place; O(n) scratch is allocated.
func SortPairs(w *core.Worker, keys []uint64, vals []int32, bits int) {
	n := len(keys)
	if n < 2 {
		return
	}
	if vals != nil && len(vals) != n {
		panic("radix.SortPairs: keys/vals length mismatch")
	}
	passes := (bits + digitBits - 1) / digitBits
	if passes == 0 {
		passes = 1
	}
	keyBuf := make([]uint64, n)
	var valBuf []int32
	if vals != nil {
		valBuf = make([]int32, n)
	}
	srcK, dstK := keys, keyBuf
	srcV, dstV := vals, valBuf
	for p := 0; p < passes; p++ {
		shift := uint(p * digitBits)
		countingPass(w, srcK, srcV, dstK, dstV, shift)
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if passes%2 == 1 {
		core.CopyInto(w, keys, srcK)
		if vals != nil {
			core.CopyInto(w, vals, srcV)
		}
	}
}

// countingPass performs one stable counting-sort pass on the digit at
// shift, from src into dst.
func countingPass(w *core.Worker, srcK []uint64, srcV []int32, dstK []uint64, dstV []int32, shift uint) {
	n := len(srcK)
	bs := blockSizeFor(n)
	nb := (n + bs - 1) / bs
	// counts is digit-major: counts[d*nb + b] = occurrences of digit d
	// in block b. Digit-major layout makes the global exclusive scan
	// directly yield each (digit, block) write cursor.
	counts := make([]int32, radixSize*nb)
	core.ForRange(w, 0, nb, 1, func(b int) {
		lo, hi := b*bs, (b+1)*bs
		if hi > n {
			hi = n
		}
		var local [radixSize]int32
		for i := lo; i < hi; i++ {
			local[(srcK[i]>>shift)&(radixSize-1)]++
		}
		for d := 0; d < radixSize; d++ {
			counts[d*nb+b] = local[d]
		}
	})
	core.ScanExclusive(w, counts)
	core.ForRange(w, 0, nb, 1, func(b int) {
		lo, hi := b*bs, (b+1)*bs
		if hi > n {
			hi = n
		}
		var cursor [radixSize]int32
		for d := 0; d < radixSize; d++ {
			cursor[d] = counts[d*nb+b]
		}
		for i := lo; i < hi; i++ {
			d := (srcK[i] >> shift) & (radixSize - 1)
			at := cursor[d]
			cursor[d]++
			dstK[at] = srcK[i]
			if srcV != nil {
				dstV[at] = srcV[i]
			}
		}
	})
}

// SortU32 sorts keys ascending, examining only the low `bits` bits.
func SortU32(w *core.Worker, keys []uint32, bits int) {
	n := len(keys)
	if n < 2 {
		return
	}
	wide := make([]uint64, n)
	core.ForRange(w, 0, n, 0, func(i int) { wide[i] = uint64(keys[i]) })
	SortPairs(w, wide, nil, bits)
	core.ForRange(w, 0, n, 0, func(i int) { keys[i] = uint32(wide[i]) })
}

// BitsFor returns the number of bits needed to represent max.
func BitsFor(max uint64) int {
	b := 0
	for max > 0 {
		b++
		max >>= 1
	}
	if b == 0 {
		b = 1
	}
	return b
}
