// Package radix implements a parallel least-significant-digit radix
// sort over 8-bit digits — the kernel under the isort benchmark and the
// suffix-array construction. Each counting pass is the textbook PBBS
// composition of the suite's patterns: a Block pass counting digit
// occurrences per input chunk, a scan over the (digit, chunk) count
// matrix, and a scatter in which each chunk writes its elements through
// precomputed disjoint cursors — SngInd with independence guaranteed by
// the scan (the algorithmic guarantee the paper's Sec 5.1 discusses).
//
// The per-pass histograms and the ping-pong buffers live in a reusable
// Scratch (docs/MEMORY.md): SortPairs checks one out of the calling
// worker's box stack, so repeated sorts on a pool — the steady state of
// every benchmark round — allocate nothing once the scratch has grown
// to the input size. Callers managing their own reuse can hold a
// Scratch and call SortPairsScratch directly.
package radix

import (
	"repro/internal/arena"
	"repro/internal/core"
)

const digitBits = 8
const radixSize = 1 << digitBits

// blockSizeFor picks the per-chunk grain for counting passes.
func blockSizeFor(n int) int {
	bs := 1 << 14
	if n < bs {
		bs = n
	}
	if bs == 0 {
		bs = 1
	}
	return bs
}

// Scratch holds the reusable memory of SortPairs: the ping-pong key and
// value buffers, the (digit, chunk) count matrix, and the pass body.
// A Scratch grows to the largest sort it has served and is reused
// without shrinking. It is single-owner: one sort at a time.
type Scratch struct {
	keyBuf []uint64
	valBuf []int32
	counts []int32
	body   passBody
}

// SortPairs sorts keys (and vals along with it) by ascending key,
// examining only the low `bits` bits of each key. vals may be nil.
// Both slices are reordered in place. Scratch is checked out of the
// calling worker's box stack, so steady-state calls on a pool allocate
// nothing; sequential (nil-worker) calls allocate a fresh scratch.
func SortPairs(w *core.Worker, keys []uint64, vals []int32, bits int) {
	if w == nil {
		var s Scratch
		SortPairsScratch(nil, keys, vals, bits, &s)
		return
	}
	s := arena.AcquireBox[Scratch](w)
	SortPairsScratch(w, keys, vals, bits, s)
	arena.ReleaseBox(w, s)
}

// SortPairsScratch is SortPairs with caller-managed scratch.
func SortPairsScratch(w *core.Worker, keys []uint64, vals []int32, bits int, s *Scratch) {
	n := len(keys)
	if n < 2 {
		return
	}
	if vals != nil && len(vals) != n {
		panic("radix.SortPairs: keys/vals length mismatch")
	}
	passes := (bits + digitBits - 1) / digitBits
	if passes == 0 {
		passes = 1
	}
	s.keyBuf = core.EnsureLen(s.keyBuf, n)
	if vals != nil {
		s.valBuf = core.EnsureLen(s.valBuf, n)
	}
	srcK, dstK := keys, s.keyBuf
	srcV, dstV := vals, []int32(nil)
	if vals != nil {
		dstV = s.valBuf
	}
	for p := 0; p < passes; p++ {
		shift := uint(p * digitBits)
		countingPass(w, s, srcK, srcV, dstK, dstV, shift)
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if passes%2 == 1 {
		core.CopyInto(w, keys, srcK)
		if vals != nil {
			core.CopyInto(w, vals, srcV)
		}
	}
}

// Phases of passBody.
const (
	passCount uint8 = iota
	passScatter
)

// passBody is the reusable loop body for one counting-sort pass,
// ranging over input blocks. Phase passCount histograms each block's
// digits into the digit-major count matrix; phase passScatter (after
// the matrix has been exclusive-scanned into write cursors) moves each
// block's elements through its disjoint cursors.
type passBody struct {
	srcK, dstK []uint64
	srcV, dstV []int32
	counts     []int32
	n, bs, nb  int
	shift      uint
	phase      uint8
}

func (p *passBody) RunRange(_ *core.Worker, lo, hi int) {
	for b := lo; b < hi; b++ {
		blo := b * p.bs
		bhi := blo + p.bs
		if bhi > p.n {
			bhi = p.n
		}
		if p.phase == passCount {
			var local [radixSize]int32
			for i := blo; i < bhi; i++ {
				local[(p.srcK[i]>>p.shift)&(radixSize-1)]++
			}
			for d := 0; d < radixSize; d++ {
				p.counts[d*p.nb+b] = local[d]
			}
		} else {
			var cursor [radixSize]int32
			for d := 0; d < radixSize; d++ {
				cursor[d] = p.counts[d*p.nb+b]
			}
			for i := blo; i < bhi; i++ {
				d := (p.srcK[i] >> p.shift) & (radixSize - 1)
				at := cursor[d]
				cursor[d]++
				p.dstK[at] = p.srcK[i]
				if p.srcV != nil {
					p.dstV[at] = p.srcV[i]
				}
			}
		}
	}
}

// countingPass performs one stable counting-sort pass on the digit at
// shift, from src into dst, with all scratch drawn from s. With a
// warmed scratch it allocates nothing.
func countingPass(w *core.Worker, s *Scratch, srcK []uint64, srcV []int32, dstK []uint64, dstV []int32, shift uint) {
	n := len(srcK)
	bs := blockSizeFor(n)
	nb := (n + bs - 1) / bs
	// counts is digit-major: counts[d*nb + b] = occurrences of digit d
	// in block b. Digit-major layout makes the global exclusive scan
	// directly yield each (digit, block) write cursor.
	s.counts = core.EnsureLen(s.counts, radixSize*nb)
	b := &s.body
	b.srcK, b.srcV, b.dstK, b.dstV = srcK, srcV, dstK, dstV
	b.counts, b.n, b.bs, b.nb, b.shift = s.counts, n, bs, nb, shift
	b.phase = passCount
	core.CountDynamic(core.Block)
	if w == nil || nb <= 1 {
		b.RunRange(nil, 0, nb)
	} else {
		w.ForBody(0, nb, 1, b)
	}
	core.ScanExclusive(w, s.counts)
	b.phase = passScatter
	core.CountDynamic(core.SngInd)
	if w == nil || nb <= 1 {
		b.RunRange(nil, 0, nb)
	} else {
		w.ForBody(0, nb, 1, b)
	}
	b.srcK, b.srcV, b.dstK, b.dstV, b.counts = nil, nil, nil, nil, nil
}

// SortU32 sorts keys ascending, examining only the low `bits` bits. The
// widened copy lives in the worker's arena.
func SortU32(w *core.Worker, keys []uint32, bits int) {
	n := len(keys)
	if n < 2 {
		return
	}
	a := arena.Of(w)
	m := a.Mark()
	wide := arena.AllocUninit[uint64](a, n)
	core.ForRange(w, 0, n, 0, func(i int) { wide[i] = uint64(keys[i]) })
	SortPairs(w, wide, nil, bits)
	core.ForRange(w, 0, n, 0, func(i int) { keys[i] = uint32(wide[i]) })
	a.Release(m)
}

// BitsFor returns the number of bits needed to represent max.
func BitsFor(max uint64) int {
	b := 0
	for max > 0 {
		b++
		max >>= 1
	}
	if b == 0 {
		b = 1
	}
	return b
}
