package seqgen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestHash64MatchesListing10(t *testing.T) {
	// Spot-check the algebra: the function must be deterministic and
	// avalanche (differ in many bits for adjacent inputs).
	if Hash64(1) != Hash64(1) {
		t.Fatal("Hash64 not deterministic")
	}
	diff := Hash64(1) ^ Hash64(2)
	bits := 0
	for d := diff; d != 0; d &= d - 1 {
		bits++
	}
	if bits < 16 {
		t.Fatalf("poor avalanche: only %d differing bits", bits)
	}
}

func TestHashTask(t *testing.T) {
	v := uint64(42)
	want := Hash64(42)
	HashTask(&v)
	if v != want {
		t.Fatalf("HashTask = %d, want %d", v, want)
	}
}

func TestRngDeterministicAndSplittable(t *testing.T) {
	a := NewRng(5)
	b := NewRng(5)
	for i := uint64(0); i < 100; i++ {
		if a.U64(i) != b.U64(i) {
			t.Fatal("same seed diverged")
		}
	}
	if NewRng(5).U64(0) == NewRng(6).U64(0) {
		t.Fatal("different seeds collided")
	}
	if a.Fork(1).U64(0) == a.Fork(2).U64(0) {
		t.Fatal("forked streams collided")
	}
}

func TestRngRanges(t *testing.T) {
	r := NewRng(7)
	for i := uint64(0); i < 1000; i++ {
		if v := r.Intn(i, 10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(i); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if r.Intn(0, 0) != 0 || r.Intn(0, -3) != 0 {
		t.Fatal("Intn with n<=0 should be 0")
	}
}

func TestRngUniformityRough(t *testing.T) {
	r := NewRng(11)
	buckets := make([]int, 10)
	const n = 100000
	for i := uint64(0); i < n; i++ {
		buckets[r.Intn(i, 10)]++
	}
	for b, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d draws, expected ~%d", b, c, n/10)
		}
	}
}

func TestExponentialIntsShape(t *testing.T) {
	const n = 50000
	xs := ExponentialInts(nil, n, 1)
	if len(xs) != n {
		t.Fatalf("len = %d", len(xs))
	}
	// Mean should be near n/8; median far below mean (heavy skew).
	var sum float64
	small := 0
	for _, x := range xs {
		sum += float64(x)
		if float64(x) < float64(n)/8 {
			small++
		}
	}
	mean := sum / n
	if mean < float64(n)/16 || mean > float64(n)/4 {
		t.Fatalf("mean = %v, want near %v", mean, float64(n)/8)
	}
	if frac := float64(small) / n; frac < 0.55 || frac > 0.75 {
		t.Fatalf("below-mean fraction = %v, want ~1-1/e", frac)
	}
	// Duplicates must exist (the whole point for dedup/hist).
	seen := map[uint32]bool{}
	dups := 0
	for _, x := range xs {
		if seen[x] {
			dups++
		}
		seen[x] = true
	}
	if dups == 0 {
		t.Fatal("no duplicate keys in exponential input")
	}
}

func TestUniformGenerators(t *testing.T) {
	xs := UniformInts(nil, 1000, 50, 3)
	for _, x := range xs {
		if x >= 50 {
			t.Fatalf("uniform value %d out of range", x)
		}
	}
	us := UniformU64(nil, 100, 3)
	if len(us) != 100 {
		t.Fatal("wrong length")
	}
	if us[0] == us[1] && us[1] == us[2] {
		t.Fatal("suspiciously constant")
	}
}

func TestKuzminPointsClustered(t *testing.T) {
	pts := KuzminPoints(nil, 20000, 2)
	if len(pts) != 20000 {
		t.Fatal("wrong length")
	}
	// Kuzmin: half of all points lie within r = sqrt(3) (F(r)=1-1/sqrt(1+r^2)=0.5).
	inner := 0
	for _, p := range pts {
		if !isFinite(p.X) || !isFinite(p.Y) {
			t.Fatalf("non-finite point %+v", p)
		}
		if p.X*p.X+p.Y*p.Y <= 3 {
			inner++
		}
	}
	frac := float64(inner) / float64(len(pts))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("inner fraction = %v, want ~0.5", frac)
	}
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func TestTextAlphabetAndDeterminism(t *testing.T) {
	a := Text(nil, 10000, 4)
	b := Text(nil, 10000, 4)
	if len(a) != 10000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("text generation not deterministic")
		}
		if a[i] != ' ' && (a[i] < 'a' || a[i] > 'z') {
			t.Fatalf("byte %q outside alphabet", a[i])
		}
	}
	if c := Text(nil, 10000, 5); string(c) == string(a) {
		t.Fatal("different seeds produced identical text")
	}
}

func TestTextHasPlantedRepeat(t *testing.T) {
	n := 32768
	txt := Text(nil, n, 6)
	plen := n / 16
	src, dst := n/8, n/2
	if string(txt[src:src+plen]) != string(txt[dst:dst+plen]) {
		t.Fatal("planted repeat missing")
	}
}

func TestTextTinyAndZero(t *testing.T) {
	if Text(nil, 0, 1) != nil {
		t.Fatal("Text(0) should be nil")
	}
	if got := Text(nil, 3, 1); len(got) != 3 {
		t.Fatalf("Text(3) len = %d", len(got))
	}
}

func TestTextParallelMatchesSequential(t *testing.T) {
	p := core.NewPool(4)
	defer p.Close()
	seq := Text(nil, 20000, 9)
	var par []byte
	p.Do(func(w *core.Worker) { par = Text(w, 20000, 9) })
	if string(seq) != string(par) {
		t.Fatal("parallel text differs from sequential")
	}
}

func TestGeneratorsPropertyDeterministic(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		x := ExponentialInts(nil, n, seed)
		y := ExponentialInts(nil, n, seed)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		p := KuzminPoints(nil, n%100+1, seed)
		q := KuzminPoints(nil, n%100+1, seed)
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
