// Package seqgen generates the synthetic inputs used across the suite,
// substituting for the paper's input files: exponential/uniform integer
// sequences (PBBS's sequenceData), Zipfian text with planted repeated
// passages (substituting for the wiki input of bw/lrs/sa), and
// Kuzmin-distributed points (the dr input). All generators are
// deterministic functions of an explicit seed and are parallel-friendly:
// element i depends only on (seed, i).
package seqgen

import (
	"math"

	"repro/internal/core"
)

// Hash64 is the 64-bit hash function PBBS uses for data generation, as
// reproduced in the paper's Appendix A (Listing 10).
func Hash64(v uint64) uint64 {
	v = v * 3935559000370003845
	v = v + 2691343689449507681
	v ^= v >> 21
	v ^= v << 37
	v ^= v >> 4
	v = v * 4768777513237032717
	v ^= v << 20
	v ^= v >> 41
	v ^= v << 5
	return v
}

// HashTask replaces *e with Hash64 of its value — the microbenchmark
// task of the paper's Appendix A, used by the Fig 6 reproduction.
func HashTask(e *uint64) { *e = Hash64(*e) }

// Rng is a stateless, splittable random source: every draw is a pure
// function of the seed and an index, so parallel tasks can draw
// independent values without sharing state.
type Rng struct{ seed uint64 }

// NewRng returns a source derived from seed.
func NewRng(seed uint64) Rng {
	return Rng{seed: Hash64(seed ^ 0x9e3779b97f4a7c15)}
}

// U64 returns the i-th 64-bit draw.
func (r Rng) U64(i uint64) uint64 { return Hash64(r.seed ^ Hash64(i+1)) }

// Intn returns the i-th draw in [0, n).
func (r Rng) Intn(i uint64, n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.U64(i) % uint64(n))
}

// Float64 returns the i-th draw in [0, 1).
func (r Rng) Float64(i uint64) float64 {
	return float64(r.U64(i)>>11) / float64(1<<53)
}

// Fork returns an independent source for stream k.
func (r Rng) Fork(k uint64) Rng { return Rng{seed: Hash64(r.seed + 0x632be59bd9b4e019*(k+1))} }

// UniformU64 fills a length-n slice with uniform 64-bit values.
func UniformU64(w *core.Worker, n int, seed uint64) []uint64 {
	r := NewRng(seed)
	return core.Tabulate(w, n, func(i int) uint64 { return r.U64(uint64(i)) })
}

// UniformInts fills a length-n slice with uniform values in [0, max).
func UniformInts(w *core.Worker, n, max int, seed uint64) []uint32 {
	r := NewRng(seed)
	return core.Tabulate(w, n, func(i int) uint32 { return uint32(r.Intn(uint64(i), max)) })
}

// ExponentialInts generates PBBS's "exponential" key distribution: keys
// concentrate near zero with a long tail, producing the duplicate-heavy
// inputs sort/dedup/hist/isort are evaluated on. The mean of the
// distribution is roughly n/8, matching PBBS's expDist.
func ExponentialInts(w *core.Worker, n int, seed uint64) []uint32 {
	r := NewRng(seed)
	mean := float64(n) / 8
	if mean < 1 {
		mean = 1
	}
	return core.Tabulate(w, n, func(i int) uint32 {
		u := r.Float64(uint64(i))
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		v := -math.Log(1-u) * mean
		if v >= float64(math.MaxUint32) {
			v = float64(math.MaxUint32) - 1
		}
		return uint32(v)
	})
}

// Point is a point in the plane.
type Point struct{ X, Y float64 }

// KuzminPoints generates n points following the Kuzmin disk distribution
// used by PBBS's Delaunay inputs: heavily clustered near the origin with
// a heavy radial tail, stressing point location and refinement.
func KuzminPoints(w *core.Worker, n int, seed uint64) []Point {
	r := NewRng(seed)
	return core.Tabulate(w, n, func(i int) Point {
		u := r.Float64(uint64(2 * i))
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		// Kuzmin radial CDF: F(r) = 1 - 1/sqrt(1+r^2)  =>  r = sqrt(1/(1-u)^2 - 1)
		d := 1 - u
		rad := math.Sqrt(1/(d*d) - 1)
		theta := 2 * math.Pi * r.Float64(uint64(2*i+1))
		return Point{X: rad * math.Cos(theta), Y: rad * math.Sin(theta)}
	})
}

// zipfWords is the synthetic vocabulary for text generation.
const zipfVocabSize = 4096

// Text generates n bytes of synthetic natural-ish text: space-separated
// words drawn from a Zipfian vocabulary, with repeated passages planted
// at deterministic positions so that longest-repeated-substring queries
// (lrs) have non-trivial answers, as real wiki text does. The output
// contains only bytes in ['a','z'] and ' '.
func Text(w *core.Worker, n int, seed uint64) []byte {
	if n <= 0 {
		return nil
	}
	r := NewRng(seed)
	// Build the vocabulary: word lengths 2..9, letters uniform.
	vocab := make([][]byte, zipfVocabSize)
	vr := r.Fork(1)
	for wi := range vocab {
		wl := 2 + vr.Intn(uint64(2*wi), 8)
		word := make([]byte, wl)
		for k := 0; k < wl; k++ {
			word[k] = byte('a' + vr.Intn(uint64(wi*16+k+1), 26))
		}
		vocab[wi] = word
	}
	// Zipf sampling via inverse-power transform: index ~ floor(V * u^2)
	// biases heavily toward low indices (an s≈2-flavored skew that is
	// cheap and deterministic).
	out := make([]byte, 0, n+16)
	tr := r.Fork(2)
	var draw uint64
	for len(out) < n {
		u := tr.Float64(draw)
		draw++
		idx := int(float64(zipfVocabSize) * u * u)
		if idx >= zipfVocabSize {
			idx = zipfVocabSize - 1
		}
		out = append(out, vocab[idx]...)
		out = append(out, ' ')
	}
	out = out[:n]
	// Plant repeated passages: copy a chunk from the first quarter into
	// the third quarter so lrs has a long deterministic repeat.
	if n >= 64 {
		plen := n / 16
		if plen > 4096 {
			plen = 4096
		}
		src := n / 8
		dst := n / 2
		if src+plen <= n && dst+plen <= n && src+plen <= dst {
			copy(out[dst:dst+plen], out[src:src+plen])
		}
	}
	// Avoid zero bytes (reserved as suffix-array sentinel).
	core.ForEachIdx(w, out, 0, func(_ int, b *byte) {
		if *b == 0 {
			*b = ' '
		}
	})
	return out
}
