package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bench"
)

// GraphReport renders the graph-kernel telemetry (docs/GRAPH.md) in two
// blocks. The first is the wall-clock table: every BenchmarkGraph* hot
// path before the batched-queue/direction-optimizing work
// (BENCH_graph_before.json, committed once) side by side with the
// current measurement (BENCH_graph.json, refreshed by `make
// bench-graph`); the speedup column is the acceptance headline (the
// issue gates bfs and sssp at >=1.5x). The second block runs sssp live
// in both queue disciplines and prints the MultiQueue operation
// counters: lock acquisitions per processed vertex must drop by about
// the batch size when the batched driver replaces item-at-a-time
// pops.
func GraphReport(w io.Writer, beforePath, afterPath string, scale bench.Scale, threads int) error {
	if beforePath == "" {
		beforePath = "BENCH_graph_before.json"
	}
	if afterPath == "" {
		afterPath = "BENCH_graph.json"
	}
	before, err := loadBenchJSON(beforePath)
	if err != nil {
		return err
	}
	after, err := loadBenchJSON(afterPath)
	if err != nil {
		return fmt.Errorf("%w (run `make bench-graph` to produce it)", err)
	}
	names := make([]string, 0, len(after))
	for name := range after {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "Graph-kernel wall clock: %s vs %s\n", beforePath, afterPath)
	fmt.Fprintf(w, "%-28s %14s %14s %9s\n", "benchmark", "ns/op (before)", "ns/op (after)", "speedup")
	for _, name := range names {
		newM := after[name]
		oldM, hasOld := before[name]
		oldNs, speedup := "-", "-"
		if hasOld {
			oldNs = fmt.Sprintf("%.0f", oldM["ns_op"])
			if na := newM["ns_op"]; na > 0 {
				speedup = fmt.Sprintf("%.2fx", oldM["ns_op"]/na)
			}
		}
		fmt.Fprintf(w, "%-28s %14s %14.0f %9s\n", name, oldNs, newM["ns_op"], speedup)
	}
	fmt.Fprintln(w, "(before = single-item MultiQueue kernels, pre-hybrid snapshot)")
	fmt.Fprintln(w)

	if err := xlGraphBlock(w, "BENCH_graph_xl.json"); err != nil {
		return err
	}

	single, batched, err := bench.GraphQueueTelemetry(scale, threads)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "MultiQueue discipline, sssp-rmat live at threads=%d:\n", threads)
	fmt.Fprintf(w, "%-22s %14s %14s\n", "", "single-item", "batched")
	row := func(label string, a, b uint64) {
		fmt.Fprintf(w, "%-22s %14d %14d\n", label, a, b)
	}
	row("lock acquisitions", single.LockAcquires, batched.LockAcquires)
	row("push operations", single.PushOps, batched.PushOps)
	row("pop operations", single.PopOps, batched.PopOps)
	row("empty pops", single.EmptyPops, batched.EmptyPops)
	row("pushed items", single.PushedItems, batched.PushedItems)
	row("popped items", single.PoppedItems, batched.PoppedItems)
	fmt.Fprintf(w, "%-22s %14.3f %14.3f\n", "locks per item", single.LocksPerItem(), batched.LocksPerItem())
	if b := batched.LocksPerItem(); b > 0 {
		fmt.Fprintf(w, "lock-traffic reduction: %.0fx fewer acquisitions per processed vertex\n",
			single.LocksPerItem()/b)
	}
	wasted := "-"
	if single.PushedItems > 0 {
		wasted = fmt.Sprintf("%+.1f%%", 100*(float64(batched.PushedItems)/float64(single.PushedItems)-1))
	}
	fmt.Fprintf(w, "queue traffic vs single-item discipline: %s pushed items %s\n",
		wasted, "(relaxation waste the batching trades for lock amortization)")
	return nil
}

// xlGraphBlock renders the beyond-LLC table from BENCH_graph_xl.json
// (`make bench-graph-xl`): every BenchmarkXLGraph* with its bytes/edge
// and edges/sec columns, then the compressed-vs-plain speedup and byte
// ratio per kernel pair — the compressed-CSR acceptance numbers
// (docs/GRAPH.md "Compressed CSR"). A missing export is not an error:
// the XL tier takes minutes to build, so the block just says how to
// produce it.
func xlGraphBlock(w io.Writer, path string) error {
	xl, err := loadBenchJSON(path)
	if err != nil {
		fmt.Fprintf(w, "Beyond-LLC tier: no %s (run `make bench-graph-xl` to produce it)\n\n", path)
		return nil
	}
	names := make([]string, 0, len(xl))
	for name := range xl {
		if strings.HasPrefix(name, "BenchmarkXLGraphDecode") {
			continue // the decode family gets its own table below
		}
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "Beyond-LLC graph kernels (ScaleLarge): %s\n", path)
	fmt.Fprintf(w, "%-36s %14s %12s %12s\n", "benchmark", "ns/op", "bytes/edge", "edges/sec")
	for _, name := range names {
		m := xl[name]
		eps := "-"
		if mteps, ok := m["MTEPS"]; ok {
			eps = fmt.Sprintf("%.1fM", mteps)
		}
		fmt.Fprintf(w, "%-36s %14.0f %12.2f %12s\n", name, m["ns_op"], m["bytes_edge"], eps)
	}
	for _, pair := range []struct{ kernel, input string }{
		{"BFS", "Rmat"}, {"SSSP", "Rmat"}, {"PR", "Rmat"}, {"TC", "Road"},
	} {
		plain, okP := xl["BenchmarkXLGraph"+pair.kernel+pair.input+"Plain"]
		comp, okC := xl["BenchmarkXLGraph"+pair.kernel+pair.input+"Compressed"]
		if !okP || !okC || comp["ns_op"] <= 0 || plain["bytes_edge"] <= 0 {
			continue
		}
		fmt.Fprintf(w, "%s %s: compressed %.2fx speedup at %.2fx bytes/edge vs plain\n",
			pair.kernel, strings.ToLower(pair.input),
			plain["ns_op"]/comp["ns_op"], comp["bytes_edge"]/plain["bytes_edge"])
	}
	xlDecodeBlock(w, xl)
	fmt.Fprintln(w)
	return nil
}

// xlDecodeBlock renders the decode-bandwidth table from the
// BenchmarkXLGraphDecode* family: single-thread whole-graph row
// streaming per codec generation (plain int32 CSR, v1 scalar varint,
// group-varint forward, group-varint transpose from the shared pool's
// second half), with the group-vs-v1 edges/ns speedup — the ≥2x
// acceptance line of the batched-decode work — printed underneath.
func xlDecodeBlock(w io.Writer, xl map[string]map[string]float64) {
	rows := []struct{ suffix, label string }{
		{"Plain", "plain CSR (no decode)"},
		{"V1", "v1 scalar varint"},
		{"Group", "group-varint forward"},
		{"GroupTranspose", "group-varint transpose"},
	}
	header := false
	for _, r := range rows {
		m, ok := xl["BenchmarkXLGraphDecodeRmat"+r.suffix]
		if !ok {
			continue
		}
		if !header {
			fmt.Fprintf(w, "Row-decode bandwidth, rmat (one thread, whole-graph stream):\n")
			fmt.Fprintf(w, "%-36s %10s %12s %12s\n", "representation", "GB/s", "edges/ns", "bytes/edge")
			header = true
		}
		fmt.Fprintf(w, "%-36s %10.2f %12.3f %12.2f\n", r.label, m["GB_s"], m["edges_ns"], m["enc_bytes_edge"])
	}
	v1, okV := xl["BenchmarkXLGraphDecodeRmatV1"]
	grp, okG := xl["BenchmarkXLGraphDecodeRmatGroup"]
	if okV && okG && v1["edges_ns"] > 0 {
		fmt.Fprintf(w, "group-varint decode speedup vs v1: %.2fx edges/ns\n", grp["edges_ns"]/v1["edges_ns"])
	}
}
