package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// MemReport renders the memory-telemetry table (docs/MEMORY.md): the
// steady-state allocs/op and B/op of every BenchmarkMem* hot path,
// before the arena conversion (BENCH_mem_before.json, committed once)
// side by side with the current measurement (BENCH_mem.json, refreshed
// by `make bench-mem`). The reduction column is the headline of the
// zero-allocation work: a converted kernel's steady state should sit
// within a few allocs of zero, and the primitives at exactly zero.
// Benchmarks added after the "before" snapshot (the *Into destination-
// passing forms, which had no pre-arena counterpart) show "-" in the
// before columns.
func MemReport(w io.Writer, beforePath, afterPath string) error {
	if beforePath == "" {
		beforePath = "BENCH_mem_before.json"
	}
	if afterPath == "" {
		afterPath = "BENCH_mem.json"
	}
	before, err := loadBenchJSON(beforePath)
	if err != nil {
		return err
	}
	after, err := loadBenchJSON(afterPath)
	if err != nil {
		return fmt.Errorf("%w (run `make bench-mem` to produce it)", err)
	}
	names := make([]string, 0, len(after))
	for name := range after {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "Steady-state allocation telemetry: %s vs %s\n", beforePath, afterPath)
	fmt.Fprintf(w, "%-32s %12s %12s %8s %14s %14s\n",
		"benchmark", "allocs/op", "allocs/op", "factor", "B/op", "B/op")
	fmt.Fprintf(w, "%-32s %12s %12s %8s %14s %14s\n",
		"", "(before)", "(after)", "", "(before)", "(after)")
	for _, name := range names {
		newM := after[name]
		oldM, hasOld := before[name]
		oldAllocs, oldBytes := "-", "-"
		factor := "-"
		if hasOld {
			oldAllocs = fmt.Sprintf("%.0f", oldM["allocs_op"])
			oldBytes = fmt.Sprintf("%.0f", oldM["B_op"])
			if na := newM["allocs_op"]; na > 0 {
				factor = fmt.Sprintf("%.1fx", oldM["allocs_op"]/na)
			} else if oldM["allocs_op"] > 0 {
				factor = "inf"
			} else {
				factor = "1.0x"
			}
		}
		fmt.Fprintf(w, "%-32s %12s %12.0f %8s %14s %14.0f\n",
			name, oldAllocs, newM["allocs_op"], factor, oldBytes, newM["B_op"])
	}
	fmt.Fprintln(w, "(before = pre-arena snapshot; factor = before/after allocs per round;")
	fmt.Fprintln(w, " \"-\" = benchmark added with the arena conversion, no pre-arena number)")
	return nil
}

// loadBenchJSON reads a cmd/benchjson export: benchmark name -> metric
// unit -> value.
func loadBenchJSON(path string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]float64{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return out, nil
}
