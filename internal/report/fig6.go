package report

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/seqgen"
)

// Fig6 reproduces the appendix microbenchmark (paper Listings 10-15,
// Fig 6): replace every element of a vector with the hash of its value,
// expressed five ways. The lines-of-code column counts the body of each
// Go implementation below, mirroring the paper's right axis.
//
// The goroutine-per-task variant is the analog of Listing 13's
// thread-per-task, which the paper reports as panicking at scale; Go
// goroutines are cheaper than OS threads, so instead of crashing it is
// merely catastrophically slow and memory-hungry — it therefore runs on
// a capped element count and reports the cap.
type Fig6Config struct {
	N       int // vector length (default 1<<21)
	TaskCap int // max elements for goroutine-per-task (default 1<<16)
	Threads int
	Reps    int
}

type fig6Row struct {
	name    string
	loc     int
	seconds float64
	note    string
}

func fig6Vector(n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i)
	}
	return v
}

// serialHash is Listing 11: the sequential loop. (LoC: 3)
func serialHash(v []uint64) {
	for i := range v {
		seqgen.HashTask(&v[i])
	}
}

// perTaskHash is Listing 13: one goroutine per element. (LoC: 8)
func perTaskHash(v []uint64) {
	var wg sync.WaitGroup
	wg.Add(len(v))
	for i := range v {
		go func(e *uint64) {
			defer wg.Done()
			seqgen.HashTask(e)
		}(&v[i])
	}
	wg.Wait()
}

// perCoreHash is Listing 14: one goroutine per core, even split. (LoC: 15)
func perCoreHash(v []uint64, nThreads int) {
	chunk := (len(v) + nThreads - 1) / nThreads
	var wg sync.WaitGroup
	for t := 0; t < nThreads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(v) {
			hi = len(v)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			for i := range part {
				seqgen.HashTask(&part[i])
			}
		}(v[lo:hi])
	}
	wg.Wait()
}

// jobQueueHash is Listing 15: a mutex-guarded queue of slices drained
// by worker goroutines. (LoC: 24)
func jobQueueHash(v []uint64, nThreads int) {
	const jobSize = 10000
	var mu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	for t := 0; t < nThreads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += jobSize
				mu.Unlock()
				if lo >= len(v) {
					return
				}
				hi := lo + jobSize
				if hi > len(v) {
					hi = len(v)
				}
				for i := lo; i < hi; i++ {
					seqgen.HashTask(&v[i])
				}
			}
		}()
	}
	wg.Wait()
}

// workStealHash is Listing 12's Rayon one-liner: the library's parallel
// iterator on the work-stealing pool. (LoC: 3)
func workStealHash(w *core.Worker, v []uint64) {
	core.ForEachIdx(w, v, 0, func(_ int, e *uint64) { seqgen.HashTask(e) })
}

func timeIt(reps int, f func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		s := time.Since(start).Seconds()
		if r == 0 || s < best {
			best = s
		}
	}
	return best
}

// Fig6 runs the five variants and renders run times plus LoC.
func Fig6(w io.Writer, cfg Fig6Config) {
	if cfg.N <= 0 {
		cfg.N = 1 << 21
	}
	if cfg.TaskCap <= 0 {
		cfg.TaskCap = 1 << 16
	}
	if cfg.Threads < 1 {
		cfg.Threads = 4
	}
	if cfg.Reps < 1 {
		cfg.Reps = 3
	}
	pool := core.NewPool(cfg.Threads)
	defer pool.Close()

	var rows []fig6Row
	v := fig6Vector(cfg.N)
	rows = append(rows, fig6Row{"serial (Listing 11)", 3,
		timeIt(cfg.Reps, func() { serialHash(v) }), ""})

	nTask := cfg.N
	note := ""
	if nTask > cfg.TaskCap {
		nTask = cfg.TaskCap
		note = fmt.Sprintf("capped at n=%d: goroutine-per-task explodes at scale (paper: panic)", nTask)
	}
	vt := fig6Vector(nTask)
	perTask := timeIt(cfg.Reps, func() { perTaskHash(vt) })
	if nTask < cfg.N {
		perTask *= float64(cfg.N) / float64(nTask) // extrapolate per-element cost
	}
	rows = append(rows, fig6Row{"goroutine per task (Listing 13)", 8, perTask, note})

	rows = append(rows, fig6Row{"goroutine per core (Listing 14)", 15,
		timeIt(cfg.Reps, func() { perCoreHash(v, cfg.Threads) }), ""})
	rows = append(rows, fig6Row{"mutex job queue (Listing 15)", 24,
		timeIt(cfg.Reps, func() { jobQueueHash(v, cfg.Threads) }), ""})
	rows = append(rows, fig6Row{"work stealing / core (Listing 12)", 3,
		timeIt(cfg.Reps, func() {
			pool.Do(func(wk *core.Worker) { workStealHash(wk, v) })
		}), ""})

	fmt.Fprintf(w, "Fig 6: hash microbenchmark, n=%d, %d threads (best of %d)\n", cfg.N, cfg.Threads, cfg.Reps)
	fmt.Fprintf(w, "%-36s %10s %6s  %s\n", "variant", "time(s)", "LoC", "notes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %10.4f %6d  %s\n", r.name, r.seconds, r.loc, r.note)
	}
	fmt.Fprintln(w, "(paper: Rayon fastest with fewest LoC; thread-per-task panics; serial slowest of the rest)")
}
