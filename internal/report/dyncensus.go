package report

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
)

// DynCensus addresses the paper's stated future work (Sec 7.2,
// footnote 4): "Future work can evaluate the contribution of irregular
// parallelism at run time." The static census (Fig 3) counts access
// sites; this one runs every benchmark with the library's per-pattern
// invocation counters and reports how often each pattern primitive
// actually executes, per benchmark and in aggregate.
//
// Invocation counts weight a whole parallel region as one use of its
// pattern (one ForEachIdx call = 1 Stride invocation), so they measure
// how often programmers *reach for* each expression dynamically — the
// run-time analog of the paper's programmer-experience framing — not
// per-element traffic.
func DynCensus(w io.Writer, scale bench.Scale, threads int) error {
	if threads < 1 {
		threads = 2
	}
	fmt.Fprintln(w, "Dynamic pattern census: run-time primitive invocations per benchmark")
	fmt.Fprintf(w, "%-12s", "bench")
	for _, p := range core.Patterns {
		fmt.Fprintf(w, " %8s", p)
	}
	fmt.Fprintf(w, " %8s\n", "irreg%")
	totals := map[core.Pattern]int64{}
	core.SetMode(core.ModeUnchecked)
	prev := core.EnableDynamicCensus(true)
	defer core.EnableDynamicCensus(prev)
	for _, spec := range bench.All() {
		input := spec.Inputs[0]
		inst := spec.Make(input, scale)
		core.ResetDynamicCounts()
		if _, err := bench.Measure(inst, bench.VariantLibrary, threads, 1); err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		counts := core.DynamicCounts()
		var all, irr int64
		fmt.Fprintf(w, "%-12s", spec.Name+"-"+input)
		for _, p := range core.Patterns {
			c := counts[p]
			totals[p] += c
			all += c
			if p.Irregular() {
				irr += c
			}
			fmt.Fprintf(w, " %8d", c)
		}
		pct := 0.0
		if all > 0 {
			pct = 100 * float64(irr) / float64(all)
		}
		fmt.Fprintf(w, " %7.1f%%\n", pct)
	}
	var all, irr int64
	fmt.Fprintf(w, "%-12s", "total")
	for _, p := range core.Patterns {
		all += totals[p]
		if p.Irregular() {
			irr += totals[p]
		}
		fmt.Fprintf(w, " %8d", totals[p])
	}
	fmt.Fprintf(w, " %7.1f%%\n", 100*float64(irr)/float64(all))
	fmt.Fprintln(w, "(static Fig 3 counts sites; this table counts run-time primitive invocations.")
	fmt.Fprintln(w, " AW helpers count per call, so AW-heavy rows weigh per element; substrate-internal")
	fmt.Fprintln(w, " synchronization — hash-table probes, union-find hooks — is censused statically only,")
	fmt.Fprintln(w, " so dedup/sf/hist rows undercount AW.)")
	core.ResetDynamicCounts()
	return nil
}
