// Package report regenerates every table and figure of the paper's
// evaluation from live runs of this reproduction, rendering them as
// ASCII tables (the benchmark harness the paper's Sec 7 describes).
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
)

// Table1 renders the benchmark × access-pattern checklist (paper
// Table 1) from the declared-site census.
func Table1(w io.Writer) {
	c := core.TakeCensus()
	fmt.Fprintln(w, "Table 1: Ported benchmarks and their parallel access patterns")
	fmt.Fprintf(w, "%-6s %-28s %-14s", "Abbrv", "Benchmark name", "Inputs")
	for _, p := range core.Patterns {
		fmt.Fprintf(w, " %-7s", p)
	}
	fmt.Fprintln(w)
	specs := bench.All()
	// Table 1 order in the paper: bw lrs sa dr mis mm sf msf sort dedup
	// hist isort bfs sssp. The analytics extension (ISSUE 10) appends
	// its four kernels after the paper roster: cc pr tc kcore.
	order := []string{"bw", "lrs", "sa", "dr", "mis", "mm", "sf", "msf",
		"sort", "dedup", "hist", "isort", "bfs", "sssp",
		"cc", "pr", "tc", "kcore"}
	byName := map[string]bench.Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	for _, name := range order {
		s, ok := byName[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-6s %-28s %-14s", s.Name, s.Long, strings.Join(s.Inputs, ","))
		pats := c.PerBench[s.Name]
		for _, p := range core.Patterns {
			mark := ""
			if pats[p] {
				mark = "x"
			}
			fmt.Fprintf(w, " %-7s", mark)
		}
		fmt.Fprintln(w)
	}
}

// Table2 renders the input-graph statistics (paper Table 2) from the
// generators at the given scale.
func Table2(w io.Writer, scale bench.Scale) {
	fmt.Fprintln(w, "Table 2: Input graphs and their characteristics")
	fmt.Fprintf(w, "%-8s %-12s %-12s %-8s\n", "Name", "|V|", "|E|", "|E|/|V|")
	core.Run(func(wk *core.Worker) {
		for _, name := range graph.GraphInputs {
			g := graph.LoadUndirected(wk, name, scale, 1)
			// Table 2 counts each undirected edge once; CSR stores both
			// directions.
			fmt.Fprintf(w, "%-8s %-12d %-12d %-8.1f\n", name, g.N, g.M()/2, float64(g.M())/float64(g.N)/2)
		}
	})
}

// Table3 renders the studied patterns and their safety levels (paper
// Table 3) from the library's static pattern metadata.
func Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Studied patterns and their safety levels")
	fmt.Fprintf(w, "%-7s %-28s %-34s %s\n", "Abbr", "Write pattern", "Parallel expression", "Fearlessness")
	for _, p := range core.Patterns {
		fear := p.Fear().String()
		fmt.Fprintf(w, "%-7s %-28s %-34s %s\n", p, p.WritePattern(), p.Expression(), fear)
	}
}

// Fig3 renders the distribution of access patterns across the suite
// (paper Fig 3) and the Sec 7.2 irregularity claims.
func Fig3(w io.Writer) {
	c := core.TakeCensus()
	fmt.Fprintln(w, "Fig 3: Distribution of access patterns in the suite (static site census)")
	if c.Total == 0 {
		fmt.Fprintln(w, "  (no sites declared)")
		return
	}
	for _, p := range core.Patterns {
		n := c.PerKind[p]
		pct := 100 * float64(n) / float64(c.Total)
		bar := strings.Repeat("#", int(pct/2))
		fmt.Fprintf(w, "  %-7s %3d sites %5.1f%% %s\n", p, n, pct, bar)
	}
	irregular := 100 * float64(c.Irregular) / float64(c.Total)
	fmt.Fprintf(w, "  irregular (SngInd+RngInd+AW): %.1f%% of accesses (paper: 29%%)\n", irregular)
	// Sec 7.2: every benchmark has irregular parallelism.
	all := true
	for _, b := range c.Benches {
		has := false
		for p, ok := range c.PerBench[b] {
			if ok && p.Irregular() {
				has = true
			}
		}
		if !has {
			all = false
			fmt.Fprintf(w, "  WARNING: %s has no irregular pattern\n", b)
		}
	}
	if all {
		fmt.Fprintf(w, "  all %d benchmarks contain irregular parallelism (paper Sec 7.2: same)\n", len(c.Benches))
	}
}
