package report

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
)

// Fig5Config controls the unsafe-replacement overhead experiments.
type Fig5Config struct {
	Scale   bench.Scale
	Threads int
	Reps    int
}

// Fig5a measures the cost of replacing unchecked SngInd with the
// checked interior-unsafe adapter (par_ind_iter_mut analog) on bw, lrs
// and sa — the three benchmarks the paper integrates it into. Values
// are normalized to the unchecked run (paper Fig 5a: negligible for bw,
// up to ~3x for lrs/sa).
func Fig5a(w io.Writer, cfg Fig5Config) error {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = 4
	}
	fmt.Fprintf(w, "Fig 5(a): overhead of dynamic offset checking for SngInd at %d threads\n", cfg.Threads)
	fmt.Fprintf(w, "%-8s %14s %14s %10s\n", "bench", "unchecked(s)", "checked(s)", "ratio")
	for _, name := range []string{"bw", "lrs", "sa"} {
		spec, err := bench.Find(name)
		if err != nil {
			return err
		}
		inst := spec.Make(spec.Inputs[0], cfg.Scale)
		core.SetMode(core.ModeUnchecked)
		un, err := bench.Measure(inst, bench.VariantLibrary, cfg.Threads, cfg.Reps)
		if err != nil {
			return fmt.Errorf("%s unchecked: %w", name, err)
		}
		core.SetMode(core.ModeChecked)
		ch, err := bench.Measure(inst, bench.VariantLibrary, cfg.Threads, cfg.Reps)
		if err != nil {
			return fmt.Errorf("%s checked: %w", name, err)
		}
		core.SetMode(core.ModeUnchecked)
		fmt.Fprintf(w, "%-8s %14.4f %14.4f %10.2f\n", name, un, ch, ch/un)
	}
	fmt.Fprintln(w, "(paper: bw ~1x; lrs up to 2.8x; sa ~2.5x)")
	return nil
}

// fig5bBenches lists the bench-input pairs of the paper's Fig 5b.
var fig5bBenches = []struct{ name, input string }{
	{"bw", "wiki"}, {"lrs", "wiki"}, {"sa", "wiki"},
	{"mis", "link"}, {"mis", "road"},
	{"mm", "rmat"}, {"mm", "road"},
	{"msf", "rmat"}, {"msf", "road"},
	{"sf", "link"}, {"sf", "road"},
	{"hist", "exponential"},
}

// Fig5b measures the cost of replacing unchecked code with
// synchronization (atomics for most benchmarks — nearly free — and
// per-bucket mutexes for hist's big structs — the paper's 4x case).
func Fig5b(w io.Writer, cfg Fig5Config) error {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = 4
	}
	fmt.Fprintf(w, "Fig 5(b): overhead of (unnecessary) synchronization at %d threads\n", cfg.Threads)
	fmt.Fprintf(w, "%-14s %14s %14s %10s\n", "bench", "unchecked(s)", "synced(s)", "ratio")
	for _, b := range fig5bBenches {
		spec, err := bench.Find(b.name)
		if err != nil {
			return err
		}
		inst := spec.Make(b.input, cfg.Scale)
		core.SetMode(core.ModeUnchecked)
		un, err := bench.Measure(inst, bench.VariantLibrary, cfg.Threads, cfg.Reps)
		if err != nil {
			return fmt.Errorf("%s unchecked: %w", b.name, err)
		}
		core.SetMode(core.ModeSynchronized)
		sy, err := bench.Measure(inst, bench.VariantLibrary, cfg.Threads, cfg.Reps)
		if err != nil {
			return fmt.Errorf("%s synchronized: %w", b.name, err)
		}
		core.SetMode(core.ModeUnchecked)
		fmt.Fprintf(w, "%-14s %14.4f %14.4f %10.2f\n", b.name+"-"+b.input, un, sy, sy/un)
	}
	fmt.Fprintln(w, "(paper: ~1x with relaxed atomics everywhere; hist 4x from Mutex on big structs)")
	return nil
}
