package report

import (
	"strings"
	"testing"
)

// TestFearReport runs the static-vs-runtime census comparison over the
// repository and requires full agreement (it returns an error on any
// disagreement or lint diagnostic).
func TestFearReport(t *testing.T) {
	var sb strings.Builder
	if err := FearReport(&sb, "../.."); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"static (source-derived) vs runtime",
		"censuses agree for every benchmark",
		"internal/bench",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fear report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NO") {
		t.Errorf("fear report shows a disagreement:\n%s", out)
	}
}
