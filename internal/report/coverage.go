package report

import (
	"fmt"
	"io"
)

// Sec 7.1's coverage claim: of the 22 parallel patterns in McCool,
// Reinders & Robison's "Structured Parallel Programming", RPB exercises
// 14. This artifact reproduces the inventory, mapping each present
// pattern to where it manifests in this codebase, and marking the
// paper's absent ones — two of which (pipeline, futures) this
// reproduction implements as extensions.

// PatternCoverage is one row of the Sec 7.1 inventory.
type PatternCoverage struct {
	Name    string
	Present bool   // present in RPB per the paper
	Where   string // where it manifests here
}

// McCoolPatterns lists the paper's Sec 7.1 inventory with this
// repository's realizations.
var McCoolPatterns = []PatternCoverage{
	{"fork-join", true, "sched.Worker.Join; every benchmark"},
	{"map", true, "core.ForEachIdx/Tabulate; Stride sites suite-wide"},
	{"stencil", true, "core.Stencil2D; geom mesh neighborhoods (dr)"},
	{"reduction", true, "core.Reduce/Sum; hist, mis win-checks"},
	{"scan", true, "core.ScanExclusive; radix, sort, isort, bw"},
	{"recurrence", true, "suffix prefix doubling (rank recurrences)"},
	{"pack", true, "core.PackIndex/Filter; frontier packs in mis/mm/msf"},
	{"geometric decomposition", true, "core.Chunks; blocked counting passes"},
	{"gather", true, "indirect reads: rank[sa[j]+k] in sa, edges in graphs"},
	{"scatter", true, "core.IndForEach*; isort/sa/bw scatters"},
	{"search", true, "bfs/sssp; sort's splitter binary search"},
	{"segmentation", true, "core.IndChunks/SegReduce; sort buckets"},
	{"category reduction", true, "hist bucket merge; dedup hash table"},
	{"workpile", true, "mq.Process worker loops (bfs, sssp)"},
	{"pipeline", false, "extension: core.Pipeline (extras.go)"},
	{"superscalar sequences", false, "not implemented"},
	{"futures", false, "extension: core.Async/Future (extras.go)"},
	{"speculative selection", false, "not implemented"},
	{"expand", false, "not implemented"},
	{"term graph rewriting", false, "not implemented"},
	{"branch and bound", false, "not implemented"},
	{"transactions", false, "not implemented"},
}

// Coverage renders the Sec 7.1 pattern inventory.
func Coverage(w io.Writer) {
	present, absent := 0, 0
	for _, p := range McCoolPatterns {
		if p.Present {
			present++
		} else {
			absent++
		}
	}
	fmt.Fprintf(w, "Sec 7.1: coverage of McCool et al.'s parallel patterns (%d of %d present; paper: 14 of 22)\n",
		present, present+absent)
	fmt.Fprintf(w, "%-24s %-8s %s\n", "pattern", "in RPB", "realization here")
	for _, p := range McCoolPatterns {
		mark := "-"
		if p.Present {
			mark = "yes"
		}
		fmt.Fprintf(w, "%-24s %-8s %s\n", p.Name, mark, p.Where)
	}
}
