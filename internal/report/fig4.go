package report

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
)

// Fig4Config controls the execution-time comparisons.
type Fig4Config struct {
	Scale   bench.Scale
	Threads int // the paper's 24-thread point; clamp to the host
	Reps    int
	Benches []string // empty = all
}

// fig4Row is one bench-input measurement pair.
type fig4Row struct {
	key            string
	direct, lib    float64 // seconds at Threads
	direct1, lib1  float64 // seconds at 1 thread
	scaleD, scaleL float64 // speedup of Threads over 1 thread
}

func (c Fig4Config) selected() []bench.Spec {
	all := bench.All()
	if len(c.Benches) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, b := range c.Benches {
		want[b] = true
	}
	var out []bench.Spec
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// Fig4 runs the library-vs-direct comparison at 1 thread (Fig 4a) and
// at Threads threads with scaling dots (Fig 4b), printing normalized
// execution times the way the paper reports them (direct baseline = 1.0,
// playing the role of C++ PBBS).
func Fig4(w io.Writer, cfg Fig4Config) error {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = 4
	}
	core.SetMode(core.ModeUnchecked) // the paper's Fig 4 uses unsafe SngInd/AW
	var rows []fig4Row
	for _, spec := range cfg.selected() {
		for _, input := range spec.Inputs {
			inst := spec.Make(input, cfg.Scale)
			r := fig4Row{key: spec.Name + "-" + input}
			var err error
			if r.direct1, err = bench.Measure(inst, bench.VariantDirect, 1, cfg.Reps); err != nil {
				return fmt.Errorf("%s direct@1: %w", r.key, err)
			}
			if r.lib1, err = bench.Measure(inst, bench.VariantLibrary, 1, cfg.Reps); err != nil {
				return fmt.Errorf("%s rpb@1: %w", r.key, err)
			}
			if r.direct, err = bench.Measure(inst, bench.VariantDirect, cfg.Threads, cfg.Reps); err != nil {
				return fmt.Errorf("%s direct@%d: %w", r.key, cfg.Threads, err)
			}
			if r.lib, err = bench.Measure(inst, bench.VariantLibrary, cfg.Threads, cfg.Reps); err != nil {
				return fmt.Errorf("%s rpb@%d: %w", r.key, cfg.Threads, err)
			}
			r.scaleD = r.direct1 / r.direct
			r.scaleL = r.lib1 / r.lib
			rows = append(rows, r)
		}
	}

	fmt.Fprintf(w, "Fig 4(a): execution time at 1 thread, normalized to the direct baseline\n")
	fmt.Fprintf(w, "%-12s %12s %12s %10s\n", "bench", "direct(s)", "rpb(s)", "rpb/direct")
	var ratios1 []float64
	for _, r := range rows {
		ratio := r.lib1 / r.direct1
		ratios1 = append(ratios1, ratio)
		fmt.Fprintf(w, "%-12s %12.4f %12.4f %10.2f\n", r.key, r.direct1, r.lib1, ratio)
	}
	fmt.Fprintf(w, "%-12s %37s %2.2f   (paper: RPB 1.09x faster, i.e. 0.92)\n", "gmean", "", bench.GeoMean(ratios1))

	fmt.Fprintf(w, "\nFig 4(b): execution time at %d threads, normalized; scaling vs own 1-thread\n", cfg.Threads)
	fmt.Fprintf(w, "%-12s %12s %12s %10s %9s %9s\n", "bench", "direct(s)", "rpb(s)", "rpb/direct", "scale-dir", "scale-rpb")
	var ratiosN []float64
	for _, r := range rows {
		ratio := r.lib / r.direct
		ratiosN = append(ratiosN, ratio)
		fmt.Fprintf(w, "%-12s %12.4f %12.4f %10.2f %9.2f %9.2f\n",
			r.key, r.direct, r.lib, ratio, r.scaleD, r.scaleL)
	}
	fmt.Fprintf(w, "%-12s %37s %2.2f   (paper: RPB 1.44x slower at 24c)\n", "gmean", "", bench.GeoMean(ratiosN))
	return nil
}
