package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/lint"
)

// LifetimesReport renders the arena-lifetime certification summary
// (rpbreport -what lifetimes): per-package, how every arena checkout's
// lifetime was discharged — released-in-scope (a matching Release
// proves the Rust-style scoped borrow), region-confined (the slice
// never leaves the parallel region body), worker-confined (it stays
// with one worker for the worker's lifetime) — and which checkouts the
// analysis refused, split into audited (//lint:scared) and
// unexplained. This is the borrow-checker leg of the lint suite: the
// other passes prove writes are exclusive; this one proves the memory
// they target is still owned when it is touched.
func LifetimesReport(w io.Writer) error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	rep, err := lint.Lifetimes(lint.Config{Root: root})
	if err != nil {
		return err
	}

	type row struct {
		released, region, worker, audited, refused int
	}
	rows := map[string]*row{}
	pkgOf := func(file string) string {
		if i := strings.LastIndex(file, "/"); i >= 0 {
			return file[:i]
		}
		return file
	}
	for _, s := range rep.Sites {
		r := rows[pkgOf(s.File)]
		if r == nil {
			r = &row{}
			rows[pkgOf(s.File)] = r
		}
		switch s.Class {
		case lint.LifeReleased:
			r.released++
		case lint.LifeRegionConfined:
			r.region++
		case lint.LifeWorkerConfined:
			r.worker++
		case lint.LifeRefused:
			if s.Marker {
				r.audited++
			} else {
				r.refused++
			}
		}
	}
	var totAudited, totRefused int
	for _, r := range rows {
		totAudited += r.audited
		totRefused += r.refused
	}
	pkgs := make([]string, 0, len(rows))
	for p := range rows {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	fmt.Fprintf(w, "Arena-lifetime certification: every checkout's ownership proof\n")
	fmt.Fprintf(w, "(%d regions, %d marks; released = scoped LIFO borrow, region/worker = confinement proof)\n",
		rep.Regions, rep.Marks)
	fmt.Fprintf(w, "%-28s %9s %7s %7s %8s %8s\n",
		"package", "released", "region", "worker", "audited", "refused")
	for _, p := range pkgs {
		r := rows[p]
		fmt.Fprintf(w, "%-28s %9d %7d %7d %8d %8d\n",
			p, r.released, r.region, r.worker, r.audited, r.refused)
	}
	fmt.Fprintf(w, "%-28s %9d %7d %7d %8d %8d\n", "total",
		rep.Released, rep.RegionConfined, rep.WorkerConfined, totAudited, totRefused)
	if rep.Checkouts > 0 {
		proved := rep.Released + rep.RegionConfined + rep.WorkerConfined
		fmt.Fprintf(w, "\n%d/%d checkouts proved confined, %d refused (%d unexplained in enforced packages)\n",
			proved, rep.Checkouts, rep.Refused, rep.Unexplained)
	}

	var refusals []lint.LifeSite
	for _, s := range rep.Sites {
		if s.Class == lint.LifeRefused {
			refusals = append(refusals, s)
		}
	}
	if len(refusals) > 0 {
		fmt.Fprintf(w, "\nRefused checkouts (each needs a //lint:scared audit or a redesign):\n")
		for _, s := range refusals {
			mark := " "
			if s.Marker {
				mark = "A"
			}
			fmt.Fprintf(w, "  [%s] %s:%d %s %s in %s: %s\n", mark, s.File, s.Line, s.Origin, s.Expr, s.Func, s.Reason)
		}
		fmt.Fprintln(w, "  ([A] = audited with //lint:scared)")
	}
	return nil
}
