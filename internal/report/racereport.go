package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/lint"
)

// RacesReport renders the parallel-write certification summary
// (rpbreport -what races): per-package, how every shared write inside
// a parallel region was discharged — worker-local, atomic,
// lock-guarded, or index-disjoint — and which writes the analysis
// refused to certify, split into audited (//lint:scared) and
// unexplained. The classes map onto the paper's fear spectrum:
// worker-local and index-disjoint writes are Fearless (exclusive
// access proved), atomic and lock-guarded writes are Scared-but-safe
// (synchronization pays for aliasing), and refusals are where a Rust
// port would need unsafe or a redesign.
func RacesReport(w io.Writer) error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	rep, err := lint.Races(lint.Config{Root: root})
	if err != nil {
		return err
	}

	type row struct {
		local, atomic, locked, index, audited, refused int
	}
	rows := map[string]*row{}
	pkgOf := func(file string) string {
		if i := strings.LastIndex(file, "/"); i >= 0 {
			return file[:i]
		}
		return file
	}
	for _, s := range rep.Sites {
		r := rows[pkgOf(s.File)]
		if r == nil {
			r = &row{}
			rows[pkgOf(s.File)] = r
		}
		switch s.Class {
		case lint.RaceWorkerLocal:
			r.local++
		case lint.RaceAtomic:
			r.atomic++
		case lint.RaceLockGuarded:
			r.locked++
		case lint.RaceIndexDisjoint:
			r.index++
		case lint.RaceRefused:
			if s.Marker {
				r.audited++
			} else {
				r.refused++
			}
		}
	}
	var totAudited, totRefused int
	for _, r := range rows {
		totAudited += r.audited
		totRefused += r.refused
	}
	pkgs := make([]string, 0, len(rows))
	for p := range rows {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	fmt.Fprintf(w, "Parallel-write certification: every shared write in a parallel region\n")
	fmt.Fprintf(w, "(%d regions; fearless = worker-local + index-disjoint, synchronized = atomic + lock-guarded)\n",
		rep.Regions)
	fmt.Fprintf(w, "%-28s %7s %7s %7s %7s %8s %8s\n",
		"package", "local", "atomic", "locked", "index", "audited", "refused")
	for _, p := range pkgs {
		r := rows[p]
		fmt.Fprintf(w, "%-28s %7d %7d %7d %7d %8d %8d\n",
			p, r.local, r.atomic, r.locked, r.index, r.audited, r.refused)
	}
	fearless := rep.WorkerLocal + rep.IndexDisjoint
	synced := rep.Atomic + rep.LockGuarded
	total := fearless + synced + rep.Refused
	fmt.Fprintf(w, "%-28s %7d %7d %7d %7d %8d %8d\n", "total",
		rep.WorkerLocal, rep.Atomic, rep.LockGuarded, rep.IndexDisjoint,
		totAudited, totRefused)
	if total > 0 {
		fmt.Fprintf(w, "\n%d/%d writes proved exclusive (fearless), %d synchronized, %d refused (%d unexplained in enforced packages)\n",
			fearless, total, synced, rep.Refused, rep.Unexplained)
	}

	var refusals []lint.RaceSite
	for _, s := range rep.Sites {
		if s.Class == lint.RaceRefused {
			refusals = append(refusals, s)
		}
	}
	if len(refusals) > 0 {
		fmt.Fprintf(w, "\nRefused writes (each needs a //lint:scared audit or a redesign):\n")
		for _, s := range refusals {
			mark := " "
			if s.Marker {
				mark = "A"
			}
			fmt.Fprintf(w, "  [%s] %s:%d %s in %s\n", mark, s.File, s.Line, s.Target, s.Region)
		}
		fmt.Fprintln(w, "  ([A] = audited with //lint:scared)")
	}
	return nil
}
