package report

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lint"
)

// Certs renders the certification report (rpbreport -what certs). The
// first table counts, per bench, the irregular call sites a current
// certificate covers — certified sites run unchecked under proof,
// elidable-check sites pay a dynamic check the proof makes redundant —
// against the sites still relying on run-time validation or a
// DeclareSite audit. The second table measures what elision buys: for
// every bench with a certified site, the checked-mode vs unchecked-mode
// wall time, i.e. the Fig 5 check cost a certificate removes without
// giving up the safety argument.
func Certs(w io.Writer, cfg Fig5Config) error {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = 4
	}
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	rep, err := lint.Certify(lint.Config{Root: root})
	if err != nil {
		return err
	}

	type row struct{ certified, elidable, dynamic int }
	rows := map[string]*row{}
	for _, s := range rep.Sites {
		for _, b := range s.Benches {
			r := rows[b]
			if r == nil {
				r = &row{}
				rows[b] = r
			}
			switch s.Status {
			case lint.CertCertified:
				r.certified++
			case lint.CertElidable:
				r.elidable++
			default:
				r.dynamic++
			}
		}
	}
	benches := make([]string, 0, len(rows))
	for b := range rows {
		benches = append(benches, b)
	}
	sort.Strings(benches)

	fmt.Fprintf(w, "Certification: statically proved vs dynamically checked irregular sites\n")
	fmt.Fprintf(w, "(%d certified, %d elidable-check, %d refused module-wide; see lint-certs.json)\n",
		rep.Certified, rep.Elidable, rep.Refused)
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "bench", "certified", "elidable", "dynamic")
	for _, b := range benches {
		r := rows[b]
		fmt.Fprintf(w, "%-8s %10d %10d %10d\n", b, r.certified, r.elidable, r.dynamic)
	}

	fmt.Fprintf(w, "\nCheck cost elided by certificates at %d threads (cf. Fig 5a)\n", cfg.Threads)
	fmt.Fprintf(w, "%-8s %14s %14s %10s\n", "bench", "checked(s)", "certified(s)", "ratio")
	for _, name := range benches {
		if rows[name].certified == 0 {
			continue
		}
		spec, err := bench.Find(name)
		if err != nil {
			return err
		}
		inst := spec.Make(spec.Inputs[0], cfg.Scale)
		core.SetMode(core.ModeChecked)
		ch, err := bench.Measure(inst, bench.VariantLibrary, cfg.Threads, cfg.Reps)
		if err != nil {
			core.SetMode(core.ModeUnchecked)
			return fmt.Errorf("%s checked: %w", name, err)
		}
		core.SetMode(core.ModeUnchecked)
		un, err := bench.Measure(inst, bench.VariantLibrary, cfg.Threads, cfg.Reps)
		if err != nil {
			return fmt.Errorf("%s certified: %w", name, err)
		}
		fmt.Fprintf(w, "%-8s %14.4f %14.4f %10.2f\n", name, ch, un, ch/un)
	}
	fmt.Fprintln(w, "(certified mode = unchecked under certificate: same code the proof covers)")
	return nil
}
