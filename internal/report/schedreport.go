package report

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
)

// SchedReport characterizes the work-stealing runtime under the suite
// itself: it runs a representative benchmark at several worker counts
// and reports per-pool task counts, steal ratios, and parks — the
// observable side of the paper's Sec 7.3 discussion of runtime
// management (Rayon vs Cilk) that wall-clock numbers alone cannot
// separate from language effects.
func SchedReport(w io.Writer, scale bench.Scale, benchName string, workerCounts []int) error {
	if benchName == "" {
		benchName = "sort"
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	spec, err := bench.Find(benchName)
	if err != nil {
		return err
	}
	core.SetMode(core.ModeUnchecked)
	fmt.Fprintf(w, "Scheduler characterization on %s-%s\n", spec.Name, spec.Inputs[0])
	fmt.Fprintf(w, "%-8s %10s %10s %10s %12s\n", "workers", "executed", "stolen", "parked", "steal-ratio")
	for _, n := range workerCounts {
		inst := spec.Make(spec.Inputs[0], scale)
		pool := core.NewPool(n)
		pool.Do(func(wk *core.Worker) { inst.RunLibrary(wk) })
		if inst.Verify != nil {
			if err := inst.Verify(); err != nil {
				pool.Close()
				return fmt.Errorf("workers=%d: %w", n, err)
			}
		}
		stats := pool.Stats()
		pool.Close()
		var executed, stolen, parked int64
		for _, s := range stats {
			executed += s.Executed
			stolen += s.Stolen
			parked += s.Parked
		}
		ratio := 0.0
		if executed > 0 {
			ratio = float64(stolen) / float64(executed)
		}
		fmt.Fprintf(w, "%-8d %10d %10d %10d %11.1f%%\n", n, executed, stolen, parked, 100*ratio)
	}
	fmt.Fprintln(w, "(steal ratio = share of executed tasks obtained by stealing; rises with workers)")
	return nil
}
