package report

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
)

// SchedReport characterizes the work-stealing runtime under the suite
// itself: it runs a representative benchmark at several worker counts
// and reports per-pool task counts, steal ratios, lazy-split and
// wake-skip telemetry, and parks — the observable side of the paper's
// Sec 7.3 discussion of runtime management (Rayon vs Cilk) that
// wall-clock numbers alone cannot separate from language effects.
//
// The splits column is the number of subrange tasks the demand-driven
// splitter chose to create; with eager splitting it would be fixed at
// ~n/grain per loop. splits/stolen is the "tasks created vs. tasks
// stolen" ratio the lazy splitter optimizes toward 1: every task it
// creates exists because someone signalled demand for it. wake-skips
// counts spawns that bypassed the pool mutex because no worker was
// parked — the contention-free wakeup fast path.
func SchedReport(w io.Writer, scale bench.Scale, benchName string, workerCounts []int) error {
	if benchName == "" {
		benchName = "sort"
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	spec, err := bench.Find(benchName)
	if err != nil {
		return err
	}
	core.SetMode(core.ModeUnchecked)
	fmt.Fprintf(w, "Scheduler characterization on %s-%s\n", spec.Name, spec.Inputs[0])
	fmt.Fprintf(w, "%-8s %10s %8s %8s %8s %10s %9s %8s %12s\n",
		"workers", "executed", "stolen", "splits", "parked", "wake-skips", "overflows", "steal%", "splits/stolen")
	for _, n := range workerCounts {
		inst := spec.Make(spec.Inputs[0], scale)
		pool := core.NewPool(n)
		pool.Do(func(wk *core.Worker) { inst.RunLibrary(wk) })
		if inst.Verify != nil {
			if err := inst.Verify(); err != nil {
				pool.Close()
				return fmt.Errorf("workers=%d: %w", n, err)
			}
		}
		stats := pool.Stats()
		pool.Close()
		var executed, stolen, parked, splits, wakeSkips, overflows int64
		for _, s := range stats {
			executed += s.Executed
			stolen += s.Stolen
			parked += s.Parked
			splits += s.SplitsSpawned
			wakeSkips += s.WakeSkips
			overflows += s.Overflows
		}
		stealRatio := 0.0
		if executed > 0 {
			stealRatio = float64(stolen) / float64(executed)
		}
		createdVsStolen := "-"
		if stolen > 0 {
			createdVsStolen = fmt.Sprintf("%.2f", float64(splits)/float64(stolen))
		}
		fmt.Fprintf(w, "%-8d %10d %8d %8d %8d %10d %9d %7.1f%% %12s\n",
			n, executed, stolen, splits, parked, wakeSkips, overflows, 100*stealRatio, createdVsStolen)
	}
	fmt.Fprintln(w, "(steal% = share of executed tasks obtained by stealing; splits = lazy-split")
	fmt.Fprintln(w, " tasks created on demand; splits/stolen near 1 means work was created only")
	fmt.Fprintln(w, " when somebody stole it; wake-skips = spawns that skipped the pool mutex)")
	return nil
}
