package report

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

func TestTable1ContainsAllBenchmarks(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	out := sb.String()
	for _, name := range []string{"bw", "lrs", "sa", "dr", "mis", "mm", "sf",
		"msf", "sort", "dedup", "hist", "isort", "bfs", "sssp",
		"cc", "pr", "tc", "kcore"} {
		if !strings.Contains(out, name+" ") && !strings.Contains(out, "\n"+name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "SngInd") || !strings.Contains(out, "AW") {
		t.Error("Table 1 missing pattern columns")
	}
}

func TestTable2RendersThreeGraphs(t *testing.T) {
	var sb strings.Builder
	Table2(&sb, bench.ScaleTest)
	out := sb.String()
	for _, g := range []string{"link", "rmat", "road"} {
		if !strings.Contains(out, g) {
			t.Errorf("Table 2 missing %s:\n%s", g, out)
		}
	}
}

func TestTable3RendersFearSpectrum(t *testing.T) {
	var sb strings.Builder
	Table3(&sb)
	out := sb.String()
	for _, f := range []string{"Fearless", "Comfortable", "Scared"} {
		if !strings.Contains(out, f) {
			t.Errorf("Table 3 missing %s", f)
		}
	}
	if !strings.Contains(out, "IndForEach") {
		t.Error("Table 3 missing library expression names")
	}
}

func TestFig3ReportsIrregularShare(t *testing.T) {
	var sb strings.Builder
	Fig3(&sb)
	out := sb.String()
	if !strings.Contains(out, "irregular") {
		t.Errorf("Fig 3 missing irregular summary:\n%s", out)
	}
	if !strings.Contains(out, "all 18 benchmarks contain irregular parallelism") {
		t.Errorf("Fig 3 missing Sec 7.2 claim:\n%s", out)
	}
}

func TestFig4RunsOnTinyInputs(t *testing.T) {
	var sb strings.Builder
	err := Fig4(&sb, Fig4Config{
		Scale:   bench.ScaleTest,
		Threads: 2,
		Reps:    1,
		Benches: []string{"hist", "isort"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig 4(a)") || !strings.Contains(out, "Fig 4(b)") {
		t.Errorf("Fig 4 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "hist-exponential") {
		t.Errorf("Fig 4 missing bench rows:\n%s", out)
	}
	if !strings.Contains(out, "gmean") {
		t.Error("Fig 4 missing gmean")
	}
}

func TestFig5aRuns(t *testing.T) {
	var sb strings.Builder
	if err := Fig5a(&sb, Fig5Config{Scale: bench.ScaleTest, Threads: 2, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, b := range []string{"bw", "lrs", "sa"} {
		if !strings.Contains(out, b) {
			t.Errorf("Fig 5a missing %s:\n%s", b, out)
		}
	}
}

func TestFig5bRuns(t *testing.T) {
	var sb strings.Builder
	if err := Fig5b(&sb, Fig5Config{Scale: bench.ScaleTest, Threads: 2, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hist-exponential") {
		t.Errorf("Fig 5b missing hist:\n%s", sb.String())
	}
}

func TestFig6Runs(t *testing.T) {
	var sb strings.Builder
	Fig6(&sb, Fig6Config{N: 1 << 14, TaskCap: 1 << 12, Threads: 2, Reps: 1})
	out := sb.String()
	for _, v := range []string{"serial", "goroutine per task", "goroutine per core",
		"mutex job queue", "work stealing"} {
		if !strings.Contains(out, v) {
			t.Errorf("Fig 6 missing variant %q:\n%s", v, out)
		}
	}
	if !strings.Contains(out, "capped") {
		t.Errorf("Fig 6 should note the per-task cap:\n%s", out)
	}
}

func TestFig6Kernels(t *testing.T) {
	// All five variants must compute identical results.
	ref := fig6Vector(1000)
	serialHash(ref)
	check := func(name string, got []uint64) {
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s: element %d = %d, want %d", name, i, got[i], ref[i])
			}
		}
	}
	v := fig6Vector(1000)
	perTaskHash(v)
	check("perTask", v)
	v = fig6Vector(1000)
	perCoreHash(v, 3)
	check("perCore", v)
	v = fig6Vector(1000)
	jobQueueHash(v, 3)
	check("jobQueue", v)
	v = fig6Vector(1000)
	p := poolForTest()
	defer p.Close()
	p.Do(func(w *workerAlias) { workStealHash(w, v) })
	check("workSteal", v)
}

// aliases so the kernel test reads naturally without extra imports.
type workerAlias = core.Worker

func poolForTest() *core.Pool { return core.NewPool(2) }

func TestDynCensusRuns(t *testing.T) {
	var sb strings.Builder
	if err := DynCensus(&sb, bench.ScaleTest, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "bfs-link") || !strings.Contains(out, "total") {
		t.Errorf("dyncensus incomplete:\n%s", out)
	}
	// bfs is pure AW at run time: its row must have nonzero AW and
	// nonzero irregular share.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "bfs-link") {
			if strings.Contains(line, " 0.0%") {
				t.Errorf("bfs should be heavily irregular: %s", line)
			}
		}
	}
}

func TestSchedReportRuns(t *testing.T) {
	var sb strings.Builder
	if err := SchedReport(&sb, bench.ScaleTest, "hist", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "steal%") || !strings.Contains(out, "hist") ||
		!strings.Contains(out, "splits/stolen") || !strings.Contains(out, "wake-skips") {
		t.Errorf("sched report incomplete:\n%s", out)
	}
}

func TestSchedReportUnknownBench(t *testing.T) {
	var sb strings.Builder
	if err := SchedReport(&sb, bench.ScaleTest, "nope", nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// Golden tests: Table 1 and Table 3 are deterministic artifacts; their
// rendered form is pinned so accidental census or metadata drift fails
// loudly. Regenerate with:
//
//	go run ./cmd/rpbreport -what table1 > internal/report/testdata/table1.golden
//	go run ./cmd/rpbreport -what table3 > internal/report/testdata/table3.golden
func TestGoldenTables(t *testing.T) {
	for name, render := range map[string]func(io.Writer){
		"table1": func(w io.Writer) { Table1(w) },
		"table3": func(w io.Writer) { Table3(w) },
	} {
		var sb strings.Builder
		render(&sb)
		want, err := os.ReadFile("testdata/" + name + ".golden")
		if err != nil {
			t.Fatal(err)
		}
		got := strings.TrimRight(sb.String(), "\n")
		if got != strings.TrimRight(string(want), "\n") {
			t.Errorf("%s drifted from golden file;\n got:\n%s\nwant:\n%s", name, got, want)
		}
	}
}

func TestCoverageInventoryMatchesPaper(t *testing.T) {
	var sb strings.Builder
	Coverage(&sb)
	out := sb.String()
	if !strings.Contains(out, "14 of 22") {
		t.Errorf("coverage counts drifted from the paper's 14/22:\n%s", out)
	}
	present := 0
	for _, p := range McCoolPatterns {
		if p.Present {
			present++
		}
		if p.Where == "" {
			t.Errorf("pattern %q missing realization note", p.Name)
		}
	}
	if present != 14 || len(McCoolPatterns) != 22 {
		t.Fatalf("inventory has %d/%d, want 14/22", present, len(McCoolPatterns))
	}
}
