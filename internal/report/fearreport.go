package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lint"
)

// FearReport compares the two censuses the suite keeps: the static one
// rpblint re-derives from source, and the runtime DeclareSite registry
// the benchmarks populate at init. The paper self-reports its Table 1 /
// Fig 3 pattern counts; this table is the audit — if the analyzer and
// the registry disagree about any benchmark's pattern set, the census
// cannot be trusted, and the disagreement is printed per bench.
//
// root is the module root to analyze; empty means walk up from the
// working directory to the nearest go.mod.
func FearReport(w io.Writer, root string) error {
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			return err
		}
	}
	rep, err := lint.Run(lint.Config{Root: root})
	if err != nil {
		return err
	}
	static := rep.Census.ToCoreCensus()
	runtime := core.TakeCensus()

	fmt.Fprintln(w, "Fear report: static (source-derived) vs runtime (DeclareSite) census")
	fmt.Fprintf(w, "%-8s %-28s %-28s %s\n", "bench", "static patterns", "runtime patterns", "agree")
	benches := unionSorted(static.Benches, runtime.Benches)
	disagreements := 0
	for _, b := range benches {
		s := patternSet(static.PerBench[b])
		r := patternSet(runtime.PerBench[b])
		agree := "yes"
		if s != r {
			agree = "NO"
			disagreements++
		}
		fmt.Fprintf(w, "%-8s %-28s %-28s %s\n", b, s, r, agree)
	}
	fmt.Fprintf(w, "\n%-8s %8s %8s\n", "pattern", "static", "runtime")
	for _, p := range core.Patterns {
		fmt.Fprintf(w, "%-8s %8d %8d\n", p, static.PerKind[p], runtime.PerKind[p])
	}
	fmt.Fprintf(w, "%-8s %8d %8d   (irregular: %d static, %d runtime)\n",
		"total", static.Total, runtime.Total, static.Irregular, runtime.Irregular)

	if conflicts := core.SiteConflicts(); len(conflicts) > 0 {
		fmt.Fprintf(w, "\n%d conflicting re-declarations:\n", len(conflicts))
		for _, c := range conflicts {
			fmt.Fprintf(w, "  (%s, %q): first %s, re-declared %s\n", c.Bench, c.Label, c.First, c.Redeclared)
		}
	}

	fmt.Fprintln(w, "\nScared-construct containment (per package):")
	fmt.Fprintf(w, "%-22s %-10s %9s %7s %5s %4s %7s %7s\n",
		"package", "role", "unchecked", "atomics", "sync", "go", "helpers", "engines")
	for _, p := range rep.Packages {
		if p.Scared() == 0 {
			continue
		}
		fmt.Fprintf(w, "%-22s %-10s %9d %7d %5d %4d %7d %7d\n",
			p.Path, p.Role, p.Unchecked, p.Atomics, p.SyncDecls, p.GoStmts, p.AWHelpers, p.Engines)
	}

	if len(rep.Diags) > 0 {
		fmt.Fprintf(w, "\n%d lint diagnostics:\n", len(rep.Diags))
		for _, d := range rep.Diags {
			fmt.Fprintln(w, " ", d)
		}
	}
	switch {
	case disagreements > 0:
		return fmt.Errorf("fear report: static and runtime censuses disagree on %d benchmark(s)", disagreements)
	case len(rep.Diags) > 0:
		return fmt.Errorf("fear report: %d lint diagnostics", len(rep.Diags))
	}
	fmt.Fprintln(w, "\nstatic and runtime censuses agree for every benchmark; no lint diagnostics.")
	return nil
}

// patternSet renders a bench's pattern set in Table 1 column order.
func patternSet(m map[core.Pattern]bool) string {
	if len(m) == 0 {
		return "-"
	}
	var parts []string
	for _, p := range core.Patterns {
		if m[p] {
			parts = append(parts, p.String())
		}
	}
	return strings.Join(parts, ",")
}

func unionSorted(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string(nil), a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so rpbreport works from any subdirectory.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
