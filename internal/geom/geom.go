// Package geom is the computational-geometry substrate under the dr
// (Delaunay refinement) benchmark: planar predicates, a triangle mesh
// with adjacency, incremental Delaunay triangulation (Bowyer–Watson
// with walking point location), and triangle quality measures.
//
// Predicates use double-precision determinants with a small relative
// epsilon — adequate for the synthetic (hash-generated, non-adversarial)
// Kuzmin inputs this reproduction evaluates on, where exact-arithmetic
// degeneracies do not arise.
package geom

import (
	"math"

	"repro/internal/seqgen"
)

// Point re-exports the generator's planar point type.
type Point = seqgen.Point

// Orient2D returns a positive value when c lies to the left of the
// directed line a->b, negative to the right, and (near) zero when the
// points are (near) collinear.
func Orient2D(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// InCircle returns a positive value when d lies strictly inside the
// circumcircle of the counterclockwise triangle (a, b, c).
func InCircle(a, b, c, d Point) float64 {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y
	ad := adx*adx + ady*ady
	bd := bdx*bdx + bdy*bdy
	cd := cdx*cdx + cdy*cdy
	return adx*(bdy*cd-bd*cdy) - ady*(bdx*cd-bd*cdx) + ad*(bdx*cdy-bdy*cdx)
}

// Circumcenter returns the circumcenter of triangle (a, b, c). The
// triangle must not be degenerate.
func Circumcenter(a, b, c Point) Point {
	dx1, dy1 := b.X-a.X, b.Y-a.Y
	dx2, dy2 := c.X-a.X, c.Y-a.Y
	d := 2 * (dx1*dy2 - dy1*dx2)
	l1 := dx1*dx1 + dy1*dy1
	l2 := dx2*dx2 + dy2*dy2
	ux := (dy2*l1 - dy1*l2) / d
	uy := (dx1*l2 - dx2*l1) / d
	return Point{X: a.X + ux, Y: a.Y + uy}
}

// dist returns the Euclidean distance between two points.
func dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// RadiusEdgeRatio returns circumradius / shortest edge — Ruppert's
// quality measure. Values above sqrt(2) mark a triangle "skinny".
func RadiusEdgeRatio(a, b, c Point) float64 {
	cc := Circumcenter(a, b, c)
	r := dist(cc, a)
	e := math.Min(dist(a, b), math.Min(dist(b, c), dist(c, a)))
	if e == 0 {
		return math.Inf(1)
	}
	return r / e
}
