package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/seqgen"
)

var testPool = core.NewPool(4)

func on(f func(w *core.Worker)) { testPool.Do(f) }

func TestOrient2D(t *testing.T) {
	a, b := pt(0, 0), pt(1, 0)
	if Orient2D(a, b, pt(0, 1)) <= 0 {
		t.Fatal("left point should be positive")
	}
	if Orient2D(a, b, pt(0, -1)) >= 0 {
		t.Fatal("right point should be negative")
	}
	if Orient2D(a, b, pt(2, 0)) != 0 {
		t.Fatal("collinear point should be zero")
	}
}

func TestInCircle(t *testing.T) {
	// CCW unit triangle on the unit circle.
	a := pt(1, 0)
	b := pt(0, 1)
	c := pt(-1, 0)
	if InCircle(a, b, c, pt(0, 0)) <= 0 {
		t.Fatal("center should be inside")
	}
	if InCircle(a, b, c, pt(2, 2)) >= 0 {
		t.Fatal("far point should be outside")
	}
	if v := InCircle(a, b, c, pt(0, -1)); math.Abs(v) > 1e-9 {
		t.Fatalf("cocircular point should be ~0, got %v", v)
	}
}

func TestCircumcenterEquidistantProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := pt(float64(ax), float64(ay))
		b := pt(float64(bx), float64(by))
		c := pt(float64(cx), float64(cy))
		if math.Abs(Orient2D(a, b, c)) < 1e-9 {
			return true // degenerate: skip
		}
		cc := Circumcenter(a, b, c)
		da, db, dc := dist(cc, a), dist(cc, b), dist(cc, c)
		tol := 1e-6 * (1 + da)
		return math.Abs(da-db) < tol && math.Abs(da-dc) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRadiusEdgeRatio(t *testing.T) {
	// Equilateral triangle: ratio = 1/sqrt(3) ~ 0.577.
	a := pt(0, 0)
	b := pt(1, 0)
	c := pt(0.5, math.Sqrt(3)/2)
	if r := RadiusEdgeRatio(a, b, c); math.Abs(r-1/math.Sqrt(3)) > 1e-9 {
		t.Fatalf("equilateral ratio = %v", r)
	}
	// A sliver must have a huge ratio.
	if r := RadiusEdgeRatio(pt(0, 0), pt(1, 0), pt(0.5, 0.001)); r < 10 {
		t.Fatalf("sliver ratio = %v, want large", r)
	}
	if r := RadiusEdgeRatio(pt(0, 0), pt(0, 0), pt(1, 0)); !math.IsInf(r, 1) {
		t.Fatalf("degenerate ratio = %v, want +Inf", r)
	}
}

func triangulated(pts []Point, extra int) *Mesh {
	maxR := 1.0
	for _, p := range pts {
		if r := math.Hypot(p.X, p.Y); r > maxR {
			maxR = r
		}
	}
	m := NewMesh(pts, extra, maxR+1)
	m.Triangulate()
	return m
}

func TestTriangulateSquare(t *testing.T) {
	pts := []Point{pt(0, 0), pt(1, 0), pt(1, 1), pt(0, 1)}
	m := triangulated(pts, 0)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	if live := m.LiveTriangles(false); len(live) != 2 {
		t.Fatalf("square should triangulate into 2 triangles, got %d", len(live))
	}
}

func TestTriangulateDuplicatePoints(t *testing.T) {
	pts := []Point{pt(0, 0), pt(1, 0), pt(0, 1), pt(0, 0), pt(1, 0)}
	m := triangulated(pts, 0)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if live := m.LiveTriangles(false); len(live) != 1 {
		t.Fatalf("3 distinct points = 1 triangle, got %d", len(live))
	}
}

func TestTriangulateRandomDelaunayProperty(t *testing.T) {
	pts := seqgen.KuzminPoints(nil, 300, 3)
	m := triangulated(pts, 0)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	// Euler: a triangulation of n points has at most 2n triangles.
	if live := m.LiveTriangles(true); len(live) > 2*(len(pts)+3) {
		t.Fatalf("too many live triangles: %d", len(live))
	}
}

func TestTriangulatePropertyRandomSets(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 3
		pts := seqgen.KuzminPoints(nil, n, seed)
		m := triangulated(pts, 0)
		return m.CheckInvariants() == nil && m.CheckDelaunay() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLocate(t *testing.T) {
	pts := []Point{pt(0, 0), pt(2, 0), pt(0, 2), pt(2, 2)}
	m := triangulated(pts, 0)
	target := pt(0.5, 0.5)
	loc := m.Locate(target, 0)
	if loc == NoTri {
		t.Fatal("locate failed")
	}
	if !m.Contains(loc, target) {
		t.Fatal("located triangle does not contain point")
	}
	// A point far outside the super-triangle cannot be located.
	if m.Locate(pt(1e9, 1e9), 0) != NoTri {
		t.Fatal("locate should fail outside the super-triangle")
	}
}

func TestRefineSequentialEliminatesSkinny(t *testing.T) {
	pts := seqgen.KuzminPoints(nil, 200, 5)
	opt := DefaultRefineOptions(len(pts))
	m := NewMesh(pts, opt.MaxSteiner+8, 1e6)
	m.Triangulate()
	before := m.SkinnyCount(nil, opt.Bound)
	if before == 0 {
		t.Skip("input produced no skinny triangles")
	}
	inserted := m.RefineSequential(opt)
	if inserted == 0 {
		t.Fatal("refinement inserted nothing despite skinny triangles")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Non-exact arithmetic can strand a few borderline slivers whose
	// cavity search disconnects numerically; anything beyond a handful
	// indicates a real bug.
	after := m.SkinnyCount(nil, opt.Bound)
	if inserted < opt.MaxSteiner && after > 3 {
		t.Fatalf("refinement finished with %d skinny triangles left", after)
	}
}

func TestRefineParallelEliminatesSkinny(t *testing.T) {
	pts := seqgen.KuzminPoints(nil, 200, 5)
	opt := DefaultRefineOptions(len(pts))
	m := NewMesh(pts, opt.MaxSteiner+8, 1e6)
	m.Triangulate()
	var stats RefineStats
	on(func(w *core.Worker) { stats = m.RefineParallel(w, opt) })
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if stats.Inserted < opt.MaxSteiner {
		var left int
		on(func(w *core.Worker) { left = m.SkinnyCount(w, opt.Bound) })
		if left > 3 {
			t.Fatalf("parallel refinement left %d skinny triangles (stats %+v)", left, stats)
		}
	}
	if stats.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestRefineParallelMatchesSequentialQuality(t *testing.T) {
	// Both must reach (near-)zero skinny triangles; the meshes differ
	// but the post-condition is the same. A residual of a few borderline
	// slivers is a float-precision artifact, not a scheduling bug.
	for _, seed := range []uint64{1, 2} {
		pts := seqgen.KuzminPoints(nil, 100, seed)
		opt := DefaultRefineOptions(len(pts))

		ms := NewMesh(pts, opt.MaxSteiner+8, 1e6)
		ms.Triangulate()
		ms.RefineSequential(opt)

		mp := NewMesh(pts, opt.MaxSteiner+8, 1e6)
		mp.Triangulate()
		on(func(w *core.Worker) { mp.RefineParallel(w, opt) })

		if got := ms.SkinnyCount(nil, opt.Bound); got > 3 {
			t.Fatalf("seed %d: sequential left %d skinny", seed, got)
		}
		if got := mp.SkinnyCount(nil, opt.Bound); got > 3 {
			t.Fatalf("seed %d: parallel left %d skinny", seed, got)
		}
		if err := mp.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestMeshAllocGuards(t *testing.T) {
	m := NewMesh([]Point{pt(0, 0), pt(1, 0), pt(0, 1)}, 0, 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected point-exhaustion panic")
			}
		}()
		m.AllocPointParallel(pt(5, 5))
	}()
}

func TestSuperVertexClassification(t *testing.T) {
	m := NewMesh([]Point{pt(0, 0), pt(1, 0), pt(0, 1)}, 2, 10)
	if m.SuperVertex(0) || m.SuperVertex(2) {
		t.Fatal("input vertices misclassified")
	}
	if !m.SuperVertex(3) || !m.SuperVertex(4) || !m.SuperVertex(5) {
		t.Fatal("super vertices misclassified")
	}
	if m.SuperVertex(6) {
		t.Fatal("steiner slot misclassified")
	}
	if m.NumInput() != 3 {
		t.Fatalf("NumInput = %d", m.NumInput())
	}
}

// pt builds a Point without tripping vet's unkeyed-literal check for
// the aliased seqgen.Point type.
func pt(x, y float64) Point { return Point{X: x, Y: y} }

func TestMinAngleDeg(t *testing.T) {
	// Equilateral: 60 degrees everywhere.
	if a := minAngleDeg(pt(0, 0), pt(1, 0), pt(0.5, math.Sqrt(3)/2)); math.Abs(a-60) > 1e-9 {
		t.Fatalf("equilateral min angle = %v", a)
	}
	// Right isoceles: 45.
	if a := minAngleDeg(pt(0, 0), pt(1, 0), pt(0, 1)); math.Abs(a-45) > 1e-9 {
		t.Fatalf("right isoceles min angle = %v", a)
	}
	// Degenerate: 0.
	if a := minAngleDeg(pt(0, 0), pt(1, 0), pt(2, 0)); a > 1e-6 {
		t.Fatalf("degenerate min angle = %v", a)
	}
}

func TestQualityImprovesWithRefinement(t *testing.T) {
	pts := seqgen.KuzminPoints(nil, 300, 9)
	opt := DefaultRefineOptions(len(pts))
	m := NewMesh(pts, opt.MaxSteiner+8, 1e6)
	m.Triangulate()
	var before, after QualityStats
	on(func(w *core.Worker) {
		before = m.Quality(w, opt.Bound)
		m.RefineParallel(w, opt)
		after = m.Quality(w, opt.Bound)
	})
	if before.Triangles == 0 || after.Triangles <= before.Triangles {
		t.Fatalf("refinement should add triangles: %d -> %d", before.Triangles, after.Triangles)
	}
	if after.SkinnyAtBound > before.SkinnyAtBound {
		t.Fatalf("skinny count rose: %d -> %d", before.SkinnyAtBound, after.SkinnyAtBound)
	}
	if after.MeanMinAngle <= before.MeanMinAngle {
		t.Fatalf("mean min angle did not improve: %.2f -> %.2f", before.MeanMinAngle, after.MeanMinAngle)
	}
	// Ruppert: bound B guarantees min angle >= arcsin(1/(2B)) for the
	// triangles the refinement could fix (residual slivers aside).
	if after.SkinnyAtBound <= 3 && after.MeanMinAngle < 20 {
		t.Fatalf("refined mesh suspiciously poor: %v", after)
	}
	if after.String() == "" {
		t.Fatal("empty quality string")
	}
}

func TestQualityEmptyMesh(t *testing.T) {
	m := NewMesh(nil, 0, 10)
	q := m.Quality(nil, 1.5)
	if q.Triangles != 0 || q.SkinnyAtBound != 0 {
		t.Fatalf("empty mesh quality: %+v", q)
	}
}

func TestLocateWithDeadHint(t *testing.T) {
	pts := seqgen.KuzminPoints(nil, 50, 13)
	m := triangulated(pts, 8)
	// Kill a triangle by inserting a point into it, then locate using
	// the dead id as the hint: Locate must recover via anyLive.
	target := pt(0.01, 0.01)
	loc := m.Locate(target, 0)
	if loc == NoTri {
		t.Skip("target outside mesh")
	}
	cav, _ := m.Cavity(target, loc, 1<<10)
	pIdx := m.AllocPointParallel(target)
	m.EnsureTriCapacity(3*len(cav) + 8)
	m.InsertWithCavity(pIdx, cav, func() int32 { return m.AllocTriParallel() })
	if !m.Tris[loc].Dead {
		t.Skip("hint still alive")
	}
	got := m.Locate(target, loc)
	if got == NoTri || m.Tris[got].Dead {
		t.Fatal("Locate failed with dead hint")
	}
}

func TestContainsBoundary(t *testing.T) {
	pts := []Point{pt(0, 0), pt(2, 0), pt(0, 2)}
	m := triangulated(pts, 0)
	live := m.LiveTriangles(false)
	if len(live) != 1 {
		t.Fatalf("live = %v", live)
	}
	tri := live[0]
	if !m.Contains(tri, pt(0.5, 0.5)) {
		t.Error("interior point not contained")
	}
	if !m.Contains(tri, pt(1, 0)) {
		t.Error("edge point not contained")
	}
	if m.Contains(tri, pt(3, 3)) {
		t.Error("exterior point contained")
	}
}

func BenchmarkRefineParallel(b *testing.B) {
	pts := seqgen.KuzminPoints(nil, 1000, 1)
	opt := DefaultRefineOptions(len(pts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMesh(pts, opt.MaxSteiner+8, 1e6)
		m.Triangulate()
		on(func(w *core.Worker) { m.RefineParallel(w, opt) })
	}
}
