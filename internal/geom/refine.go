package geom

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
)

// Delaunay refinement (the dr benchmark): repeatedly insert the
// circumcenters of "skinny" triangles (radius-edge ratio above bound)
// until none remain. The parallel version uses PBBS-style deterministic
// reservations — the arbitrary-read-write (AW) pattern of the paper's
// Sec 5.2: candidates race to reserve the triangles they would modify
// via priority writes (WriteMin), winners commit disjoint cavities in
// parallel, losers retry next round.

// RefineOptions controls refinement.
type RefineOptions struct {
	// Bound is the radius-edge-ratio threshold; triangles above it are
	// refined. Ruppert's classic bound is sqrt(2).
	Bound float64
	// MaxSteiner caps the number of inserted circumcenters.
	MaxSteiner int
	// MaxCavity skips candidates whose cavity exceeds this size.
	MaxCavity int
	// BatchSize bounds candidates attempted per parallel round.
	BatchSize int
}

// DefaultRefineOptions returns the options used by the dr benchmark.
func DefaultRefineOptions(nPoints int) RefineOptions {
	return RefineOptions{
		Bound:      1.5,
		MaxSteiner: 4*nPoints + 256,
		MaxCavity:  64,
		BatchSize:  4096,
	}
}

// skinny reports whether live triangle t needs refinement: it must not
// touch the super-triangle and its radius-edge ratio must exceed bound.
func (m *Mesh) skinny(t int32, bound float64) bool {
	tr := &m.Tris[t]
	if tr.Dead || m.SuperVertex(tr.V[0]) || m.SuperVertex(tr.V[1]) || m.SuperVertex(tr.V[2]) {
		return false
	}
	a, b, c := m.TriPoints(t)
	return RadiusEdgeRatio(a, b, c) > bound
}

// RefineSequential refines the mesh one circumcenter at a time and
// returns the number of Steiner points inserted. It is both the oracle
// and the 1-thread baseline. A worklist seeded with the current skinny
// triangles (and fed with triangles created by each insertion) avoids
// rescanning the whole mesh per step.
func (m *Mesh) RefineSequential(opt RefineOptions) int {
	var work []int32
	for t := int32(0); t < m.TriCount(); t++ {
		if m.skinny(t, opt.Bound) {
			work = append(work, t)
		}
	}
	inserted := 0
	for len(work) > 0 && inserted < opt.MaxSteiner {
		bad := work[len(work)-1]
		work = work[:len(work)-1]
		if !m.skinny(bad, opt.Bound) {
			continue
		}
		a, b, c := m.TriPoints(bad)
		cc := Circumcenter(a, b, c)
		if !insertable(cc) {
			continue
		}
		loc := m.Locate(cc, bad)
		if loc == NoTri {
			continue
		}
		if dup := &m.Tris[loc]; m.Pts[dup.V[0]] == cc || m.Pts[dup.V[1]] == cc || m.Pts[dup.V[2]] == cc {
			continue
		}
		cav, ok := m.Cavity(cc, loc, 1<<20)
		if !ok {
			continue
		}
		if int(m.PointCount()) >= len(m.Pts) {
			return inserted // Steiner budget exhausted
		}
		pIdx := m.AllocPointParallel(cc)
		m.EnsureTriCapacity(3*len(cav) + 8)
		before := m.TriCount()
		m.InsertWithCavity(pIdx, cav, m.allocSeq)
		inserted++
		for t := before; t < m.TriCount(); t++ {
			if m.skinny(t, opt.Bound) {
				work = append(work, t)
			}
		}
	}
	return inserted
}

func insertable(p Point) bool {
	return !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
}

// RefineStats reports what a parallel refinement did.
type RefineStats struct {
	Inserted  int // Steiner points committed
	Rounds    int // parallel rounds executed
	Conflicts int // candidates that lost a reservation race
}

// noCandidate is the reservation value meaning "unreserved".
const noCandidate = ^uint32(0)

// RefineParallel refines the mesh with rounds of speculative parallel
// insertions. Each round: (1) collect skinny triangles; (2) each
// candidate — in parallel — locates its circumcenter, computes the
// cavity, and reserves every triangle it would touch with a WriteMin on
// the per-triangle reservation word; (3) candidates that hold all their
// reservations commit their cavities in parallel (provably disjoint);
// (4) losers retry in a later round.
func (m *Mesh) RefineParallel(w *core.Worker, opt RefineOptions) RefineStats {
	var stats RefineStats
	reserve := make([]atomic.Uint32, cap(m.Tris))
	core.ForRange(w, 0, len(reserve), 0, func(i int) {
		reserve[i].Store(noCandidate)
	})
	// The worklist holds candidate triangle ids: seeded with all current
	// skinny triangles, then fed per round with losers and freshly
	// created triangles, so rounds cost O(|worklist|), not O(|mesh|).
	work := core.PackIndex(w, int(m.TriCount()), func(t int) bool {
		return m.skinny(int32(t), opt.Bound)
	})
	for {
		if stats.Inserted >= opt.MaxSteiner {
			return stats
		}
		// (1) Re-validate the worklist (RO + pack): committed cavities
		// kill or fix many queued triangles.
		prev := work
		keep := core.PackIndex(w, len(prev), func(i int) bool {
			return m.skinny(prev[i], opt.Bound)
		})
		cand := make([]int32, len(keep))
		core.ForRange(w, 0, len(keep), 0, func(i int) {
			cand[i] = prev[keep[i]]
		})
		if len(cand) == 0 {
			return stats
		}
		badIdx := cand
		if len(badIdx) > opt.BatchSize {
			badIdx = badIdx[:opt.BatchSize]
		}
		if stats.Inserted+len(badIdx) > opt.MaxSteiner {
			badIdx = badIdx[:opt.MaxSteiner-stats.Inserted]
		}
		// Respect the mesh's Steiner point budget.
		if room := len(m.Pts) - int(m.PointCount()); len(badIdx) > room {
			if room <= 0 {
				return stats
			}
			badIdx = badIdx[:room]
		}
		stats.Rounds++
		// Room for commits: every candidate may create up to
		// MaxCavity+2 triangles. Grow the reservation array alongside;
		// a grown (or initial) array is bulk-initialized once, and from
		// then on only touched slots are reset (end of each round), so
		// round cost stays proportional to the batch, not the mesh.
		m.EnsureTriCapacity(len(badIdx)*(opt.MaxCavity+2) + 8)
		if len(reserve) < len(m.Tris) {
			grown := make([]atomic.Uint32, len(m.Tris)+len(m.Tris)/2)
			core.ForRange(w, 0, len(grown), 0, func(i int) {
				grown[i].Store(noCandidate)
			})
			reserve = grown
		}

		// (2) Speculate and reserve.
		type plan struct {
			cavity []int32
			center Point
			ok     bool
		}
		plans := make([]plan, len(badIdx))
		core.ForRange(w, 0, len(badIdx), 1, func(ci int) {
			t := int32(badIdx[ci])
			a, b, c := m.TriPoints(t)
			cc := Circumcenter(a, b, c)
			if !insertable(cc) {
				return
			}
			loc := m.Locate(cc, t)
			if loc == NoTri {
				return
			}
			cav, ok := m.Cavity(cc, loc, opt.MaxCavity)
			if !ok {
				return
			}
			// Reserve the cavity and its outside neighbors with the
			// candidate's priority (its index; lower wins).
			pri := uint32(ci)
			for _, ct := range cav {
				core.WriteMin32(&reserve[ct], pri)
				for _, nb := range m.Tris[ct].N {
					if nb != NoTri && !m.Tris[nb].Dead {
						core.WriteMin32(&reserve[nb], pri)
					}
				}
			}
			plans[ci] = plan{cavity: cav, center: cc, ok: true}
		})

		// (3) Winners commit. A candidate wins when it still holds every
		// reservation it needs.
		cursorBefore := m.TriCount()
		var inserted, conflicts atomic.Int64
		core.ForRange(w, 0, len(badIdx), 1, func(ci int) {
			pl := &plans[ci]
			if !pl.ok {
				return
			}
			pri := uint32(ci)
			for _, ct := range pl.cavity {
				if reserve[ct].Load() != pri {
					conflicts.Add(1)
					return
				}
				for _, nb := range m.Tris[ct].N {
					if nb != NoTri && !m.Tris[nb].Dead && reserve[nb].Load() != pri {
						conflicts.Add(1)
						return
					}
				}
			}
			pIdx := m.AllocPointParallel(pl.center)
			m.InsertWithCavity(pIdx, pl.cavity, m.AllocTriParallel)
			inserted.Add(1)
		})
		stats.Inserted += int(inserted.Load())
		stats.Conflicts += int(conflicts.Load())
		if inserted.Load() == 0 && conflicts.Load() == 0 && len(badIdx) == len(cand) {
			// Every remaining candidate failed structurally (not by a
			// reservation race): nothing will change next round either.
			return stats
		}
		// Reset the reservations this round touched (plans' cavities and
		// their neighbors, plus freshly created triangles — which start
		// at the zero value, not noCandidate).
		core.ForRange(w, 0, len(badIdx), 1, func(ci int) {
			pl := &plans[ci]
			if !pl.ok {
				return
			}
			for _, ct := range pl.cavity {
				reserve[ct].Store(noCandidate)
				for _, nb := range m.Tris[ct].N {
					if nb != NoTri {
						reserve[nb].Store(noCandidate)
					}
				}
			}
		})
		cursorAfter := m.TriCount()
		core.ForRange(w, int(cursorBefore), int(cursorAfter), 0, func(t int) {
			reserve[t].Store(noCandidate)
		})
		// Next round's worklist: all surviving candidates (winners died
		// and will be filtered) plus the triangles created this round.
		work = cand
		for t := cursorBefore; t < cursorAfter; t++ {
			work = append(work, t)
		}
	}
}

// SkinnyCount returns the number of live skinny triangles (RO).
func (m *Mesh) SkinnyCount(w *core.Worker, bound float64) int {
	n := int(m.TriCount())
	return int(core.MapReduce(w, n, int64(0), func(t int) int64 {
		if m.skinny(int32(t), bound) {
			return 1
		}
		return 0
	}, func(a, b int64) int64 { return a + b }))
}
