package geom

import (
	"fmt"
	"sync/atomic"
)

// NoTri marks the absence of a neighbor (convex-hull edges of the
// super-triangle).
const NoTri = int32(-1)

// Tri is one triangle: vertices V in counterclockwise order, and N[i]
// the neighbor across the edge opposite V[i] (the edge V[i+1]–V[i+2]).
type Tri struct {
	V     [3]int32
	N     [3]int32
	Dead  bool
	Fresh bool // set on triangles created by the most recent insertions
}

// Mesh is a triangulation under construction. Triangle slots are
// allocated monotonically (dead slots are not reused), which keeps
// parallel commits allocation-free: winners claim slots with an atomic
// cursor into preallocated storage.
type Mesh struct {
	Pts  []Point // input points, then 3 super-triangle vertices, then Steiner points
	Tris []Tri

	triCursor atomic.Int64 // next free triangle slot
	ptCursor  atomic.Int64 // next free point slot (for Steiner points)

	nInput int   // number of original input points
	super  int32 // index of first super-triangle vertex
}

// NewMesh prepares a mesh over pts with room for extraPts additional
// (Steiner) points, wrapped in a super-triangle that strictly contains
// every present and future point within radius superRadius.
func NewMesh(pts []Point, extraPts int, superRadius float64) *Mesh {
	n := len(pts)
	all := make([]Point, n, n+3+extraPts)
	copy(all, pts)
	// A triangle circumscribing the circle of radius superRadius.
	r := superRadius * 4
	all = append(all,
		Point{X: 0, Y: 2 * r},
		Point{X: -2 * r, Y: -r},
		Point{X: 2 * r, Y: -r},
	)
	all = all[:len(all)+extraPts]
	m := &Mesh{
		Pts:    all,
		nInput: n,
		super:  int32(n),
	}
	m.ptCursor.Store(int64(n + 3))
	// Triangle budget: each insertion nets +2 triangles but dead slots
	// linger; a generous multiplier avoids mid-build reallocation.
	m.Tris = make([]Tri, 0, 8*(n+extraPts)+16)
	t0 := m.allocSeq()
	m.Tris[t0] = Tri{
		V: [3]int32{m.super, m.super + 1, m.super + 2},
		N: [3]int32{NoTri, NoTri, NoTri},
	}
	return m
}

// NumInput returns the number of original input points.
func (m *Mesh) NumInput() int { return m.nInput }

// SuperVertex reports whether vertex v belongs to the super-triangle.
func (m *Mesh) SuperVertex(v int32) bool {
	return v >= m.super && v < m.super+3
}

// TriCount returns the number of allocated triangle slots (alive+dead).
func (m *Mesh) TriCount() int32 { return int32(m.triCursor.Load()) }

// PointCount returns the number of points in use.
func (m *Mesh) PointCount() int32 { return int32(m.ptCursor.Load()) }

// allocSeq claims one triangle slot, growing storage (sequential use).
func (m *Mesh) allocSeq() int32 {
	id := int32(m.triCursor.Add(1) - 1)
	for int(id) >= len(m.Tris) {
		m.Tris = append(m.Tris, Tri{})
	}
	return id
}

// AllocTriParallel claims one triangle slot without growing storage; it
// panics if EnsureTriCapacity was not called with enough headroom.
func (m *Mesh) AllocTriParallel() int32 {
	id := int32(m.triCursor.Add(1) - 1)
	if int(id) >= len(m.Tris) {
		panic("geom.Mesh: triangle storage exhausted; call EnsureTriCapacity before the parallel phase")
	}
	return id
}

// EnsureTriCapacity grows triangle storage (sequentially) so that at
// least headroom slots beyond the cursor exist.
func (m *Mesh) EnsureTriCapacity(headroom int) {
	need := int(m.triCursor.Load()) + headroom
	for len(m.Tris) < need {
		m.Tris = append(m.Tris, Tri{})
	}
}

// AllocPointParallel claims a point slot for a Steiner point; it panics
// when the extraPts budget of NewMesh is exhausted.
func (m *Mesh) AllocPointParallel(p Point) int32 {
	id := int32(m.ptCursor.Add(1) - 1)
	if int(id) >= len(m.Pts) {
		panic("geom.Mesh: point storage exhausted; increase extraPts")
	}
	m.Pts[id] = p
	return id
}

// TriPoints returns the three corner points of triangle t.
func (m *Mesh) TriPoints(t int32) (Point, Point, Point) {
	tr := &m.Tris[t]
	return m.Pts[tr.V[0]], m.Pts[tr.V[1]], m.Pts[tr.V[2]]
}

// Contains reports whether p lies inside or on triangle t.
func (m *Mesh) Contains(t int32, p Point) bool {
	a, b, c := m.TriPoints(t)
	return Orient2D(a, b, p) >= 0 && Orient2D(b, c, p) >= 0 && Orient2D(c, a, p) >= 0
}

// Locate walks from hint toward p and returns a live triangle
// containing p, or NoTri if the walk escapes the triangulation (p
// outside the super-triangle). The walk reads only triangle data that
// is stable during a read phase.
func (m *Mesh) Locate(p Point, hint int32) int32 {
	t := hint
	if t == NoTri || m.Tris[t].Dead {
		t = m.anyLive()
		if t == NoTri {
			return NoTri
		}
	}
	maxSteps := 4 * len(m.Tris)
	for step := 0; step < maxSteps; step++ {
		tr := &m.Tris[t]
		a, b, c := m.Pts[tr.V[0]], m.Pts[tr.V[1]], m.Pts[tr.V[2]]
		// Move across the first edge that has p strictly outside.
		switch {
		case Orient2D(a, b, p) < 0:
			t = tr.N[2]
		case Orient2D(b, c, p) < 0:
			t = tr.N[0]
		case Orient2D(c, a, p) < 0:
			t = tr.N[1]
		default:
			return t
		}
		if t == NoTri {
			return NoTri
		}
	}
	// Degenerate walk (numerical near-collinearity): fall back to scan.
	for i := int32(0); i < m.TriCount(); i++ {
		if !m.Tris[i].Dead && m.Contains(i, p) {
			return i
		}
	}
	return NoTri
}

func (m *Mesh) anyLive() int32 {
	for i := m.TriCount() - 1; i >= 0; i-- {
		if !m.Tris[i].Dead {
			return i
		}
	}
	return NoTri
}

// Cavity collects, by breadth-first search from start, the connected
// set of live triangles whose circumcircles contain p. It returns
// (nil, false) when the cavity exceeds maxSize. The search only reads
// mesh state.
func (m *Mesh) Cavity(p Point, start int32, maxSize int) ([]int32, bool) {
	cav := make([]int32, 0, 8)
	cav = append(cav, start)
	inCav := func(t int32) bool {
		for _, c := range cav {
			if c == t {
				return true
			}
		}
		return false
	}
	for qi := 0; qi < len(cav); qi++ {
		tr := &m.Tris[cav[qi]]
		for e := 0; e < 3; e++ {
			nb := tr.N[e]
			if nb == NoTri || m.Tris[nb].Dead || inCav(nb) {
				continue
			}
			a, b, c := m.TriPoints(nb)
			if InCircle(a, b, c, p) > 0 {
				if len(cav) >= maxSize {
					return nil, false
				}
				cav = append(cav, nb)
			}
		}
	}
	return cav, true
}

// boundaryEdge is one edge of the cavity boundary: the directed edge
// (A, B) with the outside neighbor Out.
type boundaryEdge struct {
	A, B int32
	Out  int32
}

// InsertWithCavity retriangulates the cavity around new vertex pIdx:
// cavity triangles die and a fan of len(boundary) new triangles around
// pIdx replaces them. alloc supplies new triangle slots (sequential or
// parallel flavor). The caller guarantees exclusive access to the
// cavity triangles and their outside neighbors.
func (m *Mesh) InsertWithCavity(pIdx int32, cavity []int32, alloc func() int32) {
	inCav := func(t int32) bool {
		for _, c := range cavity {
			if c == t {
				return true
			}
		}
		return false
	}
	var boundary []boundaryEdge
	for _, ct := range cavity {
		tr := &m.Tris[ct]
		for e := 0; e < 3; e++ {
			nb := tr.N[e]
			if nb != NoTri && inCav(nb) {
				continue
			}
			boundary = append(boundary, boundaryEdge{
				A:   tr.V[(e+1)%3],
				B:   tr.V[(e+2)%3],
				Out: nb,
			})
		}
	}
	// Create the fan: triangle (A, B, pIdx) per boundary edge, CCW
	// because the cavity interior (where p lies) is left of A->B.
	newTris := make([]int32, len(boundary))
	for i, be := range boundary {
		nt := alloc()
		m.Tris[nt] = Tri{
			V:     [3]int32{be.A, be.B, pIdx},
			N:     [3]int32{NoTri, NoTri, be.Out},
			Fresh: true,
		}
		newTris[i] = nt
		// Repoint the outside neighbor at the new triangle, matching by
		// edge endpoints: the neighbor may border the cavity across
		// several edges, so slot identity alone is not enough.
		if be.Out != NoTri {
			out := &m.Tris[be.Out]
			for e := 0; e < 3; e++ {
				u, v := out.V[(e+1)%3], out.V[(e+2)%3]
				if (u == be.A && v == be.B) || (u == be.B && v == be.A) {
					out.N[e] = nt
					break
				}
			}
		}
	}
	// Wire fan-internal adjacency: triangle i's edge (B, p) — opposite
	// A, slot N[0] holds edge V1-V2 = (B, p) — meets the fan triangle
	// whose A equals our B; edge (p, A) — slot N[1] (edge V2-V0 = (p,A))
	// — meets the one whose B equals our A.
	for i, be := range boundary {
		for j, be2 := range boundary {
			if i == j {
				continue
			}
			if be2.A == be.B {
				m.Tris[newTris[i]].N[0] = newTris[j]
			}
			if be2.B == be.A {
				m.Tris[newTris[i]].N[1] = newTris[j]
			}
		}
	}
	for _, ct := range cavity {
		m.Tris[ct].Dead = true
	}
}

func inCavT(t int32, cavity []int32) bool {
	if t == NoTri {
		return false
	}
	for _, c := range cavity {
		if c == t {
			return true
		}
	}
	return false
}

// InsertPoint inserts point index pIdx (already stored in Pts)
// sequentially: locate, carve cavity, retriangulate. It returns false
// when the point could not be located (outside the super-triangle) or
// duplicates an existing vertex.
func (m *Mesh) InsertPoint(pIdx int32, hint int32) (int32, bool) {
	p := m.Pts[pIdx]
	t := m.Locate(p, hint)
	if t == NoTri {
		return hint, false
	}
	// Reject exact duplicates of the containing triangle's corners.
	tr := &m.Tris[t]
	for _, v := range tr.V {
		if m.Pts[v] == p {
			return t, false
		}
	}
	cav, ok := m.Cavity(p, t, 1<<20)
	if !ok {
		return t, false
	}
	m.InsertWithCavity(pIdx, cav, m.allocSeq)
	return m.TriCount() - 1, true
}

// Triangulate builds the Delaunay triangulation of the mesh's input
// points sequentially. It returns the number of points actually
// inserted (duplicates are skipped).
func (m *Mesh) Triangulate() int {
	hint := int32(0)
	inserted := 0
	for i := 0; i < m.nInput; i++ {
		h, ok := m.InsertPoint(int32(i), hint)
		hint = h
		if ok {
			inserted++
		}
	}
	return inserted
}

// LiveTriangles returns the ids of live triangles; withSuper controls
// whether triangles touching super-triangle vertices are included.
func (m *Mesh) LiveTriangles(withSuper bool) []int32 {
	var out []int32
	for i := int32(0); i < m.TriCount(); i++ {
		tr := &m.Tris[i]
		if tr.Dead {
			continue
		}
		if !withSuper && (m.SuperVertex(tr.V[0]) || m.SuperVertex(tr.V[1]) || m.SuperVertex(tr.V[2])) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// CheckInvariants validates structural soundness: live triangles are
// CCW, neighbor links are mutual, and shared edges agree. It returns an
// error describing the first violation.
func (m *Mesh) CheckInvariants() error {
	for i := int32(0); i < m.TriCount(); i++ {
		tr := &m.Tris[i]
		if tr.Dead {
			continue
		}
		a, b, c := m.TriPoints(i)
		if Orient2D(a, b, c) <= 0 {
			return fmt.Errorf("triangle %d not CCW", i)
		}
		for e := 0; e < 3; e++ {
			nb := tr.N[e]
			if nb == NoTri {
				continue
			}
			if m.Tris[nb].Dead {
				return fmt.Errorf("triangle %d has dead neighbor %d", i, nb)
			}
			// The neighbor must point back at i.
			back := false
			for e2 := 0; e2 < 3; e2++ {
				if m.Tris[nb].N[e2] == i {
					back = true
				}
			}
			if !back {
				return fmt.Errorf("neighbor link %d->%d not mutual", i, nb)
			}
			// The shared edge's endpoints must appear in both triangles.
			u, v := tr.V[(e+1)%3], tr.V[(e+2)%3]
			if !hasVertex(&m.Tris[nb], u) || !hasVertex(&m.Tris[nb], v) {
				return fmt.Errorf("edge %d-%d of triangle %d missing in neighbor %d", u, v, i, nb)
			}
		}
	}
	return nil
}

func hasVertex(t *Tri, v int32) bool {
	return t.V[0] == v || t.V[1] == v || t.V[2] == v
}

// CheckDelaunay verifies the empty-circumcircle property of every live
// triangle against every inserted point (O(T*P): test-sized meshes
// only). Super-triangle-adjacent triangles are skipped, as their
// circumcircles legitimately contain points.
func (m *Mesh) CheckDelaunay() error {
	live := m.LiveTriangles(false)
	nPts := int(m.PointCount())
	for _, t := range live {
		a, b, c := m.TriPoints(t)
		tr := &m.Tris[t]
		for p := 0; p < nPts; p++ {
			if p >= m.nInput && p < m.nInput+3 {
				continue // super vertices
			}
			pi := int32(p)
			if tr.V[0] == pi || tr.V[1] == pi || tr.V[2] == pi {
				continue
			}
			if InCircle(a, b, c, m.Pts[p]) > 1e-9 {
				return fmt.Errorf("point %d inside circumcircle of triangle %d", p, t)
			}
		}
	}
	return nil
}
