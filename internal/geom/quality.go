package geom

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Mesh quality statistics: the measurable outcome of refinement. The
// radius-edge bound B corresponds to a minimum-angle guarantee of
// arcsin(1/(2B)) (Ruppert), so a refined mesh's angle histogram is the
// ground truth behind the dr benchmark's post-conditions.

// QualityStats summarizes the live, non-super triangles of a mesh.
type QualityStats struct {
	Triangles     int
	MinAngleDeg   float64 // smallest angle anywhere in the mesh
	MeanMinAngle  float64 // mean of per-triangle minimum angles
	WorstRatio    float64 // largest radius-edge ratio
	AngleHisto    [6]int  // per-triangle min angle: <10°, <20°, <30°, <40°, <50°, >=50°
	SkinnyAtBound int     // triangles above the given ratio bound
}

// minAngleDeg returns the smallest interior angle of triangle (a,b,c)
// in degrees.
func minAngleDeg(a, b, c Point) float64 {
	la := dist(b, c) // side opposite a
	lb := dist(a, c)
	lc := dist(a, b)
	angle := func(opp, s1, s2 float64) float64 {
		if s1 == 0 || s2 == 0 {
			return 0
		}
		cos := (s1*s1 + s2*s2 - opp*opp) / (2 * s1 * s2)
		if cos > 1 {
			cos = 1
		}
		if cos < -1 {
			cos = -1
		}
		return math.Acos(cos) * 180 / math.Pi
	}
	aa := angle(la, lb, lc)
	ab := angle(lb, la, lc)
	ac := angle(lc, la, lb)
	return math.Min(aa, math.Min(ab, ac))
}

// Quality computes mesh quality statistics in parallel (an RO pass).
func (m *Mesh) Quality(w *core.Worker, bound float64) QualityStats {
	live := m.LiveTriangles(false)
	type acc struct {
		n      int
		minA   float64
		sumMin float64
		worstR float64
		histo  [6]int
		skinny int
	}
	id := acc{minA: 180}
	combine := func(x, y acc) acc {
		x.n += y.n
		x.sumMin += y.sumMin
		if y.minA < x.minA {
			x.minA = y.minA
		}
		if y.worstR > x.worstR {
			x.worstR = y.worstR
		}
		for i := range x.histo {
			x.histo[i] += y.histo[i]
		}
		x.skinny += y.skinny
		return x
	}
	total := core.MapReduce(w, len(live), id, func(i int) acc {
		a, b, c := m.TriPoints(live[i])
		ang := minAngleDeg(a, b, c)
		r := RadiusEdgeRatio(a, b, c)
		out := acc{n: 1, minA: ang, sumMin: ang, worstR: r}
		bucket := int(ang / 10)
		if bucket > 5 {
			bucket = 5
		}
		if bucket < 0 {
			bucket = 0
		}
		out.histo[bucket] = 1
		if r > bound {
			out.skinny = 1
		}
		return out
	}, combine)
	qs := QualityStats{
		Triangles:     total.n,
		WorstRatio:    total.worstR,
		AngleHisto:    total.histo,
		SkinnyAtBound: total.skinny,
	}
	if total.n > 0 {
		qs.MinAngleDeg = total.minA
		qs.MeanMinAngle = total.sumMin / float64(total.n)
	}
	return qs
}

func (q QualityStats) String() string {
	return fmt.Sprintf("triangles=%d minAngle=%.1f° meanMinAngle=%.1f° worstRatio=%.2f skinny=%d histo(<10°..≥50°)=%v",
		q.Triangles, q.MinAngleDeg, q.MeanMinAngle, q.WorstRatio, q.SkinnyAtBound, q.AngleHisto)
}
