package graph

// The PR-7 row codec — zigzag first delta, then one LEB128 varint per
// gap, decoded with a branchy continuation-bit loop — kept intact as
// the comparison baseline for the decode-bandwidth benchmark family
// (BenchmarkXLGraphDecode*, docs/GRAPH.md "Compressed CSR"). Nothing
// in the library decodes v1 streams except V1Rows itself: CGraph is
// group-varint only, and mixing the two layouts in one pool would be
// undecodable. The fuzz harness cross-checks the two codecs decode
// every generated row identically.

// encRowSizeV1 returns the v1 encoded byte size of vertex v's sorted
// neighbor row.
func encRowSizeV1(v int32, row []int32) int {
	if len(row) == 0 {
		return 0
	}
	sz := varintLen(zigzag(int64(row[0]) - int64(v)))
	prev := row[0]
	for _, u := range row[1:] {
		sz += varintLen(uint64(uint32(u - prev)))
		prev = u
	}
	return sz
}

// encodeRowV1 encodes vertex v's sorted neighbor row into dst, which
// must be exactly encRowSizeV1(v, row) bytes.
func encodeRowV1(v int32, row []int32, dst []byte) {
	if len(row) == 0 {
		return
	}
	k := putVarint(dst, 0, zigzag(int64(row[0])-int64(v)))
	prev := row[0]
	for _, u := range row[1:] {
		k = putVarint(dst, k, uint64(uint32(u-prev)))
		prev = u
	}
	_ = k
}

// decodeRowV1 decodes vertex v's row from buf into out, which must
// have room for deg entries, and returns out[:deg]. buf is the row's
// exact byte segment — v1 decoding never over-reads, so no slack is
// required.
func decodeRowV1(v int32, buf []byte, deg int32, out []int32) []int32 {
	if deg == 0 {
		return out[:0]
	}
	first, k := getVarint(buf, 0)
	u := int32(int64(v) + unzigzag(first))
	out[0] = u
	for i := int32(1); i < deg; i++ {
		gap, k2 := getVarint(buf, k)
		k = k2
		u += int32(gap)
		out[i] = u
	}
	return out[:deg]
}

// V1Rows is a sorted graph encoded with the v1 scalar codec: the
// decode-bandwidth benchmarks stream it next to the plain CSR and the
// group-varint CGraph to price the codec generations against each
// other.
type V1Rows struct {
	N     int32
	EOffs []int32 // length N+1: edge-rank offsets
	BOffs []int64 // length N+1: byte offsets into Bytes
	Bytes []byte  // length BOffs[N]: v1-encoded rows
}

// EncodeV1 encodes a sorted plain CSR graph with the v1 codec.
// Sequential — it exists for benchmark setup, not production builds.
func EncodeV1(g *Graph) *V1Rows {
	n := int(g.N)
	r := &V1Rows{N: g.N, EOffs: g.Offs, BOffs: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		r.BOffs[v+1] = r.BOffs[v] + int64(encRowSizeV1(int32(v), g.Neighbors(int32(v))))
	}
	r.Bytes = make([]byte, r.BOffs[n])
	for v := 0; v < n; v++ {
		encodeRowV1(int32(v), g.Neighbors(int32(v)), r.Bytes[r.BOffs[v]:r.BOffs[v+1]])
	}
	return r
}

// Degree returns the out-degree of v.
func (r *V1Rows) Degree(v int32) int32 { return r.EOffs[v+1] - r.EOffs[v] }

// RowInto decodes v's row into buf and returns buf[:Degree(v)].
func (r *V1Rows) RowInto(v int32, buf []int32) []int32 {
	return decodeRowV1(v, r.Bytes[r.BOffs[v]:r.BOffs[v+1]], r.Degree(v), buf)
}

// StreamBytes is the encoded byte mass — the numerator of the decode
// GB/s metric.
func (r *V1Rows) StreamBytes() int64 { return r.BOffs[r.N] }
