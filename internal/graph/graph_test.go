package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

var testPool = core.NewPool(4)

func on(f func(w *core.Worker)) { testPool.Do(f) }

func TestBuildCSRSmall(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 0}}
	var g *Graph
	on(func(w *core.Worker) { g = BuildCSR(w, 3, edges) })
	if g.N != 3 || g.M() != 4 {
		t.Fatalf("N=%d M=%d", g.N, g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	seen := map[int32]bool{}
	for _, v := range g.Neighbors(0) {
		seen[v] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("neighbors of 0: %v", g.Neighbors(0))
	}
}

func TestBuildCSRPreservesMultiplicity(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 1}}
	g := BuildCSR(nil, 2, edges)
	if g.Degree(0) != 2 {
		t.Fatalf("multi-edge lost: degree = %d", g.Degree(0))
	}
}

func TestBuildCSRMatchesSequentialProperty(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int32(nRaw%50) + 1
		edges := make([]Edge, len(raw))
		for i, r := range raw {
			edges[i] = Edge{From: int32(r) % n, To: int32(r>>8) % n}
		}
		var g *Graph
		on(func(w *core.Worker) { g = BuildCSR(w, n, edges) })
		// Degree counts must match a sequential tally.
		want := make([]int32, n)
		for _, e := range edges {
			want[e.From]++
		}
		for v := int32(0); v < n; v++ {
			if g.Degree(v) != want[v] {
				return false
			}
		}
		// Every edge must appear exactly once in CSR.
		count := map[Edge]int{}
		for _, e := range edges {
			count[e]++
		}
		for v := int32(0); v < n; v++ {
			for _, u := range g.Neighbors(v) {
				count[Edge{From: v, To: u}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWCSRKeepsWeights(t *testing.T) {
	edges := []WEdge{{0, 1, 5}, {1, 0, 7}, {0, 2, 9}}
	g := BuildWCSR(nil, 3, edges)
	adj, wgt := g.WNeighbors(0)
	if len(adj) != 2 || len(wgt) != 2 {
		t.Fatalf("adj=%v wgt=%v", adj, wgt)
	}
	for i, v := range adj {
		var want uint32
		if v == 1 {
			want = 5
		} else {
			want = 9
		}
		if wgt[i] != want {
			t.Fatalf("weight of edge 0->%d = %d, want %d", v, wgt[i], want)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 0}, {2, 2}, {1, 2}}
	var sym []Edge
	on(func(w *core.Worker) { sym = Symmetrize(w, edges) })
	want := []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}}
	if len(sym) != len(want) {
		t.Fatalf("sym = %v", sym)
	}
	for i := range want {
		if sym[i] != want[i] {
			t.Fatalf("sym = %v, want %v", sym, want)
		}
	}
}

func TestSymmetrizeSelfLoopOnly(t *testing.T) {
	if got := Symmetrize(nil, []Edge{{3, 3}}); len(got) != 0 {
		t.Fatalf("self loop survived: %v", got)
	}
}

func TestRMATShape(t *testing.T) {
	var edges []Edge
	on(func(w *core.Worker) { edges = RMAT(w, 10, 6, 1) })
	n := int32(1 << 10)
	if len(edges) != 6*1024 {
		t.Fatalf("edge count = %d", len(edges))
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			t.Fatalf("edge out of range: %+v", e)
		}
		if e.From == e.To {
			t.Fatalf("self loop survived: %+v", e)
		}
	}
	// RMAT skew: low-id vertices should carry far more than average.
	g := BuildCSR(nil, n, edges)
	stats := ComputeStats(nil, "rmat", g)
	if float64(stats.MaxDegree) < 4*stats.AvgDegree {
		t.Fatalf("rmat not skewed: max=%d avg=%.1f", stats.MaxDegree, stats.AvgDegree)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(nil, 8, 4, 7)
	b := RMAT(nil, 8, 4, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
}

func TestPowerLawShape(t *testing.T) {
	edges := PowerLaw(nil, 2000, 10, 2)
	if len(edges) != 20000 {
		t.Fatalf("edge count = %d", len(edges))
	}
	indeg := make([]int, 2000)
	for _, e := range edges {
		if e.From == e.To {
			t.Fatalf("self loop: %+v", e)
		}
		if e.To < 0 || e.To >= 2000 || e.From < 0 || e.From >= 2000 {
			t.Fatalf("out of range: %+v", e)
		}
		indeg[e.To]++
	}
	// Heavy tail: the top vertex should absorb many times the mean.
	max := 0
	for _, d := range indeg {
		if d > max {
			max = d
		}
	}
	if max < 50 {
		t.Fatalf("power law not skewed: max in-degree %d", max)
	}
}

func TestRoadGridShape(t *testing.T) {
	edges := RoadGrid(nil, 30, 20, 3)
	n := 600
	ratio := float64(len(edges)) / float64(n)
	if ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("|E|/|V| = %.2f, want ~2.4", ratio)
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= int32(n) || e.To < 0 || e.To >= int32(n) || e.From == e.To {
			t.Fatalf("bad edge %+v", e)
		}
	}
}

func TestAddWeightsSymmetricAndBounded(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 0}, {2, 5}, {5, 2}}
	wedges := AddWeights(nil, edges, 100, 9)
	if wedges[0].W != wedges[1].W || wedges[2].W != wedges[3].W {
		t.Fatal("reverse edges got different weights")
	}
	for _, we := range wedges {
		if we.W < 1 || we.W > 100 {
			t.Fatalf("weight %d out of [1,100]", we.W)
		}
	}
}

func TestLoadUndirectedAllInputs(t *testing.T) {
	for _, name := range GraphInputs {
		var g *Graph
		on(func(w *core.Worker) { g = LoadUndirected(w, name, ScaleTest, 1) })
		if g.N == 0 || g.M() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		// Undirected: adjacency must be symmetric.
		for v := int32(0); v < g.N; v++ {
			for _, u := range g.Neighbors(v) {
				found := false
				for _, back := range g.Neighbors(u) {
					if back == v {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: edge %d->%d has no reverse", name, v, u)
				}
			}
		}
	}
}

func TestLoadUndirectedWeightedSymmetricWeights(t *testing.T) {
	var g *WGraph
	on(func(w *core.Worker) { g = LoadUndirectedWeighted(w, InputRoad, ScaleTest, 1) })
	weight := func(u, v int32) (uint32, bool) {
		adj, wgt := g.WNeighbors(u)
		for i, x := range adj {
			if x == v {
				return wgt[i], true
			}
		}
		return 0, false
	}
	for v := int32(0); v < g.N; v++ {
		adj, wgt := g.WNeighbors(v)
		for i, u := range adj {
			back, ok := weight(u, v)
			if !ok || back != wgt[i] {
				t.Fatalf("asymmetric weight on %d-%d", v, u)
			}
		}
	}
}

func TestUndirectedEdgeListHalved(t *testing.T) {
	edges, n := UndirectedEdgeList(nil, InputRoad, ScaleTest, 1)
	if n != 600 {
		t.Fatalf("n = %d", n)
	}
	for _, e := range edges {
		if e.From >= e.To {
			t.Fatalf("edge not canonical: %+v", e)
		}
	}
}

func TestUnknownInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LoadUndirected(nil, "nope", ScaleTest, 1)
}

func TestComputeStatsString(t *testing.T) {
	g := BuildCSR(nil, 3, []Edge{{0, 1}, {0, 2}, {1, 2}})
	s := ComputeStats(nil, "tiny", g)
	if s.V != 3 || s.E != 3 || s.MaxDegree != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestGeneratorsDeterministicAcrossParallelism(t *testing.T) {
	p1 := core.NewPool(1)
	p3 := core.NewPool(3)
	defer p1.Close()
	defer p3.Close()
	var a, b []Edge
	p1.Do(func(w *core.Worker) { a = PowerLaw(w, 1000, 8, 5) })
	p3.Do(func(w *core.Worker) { b = PowerLaw(w, 1000, 8, 5) })
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs across pool sizes", i)
		}
	}
	if c := RoadGrid(nil, 20, 10, 3); len(c) != len(RoadGrid(nil, 20, 10, 3)) {
		t.Fatal("RoadGrid not deterministic")
	}
}

func BenchmarkBuildCSR(b *testing.B) {
	edges := RMAT(nil, 14, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on(func(w *core.Worker) { _ = BuildCSR(w, 1<<14, edges) })
	}
}
