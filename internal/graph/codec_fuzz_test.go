package graph

import (
	"math"
	"slices"
	"testing"
)

// FuzzCodecRoundTrip round-trips fuzzer-shaped sorted rows through the
// group-varint codec and cross-checks the v1 scalar codec on the same
// row. The row is derived from the raw input: gaps are parsed from
// data with self-describing widths (two low bits of a lead byte pick
// 1-4 payload bytes), so the fuzzer can reach every control-tag
// combination — including max-gap groups of 4-byte payloads — and
// first/v are arbitrary int32s, covering adversarial first-neighbor
// deltas in both directions.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int32(5), int32(7), []byte{})                                                 // single-neighbor row
	f.Add(int32(1<<30), int32(0), []byte{0, 1, 0, 2})                                   // huge negative first delta
	f.Add(int32(0), int32(1<<30), []byte{3, 255, 255, 255, 127, 3, 255, 255, 255, 127}) // max-width gaps
	f.Add(int32(3), int32(1),
		[]byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}) // >8 gaps: full group + tail
	f.Add(int32(100), int32(2), []byte{1, 0, 1, 2, 255, 255, 0, 0, 1, 44, 3, 1, 2, 3, 4}) // mixed widths
	f.Fuzz(func(t *testing.T, v, first int32, data []byte) {
		u := first
		if u < 0 {
			u = -(u + 1)
		}
		row := []int32{u}
		for k := 0; k < len(data); {
			width := int(data[k]&3) + 1
			k++
			var gap uint32
			for b := 0; b < width && k < len(data); b++ {
				gap |= uint32(data[k]) << (8 * b)
				k++
			}
			nu := int64(u) + int64(gap)
			if nu > math.MaxInt32 {
				break
			}
			u = int32(nu)
			row = append(row, u)
		}

		sz := encRowSize(v, row)
		buf := make([]byte, sz+codecSlack)
		encodeRow(v, row, buf[:sz])
		out := make([]int32, len(row))
		if got := decodeRow(v, buf, int32(len(row)), out); !slices.Equal(got, row) {
			t.Fatalf("group codec round-trip: got %v, want %v", got, row)
		}

		// The v1 scalar codec must agree on the same row: same decoded
		// neighbors from its own independent encoding.
		sz1 := encRowSizeV1(v, row)
		buf1 := make([]byte, sz1)
		encodeRowV1(v, row, buf1)
		out1 := make([]int32, len(row))
		if got := decodeRowV1(v, buf1, int32(len(row)), out1); !slices.Equal(got, row) {
			t.Fatalf("v1 codec round-trip: got %v, want %v", got, row)
		}
		if sz1 > 0 && sz == 0 {
			t.Fatalf("group codec encodes %d-neighbor row to 0 bytes", len(row))
		}
	})
}
