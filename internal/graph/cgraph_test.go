package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/core"
)

// encodeDecodeRow round-trips one sorted row through the codec.
func encodeDecodeRow(t *testing.T, v int32, row []int32) {
	t.Helper()
	sz := encRowSize(v, row)
	buf := make([]byte, sz+codecSlack) // decodeRow needs the slack pad past the encoding
	encodeRow(v, row, buf[:sz])
	out := make([]int32, len(row))
	got := decodeRow(v, buf, int32(len(row)), out)
	if !slices.Equal(got, row) {
		t.Fatalf("row of %d: decode = %v, want %v", v, got, row)
	}
}

func TestCodecRoundTripBasics(t *testing.T) {
	encodeDecodeRow(t, 5, nil)                      // empty row
	encodeDecodeRow(t, 5, []int32{5})               // self-loop: delta 0
	encodeDecodeRow(t, 0, []int32{0, 0, 0})         // repeated self-loops: zero gaps
	encodeDecodeRow(t, 100, []int32{0})             // negative first delta
	encodeDecodeRow(t, 0, []int32{1 << 30})         // huge positive first delta
	encodeDecodeRow(t, 1<<30, []int32{0, 1 << 30})  // swing down then up
	encodeDecodeRow(t, 3, []int32{1, 2, 3, 4, 127}) // tiny gaps
}

func TestCodecRoundTripAdversarialGaps(t *testing.T) {
	// Rows engineered to straddle every varint width boundary: gaps of
	// exactly 2^7k-1 and 2^7k around each continuation threshold, plus
	// max-id endpoints.
	const maxID = int32(1<<31 - 1)
	rows := [][]int32{
		{0, 127, 128, 255, 256, 16383, 16384, 16385},
		{maxID - 3, maxID - 1, maxID},
		{0, maxID},
		{1, 1, 128, 128, 16384, 16384}, // duplicate neighbors: zero gaps at width boundaries
	}
	for i, row := range rows {
		for _, v := range []int32{0, 1, maxID / 2, maxID} {
			t.Run(fmt.Sprintf("row%d_v%d", i, v), func(t *testing.T) {
				encodeDecodeRow(t, v, row)
			})
		}
	}
}

func TestCodecRoundTripRandomDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(0xc0dec))
	// Three gap regimes: dense (gaps ~ geometric(1/2)), sparse (gaps up
	// to 2^20), and mixed power-law-ish.
	gapFor := []func() int32{
		func() int32 { return int32(r.Intn(3)) },
		func() int32 { return int32(r.Intn(1 << 20)) },
		func() int32 { return int32(1) << r.Intn(21) },
	}
	for regime, gap := range gapFor {
		for trial := 0; trial < 50; trial++ {
			deg := r.Intn(40)
			row := make([]int32, deg)
			u := int32(r.Intn(1000))
			for i := range row {
				row[i] = u
				u += gap()
			}
			v := int32(r.Intn(2000))
			sz := encRowSize(v, row)
			buf := make([]byte, sz+codecSlack)
			encodeRow(v, row, buf[:sz])
			out := make([]int32, deg)
			if got := decodeRow(v, buf, int32(deg), out); !slices.Equal(got, row) {
				t.Fatalf("regime %d trial %d: decode mismatch", regime, trial)
			}
		}
	}
}

func TestVarintWidths(t *testing.T) {
	for _, tc := range []struct {
		u    uint64
		want int
	}{{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3}, {1 << 62, 9}, {^uint64(0), 10}} {
		if got := varintLen(tc.u); got != tc.want {
			t.Errorf("varintLen(%d) = %d, want %d", tc.u, got, tc.want)
		}
		buf := make([]byte, tc.want)
		if k := putVarint(buf, 0, tc.u); k != tc.want {
			t.Errorf("putVarint(%d) wrote %d bytes, want %d", tc.u, k, tc.want)
		}
		if got, k := getVarint(buf, 0); got != tc.u || k != tc.want {
			t.Errorf("getVarint = (%d, %d), want (%d, %d)", got, k, tc.u, tc.want)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, x := range []int64{0, -1, 1, -2, 2, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(x)); got != x {
			t.Errorf("unzigzag(zigzag(%d)) = %d", x, got)
		}
	}
	// Small magnitudes stay small: the property the first-delta encoding
	// relies on.
	if zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(0) != 0 {
		t.Errorf("zigzag ordering broken: %d %d %d", zigzag(0), zigzag(-1), zigzag(1))
	}
}

// compressedInput builds plain sorted and compressed forms of one
// generated input and cross-checks them.
func checkCompressedEquivalence(t *testing.T, g *Graph, c *CGraph) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", c.NumVertices(), c.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	buf := make([]int32, c.MaxDegree())
	for v := int32(0); v < g.N; v++ {
		if got, want := c.Degree(v), g.Degree(v); got != want {
			t.Fatalf("degree(%d) = %d, want %d", v, got, want)
		}
		if got, want := c.RowInto(v, buf), g.Neighbors(v); !slices.Equal(got, want) {
			t.Fatalf("row(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestCompressMatchesPlainOnInputs(t *testing.T) {
	for _, input := range GraphInputs {
		t.Run(input, func(t *testing.T) {
			edges, n := edgesFor(nil, input, ScaleTest, 0xce)
			sym := Symmetrize(nil, edges)
			var b, cb Builder
			g := b.BuildSorted(nil, n, sym)
			c := cb.BuildC(nil, n, sym)
			checkCompressedEquivalence(t, g, c)
		})
	}
}

func TestCompressWeightedAlignsWeights(t *testing.T) {
	edges, n := edgesFor(nil, InputRMAT, ScaleTest, 0xce1)
	sym := Symmetrize(nil, edges)
	wedges := AddWeights(nil, sym, 1<<16, 0xce2)
	var b, cb Builder
	wg := b.BuildWSorted(nil, n, wedges)
	cw := cb.BuildWC(nil, n, wedges)
	checkCompressedEquivalence(t, &wg.Graph, &cw.CGraph)
	buf := make([]int32, cw.MaxDegree())
	for v := int32(0); v < n; v++ {
		adj, wgt := wg.WNeighbors(v)
		cadj, cwgt := cw.WRow(v, buf)
		if !slices.Equal(adj, cadj) || !slices.Equal(wgt, cwgt) {
			t.Fatalf("weighted row(%d) mismatch", v)
		}
	}
}

func TestFindFirstInMatchesScan(t *testing.T) {
	edges, n := edgesFor(nil, InputRMAT, ScaleTest, 0xff1)
	sym := Symmetrize(nil, edges)
	var b, cb Builder
	g := b.BuildSorted(nil, n, sym)
	c := cb.BuildC(nil, n, sym)
	words := (int(n) + 63) / 64
	r := rand.New(rand.NewSource(0xff2))
	for trial := 0; trial < 20; trial++ {
		bm := make([]uint64, words)
		for i := range bm {
			bm[i] = r.Uint64() & r.Uint64() & r.Uint64() // sparse-ish
		}
		for v := int32(0); v < n; v++ {
			want := int32(-1)
			for _, u := range g.Neighbors(v) {
				if bm[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
					want = u
					break
				}
			}
			if got := g.FindFirstIn(v, bm); got != want {
				t.Fatalf("plain FindFirstIn(%d) = %d, want %d", v, got, want)
			}
			if got := c.FindFirstIn(v, bm); got != want {
				t.Fatalf("compressed FindFirstIn(%d) = %d, want %d", v, got, want)
			}
		}
	}
}

// TestFindFirstInGroupBoundaries is the group-skipping property test:
// rows whose lengths straddle every group boundary (full groups, full
// groups plus a scalar tail, tail-only), with gap widths cycling
// through 1-, 2-, and 3-byte payloads, probed at every neighbor
// position and at no position, against the plain linear scan.
func TestFindFirstInGroupBoundaries(t *testing.T) {
	gaps := []int32{1, 300, 70_000, 3}
	for _, deg := range []int{1, 2, 7, 8, 9, 10, 15, 16, 17, 24, 25, 33} {
		row := make([]int32, deg)
		u := int32(5)
		for i := range row {
			row[i] = u
			u += gaps[i%len(gaps)]
		}
		n := u + 1
		edges := make([]Edge, deg)
		for i, nb := range row {
			edges[i] = Edge{From: 0, To: nb}
		}
		var b, cb Builder
		g := b.BuildSorted(nil, n, edges)
		c := cb.BuildC(nil, n, edges)
		words := (int(n) + 63) / 64
		bm := make([]uint64, words)
		probe := func() {
			want := g.FindFirstIn(0, bm)
			if got := c.FindFirstIn(0, bm); got != want {
				t.Fatalf("deg %d: compressed FindFirstIn = %d, want %d", deg, got, want)
			}
		}
		probe() // empty bitmap: both must miss
		for j := deg - 1; j >= 0; j-- {
			// Set positions back to front, so the expected hit walks
			// through every group and tail position.
			bm[uint32(row[j])>>6] |= 1 << (uint32(row[j]) & 63)
			probe()
		}
	}
}

// TestCompressTransposeSharedPool pins the pool-sharing contract:
// after CompressTranspose, forward and transpose alias one byte pool,
// the transpose's offsets are absolute (based at the forward stream's
// end), both validate, the forward rows decode exactly as before the
// append, and FootprintBytes charges each direction only its own span.
func TestCompressTransposeSharedPool(t *testing.T) {
	edges, n := edgesFor(nil, InputRMAT, ScaleTest, 0x9e)
	sym := Symmetrize(nil, edges)
	var b, tb, solo Builder
	g := b.BuildSorted(nil, n, sym)
	cg := b.Compress(nil, g)
	ref := solo.BuildC(nil, n, sym) // forward-only compress for comparison
	tg := tb.Transpose(nil, g)
	SortAdjacency(nil, tg)
	ctg := b.CompressTranspose(nil, tg)

	if &cg.Bytes[0] != &ctg.Bytes[0] || len(cg.Bytes) != len(ctg.Bytes) {
		t.Fatal("forward and transpose do not alias one pool")
	}
	if ctg.BOffs[0] != cg.BOffs[cg.N] {
		t.Fatalf("transpose base %d, want forward end %d", ctg.BOffs[0], cg.BOffs[cg.N])
	}
	wantLen := int(ctg.BOffs[ctg.N]) + codecSlack
	if len(cg.Bytes) != wantLen {
		t.Fatalf("pool has %d bytes, want %d (transpose end + slack)", len(cg.Bytes), wantLen)
	}
	if err := cg.Validate(); err != nil {
		t.Fatalf("forward after append: %v", err)
	}
	if err := ctg.Validate(); err != nil {
		t.Fatalf("transpose: %v", err)
	}
	checkCompressedEquivalence(t, g, cg)
	checkCompressedEquivalence(t, tg, ctg)
	// The append must not disturb the forward encoding.
	if !bytes.Equal(cg.Bytes[:cg.BOffs[cg.N]], ref.Bytes[:ref.BOffs[ref.N]]) {
		t.Fatal("forward stream changed by the transpose append")
	}
	// Footprint: each direction charges its own byte span, so the pair's
	// stream mass sums to the pool minus the single slack pad.
	offsBytes := int64(n+1)*4 + int64(n+1)*8
	sum := (cg.FootprintBytes() - offsBytes) + (ctg.FootprintBytes() - offsBytes)
	if sum != int64(len(cg.Bytes)-codecSlack) {
		t.Fatalf("direction spans sum to %d, pool holds %d", sum, len(cg.Bytes)-codecSlack)
	}
}

func TestShardsCoverAndAlign(t *testing.T) {
	edges, n := edgesFor(nil, InputLink, ScaleTest, 0x5a)
	sym := Symmetrize(nil, edges)
	var cb Builder
	c := cb.BuildC(nil, n, sym)
	shards := c.Shards
	if len(shards) == 0 {
		t.Fatal("no shards")
	}
	if shards[0].Lo != 0 || shards[len(shards)-1].Hi != n {
		t.Fatalf("shards do not cover [0, %d): %v", n, shards)
	}
	for i, s := range shards {
		if s.Lo >= s.Hi {
			t.Fatalf("empty shard %d: %+v", i, s)
		}
		if s.Lo%64 != 0 {
			t.Fatalf("shard %d starts at %d, not 64-aligned", i, s.Lo)
		}
		if i > 0 && shards[i-1].Hi != s.Lo {
			t.Fatalf("gap between shard %d and %d", i-1, i)
		}
	}
	// A generic adjacency gets the same partition.
	if got := ShardsOf(c, nil); !slices.Equal(got, shards) {
		t.Fatalf("ShardsOf disagrees with stored shards")
	}
}

// TestBuildDeterministicAcrossWorkers is the determinism pin: the
// sorted CSR arrays and the compressed byte stream must be
// byte-identical whatever the worker count, protecting the
// golden-pinned census and benchmarks from nondeterministic rebuilds.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	type snap struct {
		offs, adj []int32
		boffs     []int64
		tboffs    []int64
		enc       []byte
	}
	build := func(workers int) snap {
		pool := core.NewPool(workers)
		defer pool.Close()
		var s snap
		pool.Do(func(w *core.Worker) {
			edges, n := edgesFor(w, InputRMAT, ScaleTest, 0xdef)
			sym := Symmetrize(w, edges)
			var b, tb Builder
			c := b.BuildC(w, n, sym)
			tg := tb.Transpose(w, &b.g)
			SortAdjacency(w, tg)
			ct := b.CompressTranspose(w, tg)
			s.offs = slices.Clone(c.EOffs)
			s.boffs = slices.Clone(c.BOffs)
			s.tboffs = slices.Clone(ct.BOffs)
			s.enc = slices.Clone(c.Bytes) // the whole shared pool, both directions
			s.adj = slices.Clone(b.g.Adj)
		})
		return s
	}
	base := build(1)
	for _, workers := range []int{2, 4} {
		got := build(workers)
		if !slices.Equal(base.offs, got.offs) || !slices.Equal(base.adj, got.adj) {
			t.Fatalf("sorted CSR differs between 1 and %d workers", workers)
		}
		if !slices.Equal(base.boffs, got.boffs) || !bytes.Equal(base.enc, got.enc) {
			t.Fatalf("CGraph bytes differ between 1 and %d workers", workers)
		}
		if !slices.Equal(base.tboffs, got.tboffs) {
			t.Fatalf("transpose byte offsets differ between 1 and %d workers", workers)
		}
	}
}

func TestSortAdjacencyPermutationProperty(t *testing.T) {
	edges, n := edgesFor(nil, InputRMAT, ScaleTest, 0xabc)
	sym := Symmetrize(nil, edges)
	var a, s Builder
	plain := a.Build(nil, n, sym)
	sorted := s.BuildSorted(nil, n, sym)
	if !slices.Equal(plain.Offs[:n+1], sorted.Offs[:n+1]) {
		t.Fatal("sorting changed row extents")
	}
	for v := int32(0); v < n; v++ {
		row := sorted.Neighbors(v)
		if !slices.IsSorted(row) {
			t.Fatalf("row %d not sorted: %v", v, row)
		}
		unsorted := slices.Clone(plain.Neighbors(v))
		slices.Sort(unsorted)
		if !slices.Equal(unsorted, row) {
			t.Fatalf("row %d is not a permutation of the unsorted row", v)
		}
	}
}

func TestSortAdjacencyWKeepsPairs(t *testing.T) {
	edges, n := edgesFor(nil, InputRMAT, ScaleTest, 0xabd)
	sym := Symmetrize(nil, edges)
	wedges := AddWeights(nil, sym, 1<<16, 0xabe)
	var a, s Builder
	plain := a.BuildW(nil, n, wedges)
	sorted := s.BuildWSorted(nil, n, wedges)
	pairKey := func(u int32, w uint32) uint64 { return uint64(uint32(u))<<32 | uint64(w) }
	for v := int32(0); v < n; v++ {
		adj, wgt := sorted.WNeighbors(v)
		if !slices.IsSorted(adj) {
			t.Fatalf("row %d not sorted", v)
		}
		var got, want []uint64
		for i, u := range adj {
			got = append(got, pairKey(u, wgt[i]))
		}
		padj, pwgt := plain.WNeighbors(v)
		for i, u := range padj {
			want = append(want, pairKey(u, pwgt[i]))
		}
		slices.Sort(got)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("row %d: weight pairing broken by the co-sort", v)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	edges, n := edgesFor(nil, InputRMAT, ScaleTest, 0xbad)
	sym := Symmetrize(nil, edges)
	var cb Builder
	c := cb.BuildC(nil, n, sym)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	// Truncate the stream: the final row must not decode to its boundary.
	trunc := *c
	trunc.Bytes = slices.Clone(c.Bytes)
	trunc.BOffs = slices.Clone(c.BOffs)
	trunc.BOffs[n]++
	if err := trunc.Validate(); err == nil {
		t.Fatal("inflated byte-offset total passed validation")
	}
	// Corrupt a gap into an out-of-range id: pick the last byte of a
	// nonempty row and blow up its payload.
	var v int32
	for v = 0; v < n && c.Degree(v) == 0; v++ {
	}
	corrupt := *c
	corrupt.Bytes = slices.Clone(c.Bytes)
	corrupt.BOffs = c.BOffs
	// Rewrite row v's first varint to a huge delta that exceeds N.
	seg := corrupt.Bytes[corrupt.BOffs[v]:corrupt.BOffs[v+1]]
	if len(seg) >= 5 {
		for i := 0; i < 4; i++ {
			seg[i] = 0xff
		}
		seg[4] = 0x0f
		if err := corrupt.Validate(); err == nil {
			t.Fatal("out-of-range neighbor passed validation")
		}
	}
}

func TestBuilderValidatesEndpoints(t *testing.T) {
	for _, tc := range []struct {
		name  string
		edges []Edge
	}{
		{"to-too-big", []Edge{{0, 1}, {1, 9}}},
		{"from-negative", []Edge{{-2, 1}}},
		{"from-too-big", []Edge{{4, 0}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic for out-of-range endpoint")
				}
				msg := fmt.Sprint(r)
				if !bytes.Contains([]byte(msg), []byte("endpoint outside")) {
					t.Fatalf("panic does not name the edge: %v", msg)
				}
			}()
			var b Builder
			b.Build(nil, 4, tc.edges)
		})
	}
	// The weighted path validates too.
	defer func() {
		if recover() == nil {
			t.Fatal("BuildW accepted an out-of-range endpoint")
		}
	}()
	var b Builder
	b.BuildW(nil, 4, []WEdge{{From: 0, To: 17, W: 1}})
}

func TestBuilderEdgeOverflowGuard(t *testing.T) {
	old := edgeLimit
	edgeLimit = 4
	defer func() { edgeLimit = old }()
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	var b Builder
	if g := b.Build(nil, 4, edges); g.M() != 4 {
		t.Fatal("limit-sized build failed")
	}
	edges = append(edges, Edge{0, 2})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic past the injected edge limit")
		}
		if !bytes.Contains([]byte(fmt.Sprint(r)), []byte("offsets would overflow")) {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	b.Build(nil, 4, edges)
}
