// Package graph provides the compressed-sparse-row graph substrate the
// PBBS graph benchmarks run on, plus synthetic generators standing in
// for the paper's inputs (Table 2): a power-law generator for the
// Hyperlink-like "link" input, an R-MAT generator with Graph500
// parameters for "rmat", and a grid-with-shortcuts generator for the
// road-network-like "road" input.
package graph

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seqgen"
)

// Edge is a directed edge (From -> To).
type Edge struct{ From, To int32 }

// Graph is an unweighted graph in CSR form. Vertex v's out-neighbors are
// Adj[Offs[v]:Offs[v+1]]. Offsets are int32, limiting graphs to 2^31-1
// edges — far beyond the scale of this reproduction.
type Graph struct {
	N    int32
	Offs []int32 // length N+1
	Adj  []int32 // length Offs[N]
}

// M returns the number of (directed) edges stored.
func (g *Graph) M() int32 { return g.Offs[g.N] }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int32) int32 { return g.Offs[v+1] - g.Offs[v] }

// Neighbors returns the out-neighbor slice of v. Callers must not
// mutate it.
func (g *Graph) Neighbors(v int32) []int32 { return g.Adj[g.Offs[v]:g.Offs[v+1]] }

// WGraph is a weighted graph in CSR form; Wgt[i] is the weight of edge
// Adj[i].
type WGraph struct {
	Graph
	Wgt []uint32
}

// WNeighbors returns the neighbor and weight slices of v.
func (g *WGraph) WNeighbors(v int32) ([]int32, []uint32) {
	lo, hi := g.Offs[v], g.Offs[v+1]
	return g.Adj[lo:hi], g.Wgt[lo:hi]
}

// BuildCSR builds a CSR graph from a directed edge list with a
// one-shot Builder; see Builder for the counting-sort pipeline and the
// 0-alloc reusable form.
func BuildCSR(w *core.Worker, n int32, edges []Edge) *Graph {
	var b Builder
	return b.Build(w, n, edges)
}

// WEdge is a weighted directed edge.
type WEdge struct {
	From, To int32
	W        uint32
}

// BuildWCSR builds a weighted CSR graph from a weighted edge list with
// a one-shot Builder.
func BuildWCSR(w *core.Worker, n int32, edges []WEdge) *WGraph {
	var b Builder
	return b.BuildW(w, n, edges)
}

// Symmetrize returns the undirected edge list of edges: each (u,v) with
// u != v contributes (u,v) and (v,u), with exact duplicates removed.
func Symmetrize(w *core.Worker, edges []Edge) []Edge {
	both := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		both = append(both, e, Edge{From: e.To, To: e.From})
	}
	core.SortBy(w, both, func(a, b Edge) bool {
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	out := both[:0]
	for i, e := range both {
		if i > 0 && e == both[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Stats summarizes a generated input for the Table 2 reproduction.
type Stats struct {
	Name      string
	V         int32
	E         int32 // directed edges stored
	AvgDegree float64
	MaxDegree int32
}

// ComputeStats derives Table 2 statistics from a graph.
func ComputeStats(w *core.Worker, name string, g *Graph) Stats {
	maxDeg := core.MapReduce(w, int(g.N), int32(0),
		func(v int) int32 { return g.Degree(int32(v)) },
		func(a, b int32) int32 {
			if a > b {
				return a
			}
			return b
		})
	return Stats{
		Name:      name,
		V:         g.N,
		E:         g.M(),
		AvgDegree: float64(g.M()) / float64(g.N),
		MaxDegree: maxDeg,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%-6s |V|=%-9d |E|=%-10d |E|/|V|=%.1f maxdeg=%d",
		s.Name, s.V, s.E, s.AvgDegree, s.MaxDegree)
}

// RMAT generates an R-MAT edge list with 2^scale vertices and about
// edgeFactor * 2^scale edges, using the standard Graph500 partition
// probabilities (a=0.57, b=0.19, c=0.19). Self-loops are filtered.
func RMAT(w *core.Worker, scale, edgeFactor int, seed uint64) []Edge {
	n := 1 << scale
	m := edgeFactor * n
	r := seqgen.NewRng(seed)
	edges := make([]Edge, m)
	core.ForEachIdx(w, edges, 0, func(i int, e *Edge) {
		var u, v int
		draw := uint64(i) * uint64(scale+1)
		for {
			u, v = 0, 0
			for level := 0; level < scale; level++ {
				p := r.Float64(draw + uint64(level))
				switch {
				case p < 0.57: // a: top-left
				case p < 0.76: // b: top-right
					v |= 1 << level
				case p < 0.95: // c: bottom-left
					u |= 1 << level
				default: // d: bottom-right
					u |= 1 << level
					v |= 1 << level
				}
			}
			if u != v {
				break
			}
			draw += uint64(scale) + 1000003
		}
		*e = Edge{From: int32(u), To: int32(v)}
	})
	return edges
}

// PowerLaw generates a link-graph-like edge list over n vertices with
// about n*avgDeg edges whose in-degrees follow a heavy-tailed (Zipf-ish)
// distribution, standing in for the Hyperlink2012 input. Sources are
// uniform; destinations are drawn by inverse-power sampling.
func PowerLaw(w *core.Worker, n, avgDeg int, seed uint64) []Edge {
	m := n * avgDeg
	r := seqgen.NewRng(seed)
	edges := make([]Edge, m)
	core.ForEachIdx(w, edges, 0, func(i int, e *Edge) {
		draw := uint64(i) * 3
		u := int32(r.Intn(draw, n))
		uu := r.Float64(draw + 1)
		// Zipf-like: v ~ floor(n * u^3) concentrates edges on low ids.
		v := int32(float64(n) * uu * uu * uu)
		if v >= int32(n) {
			v = int32(n) - 1
		}
		if v == u {
			v = int32(r.Intn(draw+2, n))
			if v == u {
				v = (u + 1) % int32(n)
			}
		}
		*e = Edge{From: u, To: v}
	})
	return edges
}

// RoadGrid generates a road-network-like edge list: a w x h grid where
// each vertex links to its right and down neighbors, plus a sprinkle of
// random "shortcut" edges (highways). The directed |E|/|V| ratio is
// about 2.4, matching Table 2's road input.
func RoadGrid(wk *core.Worker, width, height int, seed uint64) []Edge {
	n := width * height
	r := seqgen.NewRng(seed)
	var edges []Edge
	// Grid edges: right and down, ~2 per vertex.
	est := 2*n + n/2
	edges = make([]Edge, 0, est)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := int32(y*width + x)
			if x+1 < width {
				edges = append(edges, Edge{From: v, To: v + 1})
			}
			if y+1 < height {
				edges = append(edges, Edge{From: v, To: v + int32(width)})
			}
		}
	}
	// Shortcuts: ~0.4 per vertex to nearby vertices.
	shortcuts := (2 * n) / 5
	for i := 0; i < shortcuts; i++ {
		u := int32(r.Intn(uint64(2*i), n))
		// Jump a bounded distance to preserve road-like diameter.
		jump := r.Intn(uint64(2*i+1), 10*width) - 5*width
		v := u + int32(jump)
		if v < 0 || v >= int32(n) || v == u {
			continue
		}
		edges = append(edges, Edge{From: u, To: v})
	}
	_ = wk
	return edges
}

// AddWeights attaches deterministic pseudo-random weights in [1, maxW]
// to an edge list.
func AddWeights(w *core.Worker, edges []Edge, maxW uint32, seed uint64) []WEdge {
	r := seqgen.NewRng(seed)
	out := make([]WEdge, len(edges))
	core.ForEachIdx(w, out, 0, func(i int, we *WEdge) {
		e := edges[i]
		// Weight depends on the endpoints, not the list position, so the
		// reverse edge (v,u) gets the same weight — keeping symmetrized
		// graphs consistent for MSF/SSSP.
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		h := seqgen.Hash64(uint64(a)<<32 | uint64(uint32(b)))
		*we = WEdge{From: e.From, To: e.To, W: uint32(r.U64(h)%uint64(maxW)) + 1}
	})
	return out
}
