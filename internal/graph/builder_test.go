package graph

import (
	"testing"
	"testing/quick"
)

func TestTransposeSmallDirected(t *testing.T) {
	// 0->1, 0->2, 2->1: transpose is 1->0, 2->0, 1->2.
	g := BuildCSR(nil, 3, []Edge{{0, 1}, {0, 2}, {2, 1}})
	var b Builder
	tg := b.Transpose(nil, g)
	if tg.N != 3 || tg.M() != 3 {
		t.Fatalf("N=%d M=%d", tg.N, tg.M())
	}
	wantDeg := []int32{0, 2, 1}
	for v := int32(0); v < 3; v++ {
		if tg.Degree(v) != wantDeg[v] {
			t.Fatalf("in-degree of %d = %d, want %d", v, tg.Degree(v), wantDeg[v])
		}
	}
	if ns := tg.Neighbors(2); len(ns) != 1 || ns[0] != 0 {
		t.Fatalf("in-neighbors of 2 = %v", ns)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	// Transposing twice recovers the original edge multiset.
	f := func(raw []uint16, nRaw uint8) bool {
		n := int32(nRaw%40) + 1
		edges := make([]Edge, len(raw))
		for i, r := range raw {
			edges[i] = Edge{From: int32(r) % n, To: int32(r>>8) % n}
		}
		g := BuildCSR(nil, n, edges)
		var b1, b2 Builder
		tg := b1.Transpose(nil, g)
		back := b2.Transpose(nil, tg)
		count := map[Edge]int{}
		for _, e := range edges {
			count[e]++
		}
		for v := int32(0); v < n; v++ {
			for _, u := range back.Neighbors(v) {
				count[Edge{From: v, To: u}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderReuseZeroSteadyGrowth pins the point of the Builder: a
// second Build of the same shape must reuse every buffer, so the
// returned graph aliases the first one's storage.
func TestBuilderReuseAliasesBuffers(t *testing.T) {
	edges := RMAT(nil, 8, 4, 3)
	var b Builder
	g1 := b.Build(nil, 1<<8, edges)
	adj1 := &g1.Adj[0]
	g2 := b.Build(nil, 1<<8, edges)
	if &g2.Adj[0] != adj1 {
		t.Fatal("rebuild did not reuse the adjacency buffer")
	}
	// And the rebuild must still be correct.
	want := make([]int32, 1<<8)
	for _, e := range edges {
		want[e.From]++
	}
	for v := int32(0); v < 1<<8; v++ {
		if g2.Degree(v) != want[v] {
			t.Fatalf("degree %d = %d, want %d", v, g2.Degree(v), want[v])
		}
	}
}

func TestBuilderBuildWMatchesBuildWCSR(t *testing.T) {
	edges := []WEdge{{0, 1, 5}, {1, 0, 7}, {0, 2, 9}, {2, 1, 3}}
	var b Builder
	g := b.BuildW(nil, 3, edges)
	ref := BuildWCSR(nil, 3, edges)
	if g.M() != ref.M() {
		t.Fatalf("M=%d want %d", g.M(), ref.M())
	}
	for v := int32(0); v < 3; v++ {
		adj, wgt := g.WNeighbors(v)
		sum := uint32(0)
		for i := range adj {
			sum += uint32(adj[i]) + wgt[i]
		}
		radj, rwgt := ref.WNeighbors(v)
		rsum := uint32(0)
		for i := range radj {
			rsum += uint32(radj[i]) + rwgt[i]
		}
		if sum != rsum || len(adj) != len(radj) {
			t.Fatalf("vertex %d: adjacency mismatch", v)
		}
	}
}
