package graph

import "repro/internal/core"

// InputScale selects how large the standard inputs are. The paper's
// graphs (Table 2) have 24M-101M vertices; this reproduction defaults to
// a container-friendly scale that preserves each input's degree
// distribution and |E|/|V| ratio.
type InputScale int

const (
	// ScaleTest is for unit tests: thousands of edges.
	ScaleTest InputScale = iota
	// ScaleSmall is for quick runs: hundreds of thousands of edges.
	ScaleSmall
	// ScaleDefault is the evaluation scale: millions of edges.
	ScaleDefault
	// ScaleLarge is the beyond-LLC tier (make bench-graph-xl): tens of
	// millions of edges, sized so the plain CSR working set of one
	// traversal direction exceeds last-level cache while the compressed
	// form (docs/GRAPH.md "Compressed CSR") stays resident.
	ScaleLarge
)

// Input names the three standard graph inputs of Table 2.
const (
	InputLink = "link"
	InputRMAT = "rmat"
	InputRoad = "road"
)

// GraphInputs lists the standard input names.
var GraphInputs = []string{InputLink, InputRMAT, InputRoad}

// edgesFor generates the directed edge list of a named input.
func edgesFor(w *core.Worker, name string, scale InputScale, seed uint64) ([]Edge, int32) {
	switch name {
	case InputLink:
		var n, deg int
		switch scale {
		case ScaleTest:
			n, deg = 500, 8
		case ScaleSmall:
			n, deg = 20_000, 20
		case ScaleLarge:
			n, deg = 600_000, 40
		default:
			n, deg = 100_000, 20
		}
		return PowerLaw(w, n, deg, seed), int32(n)
	case InputRMAT:
		var sc, ef int
		switch scale {
		case ScaleTest:
			sc, ef = 9, 6
		case ScaleSmall:
			sc, ef = 14, 6
		case ScaleLarge:
			// Dense: the average gap between sorted neighbors stays in
			// varint one-to-two-byte range, the regime the codec targets.
			sc, ef = 18, 128
		default:
			sc, ef = 17, 6
		}
		return RMAT(w, sc, ef, seed), int32(1 << sc)
	case InputRoad:
		var gw, gh int
		switch scale {
		case ScaleTest:
			gw, gh = 30, 20
		case ScaleSmall:
			gw, gh = 160, 150
		case ScaleLarge:
			gw, gh = 3200, 3200
		default:
			gw, gh = 500, 400
		}
		return RoadGrid(w, gw, gh, seed), int32(gw * gh)
	}
	panic("graph: unknown input " + name)
}

// LoadUndirected builds the symmetrized CSR form of a named input, as
// used by mis, mm, sf, msf, bfs and sssp.
func LoadUndirected(w *core.Worker, name string, scale InputScale, seed uint64) *Graph {
	edges, n := edgesFor(w, name, scale, seed)
	sym := Symmetrize(w, edges)
	return BuildCSR(w, n, sym)
}

// LoadUndirectedWeighted builds the symmetrized weighted CSR form of a
// named input (msf, sssp). Weights are symmetric: (u,v) and (v,u) carry
// the same weight.
func LoadUndirectedWeighted(w *core.Worker, name string, scale InputScale, seed uint64) *WGraph {
	edges, n := edgesFor(w, name, scale, seed)
	sym := Symmetrize(w, edges)
	wedges := AddWeights(w, sym, 1<<16, seed+1)
	return BuildWCSR(w, n, wedges)
}

// LoadUndirectedSorted is LoadUndirected with every row sorted — the
// canonical layout Compress starts from, used when comparing
// representations at identical row order.
func LoadUndirectedSorted(w *core.Worker, name string, scale InputScale, seed uint64) *Graph {
	edges, n := edgesFor(w, name, scale, seed)
	sym := Symmetrize(w, edges)
	var b Builder
	return b.BuildSorted(w, n, sym)
}

// loadCompressed is the one compress-after-load pipeline behind every
// compressed loader: generate, symmetrize, weight (when weighted),
// build sorted, compress — and, when withTranspose is set, build the
// sorted transpose in a second Builder and append it to the forward
// graph's byte pool via CompressTranspose. This is the single place
// the transpose-sharing option is applied, so every loader variant
// gets the same pool layout. Exactly one of (cg, ctg) or (cw, ctw) is
// populated, by weighted; the transpose results are nil unless
// withTranspose.
func loadCompressed(w *core.Worker, name string, scale InputScale, seed uint64, weighted, withTranspose bool) (cg, ctg *CGraph, cw, ctw *CWGraph) {
	edges, n := edgesFor(w, name, scale, seed)
	sym := Symmetrize(w, edges)
	var b, tb Builder
	if !weighted {
		g := b.BuildSorted(w, n, sym)
		cg = b.Compress(w, g)
		if withTranspose {
			tg := tb.Transpose(w, g)
			SortAdjacency(w, tg)
			ctg = b.CompressTranspose(w, tg)
		}
		return
	}
	wedges := AddWeights(w, sym, 1<<16, seed+1)
	wg := b.BuildWSorted(w, n, wedges)
	cw = b.CompressW(w, wg)
	if withTranspose {
		twg := tb.TransposeW(w, wg)
		SortAdjacencyW(w, twg)
		ctw = b.CompressTransposeW(w, twg)
	}
	return
}

// LoadUndirectedC builds the compressed CSR form of a named input. The
// returned CGraph owns its (Builder-backed) buffers for the caller's
// lifetime.
func LoadUndirectedC(w *core.Worker, name string, scale InputScale, seed uint64) *CGraph {
	cg, _, _, _ := loadCompressed(w, name, scale, seed, false, false)
	return cg
}

// LoadUndirectedCT is LoadUndirectedC plus the compressed transpose,
// sharing one byte pool with the forward graph — the pair the hybrid
// BFS traverses. The inputs are symmetric, so the transpose carries
// the same rows; building it for real keeps the bottom-up path honest
// about its second direction's byte mass.
func LoadUndirectedCT(w *core.Worker, name string, scale InputScale, seed uint64) (*CGraph, *CGraph) {
	cg, ctg, _, _ := loadCompressed(w, name, scale, seed, false, true)
	return cg, ctg
}

// LoadUndirectedWeightedC builds the compressed weighted form with the
// same weights as LoadUndirectedWeighted (AddWeights keys on the edge,
// not the row order, so the two loaders agree per edge).
func LoadUndirectedWeightedC(w *core.Worker, name string, scale InputScale, seed uint64) *CWGraph {
	_, _, cw, _ := loadCompressed(w, name, scale, seed, true, false)
	return cw
}

// LoadUndirectedWeightedCT is LoadUndirectedWeightedC plus the
// compressed weighted transpose (pool-sharing, weights aliased in
// sorted in-edge order) — the pair the SSSP pull rounds relax.
func LoadUndirectedWeightedCT(w *core.Worker, name string, scale InputScale, seed uint64) (*CWGraph, *CWGraph) {
	_, _, cw, ctw := loadCompressed(w, name, scale, seed, true, true)
	return cw, ctw
}

// UndirectedEdgeList returns the symmetrized edge list with each
// undirected edge appearing once (From < To), as consumed by mm and msf.
func UndirectedEdgeList(w *core.Worker, name string, scale InputScale, seed uint64) ([]Edge, int32) {
	edges, n := edgesFor(w, name, scale, seed)
	sym := Symmetrize(w, edges)
	once := sym[:0]
	for _, e := range sym {
		if e.From < e.To {
			once = append(once, e)
		}
	}
	return once, n
}
