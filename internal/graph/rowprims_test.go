package graph

import (
	"testing"
)

func setBit(bm []uint64, u int32)   { bm[uint32(u)>>6] |= 1 << (uint32(u) & 63) }
func clearBit(bm []uint64, u int32) { bm[uint32(u)>>6] &^= 1 << (uint32(u) & 63) }

// Edge-shape coverage for the three row primitives the analytics
// kernels sit on — RowInto, FindFirstIn, CountIn — on the row shapes
// the codec's fast paths treat specially: degree-0 vertices (no first
// varint at all), rows of exactly one control group, and rows on both
// sides of shard boundaries, where the 64-aligned split must not
// disturb the per-row byte offsets the decoder seeks by.

// singleGroupGraph builds a directed graph whose non-empty rows are
// exactly one group wide (first varint + 8 grouped gaps = 9 neighbors)
// with degree-0 rows sprinkled through, sized so the compressed form
// spans several shards.
func singleGroupGraph(t *testing.T) (*Graph, *CGraph) {
	t.Helper()
	const n = 96 << 10
	edges := make([]Edge, 0, n*9)
	for v := int32(0); v < n; v++ {
		if v%17 == 0 {
			continue // degree-0 row
		}
		for j := int32(0); j < 9; j++ {
			edges = append(edges, Edge{From: v, To: (v + 64*j + 1) % n})
		}
	}
	var b Builder
	g := b.BuildSorted(nil, n, edges)
	var cb Builder
	cg := cb.Compress(nil, g)
	if len(cg.Shards) < 2 {
		t.Fatalf("want multiple shards, got %d", len(cg.Shards))
	}
	return g, cg
}

func TestRowPrimitivesDegreeZeroAndSingleGroup(t *testing.T) {
	g, cg := singleGroupGraph(t)
	n := g.NumVertices()
	words := (int(n) + 63) / 64
	bm := make([]uint64, words)
	pbuf := make([]int32, g.MaxDegree())
	cbuf := make([]int32, cg.MaxDegree())
	for v := int32(0); v < n; v++ {
		prow := g.RowInto(v, pbuf)
		crow := cg.RowInto(v, cbuf)
		if len(prow) != len(crow) {
			t.Fatalf("row %d: len %d vs %d", v, len(prow), len(crow))
		}
		for i := range prow {
			if prow[i] != crow[i] {
				t.Fatalf("row %d[%d]: %d vs %d", v, i, prow[i], crow[i])
			}
		}
		if v%17 == 0 {
			if len(crow) != 0 {
				t.Fatalf("row %d: want degree 0, got %d", v, len(crow))
			}
		} else if len(crow) != 9 {
			t.Fatalf("row %d: want single-group degree 9, got %d", v, len(crow))
		}

		// Empty bitmap: no hit, count 0 — and for degree-0 rows this
		// holds for every bitmap.
		if got := cg.FindFirstIn(v, bm); got != -1 {
			t.Fatalf("row %d: FindFirstIn on empty bitmap = %d", v, got)
		}
		if got := cg.CountIn(v, bm); got != 0 {
			t.Fatalf("row %d: CountIn on empty bitmap = %d", v, got)
		}
		if len(crow) == 0 {
			continue
		}
		// Only the last neighbor set: FindFirstIn must decode through
		// the whole group to the final gap.
		last := crow[len(crow)-1]
		setBit(bm, last)
		if got := cg.FindFirstIn(v, bm); got != last {
			t.Fatalf("row %d: FindFirstIn(last) = %d, want %d", v, got, last)
		}
		if got, want := cg.CountIn(v, bm), g.CountIn(v, bm); got != want {
			t.Fatalf("row %d: CountIn(last) = %d, want %d", v, got, want)
		}
		clearBit(bm, last)
		// All neighbors set: first gap must hit.
		for _, u := range crow {
			setBit(bm, u)
		}
		if got := cg.FindFirstIn(v, bm); got != crow[0] {
			t.Fatalf("row %d: FindFirstIn(all) = %d, want %d", v, got, crow[0])
		}
		if got := cg.CountIn(v, bm); got != int64(len(crow)) {
			t.Fatalf("row %d: CountIn(all) = %d, want %d", v, got, len(crow))
		}
		for _, u := range crow {
			clearBit(bm, u)
		}
	}
}

// TestRowPrimitivesAtShardBoundaries checks the vertices straddling
// every shard split: the last row of one shard and the first row of the
// next must decode, probe, and count identically to plain CSR, and the
// splits themselves must be 64-aligned and cover [0, n).
func TestRowPrimitivesAtShardBoundaries(t *testing.T) {
	g, cg := singleGroupGraph(t)
	n := g.NumVertices()
	words := (int(n) + 63) / 64
	bm := make([]uint64, words)
	for i := range bm {
		bm[i] = 0x9249249249249249 // every third vertex
	}
	pbuf := make([]int32, g.MaxDegree())
	cbuf := make([]int32, cg.MaxDegree())
	if lo := cg.Shards[0].Lo; lo != 0 {
		t.Fatalf("first shard starts at %d", lo)
	}
	if hi := cg.Shards[len(cg.Shards)-1].Hi; hi != n {
		t.Fatalf("last shard ends at %d, want %d", hi, n)
	}
	for si := 1; si < len(cg.Shards); si++ {
		b := cg.Shards[si].Lo
		if cg.Shards[si-1].Hi != b {
			t.Fatalf("shard %d: gap at %d vs %d", si, cg.Shards[si-1].Hi, b)
		}
		if b%64 != 0 {
			t.Fatalf("shard %d: boundary %d not 64-aligned", si, b)
		}
		for _, v := range []int32{b - 1, b} {
			prow := g.RowInto(v, pbuf)
			crow := cg.RowInto(v, cbuf)
			if len(prow) != len(crow) {
				t.Fatalf("boundary row %d: len %d vs %d", v, len(prow), len(crow))
			}
			for i := range prow {
				if prow[i] != crow[i] {
					t.Fatalf("boundary row %d[%d]: %d vs %d", v, i, prow[i], crow[i])
				}
			}
			if got, want := cg.FindFirstIn(v, bm), g.FindFirstIn(v, bm); got != want {
				t.Fatalf("boundary row %d: FindFirstIn = %d, want %d", v, got, want)
			}
			if got, want := cg.CountIn(v, bm), g.CountIn(v, bm); got != want {
				t.Fatalf("boundary row %d: CountIn = %d, want %d", v, got, want)
			}
		}
	}
}
