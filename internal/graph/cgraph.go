package graph

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/core"
)

// CGraph is the compressed CSR variant (docs/GRAPH.md "Compressed
// CSR"): vertex v's sorted neighbor row lives byte-encoded at
// Bytes[BOffs[v]:BOffs[v+1]] in the group-varint codec of codec.go.
// EOffs keeps the plain edge-rank offsets so Degree stays O(1) and
// weighted variants can index an uncompressed weight array; BOffs is
// int64 because the byte stream of a beyond-LLC graph does not fit
// int32 arithmetic headroom. Shards partitions the vertices into
// cache-blocked, 64-aligned ranges of roughly equal byte mass so a
// traversal can hand each worker one contiguous byte segment to
// stream.
//
// Bytes is a *pool*, not necessarily this graph's exclusive stream:
// Builder.CompressTranspose appends a second direction's rows to the
// forward graph's pool, and both CGraphs then alias the same backing
// array with absolute BOffs (forward rows at [BOffs[0], BOffs[N]) =
// [0, fwd), transpose rows at [fwd, fwd+rev)). Whoever owns the pool,
// its last codecSlack bytes are a zero pad past every encoded row —
// the over-read headroom the group decoder's masked 4-byte loads
// require (codec.go), which is why row decodes slice Bytes[BOffs[v]:]
// rather than the exact segment.
type CGraph struct {
	N      int32
	EOffs  []int32 // length N+1: edge-rank offsets (degrees, weight indexing)
	BOffs  []int64 // length N+1: byte offsets into Bytes; BOffs[0] > 0 for a pool-sharing transpose
	Bytes  []byte  // shared byte pool: encoded rows + codecSlack zero pad
	MaxDeg int32   // decode scratch sizing
	Shards []Shard // 64-aligned vertex ranges of ~shardTargetBytes each
}

// CWGraph is the weighted compressed graph. Weights stay uncompressed,
// permuted to the sorted row order, so Wgt[EOffs[v]+i] is the weight of
// the i-th decoded neighbor of v.
type CWGraph struct {
	CGraph
	Wgt []uint32
}

// Shard is a half-open vertex range [Lo, Hi) whose encoded rows form
// one contiguous byte segment. Lo and Hi are multiples of 64 (except
// the final Hi = N), so shard-parallel bottom-up traversals keep the
// bitmap word ownership of docs/GRAPH.md.
type Shard struct{ Lo, Hi int32 }

// shardTargetBytes sizes traversal shards: big enough that the
// per-shard task overhead vanishes, small enough that a shard's byte
// segment and its touched vertex state stay cache-resident while a
// worker streams it.
const shardTargetBytes = 256 << 10

// Adjacency is the representation seam the graph kernels traverse
// through: plain *Graph and compressed *CGraph both satisfy it, so BFS
// and SSSP compile once, generically, against either layout.
type Adjacency interface {
	NumVertices() int32
	NumEdges() int64
	Degree(v int32) int32
	// MaxDegree bounds every row length; kernels size per-worker decode
	// scratch with it.
	MaxDegree() int32
	// RowInto returns v's neighbor row. A compressed representation
	// decodes into buf (which must hold MaxDegree entries); the plain
	// one returns its interior slice and ignores buf. Callers must not
	// mutate the result.
	RowInto(v int32, buf []int32) []int32
	// FindFirstIn returns the first neighbor of v whose bit is set in
	// bm, or -1 — the bottom-up BFS probe, kept inside the
	// representation so compressed rows decode incrementally and stop
	// at the first hit.
	FindFirstIn(v int32, bm []uint64) int32
	// CountIn returns how many neighbors of v have their bit set in bm
	// — the sorted-row intersection primitive of triangle counting
	// (mark one row in a bitmap, CountIn each of its neighbors' rows
	// against it). Unlike FindFirstIn it always walks the whole row,
	// but a compressed representation still counts in-place off the
	// group decode loop, never materializing the neighbor slice.
	CountIn(v int32, bm []uint64) int64
	// ByteOffset is v's position in the representation's edge stream,
	// in bytes; ShardsOf balances shard byte mass with it.
	ByteOffset(v int32) int64
	// FootprintBytes is the resident size of the adjacency structure
	// (offset arrays plus edge stream) — the numerator of the
	// bytes/edge metric reported by the bench-graph-xl tier.
	FootprintBytes() int64
}

// WAdjacency is the weighted seam: WRow returns the neighbor row (via
// buf, as RowInto) and the parallel weight slice.
type WAdjacency interface {
	Adjacency
	WRow(v int32, buf []int32) ([]int32, []uint32)
}

// --- plain CSR as an Adjacency ---

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int32 { return g.N }

// NumEdges returns the stored directed edge count.
func (g *Graph) NumEdges() int64 { return int64(g.Offs[g.N]) }

// MaxDegree scans for the largest out-degree.
func (g *Graph) MaxDegree() int32 {
	var m int32
	for v := int32(0); v < g.N; v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// RowInto returns v's interior neighbor slice; buf is unused.
func (g *Graph) RowInto(v int32, buf []int32) []int32 {
	return g.Adj[g.Offs[v]:g.Offs[v+1]]
}

// FindFirstIn returns the first neighbor of v set in bm, or -1.
func (g *Graph) FindFirstIn(v int32, bm []uint64) int32 {
	for _, u := range g.Adj[g.Offs[v]:g.Offs[v+1]] {
		if bm[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
			return u
		}
	}
	return -1
}

// CountIn counts the neighbors of v whose bit is set in bm.
func (g *Graph) CountIn(v int32, bm []uint64) int64 {
	var n int64
	for _, u := range g.Adj[g.Offs[v]:g.Offs[v+1]] {
		n += int64(bm[uint32(u)>>6] >> (uint32(u) & 63) & 1)
	}
	return n
}

// ByteOffset is v's byte position in the plain adjacency array.
func (g *Graph) ByteOffset(v int32) int64 { return int64(g.Offs[v]) * 4 }

// FootprintBytes is the plain CSR's resident size: int32 offsets plus
// the int32 adjacency array.
func (g *Graph) FootprintBytes() int64 {
	return int64(g.N+1)*4 + int64(g.Offs[g.N])*4
}

// WRow returns the neighbor and weight slices of v; buf is unused.
func (g *WGraph) WRow(v int32, buf []int32) ([]int32, []uint32) {
	lo, hi := g.Offs[v], g.Offs[v+1]
	return g.Adj[lo:hi], g.Wgt[lo:hi]
}

// --- compressed CSR as an Adjacency ---

// M returns the number of directed edges stored.
func (c *CGraph) M() int64 { return int64(c.EOffs[c.N]) }

// NumVertices returns the vertex count.
func (c *CGraph) NumVertices() int32 { return c.N }

// NumEdges returns the stored directed edge count.
func (c *CGraph) NumEdges() int64 { return int64(c.EOffs[c.N]) }

// Degree returns the out-degree of v.
func (c *CGraph) Degree(v int32) int32 { return c.EOffs[v+1] - c.EOffs[v] }

// MaxDegree returns the largest out-degree, recorded at build time.
func (c *CGraph) MaxDegree() int32 { return c.MaxDeg }

// RowInto decodes v's row into buf and returns buf[:Degree(v)]. The
// suffix slice (not the exact segment) hands the decoder the pool's
// slack pad for its fixed-width group loads.
func (c *CGraph) RowInto(v int32, buf []int32) []int32 {
	return decodeRow(v, c.Bytes[c.BOffs[v]:], c.Degree(v), buf)
}

// FindFirstIn decodes v's row incrementally, returning the first
// neighbor set in bm or -1. The early exit matters: on a dense frontier
// the probe usually hits within the first few gaps, so most of the row
// is never decoded. Reconstruction advances group-at-a-time through
// the same unrolled masked-load stanzas as decodeRow — the control
// word prices a whole group's payload up front, and the running
// neighbor value (sorted rows make it the running maximum) is probed
// as each gap lands, so a miss skips to the next control word without
// per-byte continuation branches.
func (c *CGraph) FindFirstIn(v int32, bm []uint64) int32 {
	deg := c.Degree(v)
	if deg == 0 {
		return -1
	}
	buf := c.Bytes[c.BOffs[v]:]
	first, k := getVarint(buf, 0)
	u := int32(int64(v) + unzigzag(first))
	if bm[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
		return u
	}
	i := int32(1)
	for ; i+gvGroup <= deg; i += gvGroup {
		c0, c1 := buf[k], buf[k+1]
		k += gvCtrl
		m, f := &gvMasks[c0], &gvOffs[c0]
		for j := 0; j < 4; j++ {
			u += int32(load32(buf, k+int(f[j])) & m[j])
			if bm[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
				return u
			}
		}
		k += int(gvTot[c0])
		m, f = &gvMasks[c1], &gvOffs[c1]
		for j := 0; j < 4; j++ {
			u += int32(load32(buf, k+int(f[j])) & m[j])
			if bm[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
				return u
			}
		}
		k += int(gvTot[c1])
	}
	for ; i < deg; i++ {
		var gap uint64
		gap, k = getVarint(buf, k)
		u += int32(gap)
		if bm[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
			return u
		}
	}
	return -1
}

// CountIn counts the neighbors of v whose bit is set in bm,
// reconstructing the row through the same unrolled group stanzas as
// FindFirstIn but folding a branch-free membership bit per gap instead
// of exiting on the first hit — the whole row always decodes, since an
// intersection needs every element.
func (c *CGraph) CountIn(v int32, bm []uint64) int64 {
	deg := c.Degree(v)
	if deg == 0 {
		return 0
	}
	buf := c.Bytes[c.BOffs[v]:]
	first, k := getVarint(buf, 0)
	u := int32(int64(v) + unzigzag(first))
	n := int64(bm[uint32(u)>>6] >> (uint32(u) & 63) & 1)
	i := int32(1)
	for ; i+gvGroup <= deg; i += gvGroup {
		c0, c1 := buf[k], buf[k+1]
		k += gvCtrl
		m, f := &gvMasks[c0], &gvOffs[c0]
		for j := 0; j < 4; j++ {
			u += int32(load32(buf, k+int(f[j])) & m[j])
			n += int64(bm[uint32(u)>>6] >> (uint32(u) & 63) & 1)
		}
		k += int(gvTot[c0])
		m, f = &gvMasks[c1], &gvOffs[c1]
		for j := 0; j < 4; j++ {
			u += int32(load32(buf, k+int(f[j])) & m[j])
			n += int64(bm[uint32(u)>>6] >> (uint32(u) & 63) & 1)
		}
		k += int(gvTot[c1])
	}
	for ; i < deg; i++ {
		var gap uint64
		gap, k = getVarint(buf, k)
		u += int32(gap)
		n += int64(bm[uint32(u)>>6] >> (uint32(u) & 63) & 1)
	}
	return n
}

// ByteOffset is v's byte position in the compressed stream.
func (c *CGraph) ByteOffset(v int32) int64 { return c.BOffs[v] }

// FootprintBytes is the compressed CSR's resident size: both offset
// arrays (int32 edge ranks + int64 byte offsets) plus this direction's
// span of the encoded byte pool — the honest accounting that charges
// the compression its extra offset array, and charges a pool-sharing
// pair each direction exactly once.
func (c *CGraph) FootprintBytes() int64 {
	return int64(c.N+1)*4 + int64(c.N+1)*8 + (c.BOffs[c.N] - c.BOffs[0])
}

// WRow decodes v's neighbors into buf and returns them with the
// uncompressed weight slice, which is already permuted to row order.
func (c *CWGraph) WRow(v int32, buf []int32) ([]int32, []uint32) {
	return c.CGraph.RowInto(v, buf), c.Wgt[c.EOffs[v]:c.EOffs[v+1]]
}

// Validate is the checked-mode decode pass: it re-decodes every row and
// verifies the cursor lands exactly on the next byte offset, neighbors
// are sorted, and every id is in [0, N). Compress runs it in
// ModeChecked; under the encoder's certificate (monotone, in-bounds
// byte offsets from the size scan) the pass is provably redundant and
// ModeUnchecked elides it — the same checked/unchecked discipline as
// core.IndChunks vs IndChunksUnchecked.
func (c *CGraph) Validate() error {
	if len(c.EOffs) != int(c.N)+1 || len(c.BOffs) != int(c.N)+1 {
		return fmt.Errorf("graph: CGraph offset arrays have length %d/%d, want %d", len(c.EOffs), len(c.BOffs), c.N+1)
	}
	if c.BOffs[0] < 0 || c.BOffs[c.N] < c.BOffs[0] || c.BOffs[c.N]+codecSlack > int64(len(c.Bytes)) {
		return fmt.Errorf("graph: CGraph byte extent [%d,%d)+%d slack exceeds pool of %d bytes", c.BOffs[0], c.BOffs[c.N], codecSlack, len(c.Bytes))
	}
	if c.BOffs[c.N]+codecSlack == int64(len(c.Bytes)) {
		// This graph's rows end the pool, so the next codecSlack bytes are
		// its zero pad. (A pool-sharing forward graph is followed by
		// transpose rows instead — those checked by the transpose's own
		// Validate — so only the tail owner vets the pad.)
		for j := int64(0); j < codecSlack; j++ {
			if c.Bytes[c.BOffs[c.N]+j] != 0 {
				return fmt.Errorf("graph: CGraph slack byte %d past offset %d is %#x, want 0", j, c.BOffs[c.N], c.Bytes[c.BOffs[c.N]+j])
			}
		}
	}
	for v := int32(0); v < c.N; v++ {
		deg := c.Degree(v)
		lo, hi := c.BOffs[v], c.BOffs[v+1]
		if deg < 0 || lo > hi || hi > int64(len(c.Bytes)) {
			return fmt.Errorf("graph: CGraph row %d has invalid extent deg=%d bytes=[%d,%d)", v, deg, lo, hi)
		}
		if deg == 0 {
			if lo != hi {
				return fmt.Errorf("graph: CGraph empty row %d spans %d bytes", v, hi-lo)
			}
			continue
		}
		// The walk below re-derives the group layout with explicit bounds
		// checks and byte-at-a-time payload assembly — unlike decodeRow it
		// never reads past the exact segment, so it can vet a stream whose
		// offsets are themselves suspect.
		seg := c.Bytes[lo:hi]
		first, k, ok := getVarintBounded(seg, 0)
		if !ok {
			return fmt.Errorf("graph: CGraph row %d truncates its first-delta varint", v)
		}
		u := int64(v) + unzigzag(first)
		if u < 0 || u >= int64(c.N) {
			return fmt.Errorf("graph: CGraph row %d decodes out-of-range first neighbor %d", v, u)
		}
		i := int32(1)
		for ; i+gvGroup <= deg; i += gvGroup {
			if k+gvCtrl > len(seg) {
				return fmt.Errorf("graph: CGraph row %d truncates a control word at byte %d", v, k)
			}
			c0, c1 := seg[k], seg[k+1]
			k += gvCtrl
			if k+int(gvTot[c0])+int(gvTot[c1]) > len(seg) {
				return fmt.Errorf("graph: CGraph row %d truncates group payload at byte %d", v, k)
			}
			for j := 0; j < gvGroup; j++ {
				var l int
				if j < 4 {
					l = int(gvLens[c0][j])
				} else {
					l = int(gvLens[c1][j-4])
				}
				var gap uint64
				for bpos := 0; bpos < l; bpos++ {
					gap |= uint64(seg[k]) << (8 * bpos)
					k++
				}
				u += int64(gap)
				if u >= int64(c.N) {
					return fmt.Errorf("graph: CGraph row %d decodes out-of-range neighbor %d", v, u)
				}
			}
		}
		for ; i < deg; i++ {
			gap, k2, ok := getVarintBounded(seg, k)
			if !ok {
				return fmt.Errorf("graph: CGraph row %d exhausts its byte segment at neighbor %d/%d", v, i, deg)
			}
			k = k2
			u += int64(gap)
			if u >= int64(c.N) {
				return fmt.Errorf("graph: CGraph row %d decodes out-of-range neighbor %d", v, u)
			}
		}
		if k != len(seg) {
			return fmt.Errorf("graph: CGraph row %d decodes %d bytes, segment has %d", v, k, len(seg))
		}
	}
	return nil
}

// ShardsOf partitions any adjacency into 64-aligned vertex ranges of
// about shardTargetBytes of edge-stream mass each, appending to dst.
// Every shard boundary is a multiple of 64 so shard-parallel bottom-up
// steps retain whole-word ownership of the frontier bitmaps.
func ShardsOf(a Adjacency, dst []Shard) []Shard {
	n := a.NumVertices()
	dst = dst[:0]
	if n == 0 {
		return dst
	}
	lo := int32(0)
	base := a.ByteOffset(0)
	for v := int32(64); v < n; v += 64 {
		if a.ByteOffset(v)-base >= shardTargetBytes {
			dst = append(dst, Shard{Lo: lo, Hi: v})
			lo, base = v, a.ByteOffset(v)
		}
	}
	return append(dst, Shard{Lo: lo, Hi: n})
}

// maxDegreeOf computes the largest out-degree of a plain graph in
// parallel; Compress records it on the CGraph for decode-scratch
// sizing.
func maxDegreeOf(w *core.Worker, g *Graph) int32 {
	return core.MapReduce(w, int(g.N), int32(0),
		func(v int) int32 { return g.Degree(int32(v)) },
		func(a, b int32) int32 {
			if a > b {
				return a
			}
			return b
		})
}

// Compress encodes a plain CSR graph, whose rows must already be
// sorted (BuildSorted / SortAdjacency), into this Builder's reusable
// compressed buffers. The pipeline is the certified two-pass encoder:
// a size pass fills a zeroed per-vertex byte-size array, one inclusive
// scan turns sizes into byte offsets, and a range scatter encodes each
// row into its byte segment. The scatter's boundaries are exactly the
// scan's output, the monotone byte-offset provenance `rpblint -certify`
// proves (docs/LINT.md), so ModeUnchecked runs the scatter — and skips
// the Validate decode pass — with no run-time check. The returned
// *CGraph aliases g's Offs as EOffs and the Builder's buffers; it is
// valid until the next compressed build on this Builder.
func (b *Builder) Compress(w *core.Worker, g *Graph) *CGraph {
	n := int(g.N)
	adj, offs := g.Adj, g.Offs
	a := arena.Of(w)
	am := a.Mark()
	offsets := arena.Alloc[int64](a, n+1)
	core.ForRange(w, 0, n, 0, func(v int) {
		offsets[v+1] = int64(encRowSize(int32(v), adj[offs[v]:offs[v+1]]))
	})
	total := core.ScanInclusive(w, offsets[1:])
	buf := arena.AllocUninit[byte](a, total)
	encode := func(v int, dst []byte) { encodeRow(int32(v), adj[offs[v]:offs[v+1]], dst) }
	if core.GetMode() == core.ModeChecked {
		if err := core.IndChunks(w, buf, offsets, encode); err != nil {
			panic(fmt.Sprintf("graph: Compress boundary check failed: %v", err))
		}
	} else {
		core.IndChunksUnchecked(w, buf, offsets, encode)
	}
	b.cg.N = g.N
	b.cg.EOffs = g.Offs
	b.cg.BOffs = core.EnsureLen(b.cg.BOffs, n+1)
	core.CopyInto(w, b.cg.BOffs, offsets)
	b.cg.Bytes = core.EnsureLen(b.cg.Bytes, int(total)+codecSlack)
	core.CopyInto(w, b.cg.Bytes[:total], buf)
	for j := 0; j < codecSlack; j++ {
		b.cg.Bytes[int(total)+j] = 0
	}
	a.Release(am)
	b.cg.MaxDeg = maxDegreeOf(w, g)
	b.cg.Shards = ShardsOf(&b.cg, b.cg.Shards)
	if core.GetMode() == core.ModeChecked {
		if err := b.cg.Validate(); err != nil {
			panic(fmt.Sprintf("graph: Compress produced an invalid stream: %v", err))
		}
	}
	return &b.cg
}

// CompressW encodes a weighted CSR graph whose rows are sorted with
// weights permuted alongside (SortAdjacencyW). The weight array is not
// compressed: CWGraph.Wgt aliases wg.Wgt, already in sorted row order.
func (b *Builder) CompressW(w *core.Worker, wg *WGraph) *CWGraph {
	b.cwg.CGraph = *b.Compress(w, &wg.Graph)
	b.cwg.Wgt = wg.Wgt
	return &b.cwg
}

// CompressTranspose encodes tg — the transpose of the graph most
// recently passed to Compress/CompressW on this Builder — and appends
// its rows to the forward CGraph's byte pool, so both directions
// stream from one arena (one allocation, one slack pad, contiguous for
// the beyond-LLC tier). The returned transpose CGraph aliases that
// shared pool with absolute byte offsets: its BOffs[0] is the forward
// stream's end, and the forward graph's Bytes is re-aliased to the
// grown pool (the *CGraph returned by the earlier Compress stays
// valid; a CWGraph from CompressW needs CompressTransposeW, which
// re-syncs its embedded struct copy). The encoder is the same
// certified two-pass pipeline as Compress — the base offset is added
// after the scan, outside the certified scatter, so the certificate is
// unchanged. Must be called after Compress; like Compress, the result
// is valid until the next compressed build on this Builder.
func (b *Builder) CompressTranspose(w *core.Worker, tg *Graph) *CGraph {
	n := int(tg.N)
	adj, offs := tg.Adj, tg.Offs
	a := arena.Of(w)
	am := a.Mark()
	offsets := arena.Alloc[int64](a, n+1)
	core.ForRange(w, 0, n, 0, func(v int) {
		offsets[v+1] = int64(encRowSize(int32(v), adj[offs[v]:offs[v+1]]))
	})
	total := core.ScanInclusive(w, offsets[1:])
	buf := arena.AllocUninit[byte](a, total)
	encode := func(v int, dst []byte) { encodeRow(int32(v), adj[offs[v]:offs[v+1]], dst) }
	if core.GetMode() == core.ModeChecked {
		if err := core.IndChunks(w, buf, offsets, encode); err != nil {
			panic(fmt.Sprintf("graph: CompressTranspose boundary check failed: %v", err))
		}
	} else {
		core.IndChunksUnchecked(w, buf, offsets, encode)
	}
	base := b.cg.BOffs[b.cg.N] // forward stream end: transpose rows start here
	b.ctg.N = tg.N
	b.ctg.EOffs = tg.Offs
	b.ctg.BOffs = core.EnsureLen(b.ctg.BOffs, n+1)
	bo := b.ctg.BOffs
	bo[0] = base
	core.ForRange(w, 0, n, 0, func(v int) { bo[v+1] = base + offsets[v+1] })
	// Grow the pool by hand: EnsureLen does not preserve contents across
	// a reallocation, and the forward rows must survive the append. The
	// transpose rows start at base, overwriting the forward stream's old
	// slack pad; a fresh pad goes after the last transpose row.
	pool := b.cg.Bytes
	need := int(base+total) + codecSlack
	if need <= cap(pool) {
		pool = pool[:need]
	} else {
		grown := make([]byte, need)
		core.CopyInto(w, grown[:base], pool[:base])
		pool = grown
	}
	core.CopyInto(w, pool[base:base+total], buf)
	for j := 0; j < codecSlack; j++ {
		pool[int(base+total)+j] = 0
	}
	a.Release(am)
	b.cg.Bytes = pool
	b.ctg.Bytes = pool
	b.ctg.MaxDeg = maxDegreeOf(w, tg)
	b.ctg.Shards = ShardsOf(&b.ctg, b.ctg.Shards)
	if core.GetMode() == core.ModeChecked {
		if err := b.ctg.Validate(); err != nil {
			panic(fmt.Sprintf("graph: CompressTranspose produced an invalid stream: %v", err))
		}
		if err := b.cg.Validate(); err != nil {
			panic(fmt.Sprintf("graph: CompressTranspose corrupted the forward stream: %v", err))
		}
	}
	return &b.ctg
}

// CompressTransposeW is CompressTranspose for a weighted transpose
// (Builder.TransposeW): weights stay uncompressed, aliasing twg.Wgt in
// sorted row order. It also re-syncs the CWGraph returned by the
// preceding CompressW, whose embedded CGraph is a struct *copy* of the
// Builder's and would otherwise keep aliasing the pre-append pool.
func (b *Builder) CompressTransposeW(w *core.Worker, twg *WGraph) *CWGraph {
	b.ctwg.CGraph = *b.CompressTranspose(w, &twg.Graph)
	b.ctwg.Wgt = twg.Wgt
	b.cwg.CGraph = b.cg
	return &b.ctwg
}

// BuildC builds the compressed CSR form of a directed edge list: a
// sorted plain build followed by the certified encoder. The plain form
// remains available in the Builder (the next Build invalidates both).
func (b *Builder) BuildC(w *core.Worker, n int32, edges []Edge) *CGraph {
	return b.Compress(w, b.BuildSorted(w, n, edges))
}

// BuildWC is BuildC for weighted edge lists.
func (b *Builder) BuildWC(w *core.Worker, n int32, edges []WEdge) *CWGraph {
	return b.CompressW(w, b.BuildWSorted(w, n, edges))
}
