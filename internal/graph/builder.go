package graph

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"repro/internal/core"
)

// Builder is a reusable degree-aware CSR construction pipeline: a
// parallel counting sort of the edge list into adjacency slots. The
// three phases exercise the suite's patterns — an AW degree count
// (atomic increments racing per destination counter), a Block-disjoint
// exclusive scan of the offsets (core.ScanExclusiveInto), and an AW
// cursor scatter of edges into their slots.
//
// All intermediate and output buffers live in the Builder and are
// grown with core.EnsureLen, so repeated builds of same-shaped graphs
// allocate nothing: the steady state measured by BenchmarkGraphBuildCSR.
// A Build invalidates the Graph returned by the previous Build on the
// same Builder.
type Builder struct {
	degs []int32 // per-vertex out-degree, then scanned into offs
	cur  []int32 // per-vertex fill cursor during the scatter
	g    Graph
	wg   WGraph
	cg   CGraph  // compressed form (Compress / BuildC)
	cwg  CWGraph // weighted compressed form (CompressW / BuildWC)
	ctg  CGraph  // compressed transpose, pool-sharing with cg (CompressTranspose)
	ctwg CWGraph // weighted compressed transpose (CompressTransposeW)
}

// edgeLimit bounds the edge count a Builder accepts: CSR offsets are
// int32, so one more edge than MaxInt32 would overflow the scan.
// Injectable (mirroring core's packIndexLimit) so the guard is testable
// without allocating a 2^31-edge list.
var edgeLimit = int64(math.MaxInt32)

// validateEdges panics with a message naming the first edge whose
// endpoint falls outside [0, n) — instead of an index-out-of-range
// deep inside the counting-sort scatter — and enforces edgeLimit.
func validateEdges(w *core.Worker, n int32, m int, endpoints func(i int) (int32, int32)) {
	if int64(m) > edgeLimit {
		panic(fmt.Sprintf("graph: edge list has %d edges, exceeding the int32 CSR offset limit %d; offsets would overflow", m, edgeLimit))
	}
	bad := core.MapReduce(w, m, -1, func(i int) int {
		from, to := endpoints(i)
		if uint32(from) >= uint32(n) || uint32(to) >= uint32(n) {
			return i
		}
		return -1
	}, func(a, b int) int {
		switch {
		case a < 0:
			return b
		case b < 0:
			return a
		case a < b:
			return a
		}
		return b
	})
	if bad >= 0 {
		from, to := endpoints(bad)
		panic(fmt.Sprintf("graph: edge %d (%d -> %d) has an endpoint outside [0, %d)", bad, from, to, n))
	}
}

// countAndScan runs the degree count over from-vertices and the offset
// scan, leaving b.cur[v] = b.g.Offs[v] ready for the scatter, and
// returns the edge total.
func (b *Builder) countAndScan(w *core.Worker, n int32, deg func(i int) int32, m int) int32 {
	b.degs = core.EnsureLen(b.degs, int(n))
	core.Fill(w, b.degs, 0)
	core.ForRange(w, 0, m, 0, func(i int) {
		atomic.AddInt32(&b.degs[deg(i)], 1)
	})
	b.g.Offs = core.EnsureLen(b.g.Offs, int(n)+1)
	total := core.ScanExclusiveInto(w, b.g.Offs[:n], b.degs[:n])
	b.g.Offs[n] = total
	b.cur = core.EnsureLen(b.cur, int(n))
	offs := b.g.Offs
	core.ForRange(w, 0, int(n), 0, func(v int) {
		b.cur[v] = offs[v]
	})
	return total
}

// Build constructs a CSR graph from a directed edge list into the
// Builder's reusable buffers. The returned *Graph aliases those buffers
// and is valid until the next Build/BuildW on this Builder. Endpoints
// are validated up front; an out-of-range edge panics naming it.
func (b *Builder) Build(w *core.Worker, n int32, edges []Edge) *Graph {
	validateEdges(w, n, len(edges), func(i int) (int32, int32) { return edges[i].From, edges[i].To })
	total := b.countAndScan(w, n, func(i int) int32 { return edges[i].From }, len(edges))
	b.g.N = n
	b.g.Adj = core.EnsureLen(b.g.Adj, int(total))
	adj, cur := b.g.Adj, b.cur
	core.ForRange(w, 0, len(edges), 0, func(i int) {
		e := edges[i]
		slot := atomic.AddInt32(&cur[e.From], 1) - 1
		adj[slot] = e.To //lint:scared counting-sort scatter: cur[v] starts at the exclusive-scan offset, so slots are unique within v's segment
	})
	return &b.g
}

// BuildW constructs a weighted CSR graph from a weighted edge list into
// the Builder's reusable buffers. The returned *WGraph aliases those
// buffers and is valid until the next Build/BuildW on this Builder.
func (b *Builder) BuildW(w *core.Worker, n int32, edges []WEdge) *WGraph {
	validateEdges(w, n, len(edges), func(i int) (int32, int32) { return edges[i].From, edges[i].To })
	total := b.countAndScan(w, n, func(i int) int32 { return edges[i].From }, len(edges))
	b.g.N = n
	b.g.Adj = core.EnsureLen(b.g.Adj, int(total))
	b.wg.Wgt = core.EnsureLen(b.wg.Wgt, int(total))
	adj, wgt, cur := b.g.Adj, b.wg.Wgt, b.cur
	core.ForRange(w, 0, len(edges), 0, func(i int) {
		e := edges[i]
		slot := atomic.AddInt32(&cur[e.From], 1) - 1
		adj[slot] = e.To //lint:scared counting-sort scatter: cur[v] starts at the exclusive-scan offset, so slots are unique within v's segment
		wgt[slot] = e.W
	})
	b.wg.Graph = b.g
	return &b.wg
}

// BuildSorted is Build followed by SortAdjacency: the counting-sort
// scatter's slot order depends on atomic-increment interleaving, so a
// plain Build is deterministic only up to within-row permutation;
// sorting every row canonicalizes the layout. Sorted rows are also the
// precondition of the Compress encoder (gaps must be non-negative) and
// of intersection-style kernels (triangle counting, ROADMAP).
func (b *Builder) BuildSorted(w *core.Worker, n int32, edges []Edge) *Graph {
	g := b.Build(w, n, edges)
	SortAdjacency(w, g)
	return g
}

// BuildWSorted is BuildW with every row sorted by neighbor id and the
// weights permuted alongside.
func (b *Builder) BuildWSorted(w *core.Worker, n int32, edges []WEdge) *WGraph {
	wg := b.BuildW(w, n, edges)
	SortAdjacencyW(w, wg)
	return wg
}

// SortAdjacency sorts every neighbor row of g in place, ascending. Rows
// are disjoint CSR segments, so the per-vertex tasks write disjoint
// slices.
func SortAdjacency(w *core.Worker, g *Graph) {
	adj, offs := g.Adj, g.Offs
	core.ForRange(w, 0, int(g.N), 0, func(v int) {
		slices.Sort(adj[offs[v]:offs[v+1]]) //lint:scared per-row sort: row segments [offs[v], offs[v+1]) are disjoint per task v
	})
}

// SortAdjacencyW sorts every neighbor row of wg by neighbor id with the
// weight entries co-permuted, keeping Wgt[i] attached to Adj[i].
func SortAdjacencyW(w *core.Worker, wg *WGraph) {
	adj, wgt, offs := wg.Adj, wg.Wgt, wg.Offs
	core.ForRange(w, 0, int(wg.N), 0, func(v int) {
		sortRowW(adj[offs[v]:offs[v+1]], wgt[offs[v]:offs[v+1]]) //lint:scared per-row sort: row segments [offs[v], offs[v+1]) are disjoint per task v
	})
}

// sortRowW co-sorts one (neighbor, weight) row by neighbor id: an
// in-place heapsort, allocation-free and O(d log d) even on hub rows.
func sortRowW(adj []int32, wgt []uint32) {
	n := len(adj)
	for root := n/2 - 1; root >= 0; root-- {
		siftRowW(adj, wgt, root, n)
	}
	for end := n - 1; end > 0; end-- {
		adj[0], adj[end] = adj[end], adj[0]
		wgt[0], wgt[end] = wgt[end], wgt[0]
		siftRowW(adj, wgt, 0, end)
	}
}

func siftRowW(adj []int32, wgt []uint32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && adj[child+1] > adj[child] {
			child++
		}
		if adj[root] >= adj[child] {
			return
		}
		adj[root], adj[child] = adj[child], adj[root]
		wgt[root], wgt[child] = wgt[child], wgt[root]
		root = child
	}
}

// Transpose builds the reverse graph of g (every edge u->v becomes
// v->u) with the same counting-sort pipeline, into this Builder's
// buffers. Bottom-up BFS steps scan it to find any parent among a
// vertex's in-neighbors. For symmetric graphs the transpose equals the
// graph; builders of undirected inputs may share one CSR for both
// directions instead. g must not alias this Builder's own buffers —
// transpose with a second Builder.
func (b *Builder) Transpose(w *core.Worker, g *Graph) *Graph {
	adjIn := g.Adj
	b.countAndScan(w, g.N, func(i int) int32 { return adjIn[i] }, int(g.M()))
	b.g.N = g.N
	b.g.Adj = core.EnsureLen(b.g.Adj, int(g.M()))
	adj, cur := b.g.Adj, b.cur
	offsIn := g.Offs
	core.ForRange(w, 0, int(g.N), 0, func(u int) {
		for _, v := range adjIn[offsIn[u]:offsIn[u+1]] {
			slot := atomic.AddInt32(&cur[v], 1) - 1
			adj[slot] = int32(u) //lint:scared counting-sort scatter: cur[v] starts at the exclusive-scan offset, so slots are unique within v's segment
		}
	})
	return &b.g
}

// TransposeW builds the weighted reverse graph of wg (edge u->v with
// weight x becomes v->u with weight x) — the in-edge view an SSSP pull
// round relaxes. Same counting-sort pipeline and aliasing rules as
// Transpose: wg must not alias this Builder's own buffers.
func (b *Builder) TransposeW(w *core.Worker, wg *WGraph) *WGraph {
	adjIn, wgtIn := wg.Adj, wg.Wgt
	b.countAndScan(w, wg.N, func(i int) int32 { return adjIn[i] }, int(wg.M()))
	b.g.N = wg.N
	b.g.Adj = core.EnsureLen(b.g.Adj, int(wg.M()))
	b.wg.Wgt = core.EnsureLen(b.wg.Wgt, int(wg.M()))
	adj, wgt, cur := b.g.Adj, b.wg.Wgt, b.cur
	offsIn := wg.Offs
	core.ForRange(w, 0, int(wg.N), 0, func(u int) {
		for i := offsIn[u]; i < offsIn[u+1]; i++ {
			v := adjIn[i]
			slot := atomic.AddInt32(&cur[v], 1) - 1
			adj[slot] = int32(u) //lint:scared counting-sort scatter: cur[v] starts at the exclusive-scan offset, so slots are unique within v's segment
			wgt[slot] = wgtIn[i]
		}
	})
	b.wg.Graph = b.g
	return &b.wg
}
