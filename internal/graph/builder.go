package graph

import (
	"sync/atomic"

	"repro/internal/core"
)

// Builder is a reusable degree-aware CSR construction pipeline: a
// parallel counting sort of the edge list into adjacency slots. The
// three phases exercise the suite's patterns — an AW degree count
// (atomic increments racing per destination counter), a Block-disjoint
// exclusive scan of the offsets (core.ScanExclusiveInto), and an AW
// cursor scatter of edges into their slots.
//
// All intermediate and output buffers live in the Builder and are
// grown with core.EnsureLen, so repeated builds of same-shaped graphs
// allocate nothing: the steady state measured by BenchmarkGraphBuildCSR.
// A Build invalidates the Graph returned by the previous Build on the
// same Builder.
type Builder struct {
	degs []int32 // per-vertex out-degree, then scanned into offs
	cur  []int32 // per-vertex fill cursor during the scatter
	g    Graph
	wg   WGraph
}

// countAndScan runs the degree count over from-vertices and the offset
// scan, leaving b.cur[v] = b.g.Offs[v] ready for the scatter, and
// returns the edge total.
func (b *Builder) countAndScan(w *core.Worker, n int32, deg func(i int) int32, m int) int32 {
	b.degs = core.EnsureLen(b.degs, int(n))
	core.Fill(w, b.degs, 0)
	core.ForRange(w, 0, m, 0, func(i int) {
		atomic.AddInt32(&b.degs[deg(i)], 1)
	})
	b.g.Offs = core.EnsureLen(b.g.Offs, int(n)+1)
	total := core.ScanExclusiveInto(w, b.g.Offs[:n], b.degs[:n])
	b.g.Offs[n] = total
	b.cur = core.EnsureLen(b.cur, int(n))
	offs := b.g.Offs
	core.ForRange(w, 0, int(n), 0, func(v int) {
		b.cur[v] = offs[v]
	})
	return total
}

// Build constructs a CSR graph from a directed edge list into the
// Builder's reusable buffers. The returned *Graph aliases those buffers
// and is valid until the next Build/BuildW on this Builder.
func (b *Builder) Build(w *core.Worker, n int32, edges []Edge) *Graph {
	total := b.countAndScan(w, n, func(i int) int32 { return edges[i].From }, len(edges))
	b.g.N = n
	b.g.Adj = core.EnsureLen(b.g.Adj, int(total))
	adj, cur := b.g.Adj, b.cur
	core.ForRange(w, 0, len(edges), 0, func(i int) {
		e := edges[i]
		slot := atomic.AddInt32(&cur[e.From], 1) - 1
		adj[slot] = e.To //lint:scared counting-sort scatter: cur[v] starts at the exclusive-scan offset, so slots are unique within v's segment
	})
	return &b.g
}

// BuildW constructs a weighted CSR graph from a weighted edge list into
// the Builder's reusable buffers. The returned *WGraph aliases those
// buffers and is valid until the next Build/BuildW on this Builder.
func (b *Builder) BuildW(w *core.Worker, n int32, edges []WEdge) *WGraph {
	total := b.countAndScan(w, n, func(i int) int32 { return edges[i].From }, len(edges))
	b.g.N = n
	b.g.Adj = core.EnsureLen(b.g.Adj, int(total))
	b.wg.Wgt = core.EnsureLen(b.wg.Wgt, int(total))
	adj, wgt, cur := b.g.Adj, b.wg.Wgt, b.cur
	core.ForRange(w, 0, len(edges), 0, func(i int) {
		e := edges[i]
		slot := atomic.AddInt32(&cur[e.From], 1) - 1
		adj[slot] = e.To //lint:scared counting-sort scatter: cur[v] starts at the exclusive-scan offset, so slots are unique within v's segment
		wgt[slot] = e.W
	})
	b.wg.Graph = b.g
	return &b.wg
}

// Transpose builds the reverse graph of g (every edge u->v becomes
// v->u) with the same counting-sort pipeline, into this Builder's
// buffers. Bottom-up BFS steps scan it to find any parent among a
// vertex's in-neighbors. For symmetric graphs the transpose equals the
// graph; builders of undirected inputs may share one CSR for both
// directions instead. g must not alias this Builder's own buffers —
// transpose with a second Builder.
func (b *Builder) Transpose(w *core.Worker, g *Graph) *Graph {
	adjIn := g.Adj
	b.countAndScan(w, g.N, func(i int) int32 { return adjIn[i] }, int(g.M()))
	b.g.N = g.N
	b.g.Adj = core.EnsureLen(b.g.Adj, int(g.M()))
	adj, cur := b.g.Adj, b.cur
	offsIn := g.Offs
	core.ForRange(w, 0, int(g.N), 0, func(u int) {
		for _, v := range adjIn[offsIn[u]:offsIn[u+1]] {
			slot := atomic.AddInt32(&cur[v], 1) - 1
			adj[slot] = int32(u) //lint:scared counting-sort scatter: cur[v] starts at the exclusive-scan offset, so slots are unique within v's segment
		}
	})
	return &b.g
}
