package graph

// The byte codec behind CGraph (docs/GRAPH.md "Compressed CSR"): each
// vertex's sorted neighbor row is stored as a zigzag-encoded varint
// delta of the first neighbor from the vertex id, followed by the gaps
// between consecutive neighbors in *group-varint* form (the
// stream-vbyte layout): gaps are encoded in groups of gvGroup=8, each
// group led by a 2-byte control word of 2-bit length tags (tag t means
// the gap occupies t+1 little-endian bytes), then the payload bytes.
// The last len(row)-1 mod 8 gaps are a scalar varint tail. Sorted rows
// make every gap non-negative, so gaps need no sign bit; only the
// first delta, which may point anywhere relative to v, pays for
// zigzag.
//
// Group structure is what makes the decode hot path branch-light:
// RowInto reconstructs eight neighbors per control word through an
// unrolled loop of table-driven masked 4-byte loads — no per-byte
// continuation-bit branches — and FindFirstIn advances group-at-a-time
// (the control word gives the payload size up front) instead of
// gap-at-a-time. The price is a fixed-width over-read: payload loads
// always read 4 bytes and mask, so every byte pool carries codecSlack
// zero bytes past its last encoded byte and decoders receive suffix
// slices (Bytes[BOffs[v]:], not exact segments).
//
// The encoder writes through an unchecked range scatter whose byte
// offsets come from a prefix sum of per-row sizes; `rpblint -certify`
// proves those boundaries monotone and in-bounds (the size helpers
// below are part of that proof: the interprocedural non-negativity
// summary shows every pre-scan size is >= 0, see docs/LINT.md). The
// decoder trusts the same offsets — CGraph.Validate is the checked-mode
// pass that re-verifies every row decodes exactly to its boundary.
//
// The PR-7 scalar varint-gap codec survives in codec_v1.go as V1Rows,
// the baseline the decode-bandwidth benchmarks compare against.

const (
	// gvGroup is the number of gaps per group-varint group.
	gvGroup = 8
	// gvCtrl is the control-word size: 2 bits per gap, 8 gaps = 16 bits.
	gvCtrl = 2
	// codecSlack is how many readable bytes a decoder may touch past a
	// row's last encoded byte: group payload loads are unconditional
	// 4-byte little-endian reads masked to the tagged length, so the
	// final 1-byte gap of a stream may pull in up to 3 bytes beyond it.
	// Every encoded byte pool ends with codecSlack zero bytes (zero also
	// terminates any varint a corrupt stream walks into the pad), and
	// every buffer handed to decodeRow must include them.
	codecSlack = 4
)

// gvLens[c][j] is the byte length (1-4) of the j-th gap under control
// byte c; gvOffs[c][j] is that gap's byte offset within the control
// byte's payload run (the prefix sum of gvLens[c][:j]); gvShift[c][j]
// is that offset in bits (8*gvOffs, pre-multiplied for the
// register-resident fast path below); gvMasks[c][j] is the lane's
// truncation mask resolved per control byte (folding the gvLens ->
// gvMask double lookup into one load); gvTot[c] is the full payload
// size — the table-driven group skip.
//
// The tables serve two decode strategies. When a control byte's whole
// payload fits in 8 bytes (gvTot <= 8 — the dominant case for
// small-gap graph rows), decodeRow loads the payload once into a
// 64-bit register and extracts all four lanes by shift+mask: one
// bounds-checked memory load per half-group instead of four. The
// general path falls back to per-lane masked 4-byte loads whose
// addresses come from gvOffs — independent of each other, so they
// issue in parallel and the only serial dependence left is the gap
// prefix sum itself.
var (
	gvLens  [256][4]uint8
	gvOffs  [256][4]uint8
	gvShift [256][4]uint8
	gvMasks [256][4]uint32
	gvTot   [256]uint8
)

func init() {
	for c := 0; c < 256; c++ {
		var tot uint8
		for j := 0; j < 4; j++ {
			l := uint8(c>>(2*j))&3 + 1
			gvLens[c][j] = l
			gvOffs[c][j] = tot
			gvShift[c][j] = 8 * tot
			gvMasks[c][j] = gvMask[l]
			tot += l
		}
		gvTot[c] = tot
	}
}

// gvMask truncates a 4-byte load to a tagged length.
var gvMask = [5]uint32{0, 0xff, 0xffff, 0xffffff, 0xffffffff}

// load32 reads 4 little-endian bytes at buf[k:]. The slice header is
// the compiler's load-combine idiom, so this is one unaligned load
// plus the callers' mask.
func load32(buf []byte, k int) uint32 {
	b := buf[k : k+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// load64 reads 8 little-endian bytes at buf[k:] — the whole payload of
// a gvTot<=8 control byte in one load. Safe anywhere inside a group:
// the shorter a half-group's payload, the more bytes follow it (the
// other half's payload is at least 4 bytes, and the pool's codecSlack
// pad covers a final all-ones half exactly).
func load64(buf []byte, k int) uint64 {
	b := buf[k : k+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// gvByteLen returns the encoded payload size of one gap: 1-4
// little-endian bytes. Written as constant returns so the certifier's
// non-negativity summary (docs/LINT.md) proves the result >= 0 for all
// inputs.
func gvByteLen(u uint32) int {
	switch {
	case u < 1<<8:
		return 1
	case u < 1<<16:
		return 2
	case u < 1<<24:
		return 3
	}
	return 4
}

// zigzag maps a signed delta to an unsigned varint payload:
// 0,-1,1,-2,2... -> 0,1,2,3,4...
func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// varintLen returns the encoded size of u in bytes (LEB128: 7 payload
// bits per byte, high bit marks continuation).
func varintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// putVarint encodes u at dst[k:] and returns the next write position.
// The caller guarantees varintLen(u) bytes of room.
func putVarint(dst []byte, k int, u uint64) int {
	for u >= 0x80 {
		dst[k] = byte(u) | 0x80
		u >>= 7
		k++
	}
	dst[k] = byte(u)
	return k + 1
}

// getVarint decodes a varint at buf[k:] and returns the value and the
// next read position.
func getVarint(buf []byte, k int) (uint64, int) {
	var u uint64
	var shift uint
	for {
		b := buf[k]
		k++
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, k
		}
		shift += 7
	}
}

// getVarintBounded is getVarint with an explicit end check, for
// checked-mode validation of untrusted streams: ok is false when the
// varint runs past len(buf).
func getVarintBounded(buf []byte, k int) (uint64, int, bool) {
	var u uint64
	var shift uint
	for {
		if k >= len(buf) {
			return 0, k, false
		}
		b := buf[k]
		k++
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, k, true
		}
		shift += 7
	}
}

// encRowSize returns the encoded byte size of vertex v's sorted
// neighbor row: first-delta varint, then gvCtrl+payload per full
// 8-gap group, then the scalar varint tail. It is called once per
// vertex in the encoder's size pass; the certifier's non-negativity
// summary proves its result >= 0 (every term is a constant or an
// nn-summarized helper), which makes the subsequent prefix sum of
// sizes monotone.
func encRowSize(v int32, row []int32) int {
	if len(row) == 0 {
		return 0
	}
	sz := varintLen(zigzag(int64(row[0]) - int64(v)))
	prev := row[0]
	i := 1
	for ; i+gvGroup <= len(row); i += gvGroup {
		sz += gvCtrl
		for j := 0; j < gvGroup; j++ {
			u := row[i+j]
			sz += gvByteLen(uint32(u - prev))
			prev = u
		}
	}
	for ; i < len(row); i++ {
		sz += varintLen(uint64(uint32(row[i] - prev)))
		prev = row[i]
	}
	return sz
}

// encodeRow encodes vertex v's sorted neighbor row into dst, which must
// be exactly encRowSize(v, row) bytes.
func encodeRow(v int32, row []int32, dst []byte) {
	if len(row) == 0 {
		return
	}
	k := putVarint(dst, 0, zigzag(int64(row[0])-int64(v)))
	prev := row[0]
	i := 1
	for ; i+gvGroup <= len(row); i += gvGroup {
		ck := k // control word, filled after the tags are known
		k += gvCtrl
		var ctrl uint32
		for j := 0; j < gvGroup; j++ {
			u := row[i+j]
			g := uint32(u - prev)
			prev = u
			l := gvByteLen(g)
			ctrl |= uint32(l-1) << (2 * j)
			for b := 0; b < l; b++ {
				dst[k] = byte(g >> (8 * b))
				k++
			}
		}
		dst[ck] = byte(ctrl)
		dst[ck+1] = byte(ctrl >> 8)
	}
	for ; i < len(row); i++ {
		k = putVarint(dst, k, uint64(uint32(row[i]-prev)))
		prev = row[i]
	}
	_ = k
}

// decodeRow decodes vertex v's row from buf into out, which must have
// room for deg entries, and returns out[:deg]. buf is the row's byte
// stream starting at its first byte (Bytes[BOffs[v]:]) and must extend
// at least codecSlack bytes past the row's encoding — the pool pad, or
// the caller's own slack for standalone buffers. The group loop is
// unrolled by hand (eight masked-load stanzas per control word) so the
// hot path carries no per-gap branches and no call overhead.
func decodeRow(v int32, buf []byte, deg int32, out []int32) []int32 {
	if deg == 0 {
		return out[:0]
	}
	first, k := getVarint(buf, 0)
	u := int32(int64(v) + unzigzag(first))
	out[0] = u
	i := int32(1)
	for ; i+gvGroup <= deg; i += gvGroup {
		c0, c1 := buf[k], buf[k+1]
		k += gvCtrl
		o := out[i : i+gvGroup : i+gvGroup]
		m := &gvMasks[c0]
		if t := int(gvTot[c0]); t <= 8 {
			s, h := load64(buf, k), &gvShift[c0]
			u += int32(uint32(s) & m[0])
			o[0] = u
			u += int32(uint32(s>>h[1]) & m[1])
			o[1] = u
			u += int32(uint32(s>>h[2]) & m[2])
			o[2] = u
			u += int32(uint32(s>>h[3]) & m[3])
			o[3] = u
			k += t
		} else {
			f := &gvOffs[c0]
			u += int32(load32(buf, k) & m[0])
			o[0] = u
			u += int32(load32(buf, k+int(f[1])) & m[1])
			o[1] = u
			u += int32(load32(buf, k+int(f[2])) & m[2])
			o[2] = u
			u += int32(load32(buf, k+int(f[3])) & m[3])
			o[3] = u
			k += t
		}
		m = &gvMasks[c1]
		if t := int(gvTot[c1]); t <= 8 {
			s, h := load64(buf, k), &gvShift[c1]
			u += int32(uint32(s) & m[0])
			o[4] = u
			u += int32(uint32(s>>h[1]) & m[1])
			o[5] = u
			u += int32(uint32(s>>h[2]) & m[2])
			o[6] = u
			u += int32(uint32(s>>h[3]) & m[3])
			o[7] = u
			k += t
		} else {
			f := &gvOffs[c1]
			u += int32(load32(buf, k) & m[0])
			o[4] = u
			u += int32(load32(buf, k+int(f[1])) & m[1])
			o[5] = u
			u += int32(load32(buf, k+int(f[2])) & m[2])
			o[6] = u
			u += int32(load32(buf, k+int(f[3])) & m[3])
			o[7] = u
			k += t
		}
	}
	for ; i < deg; i++ {
		gap, k2 := getVarint(buf, k)
		k = k2
		u += int32(gap)
		out[i] = u
	}
	return out[:deg]
}
