package graph

// The byte codec behind CGraph (docs/GRAPH.md "Compressed CSR"): each
// vertex's sorted neighbor row is stored as a zigzag-encoded varint
// delta of the first neighbor from the vertex id, followed by plain
// varint gaps between consecutive neighbors — the Ligra+/GAP encoding
// that trades a few shifts per edge for a 2-3x smaller adjacency
// stream. Sorted rows make every gap non-negative, so gaps need no sign
// bit; only the first delta, which may point anywhere relative to v,
// pays for zigzag.
//
// The encoder writes through an unchecked range scatter whose byte
// offsets come from a prefix sum of per-row sizes; `rpblint -certify`
// proves those boundaries monotone and in-bounds (the size helpers
// below are part of that proof: the interprocedural non-negativity
// summary shows every pre-scan size is >= 0, see docs/LINT.md). The
// decoder trusts the same offsets — CGraph.Validate is the checked-mode
// pass that re-verifies every row decodes exactly to its boundary.

// zigzag maps a signed delta to an unsigned varint payload:
// 0,-1,1,-2,2... -> 0,1,2,3,4...
func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// varintLen returns the encoded size of u in bytes (LEB128: 7 payload
// bits per byte, high bit marks continuation).
func varintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// putVarint encodes u at dst[k:] and returns the next write position.
// The caller guarantees varintLen(u) bytes of room.
func putVarint(dst []byte, k int, u uint64) int {
	for u >= 0x80 {
		dst[k] = byte(u) | 0x80
		u >>= 7
		k++
	}
	dst[k] = byte(u)
	return k + 1
}

// getVarint decodes a varint at buf[k:] and returns the value and the
// next read position.
func getVarint(buf []byte, k int) (uint64, int) {
	var u uint64
	var shift uint
	for {
		b := buf[k]
		k++
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, k
		}
		shift += 7
	}
}

// encRowSize returns the encoded byte size of vertex v's sorted
// neighbor row. It is called once per vertex in the encoder's size
// pass; the certifier's non-negativity summary proves its result >= 0,
// which makes the subsequent prefix sum of sizes monotone.
func encRowSize(v int32, row []int32) int {
	if len(row) == 0 {
		return 0
	}
	sz := varintLen(zigzag(int64(row[0]) - int64(v)))
	prev := row[0]
	for _, u := range row[1:] {
		sz += varintLen(uint64(u-prev) & 0x7fffffff)
		prev = u
	}
	return sz
}

// encodeRow encodes vertex v's sorted neighbor row into dst, which must
// be exactly encRowSize(v, row) bytes.
func encodeRow(v int32, row []int32, dst []byte) {
	if len(row) == 0 {
		return
	}
	k := putVarint(dst, 0, zigzag(int64(row[0])-int64(v)))
	prev := row[0]
	for _, u := range row[1:] {
		k = putVarint(dst, k, uint64(u-prev)&0x7fffffff)
		prev = u
	}
	_ = k
}

// decodeRow decodes vertex v's row from buf into out, which must have
// room for deg entries, and returns out[:deg]. buf is the row's exact
// byte segment Bytes[BOffs[v]:BOffs[v+1]].
func decodeRow(v int32, buf []byte, deg int32, out []int32) []int32 {
	if deg == 0 {
		return out[:0]
	}
	first, k := getVarint(buf, 0)
	u := int32(int64(v) + unzigzag(first))
	out[0] = u
	for i := int32(1); i < deg; i++ {
		gap, k2 := getVarint(buf, k)
		k = k2
		u += int32(gap)
		out[i] = u
	}
	return out[:deg]
}
