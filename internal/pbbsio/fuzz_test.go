package pbbsio

import (
	"bytes"
	"strings"
	"testing"
)

// Robustness fuzzing: the readers must reject or accept arbitrary
// bytes without panicking or allocating absurd amounts. Valid inputs
// that parse must re-serialize to a structure that parses identically.

func FuzzReadAdjacencyGraph(f *testing.F) {
	var buf bytes.Buffer
	f.Add("AdjacencyGraph\n2\n2\n0\n1\n1\n0\n")
	f.Add("AdjacencyGraph\n0\n0\n")
	f.Add("AdjacencyGraph\n1\n999999999999999\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		g, err := ReadAdjacencyGraph(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted graphs must be structurally valid and re-serializable.
		if g.Offs[g.N] != g.M() || int(g.M()) != len(g.Adj) {
			t.Fatalf("accepted inconsistent graph: n=%d m=%d adj=%d", g.N, g.M(), len(g.Adj))
		}
		buf.Reset()
		if err := WriteAdjacencyGraph(&buf, g); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		g2, err := ReadAdjacencyGraph(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if g2.N != g.N || g2.M() != g.M() {
			t.Fatalf("round trip changed sizes")
		}
	})
}

func FuzzReadSequenceInt(f *testing.F) {
	f.Add("sequenceInt\n1\n2\n3\n")
	f.Add("sequenceInt\n")
	f.Add("sequenceInt\n-1\n")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		xs, err := ReadSequenceInt(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSequenceInt(&buf, xs); err != nil {
			t.Fatal(err)
		}
		ys, err := ReadSequenceInt(&buf)
		if err != nil || len(ys) != len(xs) {
			t.Fatalf("round trip: %v (%d vs %d)", err, len(ys), len(xs))
		}
	})
}

func FuzzReadPoints2D(f *testing.F) {
	f.Add("pbbs_sequencePoint2d\n1.5 2.5\n")
	f.Add("pbbs_sequencePoint2d\nNaN Inf\n")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		_, _ = ReadPoints2D(strings.NewReader(data)) // must not panic
	})
}
