// Package pbbsio reads and writes the Problem Based Benchmark Suite's
// text file formats, so this reproduction can exchange inputs with the
// original C++ PBBS and the Rust RPB:
//
//	sequenceInt                 "sequenceInt" header, one integer per line
//	AdjacencyGraph              offsets then edge targets (CSR)
//	WeightedAdjacencyGraph      offsets, targets, then edge weights
//	pbbs_sequencePoint2d        x y pairs, one point per line
//
// All readers validate structure (counts, ranges) and return typed
// errors rather than panicking on malformed files.
package pbbsio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
	"repro/internal/seqgen"
)

// Format headers as PBBS writes them.
const (
	HeaderSequenceInt   = "sequenceInt"
	HeaderAdjacency     = "AdjacencyGraph"
	HeaderWeightedAdj   = "WeightedAdjacencyGraph"
	HeaderSequencePoint = "pbbs_sequencePoint2d"
)

// scanner wraps bufio.Scanner with line counting for error reporting.
type scanner struct {
	s    *bufio.Scanner
	line int
}

func newScanner(r io.Reader) *scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<16), 1<<24)
	return &scanner{s: s}
}

func (sc *scanner) next() (string, error) {
	for sc.s.Scan() {
		sc.line++
		tok := sc.s.Text()
		if tok != "" {
			return tok, nil
		}
	}
	if err := sc.s.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("pbbsio: unexpected end of file at line %d", sc.line)
}

func (sc *scanner) nextInt() (int64, error) {
	tok, err := sc.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("pbbsio: line %d: %w", sc.line, err)
	}
	return v, nil
}

func (sc *scanner) nextFloat() (float64, error) {
	tok, err := sc.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("pbbsio: line %d: %w", sc.line, err)
	}
	return v, nil
}

func expectHeader(sc *scanner, want string) error {
	got, err := sc.next()
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("pbbsio: bad header %q, want %q", got, want)
	}
	return nil
}

// WriteSequenceInt writes xs in PBBS sequenceInt format.
func WriteSequenceInt(w io.Writer, xs []uint32) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, HeaderSequenceInt); err != nil {
		return err
	}
	for _, x := range xs {
		if _, err := fmt.Fprintln(bw, x); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSequenceInt parses a PBBS sequenceInt file.
func ReadSequenceInt(r io.Reader) ([]uint32, error) {
	sc := newScanner(r)
	sc.s.Split(bufio.ScanWords)
	if err := expectHeader(sc, HeaderSequenceInt); err != nil {
		return nil, err
	}
	var out []uint32
	for {
		tok, err := sc.next()
		if err != nil {
			if len(out) > 0 || err == io.EOF {
				break
			}
			break
		}
		v, perr := strconv.ParseUint(tok, 10, 32)
		if perr != nil {
			return nil, fmt.Errorf("pbbsio: line %d: %w", sc.line, perr)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

// WriteAdjacencyGraph writes g in PBBS AdjacencyGraph format: header,
// n, m, n offsets, m edge targets.
func WriteAdjacencyGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, HeaderAdjacency)
	fmt.Fprintln(bw, g.N)
	fmt.Fprintln(bw, g.M())
	for v := int32(0); v < g.N; v++ {
		fmt.Fprintln(bw, g.Offs[v])
	}
	for _, u := range g.Adj {
		fmt.Fprintln(bw, u)
	}
	return bw.Flush()
}

// ReadAdjacencyGraph parses a PBBS AdjacencyGraph file into CSR form.
func ReadAdjacencyGraph(r io.Reader) (*graph.Graph, error) {
	sc := newScanner(r)
	sc.s.Split(bufio.ScanWords)
	if err := expectHeader(sc, HeaderAdjacency); err != nil {
		return nil, err
	}
	n, err := sc.nextInt()
	if err != nil {
		return nil, err
	}
	m, err := sc.nextInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || m < 0 || n > 1<<31-2 || m > 1<<31-2 {
		return nil, fmt.Errorf("pbbsio: implausible sizes n=%d m=%d", n, m)
	}
	g := &graph.Graph{
		N:    int32(n),
		Offs: make([]int32, n+1),
		Adj:  make([]int32, m),
	}
	prev := int64(0)
	for v := int64(0); v < n; v++ {
		off, err := sc.nextInt()
		if err != nil {
			return nil, err
		}
		if off < prev || off > m {
			return nil, fmt.Errorf("pbbsio: offset %d of vertex %d out of order", off, v)
		}
		g.Offs[v] = int32(off)
		prev = off
	}
	g.Offs[n] = int32(m)
	for e := int64(0); e < m; e++ {
		t, err := sc.nextInt()
		if err != nil {
			return nil, err
		}
		if t < 0 || t >= n {
			return nil, fmt.Errorf("pbbsio: edge target %d out of range", t)
		}
		g.Adj[e] = int32(t)
	}
	return g, nil
}

// WriteWeightedAdjacencyGraph writes g with per-edge weights appended.
func WriteWeightedAdjacencyGraph(w io.Writer, g *graph.WGraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, HeaderWeightedAdj)
	fmt.Fprintln(bw, g.N)
	fmt.Fprintln(bw, g.M())
	for v := int32(0); v < g.N; v++ {
		fmt.Fprintln(bw, g.Offs[v])
	}
	for _, u := range g.Adj {
		fmt.Fprintln(bw, u)
	}
	for _, wt := range g.Wgt {
		fmt.Fprintln(bw, wt)
	}
	return bw.Flush()
}

// ReadWeightedAdjacencyGraph parses a WeightedAdjacencyGraph file.
func ReadWeightedAdjacencyGraph(r io.Reader) (*graph.WGraph, error) {
	sc := newScanner(r)
	sc.s.Split(bufio.ScanWords)
	if err := expectHeader(sc, HeaderWeightedAdj); err != nil {
		return nil, err
	}
	n, err := sc.nextInt()
	if err != nil {
		return nil, err
	}
	m, err := sc.nextInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || m < 0 || n > 1<<31-2 || m > 1<<31-2 {
		return nil, fmt.Errorf("pbbsio: implausible sizes n=%d m=%d", n, m)
	}
	g := &graph.WGraph{
		Graph: graph.Graph{N: int32(n), Offs: make([]int32, n+1), Adj: make([]int32, m)},
		Wgt:   make([]uint32, m),
	}
	prev := int64(0)
	for v := int64(0); v < n; v++ {
		off, err := sc.nextInt()
		if err != nil {
			return nil, err
		}
		if off < prev || off > m {
			return nil, fmt.Errorf("pbbsio: offset %d of vertex %d out of order", off, v)
		}
		g.Offs[v] = int32(off)
		prev = off
	}
	g.Offs[n] = int32(m)
	for e := int64(0); e < m; e++ {
		t, err := sc.nextInt()
		if err != nil {
			return nil, err
		}
		if t < 0 || t >= n {
			return nil, fmt.Errorf("pbbsio: edge target %d out of range", t)
		}
		g.Adj[e] = int32(t)
	}
	for e := int64(0); e < m; e++ {
		wt, err := sc.nextInt()
		if err != nil {
			return nil, err
		}
		if wt < 0 || wt > 1<<32-1 {
			return nil, fmt.Errorf("pbbsio: weight %d out of range", wt)
		}
		g.Wgt[e] = uint32(wt)
	}
	return g, nil
}

// WritePoints2D writes points in pbbs_sequencePoint2d format.
func WritePoints2D(w io.Writer, pts []seqgen.Point) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, HeaderSequencePoint)
	for _, p := range pts {
		fmt.Fprintln(bw, p.X, p.Y)
	}
	return bw.Flush()
}

// ReadPoints2D parses a pbbs_sequencePoint2d file.
func ReadPoints2D(r io.Reader) ([]seqgen.Point, error) {
	sc := newScanner(r)
	sc.s.Split(bufio.ScanWords)
	if err := expectHeader(sc, HeaderSequencePoint); err != nil {
		return nil, err
	}
	var out []seqgen.Point
	for {
		xs, err := sc.next()
		if err != nil {
			break
		}
		x, perr := strconv.ParseFloat(xs, 64)
		if perr != nil {
			return nil, fmt.Errorf("pbbsio: line %d: %w", sc.line, perr)
		}
		y, err := sc.nextFloat()
		if err != nil {
			return nil, fmt.Errorf("pbbsio: dangling x coordinate: %w", err)
		}
		out = append(out, seqgen.Point{X: x, Y: y})
	}
	return out, nil
}
