package pbbsio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/seqgen"
)

func TestSequenceIntRoundTrip(t *testing.T) {
	xs := []uint32{0, 5, 4294967295, 17}
	var buf bytes.Buffer
	if err := WriteSequenceInt(&buf, xs); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), HeaderSequenceInt+"\n") {
		t.Fatalf("missing header: %q", buf.String()[:20])
	}
	got, err := ReadSequenceInt(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("got %v", got)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("got %v, want %v", got, xs)
		}
	}
}

func TestSequenceIntPropertyRoundTrip(t *testing.T) {
	f := func(xs []uint32) bool {
		var buf bytes.Buffer
		if err := WriteSequenceInt(&buf, xs); err != nil {
			return false
		}
		got, err := ReadSequenceInt(&buf)
		if err != nil || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceIntBadHeader(t *testing.T) {
	if _, err := ReadSequenceInt(strings.NewReader("wrongHeader\n1\n")); err == nil {
		t.Fatal("accepted bad header")
	}
}

func TestSequenceIntBadValue(t *testing.T) {
	if _, err := ReadSequenceInt(strings.NewReader("sequenceInt\n1\nxyz\n")); err == nil {
		t.Fatal("accepted non-numeric value")
	}
	if _, err := ReadSequenceInt(strings.NewReader("sequenceInt\n-5\n")); err == nil {
		t.Fatal("accepted negative value for uint32 sequence")
	}
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.N != b.N || a.M() != b.M() {
		return false
	}
	for v := int32(0); v <= a.N; v++ {
		if a.Offs[v] != b.Offs[v] {
			return false
		}
	}
	for e := range a.Adj {
		if a.Adj[e] != b.Adj[e] {
			return false
		}
	}
	return true
}

func TestAdjacencyGraphRoundTrip(t *testing.T) {
	g := graph.BuildCSR(nil, 4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 3, To: 0}})
	var buf bytes.Buffer
	if err := WriteAdjacencyGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdjacencyGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("graph round trip mismatch")
	}
}

func TestAdjacencyGraphGeneratedRoundTrip(t *testing.T) {
	edges := graph.RMAT(nil, 8, 4, 3)
	g := graph.BuildCSR(nil, 256, edges)
	var buf bytes.Buffer
	if err := WriteAdjacencyGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdjacencyGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("generated graph round trip mismatch")
	}
}

func TestAdjacencyGraphRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":        "NotAGraph\n2\n1\n0\n1\n",
		"truncated offsets": "AdjacencyGraph\n3\n2\n0\n",
		"offset too big":    "AdjacencyGraph\n2\n1\n0\n9\n0\n",
		"offset decreasing": "AdjacencyGraph\n3\n2\n0\n2\n1\n0\n0\n",
		"target range":      "AdjacencyGraph\n2\n1\n0\n0\n7\n",
		"negative n":        "AdjacencyGraph\n-2\n1\n",
	}
	for name, data := range cases {
		if _, err := ReadAdjacencyGraph(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted malformed file", name)
		}
	}
}

func TestWeightedAdjacencyRoundTrip(t *testing.T) {
	g := graph.BuildWCSR(nil, 3, []graph.WEdge{{From: 0, To: 1, W: 7}, {From: 1, To: 2, W: 9}, {From: 2, To: 0, W: 1}})
	var buf bytes.Buffer
	if err := WriteWeightedAdjacencyGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeightedAdjacencyGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(&g.Graph, &got.Graph) {
		t.Fatal("weighted graph structure mismatch")
	}
	for e := range g.Wgt {
		if g.Wgt[e] != got.Wgt[e] {
			t.Fatalf("weight %d mismatch", e)
		}
	}
}

func TestWeightedAdjacencyRejectsMalformed(t *testing.T) {
	if _, err := ReadWeightedAdjacencyGraph(strings.NewReader("WeightedAdjacencyGraph\n1\n1\n0\n0\n-3\n")); err == nil {
		t.Fatal("accepted negative weight")
	}
	if _, err := ReadWeightedAdjacencyGraph(strings.NewReader("AdjacencyGraph\n1\n0\n0\n")); err == nil {
		t.Fatal("accepted unweighted header")
	}
}

func TestPoints2DRoundTrip(t *testing.T) {
	pts := seqgen.KuzminPoints(nil, 500, 4)
	var buf bytes.Buffer
	if err := WritePoints2D(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints2D(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("got %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: %v != %v", i, got[i], pts[i])
		}
	}
}

func TestPoints2DRejectsMalformed(t *testing.T) {
	if _, err := ReadPoints2D(strings.NewReader("pbbs_sequencePoint2d\n1.5\n")); err == nil {
		t.Fatal("accepted dangling coordinate")
	}
	if _, err := ReadPoints2D(strings.NewReader("pbbs_sequencePoint2d\nab cd\n")); err == nil {
		t.Fatal("accepted non-numeric coordinates")
	}
	if _, err := ReadPoints2D(strings.NewReader("bogus\n")); err == nil {
		t.Fatal("accepted bad header")
	}
}

func TestEmptySequences(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSequenceInt(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSequenceInt(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sequence: %v %v", got, err)
	}
	buf.Reset()
	if err := WritePoints2D(&buf, nil); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadPoints2D(&buf)
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty points: %v %v", pts, err)
	}
}
