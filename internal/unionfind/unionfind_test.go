package unionfind

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestBasicUnionFind(t *testing.T) {
	u := New(5)
	if u.Len() != 5 || u.Components() != 5 {
		t.Fatalf("fresh UF: len=%d comps=%d", u.Len(), u.Components())
	}
	if !u.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union should not merge")
	}
	if !u.SameSet(0, 1) || u.SameSet(0, 2) {
		t.Fatal("membership wrong")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Components() != 2 {
		t.Fatalf("components = %d, want 2", u.Components())
	}
}

func TestFindRootIsSelfParent(t *testing.T) {
	u := New(10)
	u.Union(4, 7)
	r := u.Find(4)
	if u.Find(7) != r {
		t.Fatal("roots differ after union")
	}
	if u.parent[r].Load() != r {
		t.Fatal("root is not self-parented")
	}
}

func TestUnionFindMatchesOracleProperty(t *testing.T) {
	// Oracle: naive labeling with full relabeling per union.
	f := func(pairs []uint16, nRaw uint8) bool {
		n := int32(nRaw%60) + 2
		u := New(n)
		labels := make([]int32, n)
		for i := range labels {
			labels[i] = int32(i)
		}
		for _, p := range pairs {
			a := int32(p) % n
			b := int32(p>>8) % n
			u.Union(a, b)
			la, lb := labels[a], labels[b]
			if la != lb {
				for i := range labels {
					if labels[i] == lb {
						labels[i] = la
					}
				}
			}
		}
		for i := int32(0); i < n; i++ {
			for j := i + 1; j < n; j++ {
				if u.SameSet(i, j) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUnionsChain(t *testing.T) {
	// Union i with i+1 for all i in parallel: one component must remain.
	const n = 50000
	u := New(n)
	p := core.NewPool(4)
	defer p.Close()
	p.Do(func(w *core.Worker) {
		core.ForRange(w, 0, n-1, 0, func(i int) {
			u.Union(int32(i), int32(i+1))
		})
	})
	if c := u.Components(); c != 1 {
		t.Fatalf("components = %d, want 1", c)
	}
}

// TestConcurrentUnionFindStress drives mixed Union/Find traffic from
// every worker over a random edge soup — the access pattern of the CC
// finish phase, where finds chase parents that other workers are
// concurrently hooking and halving. Run under -race in CI. The final
// structure must match a sequential union-find over the same edges both
// in membership and in exact labels (Union hooks the higher-id root
// under the lower, so every component's root is its minimum id
// regardless of interleaving), and a second pass must be idempotent.
func TestConcurrentUnionFindStress(t *testing.T) {
	const n = 30000
	const nEdges = 4 * n
	edges := make([][2]int32, nEdges)
	s := uint64(0x5eed)
	rnd := func() uint64 {
		// xorshift: deterministic edge soup, no rand dependency
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := range edges {
		edges[i] = [2]int32{int32(rnd() % n), int32(rnd() % n)}
	}
	u := New(n)
	p := core.NewPool(8)
	defer p.Close()
	p.Do(func(w *core.Worker) {
		core.ForRange(w, 0, nEdges, 0, func(i int) {
			e := edges[i]
			u.Union(e[0], e[1])
			// Interleave finds on unrelated vertices: path halving
			// races against concurrent hooks.
			u.Find(int32(i) % n)
		})
	})

	seq := New(n)
	for _, e := range edges {
		seq.Union(e[0], e[1])
	}
	for v := int32(0); v < n; v++ {
		if got, want := u.Find(v), seq.Find(v); got != want {
			t.Fatalf("label[%d] = %d, want %d", v, got, want)
		}
	}
	if u.Components() != seq.Components() {
		t.Fatalf("components = %d, want %d", u.Components(), seq.Components())
	}

	// Idempotence: replaying the whole edge soup (concurrently again)
	// merges nothing and moves no label.
	before := make([]int32, n)
	for v := int32(0); v < n; v++ {
		before[v] = u.Find(v)
	}
	var merges int64
	p.Do(func(w *core.Worker) {
		merges = core.MapReduce(w, nEdges, int64(0), func(i int) int64 {
			if u.Union(edges[i][0], edges[i][1]) {
				return 1
			}
			return 0
		}, func(a, b int64) int64 { return a + b })
	})
	if merges != 0 {
		t.Fatalf("replay merged %d pairs, want 0", merges)
	}
	for v := int32(0); v < n; v++ {
		if u.Find(v) != before[v] {
			t.Fatalf("label[%d] moved on replay: %d -> %d", v, before[v], u.Find(v))
		}
	}
}

func TestConcurrentUnionsCountMerges(t *testing.T) {
	// Exactly n-1 unions can succeed when building a tree over n nodes,
	// no matter the interleaving.
	const n = 20000
	u := New(n)
	p := core.NewPool(4)
	defer p.Close()
	var merges int64
	p.Do(func(w *core.Worker) {
		merges = core.MapReduce(w, n-1, int64(0), func(i int) int64 {
			if u.Union(int32(i), int32(i+1)) {
				return 1
			}
			return 0
		}, func(a, b int64) int64 { return a + b })
	})
	if merges != n-1 {
		t.Fatalf("merges = %d, want %d", merges, n-1)
	}
}
