// Package unionfind provides a lock-free concurrent union-find
// (disjoint-set) structure, the substrate under the spanning-forest
// benchmarks (sf, msf). Unions link roots with CAS — the paper's AW
// pattern: conflicting writes to shared parent slots, synchronized with
// atomics — and finds apply best-effort path halving.
package unionfind

import "sync/atomic"

// UF is a concurrent disjoint-set forest over n elements.
type UF struct {
	parent []atomic.Int32
}

// New creates a forest of n singleton sets.
func New(n int32) *UF {
	u := &UF{parent: make([]atomic.Int32, n)}
	for i := range u.parent {
		u.parent[i].Store(int32(i))
	}
	return u
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Reset returns every element to its own singleton set, reusing the
// parent array, so round-based callers can keep one forest across
// rounds instead of allocating a fresh one (docs/MEMORY.md). Quiescent
// use only: no concurrent Find/Union may be in flight.
func (u *UF) Reset() {
	for i := range u.parent {
		u.parent[i].Store(int32(i))
	}
}

// Find returns the current root of x, halving paths as it walks. Under
// concurrent unions the returned root may be stale by the time the
// caller uses it; Union accounts for that by revalidating with CAS.
func (u *UF) Find(x int32) int32 {
	for {
		p := u.parent[x].Load()
		if p == x {
			return x
		}
		gp := u.parent[p].Load()
		if gp == p {
			return p
		}
		// Path halving: point x at its grandparent. A lost race is fine.
		u.parent[x].CompareAndSwap(p, gp)
		x = gp
	}
}

// Union merges the sets of a and b, returning true if this call joined
// two previously distinct sets. Roots are linked by id order (higher
// root under lower), which both avoids cycles and makes the structure
// deterministic enough for testing.
func (u *UF) Union(a, b int32) bool {
	for {
		ra, rb := u.Find(a), u.Find(b)
		if ra == rb {
			return false
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		// Link the larger-id root under the smaller-id root. The CAS
		// fails if rb gained a parent since Find — then retry.
		if u.parent[rb].CompareAndSwap(rb, ra) {
			return true
		}
	}
}

// SameSet reports whether a and b are currently in the same set. It is
// only stable when no unions run concurrently.
func (u *UF) SameSet(a, b int32) bool { return u.Find(a) == u.Find(b) }

// Components counts the current number of sets (quiescent use only).
func (u *UF) Components() int {
	n := 0
	for i := range u.parent {
		if u.parent[i].Load() == int32(i) {
			n++
		}
	}
	return n
}
