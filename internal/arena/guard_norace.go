//go:build !race

package arena

// guard is a no-op outside -race builds; see guard_race.go.
type guard struct{}

func (g *guard) enter() {}
func (g *guard) exit()  {}
