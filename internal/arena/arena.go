// Package arena provides per-worker scratch memory for the benchmark
// suite's hot paths: generation-stamped bump arenas hung off each
// scheduler worker, with typed checkout, LIFO scoped release, and a
// whole-arena Reset between benchmark rounds. See docs/MEMORY.md for
// the lifecycle and the destination-passing conventions built on top.
//
// The design goal is steady-state zero allocation: an arena grows while
// a kernel warms up, then every later round checks the same memory out
// again. Checkout is restricted to pointer-free element types (the
// arena's backing is untyped []byte that the garbage collector does not
// scan), with a transparent make fallback for pointered types and for
// nil arenas/workers, so callers never branch.
//
// Fear-level tagging (paper Table 3): a checkout is owner-only — only
// the worker the arena belongs to may Alloc/Release/Reset — which makes
// the arena itself Block-disjoint state, Fearless. The slice checked
// out may then be shared across workers under whatever pattern the
// algorithm declares for it (Block-disjoint writes in the scan/pack
// primitives). Builds with -race additionally refuse concurrent
// metadata use: a cross-worker handoff of the *Arena trips a busy-flag
// panic instead of corrupting the bump offset, so the rpblint census
// stays truthful about who touches what.
package arena

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"

	"repro/internal/sched"
)

// Integer covers the index types accepted as checkout lengths, so call
// sites can pass scan totals (int32) or lengths (int) without
// conversion — and, just as important, without wrapping the length in
// an expression the offset-provenance certifier cannot see through.
type Integer interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}

// minSlab is the smallest slab the arena allocates. 256 KiB amortizes
// growth without bloating idle workers.
const minSlab = 256 << 10

// Arena is a generation-stamped bump allocator over garbage-collector-
// opaque byte slabs. It is owner-only: exactly one worker (or one
// goroutine, for a standalone arena) may call its methods. Zero value
// is ready to use.
type Arena struct {
	cur   []byte   // current slab; bump allocations come from here
	off   int      // bump offset into cur
	full  [][]byte // retired slabs, kept alive until Reset consolidates
	gen   uint32   // generation stamp; Reset increments it
	grown int      // bytes requested past cur across this generation

	busy  guard    // -race builds: refuse concurrent metadata use
	notes siteNote // -race builds: first checkout site per generation
}

// Mark is a point-in-time position in an arena, used for LIFO scoped
// release: Release(m) returns everything checked out since Mark to the
// arena. A mark is stamped with the arena's generation; releasing a
// mark taken before a Reset panics instead of silently rewinding into
// memory that later checkouts now own.
type Mark struct {
	gen  uint32
	full int // len(a.full) at mark time
	off  int
}

// Standalone returns a free-standing arena owned by the calling
// goroutine rather than hung off a pool worker. Long-running goroutines
// outside the scheduler (the mq worker loops staging push/pop batches)
// use it to get the same checkout discipline and steady-state reuse as
// pool workers.
func Standalone() *Arena { return new(Arena) }

// Of returns the per-worker arena for w, creating it on first use. A
// nil worker yields a nil arena, for which every checkout transparently
// falls back to make — sequential code paths need no special casing.
func Of(w *sched.Worker) *Arena {
	if w == nil {
		return nil
	}
	if s, ok := w.Scratch().(*wscratch); ok {
		return &s.arena
	}
	s := newWscratch()
	w.SetScratch(s)
	return &s.arena
}

// Mark records the current checkout position.
func (a *Arena) Mark() Mark {
	if a == nil {
		return Mark{}
	}
	return Mark{gen: a.gen, full: len(a.full), off: a.off}
}

// Release rewinds the arena to m, returning everything checked out
// since the matching Mark. Marks must be released in LIFO order.
// Releasing a mark from a previous generation (the arena was Reset in
// between) panics: the memory it denotes has been handed to new owners.
//
// If the arena grew new slabs since the mark, a plain rewind would
// leave the bump offset stranded in the newest slab. Two cases:
//   - the mark covers the whole arena (nothing was checked out before
//     it): the grown slabs are consolidated into one slab of the
//     combined size on the spot, so the very next round runs without
//     growing — warm-up converges after a single release;
//   - something before the mark is still live: the rewind is deferred
//     and the retired slabs stay checked out until the enclosing
//     Release or the next Reset consolidates them. The leak is bounded
//     by one round's growth and exists only while the arena warms up.
func (a *Arena) Release(m Mark) {
	if a == nil {
		return
	}
	a.busy.enter()
	defer a.busy.exit()
	if m.gen != a.gen {
		msg := fmt.Sprintf("arena: Release of stale mark (mark gen %d, arena gen %d): arena was Reset while the checkout was live", m.gen, a.gen)
		if site := a.notes.lookup(m.gen); site != "" {
			msg += "; the mark generation's first checkout was allocated at " + site
		}
		panic(msg)
	}
	switch {
	case m.full == len(a.full):
		a.off = m.off
	case m.full == 0 && m.off == 0:
		a.consolidate()
	}
}

// consolidate replaces the grown slab chain with one slab of the
// combined capacity, rewound to empty. Callers hold the busy guard.
func (a *Arena) consolidate() {
	total := len(a.cur)
	for _, s := range a.full {
		total += len(s)
	}
	a.full = nil
	a.cur = make([]byte, total)
	a.off = 0
	a.grown = 0
}

// Reset returns every outstanding checkout to the arena and bumps the
// generation stamp, invalidating all live marks. Call it between
// benchmark rounds, when nothing checked out in the previous round is
// referenced anymore. If the previous generation overflowed into extra
// slabs, Reset consolidates them into one slab of the combined size, so
// the steady state is a single slab and Reset is two stores.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.busy.enter()
	defer a.busy.exit()
	a.gen++
	a.notes.prune(a.gen)
	if len(a.full) > 0 {
		a.consolidate()
	}
	a.off = 0
	a.grown = 0
}

// Stats reports the arena's current shape, for the memory-telemetry
// layer and tests.
type Stats struct {
	Capacity int    // total slab bytes resident
	Used     int    // bytes checked out of the current slab
	Slabs    int    // slab count (1 in steady state)
	Gen      uint32 // generation stamp
}

func (a *Arena) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	cap := len(a.cur)
	for _, s := range a.full {
		cap += len(s)
	}
	return Stats{Capacity: cap, Used: a.off, Slabs: len(a.full) + 1, Gen: a.gen}
}

// Alloc checks n elements of type T out of a, zeroed — the drop-in
// replacement for make([]T, n). T must be explicit at the call site and
// the length type is inferred: arena.Alloc[int32](a, nblocks).
//
// Falls back to make when a is nil, T contains pointers (the arena
// backing is not scanned by the garbage collector, so storing pointers
// in it would be unsound), or T has zero size.
func Alloc[T any, I Integer](a *Arena, n I) []T {
	s := AllocUninit[T](a, n)
	clear(s)
	return s
}

// AllocUninit is Alloc without the zeroing: the returned slice may
// contain garbage from earlier generations. Use it when every element
// is written before being read (ping-pong buffers, scatter targets with
// certified-total coverage).
func AllocUninit[T any, I Integer](a *Arena, n I) []T {
	nn := int(n)
	if nn < 0 {
		panic("arena: negative checkout length")
	}
	size := int(unsafe.Sizeof(*new(T)))
	if a == nil || size == 0 || hasPointers[T]() {
		return make([]T, nn)
	}
	a.busy.enter()
	defer a.busy.exit()
	a.notes.record(a.gen)
	bytes := nn * size
	if bytes/size != nn {
		panic("arena: checkout size overflow")
	}
	p := a.bump(bytes)
	if p == nil {
		return nil // nn == 0
	}
	return unsafe.Slice((*T)(p), nn)
}

// bump carves n bytes (8-byte aligned) out of the current slab, growing
// a fresh slab when it does not fit. Returns nil for n == 0.
func (a *Arena) bump(n int) unsafe.Pointer {
	if n == 0 {
		return nil
	}
	const align = 8
	off := (a.off + align - 1) &^ (align - 1)
	if off+n > len(a.cur) {
		a.grow(n)
		off = 0
	}
	p := unsafe.Pointer(&a.cur[off])
	a.off = off + n
	return p
}

// grow retires the current slab and installs a new one big enough for
// n bytes, at least doubling so repeated growth is geometric.
func (a *Arena) grow(n int) {
	want := 2 * len(a.cur)
	if want < n {
		want = n
	}
	if want < minSlab {
		want = minSlab
	}
	if len(a.cur) > 0 {
		a.full = append(a.full, a.cur)
	}
	a.cur = make([]byte, want)
	a.off = 0
	a.grown += n
}

// hasPointers reports whether T contains pointers (and therefore must
// not live in arena memory). The reflect answer is cached per type; the
// steady-state cost is one lock-free map load.
func hasPointers[T any]() bool {
	t := reflect.TypeFor[T]()
	if v, ok := ptrFreeCache.Load(t); ok {
		return v.(bool)
	}
	// Pointers, maps, chans, funcs, slices, strings, interfaces — and
	// aggregates containing them — all make the GC scan the memory.
	has := typeHasPointers(t)
	ptrFreeCache.Store(t, has)
	return has
}

var ptrFreeCache sync.Map // reflect.Type -> bool

func typeHasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return t.Len() > 0 && typeHasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if typeHasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}
