//go:build race

package arena

import "sync/atomic"

// guard refuses concurrent arena-metadata use in -race builds: an arena
// is owner-only, so two goroutines inside Alloc/Release/Reset at once
// means the *Arena was handed across workers. The busy flag turns that
// into a deterministic panic (race-detector-adjacent, but also catches
// overlaps the detector's schedule never produces). Non-race builds
// compile this to nothing (guard_norace.go).
type guard struct {
	flag atomic.Int32
}

func (g *guard) enter() {
	if !g.flag.CompareAndSwap(0, 1) {
		panic("arena: concurrent use of an owner-only arena (cross-worker handoff?)")
	}
}

func (g *guard) exit() { g.flag.Store(0) }
