package arena

import (
	"reflect"

	"repro/internal/sched"
)

// Typed box stacks: per-worker reusable state objects for pointered
// scratch that cannot live in the byte arena. A "box" is a heap struct
// (typically holding slices that grow once and are reused) checked out
// by type with AcquireBox and returned with ReleaseBox. Stacks are LIFO
// per (worker, type) so help-first join nesting is safe: if a worker
// helps with a stolen task that acquires the same box type mid-join, it
// pops a different box than the one its interrupted caller holds.
//
// Boxes also carry the RangeBody state for sched.ForBody: passing a
// box pointer as the interface body allocates nothing, which is what
// lets the destination-passing primitives in internal/core reach zero
// steady-state allocations.

// wscratch is the container hung off sched.Worker's scratch slot: the
// worker's bump arena plus its box stacks.
type wscratch struct {
	arena Arena
	boxes map[reflect.Type][]any
}

func newWscratch() *wscratch {
	return &wscratch{boxes: make(map[reflect.Type][]any)}
}

func scratchOf(w *sched.Worker) *wscratch {
	if s, ok := w.Scratch().(*wscratch); ok {
		return s
	}
	s := newWscratch()
	w.SetScratch(s)
	return s
}

// AcquireBox pops a *T from w's box stack for T, allocating a fresh
// zero T only when the stack is empty (first use at a new nesting
// depth). A nil worker always allocates. Pair with ReleaseBox in LIFO
// order; the box is returned with whatever state the previous user
// left, so growable slices inside it keep their capacity.
func AcquireBox[T any](w *sched.Worker) *T {
	if w == nil {
		return new(T)
	}
	s := scratchOf(w)
	key := reflect.TypeFor[*T]()
	st := s.boxes[key]
	if n := len(st); n > 0 {
		b := st[n-1].(*T)
		st[n-1] = nil // do not retain through the free stack
		s.boxes[key] = st[:n-1]
		return b
	}
	return new(T)
}

// ReleaseBox pushes b back onto w's stack for T. Releasing to a nil
// worker drops the box (it was freshly allocated by AcquireBox(nil)).
func ReleaseBox[T any](w *sched.Worker, b *T) {
	if w == nil || b == nil {
		return
	}
	s := scratchOf(w)
	key := reflect.TypeFor[*T]()
	s.boxes[key] = append(s.boxes[key], b)
}

// ResetAll resets every worker arena in the pool. It must only be
// called while the pool is quiescent (no Do in flight): it walks the
// workers' scratch slots, which are owner-private during execution.
// Between-round resets inside a Do should instead Reset the arenas of
// the workers that hold round-persistent checkouts (typically just the
// driving worker, via Of(w).Reset()).
func ResetAll(p *sched.Pool) {
	for _, s := range p.Scratches() {
		if ws, ok := s.(*wscratch); ok {
			ws.arena.Reset()
		}
	}
}
