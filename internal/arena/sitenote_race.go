//go:build race

package arena

import (
	"fmt"
	"runtime"
	"strings"
)

// raceNotes reports whether checkout-site bookkeeping is compiled in;
// see sitenote_norace.go for the contract it relaxes.
const raceNotes = true

// siteNote remembers, per generation, where the generation's first
// checkout was allocated, so a stale-mark panic can name the code that
// owned the reclaimed memory instead of just two generation numbers.
// Only -race builds pay for it (one map lookup per checkout); normal
// builds compile it to nothing (sitenote_norace.go). The map is pruned
// to the current and previous generation on Reset — a stale mark is
// almost always exactly one Reset old, and an older one still gets the
// generation-number panic.
type siteNote struct {
	sites map[uint32]string
}

// record notes the first checkout site of a generation: the caller
// closest to the user, skipping this package's own frames (AllocUninit
// is reached through Alloc and the typed helpers).
func (s *siteNote) record(gen uint32) {
	if s.sites == nil {
		s.sites = make(map[uint32]string)
	}
	if _, ok := s.sites[gen]; ok {
		return
	}
	var pcs [8]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		fr, more := frames.Next()
		// Skip this package's own frames (Alloc funnels through
		// AllocUninit) — but not its test files, which stand in for
		// external callers.
		own := strings.Contains(fr.Function, "internal/arena.") && !strings.HasSuffix(fr.File, "_test.go")
		if fr.Function != "" && !own {
			s.sites[gen] = fmt.Sprintf("%s:%d", fr.File, fr.Line)
			return
		}
		if !more {
			return
		}
	}
}

// prune drops notes older than the previous generation.
func (s *siteNote) prune(cur uint32) {
	for g := range s.sites {
		if g != cur && g != cur-1 {
			delete(s.sites, g)
		}
	}
}

// lookup returns the recorded site for a generation, or "".
func (s *siteNote) lookup(gen uint32) string { return s.sites[gen] }
