package arena

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestAllocZeroedAndDisjoint(t *testing.T) {
	a := &Arena{}
	xs := Alloc[int32](a, 100)
	ys := Alloc[int64](a, 50)
	if len(xs) != 100 || len(ys) != 50 {
		t.Fatalf("lengths = %d, %d; want 100, 50", len(xs), len(ys))
	}
	for i := range xs {
		xs[i] = int32(i)
	}
	for i := range ys {
		ys[i] = -1
	}
	for i := range xs {
		if xs[i] != int32(i) {
			t.Fatalf("xs[%d] = %d after writing ys: checkouts overlap", i, xs[i])
		}
	}
	// Zeroing must hold even over recycled memory.
	a.Reset()
	zs := Alloc[int64](a, 200)
	for i, z := range zs {
		if z != 0 {
			t.Fatalf("Alloc after Reset not zeroed at %d: %d", i, z)
		}
	}
}

func TestMarkReleaseRewinds(t *testing.T) {
	a := &Arena{}
	_ = Alloc[int64](a, 8)
	used := a.Stats().Used
	m := a.Mark()
	_ = Alloc[int64](a, 1000)
	if a.Stats().Used <= used {
		t.Fatal("checkout did not advance the bump offset")
	}
	a.Release(m)
	if got := a.Stats().Used; got != used {
		t.Fatalf("Used after Release = %d, want %d", got, used)
	}
	// Steady state: re-checking out the same shape must not grow.
	cap0 := a.Stats().Capacity
	for i := 0; i < 10; i++ {
		m := a.Mark()
		_ = Alloc[int64](a, 1000)
		a.Release(m)
	}
	if got := a.Stats().Capacity; got != cap0 {
		t.Fatalf("capacity grew %d -> %d across released checkouts", cap0, got)
	}
}

func TestStaleMarkPanics(t *testing.T) {
	a := &Arena{}
	m := a.Mark()
	_ = Alloc[int32](a, 4)
	a.Reset()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Release of a pre-Reset mark did not panic")
		}
		// Pin the message: debugging a stale mark starts from this
		// string, and -race builds append the allocating call site to
		// it (see sitenote_race_test.go).
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("stale-mark panic value is %T, want string", r)
		}
		want := "arena: Release of stale mark (mark gen 0, arena gen 1): arena was Reset while the checkout was live"
		if !strings.HasPrefix(msg, want) {
			t.Fatalf("stale-mark panic message\n  got:  %q\n  want prefix: %q", msg, want)
		}
	}()
	a.Release(m)
}

func TestGrowthAndConsolidation(t *testing.T) {
	a := &Arena{}
	// Force several slabs in one generation.
	for i := 0; i < 4; i++ {
		_ = Alloc[byte](a, minSlab)
	}
	st := a.Stats()
	if st.Slabs < 2 {
		t.Fatalf("expected multiple slabs after overflow, got %d", st.Slabs)
	}
	a.Reset()
	st = a.Stats()
	if st.Slabs != 1 {
		t.Fatalf("Reset did not consolidate: %d slabs", st.Slabs)
	}
	if st.Capacity < 4*minSlab {
		t.Fatalf("consolidated capacity %d < resident total %d", st.Capacity, 4*minSlab)
	}
	// The consolidated slab must now fit the whole round: no new growth.
	for i := 0; i < 4; i++ {
		_ = Alloc[byte](a, minSlab)
	}
	if got := a.Stats().Slabs; got != 1 {
		t.Fatalf("steady-state round grew to %d slabs, want 1", got)
	}
}

type pointered struct {
	p *int
	n int
}

func TestPointeredTypeFallsBackToMake(t *testing.T) {
	a := &Arena{}
	used := a.Stats().Used
	ps := Alloc[pointered](a, 16)
	if len(ps) != 16 {
		t.Fatalf("len = %d, want 16", len(ps))
	}
	if a.Stats().Used != used {
		t.Fatal("pointered checkout consumed arena bytes; must fall back to make")
	}
	// Pointer-free aggregates do use the arena.
	type flat struct{ a, b int32 }
	_ = Alloc[flat](a, 16)
	if a.Stats().Used == used {
		t.Fatal("pointer-free struct checkout did not use the arena")
	}
}

func TestNilArenaAndZeroLength(t *testing.T) {
	var a *Arena
	xs := Alloc[int32](a, 10)
	if len(xs) != 10 {
		t.Fatalf("nil-arena Alloc len = %d, want 10", len(xs))
	}
	a2 := &Arena{}
	if got := Alloc[int32](a2, 0); len(got) != 0 {
		t.Fatalf("zero-length checkout len = %d", len(got))
	}
	a2.Release(a2.Mark())
	a2.Reset()
}

func TestOfPerWorkerIdentity(t *testing.T) {
	p := sched.NewPool(2)
	defer p.Close()
	if Of(nil) != nil {
		t.Fatal("Of(nil) must be nil")
	}
	p.Do(func(w *sched.Worker) {
		a1 := Of(w)
		a2 := Of(w)
		if a1 == nil || a1 != a2 {
			t.Error("Of must return the same arena for the same worker")
		}
	})
}

// Steady-state checkout must not allocate: the whole point.
func TestAllocSteadyStateZeroAllocs(t *testing.T) {
	a := &Arena{}
	m := a.Mark()
	_ = Alloc[int64](a, 4096)
	a.Release(m)
	allocs := testing.AllocsPerRun(20, func() {
		m := a.Mark()
		s := Alloc[int64](a, 4096)
		s[0] = 1
		a.Release(m)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Alloc allocated %.1f per run, want 0", allocs)
	}
	if raceNotes {
		// -race builds record one checkout site per generation; the
		// Reset loop below bumps the generation every run.
		return
	}
	a.Reset()
	allocs = testing.AllocsPerRun(20, func() {
		a.Reset()
		_ = AllocUninit[int32](a, 1024)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset+AllocUninit allocated %.1f per run, want 0", allocs)
	}
}

type scanBox struct {
	sums []int64
	tag  int
}

func TestBoxStacksLIFO(t *testing.T) {
	p := sched.NewPool(1)
	defer p.Close()
	p.Do(func(w *sched.Worker) {
		b1 := AcquireBox[scanBox](w)
		b1.tag = 1
		b1.sums = append(b1.sums[:0], 7)
		b2 := AcquireBox[scanBox](w)
		if b2 == b1 {
			t.Error("nested Acquire returned the live box")
		}
		b2.tag = 2
		ReleaseBox(w, b2)
		ReleaseBox(w, b1)
		// LIFO: next acquire sees the last release, state intact.
		b3 := AcquireBox[scanBox](w)
		if b3 != b1 || b3.tag != 1 || len(b3.sums) != 1 || b3.sums[0] != 7 {
			t.Errorf("box not recycled LIFO with state: got %+v", b3)
		}
		ReleaseBox(w, b3)
		// Steady state: acquire/release of a warmed type is alloc-free.
		allocs := testing.AllocsPerRun(20, func() {
			b := AcquireBox[scanBox](w)
			ReleaseBox(w, b)
		})
		if allocs != 0 {
			t.Errorf("steady-state box cycle allocated %.1f per run, want 0", allocs)
		}
	})
}

// Arena lifecycle under concurrency: every worker drives its own arena
// through checkout/release/reset rounds simultaneously. Run with -race
// this validates the ownership discipline (no shared metadata).
func TestPerWorkerLifecycleConcurrent(t *testing.T) {
	p := sched.NewPool(4)
	defer p.Close()
	p.Do(func(w *sched.Worker) {
		w.ForEachWorker(func(w *sched.Worker) {
			a := Of(w)
			for round := 0; round < 50; round++ {
				a.Reset()
				xs := Alloc[int32](a, 2048)
				for i := range xs {
					xs[i] = int32(i)
				}
				m := a.Mark()
				ys := AllocUninit[int64](a, 512)
				for i := range ys {
					ys[i] = int64(i) * 3
				}
				a.Release(m)
				for i := range xs {
					if xs[i] != int32(i) {
						t.Errorf("worker %d round %d: xs[%d] corrupted", w.ID(), round, i)
						return
					}
				}
			}
		})
	})
}
