//go:build race

package arena

import (
	"strings"
	"testing"
)

// Under -race the stale-mark panic must also name where the stale
// generation's first checkout was allocated — that call site is the
// code whose memory was reclaimed, which is where debugging starts.
func TestStaleMarkPanicNamesAllocSite(t *testing.T) {
	a := &Arena{}
	m := a.Mark()
	_ = Alloc[int32](a, 4) // the site the panic must name
	a.Reset()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Release of a pre-Reset mark did not panic")
		}
		msg, _ := r.(string)
		const tag = "the mark generation's first checkout was allocated at "
		if !strings.Contains(msg, tag) {
			t.Fatalf("stale-mark panic under -race lacks the allocating site:\n  %q", msg)
		}
		if !strings.Contains(msg, "sitenote_race_test.go:") {
			t.Fatalf("allocating site does not point at this test file:\n  %q", msg)
		}
	}()
	a.Release(m)
}

// Reset prunes notes to the current and previous generation: a mark
// two Resets old still panics, but with generation numbers only.
func TestSiteNotePrunedAfterTwoResets(t *testing.T) {
	a := &Arena{}
	m := a.Mark()
	_ = Alloc[int32](a, 4)
	a.Reset()
	_ = Alloc[int32](a, 4)
	a.Reset()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Release of a twice-stale mark did not panic")
		}
		msg, _ := r.(string)
		if !strings.HasPrefix(msg, "arena: Release of stale mark") {
			t.Fatalf("unexpected panic: %q", msg)
		}
		if strings.Contains(msg, "allocated at") {
			t.Fatalf("pruned generation should not report a site:\n  %q", msg)
		}
	}()
	a.Release(m)
}
