//go:build race

package arena

import "testing"

// In -race builds the busy flag must refuse overlapping metadata use:
// a second enter before the first exit is exactly the shape a
// cross-worker arena handoff produces.
func TestGuardRefusesConcurrentUse(t *testing.T) {
	a := &Arena{}
	a.busy.enter()
	defer a.busy.exit()
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping guard enter did not panic under -race")
		}
	}()
	a.busy.enter()
}
