//go:build !race

package arena

// siteNote compiles to nothing outside -race builds: the hot checkout
// path stays free of bookkeeping, and the stale-mark panic reports
// generation numbers only. See sitenote_race.go for the -race variant
// that also names the allocating call site.
// raceNotes reports whether checkout-site bookkeeping is compiled in.
// The steady-state zero-allocation contract holds only when it is not:
// -race builds pay one site record per generation.
const raceNotes = false

type siteNote struct{}

func (siteNote) record(uint32)        {}
func (siteNote) prune(uint32)         {}
func (siteNote) lookup(uint32) string { return "" }
