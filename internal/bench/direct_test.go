package bench

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seqgen"
	"repro/internal/suffix"
)

func TestDirectForCoversRange(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 5, 100, 1001} {
			visited := make([]int, n)
			directFor(threads, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					visited[i]++
				}
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, v)
				}
			}
		}
	}
}

func TestDirectForMoreThreadsThanItems(t *testing.T) {
	count := 0
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	directFor(16, 3, func(lo, hi int) {
		<-mu
		count += hi - lo
		mu <- struct{}{}
	})
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestDirectReduceMatchesSequential(t *testing.T) {
	f := func(xs []int32, threads uint8) bool {
		th := int(threads%6) + 1
		var want int64
		for _, x := range xs {
			want += int64(x)
		}
		got := directReduce(th, len(xs), 0,
			func(i int) int64 { return int64(xs[i]) },
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectScanMatchesSequential(t *testing.T) {
	f := func(raw []int16, threads uint8) bool {
		th := int(threads%6) + 1
		xs := make([]int32, len(raw))
		want := make([]int32, len(raw))
		var acc, total int32
		for i, r := range raw {
			xs[i] = int32(r % 100)
			want[i] = acc
			acc += xs[i]
		}
		total = acc
		got := directScanExclusive(th, xs)
		if got != total {
			return false
		}
		for i := range xs {
			if xs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectSuffixArrayMatchesLibrary(t *testing.T) {
	for _, n := range []int{0, 1, 50, 5000} {
		text := seqgen.Text(nil, n, 99)
		want := suffix.Array(nil, text)
		got := directSuffixArray(3, text)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d vs %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: sa[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestDirectBWTDecodeMatchesLibrary(t *testing.T) {
	text := seqgen.Text(nil, 20000, 5)
	bwt := suffix.BWTEncode(nil, text)
	got := directBWTDecode(3, bwt)
	if !bytes.Equal(got, text) {
		t.Fatal("direct BWT decode does not round-trip")
	}
	if directBWTDecode(2, nil) != nil || directBWTDecode(2, []byte{0}) != nil {
		t.Fatal("degenerate decode should be nil")
	}
}

func TestDirectSortPairsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 20000
	keys := make([]uint64, n)
	vals := make([]int32, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(64))
		vals[i] = int32(i)
	}
	directSortPairs(3, keys, vals, 8)
	for i := 1; i < n; i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("not sorted at %d", i)
		}
		if keys[i-1] == keys[i] && vals[i-1] > vals[i] {
			t.Fatalf("not stable at %d", i)
		}
	}
}

func TestVariantsAgreeOnMISStatus(t *testing.T) {
	// The rootset MIS is deterministic given priorities, so the library
	// and direct variants must produce the identical independent set.
	spec, _ := Find("mis")
	instA := spec.Make("road", ScaleTest)
	if _, err := Measure(instA, VariantLibrary, 3, 1); err != nil {
		t.Fatal(err)
	}
	instB := spec.Make("road", ScaleTest)
	if _, err := Measure(instB, VariantDirect, 3, 1); err != nil {
		t.Fatal(err)
	}
	// Both instances share the same generated graph and priorities
	// (deterministic seeds), so the resulting set sizes must agree.
	a, bN := instA.Stat(), instB.Stat()
	if a != bN {
		t.Fatalf("library MIS size %d != direct MIS size %d", a, bN)
	}
	if a == 0 {
		t.Fatal("empty MIS on a non-empty graph")
	}
}
