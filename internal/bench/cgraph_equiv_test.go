package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Oracle equivalence of the generic kernels across representations:
// BFS levels/parents and SSSP distances computed over the compressed
// CSR must match the plain CSR on every standard input at ScaleTest and
// ScaleSmall, in every traversal regime (heuristic, forced bottom-up,
// forced top-down, and the MultiQueue direct mode).

func equivScales(t *testing.T) []Scale {
	if testing.Short() {
		return []Scale{ScaleTest}
	}
	return []Scale{ScaleTest, ScaleSmall}
}

func TestBFSCompressedMatchesPlain(t *testing.T) {
	pool := core.NewPool(4)
	defer pool.Close()
	for _, input := range []string{graph.InputLink, graph.InputRMAT, graph.InputRoad} {
		for _, scale := range equivScales(t) {
			t.Run(fmt.Sprintf("%s/scale%d", input, scale), func(t *testing.T) {
				g := graph.LoadUndirectedSorted(nil, input, scale, 0xbf5)
				var tb graph.Builder
				tg := tb.Transpose(nil, g)
				graph.SortAdjacency(nil, tg)
				var cb graph.Builder
				cg := cb.Compress(nil, g)
				ctg := cb.CompressTranspose(nil, tg)
				// Shared-pool invariants: both directions alias one byte
				// pool, transpose rows starting where the forward stream
				// ends.
				if &cg.Bytes[0] != &ctg.Bytes[0] {
					t.Fatal("forward and transpose do not share a byte pool")
				}
				if ctg.BOffs[0] != cg.BOffs[cg.N] {
					t.Fatalf("transpose base %d != forward end %d", ctg.BOffs[0], cg.BOffs[cg.N])
				}
				want := bfsOracle(g, 0)
				if cwant := bfsOracle(cg, 0); !equalU32(want, cwant) {
					t.Fatal("sequential oracle differs between representations")
				}

				modes := []struct {
					name        string
					alpha, beta int64
				}{
					{"default", bfsAlpha, bfsBeta},
					{"bottomup", forceOn, forceOn},
					{"topdown", forceOff, bfsBeta},
				}
				for _, m := range modes {
					p := newBFS(g, tg, 0)
					c := newBFS(cg, ctg, 0)
					p.want, c.want = want, want
					p.alpha, p.beta = m.alpha, m.beta
					c.alpha, c.beta = m.alpha, m.beta
					pool.Do(func(w *core.Worker) { p.runHybrid(w) })
					pool.Do(func(w *core.Worker) { c.runHybrid(w) })
					for who, b := range map[string]func() error{
						"plain/dist":     p.verify,
						"plain/parents":  p.verifyParents,
						"cgraph/dist":    c.verify,
						"cgraph/parents": c.verifyParents,
					} {
						if err := b(); err != nil {
							t.Fatalf("%s %s: %v", m.name, who, err)
						}
					}
				}

				// MultiQueue direct mode decodes through the per-worker
				// scratch table.
				c := newBFS(cg, ctg, 0)
				c.want = want
				c.run(4)
				if err := c.verify(); err != nil {
					t.Fatalf("direct: %v", err)
				}
			})
		}
	}
}

func TestSSSPCompressedMatchesPlain(t *testing.T) {
	pool := core.NewPool(4)
	defer pool.Close()
	for _, input := range []string{graph.InputLink, graph.InputRMAT, graph.InputRoad} {
		for _, scale := range equivScales(t) {
			t.Run(fmt.Sprintf("%s/scale%d", input, scale), func(t *testing.T) {
				wg := graph.LoadUndirectedWeighted(nil, input, scale, 0x555)
				var ptb graph.Builder
				twg := ptb.TransposeW(nil, wg)
				graph.SortAdjacencyW(nil, twg)
				cw, ctw := graph.LoadUndirectedWeightedCT(nil, input, scale, 0x555)
				if &cw.Bytes[0] != &ctw.Bytes[0] {
					t.Fatal("weighted forward and transpose do not share a byte pool")
				}
				want := dijkstraOracle(wg, 0)
				if cwant := dijkstraOracle(cw, 0); !equalU32(want, cwant) {
					t.Fatal("sequential oracle differs between representations")
				}
				p := newSSSP(wg, 0)
				c := newSSSP(cw, 0)
				p.want, c.want = want, want
				if p.deltaShift != c.deltaShift {
					t.Fatalf("delta heuristic differs: %d vs %d", p.deltaShift, c.deltaShift)
				}
				p.runDelta(4)
				if err := p.verify(); err != nil {
					t.Fatalf("plain delta: %v", err)
				}
				c.runDelta(4)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph delta: %v", err)
				}
				c.reset()
				c.run(4)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph direct: %v", err)
				}
				// Pull mode: synchronous Bellman-Ford rounds gathering over
				// the weighted transpose — plain and compressed (the latter
				// streaming the pool-sharing compressed transpose), parallel
				// and sequential.
				p.reset()
				p.setTranspose(twg)
				pool.Do(func(w *core.Worker) { p.runPull(w) })
				if err := p.verify(); err != nil {
					t.Fatalf("plain pull: %v", err)
				}
				c.reset()
				c.setTranspose(ctw)
				pool.Do(func(w *core.Worker) { c.runPull(w) })
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph pull: %v", err)
				}
				c.reset()
				c.runPull(nil)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph pull sequential: %v", err)
				}
			})
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
