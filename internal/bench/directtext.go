package bench

// Hand-rolled baselines for the text benchmarks (sa, lrs, bw): the same
// algorithms as the library expressions — prefix-doubling suffix arrays
// over LSD radix passes, and LF-mapping BWT decode with pointer-jumping
// list ranking — but written directly against goroutines with static
// chunking and no pattern layer, standing in for the paper's C++ PBBS.

const dtxBlock = 1 << 14

// directCountingPass stably sorts (keys, vals) by the 8-bit digit at
// shift, from src into dst arrays.
func directCountingPass(nThreads int, srcK, dstK []uint64, srcV, dstV []int32, shift uint) {
	n := len(srcK)
	nb := (n + dtxBlock - 1) / dtxBlock
	counts := make([]int32, 256*nb)
	directFor(nThreads, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*dtxBlock, (b+1)*dtxBlock
			if hi > n {
				hi = n
			}
			var local [256]int32
			for i := lo; i < hi; i++ {
				local[(srcK[i]>>shift)&255]++
			}
			for d := 0; d < 256; d++ {
				counts[d*nb+b] = local[d]
			}
		}
	})
	directScanExclusive(nThreads, counts)
	directFor(nThreads, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*dtxBlock, (b+1)*dtxBlock
			if hi > n {
				hi = n
			}
			var cursor [256]int32
			for d := 0; d < 256; d++ {
				cursor[d] = counts[d*nb+b]
			}
			for i := lo; i < hi; i++ {
				d := (srcK[i] >> shift) & 255
				at := cursor[d]
				cursor[d]++
				dstK[at] = srcK[i]
				dstV[at] = srcV[i]
			}
		}
	})
}

func directSortPairs(nThreads int, keys []uint64, vals []int32, bits int) {
	n := len(keys)
	if n < 2 {
		return
	}
	passes := (bits + 7) / 8
	if passes == 0 {
		passes = 1
	}
	kBuf := make([]uint64, n)
	vBuf := make([]int32, n)
	srcK, dstK, srcV, dstV := keys, kBuf, vals, vBuf
	for p := 0; p < passes; p++ {
		directCountingPass(nThreads, srcK, dstK, srcV, dstV, uint(p*8))
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if passes%2 == 1 {
		directFor(nThreads, n, func(lo, hi int) {
			copy(keys[lo:hi], srcK[lo:hi])
			copy(vals[lo:hi], srcV[lo:hi])
		})
	}
}

func bitsFor(max uint64) int {
	b := 0
	for max > 0 {
		b++
		max >>= 1
	}
	if b == 0 {
		b = 1
	}
	return b
}

// directSuffixArray is prefix doubling with hand-rolled radix passes.
func directSuffixArray(nThreads int, s []byte) []int32 {
	n := len(s)
	if n == 0 {
		return nil
	}
	sa := make([]int32, n)
	rank := make([]int32, n)
	keys := make([]uint64, n)
	directFor(nThreads, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sa[i] = int32(i)
			keys[i] = uint64(s[i])
		}
	})
	directSortPairs(nThreads, keys, sa, 8)
	rankBits := bitsFor(uint64(n))
	distinct := directAssignRanks(nThreads, keys, sa, rank)
	for k := 1; k < n && !distinct; k *= 2 {
		directFor(nThreads, n, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				i := int(sa[j])
				hi64 := uint64(rank[i]) + 1
				var lo64 uint64
				if i+k < n {
					lo64 = uint64(rank[i+k]) + 1
				}
				keys[j] = hi64<<(rankBits+1) | lo64
			}
		})
		directSortPairs(nThreads, keys, sa, 2*(rankBits+1))
		distinct = directAssignRanks(nThreads, keys, sa, rank)
	}
	return sa
}

func directAssignRanks(nThreads int, keys []uint64, sa, rank []int32) bool {
	n := len(keys)
	flags := make([]int32, n)
	boundaries := directReduce(nThreads, n-1, 1, func(j int) int64 {
		if keys[j+1] != keys[j] {
			return 1
		}
		return 0
	}, func(a, b int64) int64 { return a + b })
	directFor(nThreads, n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if j > 0 && keys[j] != keys[j-1] {
				flags[j] = int32(j)
			}
		}
	})
	// Running max via chunked two-pass (max-scan).
	nb := (n + dtxBlock - 1) / dtxBlock
	maxes := make([]int32, nb)
	directFor(nThreads, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*dtxBlock, (b+1)*dtxBlock
			if hi > n {
				hi = n
			}
			var m int32
			for i := lo; i < hi; i++ {
				if flags[i] > m {
					m = flags[i]
				}
			}
			maxes[b] = m
		}
	})
	var running int32
	for b := 0; b < nb; b++ {
		m := maxes[b]
		maxes[b] = running
		if m > running {
			running = m
		}
	}
	directFor(nThreads, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*dtxBlock, (b+1)*dtxBlock
			if hi > n {
				hi = n
			}
			acc := maxes[b]
			for j := lo; j < hi; j++ {
				if flags[j] > acc {
					acc = flags[j]
				}
				rank[sa[j]] = acc
			}
		}
	})
	return boundaries == int64(n)
}

// directBWTDecode inverts a BWT with hand-rolled LF mapping and pointer
// jumping.
func directBWTDecode(nThreads int, bwt []byte) []byte {
	n1 := len(bwt)
	if n1 <= 1 {
		return nil
	}
	// LF mapping: one counting pass.
	nb := (n1 + dtxBlock - 1) / dtxBlock
	counts := make([]int32, 256*nb)
	directFor(nThreads, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*dtxBlock, (b+1)*dtxBlock
			if hi > n1 {
				hi = n1
			}
			var local [256]int32
			for i := lo; i < hi; i++ {
				local[bwt[i]]++
			}
			for c := 0; c < 256; c++ {
				counts[c*nb+b] = local[c]
			}
		}
	})
	directScanExclusive(nThreads, counts)
	lf := make([]int32, n1)
	directFor(nThreads, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*dtxBlock, (b+1)*dtxBlock
			if hi > n1 {
				hi = n1
			}
			var cursor [256]int32
			for c := 0; c < 256; c++ {
				cursor[c] = counts[c*nb+b]
			}
			for i := lo; i < hi; i++ {
				lf[i] = cursor[bwt[i]]
				cursor[bwt[i]]++
			}
		}
	})
	// Pointer jumping for walk distances.
	const nilNode = int32(-1)
	nxt := make([]int32, n1)
	dst := make([]int32, n1)
	directFor(nThreads, n1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if bwt[i] == 0 {
				nxt[i] = nilNode
				dst[i] = 0
			} else {
				nxt[i] = lf[i]
				dst[i] = 1
			}
		}
	})
	nxtB := make([]int32, n1)
	dstB := make([]int32, n1)
	for span := 1; span < n1; span *= 2 {
		directFor(nThreads, n1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if nx := nxt[i]; nx != nilNode {
					dstB[i] = dst[i] + dst[nx]
					nxtB[i] = nxt[nx]
				} else {
					dstB[i] = dst[i]
					nxtB[i] = nilNode
				}
			}
		})
		nxt, nxtB = nxtB, nxt
		dst, dstB = dstB, dst
	}
	n := n1 - 1
	buf := make([]byte, n1)
	directFor(nThreads, n1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[dst[i]] = bwt[i]
		}
	})
	return buf[1 : n+1]
}
