package bench

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/seqgen"
)

// sort — comparison sort (PBBS sample sort): sample splitters, classify
// elements into buckets with a blocked count/scan/scatter (disjoint by
// construction), then sort each bucket. Bucket boundaries come from the
// scan as an offsets array, and per-bucket sorting is expressed through
// the RngInd adapter — exactly the paper's observation that "sort only
// has RngInd, so is comfortable to express but not fearless". Modes:
// checked uses core.IndChunks (cheap monotonicity validation), others
// use the unchecked variant.

const sortBuckets = 256
const sortOversample = 16
const sortBlock = 1 << 14

type sortInstance struct {
	orig []uint32
	keys []uint32
	want []uint32
}

func (s *sortInstance) reset() { copy(s.keys, s.orig) }

// classify returns the bucket of x given sorted splitters.
func classify(splitters []uint32, x uint32) int {
	return sort.Search(len(splitters), func(i int) bool { return x < splitters[i] })
}

func (s *sortInstance) runLibrary(w *core.Worker) {
	n := len(s.keys)
	if n <= sortBlock {
		core.Sort(w, s.keys)
		return
	}
	// Every round buffer below is a checkout from the worker's arena
	// (docs/MEMORY.md); after warm-up the steady state allocates nothing.
	// counts and offsets use the zeroed Alloc — the scan proof's
	// zero-init precondition — while the fully-overwritten buffers take
	// the uninitialized form.
	a := arena.Of(w)
	am := a.Mark()
	// Sample and pick splitters (RO).
	r := seqgen.NewRng(0x5a5a)
	samples := arena.AllocUninit[uint32](a, sortBuckets*sortOversample)
	core.ForRange(w, 0, len(samples), 0, func(i int) {
		samples[i] = s.keys[r.Intn(uint64(i), n)]
	})
	core.Sort(w, samples)
	splitters := arena.AllocUninit[uint32](a, sortBuckets-1)
	for i := range splitters {
		splitters[i] = samples[(i+1)*sortOversample]
	}
	// Blocked classify + count (Block).
	nb := (n + sortBlock - 1) / sortBlock
	counts := arena.Alloc[int32](a, sortBuckets*nb)
	bucketOf := arena.AllocUninit[uint8](a, n)
	core.ForRange(w, 0, nb, 1, func(b int) {
		lo, hi := b*sortBlock, (b+1)*sortBlock
		if hi > n {
			hi = n
		}
		var local [sortBuckets]int32
		for i := lo; i < hi; i++ {
			bk := classify(splitters, s.keys[i])
			bucketOf[i] = uint8(bk)
			local[bk]++
		}
		for d := 0; d < sortBuckets; d++ {
			counts[d*nb+b] = local[d]
		}
	})
	// Bucket boundaries by prefix sum: offsets[d+1] accumulates bucket
	// d's total over all blocks, and the inclusive scan over offsets[1:]
	// turns the totals into start positions (offsets[0] stays 0). This
	// shape — zero-initialized buffer, non-negative pre-scan fill, one
	// scan, no writes after — is exactly the monotone+bounds provenance
	// the certifier proves, so the RngInd adapter below runs unchecked
	// under certificate.
	offsets := arena.Alloc[int32](a, sortBuckets+1)
	core.ForRange(w, 0, sortBuckets, 0, func(d int) {
		var t int32
		for b := 0; b < nb; b++ {
			t += counts[d*nb+b]
		}
		offsets[d+1] = t
	})
	total := core.ScanInclusive(w, offsets[1:])
	core.ScanExclusive(w, counts)
	// Scatter into bucket order (disjoint cursor ranges per block).
	buf := arena.AllocUninit[uint32](a, total)
	core.ForRange(w, 0, nb, 1, func(b int) {
		lo, hi := b*sortBlock, (b+1)*sortBlock
		if hi > n {
			hi = n
		}
		var cursor [sortBuckets]int32
		for d := 0; d < sortBuckets; d++ {
			cursor[d] = counts[d*nb+b]
		}
		for i := lo; i < hi; i++ {
			d := bucketOf[i]
			buf[cursor[d]] = s.keys[i]
			cursor[d]++
		}
	})
	// Sort each bucket through the RngInd adapter.
	sortChunk := func(_ int, chunk []uint32) { slices.Sort(chunk) }
	if core.GetMode() == core.ModeChecked {
		if err := core.IndChunks(w, buf, offsets, sortChunk); err != nil {
			panic(fmt.Sprintf("sort: boundary check failed: %v", err))
		}
	} else {
		core.IndChunksUnchecked(w, buf, offsets, sortChunk)
	}
	core.CopyInto(w, s.keys, buf)
	a.Release(am)
}

func (s *sortInstance) runDirect(nThreads int) {
	n := len(s.keys)
	if n <= sortBlock || nThreads <= 1 {
		slices.Sort(s.keys)
		return
	}
	r := seqgen.NewRng(0x5a5a)
	samples := make([]uint32, sortBuckets*sortOversample)
	for i := range samples {
		samples[i] = s.keys[r.Intn(uint64(i), n)]
	}
	slices.Sort(samples)
	splitters := make([]uint32, sortBuckets-1)
	for i := range splitters {
		splitters[i] = samples[(i+1)*sortOversample]
	}
	nb := (n + sortBlock - 1) / sortBlock
	counts := make([]int32, sortBuckets*nb)
	bucketOf := make([]uint8, n)
	directFor(nThreads, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*sortBlock, (b+1)*sortBlock
			if hi > n {
				hi = n
			}
			var local [sortBuckets]int32
			for i := lo; i < hi; i++ {
				bk := classify(splitters, s.keys[i])
				bucketOf[i] = uint8(bk)
				local[bk]++
			}
			for d := 0; d < sortBuckets; d++ {
				counts[d*nb+b] = local[d]
			}
		}
	})
	directScanExclusive(nThreads, counts)
	buf := make([]uint32, n)
	directFor(nThreads, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*sortBlock, (b+1)*sortBlock
			if hi > n {
				hi = n
			}
			var cursor [sortBuckets]int32
			for d := 0; d < sortBuckets; d++ {
				cursor[d] = counts[d*nb+b]
			}
			for i := lo; i < hi; i++ {
				d := bucketOf[i]
				buf[cursor[d]] = s.keys[i]
				cursor[d]++
			}
		}
	})
	directFor(nThreads, sortBuckets, func(dlo, dhi int) {
		for d := dlo; d < dhi; d++ {
			start := counts[d*nb]
			end := int32(n)
			if d+1 < sortBuckets {
				end = counts[(d+1)*nb]
			}
			chunk := buf[start:end]
			slices.Sort(chunk)
		}
	})
	copy(s.keys, buf)
}

func (s *sortInstance) verify() error {
	for i := range s.keys {
		if s.keys[i] != s.want[i] {
			return fmt.Errorf("sort: keys[%d] = %d, want %d", i, s.keys[i], s.want[i])
		}
	}
	return nil
}

func init() {
	core.DeclareSite("sort", "sample: keys read", core.RO)
	core.DeclareSite("sort", "sample: samples write", core.Stride)
	core.DeclareSite("sort", "sample: splitter sort", core.DC)
	core.DeclareSite("sort", "classify: keys read", core.RO)
	core.DeclareSite("sort", "classify: splitters read", core.RO)
	core.DeclareSite("sort", "classify: bucketOf write", core.Stride)
	core.DeclareSite("sort", "classify: block count write", core.Block)
	core.DeclareSite("sort", "count scan", core.Block)
	core.DeclareSite("sort", "scatter: buf cursor write", core.Stride)
	core.DeclareSite("sort", "bucket sort: chunk rewrite", core.RngInd)
	core.DeclareSite("sort", "final copy-back write", core.Stride)

	Register(Spec{
		Name:   "sort",
		Long:   "comparison sort",
		Inputs: []string{"exponential"},
		Make: func(input string, scale Scale) *Instance {
			n := SeqSize(scale)
			orig := seqgen.ExponentialInts(nil, n, 0x50e7)
			want := append([]uint32(nil), orig...)
			core.Sort(nil, want)
			s := &sortInstance{
				orig: orig,
				keys: append([]uint32(nil), orig...),
				want: want,
			}
			return &Instance{
				RunLibrary: s.runLibrary,
				RunDirect:  s.runDirect,
				Verify:     s.verify,
				Reset:      s.reset,
			}
		},
	})
}
