package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// sf — spanning forest (PBBS): concurrent union-find over the edge
// list. Every edge attempts a Union; the winners form the forest. The
// CAS hooks in the union-find are the AW pattern: conflicting writes to
// shared parent slots.

type sfInstance struct {
	edges    []graph.Edge
	n        int32
	uf       *unionfind.UF // built once, Reset between rounds
	inForest []bool
	want     int // forest size = n - #components (from sequential oracle)
}

func (s *sfInstance) reset() {
	for i := range s.inForest {
		s.inForest[i] = false
	}
	s.uf.Reset()
}

func (s *sfInstance) runLibrary(w *core.Worker) {
	uf := s.uf
	core.ForRange(w, 0, len(s.edges), 0, func(i int) {
		e := s.edges[i]
		if uf.Union(e.From, e.To) {
			s.inForest[i] = true
		}
	})
}

func (s *sfInstance) runDirect(nThreads int) {
	uf := unionfind.New(s.n)
	directFor(nThreads, len(s.edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := s.edges[i]
			if uf.Union(e.From, e.To) {
				s.inForest[i] = true
			}
		}
	})
}

func (s *sfInstance) verify() error {
	count := 0
	check := unionfind.New(s.n)
	for i, in := range s.inForest {
		if !in {
			continue
		}
		count++
		e := s.edges[i]
		if !check.Union(e.From, e.To) {
			return fmt.Errorf("sf: forest contains a cycle through edge %d", i)
		}
	}
	if count != s.want {
		return fmt.Errorf("sf: forest has %d edges, want %d", count, s.want)
	}
	// Spanning: every input edge's endpoints are connected in the forest.
	for i, e := range s.edges {
		if !check.SameSet(e.From, e.To) {
			return fmt.Errorf("sf: edge %d endpoints not connected by forest", i)
		}
	}
	return nil
}

func init() {
	core.DeclareSite("sf", "edges read", core.RO)
	core.DeclareSite("sf", "find: parent chase read", core.AW)
	core.DeclareSite("sf", "union: parent hook CAS", core.AW)
	core.DeclareSite("sf", "own forest flag write", core.Stride)
	core.DeclareSite("sf", "edge partition", core.Block)
	core.DeclareSite("sf", "find recursion", core.DC)

	Register(Spec{
		Name:   "sf",
		Long:   "spanning forest",
		Inputs: []string{graph.InputLink, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			edges, n := graph.UndirectedEdgeList(nil, input, scale, 0x5f)
			// Oracle: component count via sequential union-find.
			oracle := unionfind.New(n)
			forest := 0
			for _, e := range edges {
				if oracle.Union(e.From, e.To) {
					forest++
				}
			}
			s := &sfInstance{
				edges:    edges,
				n:        n,
				uf:       unionfind.New(n),
				inForest: make([]bool, len(edges)),
				want:     forest,
			}
			return &Instance{
				RunLibrary: s.runLibrary,
				RunDirect:  s.runDirect,
				Verify:     s.verify,
				Reset:      s.reset,
			}
		},
	})
}
