package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// msf — minimum spanning forest (PBBS): parallel Borůvka. Each round,
// every live edge offers itself to both endpoint components via a
// WriteMin of (weight, edge-id) on the component roots (AW priority
// writes); each component's winning edge joins the forest and unions
// the components; edges internal to a component die. Weight-id packing
// makes the winner deterministic despite racy scheduling.

type msfInstance struct {
	edges []graph.WEdge
	n     int32
	best  []uint64      // per-vertex best (weight<<32 | edgeID), atomic
	uf    *unionfind.UF // built once, Reset between rounds
	inMSF []bool
	want  uint64 // oracle total weight

	// Round-persistent scratch (docs/MEMORY.md): the live-edge frontier,
	// its ping-pong partner, and the pack-index destination.
	live  []int32
	spare []int32
	idx   []int32
}

const msfNone = ^uint64(0)

func (m *msfInstance) reset() {
	for i := range m.inMSF {
		m.inMSF[i] = false
	}
	m.uf.Reset()
}

func msfKey(w uint32, ei int) uint64 { return uint64(w)<<32 | uint64(uint32(ei)) }

func (m *msfInstance) runLibrary(w *core.Worker) {
	uf := m.uf
	m.live = core.PackIndexInto(w, len(m.edges), func(int) bool { return true }, m.live)
	// Round bodies are built once per run and read the frontier via the
	// instance, so rounds allocate nothing beyond scratch warm-up.
	// The reset sweep needs no atomics: the races certificate proves
	// best[v] task-affine in this region (lint-races.json, class
	// index-disjoint), and the pool's fork/join edges publish the
	// stores to the offer round that follows.
	clearBest := func(v int) {
		m.best[v] = msfNone
	}
	offer := func(i int) {
		// Offer every live edge to both endpoint components (AW).
		ei := m.live[i]
		e := m.edges[ei]
		ru, rv := uf.Find(e.From), uf.Find(e.To)
		if ru == rv {
			return
		}
		k := msfKey(e.W, int(ei))
		core.WriteMinU64(&m.best[ru], k)
		core.WriteMinU64(&m.best[rv], k)
	}
	commit := func(i int) {
		// Commit: the winning edge of each component unions and joins.
		ei := m.live[i]
		e := m.edges[ei]
		ru, rv := uf.Find(e.From), uf.Find(e.To)
		if ru == rv {
			return
		}
		k := msfKey(e.W, int(ei))
		if atomic.LoadUint64(&m.best[ru]) == k || atomic.LoadUint64(&m.best[rv]) == k {
			if uf.Union(e.From, e.To) {
				m.inMSF[ei] = true
			}
		}
	}
	external := func(i int) bool {
		e := m.edges[m.live[i]]
		return !uf.SameSet(e.From, e.To)
	}
	for len(m.live) > 0 {
		core.ForRange(w, 0, int(m.n), 0, clearBest)
		core.ForRange(w, 0, len(m.live), 0, offer)
		core.ForRange(w, 0, len(m.live), 0, commit)
		// Drop edges now internal to one component (pack into the
		// ping-pong partner).
		m.idx = core.PackIndexInto(w, len(m.live), external, m.idx)
		m.spare = core.EnsureLen(m.spare, len(m.idx))
		for j, i := range m.idx {
			m.spare[j] = m.live[i]
		}
		m.live, m.spare = m.spare, m.live
	}
}

func (m *msfInstance) runDirect(nThreads int) {
	uf := unionfind.New(m.n)
	live := make([]int32, len(m.edges))
	for i := range live {
		live[i] = int32(i)
	}
	for len(live) > 0 {
		directFor(nThreads, int(m.n), func(lo, hi int) {
			for v := lo; v < hi; v++ {
				atomic.StoreUint64(&m.best[v], msfNone)
			}
		})
		directFor(nThreads, len(live), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := m.edges[live[i]]
				ru, rv := uf.Find(e.From), uf.Find(e.To)
				if ru == rv {
					continue
				}
				k := msfKey(e.W, int(live[i]))
				directWriteMin64(&m.best[ru], k)
				directWriteMin64(&m.best[rv], k)
			}
		})
		directFor(nThreads, len(live), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ei := live[i]
				e := m.edges[ei]
				ru, rv := uf.Find(e.From), uf.Find(e.To)
				if ru == rv {
					continue
				}
				k := msfKey(e.W, int(ei))
				if atomic.LoadUint64(&m.best[ru]) == k || atomic.LoadUint64(&m.best[rv]) == k {
					if uf.Union(e.From, e.To) {
						m.inMSF[ei] = true
					}
				}
			}
		})
		next := live[:0]
		for _, ei := range live {
			e := m.edges[ei]
			if !uf.SameSet(e.From, e.To) {
				next = append(next, ei)
			}
		}
		live = next
	}
}

func directWriteMin64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if v >= old {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, v) {
			return
		}
	}
}

func (m *msfInstance) verify() error {
	check := unionfind.New(m.n)
	var total uint64
	count := 0
	for ei, in := range m.inMSF {
		if !in {
			continue
		}
		e := m.edges[ei]
		if !check.Union(e.From, e.To) {
			return fmt.Errorf("msf: cycle through edge %d", ei)
		}
		total += uint64(e.W)
		count++
	}
	for ei, e := range m.edges {
		if !check.SameSet(e.From, e.To) {
			return fmt.Errorf("msf: edge %d endpoints not connected", ei)
		}
	}
	if total != m.want {
		return fmt.Errorf("msf: total weight %d, want %d (%d edges)", total, m.want, count)
	}
	return nil
}

// kruskalOracle computes the MSF weight sequentially.
func kruskalOracle(edges []graph.WEdge, n int32) uint64 {
	order := make([]int32, len(edges))
	for i := range order {
		order[i] = int32(i)
	}
	core.SortBy(nil, order, func(a, b int32) bool {
		ea, eb := edges[a], edges[b]
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return a < b
	})
	uf := unionfind.New(n)
	var total uint64
	for _, ei := range order {
		e := edges[ei]
		if uf.Union(e.From, e.To) {
			total += uint64(e.W)
		}
	}
	return total
}

func init() {
	core.DeclareSite("msf", "offer: edges/weights read", core.RO)
	core.DeclareSite("msf", "offer: find parent chase read", core.AW)
	core.DeclareSite("msf", "offer: best WriteMin at root", core.AW)
	core.DeclareSite("msf", "reset: best write via root (indirect)", core.SngInd)
	core.DeclareSite("msf", "commit: best read", core.AW)
	core.DeclareSite("msf", "commit: union hook CAS", core.AW)
	core.DeclareSite("msf", "commit: own inMSF write", core.Stride)
	core.DeclareSite("msf", "live-edge pack write", core.Block)
	core.DeclareSite("msf", "find recursion", core.DC)

	Register(Spec{
		Name:   "msf",
		Long:   "minimum spanning forest",
		Inputs: []string{graph.InputRMAT, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			edgesPlain, n := graph.UndirectedEdgeList(nil, input, scale, 0x35f)
			edges := graph.AddWeights(nil, edgesPlain, 1<<16, 0x35f+1)
			m := &msfInstance{
				edges: edges,
				n:     n,
				best:  make([]uint64, n),
				uf:    unionfind.New(n),
				inMSF: make([]bool, len(edges)),
				want:  kruskalOracle(edges, n),
			}
			return &Instance{
				RunLibrary: m.runLibrary,
				RunDirect:  m.runDirect,
				Verify:     m.verify,
				Reset:      m.reset,
			}
		},
	})
}
