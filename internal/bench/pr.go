package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/graph"
)

// pr — PageRank, synchronous pull iteration. Each round first writes
// every vertex's out-contribution (rank over out-degree, an owner
// write), folds the dangling mass (rank parked on zero-out-degree
// vertices) through fixed-size block-owner partials, then gathers: each
// vertex pulls its in-neighbors' contributions through the transpose
// adjacency — the runPull shape from SSSP, with the row decoding into
// per-chunk arena scratch so the same gather runs over the plain
// transpose and the shared-pool compressed transpose. Convergence is
// tracked with a fetch-add round counter, the kernel's scared AW site.
//
// The result is bit-identical across schedules and representations:
// every float64 sum is either an owner-sequential row gather (row order
// fixed by the sorted adjacency) or the two-level dangling fold whose
// block boundaries and combine order are fixed by prBlock, never by the
// schedule. The sequential oracle runs the identical arithmetic.

type prInstance[A graph.Adjacency] struct {
	g       A // forward adjacency: out-degrees
	tg      A // transpose adjacency: pull gathers
	rank    []float64
	next    []float64
	contrib []float64
	part    []float64 // block-owner dangling partials
	want    []float64
	iters   int // round cap
	rounds  int // rounds the last run executed
	tmaxDeg int
}

const (
	prDamping  = 0.85
	prTol      = 1e-9 // per-vertex |delta| under which a vertex counts converged
	prMaxIters = 20
	// prBlock is the dangling-fold block size. The fold must not use
	// MapReduce: its combine tree follows the schedule, which would
	// make the float64 sum schedule-dependent. Fixed blocks + one
	// sequential fold over the partials keeps it deterministic.
	prBlock = 1024
)

func newPR[A graph.Adjacency](g, tg A) *prInstance[A] {
	n := int(g.NumVertices())
	return &prInstance[A]{
		g:       g,
		tg:      tg,
		rank:    make([]float64, n),
		next:    make([]float64, n),
		contrib: make([]float64, n),
		part:    make([]float64, (n+prBlock-1)/prBlock),
		iters:   prMaxIters,
		tmaxDeg: int(tg.MaxDegree()),
	}
}

func (p *prInstance[A]) reset() {
	inv := 1.0 / float64(len(p.rank))
	for i := range p.rank {
		p.rank[i] = inv
	}
}

func (p *prInstance[A]) runLibrary(w *core.Worker) {
	n := int(p.g.NumVertices())
	inv := 1.0 / float64(n)
	base := (1 - prDamping) * inv
	p.rounds = 0
	for it := 0; it < p.iters; it++ {
		// Out-contributions: owner write per vertex.
		core.ForRange(w, 0, n, 0, func(v int) {
			if d := p.g.Degree(int32(v)); d > 0 {
				p.contrib[v] = p.rank[v] / float64(d)
			} else {
				p.contrib[v] = 0
			}
		})
		// Dangling mass, deterministic two-level fold: each task owns
		// one fixed prBlock-wide partial, then one thread folds the
		// partial array in index order.
		core.ForRange(w, 0, len(p.part), 0, func(b int) {
			lo, hi := b*prBlock, (b+1)*prBlock
			if hi > n {
				hi = n
			}
			var s float64
			for v := lo; v < hi; v++ {
				if p.g.Degree(int32(v)) == 0 {
					s += p.rank[v]
				}
			}
			p.part[b] = s
		})
		var dangling float64
		for _, s := range p.part {
			dangling += s
		}
		add := base + prDamping*dangling*inv
		// Pull gather over the transpose, arena scratch per chunk.
		var moved atomic.Int64
		gather := func(ww *core.Worker, lo, hi int) {
			a := arena.Of(ww)
			am := a.Mark()
			buf := arena.AllocUninit[int32](a, p.tmaxDeg)
			var m int64
			for v := lo; v < hi; v++ {
				var s float64
				for _, u := range p.tg.RowInto(int32(v), buf) {
					s += p.contrib[u]
				}
				nv := add + prDamping*s
				p.next[v] = nv
				if d := nv - p.rank[v]; d > prTol || d < -prTol {
					m++
				}
			}
			a.Release(am)
			if m > 0 {
				moved.Add(m)
			}
		}
		if w == nil {
			gather(nil, 0, n)
		} else {
			w.For(0, n, 0, gather)
		}
		p.rank, p.next = p.next, p.rank
		p.rounds++
		if moved.Load() == 0 {
			break
		}
	}
}

// runDirect is the hand-rolled baseline: the same round structure on
// statically chunked goroutines with per-goroutine gather buffers.
func (p *prInstance[A]) runDirect(nThreads int) {
	n := int(p.g.NumVertices())
	inv := 1.0 / float64(n)
	base := (1 - prDamping) * inv
	p.rounds = 0
	for it := 0; it < p.iters; it++ {
		directFor(nThreads, n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if d := p.g.Degree(int32(v)); d > 0 {
					p.contrib[v] = p.rank[v] / float64(d)
				} else {
					p.contrib[v] = 0
				}
			}
		})
		directFor(nThreads, len(p.part), func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				lo, hi := b*prBlock, (b+1)*prBlock
				if hi > n {
					hi = n
				}
				var s float64
				for v := lo; v < hi; v++ {
					if p.g.Degree(int32(v)) == 0 {
						s += p.rank[v]
					}
				}
				p.part[b] = s
			}
		})
		var dangling float64
		for _, s := range p.part {
			dangling += s
		}
		add := base + prDamping*dangling*inv
		var moved atomic.Int64
		directFor(nThreads, n, func(lo, hi int) {
			buf := make([]int32, p.tmaxDeg)
			var m int64
			for v := lo; v < hi; v++ {
				var s float64
				for _, u := range p.tg.RowInto(int32(v), buf) {
					s += p.contrib[u]
				}
				nv := add + prDamping*s
				p.next[v] = nv
				if d := nv - p.rank[v]; d > prTol || d < -prTol {
					m++
				}
			}
			if m > 0 {
				moved.Add(m)
			}
		})
		p.rank, p.next = p.next, p.rank
		p.rounds++
		if moved.Load() == 0 {
			break
		}
	}
}

func (p *prInstance[A]) verify() error {
	for v := range p.rank {
		if p.rank[v] != p.want[v] {
			return fmt.Errorf("pr: rank[%d] = %g, want %g", v, p.rank[v], p.want[v])
		}
	}
	return nil
}

// stat returns the round count the last run executed — identical
// convergence across variants is part of the determinism claim.
func (p *prInstance[A]) stat() int64 { return int64(p.rounds) }

// prOracle runs the identical blocked arithmetic sequentially. Byte
// equality with the parallel kernels is the verification contract, so
// the fold shape here mirrors runLibrary exactly.
func prOracle[A graph.Adjacency](g, tg A, iters int) []float64 {
	n := int(g.NumVertices())
	inv := 1.0 / float64(n)
	base := (1 - prDamping) * inv
	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	part := make([]float64, (n+prBlock-1)/prBlock)
	buf := make([]int32, tg.MaxDegree())
	for v := range rank {
		rank[v] = inv
	}
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			if d := g.Degree(int32(v)); d > 0 {
				contrib[v] = rank[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
		for b := range part {
			lo, hi := b*prBlock, (b+1)*prBlock
			if hi > n {
				hi = n
			}
			var s float64
			for v := lo; v < hi; v++ {
				if g.Degree(int32(v)) == 0 {
					s += rank[v]
				}
			}
			part[b] = s
		}
		var dangling float64
		for _, s := range part {
			dangling += s
		}
		add := base + prDamping*dangling*inv
		var moved int64
		for v := 0; v < n; v++ {
			var s float64
			for _, u := range tg.RowInto(int32(v), buf) {
				s += contrib[u]
			}
			nv := add + prDamping*s
			next[v] = nv
			if d := nv - rank[v]; d > prTol || d < -prTol {
				moved++
			}
		}
		rank, next = next, rank
		if moved == 0 {
			break
		}
	}
	return rank
}

func init() {
	core.DeclareSite("pr", "contrib: own rank-over-degree write", core.Stride)
	core.DeclareSite("pr", "dangling: block-owner partial fold", core.Block)
	core.DeclareSite("pr", "pull: in-neighbor contrib gather", core.RO)
	core.DeclareSite("pr", "pull: own rank store + moved fetch-add", core.AW)

	Register(Spec{
		Name:   "pr",
		Long:   "pagerank pull",
		Inputs: []string{graph.InputLink, graph.InputRMAT, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			// Sorted rows: the gather order is part of the float64
			// determinism contract. The symmetrized inputs are their
			// own transpose, so the forward graph serves both roles;
			// the compressed variants (equivalence tests, XL tier) pull
			// through a real shared-pool compressed transpose.
			g := graph.LoadUndirectedSorted(nil, input, scale, 0x9a6)
			p := newPR(g, g)
			p.want = prOracle(g, g, prMaxIters)
			return &Instance{
				RunLibrary: p.runLibrary,
				RunDirect:  p.runDirect,
				Verify:     p.verify,
				Reset:      p.reset,
				Stat:       p.stat,
			}
		},
	})
}
