package bench

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// Exported handles on the generic BFS/SSSP instances for callers
// outside this package: the bench-graph-xl tier (bench_graph_xl_test.go
// at the repo root) runs the same kernels the registered "bfs"/"sssp"
// benchmarks use, but instantiated over both plain and compressed CSR
// at ScaleLarge, and rpbreport derives bytes/edge and MTEPS from them.

// BFSKernel is a hybrid direction-optimizing BFS over any adjacency
// representation (g and its transpose tg).
type BFSKernel[A graph.Adjacency] struct{ b *bfsInstance[A] }

// NewBFSKernel builds a reusable BFS instance rooted at src.
func NewBFSKernel[A graph.Adjacency](g, tg A, src int32) *BFSKernel[A] {
	return &BFSKernel[A]{b: newBFS(g, tg, src)}
}

// Reset clears distances and parents for the next run.
func (k *BFSKernel[A]) Reset() { k.b.reset() }

// Run executes one hybrid traversal on w's pool (sequential if w is
// nil).
func (k *BFSKernel[A]) Run(w *core.Worker) { k.b.runHybrid(w) }

// SetWant installs the oracle distances Verify checks against.
func (k *BFSKernel[A]) SetWant(want []uint32) { k.b.want = want }

// Verify checks distances against the oracle and the parent tree for
// validity.
func (k *BFSKernel[A]) Verify() error {
	if err := k.b.verify(); err != nil {
		return err
	}
	return k.b.verifyParents()
}

// BFSOracle computes exact BFS levels sequentially.
func BFSOracle[A graph.Adjacency](g A, src int32) []uint32 { return bfsOracle(g, src) }

// SSSPKernel is a delta-stepping SSSP over any weighted adjacency.
type SSSPKernel[A graph.WAdjacency] struct{ s *ssspInstance[A] }

// NewSSSPKernel builds a reusable SSSP instance rooted at src.
func NewSSSPKernel[A graph.WAdjacency](g A, src int32) *SSSPKernel[A] {
	return &SSSPKernel[A]{s: newSSSP(g, src)}
}

// Reset clears distances and queue markers for the next run.
func (k *SSSPKernel[A]) Reset() { k.s.reset() }

// Run executes one delta-stepping run at the given worker count.
func (k *SSSPKernel[A]) Run(threads int) { k.s.runDelta(threads) }

// SetTranspose installs the weighted in-edge view for pull mode. For a
// compressed configuration, pass the pool-sharing compressed transpose
// (graph.Builder.CompressTransposeW) so pull rounds stream compressed
// rows.
func (k *SSSPKernel[A]) SetTranspose(tg A) { k.s.setTranspose(tg) }

// RunPull executes synchronous Bellman-Ford pull rounds over the
// transpose installed by SetTranspose, on w's pool (sequential if w is
// nil).
func (k *SSSPKernel[A]) RunPull(w *core.Worker) { k.s.runPull(w) }

// SetWant installs the oracle distances Verify checks against.
func (k *SSSPKernel[A]) SetWant(want []uint32) { k.s.want = want }

// Verify checks distances against the oracle.
func (k *SSSPKernel[A]) Verify() error { return k.s.verify() }

// Dist exposes the distance array of the last run (callers must not
// mutate it) — the reference another representation's run verifies
// against when a sequential oracle is too slow at scale.
func (k *SSSPKernel[A]) Dist() []uint32 { return k.s.dist }

// DijkstraOracle computes exact shortest-path distances sequentially.
func DijkstraOracle[A graph.WAdjacency](g A, src int32) []uint32 { return dijkstraOracle(g, src) }

// PRKernel is a synchronous pull-mode PageRank over any adjacency pair
// (forward g for out-degrees, transpose tg for the gathers). For a
// compressed configuration, pass the pool-sharing compressed transpose
// (graph.Builder.CompressTranspose) so every gather streams compressed
// rows.
type PRKernel[A graph.Adjacency] struct{ p *prInstance[A] }

// NewPRKernel builds a reusable PageRank instance.
func NewPRKernel[A graph.Adjacency](g, tg A) *PRKernel[A] {
	return &PRKernel[A]{p: newPR(g, tg)}
}

// SetIters caps the round count — the XL tier pins a fixed number of
// rounds so plain and compressed runs do identical work.
func (k *PRKernel[A]) SetIters(n int) { k.p.iters = n }

// Reset restores the uniform initial rank vector.
func (k *PRKernel[A]) Reset() { k.p.reset() }

// Run executes the pull iteration on w's pool (sequential if w is nil).
func (k *PRKernel[A]) Run(w *core.Worker) { k.p.runLibrary(w) }

// Ranks exposes the rank vector of the last run (callers must not
// mutate it).
func (k *PRKernel[A]) Ranks() []float64 { return k.p.rank }

// SetWant installs the oracle ranks Verify checks against, bit-exact.
func (k *PRKernel[A]) SetWant(want []float64) { k.p.want = want }

// Verify checks ranks against the oracle bit-for-bit.
func (k *PRKernel[A]) Verify() error { return k.p.verify() }

// PROracle runs the identical blocked PageRank arithmetic sequentially.
func PROracle[A graph.Adjacency](g, tg A, iters int) []float64 { return prOracle(g, tg, iters) }

// TCKernel counts triangles on a degree-ordered DAG adjacency.
type TCKernel[A graph.Adjacency] struct{ t *tcInstance[A] }

// NewTCKernel builds a reusable triangle counter over dag (sorted rows,
// each undirected edge stored once, low rank to high rank — see
// TCOrientEdges).
func NewTCKernel[A graph.Adjacency](dag A) *TCKernel[A] {
	return &TCKernel[A]{t: newTC(dag)}
}

// Run executes one count on w's pool (sequential if w is nil).
func (k *TCKernel[A]) Run(w *core.Worker) { k.t.runLibrary(w) }

// Count returns the triangle total of the last run.
func (k *TCKernel[A]) Count() int64 { return k.t.count }

// TCOrientEdges builds the degree-ordered orientation edge list of a
// symmetric graph; feed it to graph.Builder.BuildSorted (and Compress)
// to get the DAG adjacency TCKernel consumes.
func TCOrientEdges(g *graph.Graph) ([]graph.Edge, int32) { return tcOrientEdges(g) }

// TCOracle counts triangles sequentially by sorted two-pointer row
// intersection.
func TCOracle[A graph.Adjacency](dag A) int64 { return tcOracle(dag) }
