package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/seqgen"
)

// dedup — remove duplicates (PBBS): insert every key into a phase-
// concurrent hash table (the arbitrary-read-write pattern of Listing 8:
// conflicting CAS insertions on hash-determined slots), then extract the
// distinct keys. All modes share the CAS expression — AW has no
// check-based alternative; this is the paper's "Scared" territory.

type dedupInstance struct {
	keys     []uint32
	table    *hashtable.Set // built once, Reset between rounds
	idx      []int32        // round-persistent pack destination
	out      []uint64       // round-persistent extraction buffer
	distinct int            // result of the last run
	want     int
}

func (d *dedupInstance) reset() {
	d.table.Reset()
}

func (d *dedupInstance) runLibrary(w *core.Worker) {
	table := d.table
	core.ForRange(w, 0, len(d.keys), 0, func(i int) {
		table.Insert(uint64(d.keys[i]))
	})
	// Extract distinct keys with a pack over the table's slots (Block)
	// into the instance's reused destination buffers.
	d.idx = core.PackIndexInto(w, table.Capacity(), func(i int) bool {
		_, ok := table.SlotKey(i)
		return ok
	}, d.idx)
	idx := d.idx
	d.out = core.EnsureLen(d.out, len(idx))
	out := d.out
	core.ForRange(w, 0, len(idx), 0, func(i int) {
		k, _ := table.SlotKey(int(idx[i]))
		out[i] = k
	})
	d.distinct = len(out)
}

func (d *dedupInstance) runDirect(nThreads int) {
	// Hand-rolled open-addressing CAS table, inlined probe loop.
	capacity := 16
	for capacity < 2*len(d.keys) {
		capacity <<= 1
	}
	slots := make([]uint64, capacity)
	mask := uint64(capacity - 1)
	var count atomic.Int64
	var wg sync.WaitGroup
	chunk := (len(d.keys) + nThreads - 1) / max(nThreads, 1)
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < len(d.keys); lo += chunk {
		hi := lo + chunk
		if hi > len(d.keys) {
			hi = len(d.keys)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := int64(0)
			for _, k := range d.keys[lo:hi] {
				ek := uint64(k) + 1
				i := seqgen.Hash64(uint64(k)) & mask
				for {
					cur := atomic.LoadUint64(&slots[i])
					if cur == ek {
						break
					}
					if cur == 0 {
						if atomic.CompareAndSwapUint64(&slots[i], 0, ek) {
							local++
							break
						}
						if atomic.LoadUint64(&slots[i]) == ek {
							break
						}
						continue
					}
					i = (i + 1) & mask
				}
			}
			count.Add(local)
		}(lo, hi)
	}
	wg.Wait()
	d.distinct = int(count.Load())
}

func (d *dedupInstance) verify() error {
	if d.distinct != d.want {
		return fmt.Errorf("dedup: %d distinct keys, want %d", d.distinct, d.want)
	}
	return nil
}

func init() {
	core.DeclareSite("dedup", "insert: keys read", core.RO)
	core.DeclareSite("dedup", "insert: table slot CAS", core.AW)
	core.DeclareSite("dedup", "extract: slots read", core.RO)
	core.DeclareSite("dedup", "extract: live-slot pack write", core.Block)
	core.DeclareSite("dedup", "extract: out write", core.Stride)

	Register(Spec{
		Name:   "dedup",
		Long:   "remove duplicates",
		Inputs: []string{"exponential"},
		Make: func(input string, scale Scale) *Instance {
			n := SeqSize(scale)
			keys := seqgen.ExponentialInts(nil, n, 0xDED)
			seen := map[uint32]bool{}
			for _, k := range keys {
				seen[k] = true
			}
			d := &dedupInstance{keys: keys, want: len(seen)}
			d.table = hashtable.NewSet(len(keys))
			return &Instance{
				RunLibrary: d.runLibrary,
				RunDirect:  d.runDirect,
				Verify:     d.verify,
				Reset:      d.reset,
			}
		},
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
