package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seqgen"
)

// mis — maximal independent set (PBBS): Blelloch-style deterministic
// parallel MIS with random priorities. Rounds over the remaining
// vertices: a vertex whose priority beats every remaining neighbor
// enters the set and knocks its neighbors out. The neighbor knock-out
// writes are the AW pattern — conflicting same-value stores that Rust
// (and Go's race detector) reject unsynchronized, expressed with atomic
// stores.

const (
	misLive = 0 // undecided
	misIn   = 1 // in the MIS
	misOut  = 2 // dominated by an MIS neighbor
)

type misInstance struct {
	g      *graph.Graph
	pri    []uint32
	status []int32 // atomic access

	// Round-persistent scratch (docs/MEMORY.md): the frontier and its
	// ping-pong partner, plus the pack-index destination. Grown once,
	// reused every round and every benchmark repetition.
	frontier []int32
	spare    []int32
	idx      []int32
}

func (m *misInstance) reset() {
	for i := range m.status {
		m.status[i] = misLive
	}
}

// beatAllNeighbors reports whether v's priority is a strict local
// minimum among its still-live neighbors (ties broken by id).
func (m *misInstance) beatsAllNeighbors(v int32) bool {
	pv := m.pri[v]
	for _, u := range m.g.Neighbors(v) {
		if atomic.LoadInt32(&m.status[u]) == misOut {
			continue
		}
		pu := m.pri[u]
		if pu < pv || (pu == pv && u < v) {
			return false
		}
	}
	return true
}

func (m *misInstance) runLibrary(w *core.Worker) {
	n := int(m.g.N)
	m.frontier = core.PackIndexInto(w, n, func(int) bool { return true }, m.frontier)
	// The round bodies are built once per run and read the frontier via
	// the instance, so rounds allocate nothing beyond frontier growth
	// (and that only until the scratch has warmed).
	winner := func(i int) {
		// Phase A (RO + Stride): winners determine themselves; each task
		// writes only its own status slot.
		v := m.frontier[i]
		if atomic.LoadInt32(&m.status[v]) != misLive {
			return
		}
		if m.beatsAllNeighbors(v) {
			atomic.StoreInt32(&m.status[v], misIn)
		}
	}
	knock := func(i int) {
		// Phase B (AW): winners knock out neighbors — overlapping
		// same-value stores, synchronized with atomics.
		v := m.frontier[i]
		if atomic.LoadInt32(&m.status[v]) != misIn {
			return
		}
		for _, u := range m.g.Neighbors(v) {
			atomic.StoreInt32(&m.status[u], misOut)
		}
	}
	live := func(i int) bool {
		return atomic.LoadInt32(&m.status[m.frontier[i]]) == misLive
	}
	for len(m.frontier) > 0 {
		core.ForRange(w, 0, len(m.frontier), 0, winner)
		core.ForRange(w, 0, len(m.frontier), 0, knock)
		// Shrink the frontier (pack) into the ping-pong partner.
		m.idx = core.PackIndexInto(w, len(m.frontier), live, m.idx)
		m.spare = core.EnsureLen(m.spare, len(m.idx))
		for j, i := range m.idx {
			m.spare[j] = m.frontier[i]
		}
		m.frontier, m.spare = m.spare, m.frontier
	}
}

func (m *misInstance) runDirect(nThreads int) {
	n := int(m.g.N)
	remaining := make([]int32, n)
	for i := range remaining {
		remaining[i] = int32(i)
	}
	for len(remaining) > 0 {
		directFor(nThreads, len(remaining), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := remaining[i]
				if atomic.LoadInt32(&m.status[v]) != misLive {
					continue
				}
				if m.beatsAllNeighbors(v) {
					atomic.StoreInt32(&m.status[v], misIn)
				}
			}
		})
		directFor(nThreads, len(remaining), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := remaining[i]
				if atomic.LoadInt32(&m.status[v]) != misIn {
					continue
				}
				for _, u := range m.g.Neighbors(v) {
					atomic.StoreInt32(&m.status[u], misOut)
				}
			}
		})
		next := remaining[:0]
		for _, v := range remaining {
			if atomic.LoadInt32(&m.status[v]) == misLive {
				next = append(next, v)
			}
		}
		remaining = next
	}
}

func (m *misInstance) verify() error {
	// Independence: no two adjacent vertices both in the set.
	// Maximality: every vertex is in the set or has a neighbor in it.
	for v := int32(0); v < m.g.N; v++ {
		switch m.status[v] {
		case misIn:
			for _, u := range m.g.Neighbors(v) {
				if m.status[u] == misIn {
					return fmt.Errorf("mis: adjacent vertices %d and %d both in set", v, u)
				}
			}
		case misOut:
			ok := false
			for _, u := range m.g.Neighbors(v) {
				if m.status[u] == misIn {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("mis: vertex %d excluded without an MIS neighbor", v)
			}
		default:
			return fmt.Errorf("mis: vertex %d left undecided", v)
		}
	}
	return nil
}

func init() {
	core.DeclareSite("mis", "win: priorities read", core.RO)
	core.DeclareSite("mis", "win: neighbor list read", core.RO)
	core.DeclareSite("mis", "win: neighbor status read", core.AW)
	core.DeclareSite("mis", "win: own status write", core.Stride)
	core.DeclareSite("mis", "knockout: neighbor status write", core.AW)
	core.DeclareSite("mis", "frontier pack write", core.Block)
	core.DeclareSite("mis", "round recursion", core.DC)

	Register(Spec{
		Name:   "mis",
		Long:   "maximal independent set",
		Inputs: []string{graph.InputLink, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirected(nil, input, scale, 0x315)
			r := seqgen.NewRng(0x315315)
			pri := core.Tabulate(nil, int(g.N), func(i int) uint32 {
				return uint32(r.U64(uint64(i)))
			})
			m := &misInstance{g: g, pri: pri, status: make([]int32, g.N)}
			m.reset()
			return &Instance{
				RunLibrary: m.runLibrary,
				RunDirect:  m.runDirect,
				Verify:     m.verify,
				Reset:      m.reset,
				Stat: func() int64 {
					var n int64
					for v := range m.status {
						if m.status[v] == misIn {
							n++
						}
					}
					return n
				},
			}
		},
	})
}
