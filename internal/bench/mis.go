package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seqgen"
)

// mis — maximal independent set (PBBS): Blelloch-style deterministic
// parallel MIS with random priorities. Rounds over the remaining
// vertices: a vertex whose priority beats every remaining neighbor
// enters the set and knocks its neighbors out. The neighbor knock-out
// writes are the AW pattern — conflicting same-value stores that Rust
// (and Go's race detector) reject unsynchronized, expressed with atomic
// stores.

const (
	misLive = 0 // undecided
	misIn   = 1 // in the MIS
	misOut  = 2 // dominated by an MIS neighbor
)

type misInstance struct {
	g      *graph.Graph
	pri    []uint32
	status []int32 // atomic access
}

func (m *misInstance) reset() {
	for i := range m.status {
		m.status[i] = misLive
	}
}

// beatAllNeighbors reports whether v's priority is a strict local
// minimum among its still-live neighbors (ties broken by id).
func (m *misInstance) beatsAllNeighbors(v int32) bool {
	pv := m.pri[v]
	for _, u := range m.g.Neighbors(v) {
		if atomic.LoadInt32(&m.status[u]) == misOut {
			continue
		}
		pu := m.pri[u]
		if pu < pv || (pu == pv && u < v) {
			return false
		}
	}
	return true
}

func (m *misInstance) runLibrary(w *core.Worker) {
	n := int(m.g.N)
	remaining := core.PackIndex(w, n, func(int) bool { return true })
	for len(remaining) > 0 {
		// Phase A (RO + Stride): winners determine themselves; each task
		// writes only its own status slot.
		core.ForRange(w, 0, len(remaining), 0, func(i int) {
			v := remaining[i]
			if atomic.LoadInt32(&m.status[v]) != misLive {
				return
			}
			if m.beatsAllNeighbors(v) {
				atomic.StoreInt32(&m.status[v], misIn)
			}
		})
		// Phase B (AW): winners knock out neighbors — overlapping
		// same-value stores, synchronized with atomics.
		core.ForRange(w, 0, len(remaining), 0, func(i int) {
			v := remaining[i]
			if atomic.LoadInt32(&m.status[v]) != misIn {
				return
			}
			for _, u := range m.g.Neighbors(v) {
				atomic.StoreInt32(&m.status[u], misOut)
			}
		})
		// Shrink the frontier (pack).
		next := make([]int32, 0, len(remaining)/2)
		old := remaining
		idx := core.PackIndex(w, len(old), func(i int) bool {
			return atomic.LoadInt32(&m.status[old[i]]) == misLive
		})
		for _, i := range idx {
			next = append(next, old[i])
		}
		remaining = next
	}
}

func (m *misInstance) runDirect(nThreads int) {
	n := int(m.g.N)
	remaining := make([]int32, n)
	for i := range remaining {
		remaining[i] = int32(i)
	}
	for len(remaining) > 0 {
		directFor(nThreads, len(remaining), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := remaining[i]
				if atomic.LoadInt32(&m.status[v]) != misLive {
					continue
				}
				if m.beatsAllNeighbors(v) {
					atomic.StoreInt32(&m.status[v], misIn)
				}
			}
		})
		directFor(nThreads, len(remaining), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := remaining[i]
				if atomic.LoadInt32(&m.status[v]) != misIn {
					continue
				}
				for _, u := range m.g.Neighbors(v) {
					atomic.StoreInt32(&m.status[u], misOut)
				}
			}
		})
		next := remaining[:0]
		for _, v := range remaining {
			if atomic.LoadInt32(&m.status[v]) == misLive {
				next = append(next, v)
			}
		}
		remaining = next
	}
}

func (m *misInstance) verify() error {
	// Independence: no two adjacent vertices both in the set.
	// Maximality: every vertex is in the set or has a neighbor in it.
	for v := int32(0); v < m.g.N; v++ {
		switch m.status[v] {
		case misIn:
			for _, u := range m.g.Neighbors(v) {
				if m.status[u] == misIn {
					return fmt.Errorf("mis: adjacent vertices %d and %d both in set", v, u)
				}
			}
		case misOut:
			ok := false
			for _, u := range m.g.Neighbors(v) {
				if m.status[u] == misIn {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("mis: vertex %d excluded without an MIS neighbor", v)
			}
		default:
			return fmt.Errorf("mis: vertex %d left undecided", v)
		}
	}
	return nil
}

func init() {
	core.DeclareSite("mis", "win: priorities read", core.RO)
	core.DeclareSite("mis", "win: neighbor list read", core.RO)
	core.DeclareSite("mis", "win: neighbor status read", core.AW)
	core.DeclareSite("mis", "win: own status write", core.Stride)
	core.DeclareSite("mis", "knockout: neighbor status write", core.AW)
	core.DeclareSite("mis", "frontier pack write", core.Block)
	core.DeclareSite("mis", "round recursion", core.DC)

	Register(Spec{
		Name:   "mis",
		Long:   "maximal independent set",
		Inputs: []string{graph.InputLink, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirected(nil, input, scale, 0x315)
			r := seqgen.NewRng(0x315315)
			pri := core.Tabulate(nil, int(g.N), func(i int) uint32 {
				return uint32(r.U64(uint64(i)))
			})
			m := &misInstance{g: g, pri: pri, status: make([]int32, g.N)}
			m.reset()
			return &Instance{
				RunLibrary: m.runLibrary,
				RunDirect:  m.runDirect,
				Verify:     m.verify,
				Reset:      m.reset,
				Stat: func() int64 {
					var n int64
					for v := range m.status {
						if m.status[v] == misIn {
							n++
						}
					}
					return n
				},
			}
		},
	})
}
