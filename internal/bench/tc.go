package bench

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/graph"
)

// tc — triangle counting over the degree-ordered orientation. Setup
// ranks vertices by (degree, id) and keeps each undirected edge
// directed from lower to higher rank, so every row of the resulting DAG
// has O(sqrt(E)) out-degree on the standard inputs and each triangle is
// stored exactly once (at its lowest-rank corner). The kernel marks one
// row in a chunk-private bitmap and intersects each out-neighbor's row
// against it with Adjacency.CountIn — the set-intersection dual of the
// frontier-probe FindFirstIn: on the compressed shards it counts
// straight off the group-decode loop without materializing the neighbor
// slice. Chunk subtotals land in one fetch-add, the kernel's scared AW
// site; the total is an integer, so any execution order produces the
// oracle's count.

type tcInstance[A graph.Adjacency] struct {
	dag    A // degree-ordered orientation, sorted rows
	count  int64
	want   int64
	maxDeg int
}

func newTC[A graph.Adjacency](dag A) *tcInstance[A] {
	return &tcInstance[A]{dag: dag, maxDeg: int(dag.MaxDegree())}
}

func (t *tcInstance[A]) runLibrary(w *core.Worker) {
	n := int(t.dag.NumVertices())
	words := (n + 63) / 64
	var total atomic.Int64
	// Coarse grain: each chunk zeroes a words-long arena bitmap once,
	// so chunks must amortize that over many rows.
	grain := n / 256
	if grain < 1024 {
		grain = 1024
	}
	body := func(ww *core.Worker, lo, hi int) {
		a := arena.Of(ww)
		am := a.Mark()
		// zeroed chunk-private mark bitmap
		//lint:scared bm transits through the Adjacency.CountIn dynamic call, which only reads it; the checkout is released at the end of this chunk body
		bm := arena.Alloc[uint64](a, words)
		buf := arena.AllocUninit[int32](a, t.maxDeg)
		var cnt int64
		for v := lo; v < hi; v++ {
			row := t.dag.RowInto(int32(v), buf)
			if len(row) < 2 {
				continue
			}
			for _, u := range row {
				bm[uint32(u)>>6] |= 1 << (uint32(u) & 63)
			}
			for _, u := range row {
				cnt += t.dag.CountIn(u, bm)
			}
			for _, u := range row {
				bm[uint32(u)>>6] &^= 1 << (uint32(u) & 63)
			}
		}
		a.Release(am)
		total.Add(cnt)
	}
	if w == nil {
		body(nil, 0, n)
	} else {
		w.For(0, n, grain, body)
	}
	t.count = total.Load()
}

// runDirect is the hand-rolled baseline: the same mark-and-count over
// statically chunked goroutines with per-goroutine heap bitmaps.
func (t *tcInstance[A]) runDirect(nThreads int) {
	n := int(t.dag.NumVertices())
	words := (n + 63) / 64
	var total atomic.Int64
	directFor(nThreads, n, func(lo, hi int) {
		bm := make([]uint64, words)
		buf := make([]int32, t.maxDeg)
		var cnt int64
		for v := lo; v < hi; v++ {
			row := t.dag.RowInto(int32(v), buf)
			if len(row) < 2 {
				continue
			}
			for _, u := range row {
				bm[uint32(u)>>6] |= 1 << (uint32(u) & 63)
			}
			for _, u := range row {
				cnt += t.dag.CountIn(u, bm)
			}
			for _, u := range row {
				bm[uint32(u)>>6] &^= 1 << (uint32(u) & 63)
			}
		}
		total.Add(cnt)
	})
	t.count = total.Load()
}

func (t *tcInstance[A]) verify() error {
	if t.count != t.want {
		return fmt.Errorf("tc: counted %d triangles, want %d", t.count, t.want)
	}
	return nil
}

func (t *tcInstance[A]) stat() int64 { return t.count }

// tcOrientEdges builds the degree-ordered orientation of a symmetric
// graph: vertices ranked by (degree, id), each undirected edge kept
// only in its lower-rank endpoint's row. Setup-time helper — allocates
// freely.
func tcOrientEdges(g *graph.Graph) ([]graph.Edge, int32) {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	rank := make([]int32, n)
	for r, v := range order {
		rank[v] = int32(r)
	}
	edges := make([]graph.Edge, 0, g.NumEdges()/2)
	buf := make([]int32, g.MaxDegree())
	for v := int32(0); v < n; v++ {
		for _, u := range g.RowInto(v, buf) {
			if rank[v] < rank[u] {
				edges = append(edges, graph.Edge{From: v, To: u})
			}
		}
	}
	return edges, n
}

// tcOracle counts triangles sequentially with sorted two-pointer row
// intersection — a different intersection algorithm than the kernel's
// bitmap CountIn, so agreement checks the counting logic, not just the
// schedule.
func tcOracle[A graph.Adjacency](dag A) int64 {
	n := dag.NumVertices()
	rowV := make([]int32, dag.MaxDegree())
	bufV := make([]int32, dag.MaxDegree())
	bufU := make([]int32, dag.MaxDegree())
	var cnt int64
	for v := int32(0); v < n; v++ {
		row := append(rowV[:0], dag.RowInto(v, bufV)...)
		for _, u := range row {
			ru := dag.RowInto(u, bufU)
			i, j := 0, 0
			for i < len(row) && j < len(ru) {
				switch {
				case row[i] < ru[j]:
					i++
				case row[i] > ru[j]:
					j++
				default:
					cnt++
					i++
					j++
				}
			}
		}
	}
	return cnt
}

func init() {
	core.DeclareSite("tc", "orient: degree-ranked DAG rows read", core.RO)
	core.DeclareSite("tc", "mark: chunk-private neighbor bitmap set/clear", core.Block)
	core.DeclareSite("tc", "count: chunk triangle-subtotal fetch-add", core.AW)

	Register(Spec{
		Name:   "tc",
		Long:   "triangle counting",
		Inputs: []string{graph.InputLink, graph.InputRMAT, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirectedSorted(nil, input, scale, 0x7c1)
			edges, n := tcOrientEdges(g)
			var b graph.Builder
			dag := b.BuildSorted(nil, n, edges)
			t := newTC(dag)
			t.want = tcOracle(dag)
			return &Instance{
				RunLibrary: t.runLibrary,
				RunDirect:  t.runDirect,
				Verify:     t.verify,
				Stat:       t.stat,
			}
		},
	})
}
