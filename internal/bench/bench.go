// Package bench is the RPB reproduction harness: it registers the 14
// benchmarks of Table 1, each with two expressions of the same
// algorithm —
//
//   - Library ("RPB"): written against the internal/core pattern
//     primitives, honoring the suite-wide core.Mode switch
//     (unchecked / checked / synchronized), scheduled by the
//     work-stealing pool;
//   - Direct ("baseline"): hand-rolled with goroutines, WaitGroups and
//     raw atomics, statically chunked, no pattern library — playing the
//     role PBBS/OpenCilk C++ plays in the paper's Fig 4;
//
// plus a verifier, so every timed run is checked against an oracle.
package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Scale selects input sizes, mirroring graph.InputScale for non-graph
// inputs.
type Scale = graph.InputScale

const (
	ScaleTest    = graph.ScaleTest
	ScaleSmall   = graph.ScaleSmall
	ScaleDefault = graph.ScaleDefault
)

// TextSize returns the text-input length (bw, lrs, sa) for a scale.
func TextSize(s Scale) int {
	switch s {
	case ScaleTest:
		return 20_000
	case ScaleSmall:
		return 100_000
	default:
		return 400_000
	}
}

// SeqSize returns the sequence-input length (sort, dedup, hist, isort).
func SeqSize(s Scale) int {
	switch s {
	case ScaleTest:
		return 50_000
	case ScaleSmall:
		return 1_000_000
	default:
		return 5_000_000
	}
}

// PointCount returns the dr input size.
func PointCount(s Scale) int {
	switch s {
	case ScaleTest:
		return 300
	case ScaleSmall:
		return 2_000
	default:
		return 10_000
	}
}

// Instance is one prepared benchmark run: inputs generated and outputs
// allocated (untimed), ready to execute.
type Instance struct {
	// RunLibrary executes the RPB expression on the given worker,
	// honoring core.GetMode(). A nil worker runs sequentially.
	RunLibrary func(w *core.Worker)
	// RunDirect executes the hand-rolled baseline on nThreads plain
	// goroutines.
	RunDirect func(nThreads int)
	// Verify checks the output of the most recent run.
	Verify func() error
	// Reset restores state so the instance can run again (may be nil
	// when runs are naturally idempotent).
	Reset func()
	// Stat optionally reports a benchmark-specific result statistic
	// (e.g. MIS size) for cross-variant determinism checks.
	Stat func() int64
}

// Spec describes a registered benchmark.
type Spec struct {
	Name   string
	Long   string   // full benchmark name as in Table 1
	Inputs []string // input names (Table 1's Inputs column)
	// Make prepares an instance for one input at a scale. Generation is
	// not timed.
	Make func(input string, scale Scale) *Instance
}

var (
	regMu    sync.Mutex //lint:scared guards the init-time benchmark registry, not kernel data
	registry []Spec
)

// Register adds a benchmark to the suite registry (called from init).
func Register(s Spec) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, s)
}

// All returns the registered benchmarks sorted by name.
func All() []Spec {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Spec(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the benchmark with the given name.
func Find(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Variant selects which expression of a benchmark to run.
type Variant string

const (
	// VariantLibrary is the RPB expression (library + current Mode).
	VariantLibrary Variant = "rpb"
	// VariantDirect is the hand-rolled baseline (the C++ stand-in).
	VariantDirect Variant = "direct"
)

// Result is one timed measurement.
type Result struct {
	Bench   string
	Input   string
	Variant Variant
	Mode    core.Mode
	Threads int
	Seconds float64
	Reps    int
}

// Key returns "bench-input", the label format of the paper's figures.
func (r Result) Key() string {
	if r.Input == "" {
		return r.Bench
	}
	return r.Bench + "-" + r.Input
}

// Measure runs an instance reps times under the given variant and
// thread count, verifying each run, and returns the mean wall-clock
// seconds. For the library variant, threads == 0 means "run
// sequentially on the calling goroutine" (the paper's 1-thread
// side-steps-the-runtime configuration uses threads == 1, which still
// spins up a 1-worker pool).
func Measure(inst *Instance, v Variant, threads, reps int) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	var pool *core.Pool
	if v == VariantLibrary && threads > 0 {
		pool = core.NewPool(threads)
		defer pool.Close()
	}
	total := 0.0
	for rep := 0; rep < reps; rep++ {
		if inst.Reset != nil {
			inst.Reset()
		}
		start := time.Now()
		switch v {
		case VariantLibrary:
			if pool != nil {
				pool.Do(func(w *core.Worker) { inst.RunLibrary(w) })
			} else {
				inst.RunLibrary(nil)
			}
		case VariantDirect:
			inst.RunDirect(threads)
		default:
			return 0, fmt.Errorf("bench: unknown variant %q", v)
		}
		total += time.Since(start).Seconds()
		if inst.Verify != nil {
			if err := inst.Verify(); err != nil {
				return 0, fmt.Errorf("verification failed (rep %d): %w", rep, err)
			}
		}
	}
	return total / float64(reps), nil
}

// GeoMean returns the geometric mean of xs (which must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
