package bench

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/seqgen"
	"repro/internal/suffix"
)

// The text trio — sa (suffix array), lrs (longest repeated substring),
// bw (Burrows–Wheeler decode) — all run on generated Zipfian text with
// planted repeats (the wiki-input substitute). These are the paper's
// Fig 5a benchmarks: their dominant SngInd scatters (rank assignment
// through the suffix permutation, decode through the walk permutation)
// switch between unchecked (unsafe analog) and checked
// (par_ind_iter_mut analog) with core.Mode.

// --- sa ---

type saInstance struct {
	text   []byte
	sa     []int32
	oracle []int32
}

func (s *saInstance) runLibrary(w *core.Worker) {
	s.sa = suffix.ArrayOpts(w, s.text, core.GetMode() == core.ModeChecked)
}

func (s *saInstance) runDirect(nThreads int) {
	s.sa = directSuffixArray(nThreads, s.text)
}

func (s *saInstance) verify() error {
	if len(s.sa) != len(s.oracle) {
		return fmt.Errorf("sa: length %d, want %d", len(s.sa), len(s.oracle))
	}
	for i := range s.sa {
		if s.sa[i] != s.oracle[i] {
			return fmt.Errorf("sa: sa[%d] = %d, want %d", i, s.sa[i], s.oracle[i])
		}
	}
	return nil
}

// --- lrs ---

type lrsInstance struct {
	text    []byte
	length  int32 // result: longest repeat length
	wantLen int32
}

func lrsKernelLibrary(w *core.Worker, text []byte, checked bool) int32 {
	sa := suffix.ArrayOpts(w, text, checked)
	lcp := suffix.LCP(text, sa)
	if len(lcp) == 0 {
		return 0
	}
	best := core.MaxIndex(w, lcp)
	return lcp[best]
}

func (l *lrsInstance) runLibrary(w *core.Worker) {
	l.length = lrsKernelLibrary(w, l.text, core.GetMode() == core.ModeChecked)
}

func (l *lrsInstance) runDirect(nThreads int) {
	sa := directSuffixArray(nThreads, l.text)
	lcp := suffix.LCP(l.text, sa)
	if len(lcp) == 0 {
		l.length = 0
		return
	}
	best := directReduce(nThreads, len(lcp), 0, func(i int) int64 {
		return int64(i)
	}, func(a, b int64) int64 {
		if lcp[b] > lcp[a] || (lcp[b] == lcp[a] && b < a) {
			return b
		}
		return a
	})
	l.length = lcp[best]
}

func (l *lrsInstance) verify() error {
	if l.length != l.wantLen {
		return fmt.Errorf("lrs: length %d, want %d", l.length, l.wantLen)
	}
	return nil
}

// --- bw ---

type bwInstance struct {
	bwt  []byte
	out  []byte
	want []byte
}

func (b *bwInstance) runLibrary(w *core.Worker) {
	b.out = suffix.BWTDecodeOpts(w, b.bwt, core.GetMode() == core.ModeChecked)
}

func (b *bwInstance) runDirect(nThreads int) {
	b.out = directBWTDecode(nThreads, b.bwt)
}

func (b *bwInstance) verify() error {
	if !bytes.Equal(b.out, b.want) {
		return fmt.Errorf("bw: decode does not round-trip (%d vs %d bytes)", len(b.out), len(b.want))
	}
	return nil
}

func init() {
	// The Fig 3 census declares one site per shared-array access in each
	// parallel region (the paper's static counting method, Sec 7.2).
	declareSuffixArraySites := func(b string) {
		core.DeclareSite(b, "init: text read", core.RO)
		core.DeclareSite(b, "init: sa identity write", core.Stride)
		core.DeclareSite(b, "init: first-byte key write", core.Stride)
		core.DeclareSite(b, "doubling: rank read at i", core.RO)
		core.DeclareSite(b, "doubling: rank read at i+k", core.AW)
		core.DeclareSite(b, "doubling: combined key write", core.Stride)
		core.DeclareSite(b, "radix: src key read", core.RO)
		core.DeclareSite(b, "radix: block count write", core.Block)
		core.DeclareSite(b, "radix: count scan", core.Block)
		core.DeclareSite(b, "radix: cursor scatter write", core.Stride)
		core.DeclareSite(b, "radix: pass recursion", core.DC)
		core.DeclareSite(b, "ranks: boundary flag write", core.Stride)
		core.DeclareSite(b, "ranks: flag max-scan", core.Block)
		core.DeclareSite(b, "ranks: rvals write", core.Stride)
		core.DeclareSite(b, "ranks: scatter rank[sa[j]]", core.SngInd)
	}
	declareSuffixArraySites("sa")

	declareSuffixArraySites("lrs")
	core.DeclareSite("lrs", "lcp read (argmax)", core.RO)

	core.DeclareSite("bw", "lf: bwt read (counts)", core.RO)
	core.DeclareSite("bw", "lf: block count write", core.Block)
	core.DeclareSite("bw", "lf: count scan", core.Block)
	core.DeclareSite("bw", "lf: bwt read (cursors)", core.RO)
	core.DeclareSite("bw", "lf: lf chunk write", core.Stride)
	core.DeclareSite("bw", "jump: lf read", core.RO)
	core.DeclareSite("bw", "jump: nxt/dst init write", core.Stride)
	core.DeclareSite("bw", "jump: successor chase read", core.AW)
	core.DeclareSite("bw", "jump: nxt double write", core.Stride)
	core.DeclareSite("bw", "jump: dst accumulate write", core.Stride)
	core.DeclareSite("bw", "jump: round recursion", core.DC)
	core.DeclareSite("bw", "decode: bwt read", core.RO)
	core.DeclareSite("bw", "decode: scatter buf[dst[i]]", core.SngInd)

	Register(Spec{
		Name:   "sa",
		Long:   "suffix array",
		Inputs: []string{"wiki"},
		Make: func(input string, scale Scale) *Instance {
			text := seqgen.Text(nil, TextSize(scale), 0x5a11)
			s := &saInstance{text: text, oracle: suffix.ArrayDC3(text)} // DC3: fast O(n) oracle
			return &Instance{
				RunLibrary: s.runLibrary,
				RunDirect:  s.runDirect,
				Verify:     s.verify,
			}
		},
	})

	Register(Spec{
		Name:   "lrs",
		Long:   "longest repeated substring",
		Inputs: []string{"wiki"},
		Make: func(input string, scale Scale) *Instance {
			text := seqgen.Text(nil, TextSize(scale), 0x165)
			l := &lrsInstance{text: text}
			// Oracle via the independent DC3 construction.
			sa := suffix.ArrayDC3(text)
			lcp := suffix.LCP(text, sa)
			if len(lcp) > 0 {
				l.wantLen = lcp[core.MaxIndex(nil, lcp)]
			}
			return &Instance{
				RunLibrary: l.runLibrary,
				RunDirect:  l.runDirect,
				Verify:     l.verify,
			}
		},
	})

	Register(Spec{
		Name:   "bw",
		Long:   "Burrows-Wheeler decode",
		Inputs: []string{"wiki"},
		Make: func(input string, scale Scale) *Instance {
			text := seqgen.Text(nil, TextSize(scale), 0xb3)
			b := &bwInstance{
				bwt:  suffix.BWTEncode(nil, text),
				want: text,
			}
			return &Instance{
				RunLibrary: b.runLibrary,
				RunDirect:  b.runDirect,
				Verify:     b.verify,
			}
		},
	})
}
