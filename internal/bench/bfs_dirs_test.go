package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Direction-forcing tests for the hybrid BFS: each topology runs under
// the default heuristic, with bottom-up forced from the first level,
// and with top-down pinned — all three must produce the oracle's level
// assignment and a valid parent tree. The thresholds are injectable
// exactly for this: alpha=0 makes the bottom-up entry test
// (frontierEdges*alpha > remEdges) unsatisfiable, while alpha=beta=1<<20
// satisfies entry immediately and keeps the exit test
// (frontierVerts*beta < n) false until the frontier dies.
// (1<<20, not anything near 1<<40: the entry product is int64.)

const (
	forceOff = 0
	forceOn  = 1 << 20
)

// symEdges doubles an undirected pair list into a directed edge list.
func symEdges(pairs [][2]int32) []graph.Edge {
	edges := make([]graph.Edge, 0, 2*len(pairs))
	for _, p := range pairs {
		edges = append(edges, graph.Edge{From: p[0], To: p[1]}, graph.Edge{From: p[1], To: p[0]})
	}
	return edges
}

func starPairs(n int32) [][2]int32 {
	pairs := make([][2]int32, 0, n-1)
	for v := int32(1); v < n; v++ {
		pairs = append(pairs, [2]int32{0, v})
	}
	return pairs
}

func chainPairs(n int32) [][2]int32 {
	pairs := make([][2]int32, 0, n-1)
	for v := int32(1); v < n; v++ {
		pairs = append(pairs, [2]int32{v - 1, v})
	}
	return pairs
}

// twoComponents: a chain reachable from the source plus a clique that
// is not — unreached vertices must keep dist=inf and parent=-1 in both
// directions (the bottom-up step scans them every level).
func twoComponentPairs(n int32) [][2]int32 {
	half := n / 2
	pairs := chainPairs(half)
	for u := half; u < n; u++ {
		for v := u + 1; v < n && v < u+4; v++ {
			pairs = append(pairs, [2]int32{u, v})
		}
	}
	return pairs
}

func TestHybridBFSForcedDirections(t *testing.T) {
	type tc struct {
		name  string
		graph func() (*graph.Graph, int32)
	}
	cases := []tc{
		{"star", func() (*graph.Graph, int32) {
			return graph.BuildCSR(nil, 3000, symEdges(starPairs(3000))), 3000
		}},
		{"chain", func() (*graph.Graph, int32) {
			return graph.BuildCSR(nil, 3000, symEdges(chainPairs(3000))), 3000
		}},
		{"disconnected", func() (*graph.Graph, int32) {
			return graph.BuildCSR(nil, 2000, symEdges(twoComponentPairs(2000))), 2000
		}},
		{"powerlaw", func() (*graph.Graph, int32) {
			g := graph.LoadUndirected(nil, graph.InputLink, ScaleTest, 0xd1)
			return g, g.N
		}},
	}
	modes := []struct {
		name        string
		alpha, beta int64
	}{
		{"default", bfsAlpha, bfsBeta},
		{"bottomup", forceOn, forceOn},
		{"topdown", forceOff, bfsBeta},
	}
	pool := core.NewPool(4)
	defer pool.Close()

	for _, c := range cases {
		g, _ := c.graph()
		var tb graph.Builder
		tg := tb.Transpose(nil, g)
		want := bfsOracle(g, 0)
		for _, m := range modes {
			t.Run(fmt.Sprintf("%s/%s", c.name, m.name), func(t *testing.T) {
				b := newBFS(g, tg, 0)
				b.want = want
				b.alpha, b.beta = m.alpha, m.beta
				pool.Do(func(w *core.Worker) { b.runHybrid(w) })
				if err := b.verify(); err != nil {
					t.Fatal(err)
				}
				if err := b.verifyParents(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestHybridBFSDirectedChainBottomUp pins that bottom-up steps really
// scan the transpose: on a directed chain 0->1->...->n-1 the forward
// graph gives each vertex out-degree 1 but in-degree arrives only via
// the transpose, so a wrong Transpose would leave everything past the
// first level unreached.
func TestHybridBFSDirectedChainBottomUp(t *testing.T) {
	const n = 512
	edges := make([]graph.Edge, 0, n-1)
	for v := int32(1); v < n; v++ {
		edges = append(edges, graph.Edge{From: v - 1, To: v})
	}
	g := graph.BuildCSR(nil, n, edges)
	var tb graph.Builder
	tg := tb.Transpose(nil, g)
	b := newBFS(g, tg, 0)
	b.want = bfsOracle(g, 0)
	b.alpha, b.beta = forceOn, forceOn
	b.runHybrid(nil)
	if err := b.verify(); err != nil {
		t.Fatal(err)
	}
	if err := b.verifyParents(); err != nil {
		t.Fatal(err)
	}
	if b.dist[n-1] != n-1 {
		t.Fatalf("chain end at level %d, want %d", b.dist[n-1], n-1)
	}
}

// TestHybridBFSSequentialWorker covers the nil-worker (sequential
// library) path the instances use at threads=0.
func TestHybridBFSSequentialWorker(t *testing.T) {
	g := graph.LoadUndirected(nil, graph.InputRMAT, ScaleTest, 0xd2)
	var tb graph.Builder
	tg := tb.Transpose(nil, g)
	b := newBFS(g, tg, 0)
	b.want = bfsOracle(g, 0)
	b.runHybrid(nil)
	if err := b.verify(); err != nil {
		t.Fatal(err)
	}
	if err := b.verifyParents(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaSteppingMatchesOracleAcrossShifts runs the batched
// delta-stepping sssp with bucket widths around the heuristic choice;
// every width must still produce exact distances (width only shifts
// the work/order trade-off).
func TestDeltaSteppingMatchesOracleAcrossShifts(t *testing.T) {
	g := graph.LoadUndirectedWeighted(nil, graph.InputRMAT, ScaleTest, 0xd3)
	want := dijkstraOracle(g, 0)
	auto := deltaFor(g)
	for _, shift := range []uint32{0, auto, auto + 3} {
		s := newSSSP(g, 0)
		s.want = want
		s.deltaShift = shift
		s.runDelta(4)
		if err := s.verify(); err != nil {
			t.Fatalf("shift=%d: %v", shift, err)
		}
	}
}
