package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/seqgen"
)

// isort — integer sort (PBBS): stable LSD radix sort over exponentially
// distributed keys. Each pass computes the destination position of every
// element (Block counting + scan) and then scatters through the position
// array — the SngInd pattern of Listing 6, whose independence follows
// from positions being a permutation but is invisible to any checker.
//
// Modes: unchecked scatters directly (the unsafe analog); checked
// scatters via core.IndForEach, paying the uniqueness check; synchronized
// scatters with atomic stores (Listing 6(e) — races undetected but
// "placated").

const isortDigitBits = 8
const isortRadix = 1 << isortDigitBits
const isortBlock = 1 << 14

type isortInstance struct {
	orig []uint32
	keys []uint32
	bits int
	want []uint32
}

func (s *isortInstance) reset() { copy(s.keys, s.orig) }

// isortPositions computes, for one digit pass, the destination position
// of every element (stable counting order) into pos.
func isortPositions(w *core.Worker, keys []uint32, pos []int32, shift uint) {
	n := len(keys)
	nb := (n + isortBlock - 1) / isortBlock
	counts := make([]int32, isortRadix*nb)
	core.ForRange(w, 0, nb, 1, func(b int) {
		lo, hi := b*isortBlock, (b+1)*isortBlock
		if hi > n {
			hi = n
		}
		var local [isortRadix]int32
		for i := lo; i < hi; i++ {
			local[(keys[i]>>shift)&(isortRadix-1)]++
		}
		for d := 0; d < isortRadix; d++ {
			counts[d*nb+b] = local[d]
		}
	})
	core.ScanExclusive(w, counts)
	core.ForRange(w, 0, nb, 1, func(b int) {
		lo, hi := b*isortBlock, (b+1)*isortBlock
		if hi > n {
			hi = n
		}
		var cursor [isortRadix]int32
		for d := 0; d < isortRadix; d++ {
			cursor[d] = counts[d*nb+b]
		}
		for i := lo; i < hi; i++ {
			d := (keys[i] >> shift) & (isortRadix - 1)
			pos[i] = cursor[d]
			cursor[d]++
		}
	})
}

func (s *isortInstance) runLibrary(w *core.Worker) {
	n := len(s.keys)
	pos := make([]int32, n)
	buf := make([]uint32, n)
	src, dst := s.keys, buf
	passes := (s.bits + isortDigitBits - 1) / isortDigitBits
	mode := core.GetMode()
	for p := 0; p < passes; p++ {
		isortPositions(w, src, pos, uint(p*isortDigitBits))
		switch mode {
		case core.ModeChecked:
			// SngInd through the paper's par_ind_iter_mut analog: the
			// positions are validated to be a permutation at run time.
			if err := core.IndForEach(w, dst, pos, func(i int, slot *uint32) { *slot = src[i] }); err != nil {
				panic(fmt.Sprintf("isort: position check failed: %v", err))
			}
		case core.ModeSynchronized:
			// Atomic stores placate the type system but validate nothing.
			core.ForRange(w, 0, n, 0, func(i int) {
				atomic.StoreUint32(&dst[pos[i]], src[i])
			})
		default:
			core.IndForEachUnchecked(w, dst, pos, func(i int, slot *uint32) { *slot = src[i] })
		}
		src, dst = dst, src
	}
	if passes%2 == 1 {
		core.CopyInto(w, s.keys, src)
	}
}

func (s *isortInstance) runDirect(nThreads int) {
	n := len(s.keys)
	pos := make([]int32, n)
	buf := make([]uint32, n)
	src, dst := s.keys, buf
	passes := (s.bits + isortDigitBits - 1) / isortDigitBits
	nb := (n + isortBlock - 1) / isortBlock
	for p := 0; p < passes; p++ {
		shift := uint(p * isortDigitBits)
		counts := make([]int32, isortRadix*nb)
		directFor(nThreads, nb, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				lo, hi := b*isortBlock, (b+1)*isortBlock
				if hi > n {
					hi = n
				}
				var local [isortRadix]int32
				for i := lo; i < hi; i++ {
					local[(src[i]>>shift)&(isortRadix-1)]++
				}
				for d := 0; d < isortRadix; d++ {
					counts[d*nb+b] = local[d]
				}
			}
		})
		directScanExclusive(nThreads, counts)
		directFor(nThreads, nb, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				lo, hi := b*isortBlock, (b+1)*isortBlock
				if hi > n {
					hi = n
				}
				var cursor [isortRadix]int32
				for d := 0; d < isortRadix; d++ {
					cursor[d] = counts[d*nb+b]
				}
				for i := lo; i < hi; i++ {
					d := (src[i] >> shift) & (isortRadix - 1)
					pos[i] = cursor[d]
					cursor[d]++
				}
			}
		})
		directFor(nThreads, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[pos[i]] = src[i]
			}
		})
		src, dst = dst, src
	}
	if passes%2 == 1 {
		directFor(nThreads, n, func(lo, hi int) {
			copy(s.keys[lo:hi], src[lo:hi])
		})
	}
}

func (s *isortInstance) verify() error {
	for i := range s.keys {
		if s.keys[i] != s.want[i] {
			return fmt.Errorf("isort: keys[%d] = %d, want %d", i, s.keys[i], s.want[i])
		}
	}
	return nil
}

func init() {
	core.DeclareSite("isort", "count: keys read", core.RO)
	core.DeclareSite("isort", "count: block count write", core.Block)
	core.DeclareSite("isort", "count: scan", core.Block)
	core.DeclareSite("isort", "pos: keys read", core.RO)
	core.DeclareSite("isort", "pos: position write", core.Stride)
	core.DeclareSite("isort", "scatter: src read", core.RO)
	core.DeclareSite("isort", "scatter: pos read", core.RO)
	core.DeclareSite("isort", "scatter: dst write by position", core.SngInd)
	core.DeclareSite("isort", "final copy-back write", core.Stride)

	Register(Spec{
		Name:   "isort",
		Long:   "integer sort",
		Inputs: []string{"exponential"},
		Make: func(input string, scale Scale) *Instance {
			n := SeqSize(scale)
			orig := seqgen.ExponentialInts(nil, n, 0x1507)
			var maxKey uint32
			for _, k := range orig {
				if k > maxKey {
					maxKey = k
				}
			}
			bits := 1
			for v := maxKey; v > 1; v >>= 1 {
				bits++
			}
			want := append([]uint32(nil), orig...)
			core.Sort(nil, want)
			s := &isortInstance{
				orig: orig,
				keys: append([]uint32(nil), orig...),
				bits: bits,
				want: want,
			}
			return &Instance{
				RunLibrary: s.runLibrary,
				RunDirect:  s.runDirect,
				Verify:     s.verify,
				Reset:      s.reset,
			}
		},
	})
}
