package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/seqgen"
)

// isort — integer sort (PBBS): stable LSD radix sort over exponentially
// distributed keys. Each pass computes the destination position of every
// element (Block counting + scan) and then scatters through the position
// array — the SngInd pattern of Listing 6, whose independence follows
// from positions being a permutation but is invisible to any checker.
//
// Modes: unchecked scatters directly (the unsafe analog); checked
// scatters via core.IndForEach, paying the uniqueness check; synchronized
// scatters with atomic stores (Listing 6(e) — races undetected but
// "placated").

const isortDigitBits = 8
const isortRadix = 1 << isortDigitBits
const isortBlock = 1 << 14

type isortInstance struct {
	orig []uint32
	keys []uint32
	bits int
	want []uint32
}

func (s *isortInstance) reset() { copy(s.keys, s.orig) }

// Phases of isortPass.
const (
	isortPhaseCount uint8 = iota
	isortPhasePositions
)

// isortPass is the reusable per-pass loop body: phase isortPhaseCount
// histograms each block's digits into the digit-major count matrix;
// phase isortPhasePositions (after the matrix has been scanned into
// cursors) records every element's destination. A box, so steady-state
// passes build no closures.
type isortPass struct {
	keys   []uint32
	pos    []int32
	counts []int32
	n, nb  int
	shift  uint
	phase  uint8
}

func (p *isortPass) RunRange(_ *core.Worker, blo, bhi int) {
	for b := blo; b < bhi; b++ {
		lo, hi := b*isortBlock, (b+1)*isortBlock
		if hi > p.n {
			hi = p.n
		}
		if p.phase == isortPhaseCount {
			var local [isortRadix]int32
			for i := lo; i < hi; i++ {
				local[(p.keys[i]>>p.shift)&(isortRadix-1)]++
			}
			for d := 0; d < isortRadix; d++ {
				p.counts[d*p.nb+b] = local[d]
			}
		} else {
			var cursor [isortRadix]int32
			for d := 0; d < isortRadix; d++ {
				cursor[d] = p.counts[d*p.nb+b]
			}
			for i := lo; i < hi; i++ {
				d := (p.keys[i] >> p.shift) & (isortRadix - 1)
				p.pos[i] = cursor[d]
				cursor[d]++
			}
		}
	}
}

// isortPositions computes, for one digit pass, the destination position
// of every element (stable counting order) into p.pos.
func isortPositions(w *core.Worker, p *isortPass, keys []uint32, shift uint) {
	p.keys, p.shift = keys, shift
	p.phase = isortPhaseCount
	core.CountDynamic(core.Block)
	if w == nil || p.nb <= 1 {
		p.RunRange(nil, 0, p.nb)
	} else {
		w.ForBody(0, p.nb, 1, p)
	}
	core.ScanExclusive(w, p.counts)
	p.phase = isortPhasePositions
	core.CountDynamic(core.Stride)
	if w == nil || p.nb <= 1 {
		p.RunRange(nil, 0, p.nb)
	} else {
		w.ForBody(0, p.nb, 1, p)
	}
}

func (s *isortInstance) runLibrary(w *core.Worker) {
	n := len(s.keys)
	nb := (n + isortBlock - 1) / isortBlock
	// Round scratch: positions, ping-pong buffer, and the count matrix
	// all come from the worker's arena; the pass body rides a box.
	a := arena.Of(w)
	am := a.Mark()
	pos := arena.AllocUninit[int32](a, n)
	buf := arena.AllocUninit[uint32](a, n)
	pass := arena.AcquireBox[isortPass](w)
	pass.pos = pos
	pass.counts = arena.AllocUninit[int32](a, isortRadix*nb)
	pass.n, pass.nb = n, nb
	src, dst := s.keys, buf
	passes := (s.bits + isortDigitBits - 1) / isortDigitBits
	mode := core.GetMode()
	// The scatter bodies capture src/dst by reference, so the same
	// closures serve every pass of the ping-pong.
	scatter := func(i int, slot *uint32) { *slot = src[i] }
	syncScatter := func(i int) { atomic.StoreUint32(&dst[pos[i]], src[i]) }
	for p := 0; p < passes; p++ {
		isortPositions(w, pass, src, uint(p*isortDigitBits))
		switch mode {
		case core.ModeChecked:
			// SngInd through the paper's par_ind_iter_mut analog: the
			// positions are validated to be a permutation at run time.
			if err := core.IndForEach(w, dst, pos, scatter); err != nil {
				panic(fmt.Sprintf("isort: position check failed: %v", err))
			}
		case core.ModeSynchronized:
			// Atomic stores placate the type system but validate nothing.
			core.ForRange(w, 0, n, 0, syncScatter)
		default:
			core.IndForEachUnchecked(w, dst, pos, scatter)
		}
		src, dst = dst, src
	}
	if passes%2 == 1 {
		core.CopyInto(w, s.keys, src)
	}
	pass.keys, pass.pos, pass.counts = nil, nil, nil
	arena.ReleaseBox(w, pass)
	a.Release(am)
}

func (s *isortInstance) runDirect(nThreads int) {
	n := len(s.keys)
	pos := make([]int32, n)
	buf := make([]uint32, n)
	src, dst := s.keys, buf
	passes := (s.bits + isortDigitBits - 1) / isortDigitBits
	nb := (n + isortBlock - 1) / isortBlock
	for p := 0; p < passes; p++ {
		shift := uint(p * isortDigitBits)
		counts := make([]int32, isortRadix*nb)
		directFor(nThreads, nb, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				lo, hi := b*isortBlock, (b+1)*isortBlock
				if hi > n {
					hi = n
				}
				var local [isortRadix]int32
				for i := lo; i < hi; i++ {
					local[(src[i]>>shift)&(isortRadix-1)]++
				}
				for d := 0; d < isortRadix; d++ {
					counts[d*nb+b] = local[d]
				}
			}
		})
		directScanExclusive(nThreads, counts)
		directFor(nThreads, nb, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				lo, hi := b*isortBlock, (b+1)*isortBlock
				if hi > n {
					hi = n
				}
				var cursor [isortRadix]int32
				for d := 0; d < isortRadix; d++ {
					cursor[d] = counts[d*nb+b]
				}
				for i := lo; i < hi; i++ {
					d := (src[i] >> shift) & (isortRadix - 1)
					pos[i] = cursor[d]
					cursor[d]++
				}
			}
		})
		directFor(nThreads, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[pos[i]] = src[i]
			}
		})
		src, dst = dst, src
	}
	if passes%2 == 1 {
		directFor(nThreads, n, func(lo, hi int) {
			copy(s.keys[lo:hi], src[lo:hi])
		})
	}
}

func (s *isortInstance) verify() error {
	for i := range s.keys {
		if s.keys[i] != s.want[i] {
			return fmt.Errorf("isort: keys[%d] = %d, want %d", i, s.keys[i], s.want[i])
		}
	}
	return nil
}

func init() {
	core.DeclareSite("isort", "count: keys read", core.RO)
	core.DeclareSite("isort", "count: block count write", core.Block)
	core.DeclareSite("isort", "count: scan", core.Block)
	core.DeclareSite("isort", "pos: keys read", core.RO)
	core.DeclareSite("isort", "pos: position write", core.Stride)
	core.DeclareSite("isort", "scatter: src read", core.RO)
	core.DeclareSite("isort", "scatter: pos read", core.RO)
	core.DeclareSite("isort", "scatter: dst write by position", core.SngInd)
	core.DeclareSite("isort", "final copy-back write", core.Stride)

	Register(Spec{
		Name:   "isort",
		Long:   "integer sort",
		Inputs: []string{"exponential"},
		Make: func(input string, scale Scale) *Instance {
			n := SeqSize(scale)
			orig := seqgen.ExponentialInts(nil, n, 0x1507)
			var maxKey uint32
			for _, k := range orig {
				if k > maxKey {
					maxKey = k
				}
			}
			bits := 1
			for v := maxKey; v > 1; v >>= 1 {
				bits++
			}
			want := append([]uint32(nil), orig...)
			core.Sort(nil, want)
			s := &isortInstance{
				orig: orig,
				keys: append([]uint32(nil), orig...),
				bits: bits,
				want: want,
			}
			return &Instance{
				RunLibrary: s.runLibrary,
				RunDirect:  s.runDirect,
				Verify:     s.verify,
				Reset:      s.reset,
			}
		},
	})
}
