package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/seqgen"
)

// dr — Delaunay refinement (PBBS) on Kuzmin-distributed points. The
// initial triangulation is input preparation (untimed); the timed
// kernel is the speculative parallel refinement loop: skinny-triangle
// collection (RO + pack), cavity speculation (RO), reservation with
// priority writes, and disjoint parallel commits — the paper's richest
// mix of patterns, including RngInd-style disjoint region writes and AW
// reservations.

type drInstance struct {
	points []geom.Point
	opt    geom.RefineOptions
	radius float64
	mesh   *geom.Mesh // rebuilt on Reset, consumed by the run
	stats  geom.RefineStats
}

func (d *drInstance) build() {
	m := geom.NewMesh(d.points, d.opt.MaxSteiner+8, d.radius)
	m.Triangulate()
	d.mesh = m
}

func (d *drInstance) runLibrary(w *core.Worker) {
	d.stats = d.mesh.RefineParallel(w, d.opt)
}

func (d *drInstance) runDirect(nThreads int) {
	// dr's baseline shares the mesh engine (as PBBS's C++ variants share
	// theirs): the reservation loop on a dedicated pool of the requested
	// size, mirroring the paper's same-code-fewer-threads methodology.
	// geom.RefineSequential remains the test oracle.
	if nThreads < 1 {
		nThreads = 1
	}
	p := core.NewPool(nThreads)
	defer p.Close()
	p.Do(func(w *core.Worker) { d.stats = d.mesh.RefineParallel(w, d.opt) })
}

func (d *drInstance) verify() error {
	if err := d.mesh.CheckInvariants(); err != nil {
		return fmt.Errorf("dr: %w", err)
	}
	left := d.mesh.SkinnyCount(nil, d.opt.Bound)
	// A few borderline slivers may survive float-precision cavity
	// searches; wholesale failure to refine is a bug.
	if left > 8 && d.stats.Inserted < d.opt.MaxSteiner {
		return fmt.Errorf("dr: %d skinny triangles remain (inserted %d)", left, d.stats.Inserted)
	}
	return nil
}

func init() {
	core.DeclareSite("dr", "collect: triangle quality read", core.RO)
	core.DeclareSite("dr", "collect: bad-triangle pack write", core.Block)
	core.DeclareSite("dr", "speculate: mesh walk read", core.RO)
	core.DeclareSite("dr", "speculate: cavity incircle read", core.RO)
	core.DeclareSite("dr", "speculate: own plan write", core.Stride)
	core.DeclareSite("dr", "reserve: reservation reset write", core.Stride)
	core.DeclareSite("dr", "reserve: triangle WriteMin", core.AW)
	core.DeclareSite("dr", "commit: reservation read", core.AW)
	core.DeclareSite("dr", "commit: cavity region rewrite", core.RngInd)
	core.DeclareSite("dr", "commit: steiner point write (indirect)", core.SngInd)

	Register(Spec{
		Name:   "dr",
		Long:   "Delaunay refinement",
		Inputs: []string{"kuzmin"},
		Make: func(input string, scale Scale) *Instance {
			pts := seqgen.KuzminPoints(nil, PointCount(scale), 0xd3)
			maxR := 1.0
			for _, p := range pts {
				if r := math.Hypot(p.X, p.Y); r > maxR {
					maxR = r
				}
			}
			d := &drInstance{
				points: pts,
				opt:    geom.DefaultRefineOptions(len(pts)),
				radius: maxR + 1,
			}
			d.build()
			return &Instance{
				RunLibrary: d.runLibrary,
				RunDirect:  d.runDirect,
				Verify:     d.verify,
				Reset:      d.build,
			}
		},
	})
}
