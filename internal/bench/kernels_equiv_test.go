package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Oracle equivalence of the analytics kernels across representations:
// CC labels, PageRank ranks (bit-exact float64), triangle counts, and
// k-core coreness computed over the compressed CSR must match the plain
// CSR and the sequential oracle on every standard input at ScaleTest
// and ScaleSmall, in library (pool and sequential) and direct modes.

func TestCCCompressedMatchesPlain(t *testing.T) {
	pool := core.NewPool(4)
	defer pool.Close()
	for _, input := range []string{graph.InputLink, graph.InputRMAT, graph.InputRoad} {
		for _, scale := range equivScales(t) {
			t.Run(fmt.Sprintf("%s/scale%d", input, scale), func(t *testing.T) {
				g := graph.LoadUndirectedSorted(nil, input, scale, 0xcc0)
				var cb graph.Builder
				cg := cb.Compress(nil, g)
				want := ccOracle(g)
				if cwant := ccOracle(cg); !equalI32(want, cwant) {
					t.Fatal("sequential oracle differs between representations")
				}
				p := newCC(g)
				c := newCC(cg)
				p.want, c.want = want, want
				pool.Do(func(w *core.Worker) { p.runLibrary(w) })
				if err := p.verify(); err != nil {
					t.Fatalf("plain pool: %v", err)
				}
				pool.Do(func(w *core.Worker) { c.runLibrary(w) })
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph pool: %v", err)
				}
				c.reset()
				c.runLibrary(nil)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph sequential: %v", err)
				}
				c.runDirect(4)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph direct: %v", err)
				}
				if p.stat() != c.stat() {
					t.Fatalf("component count differs: %d vs %d", p.stat(), c.stat())
				}
			})
		}
	}
}

func TestPRCompressedMatchesPlain(t *testing.T) {
	pool := core.NewPool(4)
	defer pool.Close()
	for _, input := range []string{graph.InputLink, graph.InputRMAT, graph.InputRoad} {
		for _, scale := range equivScales(t) {
			t.Run(fmt.Sprintf("%s/scale%d", input, scale), func(t *testing.T) {
				g := graph.LoadUndirectedSorted(nil, input, scale, 0x9a6)
				// The compressed pull gathers over the pool-sharing
				// compressed transpose, exactly the XL configuration.
				var cb graph.Builder
				cg := cb.Compress(nil, g)
				ctg := cb.CompressTranspose(nil, g)
				if &cg.Bytes[0] != &ctg.Bytes[0] {
					t.Fatal("forward and transpose do not share a byte pool")
				}
				want := prOracle(g, g, prMaxIters)
				if cwant := prOracle(cg, ctg, prMaxIters); !equalF64(want, cwant) {
					t.Fatal("sequential oracle differs between representations")
				}
				p := newPR(g, g)
				c := newPR(cg, ctg)
				p.want, c.want = want, want
				p.reset()
				pool.Do(func(w *core.Worker) { p.runLibrary(w) })
				if err := p.verify(); err != nil {
					t.Fatalf("plain pool: %v", err)
				}
				c.reset()
				pool.Do(func(w *core.Worker) { c.runLibrary(w) })
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph pool: %v", err)
				}
				if p.rounds != c.rounds {
					t.Fatalf("convergence rounds differ: %d vs %d", p.rounds, c.rounds)
				}
				c.reset()
				c.runLibrary(nil)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph sequential: %v", err)
				}
				c.reset()
				c.runDirect(4)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph direct: %v", err)
				}
			})
		}
	}
}

func TestTCCompressedMatchesPlain(t *testing.T) {
	pool := core.NewPool(4)
	defer pool.Close()
	for _, input := range []string{graph.InputLink, graph.InputRMAT, graph.InputRoad} {
		for _, scale := range equivScales(t) {
			t.Run(fmt.Sprintf("%s/scale%d", input, scale), func(t *testing.T) {
				g := graph.LoadUndirectedSorted(nil, input, scale, 0x7c1)
				edges, n := tcOrientEdges(g)
				var b graph.Builder
				dag := b.BuildSorted(nil, n, edges)
				var cb graph.Builder
				cdag := cb.Compress(nil, dag)
				want := tcOracle(dag)
				if cwant := tcOracle(cdag); cwant != want {
					t.Fatalf("sequential oracle differs: %d vs %d", cwant, want)
				}
				p := newTC(dag)
				c := newTC(cdag)
				p.want, c.want = want, want
				pool.Do(func(w *core.Worker) { p.runLibrary(w) })
				if err := p.verify(); err != nil {
					t.Fatalf("plain pool: %v", err)
				}
				pool.Do(func(w *core.Worker) { c.runLibrary(w) })
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph pool: %v", err)
				}
				c.runLibrary(nil)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph sequential: %v", err)
				}
				c.runDirect(4)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph direct: %v", err)
				}
			})
		}
	}
}

func TestKCoreCompressedMatchesPlain(t *testing.T) {
	pool := core.NewPool(4)
	defer pool.Close()
	for _, input := range []string{graph.InputLink, graph.InputRMAT, graph.InputRoad} {
		for _, scale := range equivScales(t) {
			t.Run(fmt.Sprintf("%s/scale%d", input, scale), func(t *testing.T) {
				g := graph.LoadUndirected(nil, input, scale, 0x6c0)
				var cb graph.Builder
				cg := cb.Compress(nil, graph.LoadUndirectedSorted(nil, input, scale, 0x6c0))
				want := kcoreOracle(g)
				if cwant := kcoreOracle(cg); !equalU32(want, cwant) {
					t.Fatal("sequential oracle differs between representations")
				}
				p := newKCore(g)
				c := newKCore(cg)
				p.want, c.want = want, want
				p.reset()
				pool.Do(func(w *core.Worker) { p.runLibrary(w) })
				if err := p.verify(); err != nil {
					t.Fatalf("plain pool: %v", err)
				}
				c.reset()
				pool.Do(func(w *core.Worker) { c.runLibrary(w) })
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph pool: %v", err)
				}
				c.reset()
				c.runLibrary(nil)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph sequential: %v", err)
				}
				c.reset()
				c.runDirect(4)
				if err := c.verify(); err != nil {
					t.Fatalf("cgraph direct: %v", err)
				}
				if p.stat() != c.stat() {
					t.Fatalf("degeneracy differs: %d vs %d", p.stat(), c.stat())
				}
			})
		}
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
