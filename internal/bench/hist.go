package bench

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/seqgen"
)

// hist — histogram (PBBS) over exponentially distributed keys.
//
// Expressions by mode:
//   - unchecked/checked: per-block private histograms merged per bucket
//     (Block + Stride) — no synchronization needed by construction;
//   - synchronized: the paper's Fig 5b configuration — buckets are
//     structs too large for hardware atomics, so every update locks the
//     bucket (ShardedLocks), the "unnecessary synchronization" case
//     that costs ~4x.
const histBuckets = 4096

// bigBucket mimics PBBS hist's large per-bucket aggregate: too big for
// a single atomic, forcing a Mutex in the synchronized expression.
type bigBucket struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

type histInstance struct {
	keys   []uint32
	counts []int64
	big    []bigBucket
	locks  *core.ShardedLocks
	oracle []int64
}

const histBlockSize = 1 << 14

func (h *histInstance) reset() {
	for i := range h.counts {
		h.counts[i] = 0
		h.big[i] = bigBucket{Min: 1 << 62}
	}
}

// runLibrary is the RPB expression.
func (h *histInstance) runLibrary(w *core.Worker) {
	if core.GetMode() == core.ModeSynchronized {
		// Big-struct buckets guarded by per-bucket locks (Fig 5b hist).
		core.ForRange(w, 0, len(h.keys), 0, func(i int) {
			b := int(h.keys[i]) % histBuckets
			v := int64(h.keys[i])
			h.locks.With(b, func() {
				bb := &h.big[b]
				bb.Count++
				bb.Sum += v
				if v < bb.Min {
					bb.Min = v
				}
				if v > bb.Max {
					bb.Max = v
				}
			})
		})
		for b := range h.counts {
			h.counts[b] = h.big[b].Count
		}
		return
	}
	// Blocked private histograms (Block), merged per bucket (Stride).
	// The block-local histograms are one flat arena checkout — chunk ci
	// owns locals[ci*histBuckets:(ci+1)*histBuckets], cleared by the
	// chunk that owns it — so the steady-state round allocates nothing.
	n := len(h.keys)
	nb := (n + histBlockSize - 1) / histBlockSize
	a := arena.Of(w)
	m := a.Mark()
	locals := arena.AllocUninit[int64](a, nb*histBuckets)
	core.Chunks(w, h.keys, histBlockSize, func(ci int, chunk []uint32) {
		local := locals[ci*histBuckets : (ci+1)*histBuckets]
		clear(local)
		for _, k := range chunk {
			local[int(k)%histBuckets]++
		}
	})
	core.ForRange(w, 0, histBuckets, 0, func(b int) {
		var total int64
		for ci := 0; ci < nb; ci++ {
			total += locals[ci*histBuckets+b]
		}
		h.counts[b] = total
	})
	a.Release(m)
}

// runDirect is the hand-rolled baseline: per-thread private histograms.
func (h *histInstance) runDirect(nThreads int) {
	n := len(h.keys)
	nb := (n + histBlockSize - 1) / histBlockSize
	locals := make([][]int64, nb)
	directFor(nThreads, nb, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			s, e := ci*histBlockSize, (ci+1)*histBlockSize
			if e > n {
				e = n
			}
			local := make([]int64, histBuckets)
			for _, k := range h.keys[s:e] {
				local[int(k)%histBuckets]++
			}
			locals[ci] = local
		}
	})
	directFor(nThreads, histBuckets, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			var total int64
			for ci := 0; ci < nb; ci++ {
				total += locals[ci][b]
			}
			h.counts[b] = total
		}
	})
}

func (h *histInstance) verify() error {
	for b := range h.oracle {
		if h.counts[b] != h.oracle[b] {
			return fmt.Errorf("hist: bucket %d = %d, want %d", b, h.counts[b], h.oracle[b])
		}
	}
	return nil
}

func init() {
	core.DeclareSite("hist", "count: keys read", core.RO)
	core.DeclareSite("hist", "count: block-local histogram write", core.Block)
	core.DeclareSite("hist", "merge: locals read", core.RO)
	core.DeclareSite("hist", "merge: counts write", core.Stride)
	core.DeclareSite("hist", "bucket update via key (indirect)", core.SngInd)

	Register(Spec{
		Name:   "hist",
		Long:   "histogram",
		Inputs: []string{"exponential"},
		Make: func(input string, scale Scale) *Instance {
			n := SeqSize(scale)
			h := &histInstance{
				keys:   seqgen.ExponentialInts(nil, n, 0x415),
				counts: make([]int64, histBuckets),
				big:    make([]bigBucket, histBuckets),
				locks:  core.NewShardedLocks(histBuckets),
				oracle: make([]int64, histBuckets),
			}
			for _, k := range h.keys {
				h.oracle[int(k)%histBuckets]++
			}
			h.reset()
			return &Instance{
				RunLibrary: h.runLibrary,
				RunDirect:  h.runDirect,
				Verify:     h.verify,
				Reset:      h.reset,
			}
		},
	})
}
