package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seqgen"
	"repro/internal/specfor"
)

// mm — maximal matching (PBBS): deterministic reservations over edges.
// Each round, every live edge writes its priority into both endpoints'
// reservation slots with WriteMin (AW: conflicting priority writes);
// edges that win both endpoints join the matching; edges with a matched
// endpoint die; the rest retry. This is the reserve-and-commit idiom of
// the paper's Sec 5.2 / Sec 6 discussion.
//
// Priorities are a random permutation of edge indices, as in PBBS:
// structured inputs (the road grid) enumerate edges along rows, and
// index-ordered priorities would make matching resolve in long
// sequential chains instead of O(log m) rounds.

type mmInstance struct {
	edges   []graph.Edge
	n       int32
	order   []int32  // random processing order: order[k] = edge index
	pri     []uint32 // inverse of order: pri[ei] = k (the edge's priority)
	reserve []uint32 // per-vertex reservation, atomic access
	matched []int32  // per-vertex matched flag, atomic access
	inMatch []bool   // per-edge: in the matching (written by winner only)
}

const mmNoEdge = ^uint32(0)

func (m *mmInstance) reset() {
	for i := range m.reserve {
		m.reserve[i] = mmNoEdge
		m.matched[i] = 0
	}
	for i := range m.inMatch {
		m.inMatch[i] = false
	}
}

// runLibrary expresses mm through the specfor substrate (PBBS's
// speculative_for), in the random order fixed at prep time: Reserve
// stakes both endpoints with the edge's priority, Commit matches when
// both reservations held, PostRound resets the retries' slots.
func (m *mmInstance) runLibrary(w *core.Worker) {
	specfor.Run(w, len(m.order), 0, specfor.Loop{
		Reserve: func(k int) bool {
			e := m.edges[m.order[k]]
			if atomic.LoadInt32(&m.matched[e.From]) == 1 ||
				atomic.LoadInt32(&m.matched[e.To]) == 1 {
				return false // a matched endpoint makes the edge moot
			}
			core.WriteMinU32(&m.reserve[e.From], uint32(k))
			core.WriteMinU32(&m.reserve[e.To], uint32(k))
			return true
		},
		Commit: func(k int) bool {
			ei := m.order[k]
			e := m.edges[ei]
			if atomic.LoadUint32(&m.reserve[e.From]) == uint32(k) &&
				atomic.LoadUint32(&m.reserve[e.To]) == uint32(k) {
				atomic.StoreInt32(&m.matched[e.From], 1)
				atomic.StoreInt32(&m.matched[e.To], 1)
				m.inMatch[ei] = true
				return true
			}
			return false
		},
		PostRound: func(retry []int32) {
			for _, k := range retry {
				e := m.edges[m.order[k]]
				atomic.StoreUint32(&m.reserve[e.From], mmNoEdge)
				atomic.StoreUint32(&m.reserve[e.To], mmNoEdge)
			}
		},
	})
}

func (m *mmInstance) runDirect(nThreads int) {
	live := make([]int32, len(m.edges))
	for i := range live {
		live[i] = int32(i)
	}
	for len(live) > 0 {
		directFor(nThreads, len(live), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ei := live[i]
				e := m.edges[ei]
				directWriteMin(&m.reserve[e.From], m.pri[ei])
				directWriteMin(&m.reserve[e.To], m.pri[ei])
			}
		})
		directFor(nThreads, len(live), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ei := live[i]
				e := m.edges[ei]
				if atomic.LoadUint32(&m.reserve[e.From]) == m.pri[ei] &&
					atomic.LoadUint32(&m.reserve[e.To]) == m.pri[ei] {
					atomic.StoreInt32(&m.matched[e.From], 1)
					atomic.StoreInt32(&m.matched[e.To], 1)
					m.inMatch[ei] = true
				}
			}
		})
		directFor(nThreads, len(live), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := m.edges[live[i]]
				atomic.StoreUint32(&m.reserve[e.From], mmNoEdge)
				atomic.StoreUint32(&m.reserve[e.To], mmNoEdge)
			}
		})
		next := live[:0]
		for _, ei := range live {
			e := m.edges[ei]
			if atomic.LoadInt32(&m.matched[e.From]) == 0 && atomic.LoadInt32(&m.matched[e.To]) == 0 {
				next = append(next, ei)
			}
		}
		live = next
	}
}

// directWriteMin is the hand-rolled CAS loop of the baseline.
func directWriteMin(p *uint32, v uint32) {
	for {
		old := atomic.LoadUint32(p)
		if v >= old {
			return
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return
		}
	}
}

func (m *mmInstance) verify() error {
	deg := make([]int, m.n)
	for ei, in := range m.inMatch {
		if !in {
			continue
		}
		e := m.edges[ei]
		deg[e.From]++
		deg[e.To]++
		if deg[e.From] > 1 || deg[e.To] > 1 {
			return fmt.Errorf("mm: vertex matched twice by edge %d", ei)
		}
	}
	// Maximality: every unmatched edge must have a matched endpoint.
	for ei, e := range m.edges {
		if m.inMatch[ei] {
			continue
		}
		if deg[e.From] == 0 && deg[e.To] == 0 {
			return fmt.Errorf("mm: edge %d (%d-%d) addable — matching not maximal", ei, e.From, e.To)
		}
	}
	return nil
}

func init() {
	core.DeclareSite("mm", "reserve: edges read", core.RO)
	core.DeclareSite("mm", "reserve: endpoint WriteMin", core.AW)
	core.DeclareSite("mm", "commit: reservation read", core.AW)
	core.DeclareSite("mm", "commit: matched flag write", core.AW)
	core.DeclareSite("mm", "commit: own inMatch write", core.Stride)
	core.DeclareSite("mm", "clear: reservation reset write", core.Stride)
	core.DeclareSite("mm", "live-edge pack write", core.Block)
	core.DeclareSite("mm", "round recursion", core.DC)

	Register(Spec{
		Name:   "mm",
		Long:   "maximal matching",
		Inputs: []string{graph.InputRMAT, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			edges, n := graph.UndirectedEdgeList(nil, input, scale, 0x88)
			// Random processing order (Fisher-Yates on a seqgen stream);
			// pri is its inverse, giving each edge a unique priority.
			order := make([]int32, len(edges))
			for i := range order {
				order[i] = int32(i)
			}
			r := seqgen.NewRng(0x8888)
			for i := len(order) - 1; i > 0; i-- {
				j := r.Intn(uint64(i), i+1)
				order[i], order[j] = order[j], order[i]
			}
			pri := make([]uint32, len(edges))
			for k, ei := range order {
				pri[ei] = uint32(k)
			}
			m := &mmInstance{
				edges:   edges,
				n:       n,
				order:   order,
				pri:     pri,
				reserve: make([]uint32, n),
				matched: make([]int32, n),
				inMatch: make([]bool, len(edges)),
			}
			m.reset()
			return &Instance{
				RunLibrary: m.runLibrary,
				RunDirect:  m.runDirect,
				Verify:     m.verify,
				Reset:      m.reset,
			}
		},
	})
}
