package bench

import "sync"

// Hand-rolled parallel helpers for the Direct (baseline) variants: the
// simplest conventional expression — spawn nThreads goroutines over
// statically chunked ranges and wait — corresponding to the paper's
// Listing 14 (thread per core, even split). No work stealing, no
// pattern layer, no checks.

// directFor runs body over [0, n) split evenly across nThreads
// goroutines.
//
//lint:scared deliberate raw-goroutine baseline (paper Listing 14); disjoint static chunks, joined before return
func directFor(nThreads, n int, body func(lo, hi int)) {
	if nThreads <= 1 || n <= 1 {
		body(0, n)
		return
	}
	if nThreads > n {
		nThreads = n
	}
	chunk := (n + nThreads - 1) / nThreads
	var wg sync.WaitGroup
	for t := 0; t < nThreads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// directReduce folds [0, n) with per-thread partials merged on the
// caller's goroutine.
//
//lint:scared deliberate raw-goroutine baseline; each goroutine writes only its own partial[t]
func directReduce(nThreads, n int, identity int64, mapf func(i int) int64, comb func(a, b int64) int64) int64 {
	if nThreads <= 1 || n <= 1 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = comb(acc, mapf(i))
		}
		return acc
	}
	if nThreads > n {
		nThreads = n
	}
	partial := make([]int64, nThreads)
	chunk := (n + nThreads - 1) / nThreads
	var wg sync.WaitGroup
	for t := 0; t < nThreads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			partial[t] = identity
			continue
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			acc := identity
			for i := lo; i < hi; i++ {
				acc = comb(acc, mapf(i))
			}
			partial[t] = acc
		}(t, lo, hi)
	}
	wg.Wait()
	acc := identity
	for _, p := range partial {
		acc = comb(acc, p)
	}
	return acc
}

// directScanExclusive computes an exclusive prefix sum of xs in place
// (two statically chunked passes) and returns the total.
func directScanExclusive(nThreads int, xs []int32) int32 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if nThreads <= 1 {
		var acc int32
		for i := range xs {
			v := xs[i]
			xs[i] = acc
			acc += v
		}
		return acc
	}
	if nThreads > n {
		nThreads = n
	}
	chunk := (n + nThreads - 1) / nThreads
	sums := make([]int32, nThreads)
	directFor(nThreads, nThreads, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			s, e := t*chunk, (t+1)*chunk
			if e > n {
				e = n
			}
			var acc int32
			for i := s; i < e; i++ {
				acc += xs[i]
			}
			sums[t] = acc
		}
	})
	var total int32
	for t := 0; t < nThreads; t++ {
		s := sums[t]
		sums[t] = total
		total += s
	}
	directFor(nThreads, nThreads, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			s, e := t*chunk, (t+1)*chunk
			if e > n {
				e = n
			}
			acc := sums[t]
			for i := s; i < e; i++ {
				v := xs[i]
				xs[i] = acc
				acc += v
			}
		}
	})
	return total
}
