package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mq"
)

// bfs — breadth-first search driven by the MultiQueue (paper Sec 6):
// long-running workers pop (level, vertex) tasks in relaxed priority
// order, relax neighbors with WriteMin on the distance array (AW), and
// push improved vertices back. Task dispatch is fully dynamic — the
// paper's point is that this dynamism adds no fear beyond what the AW
// accesses already impose.

type bfsInstance struct {
	g    *graph.Graph
	src  int32
	dist []uint32 // atomic access during runs
	want []uint32
}

const distInf = ^uint32(0)

func (b *bfsInstance) reset() {
	for i := range b.dist {
		b.dist[i] = distInf
	}
}

func (b *bfsInstance) run(nWorkers int) {
	atomic.StoreUint32(&b.dist[b.src], 0)
	seeds := []mq.Item{{Pri: 0, Val: uint64(b.src)}}
	mq.Process(nWorkers, seeds, func(_ int, it mq.Item, push mq.Pusher) {
		v := int32(it.Val)
		d := uint32(it.Pri)
		if atomic.LoadUint32(&b.dist[v]) < d {
			return // stale task
		}
		nd := d + 1
		for _, u := range b.g.Neighbors(v) {
			if core.WriteMinU32(&b.dist[u], nd) {
				push.Push(mq.Item{Pri: uint64(nd), Val: uint64(u)})
			}
		}
	})
}

func (b *bfsInstance) runLibrary(w *core.Worker) {
	// The MQ manages its own long-running workers; the pool worker count
	// (or 1 for a nil worker) sets the parallelism.
	n := 1
	if w != nil {
		n = w.Pool().Workers()
	}
	b.run(n)
}

func (b *bfsInstance) runDirect(nThreads int) { b.run(nThreads) }

func (b *bfsInstance) verify() error {
	for v := range b.dist {
		if b.dist[v] != b.want[v] {
			return fmt.Errorf("bfs: dist[%d] = %d, want %d", v, b.dist[v], b.want[v])
		}
	}
	return nil
}

// bfsOracle computes exact BFS levels sequentially.
func bfsOracle(g *graph.Graph, src int32) []uint32 {
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = distInf
	}
	dist[src] = 0
	frontier := []int32{src}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if dist[u] == distInf {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

func init() {
	core.DeclareSite("bfs", "task: own distance read", core.AW)
	core.DeclareSite("bfs", "task: neighbor list read", core.AW)
	core.DeclareSite("bfs", "relax: neighbor distance WriteMin", core.AW)

	Register(Spec{
		Name:   "bfs",
		Long:   "breadth-first search",
		Inputs: []string{graph.InputLink, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirected(nil, input, scale, 0xbf5)
			src := int32(0)
			b := &bfsInstance{
				g:    g,
				src:  src,
				dist: make([]uint32, g.N),
				want: bfsOracle(g, src),
			}
			b.reset()
			return &Instance{
				RunLibrary: b.runLibrary,
				RunDirect:  b.runDirect,
				Verify:     b.verify,
				Reset:      b.reset,
			}
		},
	})
}
