package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mq"
)

// bfs — breadth-first search. The library expression is a hybrid
// direction-optimizing traversal (Beamer's algorithm, docs/GRAPH.md):
// level-synchronous top-down steps claim frontier neighbors with
// WriteMin on the distance array (AW) until the frontier's edge mass
// dominates the unexplored remainder, then bottom-up steps scan the
// transpose from each unvisited vertex looking for any parent in a
// bitmap frontier — word-disjoint plain writes, Fearless Block — and
// the traversal switches back once the frontier thins out. The direct
// expression keeps the paper's MultiQueue formulation (Sec 6):
// long-running workers pop (level, vertex) tasks in relaxed priority
// order, relax neighbors, and push improvements — the dynamism adds no
// fear beyond what the AW accesses already impose.
//
// The instance is generic over graph.Adjacency, so the same traversal
// runs against the plain CSR (*graph.Graph) and the compressed CSR
// (*graph.CGraph, docs/GRAPH.md "Compressed CSR"). Compressed rows are
// decoded in-loop into per-worker arena scratch — no materialized
// neighbor slices — and the bottom-up probe goes through FindFirstIn,
// which a compressed representation serves with an incremental decode
// that stops at the first frontier hit.

type bfsInstance[A graph.Adjacency] struct {
	g    A
	tg   A // transpose: in-edges scanned by bottom-up steps
	src  int32
	dist []uint32 // atomic access during runs
	want []uint32

	parent []int32 // parent[v]: BFS-tree edge parent[v]->v (library runs)

	// Persistent frontier state, reused across runs (0-alloc steady
	// state): two sparse vertex lists and two packed bitmaps.
	fa, fb        []int32
	curBM, nextBM []uint64

	// Decode scratch: row holds one MaxDegree row for the sequential
	// paths; dscratch grows one row per MultiQueue worker on demand.
	maxDeg   int
	row      []int32
	dscratch [][]int32

	// Direction-switch thresholds (Beamer's alpha/beta). Injectable so
	// tests can force either direction; newBFS sets the defaults.
	alpha, beta int64

	mqStats mq.Stats // counters from the last direct (MultiQueue) run
}

const distInf = ^uint32(0)

// Beamer's published constants: go bottom-up when the frontier's edges
// exceed 1/alpha of the unexplored edges, return top-down when the
// frontier shrinks below 1/beta of the vertices.
const (
	bfsAlpha = 14
	bfsBeta  = 24
)

// bfsSerialCutoff: top-down steps whose frontier carries less edge mass
// than this are expanded sequentially — the step is exclusive, so the
// claim needs no atomics and no spawn. Sized so the serial step costs
// about as much as the parallel machinery it avoids; on high-diameter
// inputs (road) nearly every level is this thin.
const bfsSerialCutoff = 4096

func newBFS[A graph.Adjacency](g, tg A, src int32) *bfsInstance[A] {
	n := g.NumVertices()
	words := (int(n) + 63) / 64
	maxDeg := int(g.MaxDegree())
	b := &bfsInstance[A]{
		g: g, tg: tg, src: src,
		dist:   make([]uint32, n),
		parent: make([]int32, n),
		fa:     make([]int32, n),
		fb:     make([]int32, n),
		curBM:  make([]uint64, words),
		nextBM: make([]uint64, words),
		maxDeg: maxDeg,
		row:    make([]int32, maxDeg),
		alpha:  bfsAlpha,
		beta:   bfsBeta,
	}
	b.reset()
	return b
}

func (b *bfsInstance[A]) reset() {
	for i := range b.dist {
		b.dist[i] = distInf
		b.parent[i] = -1
	}
}

// scratchFor returns per-worker decode rows for nWorkers MultiQueue
// workers, growing the persistent table on first use.
func (b *bfsInstance[A]) scratchFor(nWorkers int) [][]int32 {
	for len(b.dscratch) < nWorkers {
		b.dscratch = append(b.dscratch, make([]int32, b.maxDeg))
	}
	return b.dscratch[:nWorkers]
}

// bfsCnt carries a bottom-up step's (vertices, frontier edges) totals
// through MapReduce.
type bfsCnt struct{ verts, edges int64 }

// runHybrid is the direction-optimizing library expression.
func (b *bfsInstance[A]) runHybrid(w *core.Worker) {
	n := int(b.g.NumVertices())
	b.dist[b.src] = 0
	b.parent[b.src] = b.src
	b.fa[0] = b.src
	cur := b.fa[:1]
	spare := b.fb
	level := uint32(0)
	frontierVerts := int64(1)
	frontierEdges := int64(b.g.Degree(b.src))
	remEdges := b.g.NumEdges()
	bottomUp := false

	for frontierVerts > 0 {
		remEdges -= frontierEdges
		nd := level + 1

		// Enter bottom-up only when the frontier's edge mass dominates
		// the unexplored remainder AND the frontier is wide enough to
		// survive the exit condition — otherwise a high-diameter tail
		// (road) would thrash bitmap builds and packs every level.
		if !bottomUp && frontierEdges*b.alpha > remEdges && frontierVerts*b.beta >= int64(n) {
			// Dense enough: switch to bottom-up over a bitmap frontier.
			bottomUp = true
			core.Fill(w, b.curBM, 0)
			fr := cur
			core.ForRange(w, 0, len(fr), 0, func(i int) {
				core.SetBit(b.curBM, fr[i])
			})
		}

		if bottomUp {
			cnt := b.bottomUpStep(w, nd)
			frontierVerts, frontierEdges = cnt.verts, cnt.edges
			b.curBM, b.nextBM = b.nextBM, b.curBM
			if frontierVerts > 0 && frontierVerts*b.beta < int64(n) {
				// Frontier thinned out: pack the bitmap back to a sparse
				// list and resume top-down.
				bottomUp = false
				bm := b.curBM
				cur = core.PackIndexInto(w, n, func(i int) bool {
					return core.TestBit(bm, int32(i))
				}, b.fa)
				spare = b.fb
			}
		} else if frontierVerts+frontierEdges <= bfsSerialCutoff {
			// Tiny frontier: expand sequentially. The step is exclusive
			// (no parallel tasks in flight), so plain claims suffice.
			nxt := spare[:0]
			var edges int64
			for _, v := range cur {
				for _, u := range b.g.RowInto(v, b.row) {
					if b.dist[u] == distInf {
						b.dist[u] = nd
						b.parent[u] = v
						nxt = append(nxt, u)
						edges += int64(b.g.Degree(u))
					}
				}
			}
			spare = cur[:cap(cur)]
			cur = nxt
			frontierVerts, frontierEdges = int64(len(nxt)), edges
		} else {
			var nextCnt atomic.Int32
			var nextEdges atomic.Int64
			fr, nxt := cur, spare
			// Each chunk decodes rows into its worker's arena scratch —
			// Mark/Release bracketed, so repeated levels reuse the same
			// slab and the steady state stays allocation-free.
			expand := func(ww *core.Worker, lo, hi int) {
				a := arena.Of(ww)
				am := a.Mark()
				buf := arena.AllocUninit[int32](a, b.maxDeg)
				for i := lo; i < hi; i++ {
					v := fr[i]
					for _, u := range b.g.RowInto(v, buf) {
						if core.WriteMinU32(&b.dist[u], nd) {
							// Level-synchronous: exactly one claimer wins each
							// vertex, so the parent write has a single writer.
							b.parent[u] = v
							//lint:scared frontier append: the atomic fetch-add hands each winner a unique slot
							nxt[nextCnt.Add(1)-1] = u
							nextEdges.Add(int64(b.g.Degree(u)))
						}
					}
				}
				a.Release(am)
			}
			if w == nil {
				expand(nil, 0, len(fr))
			} else {
				w.For(0, len(fr), 0, expand)
			}
			spare = cur[:cap(cur)]
			cur = nxt[:nextCnt.Load()]
			frontierVerts, frontierEdges = int64(len(cur)), nextEdges.Load()
		}
		level = nd
	}
}

// bottomUpStep scans the transpose from every unvisited vertex, looking
// for any in-neighbor in the current bitmap frontier. Each parallel
// task owns one 64-vertex bitmap word, so its writes to dist, parent,
// and nextBM are word-disjoint plain stores; the previous level's
// bitmap is read-only during the step. The probe is the
// representation's FindFirstIn: a compressed transpose decodes each row
// incrementally and stops at the first hit, so a dense frontier reads
// only the head of most rows.
func (b *bfsInstance[A]) bottomUpStep(w *core.Worker, nd uint32) bfsCnt {
	words := len(b.curBM)
	n := int32(b.g.NumVertices())
	return core.MapReduce(w, words, bfsCnt{}, func(wi int) bfsCnt {
		var cnt bfsCnt
		var nextW uint64
		base := int32(wi) * 64
		hi := base + 64
		if hi > n {
			hi = n
		}
		for v := base; v < hi; v++ {
			if b.dist[v] != distInf {
				continue
			}
			if u := b.tg.FindFirstIn(v, b.curBM); u >= 0 {
				b.dist[v] = nd
				b.parent[v] = u
				nextW |= 1 << uint32(v-base)
				cnt.verts++
				cnt.edges += int64(b.g.Degree(v))
			}
		}
		b.nextBM[wi] = nextW
		return cnt
	}, func(a, c bfsCnt) bfsCnt {
		return bfsCnt{verts: a.verts + c.verts, edges: a.edges + c.edges}
	})
}

// run is the MultiQueue expression (direct mode): one vertex per queue
// operation, kept as the paper's Sec 6 baseline. Each worker decodes
// into its own persistent scratch row, indexed by the handler's worker
// id.
func (b *bfsInstance[A]) run(nWorkers int) {
	scratch := b.scratchFor(nWorkers)
	atomic.StoreUint32(&b.dist[b.src], 0)
	seeds := []mq.Item{{Pri: 0, Val: uint64(b.src)}}
	b.mqStats = mq.ProcessOpt(nWorkers, seeds, mq.Options{}, func(wi int, it mq.Item, push mq.Pusher) {
		v := int32(it.Val)
		d := uint32(it.Pri)
		if atomic.LoadUint32(&b.dist[v]) < d {
			return // stale task
		}
		nd := d + 1
		for _, u := range b.g.RowInto(v, scratch[wi]) {
			if core.WriteMinU32(&b.dist[u], nd) {
				push.Push(mq.Item{Pri: uint64(nd), Val: uint64(u)})
			}
		}
	})
}

func (b *bfsInstance[A]) runLibrary(w *core.Worker) { b.runHybrid(w) }

func (b *bfsInstance[A]) runDirect(nThreads int) { b.run(nThreads) }

func (b *bfsInstance[A]) verify() error {
	for v := range b.dist {
		if b.dist[v] != b.want[v] {
			return fmt.Errorf("bfs: dist[%d] = %d, want %d", v, b.dist[v], b.want[v])
		}
	}
	return nil
}

// verifyParents checks BFS-tree validity after a library (hybrid) run:
// every reached non-source vertex has a parent one level closer along a
// real edge, and unreached vertices have none.
func (b *bfsInstance[A]) verifyParents() error {
	n := b.g.NumVertices()
	for v := int32(0); v < n; v++ {
		p := b.parent[v]
		if b.dist[v] == distInf {
			if p != -1 {
				return fmt.Errorf("bfs: unreached %d has parent %d", v, p)
			}
			continue
		}
		if v == b.src {
			if p != b.src {
				return fmt.Errorf("bfs: source parent = %d", p)
			}
			continue
		}
		if p < 0 || p >= n {
			return fmt.Errorf("bfs: reached %d has no parent", v)
		}
		if b.dist[p]+1 != b.dist[v] {
			return fmt.Errorf("bfs: parent edge %d->%d spans levels %d->%d",
				p, v, b.dist[p], b.dist[v])
		}
		found := false
		for _, u := range b.g.RowInto(p, b.row) {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("bfs: parent edge %d->%d not in graph", p, v)
		}
	}
	return nil
}

// bfsOracle computes exact BFS levels sequentially.
func bfsOracle[A graph.Adjacency](g A, src int32) []uint32 {
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = distInf
	}
	buf := make([]int32, g.MaxDegree())
	dist[src] = 0
	frontier := []int32{src}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for _, u := range g.RowInto(v, buf) {
				if dist[u] == distInf {
					dist[u] = dist[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

func init() {
	core.DeclareSite("bfs", "topdown: distance WriteMin claim", core.AW)
	core.DeclareSite("bfs", "topdown: parent write + frontier append on claim", core.AW)
	core.DeclareSite("bfs", "frontier: bitmap bit set", core.AW)
	core.DeclareSite("bfs", "bottomup: word-owner dist/parent/bitmap writes", core.RO)
	core.DeclareSite("bfs", "frontier: sparse list scatter to bitmap", core.Stride)
	core.DeclareSite("bfs", "frontier: bitmap pack to sparse list", core.Block)
	core.DeclareSite("bfs", "relax: neighbor distance WriteMin (direct)", core.AW)

	Register(Spec{
		Name:   "bfs",
		Long:   "breadth-first search",
		Inputs: []string{graph.InputLink, graph.InputRMAT, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirected(nil, input, scale, 0xbf5)
			var tb graph.Builder
			tg := tb.Transpose(nil, g)
			b := newBFS(g, tg, 0)
			b.want = bfsOracle(g, 0)
			return &Instance{
				RunLibrary: b.runLibrary,
				RunDirect:  b.runDirect,
				Verify:     b.verify,
				Reset:      b.reset,
			}
		},
	})
}
