package bench

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// cc — connected components. The library expression is Afforest-style
// sampled label propagation over the concurrent union-find: a sampling
// phase unions only each vertex's first ccSampleNbrs neighbors (on the
// skewed standard inputs this already coalesces the giant component),
// a probe guesses the largest intermediate component, and the finish
// phase unions the remaining neighbors of every vertex *outside* that
// component — the bulk of the edge mass is never touched. The skip set
// reuses the graph kernels' bitmap-frontier machinery: word-owner
// parallel build, TestBit probes in the finish phase. The CAS hooks in
// the union-find are the AW pattern (conflicting writes to shared
// parent slots), exactly the sf benchmark's fear profile, now driven
// row-at-a-time through the Adjacency seam so the same kernel runs on
// plain and compressed CSR, decoding rows into per-worker arena
// scratch.
//
// Labels are deterministic across schedules and representations: Union
// always hooks the higher-id root under the lower-id one, so a
// component's surviving root — and therefore every member's final
// label — is its minimum vertex id, the same answer the sequential
// oracle computes.

type ccInstance[A graph.Adjacency] struct {
	g      A
	uf     *unionfind.UF // reused across rounds via Reset
	label  []int32
	want   []int32
	skipBM []uint64 // bitmap of the sampled largest component
	sample []int32  // probe buffer: roots of ccSampleProbe vertices
	maxDeg int
}

const (
	// ccSampleNbrs is Afforest's neighbor-sample width: phase 1 unions
	// only this many of each vertex's first neighbors.
	ccSampleNbrs = 2
	// ccSampleProbe is how many evenly spaced vertices the component
	// probe inspects to guess the largest intermediate component.
	ccSampleProbe = 1024
)

func newCC[A graph.Adjacency](g A) *ccInstance[A] {
	n := g.NumVertices()
	return &ccInstance[A]{
		g:      g,
		uf:     unionfind.New(n),
		label:  make([]int32, n),
		skipBM: make([]uint64, (int(n)+63)/64),
		sample: make([]int32, 0, ccSampleProbe),
		maxDeg: int(g.MaxDegree()),
	}
}

func (c *ccInstance[A]) reset() { c.uf.Reset() }

// mostFrequentRoot probes evenly spaced vertices after the sampling
// phase and returns the most frequent root among them — the presumed
// giant component. The probe buffer is persistent, so the steady state
// allocates nothing.
func (c *ccInstance[A]) mostFrequentRoot(n int) int32 {
	k := ccSampleProbe
	if k > n {
		k = n
	}
	stride := n / k
	if stride == 0 {
		stride = 1
	}
	s := c.sample[:0]
	for i := 0; i < k; i++ {
		s = append(s, c.uf.Find(int32(i*stride)))
	}
	core.Sort(nil, s)
	best, bestCnt := s[0], 1
	cur, cnt := s[0], 1
	for _, r := range s[1:] {
		if r == cur {
			cnt++
		} else {
			cur, cnt = r, 1
		}
		if cnt > bestCnt {
			best, bestCnt = cur, cnt
		}
	}
	return best
}

func (c *ccInstance[A]) runLibrary(w *core.Worker) {
	n := int(c.g.NumVertices())
	uf := c.uf

	// Phase 1 — sample: union each vertex with its first ccSampleNbrs
	// neighbors. Rows decode into per-chunk arena scratch,
	// Mark/Release bracketed like the BFS expansion; a compressed row
	// decodes only as far as the kernel reads, but RowInto is
	// whole-row, so the sample phase reads full rows and uses the head.
	sampleStep := func(ww *core.Worker, lo, hi int) {
		a := arena.Of(ww)
		am := a.Mark()
		buf := arena.AllocUninit[int32](a, c.maxDeg)
		for v := lo; v < hi; v++ {
			row := c.g.RowInto(int32(v), buf)
			if len(row) > ccSampleNbrs {
				row = row[:ccSampleNbrs]
			}
			for _, u := range row {
				uf.Union(int32(v), u)
			}
		}
		a.Release(am)
	}
	if w == nil {
		sampleStep(nil, 0, n)
	} else {
		w.For(0, n, 0, sampleStep)
	}

	// Phase 2 — probe for the giant component, then mark it in the
	// skip bitmap. Each task owns one 64-vertex bitmap word, the same
	// word-owner discipline as the bottom-up BFS step.
	big := c.mostFrequentRoot(n)
	core.ForRange(w, 0, len(c.skipBM), 0, func(wi int) {
		var word uint64
		base := wi * 64
		hi := base + 64
		if hi > n {
			hi = n
		}
		for v := base; v < hi; v++ {
			if uf.Find(int32(v)) == big {
				word |= 1 << uint32(v-base)
			}
		}
		c.skipBM[wi] = word
	})

	// Phase 3 — finish: union the remaining neighbors of every vertex
	// outside the giant component. Every edge is covered: an edge with
	// both endpoints in the skip set is already intra-component, and
	// symmetric inputs store each remaining edge in its non-skipped
	// endpoint's row too.
	finishStep := func(ww *core.Worker, lo, hi int) {
		a := arena.Of(ww)
		am := a.Mark()
		buf := arena.AllocUninit[int32](a, c.maxDeg)
		for v := lo; v < hi; v++ {
			if core.TestBit(c.skipBM, int32(v)) {
				continue
			}
			row := c.g.RowInto(int32(v), buf)
			for _, u := range row {
				uf.Union(int32(v), u)
			}
		}
		a.Release(am)
	}
	if w == nil {
		finishStep(nil, 0, n)
	} else {
		w.For(0, n, 0, finishStep)
	}

	// Phase 4 — labels: the forest is quiescent, every Find lands on
	// the component's minimum id.
	core.ForRange(w, 0, n, 0, func(v int) {
		c.label[v] = uf.Find(int32(v))
	})
}

// runDirect is the hand-rolled baseline: a fresh union-find, every
// edge unioned from statically chunked rows, no sampling or skip set.
func (c *ccInstance[A]) runDirect(nThreads int) {
	n := int(c.g.NumVertices())
	uf := unionfind.New(int32(n))
	directFor(nThreads, n, func(lo, hi int) {
		buf := make([]int32, c.maxDeg)
		for v := lo; v < hi; v++ {
			for _, u := range c.g.RowInto(int32(v), buf) {
				uf.Union(int32(v), u)
			}
		}
	})
	directFor(nThreads, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			c.label[v] = uf.Find(int32(v))
		}
	})
}

func (c *ccInstance[A]) verify() error {
	for v := range c.label {
		if c.label[v] != c.want[v] {
			return fmt.Errorf("cc: label[%d] = %d, want %d", v, c.label[v], c.want[v])
		}
	}
	return nil
}

// stat returns the component count, the cross-variant determinism
// statistic.
func (c *ccInstance[A]) stat() int64 {
	var comps int64
	for v, l := range c.label {
		if l == int32(v) {
			comps++
		}
	}
	return comps
}

// ccOracle computes component labels with a sequential union-find:
// every row unioned in order, labels = final roots (minimum id per
// component).
func ccOracle[A graph.Adjacency](g A) []int32 {
	n := g.NumVertices()
	uf := unionfind.New(n)
	buf := make([]int32, g.MaxDegree())
	for v := int32(0); v < n; v++ {
		for _, u := range g.RowInto(v, buf) {
			uf.Union(v, u)
		}
	}
	out := make([]int32, n)
	for v := int32(0); v < n; v++ {
		out[v] = uf.Find(v)
	}
	return out
}

func init() {
	core.DeclareSite("cc", "sample/finish: union parent hook CAS", core.AW)
	core.DeclareSite("cc", "sample/finish: find parent chase read", core.AW)
	core.DeclareSite("cc", "skip: component bitmap word build", core.Stride)
	core.DeclareSite("cc", "label: own component write", core.Stride)

	Register(Spec{
		Name:   "cc",
		Long:   "connected components",
		Inputs: []string{graph.InputLink, graph.InputRMAT, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirected(nil, input, scale, 0xcc0)
			c := newCC(g)
			c.want = ccOracle(g)
			return &Instance{
				RunLibrary: c.runLibrary,
				RunDirect:  c.runDirect,
				Verify:     c.verify,
				Reset:      c.reset,
				Stat:       c.stat,
			}
		},
	})
}
