package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mq"
)

// kcore — k-core decomposition by parallel peeling. The outer loop is
// level-synchronous over coreness values: find the minimum remaining
// degree among unpeeled vertices (that value is the next coreness k),
// pack every vertex sitting at the level into a seed batch, and hand
// the batch to the MultiQueue. The cascade then runs asynchronously
// within the level: peeling a vertex fetch-decrements each neighbor's
// remaining degree, and the decrement that lands exactly on k pushes
// that neighbor — the crossing is unique because the decrements are
// atomic and one-at-a-time, so every vertex enters the queue at most
// once per level. Remaining degrees of already-peeled vertices keep
// absorbing decrements harmlessly: their values only move further below
// every future level (a vertex of degree < 2^31 can never wrap back up
// to a live level), which is what makes the unconditional decrement
// safe and branch-free. Coreness values are a graph invariant, so the
// result is byte-identical to the sequential Matula–Beck oracle no
// matter how the relaxed queue interleaves the peels.

type kcoreInstance[A graph.Adjacency] struct {
	g        A
	rd       []uint32 // remaining degree, atomically decremented during cascades
	cn       []uint32 // coreness; distInf = not yet peeled
	want     []uint32
	seedBuf  []int32   // PackIndexInto destination
	seeds    []mq.Item // staged level batch
	dscratch [][]int32 // per-MQ-worker decode rows
	maxDeg   int
	mqStats  mq.Stats
}

func newKCore[A graph.Adjacency](g A) *kcoreInstance[A] {
	n := int(g.NumVertices())
	return &kcoreInstance[A]{
		g:       g,
		rd:      make([]uint32, n),
		cn:      make([]uint32, n),
		seedBuf: make([]int32, n),
		seeds:   make([]mq.Item, 0, n),
		maxDeg:  int(g.MaxDegree()),
	}
}

func (k *kcoreInstance[A]) reset() {
	for v := range k.rd {
		k.rd[v] = uint32(k.g.Degree(int32(v)))
		k.cn[v] = distInf
	}
}

// scratchFor returns per-worker decode rows for nWorkers MultiQueue
// workers, grown once and reused across runs.
func (k *kcoreInstance[A]) scratchFor(nWorkers int) [][]int32 {
	for len(k.dscratch) < nWorkers {
		k.dscratch = append(k.dscratch, make([]int32, k.maxDeg))
	}
	return k.dscratch
}

func (k *kcoreInstance[A]) runLibrary(w *core.Worker) {
	nWorkers := 1
	if w != nil {
		nWorkers = w.Pool().Workers()
	}
	k.runLevels(w, nWorkers)
}

func (k *kcoreInstance[A]) runLevels(w *core.Worker, nWorkers int) {
	n := int(k.g.NumVertices())
	scratch := k.scratchFor(nWorkers)
	var peeled atomic.Int64
	for int(peeled.Load()) < n {
		// Next level: minimum remaining degree over unpeeled vertices.
		// The arrays are quiescent between cascades, so plain reads.
		kc := core.MapReduce(w, n, distInf, func(v int) uint32 {
			if k.cn[v] != distInf {
				return distInf
			}
			return k.rd[v]
		}, func(a, b uint32) uint32 {
			if a < b {
				return a
			}
			return b
		})
		// Seeds: every unpeeled vertex at the level. The predicate is
		// read-only (PackIndexInto may evaluate it twice); the claim —
		// writing the coreness — happens in the sequential staging loop
		// below, before any cascade runs.
		seedIdx := core.PackIndexInto(w, n, func(v int) bool {
			return k.cn[v] == distInf && k.rd[v] <= kc
		}, k.seedBuf)
		items := k.seeds[:0]
		for _, v := range seedIdx {
			k.cn[v] = kc
			items = append(items, mq.Item{Pri: uint64(kc), Val: uint64(v)})
		}
		peeled.Add(int64(len(seedIdx)))
		k.mqStats = mq.ProcessBatch(nWorkers, items, mq.Options{}, func(wi int, it mq.Item, push mq.Pusher) {
			v := int32(it.Val)
			// Seeds arrive pre-claimed; cascade pushes claim here. No
			// CAS needed: the unique crossing means exactly one push
			// per vertex per level.
			if atomic.LoadUint32(&k.cn[v]) == distInf {
				atomic.StoreUint32(&k.cn[v], kc)
				peeled.Add(1)
			}
			for _, u := range k.g.RowInto(v, scratch[wi]) {
				if atomic.AddUint32(&k.rd[u], ^uint32(0)) == kc {
					push.Push(mq.Item{Pri: uint64(kc), Val: uint64(u)})
				}
			}
		})
	}
}

// runDirect is the hand-rolled baseline: the same level-synchronous
// peel with explicit sub-round frontiers on statically chunked
// goroutines instead of the MultiQueue cascade.
func (k *kcoreInstance[A]) runDirect(nThreads int) {
	n := int(k.g.NumVertices())
	frontier := make([]int32, 0, n)
	next := make([]int32, n)
	var peeled int64
	for peeled < int64(n) {
		kc := uint32(distInf)
		for v := 0; v < n; v++ {
			if k.cn[v] == distInf && k.rd[v] < kc {
				kc = k.rd[v]
			}
		}
		frontier = frontier[:0]
		for v := 0; v < n; v++ {
			if k.cn[v] == distInf && k.rd[v] <= kc {
				k.cn[v] = kc
				frontier = append(frontier, int32(v))
			}
		}
		peeled += int64(len(frontier))
		for len(frontier) > 0 {
			var nn atomic.Int64
			cur := frontier
			directFor(nThreads, len(cur), func(lo, hi int) {
				buf := make([]int32, k.maxDeg)
				for i := lo; i < hi; i++ {
					for _, u := range k.g.RowInto(cur[i], buf) {
						if atomic.AddUint32(&k.rd[u], ^uint32(0)) == kc {
							atomic.StoreUint32(&k.cn[u], kc)
							// The unique kc-crossing hands each peeled
							// vertex its own slot.
							next[nn.Add(1)-1] = u
						}
					}
				}
			})
			cnt := int(nn.Load())
			peeled += int64(cnt)
			frontier = append(frontier[:0], next[:cnt]...)
		}
	}
}

func (k *kcoreInstance[A]) verify() error {
	for v := range k.cn {
		if k.cn[v] != k.want[v] {
			return fmt.Errorf("kcore: coreness[%d] = %d, want %d", v, k.cn[v], k.want[v])
		}
	}
	return nil
}

// stat returns the degeneracy (maximum coreness), the cross-variant
// determinism statistic.
func (k *kcoreInstance[A]) stat() int64 {
	var max uint32
	for _, c := range k.cn {
		if c > max {
			max = c
		}
	}
	return int64(max)
}

// kcoreOracle is the sequential Matula–Beck peel: repeatedly remove a
// minimum-remaining-degree vertex, assigning it the running maximum of
// those minima as its coreness.
func kcoreOracle[A graph.Adjacency](g A) []uint32 {
	n := int(g.NumVertices())
	rd := make([]uint32, n)
	cn := make([]uint32, n)
	buf := make([]int32, g.MaxDegree())
	for v := 0; v < n; v++ {
		rd[v] = uint32(g.Degree(int32(v)))
		cn[v] = distInf
	}
	queue := make([]int32, 0, n)
	peeled := 0
	for peeled < n {
		kc := uint32(distInf)
		for v := 0; v < n; v++ {
			if cn[v] == distInf && rd[v] < kc {
				kc = rd[v]
			}
		}
		queue = queue[:0]
		for v := 0; v < n; v++ {
			if cn[v] == distInf && rd[v] <= kc {
				cn[v] = kc
				queue = append(queue, int32(v))
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			peeled++
			for _, u := range g.RowInto(v, buf) {
				if cn[u] != distInf {
					continue
				}
				rd[u]--
				if rd[u] == kc {
					cn[u] = kc
					queue = append(queue, u)
				}
			}
		}
	}
	return cn
}

func init() {
	core.DeclareSite("kcore", "level: min remaining-degree scan", core.RO)
	core.DeclareSite("kcore", "seed: unpeeled level pack", core.Block)
	core.DeclareSite("kcore", "peel: remaining-degree fetch-decrement", core.AW)
	core.DeclareSite("kcore", "peel: coreness claim store", core.AW)

	Register(Spec{
		Name:   "kcore",
		Long:   "k-core decomposition",
		Inputs: []string{graph.InputLink, graph.InputRMAT, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirected(nil, input, scale, 0x6c0)
			k := newKCore(g)
			k.want = kcoreOracle(g)
			return &Instance{
				RunLibrary: k.runLibrary,
				RunDirect:  k.runDirect,
				Verify:     k.verify,
				Reset:      k.reset,
				Stat:       k.stat,
			}
		},
	})
}
