package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mq"
)

// sssp — single-source shortest paths: relaxed Dijkstra over the
// MultiQueue (paper Sec 6 / Postnikova et al.). Workers pop the
// (probabilistically) closest unsettled vertex, relax its out-edges
// with WriteMin (AW), and push improvements. Priority inversions from
// the relaxed queue cost wasted work, never wrong answers: stale tasks
// are dropped against the distance array.

type ssspInstance struct {
	g    *graph.WGraph
	src  int32
	dist []uint32 // atomic access during runs
	want []uint32
}

func (s *ssspInstance) reset() {
	for i := range s.dist {
		s.dist[i] = distInf
	}
}

func (s *ssspInstance) run(nWorkers int) {
	atomic.StoreUint32(&s.dist[s.src], 0)
	seeds := []mq.Item{{Pri: 0, Val: uint64(s.src)}}
	mq.Process(nWorkers, seeds, func(_ int, it mq.Item, push mq.Pusher) {
		v := int32(it.Val)
		d := uint32(it.Pri)
		if atomic.LoadUint32(&s.dist[v]) < d {
			return // superseded by a shorter path
		}
		adj, wgt := s.g.WNeighbors(v)
		for i, u := range adj {
			nd := d + wgt[i]
			if core.WriteMinU32(&s.dist[u], nd) {
				push.Push(mq.Item{Pri: uint64(nd), Val: uint64(u)})
			}
		}
	})
}

func (s *ssspInstance) runLibrary(w *core.Worker) {
	n := 1
	if w != nil {
		n = w.Pool().Workers()
	}
	s.run(n)
}

func (s *ssspInstance) runDirect(nThreads int) { s.run(nThreads) }

func (s *ssspInstance) verify() error {
	for v := range s.dist {
		if s.dist[v] != s.want[v] {
			return fmt.Errorf("sssp: dist[%d] = %d, want %d", v, s.dist[v], s.want[v])
		}
	}
	return nil
}

// dijkstraOracle computes exact distances with a sequential binary-heap
// Dijkstra.
func dijkstraOracle(g *graph.WGraph, src int32) []uint32 {
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = distInf
	}
	dist[src] = 0
	type hi struct {
		d uint32
		v int32
	}
	heap := []hi{{0, src}}
	push := func(x hi) {
		heap = append(heap, x)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() hi {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && heap[l].d < heap[m].d {
				m = l
			}
			if r < len(heap) && heap[r].d < heap[m].d {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}
	for len(heap) > 0 {
		top := pop()
		if top.d > dist[top.v] {
			continue
		}
		adj, wgt := g.WNeighbors(top.v)
		for i, u := range adj {
			nd := top.d + wgt[i]
			if nd < dist[u] {
				dist[u] = nd
				push(hi{nd, u})
			}
		}
	}
	return dist
}

func init() {
	core.DeclareSite("sssp", "task: own distance read", core.AW)
	core.DeclareSite("sssp", "task: neighbor/weight read", core.AW)
	core.DeclareSite("sssp", "relax: neighbor distance WriteMin", core.AW)

	Register(Spec{
		Name:   "sssp",
		Long:   "single-source shortest path",
		Inputs: []string{graph.InputLink, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirectedWeighted(nil, input, scale, 0x555)
			src := int32(0)
			s := &ssspInstance{
				g:    g,
				src:  src,
				dist: make([]uint32, g.N),
				want: dijkstraOracle(g, src),
			}
			s.reset()
			return &Instance{
				RunLibrary: s.runLibrary,
				RunDirect:  s.runDirect,
				Verify:     s.verify,
				Reset:      s.reset,
			}
		},
	})
}
