package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mq"
)

// sssp — single-source shortest paths. The library expression is
// delta-stepping (Meyer & Sanders) layered on the batched MultiQueue
// (docs/GRAPH.md): task priority is the distance bucket floor(d/delta),
// workers pop whole buckets of vertices per lock acquisition
// (mq.ProcessBatch), relax out-edges with WriteMin (AW), and stage the
// improved vertices in per-worker buffers that flush to the queue in
// batches. The direct expression keeps the paper's relaxed Dijkstra
// (Sec 6 / Postnikova et al.): one vertex per queue operation, priority
// = exact tentative distance. In both, priority inversions from the
// relaxed queue cost wasted work, never wrong answers: stale tasks are
// dropped against the distance array, and the distance array — not the
// queue order — defines the result.
//
// The instance is generic over graph.WAdjacency: the plain *graph.WGraph
// relaxation reads its interior row slices, while the compressed
// *graph.CWGraph decodes each popped vertex's row into the worker's
// persistent scratch (indexed by the MultiQueue worker id) and reads
// the uncompressed weight slice alongside.

type ssspInstance[A graph.WAdjacency] struct {
	g          A
	src        int32
	deltaShift uint32   // log2 of the delta-stepping bucket width
	dist       []uint32 // atomic access during runs
	qb         []uint32 // bucket each vertex is queued at (distInf: not queued)
	want       []uint32

	// Pull-mode state (SetTranspose): the weighted in-edge view the
	// synchronous Bellman-Ford rounds of runPull gather from.
	tg      A
	hasTG   bool
	tmaxDeg int

	maxDeg   int
	dscratch [][]int32 // per-MultiQueue-worker decode rows

	mqStats mq.Stats // counters from the last run (either mode)
}

func newSSSP[A graph.WAdjacency](g A, src int32) *ssspInstance[A] {
	n := g.NumVertices()
	s := &ssspInstance[A]{
		g:          g,
		src:        src,
		deltaShift: deltaFor(g),
		dist:       make([]uint32, n),
		qb:         make([]uint32, n),
		maxDeg:     int(g.MaxDegree()),
	}
	s.reset()
	return s
}

func (s *ssspInstance[A]) reset() {
	for i := range s.dist {
		s.dist[i] = distInf
		s.qb[i] = distInf
	}
}

func (s *ssspInstance[A]) scratchFor(nWorkers int) [][]int32 {
	for len(s.dscratch) < nWorkers {
		s.dscratch = append(s.dscratch, make([]int32, s.maxDeg))
	}
	return s.dscratch[:nWorkers]
}

// deltaFor picks the bucket width: maxW/avgDeg (the classic heuristic —
// one bucket's worth of relaxations roughly matches one vertex's edge
// fan-out) rounded down to a power of two, so the per-relaxation bucket
// computation is a shift instead of a division. Returns the shift.
func deltaFor[A graph.WAdjacency](g A) uint32 {
	var maxW uint32 = 1
	n := g.NumVertices()
	buf := make([]int32, g.MaxDegree())
	for v := int32(0); v < n; v++ {
		_, wgt := g.WRow(v, buf)
		for _, w := range wgt {
			if w > maxW {
				maxW = w
			}
		}
	}
	avgDeg := g.NumEdges() / int64(n)
	if avgDeg < 1 {
		avgDeg = 1
	}
	d := int64(maxW) / avgDeg
	var shift uint32
	for d >= 2 {
		d >>= 1
		shift++
	}
	return shift
}

// runDelta is the delta-stepping library expression over the batched
// queue.
func (s *ssspInstance[A]) runDelta(nWorkers int) {
	scratch := s.scratchFor(nWorkers)
	atomic.StoreUint32(&s.dist[s.src], 0)
	shift := s.deltaShift
	seeds := []mq.Item{{Pri: 0, Val: uint64(s.src)}}
	s.mqStats = mq.ProcessBatch(nWorkers, seeds, mq.Options{}, func(wi int, it mq.Item, push mq.Pusher) {
		v := int32(it.Val)
		// Leave the bucket BEFORE reading the distance: Go atomics are
		// sequentially consistent, so a relaxer that observed our old
		// bucket marker (and therefore skipped its re-queue) must have
		// written its improved distance before we read it here — no
		// improvement is ever both unqueued and unseen.
		atomic.StoreUint32(&s.qb[v], distInf)
		d := atomic.LoadUint32(&s.dist[v])
		if uint64(d>>shift) < it.Pri {
			return // superseded: v moved to an earlier bucket
		}
		adj, wgt := s.g.WRow(v, scratch[wi])
		for i, u := range adj {
			nd := d + wgt[i]
			if core.WriteMinU32(&s.dist[u], nd) {
				// Re-queue only when u is not already queued at this
				// bucket or earlier: one queue entry covers all further
				// same-bucket improvements, the dedup that makes bucket
				// priorities cheaper than exact distances.
				nb := nd >> shift
				if core.WriteMinU32(&s.qb[u], nb) {
					push.Push(mq.Item{Pri: uint64(nb), Val: uint64(u)})
				}
			}
		}
	})
}

// run is the relaxed-Dijkstra direct expression: exact distances as
// priorities, one vertex per queue operation.
func (s *ssspInstance[A]) run(nWorkers int) {
	scratch := s.scratchFor(nWorkers)
	atomic.StoreUint32(&s.dist[s.src], 0)
	seeds := []mq.Item{{Pri: 0, Val: uint64(s.src)}}
	s.mqStats = mq.ProcessOpt(nWorkers, seeds, mq.Options{}, func(wi int, it mq.Item, push mq.Pusher) {
		v := int32(it.Val)
		d := uint32(it.Pri)
		if atomic.LoadUint32(&s.dist[v]) < d {
			return // superseded by a shorter path
		}
		adj, wgt := s.g.WRow(v, scratch[wi])
		for i, u := range adj {
			nd := d + wgt[i]
			if core.WriteMinU32(&s.dist[u], nd) {
				push.Push(mq.Item{Pri: uint64(nd), Val: uint64(u)})
			}
		}
	})
}

// setTranspose installs the weighted in-edge view runPull gathers
// from. For the undirected standard inputs the transpose carries the
// same edges as the graph, but pull mode streams it — a compressed
// transpose (graph.CWGraph, pool-sharing with the forward graph) makes
// the whole pull round run over compressed rows.
func (s *ssspInstance[A]) setTranspose(tg A) {
	s.tg = tg
	s.hasTG = true
	s.tmaxDeg = int(tg.MaxDegree())
}

// runPull is the synchronous pull expression: Bellman-Ford rounds over
// the in-edge view. Each round, every vertex decodes its transpose row
// and gathers min(dist[u] + w(u,v)) over its in-neighbors; rounds
// repeat until no distance improves. Writes are per-vertex — each task
// stores only its own dist[v] — while the gathered neighbor distances
// are racy atomic loads that may see same-round improvements early;
// like the push relaxation, a stale read only delays convergence by a
// round (the distance array is monotone non-increasing and bounded by
// the true distances), never corrupts it. Rows decode into per-chunk
// arena scratch, Mark/Release bracketed like the BFS expansion, so the
// steady state allocates nothing.
func (s *ssspInstance[A]) runPull(w *core.Worker) {
	if !s.hasTG {
		panic("bench: sssp runPull needs setTranspose first")
	}
	atomic.StoreUint32(&s.dist[s.src], 0)
	n := int(s.tg.NumVertices())
	for {
		var changed atomic.Int64
		relax := func(ww *core.Worker, lo, hi int) {
			a := arena.Of(ww)
			am := a.Mark()
			buf := arena.AllocUninit[int32](a, s.tmaxDeg)
			var improved int64
			for v := lo; v < hi; v++ {
				d0 := atomic.LoadUint32(&s.dist[v])
				best := d0
				adj, wgt := s.tg.WRow(int32(v), buf)
				for i, u := range adj {
					du := atomic.LoadUint32(&s.dist[u])
					if du == distInf {
						continue
					}
					if nd := du + wgt[i]; nd < best {
						best = nd
					}
				}
				if best < d0 {
					atomic.StoreUint32(&s.dist[v], best)
					improved++
				}
			}
			a.Release(am)
			if improved > 0 {
				changed.Add(improved)
			}
		}
		if w == nil {
			relax(nil, 0, n)
		} else {
			w.For(0, n, 0, relax)
		}
		if changed.Load() == 0 {
			return
		}
	}
}

func (s *ssspInstance[A]) runLibrary(w *core.Worker) {
	n := 1
	if w != nil {
		n = w.Pool().Workers()
	}
	s.runDelta(n)
}

func (s *ssspInstance[A]) runDirect(nThreads int) { s.run(nThreads) }

func (s *ssspInstance[A]) verify() error {
	for v := range s.dist {
		if s.dist[v] != s.want[v] {
			return fmt.Errorf("sssp: dist[%d] = %d, want %d", v, s.dist[v], s.want[v])
		}
	}
	return nil
}

// dijkstraOracle computes exact distances with a sequential binary-heap
// Dijkstra.
func dijkstraOracle[A graph.WAdjacency](g A, src int32) []uint32 {
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = distInf
	}
	buf := make([]int32, g.MaxDegree())
	dist[src] = 0
	type hi struct {
		d uint32
		v int32
	}
	heap := []hi{{0, src}}
	push := func(x hi) {
		heap = append(heap, x)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() hi {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && heap[l].d < heap[m].d {
				m = l
			}
			if r < len(heap) && heap[r].d < heap[m].d {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}
	for len(heap) > 0 {
		top := pop()
		if top.d > dist[top.v] {
			continue
		}
		adj, wgt := g.WRow(top.v, buf)
		for i, u := range adj {
			nd := top.d + wgt[i]
			if nd < dist[u] {
				dist[u] = nd
				push(hi{nd, u})
			}
		}
	}
	return dist
}

// GraphQueueTelemetry runs sssp once in each queue discipline at the
// given scale and thread count and returns the MultiQueue operation
// counters: single-item relaxed Dijkstra vs batched delta-stepping. The
// locks-per-popped-item drop is the headline of `rpbreport -what
// graph`.
func GraphQueueTelemetry(scale Scale, threads int) (single, batched mq.Stats, err error) {
	g := graph.LoadUndirectedWeighted(nil, graph.InputRMAT, scale, 0x555)
	s := newSSSP(g, 0)
	s.want = dijkstraOracle(g, 0)
	s.run(threads)
	if err = s.verify(); err != nil {
		return
	}
	single = s.mqStats
	s.reset()
	s.runDelta(threads)
	if err = s.verify(); err != nil {
		return
	}
	batched = s.mqStats
	return
}

func init() {
	core.DeclareSite("sssp", "task: own distance read + bucket staleness", core.AW)
	core.DeclareSite("sssp", "task: neighbor/weight read", core.AW)
	core.DeclareSite("sssp", "relax: neighbor distance WriteMin", core.AW)
	core.DeclareSite("sssp", "push: batched bucket re-queue", core.AW)
	core.DeclareSite("sssp", "pull: in-neighbor distance gather", core.AW)
	core.DeclareSite("sssp", "pull: own distance store + changed counter", core.AW)

	Register(Spec{
		Name:   "sssp",
		Long:   "single-source shortest path",
		Inputs: []string{graph.InputLink, graph.InputRMAT, graph.InputRoad},
		Make: func(input string, scale Scale) *Instance {
			g := graph.LoadUndirectedWeighted(nil, input, scale, 0x555)
			s := newSSSP(g, 0)
			s.want = dijkstraOracle(g, 0)
			return &Instance{
				RunLibrary: s.runLibrary,
				RunDirect:  s.runDirect,
				Verify:     s.verify,
				Reset:      s.reset,
			}
		},
	})
}
