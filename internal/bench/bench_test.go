package bench

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestAllEighteenRegistered checks the suite matches Table 1's roster
// plus the graph-analytics extension (cc, pr, tc, kcore).
func TestAllEighteenRegistered(t *testing.T) {
	want := []string{"bfs", "bw", "cc", "dedup", "dr", "hist", "isort",
		"kcore", "lrs", "mis", "mm", "msf", "pr", "sa", "sf", "sort",
		"sssp", "tc"}
	got := All()
	if len(got) != len(want) {
		names := make([]string, len(got))
		for i, s := range got {
			names[i] = s.Name
		}
		t.Fatalf("registered %d benchmarks %v, want %d", len(got), names, len(want))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Fatalf("benchmark %d = %q, want %q", i, s.Name, want[i])
		}
		if s.Long == "" || len(s.Inputs) == 0 || s.Make == nil {
			t.Fatalf("benchmark %q incompletely registered: %+v", s.Name, s)
		}
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("sort"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("Find should fail for unknown benchmark")
	}
}

// TestEveryBenchmarkEveryVariantVerifies is the suite-wide smoke +
// correctness test: every benchmark, on every input, runs and verifies
// under (a) the library expression sequentially, (b) the library
// expression on a small pool, and (c) the direct baseline with 3
// threads.
func TestEveryBenchmarkEveryVariantVerifies(t *testing.T) {
	core.SetMode(core.ModeUnchecked)
	for _, spec := range All() {
		for _, input := range spec.Inputs {
			inst := spec.Make(input, ScaleTest)
			t.Run(spec.Name+"-"+input+"-seq", func(t *testing.T) {
				if _, err := Measure(inst, VariantLibrary, 0, 1); err != nil {
					t.Fatal(err)
				}
			})
			t.Run(spec.Name+"-"+input+"-pool", func(t *testing.T) {
				if _, err := Measure(inst, VariantLibrary, 3, 1); err != nil {
					t.Fatal(err)
				}
			})
			t.Run(spec.Name+"-"+input+"-direct", func(t *testing.T) {
				if _, err := Measure(inst, VariantDirect, 3, 1); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestModesProduceIdenticalResults runs every benchmark under all three
// expression modes; verification ties them to one oracle.
func TestModesProduceIdenticalResults(t *testing.T) {
	defer core.SetMode(core.ModeUnchecked)
	for _, spec := range All() {
		input := spec.Inputs[0]
		inst := spec.Make(input, ScaleTest)
		for _, mode := range []core.Mode{core.ModeUnchecked, core.ModeChecked, core.ModeSynchronized} {
			t.Run(spec.Name+"-"+mode.String(), func(t *testing.T) {
				core.SetMode(mode)
				if _, err := Measure(inst, VariantLibrary, 2, 1); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestMeasureRejectsUnknownVariant(t *testing.T) {
	spec, _ := Find("hist")
	inst := spec.Make("exponential", ScaleTest)
	if _, err := Measure(inst, Variant("bogus"), 1, 1); err == nil {
		t.Fatal("expected error for unknown variant")
	}
}

func TestMeasureRepsAveraged(t *testing.T) {
	spec, _ := Find("hist")
	inst := spec.Make("exponential", ScaleTest)
	secs, err := Measure(inst, VariantLibrary, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatalf("mean seconds = %v", secs)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("GeoMean(1,4) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{3}); g < 2.999 || g > 3.001 {
		t.Fatalf("GeoMean(3) = %v", g)
	}
}

func TestResultKey(t *testing.T) {
	r := Result{Bench: "mis", Input: "road"}
	if r.Key() != "mis-road" {
		t.Fatalf("Key = %q", r.Key())
	}
	r.Input = ""
	if r.Key() != "mis" {
		t.Fatalf("Key = %q", r.Key())
	}
}

func TestScaleSizes(t *testing.T) {
	if TextSize(ScaleTest) >= TextSize(ScaleSmall) || TextSize(ScaleSmall) >= TextSize(ScaleDefault) {
		t.Fatal("text sizes not increasing")
	}
	if SeqSize(ScaleTest) >= SeqSize(ScaleDefault) {
		t.Fatal("seq sizes not increasing")
	}
	if PointCount(ScaleTest) >= PointCount(ScaleDefault) {
		t.Fatal("point counts not increasing")
	}
}

// TestTable1PatternRows checks the declared site census matches the
// paper's Table 1 row for every benchmark.
func TestTable1PatternRows(t *testing.T) {
	want := map[string][]core.Pattern{
		"bw":    {core.RO, core.Stride, core.Block, core.DC, core.SngInd, core.AW},
		"lrs":   {core.RO, core.Stride, core.Block, core.DC, core.SngInd, core.AW},
		"sa":    {core.RO, core.Stride, core.Block, core.DC, core.SngInd, core.AW},
		"dr":    {core.RO, core.Stride, core.Block, core.SngInd, core.RngInd, core.AW},
		"mis":   {core.RO, core.Stride, core.Block, core.DC, core.AW},
		"mm":    {core.RO, core.Stride, core.Block, core.DC, core.AW},
		"sf":    {core.RO, core.Stride, core.Block, core.DC, core.AW},
		"msf":   {core.RO, core.Stride, core.Block, core.DC, core.SngInd, core.AW},
		"sort":  {core.RO, core.Stride, core.Block, core.DC, core.RngInd},
		"dedup": {core.RO, core.Stride, core.Block, core.AW},
		"hist":  {core.RO, core.Stride, core.Block, core.SngInd},
		"isort": {core.RO, core.Stride, core.Block, core.SngInd},
		// bfs's library expression is the direction-optimizing hybrid:
		// the AW relaxations of Table 1 plus the regular frontier
		// machinery (bitmap scatter/pack, word-wise bottom-up scan).
		"bfs":  {core.RO, core.Stride, core.Block, core.AW},
		"sssp": {core.AW},
		// Analytics kernels over the Adjacency seam: each mixes its
		// regular phases with one scared AW relaxation.
		"cc":    {core.Stride, core.AW},
		"pr":    {core.RO, core.Stride, core.Block, core.AW},
		"tc":    {core.RO, core.Block, core.AW},
		"kcore": {core.RO, core.Block, core.AW},
	}
	c := core.TakeCensus()
	for name, pats := range want {
		got := c.PerBench[name]
		if got == nil {
			t.Errorf("%s: no sites declared", name)
			continue
		}
		wantSet := map[core.Pattern]bool{}
		for _, p := range pats {
			wantSet[p] = true
		}
		for _, p := range core.Patterns {
			if wantSet[p] != got[p] {
				t.Errorf("%s: pattern %v declared=%v want=%v", name, p, got[p], wantSet[p])
			}
		}
	}
}

func TestMeasureSurfacesVerificationFailure(t *testing.T) {
	inst := &Instance{
		RunLibrary: func(*core.Worker) {},
		RunDirect:  func(int) {},
		Verify:     func() error { return fmt.Errorf("planted failure") },
	}
	if _, err := Measure(inst, VariantLibrary, 0, 1); err == nil {
		t.Fatal("verification failure swallowed")
	} else if !strings.Contains(err.Error(), "planted failure") {
		t.Fatalf("error lost cause: %v", err)
	}
}

func TestMeasureResetCalledPerRep(t *testing.T) {
	resets := 0
	inst := &Instance{
		RunLibrary: func(*core.Worker) {},
		Reset:      func() { resets++ },
	}
	if _, err := Measure(inst, VariantLibrary, 0, 3); err != nil {
		t.Fatal(err)
	}
	if resets != 3 {
		t.Fatalf("Reset called %d times, want 3", resets)
	}
}
