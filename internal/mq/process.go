package mq

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arena"
)

// Pusher hands tasks back to the scheduler from inside a running task.
type Pusher interface {
	Push(it Item)
}

// workerCtx routes a worker's pushes through its sticky handle while
// keeping the in-flight accounting exact.
type workerCtx struct {
	p        *Popper
	inFlight *atomic.Int64
}

func (c *workerCtx) Push(it Item) {
	c.inFlight.Add(1)
	c.p.Push(it)
}

// Process drives the MultiQueue with nWorkers long-running worker
// goroutines, the execution model of the paper's bfs and sssp: each
// worker repeatedly pops a task and executes it (potentially pushing
// new tasks) until the queue is globally empty.
//
// Termination uses an in-flight counter: it counts tasks that have been
// pushed but whose execution has not finished. Workers that observe an
// empty queue spin (yielding) until either work appears or the counter
// reaches zero, at which point no task exists and none can be created —
// the loop exits everywhere.
func Process(nWorkers int, seeds []Item, task func(workerID int, it Item, push Pusher)) {
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	ProcessOpt(nWorkers, seeds, Options{}, task)
}

// processWith runs the worker loops over an existing queue and returns
// its operation counters.
func processWith(m *MultiQueue, nWorkers int, seeds []Item, stickiness int, task func(workerID int, it Item, push Pusher)) Stats {
	var inFlight atomic.Int64
	for _, s := range seeds {
		inFlight.Add(1)
		m.Push(s)
	}
	var wg sync.WaitGroup
	wg.Add(nWorkers)
	for wid := 0; wid < nWorkers; wid++ {
		go func(wid int) {
			defer wg.Done()
			pop := m.NewPopper(stickiness)
			defer pop.FlushStats()
			ctx := &workerCtx{p: pop, inFlight: &inFlight}
			idle := 0
			for {
				it, ok := pop.Pop()
				if !ok {
					if inFlight.Load() == 0 {
						return
					}
					idle++
					if idle > 16 {
						runtime.Gosched()
					}
					continue
				}
				idle = 0
				task(wid, it, ctx)
				inFlight.Add(-1)
			}
		}(wid)
	}
	wg.Wait()
	return m.Stats()
}

// batchCtx is the Pusher handed to ProcessBatch tasks: pushes land in a
// per-worker staging buffer (arena-backed, fixed capacity = BatchSize)
// and reach the shared queue in batches — one lock acquisition per
// flush instead of one per task.
//
// In-flight accounting: staged items are invisible to the global
// counter until flush, which is safe because the worker only decrements
// the counter for the popped batch *after* flushing everything those
// tasks staged. A worker observing inFlight==0 therefore proves no task
// is running, queued, or staged anywhere.
type batchCtx struct {
	p        *Popper
	inFlight *atomic.Int64
	buf      []Item // staged pushes; cap == max, len(buf) < max between calls
	max      int
}

func (c *batchCtx) Push(it Item) {
	c.buf = append(c.buf, it)
	if len(c.buf) >= c.max {
		c.flush()
	}
}

func (c *batchCtx) flush() {
	if len(c.buf) == 0 {
		return
	}
	c.inFlight.Add(int64(len(c.buf)))
	c.p.PushBatch(c.buf)
	c.buf = c.buf[:0]
}

// ProcessBatch is the batched form of ProcessOpt: each worker pops up
// to opt.BatchSize items per lock acquisition, runs them back to back,
// and stages their pushes in an arena-backed buffer flushed in batches.
// The relaxed-priority contract weakens accordingly — a popped batch is
// processed in order, but its tail may rank behind items surfacing
// elsewhere meanwhile — which is exactly the relaxation the bfs/sssp
// kernels already tolerate (docs/GRAPH.md). Returns the queue's
// operation counters.
func ProcessBatch(nWorkers int, seeds []Item, opt Options, task func(workerID int, it Item, push Pusher)) Stats {
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	opt.fill()
	m := New(opt.QueueFactor * nWorkers)
	var inFlight atomic.Int64
	if len(seeds) > 0 {
		inFlight.Add(int64(len(seeds)))
		m.PushBatch(seeds)
	}
	var wg sync.WaitGroup
	wg.Add(nWorkers)
	for wid := 0; wid < nWorkers; wid++ {
		go func(wid int) {
			defer wg.Done()
			pop := m.NewPopper(opt.Stickiness)
			defer pop.FlushStats()
			a := arena.Standalone()
			batch := arena.AllocUninit[Item](a, opt.BatchSize)
			// The stage buffer reaches the user's task callback through
			// ctx, which the lifetimes pass cannot see through. Safe
			// because ctx.Push only appends into stage's own capacity
			// and ctx.flush republishes items by value before the next
			// PopBatch reuses the memory; the standalone arena lives as
			// long as this worker goroutine.
			//lint:scared stage transits through ctx into the dynamic task callback; items leave by value in flush, memory never outlives the worker
			stage := arena.AllocUninit[Item](a, opt.BatchSize)
			ctx := &batchCtx{p: pop, inFlight: &inFlight, buf: stage[:0], max: opt.BatchSize}
			idle := 0
			for {
				n := pop.PopBatch(batch)
				if n == 0 {
					if inFlight.Load() == 0 {
						return
					}
					idle++
					if idle > 16 {
						runtime.Gosched()
					}
					continue
				}
				idle = 0
				for i := 0; i < n; i++ {
					task(wid, batch[i], ctx)
				}
				ctx.flush()
				inFlight.Add(-int64(n))
			}
		}(wid)
	}
	wg.Wait()
	return m.Stats()
}
