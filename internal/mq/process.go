package mq

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pusher hands tasks back to the scheduler from inside a running task.
type Pusher interface {
	Push(it Item)
}

// workerCtx routes a worker's pushes through its sticky handle while
// keeping the in-flight accounting exact.
type workerCtx struct {
	p        *Popper
	inFlight *atomic.Int64
}

func (c *workerCtx) Push(it Item) {
	c.inFlight.Add(1)
	c.p.Push(it)
}

// Process drives the MultiQueue with nWorkers long-running worker
// goroutines, the execution model of the paper's bfs and sssp: each
// worker repeatedly pops a task and executes it (potentially pushing
// new tasks) until the queue is globally empty.
//
// Termination uses an in-flight counter: it counts tasks that have been
// pushed but whose execution has not finished. Workers that observe an
// empty queue spin (yielding) until either work appears or the counter
// reaches zero, at which point no task exists and none can be created —
// the loop exits everywhere.
func Process(nWorkers int, seeds []Item, task func(workerID int, it Item, push Pusher)) {
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	ProcessOpt(nWorkers, seeds, Options{}, task)
}

// processWith runs the worker loops over an existing queue.
func processWith(m *MultiQueue, nWorkers int, seeds []Item, stickiness int, task func(workerID int, it Item, push Pusher)) {
	var inFlight atomic.Int64
	for _, s := range seeds {
		inFlight.Add(1)
		m.Push(s)
	}
	var wg sync.WaitGroup
	wg.Add(nWorkers)
	for wid := 0; wid < nWorkers; wid++ {
		go func(wid int) {
			defer wg.Done()
			pop := m.NewPopper(stickiness)
			ctx := &workerCtx{p: pop, inFlight: &inFlight}
			idle := 0
			for {
				it, ok := pop.Pop()
				if !ok {
					if inFlight.Load() == 0 {
						return
					}
					idle++
					if idle > 16 {
						runtime.Gosched()
					}
					continue
				}
				idle = 0
				task(wid, it, ctx)
				inFlight.Add(-1)
			}
		}(wid)
	}
	wg.Wait()
}
