package mq

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLocalQueueHeapOrder(t *testing.T) {
	var q localQueue
	for _, p := range []uint64{5, 1, 9, 3, 7} {
		q.push(Item{Pri: p, Val: p * 10})
	}
	want := []uint64{1, 3, 5, 7, 9}
	for _, w := range want {
		it, ok := q.pop()
		if !ok || it.Pri != w || it.Val != w*10 {
			t.Fatalf("pop = %+v ok=%v, want pri %d", it, ok, w)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	if q.top.Load() != emptyTop {
		t.Fatal("top cache not reset on empty")
	}
}

func TestLocalQueuePropertySortedDrain(t *testing.T) {
	f := func(pris []uint32) bool {
		var q localQueue
		for _, p := range pris {
			q.push(Item{Pri: uint64(p)})
		}
		want := append([]uint32(nil), pris...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, w := range want {
			it, ok := q.pop()
			if !ok || it.Pri != uint64(w) {
				return false
			}
		}
		_, ok := q.pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiQueueLosesNothing(t *testing.T) {
	m := New(8)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		m.Push(Item{Pri: i, Val: i})
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		it, ok := m.Pop()
		if !ok {
			t.Fatalf("pop %d failed with items remaining", i)
		}
		if seen[it.Val] {
			t.Fatalf("item %d popped twice", it.Val)
		}
		seen[it.Val] = true
	}
	if _, ok := m.Pop(); ok {
		t.Fatal("pop on drained queue succeeded")
	}
}

func TestMultiQueueRelaxedButRoughlyOrdered(t *testing.T) {
	// The MQ gives probabilistic rank guarantees: pops should correlate
	// strongly with priority order even though exact order is relaxed.
	m := New(4)
	const n = 20000
	for i := uint64(0); i < n; i++ {
		m.Push(Item{Pri: i, Val: i})
	}
	var inversions, total int
	prev := uint64(0)
	for i := 0; i < n; i++ {
		it, _ := m.Pop()
		if i > 0 {
			total++
			if it.Pri < prev {
				inversions++
			}
		}
		prev = it.Pri
	}
	if frac := float64(inversions) / float64(total); frac > 0.6 {
		t.Fatalf("inversion fraction %.2f too high for a relaxed PQ", frac)
	}
}

func TestMultiQueueConcurrent(t *testing.T) {
	m := New(8)
	const perG, gs = 5000, 4
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Push(Item{Pri: uint64(i), Val: uint64(g*perG + i)})
			}
		}(g)
	}
	wg.Wait()
	var popped atomic.Int64
	seen := make([]atomic.Bool, perG*gs)
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				it, ok := m.Pop()
				if !ok {
					return
				}
				if seen[it.Val].Swap(true) {
					t.Errorf("item %d popped twice", it.Val)
					return
				}
				popped.Add(1)
			}
		}()
	}
	wg.Wait()
	if popped.Load() != perG*gs {
		t.Fatalf("popped %d of %d", popped.Load(), perG*gs)
	}
}

func TestNewClampsQueues(t *testing.T) {
	if New(0).NQueues() != 2 || New(-5).NQueues() != 2 {
		t.Fatal("queue count not clamped")
	}
	if New(7).NQueues() != 7 {
		t.Fatal("queue count not respected")
	}
}

func TestProcessRunsAllSeeds(t *testing.T) {
	var count atomic.Int64
	seeds := make([]Item, 100)
	for i := range seeds {
		seeds[i] = Item{Pri: uint64(i), Val: uint64(i)}
	}
	Process(4, seeds, func(_ int, it Item, _ Pusher) {
		count.Add(1)
	})
	if count.Load() != 100 {
		t.Fatalf("processed %d, want 100", count.Load())
	}
}

func TestProcessDynamicSpawning(t *testing.T) {
	// Each task with Val v > 0 spawns two children with v-1; counting
	// total executions checks both scheduling and termination detection.
	var count atomic.Int64
	Process(4, []Item{{Pri: 0, Val: 10}}, func(_ int, it Item, push Pusher) {
		count.Add(1)
		if it.Val > 0 {
			push.Push(Item{Pri: it.Pri + 1, Val: it.Val - 1})
			push.Push(Item{Pri: it.Pri + 1, Val: it.Val - 1})
		}
	})
	// Executions of a full binary tree of depth 10: 2^11 - 1.
	if count.Load() != 2047 {
		t.Fatalf("executed %d tasks, want 2047", count.Load())
	}
}

func TestProcessNoSeeds(t *testing.T) {
	ran := false
	Process(2, nil, func(_ int, _ Item, _ Pusher) { ran = true })
	if ran {
		t.Fatal("task ran with no seeds")
	}
}

func TestProcessSingleWorkerPriorityTrend(t *testing.T) {
	// With one worker, pops should come out in near-priority order.
	var order []uint64
	seeds := []Item{}
	for i := 100; i > 0; i-- {
		seeds = append(seeds, Item{Pri: uint64(i), Val: uint64(i)})
	}
	Process(1, seeds, func(_ int, it Item, _ Pusher) {
		order = append(order, it.Pri)
	})
	if len(order) != 100 {
		t.Fatalf("ran %d tasks", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions > 50 {
		t.Fatalf("too many inversions for 1 worker: %d", inversions)
	}
}

func BenchmarkMultiQueuePushPop(b *testing.B) {
	m := New(8)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			m.Push(Item{Pri: i, Val: i})
			m.Pop()
			i++
		}
	})
}
