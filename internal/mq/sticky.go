package mq

// Task batching via stickiness, the key optimization of Postnikova,
// Koval, Nadiradze & Alistarh (PPoPP 2022) — the paper's reference for
// the MultiQueue being a state-of-the-art priority scheduler: a worker
// sticks to its chosen queue pair for a number of consecutive
// operations, trading a little rank quality for much better cache
// locality and lower contention. Batch transfers compose with
// stickiness: a batch counts as one sticky operation, so a sticky
// batched worker revisits the same warm queue for its next batch.

// Popper is a per-worker handle that amortizes queue selection across
// sticky batches and accumulates operation counters locally (flushed to
// the queue's shared Stats by FlushStats, so the hot path never touches
// shared counters). A Popper must not be shared between goroutines.
type Popper struct {
	m      *MultiQueue
	stick  int
	leftP  int // pops remaining on the stuck pair
	leftU  int // pushes remaining on the stuck queue
	qi, qj uint64
	qpush  uint64
	st     Stats // local counters; see FlushStats
}

// NewPopper creates a handle with the given stickiness (1 = the
// classic MultiQueue behavior; the PPoPP'22 paper uses single-digit
// values).
func (m *MultiQueue) NewPopper(stickiness int) *Popper {
	if stickiness < 1 {
		stickiness = 1
	}
	return &Popper{m: m, stick: stickiness}
}

// FlushStats folds the handle's local operation counters into the
// MultiQueue's shared Stats and zeroes them. Drivers call it once per
// worker at loop exit.
func (p *Popper) FlushStats() {
	p.m.stats.add(p.st)
	p.st = Stats{}
}

func (p *Popper) repick() {
	n := uint64(len(p.m.queues))
	p.qi = p.m.rand() % n
	p.qj = p.m.rand() % n
	if p.qi == p.qj {
		p.qj = (p.qj + 1) % n
	}
	p.leftP = p.stick
}

// Pop removes the better-topped of the worker's stuck queue pair,
// re-picking the pair every `stickiness` pops or when the pair runs
// empty.
func (p *Popper) Pop() (Item, bool) {
	for attempt := 0; attempt < 3; attempt++ {
		if p.leftP <= 0 {
			p.repick()
		}
		p.leftP--
		qi, qj := &p.m.queues[p.qi], &p.m.queues[p.qj]
		ti, tj := qi.top.Load(), qj.top.Load()
		if ti == emptyTop && tj == emptyTop {
			p.leftP = 0 // pair exhausted: force a re-pick
			continue
		}
		win := qi
		if tj < ti {
			win = qj
		}
		win.mu.Lock()
		it, ok := win.pop()
		win.mu.Unlock()
		p.st.LockAcquires++
		if ok {
			p.st.PopOps++
			p.st.PoppedItems++
			p.m.size.Add(-1)
			return it, true
		}
		p.st.EmptyPops++
		p.leftP = 0
	}
	// Fall back to the non-sticky path (includes the full sweep).
	it, ok := p.m.popInto(&p.st, nil)
	return it, ok
}

// PopBatch removes up to len(dst) items from the better-topped of the
// stuck pair under one lock acquisition, returning the count (the batch
// is in priority order). A batch counts as a single sticky operation.
func (p *Popper) PopBatch(dst []Item) int {
	if len(dst) == 0 {
		return 0
	}
	for attempt := 0; attempt < 3; attempt++ {
		if p.leftP <= 0 {
			p.repick()
		}
		p.leftP--
		qi, qj := &p.m.queues[p.qi], &p.m.queues[p.qj]
		ti, tj := qi.top.Load(), qj.top.Load()
		if ti == emptyTop && tj == emptyTop {
			p.leftP = 0
			continue
		}
		win := qi
		if tj < ti {
			win = qj
		}
		win.mu.Lock()
		got := win.popUpTo(dst)
		win.mu.Unlock()
		p.st.LockAcquires++
		if got > 0 {
			p.st.PopOps++
			p.st.PoppedItems += uint64(got)
			p.m.size.Add(-int64(got))
			return got
		}
		p.st.EmptyPops++
		p.leftP = 0
	}
	_, got := p.m.popBatchInto(&p.st, dst)
	return got
}

// Push inserts through the sticky handle: the target queue is re-picked
// every `stickiness` pushes.
func (p *Popper) Push(it Item) {
	if p.leftU <= 0 {
		p.qpush = p.m.rand() % uint64(len(p.m.queues))
		p.leftU = p.stick
	}
	p.leftU--
	q := &p.m.queues[p.qpush]
	q.mu.Lock()
	q.push(it)
	q.mu.Unlock()
	p.st.LockAcquires++
	p.st.PushOps++
	p.st.PushedItems++
	p.m.size.Add(1)
}

// PushBatch inserts all items into the sticky target queue under one
// lock acquisition with at most one cached-top update. A batch counts
// as a single sticky operation.
func (p *Popper) PushBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	if p.leftU <= 0 {
		p.qpush = p.m.rand() % uint64(len(p.m.queues))
		p.leftU = p.stick
	}
	p.leftU--
	q := &p.m.queues[p.qpush]
	q.mu.Lock()
	q.pushAll(items)
	q.mu.Unlock()
	p.st.LockAcquires++
	p.st.PushOps++
	p.st.PushedItems += uint64(len(items))
	p.m.size.Add(int64(len(items)))
}

// Options configures ProcessOpt and ProcessBatch.
type Options struct {
	// QueueFactor is the number of internal queues per worker (the
	// literature's c); default 4.
	QueueFactor int
	// Stickiness batches queue selection; default 1 (classic).
	Stickiness int
	// BatchSize bounds the items moved per locked queue operation in
	// ProcessBatch (pop batches and the per-worker push staging buffer);
	// default 64. ProcessOpt ignores it.
	BatchSize int
}

func (o *Options) fill() {
	if o.QueueFactor <= 0 {
		o.QueueFactor = 4
	}
	if o.Stickiness < 1 {
		o.Stickiness = 1
	}
	if o.BatchSize < 1 {
		o.BatchSize = 64
	}
}

// ProcessOpt is Process with scheduler options: each worker drives the
// queue through its own sticky Popper, one item per queue operation. It
// returns the queue's operation counters for telemetry.
func ProcessOpt(nWorkers int, seeds []Item, opt Options, task func(workerID int, it Item, push Pusher)) Stats {
	if nWorkers <= 0 {
		nWorkers = 1
	}
	opt.fill()
	m := New(opt.QueueFactor * nWorkers)
	return processWith(m, nWorkers, seeds, opt.Stickiness, task)
}
