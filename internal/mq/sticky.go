package mq

// Task batching via stickiness, the key optimization of Postnikova,
// Koval, Nadiradze & Alistarh (PPoPP 2022) — the paper's reference for
// the MultiQueue being a state-of-the-art priority scheduler: a worker
// sticks to its chosen queue pair for a number of consecutive
// operations, trading a little rank quality for much better cache
// locality and lower contention.

// Popper is a per-worker handle that amortizes queue selection across
// sticky batches. A Popper must not be shared between goroutines.
type Popper struct {
	m      *MultiQueue
	stick  int
	leftP  int // pops remaining on the stuck pair
	leftU  int // pushes remaining on the stuck queue
	qi, qj uint64
	qpush  uint64
}

// NewPopper creates a handle with the given stickiness (1 = the
// classic MultiQueue behavior; the PPoPP'22 paper uses single-digit
// values).
func (m *MultiQueue) NewPopper(stickiness int) *Popper {
	if stickiness < 1 {
		stickiness = 1
	}
	return &Popper{m: m, stick: stickiness}
}

func (p *Popper) repick() {
	n := uint64(len(p.m.queues))
	p.qi = p.m.rand() % n
	p.qj = p.m.rand() % n
	if p.qi == p.qj {
		p.qj = (p.qj + 1) % n
	}
	p.leftP = p.stick
}

// Pop removes the better-topped of the worker's stuck queue pair,
// re-picking the pair every `stickiness` pops or when the pair runs
// empty.
func (p *Popper) Pop() (Item, bool) {
	for attempt := 0; attempt < 3; attempt++ {
		if p.leftP <= 0 {
			p.repick()
		}
		p.leftP--
		qi, qj := &p.m.queues[p.qi], &p.m.queues[p.qj]
		ti, tj := qi.top.Load(), qj.top.Load()
		if ti == emptyTop && tj == emptyTop {
			p.leftP = 0 // pair exhausted: force a re-pick
			continue
		}
		win := qi
		if tj < ti {
			win = qj
		}
		win.mu.Lock()
		it, ok := win.pop()
		win.mu.Unlock()
		if ok {
			p.m.size.Add(-1)
			return it, true
		}
		p.leftP = 0
	}
	// Fall back to the non-sticky path (includes the full sweep).
	return p.m.Pop()
}

// Push inserts through the sticky handle: the target queue is re-picked
// every `stickiness` pushes.
func (p *Popper) Push(it Item) {
	if p.leftU <= 0 {
		p.qpush = p.m.rand() % uint64(len(p.m.queues))
		p.leftU = p.stick
	}
	p.leftU--
	q := &p.m.queues[p.qpush]
	q.mu.Lock()
	q.push(it)
	q.mu.Unlock()
	p.m.size.Add(1)
}

// Options configures ProcessOpt.
type Options struct {
	// QueueFactor is the number of internal queues per worker (the
	// literature's c); default 4.
	QueueFactor int
	// Stickiness batches queue selection; default 1 (classic).
	Stickiness int
}

// ProcessOpt is Process with scheduler options: each worker drives the
// queue through its own sticky Popper.
func ProcessOpt(nWorkers int, seeds []Item, opt Options, task func(workerID int, it Item, push Pusher)) {
	if nWorkers <= 0 {
		nWorkers = 1
	}
	if opt.QueueFactor <= 0 {
		opt.QueueFactor = 4
	}
	if opt.Stickiness < 1 {
		opt.Stickiness = 1
	}
	m := New(opt.QueueFactor * nWorkers)
	processWith(m, nWorkers, seeds, opt.Stickiness, task)
}
