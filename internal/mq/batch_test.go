package mq

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Tests for the batched operations (PushBatch / PopBatch /
// ProcessBatch). The batching contract relaxes priority order further
// than the single-item MQ — a batch pop drains one heap's prefix
// without consulting the others — so these tests check conservation
// (nothing lost, nothing duplicated) and termination, not rank.

func TestPushBatchPopBatchRoundTrip(t *testing.T) {
	m := New(8)
	const n, k = 10000, 64
	items := make([]Item, 0, k)
	for i := uint64(0); i < n; i++ {
		items = append(items, Item{Pri: i, Val: i})
		if len(items) == k {
			m.PushBatch(items)
			items = items[:0]
		}
	}
	m.PushBatch(items)
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	seen := make([]bool, n)
	dst := make([]Item, k)
	got := 0
	for {
		c := m.PopBatch(dst)
		if c == 0 {
			break
		}
		for _, it := range dst[:c] {
			if seen[it.Val] {
				t.Fatalf("item %d popped twice", it.Val)
			}
			seen[it.Val] = true
		}
		got += c
	}
	if got != n {
		t.Fatalf("popped %d of %d", got, n)
	}
}

func TestPopBatchRespectsDestinationLength(t *testing.T) {
	m := New(2)
	for i := uint64(0); i < 100; i++ {
		m.Push(Item{Pri: i, Val: i})
	}
	dst := make([]Item, 7)
	if c := m.PopBatch(dst); c > 7 {
		t.Fatalf("PopBatch returned %d items into a 7-slot buffer", c)
	}
	if c := m.PopBatch(nil); c != 0 {
		t.Fatalf("PopBatch(nil) = %d, want 0", c)
	}
}

func TestPushBatchEmptyIsNoop(t *testing.T) {
	m := New(2)
	m.PushBatch(nil)
	if m.Len() != 0 {
		t.Fatalf("Len = %d after empty PushBatch", m.Len())
	}
	st := m.Stats()
	if st.LockAcquires != 0 {
		t.Fatalf("empty PushBatch acquired %d locks", st.LockAcquires)
	}
}

// TestBatchSingleInterleaveConcurrent is the -race stress test: half
// the producers push batches while the other half push single items,
// and consumers drain with a mix of PopBatch and Pop. Every item must
// come out exactly once.
func TestBatchSingleInterleaveConcurrent(t *testing.T) {
	m := New(8)
	const perG, gs = 4000, 4 // 2 batch + 2 single producers
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * perG)
			if g%2 == 0 {
				buf := make([]Item, 0, 32)
				for i := uint64(0); i < perG; i++ {
					buf = append(buf, Item{Pri: i, Val: base + i})
					if len(buf) == cap(buf) {
						m.PushBatch(buf)
						buf = buf[:0]
					}
				}
				m.PushBatch(buf)
			} else {
				for i := uint64(0); i < perG; i++ {
					m.Push(Item{Pri: i, Val: base + i})
				}
			}
		}(g)
	}
	wg.Wait()

	var popped atomic.Int64
	seen := make([]atomic.Bool, perG*gs)
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mark := func(it Item) bool {
				if seen[it.Val].Swap(true) {
					t.Errorf("item %d popped twice", it.Val)
					return false
				}
				popped.Add(1)
				return true
			}
			if g%2 == 0 {
				dst := make([]Item, 48)
				for {
					c := m.PopBatch(dst)
					if c == 0 {
						return
					}
					for _, it := range dst[:c] {
						if !mark(it) {
							return
						}
					}
				}
			} else {
				for {
					it, ok := m.Pop()
					if !ok {
						return
					}
					if !mark(it) {
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if popped.Load() != perG*gs {
		t.Fatalf("popped %d of %d", popped.Load(), perG*gs)
	}
}

func TestPopperBatchOpsDrainEverything(t *testing.T) {
	m := New(8)
	const n = 20000
	p := m.NewPopper(4)
	buf := make([]Item, 0, 64)
	for i := uint64(0); i < n; i++ {
		buf = append(buf, Item{Pri: i, Val: i})
		if len(buf) == cap(buf) {
			p.PushBatch(buf)
			buf = buf[:0]
		}
	}
	p.PushBatch(buf)
	seen := make([]bool, n)
	dst := make([]Item, 64)
	got := 0
	for {
		c := p.PopBatch(dst)
		if c == 0 {
			break
		}
		for _, it := range dst[:c] {
			if seen[it.Val] {
				t.Fatalf("item %d popped twice", it.Val)
			}
			seen[it.Val] = true
		}
		got += c
	}
	if got != n {
		t.Fatalf("popped %d of %d", got, n)
	}
}

func TestProcessBatchRunsAllSeeds(t *testing.T) {
	var count atomic.Int64
	seeds := make([]Item, 500)
	for i := range seeds {
		seeds[i] = Item{Pri: uint64(i), Val: uint64(i)}
	}
	ProcessBatch(4, seeds, Options{}, func(_ int, _ Item, _ Pusher) {
		count.Add(1)
	})
	if count.Load() != 500 {
		t.Fatalf("processed %d, want 500", count.Load())
	}
}

// TestProcessBatchDynamicSpawning checks termination detection with
// staged pushes: children sit invisible in a worker's staging buffer
// until the popped batch finishes, so the in-flight accounting must
// not let the pool quiesce while work is staged.
func TestProcessBatchDynamicSpawning(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var count atomic.Int64
		ProcessBatch(workers, []Item{{Pri: 0, Val: 12}}, Options{BatchSize: 16},
			func(_ int, it Item, push Pusher) {
				count.Add(1)
				if it.Val > 0 {
					push.Push(Item{Pri: it.Pri + 1, Val: it.Val - 1})
					push.Push(Item{Pri: it.Pri + 1, Val: it.Val - 1})
				}
			})
		if count.Load() != 8191 { // full binary tree of depth 12
			t.Fatalf("workers=%d: executed %d tasks, want 8191", workers, count.Load())
		}
	}
}

func TestProcessBatchNoSeeds(t *testing.T) {
	ran := false
	ProcessBatch(2, nil, Options{}, func(_ int, _ Item, _ Pusher) { ran = true })
	if ran {
		t.Fatal("task ran with no seeds")
	}
}

// TestBatchingCutsLockAcquires pins the point of the whole exercise:
// moving the same items through the queue in batches of k needs about
// 1/k of the lock acquisitions.
func TestBatchingCutsLockAcquires(t *testing.T) {
	const n, k = 8192, 64
	single := New(4)
	for i := uint64(0); i < n; i++ {
		single.Push(Item{Pri: i, Val: i})
	}
	for {
		if _, ok := single.Pop(); !ok {
			break
		}
	}
	ss := single.Stats()

	batched := New(4)
	buf := make([]Item, k)
	for i := uint64(0); i < n; i += k {
		for j := range buf {
			buf[j] = Item{Pri: i + uint64(j), Val: i + uint64(j)}
		}
		batched.PushBatch(buf)
	}
	for {
		if c := batched.PopBatch(buf); c == 0 {
			break
		}
	}
	bs := batched.Stats()

	if ss.PoppedItems != n || bs.PoppedItems != n {
		t.Fatalf("popped %d / %d, want %d", ss.PoppedItems, bs.PoppedItems, n)
	}
	sl, bl := ss.LocksPerItem(), bs.LocksPerItem()
	if bl*8 > sl {
		t.Fatalf("batching should cut locks/item by ~%dx: single=%.3f batched=%.3f", k, sl, bl)
	}
}
