package mq

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// Ablation: the MultiQueue's central design knob is the number of
// internal queues (c * P in the literature). Fewer queues mean tighter
// priority order but more lock contention; more queues scale better but
// relax ordering. These tests and benchmarks quantify both sides, the
// trade-off Sec 6 of the paper leans on.

// rankError drains a pre-filled MQ and returns the mean rank error:
// how far from the ideal priority order each pop was.
func rankError(nQueues, n int) float64 {
	m := New(nQueues)
	for i := 0; i < n; i++ {
		m.Push(Item{Pri: uint64(i), Val: uint64(i)})
	}
	var total float64
	for i := 0; i < n; i++ {
		it, ok := m.Pop()
		if !ok {
			panic("drained early")
		}
		d := float64(it.Pri) - float64(i)
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / float64(n)
}

func TestAblationRankErrorGrowsWithQueues(t *testing.T) {
	const n = 20000
	tight := rankError(2, n)
	loose := rankError(64, n)
	if tight >= loose {
		t.Fatalf("rank error should grow with queue count: 2q=%.1f 64q=%.1f", tight, loose)
	}
	// Even the loose configuration must stay within the probabilistic
	// O(P) expectation band, far below random order (~n/3).
	if loose > float64(n)/10 {
		t.Fatalf("64-queue rank error %.1f looks unbounded", loose)
	}
}

func BenchmarkAblationQueueCount(b *testing.B) {
	for _, q := range []int{2, 4, 16, 64} {
		b.Run(fmt.Sprintf("queues-%d", q), func(b *testing.B) {
			m := New(q)
			b.RunParallel(func(pb *testing.PB) {
				i := uint64(0)
				for pb.Next() {
					m.Push(Item{Pri: i, Val: i})
					m.Pop()
					i++
				}
			})
		})
	}
}

func TestStickyPopperDrainsEverything(t *testing.T) {
	m := New(8)
	const n = 20000
	for i := uint64(0); i < n; i++ {
		m.Push(Item{Pri: i, Val: i})
	}
	p := m.NewPopper(8)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		it, ok := p.Pop()
		if !ok {
			t.Fatalf("pop %d failed with items remaining", i)
		}
		if seen[it.Val] {
			t.Fatalf("item %d popped twice", it.Val)
		}
		seen[it.Val] = true
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("pop on drained queue succeeded")
	}
}

func TestStickyPushPopRoundTrip(t *testing.T) {
	m := New(4)
	p := m.NewPopper(4)
	for i := uint64(0); i < 100; i++ {
		p.Push(Item{Pri: i, Val: i})
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	count := 0
	for {
		if _, ok := p.Pop(); !ok {
			break
		}
		count++
	}
	if count != 100 {
		t.Fatalf("popped %d", count)
	}
}

func TestNewPopperClampsStickiness(t *testing.T) {
	m := New(4)
	p := m.NewPopper(0)
	if p.stick != 1 {
		t.Fatalf("stickiness = %d, want clamped to 1", p.stick)
	}
}

func TestProcessOptStickyCompletesDynamicWork(t *testing.T) {
	var count atomic.Int64
	ProcessOpt(4, []Item{{Pri: 0, Val: 12}}, Options{Stickiness: 8, QueueFactor: 2},
		func(_ int, it Item, push Pusher) {
			count.Add(1)
			if it.Val > 0 {
				push.Push(Item{Pri: it.Pri + 1, Val: it.Val - 1})
				push.Push(Item{Pri: it.Pri + 1, Val: it.Val - 1})
			}
		})
	if count.Load() != 8191 { // full binary tree of depth 12
		t.Fatalf("executed %d tasks, want 8191", count.Load())
	}
}

// TestAblationBatchSizeLocksPerItem quantifies the batching knob the
// graph kernels depend on (docs/GRAPH.md): locks per item must fall
// roughly linearly in the batch size.
func TestAblationBatchSizeLocksPerItem(t *testing.T) {
	const n = 1 << 14
	prev := 1e18
	for _, k := range []int{1, 8, 64, 256} {
		m := New(8)
		buf := make([]Item, k)
		for i := 0; i < n; i += k {
			for j := range buf {
				buf[j] = Item{Pri: uint64(i + j), Val: uint64(i + j)}
			}
			m.PushBatch(buf)
		}
		for m.PopBatch(buf) > 0 {
		}
		st := m.Stats()
		if st.PoppedItems != n {
			t.Fatalf("k=%d: popped %d of %d", k, st.PoppedItems, n)
		}
		lpi := st.LocksPerItem()
		t.Logf("batch=%-4d locks/item=%.4f", k, lpi)
		if lpi >= prev {
			t.Errorf("locks/item should fall with batch size: k=%d got %.4f, previous %.4f", k, lpi, prev)
		}
		prev = lpi
	}
}

// BenchmarkAblationBatchSize drives the same dynamic workload through
// ProcessBatch at several batch sizes; batch=1 degenerates to per-item
// staging and shows what the amortization buys.
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, k := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("batch-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var count atomic.Int64
				ProcessBatch(4, []Item{{Pri: 0, Val: 14}}, Options{BatchSize: k},
					func(_ int, it Item, push Pusher) {
						count.Add(1)
						if it.Val > 0 {
							push.Push(Item{Pri: it.Pri + 1, Val: it.Val - 1})
							push.Push(Item{Pri: it.Pri + 1, Val: it.Val - 1})
						}
					})
				if count.Load() != 32767 {
					b.Fatalf("executed %d tasks, want 32767", count.Load())
				}
			}
		})
	}
}

func BenchmarkAblationStickiness(b *testing.B) {
	for _, stick := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("stick-%d", stick), func(b *testing.B) {
			m := New(8)
			b.RunParallel(func(pb *testing.PB) {
				p := m.NewPopper(stick)
				i := uint64(0)
				for pb.Next() {
					p.Push(Item{Pri: i, Val: i})
					p.Pop()
					i++
				}
			})
		})
	}
}
