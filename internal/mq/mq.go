// Package mq implements the MultiQueue relaxed concurrent priority
// scheduler of Rihani, Sanders & Dementiev (SPAA 2015), as used by the
// paper's bfs and sssp benchmarks (Sec 6): a vector of c*P sequential
// binary heaps, each guarded by a mutex. Push locks a random queue; Pop
// examines two random queues and pops the one whose top has higher
// priority (smaller key), giving probabilistic rank guarantees that in
// practice keep priority inversions small while scaling far better than
// a single concurrent heap.
//
// The paper's fear analysis of this code (Observation 6): implementing
// the scheduler is "Scared" work — mutexes rule out unsynchronized
// access but deadlock/livelock discipline is on the implementer — while
// *using* a correctly implemented MultiQueue leaves only the fear
// induced by each task's own data accesses.
package mq

import (
	"sync"
	"sync/atomic"

	"repro/internal/seqgen"
)

// Item is a prioritized task: Pri orders pops (smaller first) and Val
// carries the payload (typically a vertex id).
type Item struct {
	Pri uint64
	Val uint64
}

// localQueue is one mutex-guarded sequential binary min-heap.
type localQueue struct {
	mu sync.Mutex
	h  []Item
	// top caches the current minimum priority (^0 when empty) so Pop can
	// compare two queues without taking both locks.
	top atomic.Uint64
}

const emptyTop = ^uint64(0)

func (q *localQueue) push(it Item) {
	q.h = append(q.h, it)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.h[parent].Pri <= q.h[i].Pri {
			break
		}
		q.h[parent], q.h[i] = q.h[i], q.h[parent]
		i = parent
	}
	q.top.Store(q.h[0].Pri)
}

func (q *localQueue) pop() (Item, bool) {
	if len(q.h) == 0 {
		return Item{}, false
	}
	it := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.h) && q.h[l].Pri < q.h[small].Pri {
			small = l
		}
		if r < len(q.h) && q.h[r].Pri < q.h[small].Pri {
			small = r
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	if len(q.h) == 0 {
		q.top.Store(emptyTop)
	} else {
		q.top.Store(q.h[0].Pri)
	}
	return it, true
}

// MultiQueue is the relaxed concurrent priority queue.
type MultiQueue struct {
	queues []localQueue
	size   atomic.Int64 // total queued items (approximate during races)
	rng    seqgen.Rng
	seq    atomic.Uint64
}

// New creates a MultiQueue with c queues per expected thread (the
// literature's default is c=2..4; we use the given product directly).
// nQueues is clamped to at least 2.
func New(nQueues int) *MultiQueue {
	if nQueues < 2 {
		nQueues = 2
	}
	m := &MultiQueue{
		queues: make([]localQueue, nQueues),
		rng:    seqgen.NewRng(0xABCD),
	}
	for i := range m.queues {
		m.queues[i].top.Store(emptyTop)
	}
	return m
}

// NQueues returns the number of internal queues.
func (m *MultiQueue) NQueues() int { return len(m.queues) }

// Len returns the approximate number of queued items.
func (m *MultiQueue) Len() int { return int(m.size.Load()) }

func (m *MultiQueue) rand() uint64 { return m.rng.U64(m.seq.Add(1)) }

// Push inserts an item into a random queue.
func (m *MultiQueue) Push(it Item) {
	q := &m.queues[m.rand()%uint64(len(m.queues))]
	q.mu.Lock()
	q.push(it)
	q.mu.Unlock()
	m.size.Add(1)
}

// Pop removes the better-topped of two random queues and returns its
// minimum item. It returns ok=false when it finds no item; because the
// queue is relaxed, a false return during concurrent pushes is not a
// linearizable emptiness guarantee — drivers combine it with their own
// in-flight accounting (see Process).
func (m *MultiQueue) Pop() (Item, bool) {
	n := uint64(len(m.queues))
	// A few best-of-two attempts, then a full sweep to rule out misses.
	for attempt := 0; attempt < 4; attempt++ {
		i := m.rand() % n
		j := m.rand() % n
		if i == j {
			j = (j + 1) % n
		}
		qi, qj := &m.queues[i], &m.queues[j]
		// Compare cached tops without locks, then lock only the winner.
		ti, tj := qi.top.Load(), qj.top.Load()
		if ti == emptyTop && tj == emptyTop {
			continue
		}
		win := qi
		if tj < ti {
			win = qj
		}
		win.mu.Lock()
		it, ok := win.pop()
		win.mu.Unlock()
		if ok {
			m.size.Add(-1)
			return it, true
		}
	}
	// Sweep all queues once.
	for i := range m.queues {
		q := &m.queues[i]
		if q.top.Load() == emptyTop {
			continue
		}
		q.mu.Lock()
		it, ok := q.pop()
		q.mu.Unlock()
		if ok {
			m.size.Add(-1)
			return it, true
		}
	}
	return Item{}, false
}
