// Package mq implements the MultiQueue relaxed concurrent priority
// scheduler of Rihani, Sanders & Dementiev (SPAA 2015), as used by the
// paper's bfs and sssp benchmarks (Sec 6): a vector of c*P sequential
// binary heaps, each guarded by a mutex. Push locks a random queue; Pop
// examines two random queues and pops the one whose top has higher
// priority (smaller key), giving probabilistic rank guarantees that in
// practice keep priority inversions small while scaling far better than
// a single concurrent heap.
//
// On top of the classic single-item operations the package provides
// batched transfers (PushBatch/PopBatch): one lock acquisition and at
// most one cached-top update amortized over a whole batch, the
// optimization that turns the graph kernels' hot loop from lock traffic
// into edge relaxation (docs/GRAPH.md). Batching relaxes priority order
// further — a popped batch is ordered, but its tail may rank behind
// items left in other queues — which relaxed-priority drivers already
// tolerate by construction.
//
// The paper's fear analysis of this code (Observation 6): implementing
// the scheduler is "Scared" work — mutexes rule out unsynchronized
// access but deadlock/livelock discipline is on the implementer — while
// *using* a correctly implemented MultiQueue leaves only the fear
// induced by each task's own data accesses.
package mq

import (
	"sync"
	"sync/atomic"

	"repro/internal/seqgen"
)

// Item is a prioritized task: Pri orders pops (smaller first) and Val
// carries the payload (typically a vertex id).
type Item struct {
	Pri uint64
	Val uint64
}

// localQueue is one mutex-guarded sequential binary min-heap, padded so
// adjacent queues in the MultiQueue's vector never share a cache line:
// without the padding every lock handoff on queue i invalidates the
// cached top of queues i-1 and i+1, which Pop reads lock-free on its
// best-of-two probes.
type localQueue struct {
	mu sync.Mutex
	h  []Item
	// top caches the current minimum priority (^0 when empty) so Pop can
	// compare two queues without taking both locks. It is only stored
	// when the minimum actually changed (see push/pop), so mid-heap
	// inserts cost no cross-core invalidation at all.
	top atomic.Uint64
	// 8 (mutex) + 24 (slice) + 8 (top) = 40 bytes of fields; pad to two
	// cache lines to also defeat the adjacent-line prefetcher.
	_ [88]byte
}

const emptyTop = ^uint64(0)

// heapArity: the sequential heaps are 4-ary, not binary. Pops dominate
// the queues' heap traffic (every item is sifted down once on its way
// out), and a 4-ary sift-down does half the levels of a binary one with
// all four children on the same pair of cache lines — a classic
// constant-factor win for pop-heavy workloads.
const heapArity = 4

// insert sifts a new item into the heap without touching the cached
// top. It reports whether the item came to rest at the root — which,
// because sift-up stops on equal priorities, happens exactly when the
// minimum strictly decreased (or the heap was empty).
func (q *localQueue) insert(it Item) bool {
	q.h = append(q.h, it)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if q.h[parent].Pri <= q.h[i].Pri {
			break
		}
		q.h[parent], q.h[i] = q.h[i], q.h[parent]
		i = parent
	}
	return i == 0
}

// removeMin extracts a minimum-priority item without touching the
// cached top.
func (q *localQueue) removeMin() Item {
	last := len(q.h) - 1
	if q.h[last].Pri == q.h[0].Pri {
		// The tail shares the root's priority, so it is itself a minimum
		// and a leaf: return it with no sift at all. Priority schedulers
		// with few distinct keys (BFS levels, delta-stepping buckets)
		// take this O(1) path for almost every pop.
		it := q.h[last]
		q.h = q.h[:last]
		return it
	}
	it := q.h[0]
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= len(q.h) {
			break
		}
		end := first + heapArity
		if end > len(q.h) {
			end = len(q.h)
		}
		small := i
		for c := first; c < end; c++ {
			if q.h[c].Pri < q.h[small].Pri {
				small = c
			}
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	return it
}

// syncTop republishes the cached top if it drifted from the heap's
// actual minimum. prev is the previously published value.
func (q *localQueue) syncTop(prev uint64) {
	cur := emptyTop
	if len(q.h) > 0 {
		cur = q.h[0].Pri
	}
	if cur != prev {
		q.top.Store(cur)
	}
}

func (q *localQueue) push(it Item) {
	if q.insert(it) {
		q.top.Store(q.h[0].Pri)
	}
}

func (q *localQueue) pushAll(items []Item) {
	prev := emptyTop
	if len(q.h) > 0 {
		prev = q.h[0].Pri
	}
	for _, it := range items {
		q.insert(it)
	}
	q.syncTop(prev)
}

func (q *localQueue) pop() (Item, bool) {
	if len(q.h) == 0 {
		return Item{}, false
	}
	it := q.removeMin()
	q.syncTop(it.Pri)
	return it, true
}

// popUpTo extracts up to len(dst) items in priority order with a single
// top update, returning the count.
func (q *localQueue) popUpTo(dst []Item) int {
	if len(q.h) == 0 {
		return 0
	}
	prev := q.h[0].Pri
	n := 0
	for n < len(dst) && len(q.h) > 0 {
		dst[n] = q.removeMin()
		n++
	}
	q.syncTop(prev)
	return n
}

// Stats is a snapshot of a MultiQueue's operation counters, the
// telemetry behind `rpbreport -what graph`. LockAcquires/PoppedItems is
// the headline ratio: the classic single-item discipline pays about two
// lock acquisitions per processed vertex (one push, one pop), while
// batched drivers amortize one acquisition over a whole batch.
type Stats struct {
	LockAcquires uint64 // mutex acquisitions across all queue operations
	PushOps      uint64 // locked push operations (single-item or batch)
	PopOps       uint64 // locked pops that returned at least one item
	EmptyPops    uint64 // locked pops that found their queue drained
	PushedItems  uint64
	PoppedItems  uint64
}

// LocksPerItem returns lock acquisitions per popped item (0 when
// nothing was popped).
func (s Stats) LocksPerItem() float64 {
	if s.PoppedItems == 0 {
		return 0
	}
	return float64(s.LockAcquires) / float64(s.PoppedItems)
}

// add accumulates a local counter block into the shared atomics.
func (c *counters) add(s Stats) {
	if s == (Stats{}) {
		return
	}
	c.lockAcquires.Add(s.LockAcquires)
	c.pushOps.Add(s.PushOps)
	c.popOps.Add(s.PopOps)
	c.emptyPops.Add(s.EmptyPops)
	c.pushedItems.Add(s.PushedItems)
	c.poppedItems.Add(s.PoppedItems)
}

// counters is the shared atomic form of Stats. Single-item Push/Pop on
// the MultiQueue update it directly; Poppers accumulate locally and
// flush once per worker (FlushStats), keeping the hot path free of
// shared-counter traffic.
type counters struct {
	lockAcquires atomic.Uint64
	pushOps      atomic.Uint64
	popOps       atomic.Uint64
	emptyPops    atomic.Uint64
	pushedItems  atomic.Uint64
	poppedItems  atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		LockAcquires: c.lockAcquires.Load(),
		PushOps:      c.pushOps.Load(),
		PopOps:       c.popOps.Load(),
		EmptyPops:    c.emptyPops.Load(),
		PushedItems:  c.pushedItems.Load(),
		PoppedItems:  c.poppedItems.Load(),
	}
}

// MultiQueue is the relaxed concurrent priority queue.
type MultiQueue struct {
	queues []localQueue
	size   atomic.Int64 // total queued items (approximate during races)
	rng    seqgen.Rng
	seq    atomic.Uint64
	stats  counters
}

// New creates a MultiQueue with c queues per expected thread (the
// literature's default is c=2..4; we use the given product directly).
// nQueues is clamped to at least 2.
func New(nQueues int) *MultiQueue {
	if nQueues < 2 {
		nQueues = 2
	}
	m := &MultiQueue{
		queues: make([]localQueue, nQueues),
		rng:    seqgen.NewRng(0xABCD),
	}
	for i := range m.queues {
		m.queues[i].top.Store(emptyTop)
	}
	return m
}

// NQueues returns the number of internal queues.
func (m *MultiQueue) NQueues() int { return len(m.queues) }

// Len returns the approximate number of queued items.
func (m *MultiQueue) Len() int { return int(m.size.Load()) }

// Stats returns a snapshot of the operation counters, including
// everything flushed by Poppers so far.
func (m *MultiQueue) Stats() Stats { return m.stats.snapshot() }

func (m *MultiQueue) rand() uint64 { return m.rng.U64(m.seq.Add(1)) }

// Push inserts an item into a random queue.
func (m *MultiQueue) Push(it Item) {
	q := &m.queues[m.rand()%uint64(len(m.queues))]
	q.mu.Lock()
	q.push(it)
	q.mu.Unlock()
	m.size.Add(1)
	m.stats.add(Stats{LockAcquires: 1, PushOps: 1, PushedItems: 1})
}

// PushBatch inserts all items into one random queue under a single lock
// acquisition with at most one cached-top update. The batch stays
// heap-ordered within its queue; relative to other queues it relaxes
// priority order no differently than any other bulk arrival.
func (m *MultiQueue) PushBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	q := &m.queues[m.rand()%uint64(len(m.queues))]
	q.mu.Lock()
	q.pushAll(items)
	q.mu.Unlock()
	m.size.Add(int64(len(items)))
	m.stats.add(Stats{LockAcquires: 1, PushOps: 1, PushedItems: uint64(len(items))})
}

// Pop removes the better-topped of two random queues and returns its
// minimum item. It returns ok=false when it finds no item; because the
// queue is relaxed, a false return during concurrent pushes is not a
// linearizable emptiness guarantee — drivers combine it with their own
// in-flight accounting (see Process).
func (m *MultiQueue) Pop() (Item, bool) {
	var st Stats
	it, ok := m.popInto(&st, nil)
	m.stats.add(st)
	return it, ok
}

// PopBatch removes up to len(dst) items from the better-topped of two
// random queues under a single lock acquisition, returning the count.
// The batch is in priority order. A zero return carries the same
// relaxed-emptiness caveat as Pop.
func (m *MultiQueue) PopBatch(dst []Item) int {
	if len(dst) == 0 {
		return 0
	}
	var st Stats
	_, n := m.popBatchInto(&st, dst)
	m.stats.add(st)
	return n
}

// popInto is the single-item pop engine, accumulating counters into st.
func (m *MultiQueue) popInto(st *Stats, _ []Item) (Item, bool) {
	n := uint64(len(m.queues))
	// A few best-of-two attempts, then a full sweep to rule out misses.
	for attempt := 0; attempt < 4; attempt++ {
		i := m.rand() % n
		j := m.rand() % n
		if i == j {
			j = (j + 1) % n
		}
		qi, qj := &m.queues[i], &m.queues[j]
		// Compare cached tops without locks, then lock only the winner.
		ti, tj := qi.top.Load(), qj.top.Load()
		if ti == emptyTop && tj == emptyTop {
			continue
		}
		win := qi
		if tj < ti {
			win = qj
		}
		win.mu.Lock()
		it, ok := win.pop()
		win.mu.Unlock()
		st.LockAcquires++
		if ok {
			st.PopOps++
			st.PoppedItems++
			m.size.Add(-1)
			return it, true
		}
		st.EmptyPops++
	}
	// Sweep all queues once.
	for i := range m.queues {
		q := &m.queues[i]
		if q.top.Load() == emptyTop {
			continue
		}
		q.mu.Lock()
		it, ok := q.pop()
		q.mu.Unlock()
		st.LockAcquires++
		if ok {
			st.PopOps++
			st.PoppedItems++
			m.size.Add(-1)
			return it, true
		}
		st.EmptyPops++
	}
	return Item{}, false
}

// popBatchInto is the batch pop engine over randomly probed queues.
func (m *MultiQueue) popBatchInto(st *Stats, dst []Item) (Item, int) {
	n := uint64(len(m.queues))
	for attempt := 0; attempt < 4; attempt++ {
		i := m.rand() % n
		j := m.rand() % n
		if i == j {
			j = (j + 1) % n
		}
		qi, qj := &m.queues[i], &m.queues[j]
		ti, tj := qi.top.Load(), qj.top.Load()
		if ti == emptyTop && tj == emptyTop {
			continue
		}
		win := qi
		if tj < ti {
			win = qj
		}
		win.mu.Lock()
		got := win.popUpTo(dst)
		win.mu.Unlock()
		st.LockAcquires++
		if got > 0 {
			st.PopOps++
			st.PoppedItems += uint64(got)
			m.size.Add(-int64(got))
			return Item{}, got
		}
		st.EmptyPops++
	}
	for i := range m.queues {
		q := &m.queues[i]
		if q.top.Load() == emptyTop {
			continue
		}
		q.mu.Lock()
		got := q.popUpTo(dst)
		q.mu.Unlock()
		st.LockAcquires++
		if got > 0 {
			st.PopOps++
			st.PoppedItems += uint64(got)
			m.size.Add(-int64(got))
			return Item{}, got
		}
		st.EmptyPops++
	}
	return Item{}, 0
}
