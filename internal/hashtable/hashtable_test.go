package hashtable

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestSetInsertContains(t *testing.T) {
	s := NewSet(100)
	if !s.Insert(42) {
		t.Fatal("first insert should succeed")
	}
	if s.Insert(42) {
		t.Fatal("second insert should report present")
	}
	if !s.Contains(42) || s.Contains(43) {
		t.Fatal("contains wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSetZeroKeyUsable(t *testing.T) {
	s := NewSet(10)
	if !s.Insert(0) {
		t.Fatal("key 0 insert failed")
	}
	if !s.Contains(0) {
		t.Fatal("key 0 not found")
	}
	if s.Insert(0) {
		t.Fatal("key 0 duplicate inserted")
	}
}

func TestSetKeysRoundTrip(t *testing.T) {
	s := NewSet(64)
	want := []uint64{0, 1, 5, 1 << 40, ^uint64(1)}
	for _, k := range want {
		s.Insert(k)
	}
	got := s.Keys(nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestSetSlotKeyEnumeration(t *testing.T) {
	s := NewSet(8)
	s.Insert(7)
	found := false
	for i := 0; i < s.Capacity(); i++ {
		if k, ok := s.SlotKey(i); ok && k == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("slot enumeration missed key")
	}
}

func TestSetConcurrentInsertExactDedup(t *testing.T) {
	const n = 30000
	s := NewSet(n)
	p := core.NewPool(4)
	defer p.Close()
	// Insert each of n/3 keys three times, concurrently; exactly one
	// insert per key must win.
	var wins int64
	p.Do(func(w *core.Worker) {
		wins = core.MapReduce(w, n, int64(0), func(i int) int64 {
			if s.Insert(uint64(i % (n / 3))) {
				return 1
			}
			return 0
		}, func(a, b int64) int64 { return a + b })
	})
	if wins != n/3 {
		t.Fatalf("winning inserts = %d, want %d", wins, n/3)
	}
	if s.Len() != n/3 {
		t.Fatalf("len = %d, want %d", s.Len(), n/3)
	}
}

func TestSetMatchesMapProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		s := NewSet(len(keys) + 1)
		ref := map[uint64]bool{}
		for _, k := range keys {
			if s.Insert(k) != !ref[k] {
				return false
			}
			ref[k] = true
		}
		for _, k := range keys {
			if !s.Contains(k) {
				return false
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMapBasics(t *testing.T) {
	m := NewCountMap(10)
	m.InsertAdd(5, 2)
	m.InsertAdd(5, 3)
	m.InsertAdd(0, 1)
	if m.Get(5) != 5 || m.Get(0) != 1 || m.Get(99) != 0 {
		t.Fatalf("counts wrong: %d %d %d", m.Get(5), m.Get(0), m.Get(99))
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestCountMapConcurrentTotals(t *testing.T) {
	const n = 60000
	const distinct = 256
	m := NewCountMap(distinct)
	p := core.NewPool(4)
	defer p.Close()
	p.Do(func(w *core.Worker) {
		core.ForRange(w, 0, n, 0, func(i int) {
			m.InsertAdd(uint64(i%distinct), 1)
		})
	})
	if m.Len() != distinct {
		t.Fatalf("distinct = %d, want %d", m.Len(), distinct)
	}
	var total int64
	for i := 0; i < m.Capacity(); i++ {
		if k, c, ok := m.Slot(i); ok {
			total += c
			want := int64(n / distinct)
			if k < uint64(n%distinct) {
				want++
			}
			if c != want {
				t.Fatalf("slot count for key %d = %d, want %d", k, c, want)
			}
		}
	}
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
}

func TestCountMapMatchesMapProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		m := NewCountMap(260)
		ref := map[uint64]int64{}
		for _, k := range keys {
			m.InsertAdd(uint64(k), 1)
			ref[uint64(k)]++
		}
		for k, v := range ref {
			if m.Get(k) != v {
				return false
			}
		}
		return m.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityPowerOfTwoAndRoomy(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		s := NewSet(n)
		c := s.Capacity()
		if c&(c-1) != 0 {
			t.Fatalf("capacity %d not a power of two", c)
		}
		if c < 2*n {
			t.Fatalf("capacity %d too small for %d keys", c, n)
		}
	}
}

func BenchmarkSetInsert(b *testing.B) {
	s := NewSet(b.N + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(uint64(i))
	}
}
