// Package hashtable implements phase-concurrent open-addressing hash
// tables in the style of PBBS: fixed capacity, CAS-based insertion,
// linear probing. This is the data structure of the paper's Listing 8 —
// the canonical arbitrary-read-write (AW) pattern, where tasks'
// conflicting accesses to the same slot are mediated by compare-and-
// swap. It backs the dedup and hist benchmarks.
//
// "Phase-concurrent" means all threads perform the same operation kind
// at a time (all inserts, then all reads), which PBBS exploits for
// performance; these tables assume that discipline.
package hashtable

import (
	"sync/atomic"

	"repro/internal/seqgen"
)

// emptyKey marks an unoccupied slot. Keys equal to emptyKey are offset
// by 1 on entry (biased encoding) so the full uint64 space is usable.
const emptyKey = uint64(0)

// Set is a concurrent set of uint64 keys with CAS insertion.
type Set struct {
	slots []atomic.Uint64
	mask  uint64
	count atomic.Int64
}

// NewSet creates a set with capacity for about n keys (load factor 1/2).
func NewSet(n int) *Set {
	cap := 16
	for cap < 2*n {
		cap <<= 1
	}
	return &Set{slots: make([]atomic.Uint64, cap), mask: uint64(cap - 1)}
}

func encode(k uint64) uint64 { return k + 1 } // bias away from emptyKey
func decode(s uint64) uint64 { return s - 1 }

// Insert adds k, returning true if this call inserted it (false if it
// was already present). The table panics when completely full, which a
// correctly sized table never is.
func (s *Set) Insert(k uint64) bool {
	ek := encode(k)
	i := seqgen.Hash64(k) & s.mask
	for probes := uint64(0); probes <= s.mask; probes++ {
		cur := s.slots[i].Load()
		if cur == ek {
			return false
		}
		if cur == emptyKey {
			if s.slots[i].CompareAndSwap(emptyKey, ek) {
				s.count.Add(1)
				return true
			}
			// Lost the race: re-examine the same slot (it may now hold k).
			if s.slots[i].Load() == ek {
				return false
			}
		}
		i = (i + 1) & s.mask
	}
	panic("hashtable.Set: table full")
}

// Contains reports whether k is present. Phase-concurrent: callers must
// not run Contains concurrently with Insert if they need linearizable
// answers.
func (s *Set) Contains(k uint64) bool {
	ek := encode(k)
	i := seqgen.Hash64(k) & s.mask
	for probes := uint64(0); probes <= s.mask; probes++ {
		cur := s.slots[i].Load()
		if cur == ek {
			return true
		}
		if cur == emptyKey {
			return false
		}
		i = (i + 1) & s.mask
	}
	return false
}

// Reset empties the set in place, reusing the slot array, so round-
// based callers can keep one table across rounds instead of allocating
// a fresh one (docs/MEMORY.md). Quiescent use only: no concurrent
// Insert/Contains may be in flight.
func (s *Set) Reset() {
	clear(s.slots)
	s.count.Store(0)
}

// Len returns the number of keys inserted.
func (s *Set) Len() int { return int(s.count.Load()) }

// Capacity returns the number of slots.
func (s *Set) Capacity() int { return len(s.slots) }

// Keys appends all present keys to dst and returns it. Quiescent use.
func (s *Set) Keys(dst []uint64) []uint64 {
	for i := range s.slots {
		if v := s.slots[i].Load(); v != emptyKey {
			dst = append(dst, decode(v))
		}
	}
	return dst
}

// SlotKey returns the key at slot i and whether it is occupied; it
// exposes the layout for parallel extraction (pack over slots).
func (s *Set) SlotKey(i int) (uint64, bool) {
	v := s.slots[i].Load()
	if v == emptyKey {
		return 0, false
	}
	return decode(v), true
}

// CountMap is a concurrent map from uint64 keys to int64 counters, used
// by histogram-style kernels: InsertAdd finds-or-creates the key's slot
// and atomically adds to its counter.
type CountMap struct {
	keys  []atomic.Uint64
	vals  []atomic.Int64
	mask  uint64
	count atomic.Int64
}

// NewCountMap creates a map with capacity for about n distinct keys.
func NewCountMap(n int) *CountMap {
	cap := 16
	for cap < 2*n {
		cap <<= 1
	}
	return &CountMap{
		keys: make([]atomic.Uint64, cap),
		vals: make([]atomic.Int64, cap),
		mask: uint64(cap - 1),
	}
}

// InsertAdd adds delta to the counter of k, creating it if absent.
func (m *CountMap) InsertAdd(k uint64, delta int64) {
	ek := encode(k)
	i := seqgen.Hash64(k) & m.mask
	for probes := uint64(0); probes <= m.mask; probes++ {
		cur := m.keys[i].Load()
		if cur == ek {
			m.vals[i].Add(delta)
			return
		}
		if cur == emptyKey {
			if m.keys[i].CompareAndSwap(emptyKey, ek) {
				m.count.Add(1)
				m.vals[i].Add(delta)
				return
			}
			if m.keys[i].Load() == ek {
				m.vals[i].Add(delta)
				return
			}
		}
		i = (i + 1) & m.mask
	}
	panic("hashtable.CountMap: table full")
}

// Get returns the counter of k (0 when absent). Quiescent use.
func (m *CountMap) Get(k uint64) int64 {
	ek := encode(k)
	i := seqgen.Hash64(k) & m.mask
	for probes := uint64(0); probes <= m.mask; probes++ {
		cur := m.keys[i].Load()
		if cur == ek {
			return m.vals[i].Load()
		}
		if cur == emptyKey {
			return 0
		}
		i = (i + 1) & m.mask
	}
	return 0
}

// Reset empties the map in place, reusing both arrays. Quiescent use.
func (m *CountMap) Reset() {
	clear(m.keys)
	clear(m.vals)
	m.count.Store(0)
}

// Len returns the number of distinct keys.
func (m *CountMap) Len() int { return int(m.count.Load()) }

// Capacity returns the number of slots.
func (m *CountMap) Capacity() int { return len(m.keys) }

// Slot returns the key/count at slot i, with ok=false for empty slots.
func (m *CountMap) Slot(i int) (key uint64, count int64, ok bool) {
	v := m.keys[i].Load()
	if v == emptyKey {
		return 0, 0, false
	}
	return decode(v), m.vals[i].Load(), true
}
