package lint

// Index-disjointness subrules for the races pass: given a write
// xs[idx] to shared memory inside a parallel region, prove that
// distinct concurrent invocations produce distinct idx values.
//
// The foundation is a set of "task-distinguishing" variables — values
// the region contract guarantees are unique per concurrent invocation:
//
//	task-affine     the primitive's per-task index parameter
//	range-owner     a loop variable over the invocation's handed
//	                [lo, hi) subrange (For / RunRange contract)
//	block-owner     a loop variable over [t*B, t*B+B) for a
//	                task-distinguishing t (two-pass blocked kernels)
//	unique-handout  an atomic counter's Add(d)-d result
//	worker-owned    w.ID() of the invocation's own worker
//	residue-class   t + j*extent: distinct residues mod the region
//	                extent, with t in [0, extent)
//
// An index that is an affine function of exactly one
// task-distinguishing variable (nonzero coefficient) plus
// region-invariant terms inherits its disjointness: scaling a family
// of pairwise-disjoint integer sets by a nonzero constant and shifting
// them all by the same amount keeps them pairwise disjoint.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// classifyIndex proves idx unique per concurrent invocation.
// detail != "" names the successful subrule; otherwise why explains
// the failure.
func (rc *regionCheck) classifyIndex(idx ast.Expr) (detail, why string) {
	if d := rc.matchResidue(idx); d != "" {
		return d, ""
	}
	if d := rc.matchBlockScaled(idx); d != "" {
		return d, ""
	}
	if rc.matchUniqueHandout(idx) {
		return "unique-handout", ""
	}
	if rc.matchWorkerID(idx) {
		return "worker-owned", ""
	}
	terms, _, ok := rc.parseAffine(idx, 0)
	if !ok {
		return "", "index " + types.ExprString(idx) + " is not an affine form the analysis models"
	}
	var taskDetail string
	taskCount := 0
	for _, t := range terms {
		if t.coef == 0 {
			continue
		}
		if t.obj != nil {
			if res := rc.taskDetail(t.obj); res.ok {
				taskCount++
				taskDetail = res.detail
				continue
			}
		}
		if rc.invariantTerm(t) {
			continue
		}
		return "", "index " + types.ExprString(idx) + " depends on " + t.name + ", which is neither task-distinguishing nor region-invariant"
	}
	switch taskCount {
	case 1:
		return taskDetail, ""
	case 0:
		return "", "index " + types.ExprString(idx) + " does not vary by task: concurrent invocations write the same element"
	default:
		return "", "index " + types.ExprString(idx) + " mixes several task-distinguishing variables"
	}
}

// taskDetail decides whether obj is task-distinguishing, memoized.
func (rc *regionCheck) taskDetail(obj types.Object) taskRes {
	if res, done := rc.taskMemo[obj]; done {
		return res
	}
	rc.taskMemo[obj] = taskRes{} // cut recursion
	res := rc.taskDetailUncached(obj)
	rc.taskMemo[obj] = res
	return res
}

func (rc *regionCheck) taskDetailUncached(obj types.Object) taskRes {
	if d, isTask := rc.r.task[obj]; isTask {
		return taskRes{detail: d, ok: true}
	}
	if lv := rc.loops[obj]; lv != nil {
		if rc.isRangeOwnerLoop(lv) {
			return taskRes{detail: "range-owner", ok: true}
		}
		if rc.isBlockOwnerLoop(lv) {
			return taskRes{detail: "block-owner", ok: true}
		}
		return taskRes{}
	}
	fx := rc.facts[obj]
	if fx == nil || fx.def == nil || fx.assigns > 0 || !rc.locals[obj] {
		return taskRes{}
	}
	def := fx.def
	if rc.matchUniqueHandout(def) {
		return taskRes{detail: "unique-handout", ok: true}
	}
	if rc.matchWorkerID(def) {
		return taskRes{detail: "worker-owned", ok: true}
	}
	if id, ok := rc.unwrapConv(def).(*ast.Ident); ok {
		if inner := rc.objOf(id); inner != nil && inner != obj {
			return rc.taskDetail(inner)
		}
	}
	return taskRes{}
}

// isRangeOwnerLoop: the loop runs over the invocation's handed
// subrange [lo, hi) (Worker.For / RunRange contract: subranges handed
// to concurrent invocations are disjoint).
func (rc *regionCheck) isRangeOwnerLoop(lv *raceLoop) bool {
	if rc.r.rangeLo == nil || rc.r.rangeHi == nil || lv.lo == nil || lv.hi == nil {
		return false
	}
	loID, ok := rc.unwrapConv(lv.lo).(*ast.Ident)
	if !ok || rc.objOf(loID) != rc.r.rangeLo {
		return false
	}
	hiID, ok := rc.unwrapConv(lv.hi).(*ast.Ident)
	return ok && rc.objOf(hiID) == rc.r.rangeHi
}

// isBlockOwnerLoop: the loop runs over [t*B, t*B+B) — possibly capped
// from above — for a task-distinguishing t, so concurrent invocations
// own disjoint blocks. Matches both the symbolic two-pass scan shape
// (blo := ci*s.block; bhi := min(blo+s.block, n)) and the constant
// shape (base := wi*64; hi := base+64 with a shrink guard).
func (rc *regionCheck) isBlockOwnerLoop(lv *raceLoop) bool {
	if lv.lo == nil || lv.hi == nil {
		return false
	}
	loF := rc.foldIdent(lv.lo, false)
	t, stride := rc.matchProduct(loF)
	if t == nil {
		return false
	}
	hiF := rc.foldIdent(lv.hi, true)
	for _, cand := range rc.minCandidates(hiF) {
		cand = rc.unwrapConv(cand)
		if add, ok := cand.(*ast.BinaryExpr); ok && add.Op == token.ADD {
			// hi = lo + S
			for _, ord := range [][2]ast.Expr{{add.X, add.Y}, {add.Y, add.X}} {
				base, s2 := ord[0], ord[1]
				if !exprEq(rc.tp, s2, stride) {
					continue
				}
				if exprEq(rc.tp, base, lv.lo) || exprEq(rc.tp, base, loF) {
					return true
				}
			}
		}
		if mul, ok := cand.(*ast.BinaryExpr); ok && mul.Op == token.MUL {
			// hi = (t+1) * S
			for _, ord := range [][2]ast.Expr{{mul.X, mul.Y}, {mul.Y, mul.X}} {
				p, s2 := ord[0], ord[1]
				if !exprEq(rc.tp, s2, stride) {
					continue
				}
				pT, pK, okP := rc.parseAffine(p, 0)
				if !okP || pK != 1 || len(pT) != 1 {
					continue
				}
				for _, tm := range pT {
					if tm.coef == 1 && tm.obj != nil && tm.obj == rc.objOf(t) {
						return true
					}
				}
			}
		}
	}
	// Constant-coefficient fallback: lo and hi affine over the same
	// single task variable with equal coefficient a and 0 < hi-lo <= a.
	loT, loK, okLo := rc.parseAffine(lv.lo, 0)
	hiT, hiK, okHi := rc.parseAffine(rc.foldIdent(lv.hi, true), 0)
	if !okLo || !okHi || len(loT) != len(hiT) {
		return false
	}
	var coef int64
	seen := 0
	for key, t1 := range loT {
		t2 := hiT[key]
		if t2 == nil || t2.coef != t1.coef {
			return false
		}
		if t1.obj != nil && rc.taskDetail(t1.obj).ok {
			seen++
			coef = t1.coef
			continue
		}
		if !rc.invariantTerm(t1) {
			return false
		}
	}
	if seen != 1 || coef <= 0 {
		return false
	}
	d := hiK - loK
	return d > 0 && d <= coef
}

// matchProduct matches t*S (or S*t) with t task-distinguishing,
// returning t's identifier and the stride expression.
func (rc *regionCheck) matchProduct(e ast.Expr) (*ast.Ident, ast.Expr) {
	mul, ok := rc.unwrapConv(e).(*ast.BinaryExpr)
	if !ok || mul.Op != token.MUL {
		return nil, nil
	}
	for _, ord := range [][2]ast.Expr{{mul.X, mul.Y}, {mul.Y, mul.X}} {
		id, ok := rc.unwrapConv(ord[0]).(*ast.Ident)
		if !ok {
			continue
		}
		if obj := rc.objOf(id); obj != nil && rc.taskDetail(obj).ok {
			return id, ord[1]
		}
	}
	return nil, nil
}

// minCandidates unwraps min(a, b, ...) calls: a loop bound capped by
// min only shrinks the block.
func (rc *regionCheck) minCandidates(e ast.Expr) []ast.Expr {
	call, ok := rc.unwrapConv(e).(*ast.CallExpr)
	if ok {
		if id, isID := unparen(call.Fun).(*ast.Ident); isID && id.Name == "min" {
			return call.Args
		}
	}
	return []ast.Expr{e}
}

// matchResidue matches t + j*extent (either operand order, either
// factor order): with t the region's per-task index in [0, extent),
// all writes of task t land in the residue class t mod extent.
func (rc *regionCheck) matchResidue(idx ast.Expr) string {
	if rc.r.extent == nil {
		return ""
	}
	add, ok := rc.unwrapConv(idx).(*ast.BinaryExpr)
	if !ok || add.Op != token.ADD {
		return ""
	}
	for _, ord := range [][2]ast.Expr{{add.X, add.Y}, {add.Y, add.X}} {
		tID, ok := rc.unwrapConv(ord[0]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := rc.objOf(tID)
		if obj == nil {
			continue
		}
		if _, seed := rc.r.task[obj]; !seed {
			continue // the [0, extent) bound holds only for the seed index
		}
		mul, ok := rc.unwrapConv(ord[1]).(*ast.BinaryExpr)
		if !ok || mul.Op != token.MUL {
			continue
		}
		if exprEq(rc.tp, mul.X, rc.r.extent) || exprEq(rc.tp, mul.Y, rc.r.extent) {
			return "residue-class"
		}
	}
	return ""
}

// matchBlockScaled matches t*S + j with t task-distinguishing and j a
// loop variable over [0, S): task t owns the block [t*S, (t+1)*S).
func (rc *regionCheck) matchBlockScaled(idx ast.Expr) string {
	add, ok := rc.unwrapConv(idx).(*ast.BinaryExpr)
	if !ok || add.Op != token.ADD {
		return ""
	}
	for _, ord := range [][2]ast.Expr{{add.X, add.Y}, {add.Y, add.X}} {
		jID, ok := rc.unwrapConv(ord[0]).(*ast.Ident)
		if !ok {
			continue
		}
		jObj := rc.objOf(jID)
		if jObj == nil {
			continue
		}
		lv := rc.loops[jObj]
		if lv == nil || lv.lo == nil || lv.hi == nil || !isZeroExpr(lv.lo) {
			continue
		}
		mul, ok := rc.unwrapConv(ord[1]).(*ast.BinaryExpr)
		if !ok || mul.Op != token.MUL {
			continue
		}
		for _, mord := range [][2]ast.Expr{{mul.X, mul.Y}, {mul.Y, mul.X}} {
			tID, ok := rc.unwrapConv(mord[0]).(*ast.Ident)
			if !ok {
				continue
			}
			tObj := rc.objOf(tID)
			if tObj == nil || !rc.taskDetail(tObj).ok {
				continue
			}
			if exprEq(rc.tp, mord[1], lv.hi) {
				return "block-scaled"
			}
		}
	}
	return ""
}

// matchUniqueHandout matches C.Add(d)-d / atomic.AddX(&C, d)-d for a
// shared scalar atomic counter C: every evaluation yields a distinct
// value.
func (rc *regionCheck) matchUniqueHandout(e ast.Expr) bool {
	sub, ok := rc.unwrapConv(e).(*ast.BinaryExpr)
	if !ok || sub.Op != token.SUB {
		return false
	}
	call, ok := unparen(sub.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	var counter ast.Expr
	var delta ast.Expr
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Add" &&
		isAtomicRecv(rc.tp, sel.X) && len(call.Args) == 1 {
		counter, delta = sel.X, call.Args[0]
	} else if pathStr, name, isPkg := callTarget(rc.f, call); isPkg &&
		isPath(pathStr, atomicPath) && len(name) > 3 && name[:3] == "Add" && len(call.Args) == 2 {
		un, isUn := unparen(call.Args[0]).(*ast.UnaryExpr)
		if !isUn || un.Op != token.AND {
			return false
		}
		counter, delta = un.X, call.Args[1]
	} else {
		return false
	}
	if !exprEq(rc.tp, delta, sub.Y) {
		return false
	}
	// The counter must be a shared scalar: an element of a counter
	// array has per-element sequences that can collide across elements.
	base, steps, ok := peelTarget(counter)
	if !ok {
		return false
	}
	for _, st := range steps {
		if st.index != nil {
			return false
		}
	}
	obj := rc.objOf(base)
	return obj != nil && rc.memClass(obj, steps) == memShared
}

// matchWorkerID matches w.ID() on the invocation's own worker: two
// concurrent invocations on distinct workers get distinct ids, and two
// invocations on the same worker run sequentially.
func (rc *regionCheck) matchWorkerID(e ast.Expr) bool {
	call, ok := rc.unwrapConv(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ID" {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok || rc.r.worker == nil {
		return false
	}
	return rc.objOf(id) == rc.r.worker
}

// ---------------------------------------------------------------------
// Affine parsing
// ---------------------------------------------------------------------

// affTerm is one symbolic term of an affine sum.
type affTerm struct {
	obj   types.Object // nil for selector/len atoms
	name  string
	canon string // canonical key for selector atoms (fieldWr lookups)
	coef  int64
}

// parseAffine decomposes e into sum(coef_i * atom_i) + k. Constant
// subexpressions fold through go/types' constant evaluation;
// single-definition locals that are not task-distinguishing fold
// through their definitions.
func (rc *regionCheck) parseAffine(e ast.Expr, depth int) (map[string]*affTerm, int64, bool) {
	terms := map[string]*affTerm{}
	var k int64
	if !rc.affineInto(e, 1, terms, &k, depth) {
		return nil, 0, false
	}
	return terms, k, true
}

func (rc *regionCheck) affineInto(e ast.Expr, scale int64, terms map[string]*affTerm, k *int64, depth int) bool {
	if depth > 12 {
		return false
	}
	e = unparen(e)
	// Constant fold.
	if tv, ok := rc.tp.info.Types[e]; ok && tv.Value != nil {
		if v, exact := constInt64(tv.Value); exact {
			*k += scale * v
			return true
		}
		return false
	}
	switch v := e.(type) {
	case *ast.Ident:
		obj := rc.objOf(v)
		if obj == nil {
			return false
		}
		if !rc.taskDetail(obj).ok && rc.foldable(obj) {
			return rc.affineInto(rc.facts[obj].def, scale, terms, k, depth+1)
		}
		addTerm(terms, &affTerm{obj: obj, name: v.Name}, scale)
		return true
	case *ast.SelectorExpr:
		canon := canonString(rc.tp, v)
		if canon == "" {
			return false
		}
		addTerm(terms, &affTerm{name: types.ExprString(v), canon: canon}, scale)
		return true
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD:
			return rc.affineInto(v.X, scale, terms, k, depth+1) &&
				rc.affineInto(v.Y, scale, terms, k, depth+1)
		case token.SUB:
			return rc.affineInto(v.X, scale, terms, k, depth+1) &&
				rc.affineInto(v.Y, -scale, terms, k, depth+1)
		case token.MUL:
			if c, ok := rc.constOf(v.X); ok {
				return rc.affineInto(v.Y, scale*c, terms, k, depth+1)
			}
			if c, ok := rc.constOf(v.Y); ok {
				return rc.affineInto(v.X, scale*c, terms, k, depth+1)
			}
			return false
		}
		return false
	case *ast.UnaryExpr:
		if v.Op == token.SUB {
			return rc.affineInto(v.X, -scale, terms, k, depth+1)
		}
		return false
	case *ast.CallExpr:
		// Conversion: transparent for index arithmetic.
		if tv, ok := rc.tp.info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return rc.affineInto(v.Args[0], scale, terms, k, depth+1)
		}
		// len(x) over a stable expression is an invariant atom.
		if id, ok := unparen(v.Fun).(*ast.Ident); ok && id.Name == "len" && len(v.Args) == 1 {
			if key := canonString(rc.tp, v.Args[0]); key != "" {
				addTerm(terms, &affTerm{name: types.ExprString(v)}, scale)
				return true
			}
		}
		return false
	}
	return false
}

func addTerm(terms map[string]*affTerm, t *affTerm, scale int64) {
	key := t.name
	if t.obj != nil {
		key = t.name + "#" + t.obj.Id()
	} else if t.canon != "" {
		key = t.canon
	}
	if have := terms[key]; have != nil {
		have.coef += scale
		return
	}
	t.coef = scale
	terms[key] = t
}

func constInt64(v interface{ ExactString() string }) (int64, bool) {
	// go/constant values: use the exact string for small integers.
	s := v.ExactString()
	var n int64
	neg := false
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
		if n < 0 {
			return 0, false
		}
	}
	if neg {
		n = -n
	}
	return n, true
}

func (rc *regionCheck) constOf(e ast.Expr) (int64, bool) {
	if tv, ok := rc.tp.info.Types[unparen(e)]; ok && tv.Value != nil {
		return constInt64(tv.Value)
	}
	return 0, false
}

// foldable reports whether an identifier can be replaced by its
// single straight-line definition.
func (rc *regionCheck) foldable(obj types.Object) bool {
	if !rc.locals[obj] {
		return false
	}
	fx := rc.facts[obj]
	return fx != nil && fx.def != nil && fx.assigns == 0 && !fx.isLoop && !fx.addrTaken
}

// foldIdent resolves an identifier chain through single definitions.
// allowShrink additionally accepts variables whose only reassignments
// are shrink guards (caps that only lower the value).
func (rc *regionCheck) foldIdent(e ast.Expr, allowShrink bool) ast.Expr {
	for depth := 0; depth < 8; depth++ {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return e
		}
		obj := rc.objOf(id)
		if obj == nil || !rc.locals[obj] {
			return e
		}
		fx := rc.facts[obj]
		if fx == nil || fx.def == nil || fx.isLoop || fx.addrTaken {
			return e
		}
		if fx.assigns > 0 && !(allowShrink && fx.shrinkOnly) {
			return e
		}
		e = fx.def
	}
	return e
}

// invariantTerm reports whether a term's value is the same for every
// concurrent invocation of the region.
func (rc *regionCheck) invariantTerm(t *affTerm) bool {
	if t.obj != nil {
		if rc.locals[t.obj] {
			return false // unfoldable local: varies within the region
		}
		fx := rc.facts[t.obj]
		return fx == nil || fx.assigns == 0
	}
	// Selector / len atom: invariant unless the region assigns it.
	return t.canon == "" || !rc.fieldWr[t.canon]
}

// unwrapConv strips parens and type conversions.
func (rc *regionCheck) unwrapConv(e ast.Expr) ast.Expr {
	for depth := 0; depth < 8; depth++ {
		e = unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := rc.tp.info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
	return e
}
