package lint

import (
	"fmt"
	"go/ast"
	"go/token"

	"repro/internal/core"
)

// checkFiles runs the role-scoped rules over every parsed file:
//
//	bench    census cross-checks + containment + race heuristics
//	example  unchecked-in-example + race heuristics
//	kernel   race heuristics (constructs feed bench evidence)
//	substrate censused only, never linted
func (a *analysis) checkFiles() {
	for _, pkg := range a.sortedPkgs() {
		if pkg.role == RoleSubstrate {
			continue
		}
		for _, f := range pkg.files {
			a.checkMarkers(f)
			switch pkg.role {
			case RoleBench:
				a.checkBenchFile(f)
			case RoleExample:
				a.checkExampleFile(f)
			}
			a.checkRaces(f)
		}
	}
}

// checkMarkers flags //lint:scared markers with no reason: an audited
// escape hatch with no audit trail is worse than none.
func (a *analysis) checkMarkers(f *fileInfo) {
	for line, reason := range f.markers {
		if reason == "" {
			a.report(Diag{
				File: f.rel, Line: line, Col: 1,
				Rule: "bad-marker",
				Msg:  "//lint:scared marker without a reason; write //lint:scared <why this is safe>",
			})
		}
	}
}

// markerFor reports whether a node is covered by a //lint:scared
// marker: on the same line, on the line above, or anywhere in the doc
// comment of the enclosing top-level function.
func (a *analysis) markerFor(f *fileInfo, n ast.Node) bool {
	line := a.fset.Position(n.Pos()).Line
	if r, ok := f.markers[line]; ok && r != "" {
		return true
	}
	if r, ok := f.markers[line-1]; ok && r != "" {
		return true
	}
	for _, decl := range f.ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || n.Pos() < fd.Pos() || n.Pos() > fd.End() {
			continue
		}
		lo := a.fset.Position(fd.Doc.Pos()).Line
		hi := a.fset.Position(fd.Doc.End()).Line
		for l := lo; l <= hi; l++ {
			if r, ok := f.markers[l]; ok && r != "" {
				return true
			}
		}
	}
	return false
}

// checkBenchFile cross-checks one bench file against the static census:
// undeclared patterns, scared-construct containment, stale irregular
// declarations.
func (a *analysis) checkBenchFile(f *fileInfo) {
	benches, declared := a.census.benchesDeclaredIn(f.rel)
	bench := ""
	if len(benches) == 1 {
		bench = benches[0]
	}
	anyIrregular := false
	for p := range declared {
		if p.Irregular() {
			anyIrregular = true
		}
	}

	// A scared construct is contained when the file declares some
	// irregular site (the declaration is the audit record), the
	// construct carries an explicit marker, or a current certificate
	// proves the site safe (certified / elidable-check in
	// lint-certs.json).
	contained := func(n ast.Node) bool {
		if anyIrregular || a.markerFor(f, n) {
			return true
		}
		return a.certCovered(f.rel, a.fset.Position(n.Pos()).Line)
	}
	scared := func(n ast.Node, what string, pattern core.Pattern) {
		if contained(n) {
			return
		}
		pos := a.fset.Position(n.Pos())
		pat := ""
		if pattern != 0 {
			pat = pattern.String()
		}
		a.report(Diag{
			File: f.rel, Line: pos.Line, Col: pos.Column,
			Rule: "undeclared-scared", Bench: bench,
			Pattern: pat, Fear: core.Scared.String(),
			Msg: fmt.Sprintf("%s without an irregular DeclareSite(SngInd|RngInd|AW) in this file or a //lint:scared marker", what),
		})
	}

	ast.Inspect(f.ast, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			scared(v, "raw go statement", 0)
		case *ast.ValueSpec:
			if v.Type != nil && declConstruct(f, v.Type)&cScared != 0 {
				scared(v, fmt.Sprintf("raw %s declaration", typeName(v.Type)), core.AW)
			}
		case *ast.StructType:
			for _, field := range v.Fields.List {
				if declConstruct(f, field.Type)&cScared != 0 {
					scared(field, fmt.Sprintf("raw %s field", typeName(field.Type)), core.AW)
				}
			}
		case *ast.CallExpr:
			cc, mask, ok := classifyCall(f, v)
			if !ok {
				return true
			}
			switch {
			case mask&cScared != 0:
				what := "sync/atomic use"
				if cc.name != "" {
					what = "core." + cc.name + " call"
				}
				scared(v, what, cc.pattern)
			case cc.pattern != 0 && !declared[cc.pattern]:
				pos := a.fset.Position(v.Pos())
				a.report(Diag{
					File: f.rel, Line: pos.Line, Col: pos.Column,
					Rule: "undeclared-pattern", Bench: bench,
					Pattern: cc.pattern.String(), Fear: cc.fear.String(),
					Msg: fmt.Sprintf("core.%s is a %s-pattern site but this file declares no %s DeclareSite",
						cc.name, cc.pattern, cc.pattern),
				})
			}
		}
		return true
	})

	a.checkStale(f, declared)
}

// typeName renders a type expression for a diagnostic.
func typeName(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.StarExpr:
		return "*" + typeName(v.X)
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name + "." + v.Sel.Name
		}
	case *ast.Ident:
		return v.Name
	}
	return "sync"
}

// staleEvidence maps each irregular pattern to the construct classes
// that justify declaring it. Regular patterns (RO/Stride/Block/D&C) are
// not checked for staleness: their absence is not statically decidable
// (a Stride declaration may describe a loop the census classifies under
// a different primitive).
var staleEvidence = map[core.Pattern]construct{
	core.SngInd: cSngInd | cUncheckedSng | cAnySync,
	core.RngInd: cRngInd | cUncheckedRng | cAnySync,
	core.AW:     cUncheckedSng | cUncheckedRng | cAnySync,
}

// checkStale flags irregular declarations with no supporting construct
// reachable from the declaring file's functions — a census entry that
// claims scary behavior the code no longer has.
func (a *analysis) checkStale(f *fileInfo, declared map[core.Pattern]bool) {
	var evidence construct
	computed := false
	for _, site := range a.census.Sites {
		if site.File != f.rel || !site.pattern.Irregular() {
			continue
		}
		if !computed {
			evidence = a.reachableMask(a.fileFuncs(f))
			computed = true
		}
		if evidence&staleEvidence[site.pattern] == 0 {
			a.report(Diag{
				File: f.rel, Line: site.Line, Col: 1,
				Rule: "stale-declaration", Bench: site.Bench,
				Pattern: site.Pattern,
				Msg: fmt.Sprintf("site %q declares %s but no %s-class construct is reachable from this file's kernels",
					site.Label, site.Pattern, site.Pattern),
			})
		}
	}
}

// checkExampleFile forbids unchecked primitives in examples: end-user
// documentation must stay on the Fearless/Comfortable surface.
func (a *analysis) checkExampleFile(f *fileInfo) {
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cc, mask, ok := classifyCall(f, call)
		if !ok || mask&(cUncheckedSng|cUncheckedRng) == 0 {
			return true
		}
		pos := a.fset.Position(call.Pos())
		if a.certCovered(f.rel, pos.Line) {
			return true // proved unique/monotone: Fearless under certificate
		}
		a.report(Diag{
			File: f.rel, Line: pos.Line, Col: pos.Column,
			Rule:    "unchecked-in-example",
			Pattern: cc.pattern.String(), Fear: core.Scared.String(),
			Msg: fmt.Sprintf("core.%s is forbidden in examples; use core.%s (Comfortable) instead",
				cc.name, checkedVariant(cc.name)),
		})
		return true
	})
}

// checkedVariant names the checked primitive an unchecked call should
// use instead.
func checkedVariant(name string) string {
	switch name {
	case "IndForEachUnchecked", "ScatterAtomic32":
		return "IndForEach"
	case "IndChunksUnchecked":
		return "IndChunks"
	}
	return name
}

// checkRaces runs the race heuristics over one file: writes inside
// Fearless/Comfortable primitive bodies that cannot be tied to the task
// index, and Worker values escaping into raw goroutines.
func (a *analysis) checkRaces(f *fileInfo) {
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := callTarget(f, call)
		if !ok || !isPath(path, corePath) {
			return true
		}
		argIdxs, hasBody := parallelBodyArg[name]
		if !hasBody || (len(call.Args) > 0 && isNilIdent(call.Args[0])) {
			return true
		}
		for _, idx := range argIdxs {
			if idx >= len(call.Args) {
				continue
			}
			if lit, ok := call.Args[idx].(*ast.FuncLit); ok {
				a.checkParallelBody(f, name, lit)
			}
		}
		return true
	})

	for _, decl := range f.ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		a.checkWorkerEscape(f, fd)
		a.checkJoinSharedWrites(f, fd)
	}
}

// checkJoinSharedWrites flags a captured scalar written in both branches
// of one Worker.Join call. The branches may run concurrently on
// different workers, so such a write races — the hand-rolled "join
// latch" anti-pattern the scheduler's internal join frames exist to
// encapsulate (frames pair the flag with an atomic latch; see
// docs/SCHED.md). Disjoint per-branch accumulators (x in one branch, y
// in the other) are the fearless D&C shape and pass untouched.
func (a *analysis) checkJoinSharedWrites(f *fileInfo, fd *ast.FuncDecl) {
	workers := workerIdents(f, fd)
	if len(workers) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Join" {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok || !workers[recv.Name] {
			return true
		}
		la, aok := call.Args[0].(*ast.FuncLit)
		lb, bok := call.Args[1].(*ast.FuncLit)
		if !aok || !bok {
			return true
		}
		first := capturedScalarWrites(la)
		second := capturedScalarWrites(lb)
		for name, id := range second {
			if _, both := first[name]; !both {
				continue
			}
			if a.markerFor(f, id) {
				continue
			}
			pos := a.fset.Position(id.Pos())
			a.report(Diag{
				File: f.rel, Line: pos.Line, Col: pos.Column,
				Rule: "join-branch-shared-write", Fear: core.Scared.String(),
				Msg: fmt.Sprintf("captured variable %q is written by both branches of %s.Join; the branches may run concurrently (use per-branch accumulators or an atomic)",
					name, recv.Name),
			})
		}
		return true
	})
}

// capturedScalarWrites collects the non-local scalar identifiers a
// closure assigns to, keyed by name with one representative site.
func capturedScalarWrites(lit *ast.FuncLit) map[string]*ast.Ident {
	locals := closureLocals(lit)
	writes := map[string]*ast.Ident{}
	record := func(lhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || locals[id.Name] {
			return
		}
		if _, seen := writes[id.Name]; !seen {
			writes[id.Name] = id
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range v.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(v.X)
		}
		return true
	})
	return writes
}

// checkParallelBody inspects one closure passed as a primitive's
// per-task body. Writes to captured state are suspect unless the target
// index depends on a closure-local value (the task index or something
// derived from it).
func (a *analysis) checkParallelBody(f *fileInfo, prim string, lit *ast.FuncLit) {
	locals := closureLocals(lit)
	check := func(lhs ast.Expr) {
		switch t := lhs.(type) {
		case *ast.Ident:
			if t.Name == "_" || locals[t.Name] {
				return
			}
			if a.markerFor(f, t) {
				return
			}
			pos := a.fset.Position(t.Pos())
			a.report(Diag{
				File: f.rel, Line: pos.Line, Col: pos.Column,
				Rule: "captured-scalar-write", Fear: core.Scared.String(),
				Msg: fmt.Sprintf("write to captured variable %q inside a core.%s body races across tasks; use a reduction or an atomic",
					t.Name, prim),
			})
		case *ast.IndexExpr:
			root := rootIdent(t.X)
			if root == nil || locals[root.Name] {
				return
			}
			if usesLocal(t.Index, locals) {
				return
			}
			if a.markerFor(f, t) {
				return
			}
			pos := a.fset.Position(t.Pos())
			a.report(Diag{
				File: f.rel, Line: pos.Line, Col: pos.Column,
				Rule: "captured-write-nonindex", Fear: core.Scared.String(),
				Msg: fmt.Sprintf("write to captured slice %q at an index unrelated to the task index inside a core.%s body; tasks may collide",
					root.Name, prim),
			})
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range v.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(v.X)
		}
		return true
	})
}

// closureLocals collects every identifier a closure (or its nested
// closures) declares: parameters, :=, var, and range variables. An
// index expression touching any of these is treated as task-derived.
func closureLocals(lit *ast.FuncLit) map[string]bool {
	locals := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				locals[name.Name] = true
			}
		}
	}
	addFields(lit.Type.Params)
	addFields(lit.Type.Results)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range v.Names {
				locals[name.Name] = true
			}
		case *ast.RangeStmt:
			if v.Tok == token.DEFINE {
				for _, e := range []ast.Expr{v.Key, v.Value} {
					if id, ok := e.(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.FuncLit:
			addFields(v.Type.Params)
			addFields(v.Type.Results)
		}
		return true
	})
	return locals
}

// rootIdent unwraps an index/selector/paren/star chain to its base
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// usesLocal reports whether an expression mentions any closure-local
// identifier.
func usesLocal(e ast.Expr, locals map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && locals[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// checkWorkerEscape flags *core.Worker values crossing into raw
// goroutines. A Worker is bound to the structured fork/join tree; using
// it from an unstructured goroutine breaks the D&C discipline the
// census relies on.
func (a *analysis) checkWorkerEscape(f *fileInfo, fd *ast.FuncDecl) {
	workers := workerIdents(f, fd)
	if len(workers) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		escaped := ""
		ast.Inspect(g.Call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && workers[id.Name] {
				escaped = id.Name
				return false
			}
			return true
		})
		if escaped == "" || a.markerFor(f, g) {
			return true
		}
		pos := a.fset.Position(g.Pos())
		a.report(Diag{
			File: f.rel, Line: pos.Line, Col: pos.Column,
			Rule: "worker-escape", Fear: core.Scared.String(),
			Msg: fmt.Sprintf("worker %q escapes into a raw goroutine; workers are bound to the structured join tree (use w.Join or core.Run)",
				escaped),
		})
		return true
	})
}

// workerIdents gathers the identifiers of *core.Worker / *sched.Worker
// values bound in fd: the receiver, parameters, and parameters of any
// nested closure (p.Do(func(w *core.Worker) { ... }) binds w).
func workerIdents(f *fileInfo, fd *ast.FuncDecl) map[string]bool {
	workers := map[string]bool{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if !isWorkerType(f, field.Type) {
				continue
			}
			for _, name := range field.Names {
				workers[name.Name] = true
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			collectLit(f, lit, workers)
		}
		return true
	})
	return workers
}

func collectLit(f *fileInfo, lit *ast.FuncLit, workers map[string]bool) {
	if lit.Type.Params == nil {
		return
	}
	for _, field := range lit.Type.Params.List {
		if !isWorkerType(f, field.Type) {
			continue
		}
		for _, name := range field.Names {
			workers[name.Name] = true
		}
	}
}

// isWorkerType recognizes core.Worker / sched.Worker (optionally
// pointer) type expressions.
func isWorkerType(f *fileInfo, t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Worker" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	path, imported := f.imports[id.Name]
	return imported && (isPath(path, corePath) || isPath(path, schedPath))
}
