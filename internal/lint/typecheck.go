package lint

// The certification pass (certify.go, provenance.go) needs real type
// information: the syntactic engine cannot tell two variables named
// "offsets" apart, and offset provenance is a statement about one
// *types.Var. This file loads it with the standard library only:
// in-module packages are type-checked recursively from the ASTs
// parseModule already produced, the standard library is resolved by the
// go/importer "source" importer, and anything that cannot be resolved
// is replaced by an empty stub package. Type errors are collected, not
// fatal — go/types keeps checking past them and still records the
// def/use information the provenance analysis resolves identifiers
// with, so a package with unresolved corners simply has its affected
// sites refused instead of crashing the pass.

import (
	"go/ast"
	"go/importer"
	"go/types"
	"strings"
)

// typedPkg is one in-module package with full type information.
type typedPkg struct {
	pkg  *pkgInfo
	tpkg *types.Package
	info *types.Info
	errs []error // collected type errors (informational)
}

// typeLoader memoizes type checking across packages of one analysis,
// and the interprocedural function summaries built on top of it
// (summary.go).
type typeLoader struct {
	a        *analysis
	std      types.Importer
	checked  map[string]*typedPkg
	inflight map[string]bool
	stubs    map[string]*types.Package

	sums        map[sumKey]*fnSummary
	sumInflight map[sumKey]bool

	nnSums     map[*types.Func]bool
	nnInflight map[*types.Func]bool
}

func newTypeLoader(a *analysis) *typeLoader {
	return &typeLoader{
		a:           a,
		std:         importer.ForCompiler(a.fset, "source", nil),
		checked:     map[string]*typedPkg{},
		inflight:    map[string]bool{},
		stubs:       map[string]*types.Package{},
		sums:        map[sumKey]*fnSummary{},
		sumInflight: map[sumKey]bool{},
		nnSums:      map[*types.Func]bool{},
		nnInflight:  map[*types.Func]bool{},
	}
}

// Import implements types.Importer: module-internal paths re-enter the
// recursive checker, everything else goes to the source importer with a
// stub fallback.
func (l *typeLoader) Import(path string) (*types.Package, error) {
	if rel, ok := l.a.modRel(path); ok {
		if tp := l.check(rel); tp != nil && tp.tpkg != nil {
			return tp.tpkg, nil
		}
		return l.stub(path), nil
	}
	if l.std != nil {
		if p, err := l.std.Import(path); err == nil && p != nil {
			return p, nil
		}
	}
	return l.stub(path), nil
}

// stub synthesizes an empty, complete package so checking can continue;
// selections into it produce ordinary type errors, which are collected.
func (l *typeLoader) stub(path string) *types.Package {
	if p, ok := l.stubs[path]; ok {
		return p
	}
	name := path[strings.LastIndex(path, "/")+1:]
	p := types.NewPackage(path, name)
	p.MarkComplete()
	l.stubs[path] = p
	return p
}

// check type-checks one in-module package (memoized; nil for unknown
// directories and import cycles).
func (l *typeLoader) check(rel string) *typedPkg {
	if tp, done := l.checked[rel]; done {
		return tp
	}
	pkg := l.a.pkgs[rel]
	if pkg == nil || len(pkg.files) == 0 || l.inflight[rel] {
		l.checked[rel] = nil
		return nil
	}
	l.inflight[rel] = true
	defer func() { l.inflight[rel] = false }()

	tp := &typedPkg{
		pkg: pkg,
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Instances:  map[*ast.Ident]types.Instance{},
		},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { tp.errs = append(tp.errs, err) },
	}
	var files []*ast.File
	for _, f := range pkg.files {
		files = append(files, f.ast)
	}
	importPath := l.a.mod
	if rel != "" {
		importPath = l.a.mod + "/" + rel
	}
	tp.tpkg, _ = conf.Check(importPath, l.a.fset, files, tp.info)
	l.checked[rel] = tp
	return tp
}
