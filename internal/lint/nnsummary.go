package lint

// Interprocedural non-negativity summaries: the scan proof
// (provenance.go proveScan) demands that every value written into the
// offsets buffer before the prefix sum is provably >= 0, and real
// encoders compute those values in a helper — the compressed-CSR
// builder fills `offsets[v+1] = int64(encRowSize(v, row))` where the
// size computation lives three calls deep in the codec. Inlining is
// out of scope for a syntactic certifier, so nnExpr instead asks this
// file one question per callee: is every value this function returns
// non-negative, independent of its arguments?
//
// The answer is built by running the same non-negativity fixpoint
// (prover.ensureNN) inside the callee and checking each return
// expression with nnExpr there. Parameters are never in the callee's
// assumption set unless unsigned-typed, so a "yes" holds for all
// inputs; recursion is cut by an inflight set (a back edge answers
// "no", which is always sound). The result is memoized per *types.Func
// on the typeLoader, like the slice summaries in summary.go.

import (
	"go/ast"
	"go/types"
)

// nnSummaryFor reports (memoized) whether fn provably returns only
// non-negative values regardless of its arguments. false means
// "unproven", never "negative".
func (l *typeLoader) nnSummaryFor(fn *types.Func) bool {
	if ok, done := l.nnSums[fn]; done {
		return ok
	}
	if l.nnInflight[fn] {
		return false // recursion: no induction across back edges
	}
	l.nnInflight[fn] = true
	defer delete(l.nnInflight, fn)
	ok := l.buildNNSummary(fn)
	l.nnSums[fn] = ok
	return ok
}

func (l *typeLoader) buildNNSummary(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	rel, inModule := l.a.modRel(fn.Pkg().Path())
	if !inModule {
		return false
	}
	tp := l.check(rel)
	if tp == nil || tp.tpkg == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Variadic() || sig.Recv() != nil {
		return false // receiver state is not modeled
	}
	if sig.Results().Len() != 1 || !isIntType(sig.Results().At(0).Type()) {
		return false
	}

	// Locate the declaration and its file.
	var fd *ast.FuncDecl
	var file *fileInfo
	for _, f := range tp.pkg.files {
		for _, decl := range f.ast.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			if tp.info.Defs[d.Name] == fn {
				fd, file = d, f
				break
			}
		}
		if fd != nil {
			break
		}
	}
	if fd == nil {
		return false
	}

	sp := newProver(l.a, tp, file, fd, l)
	sp.ensureNN()
	returns, allNN := 0, true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // closure returns are not fn's returns
		}
		r, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		returns++
		if len(r.Results) != 1 || !sp.nnExpr(r.Results[0]) {
			allNN = false
		}
		return true
	})
	return returns > 0 && allNN
}
