package lint

// regionCheck classifies every shared write in one parallel region
// (races.go). The walk is statement-ordered so mutex state is tracked
// linearly; expressions are scanned for call effects; nested region
// bodies (claimed closures) are skipped — they are regions of their
// own.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// coreAtomicHelpers are the core package's AW primitives: every write
// they perform goes through sync/atomic.
var coreAtomicHelpers = map[string]bool{
	"WriteMin32": true, "WriteMin64": true, "WriteMax32": true,
	"WriteMinU32": true, "WriteMinU64": true, "CASLoop32": true,
	"SetBit": true, "ScatterAtomic32": true,
}

// atomicWriteMethods are the mutating methods of sync/atomic types (and
// of the atomic package itself, by prefix).
var atomicWriteMethods = map[string]bool{
	"Store": true, "Add": true, "Swap": true, "CompareAndSwap": true,
	"Or": true, "And": true,
}

// syncCleanMethods are sync-package methods that synchronize without
// writing user state.
var syncCleanMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "Wait": true, "Add": true, "Done": true,
	"Signal": true, "Broadcast": true,
}

// stdlibMutators are standard-library functions that write through
// their arguments; everything else out-of-module is assumed read-only.
var stdlibMutators = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "rand.Shuffle": true, "copy": true,
}

type regionCheck struct {
	rp    *racePass
	tp    *typedPkg
	f     *fileInfo
	fd    *ast.FuncDecl
	r     *raceRegion
	sites []RaceSite

	locals    map[types.Object]bool
	recv      types.Object // RunRange region receiver: shared across invocations
	facts     map[types.Object]*raceFact
	loops     map[types.Object]*raceLoop
	fieldWr   map[string]bool             // selector atoms assigned in the region ("s.block")
	funcBinds map[types.Object][]ast.Expr // func-typed local bindings over the whole enclosing function

	held []string // canonical strings of currently held write locks

	taskMemo map[types.Object]taskRes
}

type raceFact struct {
	def        ast.Expr // 1:1 define RHS (nil for tuple defines)
	assigns    int
	shrinkOnly bool // all reassignments are shrink guards (if x > y { x = y })
	addrTaken  bool
	isLoop     bool
}

type raceLoop struct{ lo, hi ast.Expr }

type taskRes struct {
	detail string
	ok     bool
}

func newRegionCheck(rp *racePass, tp *typedPkg, f *fileInfo, fd *ast.FuncDecl, r *raceRegion) *regionCheck {
	return &regionCheck{
		rp: rp, tp: tp, f: f, fd: fd, r: r,
		locals:    map[types.Object]bool{},
		facts:     map[types.Object]*raceFact{},
		loops:     map[types.Object]*raceLoop{},
		fieldWr:   map[string]bool{},
		funcBinds: map[types.Object][]ast.Expr{},
		taskMemo:  map[types.Object]taskRes{},
	}
}

func (rc *regionCheck) run() {
	if rc.r.body == nil {
		return
	}
	if rc.fd.Recv != nil && rc.r.kind == "RangeBody.RunRange" && len(rc.fd.Recv.List) > 0 {
		fld := rc.fd.Recv.List[0]
		if len(fld.Names) > 0 {
			rc.recv = rc.tp.info.Defs[fld.Names[0]]
		}
	}
	rc.collectFacts()
	rc.collectFuncBinds()
	rc.walkStmts(rc.r.body.List)
}

// collectFuncBinds records every binding of a func-typed local across
// the whole enclosing function. The binding that matters for a call
// inside the region — f := c.bump before ForRange(..., func(i int) {
// f() }) — usually sits outside the region body, so the region-scoped
// facts never see it. Tuple-bound func values record a nil binding,
// which boundCallee treats as unresolvable.
func (rc *regionCheck) collectFuncBinds() {
	mark := func(lhs, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := rc.objOf(id)
		if obj == nil {
			return
		}
		if _, isSig := obj.Type().Underlying().(*types.Signature); !isSig {
			return
		}
		rc.funcBinds[obj] = append(rc.funcBinds[obj], rhs)
	}
	ast.Inspect(rc.fd, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i := range v.Lhs {
					mark(v.Lhs[i], v.Rhs[i])
				}
			} else {
				for _, lhs := range v.Lhs {
					mark(lhs, nil)
				}
			}
		case *ast.ValueSpec:
			for i, nm := range v.Names {
				switch {
				case len(v.Values) == len(v.Names):
					mark(nm, v.Values[i])
				case len(v.Values) > 0:
					mark(nm, nil)
				}
				// No initializer: a nil func value, never callable —
				// any later binding stands alone.
			}
		}
		return true
	})
}

// boundCallee resolves a func-typed local bound exactly once in the
// enclosing function to a method value or named function.
func (rc *regionCheck) boundCallee(obj types.Object) (*types.Func, ast.Expr) {
	binds := rc.funcBinds[obj]
	if len(binds) != 1 {
		return nil, nil
	}
	return methodValueBinding(rc.tp, binds[0])
}

// ---------------------------------------------------------------------
// Facts pass
// ---------------------------------------------------------------------

// collectFacts records, over the whole region body (including nested
// closures), which objects are region-local, their single-definition
// RHS, reassignment counts, loop bounds, and which selector atoms are
// assigned.
func (rc *regionCheck) collectFacts() {
	fact := func(obj types.Object) *raceFact {
		if obj == nil {
			return &raceFact{}
		}
		fx := rc.facts[obj]
		if fx == nil {
			fx = &raceFact{}
			rc.facts[obj] = fx
		}
		return fx
	}
	ast.Inspect(rc.r.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if obj := rc.tp.info.Defs[v]; obj != nil {
				rc.locals[obj] = true
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if id, ok := unparen(v.X).(*ast.Ident); ok {
					fact(rc.objOf(id)).addrTaken = true
				}
			}
		case *ast.AssignStmt:
			switch v.Tok {
			case token.DEFINE:
				if len(v.Lhs) == len(v.Rhs) {
					for i, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := rc.tp.info.Defs[id]; obj != nil {
								fx := fact(obj)
								if fx.def != nil {
									fx.assigns++ // redefinition in a nested scope
								} else {
									fx.def = v.Rhs[i]
								}
							}
						}
					}
				} else {
					for _, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := rc.tp.info.Defs[id]; obj != nil {
								fact(obj) // tuple define: no foldable RHS
							}
						}
					}
				}
			default:
				for _, lhs := range v.Lhs {
					switch t := unparen(lhs).(type) {
					case *ast.Ident:
						if obj := rc.objOf(t); obj != nil {
							fx := fact(obj)
							fx.assigns++
							if rc.isShrinkAssign(v, t) {
								fx.shrinkOnly = fx.assigns == 1 || fx.shrinkOnly
							} else {
								fx.shrinkOnly = false
							}
						}
					case *ast.SelectorExpr:
						if s := canonString(rc.tp, t); s != "" {
							rc.fieldWr[s] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(v.X).(*ast.Ident); ok {
				if obj := rc.objOf(id); obj != nil {
					fx := fact(obj)
					fx.assigns++
					fx.shrinkOnly = false
				}
			}
		case *ast.ForStmt:
			rc.recordForLoop(v, fact)
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := rc.tp.info.Defs[id]; obj != nil {
						rc.locals[obj] = true
						fact(obj).isLoop = true
					}
				}
			}
		}
		return true
	})
	// Region params are locals too.
	for obj := range rc.r.task {
		rc.locals[obj] = true
	}
	for obj := range rc.r.handed {
		rc.locals[obj] = true
	}
	for _, obj := range []types.Object{rc.r.rangeLo, rc.r.rangeHi, rc.r.worker} {
		if obj != nil {
			rc.locals[obj] = true
		}
	}
}

// recordForLoop registers `for i := LO; i < HI; i++` shapes.
func (rc *regionCheck) recordForLoop(v *ast.ForStmt, fact func(types.Object) *raceFact) {
	as, ok := v.Init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := rc.tp.info.Defs[id]
	if obj == nil {
		return
	}
	rc.locals[obj] = true
	fact(obj).isLoop = true
	cond, ok := v.Cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	condID, ok := unparen(cond.X).(*ast.Ident)
	if !ok || rc.objOf(condID) != obj {
		return
	}
	switch cond.Op {
	case token.LSS:
		rc.loops[obj] = &raceLoop{lo: as.Rhs[0], hi: cond.Y}
	case token.LEQ:
		// i <= X is i < X+1; bound shape is still "starts at lo" which
		// is all the owner rules need exactly, so record lo only.
		rc.loops[obj] = &raceLoop{lo: as.Rhs[0]}
	}
}

// isShrinkAssign reports whether this assignment is the body of a
// shrink guard `if x > Y { x = Y }` (or >=) — a cap that keeps x at or
// below its defined value, which the block-owner rule tolerates.
func (rc *regionCheck) isShrinkAssign(as *ast.AssignStmt, id *ast.Ident) bool {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	path := enclosingPath(rc.r.body, as.Pos())
	for i := len(path) - 1; i >= 0; i-- {
		ifs, ok := path[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if len(ifs.Body.List) != 1 {
			return false
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.GTR && cond.Op != token.GEQ) {
			return false
		}
		cid, ok := unparen(cond.X).(*ast.Ident)
		if !ok || rc.objOf(cid) != rc.objOf(id) {
			return false
		}
		return exprEq(rc.tp, cond.Y, as.Rhs[0])
	}
	return false
}

// ---------------------------------------------------------------------
// Statement walk
// ---------------------------------------------------------------------

func (rc *regionCheck) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		rc.walkStmt(s)
	}
}

func (rc *regionCheck) walkStmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(v.X).(*ast.CallExpr); ok && rc.lockOp(call, false) {
			return
		}
		rc.scanExpr(v.X)
	case *ast.DeferStmt:
		if rc.lockOp(v.Call, true) {
			return
		}
		rc.scanExpr(v.Call)
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			rc.scanExpr(rhs)
		}
		if v.Tok == token.DEFINE {
			for _, lhs := range v.Lhs {
				if _, ok := lhs.(*ast.Ident); !ok {
					rc.classifyWrite(lhs) // mixed define/assign
				}
			}
			return
		}
		for _, lhs := range v.Lhs {
			rc.scanWriteSubexprs(lhs)
			rc.classifyWrite(lhs)
		}
	case *ast.IncDecStmt:
		rc.scanWriteSubexprs(v.X)
		rc.classifyWrite(v.X)
	case *ast.SendStmt:
		rc.scanExpr(v.Chan)
		rc.scanExpr(v.Value) // channel sends synchronize; no site
	case *ast.GoStmt:
		if lit, ok := unparen(v.Call.Fun).(*ast.FuncLit); ok && rc.r.claimed[lit] {
			for _, a := range v.Call.Args {
				rc.scanExpr(a)
			}
			return
		}
		rc.refuse(v, types.ExprString(v.Call.Fun),
			"goroutine launch through %s: the spawned code is not a lexical region this pass can certify", types.ExprString(v.Call.Fun))
	case *ast.IfStmt:
		if v.Init != nil {
			rc.walkStmt(v.Init)
		}
		rc.scanExpr(v.Cond)
		rc.walkStmts(v.Body.List)
		if v.Else != nil {
			rc.walkStmt(v.Else)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			rc.walkStmt(v.Init)
		}
		if v.Cond != nil {
			rc.scanExpr(v.Cond)
		}
		if v.Post != nil {
			rc.walkStmt(v.Post)
		}
		rc.walkStmts(v.Body.List)
	case *ast.RangeStmt:
		rc.scanExpr(v.X)
		if v.Tok == token.ASSIGN {
			rc.classifyWrite(v.Key)
			if v.Value != nil {
				rc.classifyWrite(v.Value)
			}
		}
		rc.walkStmts(v.Body.List)
	case *ast.SwitchStmt:
		if v.Init != nil {
			rc.walkStmt(v.Init)
		}
		if v.Tag != nil {
			rc.scanExpr(v.Tag)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					rc.scanExpr(e)
				}
				rc.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			rc.walkStmt(v.Init)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				rc.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					rc.walkStmt(cc.Comm)
				}
				rc.walkStmts(cc.Body)
			}
		}
	case *ast.BlockStmt:
		rc.walkStmts(v.List)
	case *ast.LabeledStmt:
		rc.walkStmt(v.Stmt)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			rc.scanExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						rc.scanExpr(e)
					}
				}
			}
		}
	}
}

// scanWriteSubexprs scans the index and base expressions of a write
// target (which may themselves contain classified calls) without
// treating the target as a read.
func (rc *regionCheck) scanWriteSubexprs(lhs ast.Expr) {
	switch v := unparen(lhs).(type) {
	case *ast.IndexExpr:
		rc.scanExpr(v.Index)
		rc.scanWriteSubexprs(v.X)
	case *ast.SelectorExpr:
		rc.scanWriteSubexprs(v.X)
	case *ast.StarExpr:
		rc.scanWriteSubexprs(v.X)
	}
}

// lockOp recognizes mutex transitions and updates the held set.
// Deferred unlocks hold for the rest of the region.
func (rc *regionCheck) lockOp(call *ast.CallExpr, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !isNamedRecv(rc.tp, sel.X, syncPath, "Mutex", "RWMutex") {
		return false
	}
	key := canonString(rc.tp, sel.X)
	switch sel.Sel.Name {
	case "Lock":
		if !deferred {
			rc.held = append(rc.held, key)
		}
		return true
	case "Unlock":
		if deferred {
			return true // lock stays held to the end of the region
		}
		for i := len(rc.held) - 1; i >= 0; i-- {
			if rc.held[i] == key {
				rc.held = append(rc.held[:i], rc.held[i+1:]...)
				break
			}
		}
		return true
	case "RLock", "RUnlock", "TryLock":
		return true
	}
	return false
}

// scanExpr walks an expression classifying call effects. Claimed
// closures (nested region bodies) are skipped; other closures are
// walked with the lock set cleared (they may run on another frame).
func (rc *regionCheck) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if rc.r.claimed[v] {
				return false
			}
			saved := rc.held
			rc.held = nil
			rc.walkStmts(v.Body.List)
			rc.held = saved
			return false
		case *ast.CallExpr:
			rc.classifyCall(v)
		}
		return true
	})
}

// ---------------------------------------------------------------------
// Call classification
// ---------------------------------------------------------------------

func (rc *regionCheck) classifyCall(call *ast.CallExpr) {
	// Package-qualified calls.
	if pathStr, name, isPkg := callTarget(rc.f, call); isPkg {
		switch {
		case isPath(pathStr, atomicPath):
			if atomicWritePrefix(name) && len(call.Args) > 0 {
				rc.site(RaceAtomic, "sync/atomic."+name, call, types.ExprString(call.Args[0]))
			}
			return
		case isPath(pathStr, corePath):
			if coreAtomicHelpers[name] {
				tgt := ""
				if len(call.Args) > 0 {
					tgt = types.ExprString(call.Args[0])
				}
				rc.site(RaceAtomic, "core."+name, call, tgt)
				return
			}
			if _, isRegion := coreRegionSpecs[name]; isRegion {
				return // nested primitive: its body is a region of its own
			}
		case isPath(pathStr, mqPath) && mqRegionFuncs[name]:
			return
		}
		// Fall through to the effect engine for other in-module
		// package calls; out-of-module handled below.
	}

	// Method calls with special receivers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isAtomicRecv(rc.tp, sel.X) {
			if atomicWriteMethods[sel.Sel.Name] {
				rc.site(RaceAtomic, "atomic."+sel.Sel.Name, call, types.ExprString(sel.X))
			}
			return
		}
		if isNamedRecv(rc.tp, sel.X, syncPath, "Mutex", "RWMutex", "WaitGroup", "Cond", "Once") {
			if syncCleanMethods[sel.Sel.Name] || sel.Sel.Name == "Do" {
				return // synchronization, not user-state writes
			}
		}
		if isWorkerExpr(rc.tp, sel.X) {
			switch sel.Sel.Name {
			case "For", "ForBody", "Join", "SpawnTask", "ForEachWorker":
				return // fork points: bodies are regions of their own
			case "Spawn":
				tgt := ""
				if len(call.Args) > 0 {
					tgt = types.ExprString(call.Args[0])
				}
				rc.refuse(call, tgt,
					"task spawned through %s is resolved dynamically; its writes are not in a lexical region", tgt)
				return
			}
		}
	}

	fn, boundRecv, delegated := rc.calleeOf(call)
	if delegated {
		return // unresolvable func value or interface method: the callee owns its writes
	}
	if fn == nil {
		// Conversions, builtins, unresolved.
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			rc.classifyBuiltin(id.Name, call)
		}
		return
	}
	if fn.Pkg() == nil {
		return
	}
	if _, inModule := rc.rp.a.modRel(fn.Pkg().Path()); !inModule {
		rc.classifyStdlibCall(fn, call)
		return
	}
	rc.classifyEffectCall(fn, call, boundRecv)
}

// classifyBuiltin handles the writing builtins.
func (rc *regionCheck) classifyBuiltin(name string, call *ast.CallExpr) {
	switch name {
	case "copy":
		if len(call.Args) == 2 {
			rc.classifyBulkWrite(call, call.Args[0], "copy")
		}
	case "delete":
		if len(call.Args) > 0 {
			rc.refuse(call, types.ExprString(call.Args[0]),
				"delete on %s: concurrent map mutation", types.ExprString(call.Args[0]))
		}
	}
}

// classifyBulkWrite classifies a whole-slice write (copy destination).
func (rc *regionCheck) classifyBulkWrite(at ast.Node, dst ast.Expr, what string) {
	base, steps, ok := peelTarget(dst)
	if !ok {
		rc.refuse(at, types.ExprString(dst), "%s into unresolved destination %s", what, types.ExprString(dst))
		return
	}
	obj := rc.objOf(base)
	switch rc.memClass(obj, steps) {
	case memHanded:
		rc.site(RaceWorkerLocal, "handed chunk", at, types.ExprString(dst))
	case memLocal:
		// region-local destination: no shared write
	case memCheckout:
		rc.site(RaceWorkerLocal, "arena checkout", at, types.ExprString(dst))
	default:
		if len(rc.held) > 0 {
			rc.site(RaceLockGuarded, "guarded by "+lockLabel(rc.held[len(rc.held)-1]), at, types.ExprString(dst))
			return
		}
		rc.refuse(at, types.ExprString(dst), "%s into shared %s: destination range not provably task-owned", what, types.ExprString(dst))
	}
}

// classifyStdlibCall: out-of-module calls are assumed read-only except
// the known mutators.
func (rc *regionCheck) classifyStdlibCall(fn *types.Func, call *ast.CallExpr) {
	key := fn.Pkg().Name() + "." + fn.Name()
	if stdlibMutators[key] && len(call.Args) > 0 {
		rc.classifyBulkWrite(call, call.Args[0], key)
	}
}

// classifyEffectCall consults the callee's memoized write-effect
// summary (raceeffect.go). boundRecv, when non-nil, is the receiver a
// method value was bound over — absent from the call syntax but
// written through all the same, so it joins the by-reference
// arguments.
func (rc *regionCheck) classifyEffectCall(fn *types.Func, call *ast.CallExpr, boundRecv ast.Expr) {
	eff := rc.rp.effectOf(fn)
	if eff.shared != "" {
		if len(rc.held) > 0 {
			rc.site(RaceLockGuarded, "guarded by "+lockLabel(rc.held[len(rc.held)-1]), call, fn.Name()+"()")
			return
		}
		rc.refuse(call, fn.Name()+"()",
			"calls %s, which writes shared state (%s) without synchronization", fn.Name(), eff.shared)
		return
	}
	if !eff.paramPlain && !eff.paramAtomic {
		return // callee confines its writes
	}
	// The callee writes through some of its parameters: the arguments
	// at written positions must hand it task-owned memory; positions
	// the summary proves read-only may carry shared data (the decoder
	// reading a shared compressed row into a task-owned buffer). Sites
	// anchor at the argument, not the call, so one call can carry
	// several verdicts.
	args := byRefArgs(rc.tp, call)
	if boundRecv != nil {
		if tv, ok := rc.tp.info.Types[boundRecv]; !ok || tv.Type == nil || !isWorkerNamed(tv.Type) {
			args = append(args, effArg{expr: boundRecv, idx: recvIdx})
		}
	}
	for _, arg := range args {
		if !eff.writesThrough(arg.idx) {
			continue // summarized read-only at this position
		}
		if rc.joinDisjointSlice(arg.expr) {
			rc.site(RaceWorkerLocal, "join-disjoint-slices", arg.expr, types.ExprString(arg.expr))
			continue
		}
		base, steps, ok := peelTarget(arg.expr)
		if !ok {
			rc.refuse(arg.expr, types.ExprString(arg.expr),
				"passes %s to %s, which writes through its parameters", types.ExprString(arg.expr), fn.Name())
			continue
		}
		obj := rc.objOf(base)
		switch rc.memClass(obj, steps) {
		case memHanded, memLocal, memCheckout:
			continue
		}
		if eff.writesAtomic(arg.idx) && !eff.writesPlain(arg.idx) {
			rc.site(RaceAtomic, "via "+fn.Name(), arg.expr, types.ExprString(arg.expr))
			continue
		}
		if len(rc.held) > 0 {
			rc.site(RaceLockGuarded, "guarded by "+lockLabel(rc.held[len(rc.held)-1]), arg.expr, types.ExprString(arg.expr))
			continue
		}
		rc.refuse(arg.expr, types.ExprString(arg.expr),
			"passes shared %s to %s, which writes through its parameters", types.ExprString(arg.expr), fn.Name())
	}
}

// joinDisjointSlice proves the D&C handout idiom: this Join branch
// passes base[l1:h1] to a mutating callee while the sibling branch
// touches base only through slice expressions provably disjoint from
// [l1, h1) — the two branches own complementary pieces.
func (rc *regionCheck) joinDisjointSlice(arg ast.Expr) bool {
	if rc.r.sibling == nil {
		return false
	}
	se, ok := unparen(arg).(*ast.SliceExpr)
	if !ok {
		return false
	}
	baseID, ok := unparen(se.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj := rc.objOf(baseID)
	if obj == nil {
		return false
	}
	// Every use of base in the sibling must be the X of a slice
	// expression whose range is disjoint from ours.
	disjointAll := true
	used := false
	ast.Inspect(rc.r.sibling, func(n ast.Node) bool {
		if !disjointAll {
			return false
		}
		id, isID := n.(*ast.Ident)
		if !isID || rc.objOf(id) != obj {
			return true
		}
		used = true
		path := enclosingPath(rc.r.sibling, id.Pos())
		// The ident's immediate parent (last node before the ident
		// itself) must be a slice expr slicing this ident.
		var parent ast.Node
		for i := len(path) - 1; i >= 0; i-- {
			if path[i] == id {
				continue
			}
			parent = path[i]
			break
		}
		other, isSlice := parent.(*ast.SliceExpr)
		if !isSlice || unparen(other.X) != ast.Expr(id) {
			disjointAll = false
			return false
		}
		if !slicesDisjoint(rc.tp, se, other) {
			disjointAll = false
			return false
		}
		return true
	})
	return used && disjointAll
}

// slicesDisjoint proves [a.Low, a.High) and [b.Low, b.High) disjoint:
// one's upper bound equals the other's lower bound (nil Low is the
// start of the slice, nil High its end).
func slicesDisjoint(tp *typedPkg, a, b *ast.SliceExpr) bool {
	boundEq := func(hi, lo ast.Expr) bool {
		if hi == nil { // runs to the end: can never precede lo
			return false
		}
		if lo == nil { // starts at 0: hi == 0 only for a degenerate slice
			return isZeroExpr(hi)
		}
		return exprEq(tp, hi, lo)
	}
	return boundEq(a.High, b.Low) || boundEq(b.High, a.Low)
}

// calleeOf resolves a call to a declared function, or reports that the
// call is delegated (func value / interface method). A func-typed
// local bound exactly once to a method value resolves to the method,
// with the bound receiver expression returned for classification —
// binding the method first must not hide the receiver write.
func (rc *regionCheck) calleeOf(call *ast.CallExpr) (fn *types.Func, boundRecv ast.Expr, delegated bool) {
	fun := unparen(call.Fun)
	switch v := fun.(type) {
	case *ast.IndexExpr:
		fun = v.X
	case *ast.IndexListExpr:
		fun = v.X
	}
	switch v := unparen(fun).(type) {
	case *ast.Ident:
		switch obj := rc.objOf(v).(type) {
		case *types.Func:
			return obj, nil, false
		case *types.Var:
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				if bf, recv := rc.boundCallee(obj); bf != nil {
					return bf, recv, false
				}
				return nil, nil, true
			}
		}
	case *ast.SelectorExpr:
		switch obj := rc.objOf(v.Sel).(type) {
		case *types.Func:
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if types.IsInterface(sig.Recv().Type()) {
					return nil, nil, true
				}
			}
			return obj, nil, false
		case *types.Var:
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				return nil, nil, true // func-typed field or variable
			}
		}
	case *ast.FuncLit:
		return nil, nil, true // immediately-invoked literal: walked directly
	}
	return nil, nil, false
}

// ---------------------------------------------------------------------
// Write classification
// ---------------------------------------------------------------------

// targetStep is one access-path step, innermost (closest to the base
// identifier) first.
type targetStep struct {
	index ast.Expr // non-nil for x[i]
	field string   // non-empty for x.f
	star  bool     // *x
}

// peelTarget decomposes a write target into its base identifier and
// access path.
func peelTarget(e ast.Expr) (*ast.Ident, []targetStep, bool) {
	var rev []targetStep
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			steps := make([]targetStep, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				steps = append(steps, rev[i])
			}
			return v, steps, true
		case *ast.IndexExpr:
			rev = append(rev, targetStep{index: v.Index})
			e = v.X
		case *ast.SelectorExpr:
			rev = append(rev, targetStep{field: v.Sel.Name})
			e = v.X
		case *ast.StarExpr:
			rev = append(rev, targetStep{star: true})
			e = v.X
		default:
			return nil, nil, false
		}
	}
}

// memory classes for a write target's base.
type memKind int

const (
	memShared memKind = iota
	memLocal          // region-local memory: no site needed
	memHanded         // handed to this invocation by the region contract
	memCheckout       // arena/box checkout: worker-local by checkout discipline
)

// memClass decides whose memory a write through obj's access path
// lands in.
func (rc *regionCheck) memClass(obj types.Object, steps []targetStep) memKind {
	if obj == nil {
		return memShared
	}
	if rc.r.handed[obj] || (rc.r.worker != nil && obj == rc.r.worker) {
		return memHanded
	}
	if v, ok := obj.(*types.Var); ok && isWorkerNamed(v.Type()) && rc.locals[obj] {
		return memHanded // the invocation's own worker handle
	}
	if obj == rc.recv {
		return memShared // a RangeBody box is shared across invocations
	}
	if !rc.locals[obj] {
		return memShared
	}
	if len(steps) == 0 {
		return memLocal // plain local variable
	}
	// Does the access path leave the variable's own storage?
	t := obj.Type()
	crosses := false
	for _, st := range steps {
		switch {
		case st.star:
			crosses = true
		case st.index != nil:
			switch t.Underlying().(type) {
			case *types.Array:
				// stays inside the variable
			default:
				crosses = true
			}
		case st.field != "":
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				crosses = true
			}
		}
		if crosses {
			break
		}
		t = stepType(t, st)
		if t == nil {
			crosses = true
			break
		}
	}
	if !crosses {
		return memLocal
	}
	switch rc.freshness(obj, 0) {
	case freshLocal:
		return memLocal
	case freshCheckout:
		return memCheckout
	}
	return memShared
}

// stepType advances a type along one in-variable access step.
func stepType(t types.Type, st targetStep) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Array:
		if st.index != nil {
			return u.Elem()
		}
	case *types.Struct:
		if st.field != "" {
			for i := 0; i < u.NumFields(); i++ {
				if u.Field(i).Name() == st.field {
					return u.Field(i).Type()
				}
			}
		}
	}
	return nil
}

type freshKind int

const (
	freshNot freshKind = iota
	freshLocal
	freshCheckout
)

// freshness reports whether a region-local variable's referent memory
// was created inside the region (make/new/composite), checked out from
// the worker's arena, or aliases something older.
func (rc *regionCheck) freshness(obj types.Object, depth int) freshKind {
	if depth > 6 || obj == nil || !rc.locals[obj] {
		return freshNot
	}
	fx := rc.facts[obj]
	if fx == nil || fx.def == nil || fx.assigns > 0 || fx.isLoop {
		return freshNot
	}
	return rc.freshExpr(fx.def, depth)
}

func (rc *regionCheck) freshExpr(e ast.Expr, depth int) freshKind {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		if v.Name == "nil" {
			return freshLocal
		}
		return rc.freshness(rc.objOf(v), depth+1)
	case *ast.CompositeLit:
		return freshLocal
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if _, ok := unparen(v.X).(*ast.CompositeLit); ok {
				return freshLocal
			}
		}
	case *ast.SliceExpr:
		return rc.freshExpr(v.X, depth+1)
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				return freshLocal
			case "append":
				if len(v.Args) > 0 {
					return rc.freshExpr(v.Args[0], depth+1)
				}
			}
		}
		if pathStr, name, isPkg := callTarget(rc.f, v); isPkg && isPath(pathStr, "internal/arena") {
			switch name {
			case "Alloc", "AllocUninit", "AcquireBox":
				return freshCheckout
			case "Standalone", "Of":
				return freshLocal
			}
		}
		// conversion wrapping a fresh expression
		if tv, ok := rc.tp.info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return rc.freshExpr(v.Args[0], depth+1)
		}
	}
	return freshNot
}

// classifyWrite classifies one write target and emits its site.
func (rc *regionCheck) classifyWrite(lhs ast.Expr) {
	target := types.ExprString(lhs)
	base, steps, ok := peelTarget(lhs)
	if !ok {
		rc.refuse(lhs, target, "write through unmodeled expression %s", target)
		return
	}
	obj := rc.objOf(base)
	switch rc.memClass(obj, steps) {
	case memLocal:
		return
	case memHanded:
		detail := "handed slot"
		for _, st := range steps {
			if st.index != nil {
				detail = "handed chunk"
			}
		}
		rc.site(RaceWorkerLocal, detail, lhs, target)
		return
	case memCheckout:
		rc.site(RaceWorkerLocal, "arena checkout", lhs, target)
		return
	}

	// Shared memory. A held mutex guards anything.
	if len(rc.held) > 0 {
		rc.site(RaceLockGuarded, "guarded by "+lockLabel(rc.held[len(rc.held)-1]), lhs, target)
		return
	}

	// Map writes are never safe unlocked.
	for _, st := range steps {
		if st.index != nil && rc.isMapIndex(base, steps, st) {
			rc.refuse(lhs, target, "concurrent map write to %s", target)
			return
		}
	}

	// Index disjointness: the innermost index step that proves distinct
	// invocations reach distinct sub-objects certifies the whole path.
	var firstWhy string
	for _, st := range steps {
		if st.index == nil {
			continue
		}
		detail, why := rc.classifyIndex(st.index)
		if detail != "" {
			rc.site(RaceIndexDisjoint, detail, lhs, target)
			return
		}
		if firstWhy == "" {
			firstWhy = why
		}
	}

	// Join branches: state the sibling branch never touches is
	// exclusively this branch's for the duration of the join.
	if rc.r.sibling != nil && obj != nil && !identUsed(rc.tp, rc.r.sibling, obj) {
		rc.site(RaceWorkerLocal, "join-branch-exclusive", lhs, target)
		return
	}

	if firstWhy != "" {
		rc.refuse(lhs, target, "write to shared %s: %s", target, firstWhy)
		return
	}
	rc.refuse(lhs, target, "write to shared %s with no distinguishing index", target)
}

func (rc *regionCheck) isMapIndex(base *ast.Ident, steps []targetStep, at targetStep) bool {
	// Recompute the type at the step by expression typing: the indexed
	// expression's type is recorded by the checker.
	// Walk the steps rebuilding positions is overkill; approximate by
	// checking the base type chain.
	t := rc.baseTypeAt(base, steps, at)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func (rc *regionCheck) baseTypeAt(base *ast.Ident, steps []targetStep, at targetStep) types.Type {
	obj := rc.objOf(base)
	if obj == nil {
		return nil
	}
	t := obj.Type()
	for _, st := range steps {
		if st.star {
			p, ok := t.Underlying().(*types.Pointer)
			if !ok {
				return nil
			}
			t = p.Elem()
			continue
		}
		if st.field != "" {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			u, ok := t.Underlying().(*types.Struct)
			if !ok {
				return nil
			}
			found := false
			for i := 0; i < u.NumFields(); i++ {
				if u.Field(i).Name() == st.field {
					t = u.Field(i).Type()
					found = true
					break
				}
			}
			if !found {
				return nil
			}
			continue
		}
		if st.index == at.index {
			return t
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			return nil
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Site emission
// ---------------------------------------------------------------------

func (rc *regionCheck) site(class, detail string, at ast.Node, target string) {
	pos := rc.rp.a.fset.Position(at.Pos())
	rc.sites = append(rc.sites, RaceSite{
		File: rc.f.rel, Line: pos.Line, Col: pos.Column,
		Func: rc.fd.Name.Name, Region: rc.r.kind,
		Target: target, Class: class, Detail: detail,
	})
}

func (rc *regionCheck) refuse(at ast.Node, target, format string, args ...any) {
	pos := rc.rp.a.fset.Position(at.Pos())
	rc.sites = append(rc.sites, RaceSite{
		File: rc.f.rel, Line: pos.Line, Col: pos.Column,
		Func: rc.fd.Name.Name, Region: rc.r.kind,
		Target: target, Class: RaceRefused,
		Reason: fmt.Sprintf(format, args...),
		Marker: rc.rp.a.markerFor(rc.f, at),
	})
}

func (rc *regionCheck) objOf(id *ast.Ident) types.Object {
	if o := rc.tp.info.Uses[id]; o != nil {
		return o
	}
	return rc.tp.info.Defs[id]
}

// ---------------------------------------------------------------------
// Small shared helpers
// ---------------------------------------------------------------------

func atomicWritePrefix(name string) bool {
	for p := range atomicWriteMethods {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// isAtomicRecv reports whether e's type is one of sync/atomic's types.
func isAtomicRecv(tp *typedPkg, e ast.Expr) bool {
	tv, ok := tp.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isNamedIn(tv.Type, atomicPath)
}

// isNamedRecv reports whether e's type is one of the named types of
// the given package.
func isNamedRecv(tp *typedPkg, e ast.Expr, pkgPath string, names ...string) bool {
	tv, ok := tp.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	if !isPath(named.Obj().Pkg().Path(), pkgPath) {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}

func isNamedIn(t types.Type, pkgPath string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return isPath(named.Obj().Pkg().Path(), pkgPath)
}

// identUsed reports whether any identifier in n resolves to obj.
func identUsed(tp *typedPkg, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(x ast.Node) bool {
		if used {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			if tp.info.Uses[id] == obj || tp.info.Defs[id] == obj {
				used = true
			}
		}
		return !used
	})
	return used
}

// canonString renders an expression as a canonical comparison key
// (identifiers by object identity where resolvable).
// lockLabel strips canonString's #pos disambiguators for display: the
// certificate file must not churn when unrelated code moves a lock's
// declaration offset.
func lockLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '#' {
			for i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
				i++
			}
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

func canonString(tp *typedPkg, e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		if obj := tp.info.Uses[v]; obj != nil {
			return fmt.Sprintf("%s#%d", v.Name, obj.Pos())
		}
		if obj := tp.info.Defs[v]; obj != nil {
			return fmt.Sprintf("%s#%d", v.Name, obj.Pos())
		}
		return v.Name
	case *ast.SelectorExpr:
		x := canonString(tp, v.X)
		if x == "" {
			return ""
		}
		return x + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + canonString(tp, v.X)
	}
	return ""
}

// exprEq is structural expression equality with identifiers compared by
// resolved object.
func exprEq(tp *typedPkg, a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao := tp.info.Uses[av]
		if ao == nil {
			ao = tp.info.Defs[av]
		}
		bo := tp.info.Uses[bv]
		if bo == nil {
			bo = tp.info.Defs[bv]
		}
		if ao != nil && bo != nil {
			return ao == bo
		}
		return av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && exprEq(tp, av.X, bv.X)
	case *ast.BasicLit:
		bv, ok := b.(*ast.BasicLit)
		return ok && av.Kind == bv.Kind && av.Value == bv.Value
	case *ast.BinaryExpr:
		bv, ok := b.(*ast.BinaryExpr)
		return ok && av.Op == bv.Op && exprEq(tp, av.X, bv.X) && exprEq(tp, av.Y, bv.Y)
	case *ast.CallExpr:
		bv, ok := b.(*ast.CallExpr)
		if !ok || len(av.Args) != len(bv.Args) || !exprEq(tp, av.Fun, bv.Fun) {
			return false
		}
		for i := range av.Args {
			if !exprEq(tp, av.Args[i], bv.Args[i]) {
				return false
			}
		}
		return true
	case *ast.IndexExpr:
		bv, ok := b.(*ast.IndexExpr)
		return ok && exprEq(tp, av.X, bv.X) && exprEq(tp, av.Index, bv.Index)
	case *ast.UnaryExpr:
		bv, ok := b.(*ast.UnaryExpr)
		return ok && av.Op == bv.Op && exprEq(tp, av.X, bv.X)
	}
	return false
}

// enclosingPath returns the node path from root down to the node at
// pos (inclusive of enclosing statements).
func enclosingPath(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		path = append(path, n)
		return true
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return walk(n)
	})
	return path
}
