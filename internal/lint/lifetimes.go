package lint

// The arena lifetime certification pass (rpblint -lifetimes): the
// missing borrow-checker leg. The races pass proves that parallel
// writes are exclusive; this pass proves that the memory being written
// *lives long enough* — that no slice checked out of an arena outlives
// the Mark/Release scope, region, or worker that owns it.
//
// Every value originating from arena.Alloc / AllocUninit / AcquireBox
// (and every slice re-derived from one by slicing, aliasing, RowInto-
// style out-params, or struct field stores) is tracked through an
// intraprocedural dataflow (regionflow.go) with memoized
// interprocedural escape summaries (escapesummary.go), and each
// checkout's fate is classified:
//
//	released-in-scope  a covering Mark is Released (LIFO, on all
//	                   paths — a deferred Release covers panic edges)
//	                   or the box goes back through ReleaseBox, before
//	                   the checkout can be observed again
//	region-confined    the checkout never escapes the For/Join/
//	                   RunRange region that owns the worker; the
//	                   arena owner's Reset reclaims it
//	worker-confined    the checkout escapes its region but only into
//	                   per-worker state that is cleared before reuse
//	                   (a box field nil'ed before ReleaseBox, or a
//	                   Standalone arena owned by one worker goroutine)
//	refused            the analysis cannot prove confinement: the
//	                   checkout is returned, sent on a channel, stored
//	                   into a captured/global location, crosses a
//	                   goroutine or region boundary, or is used after
//	                   a dominating Release/Reset — each with a
//	                   proof-chain reason. //lint:scared audits one.
//
// A subrule covers AllocUninit's extra obligation: the returned memory
// holds garbage from earlier generations, so a read not dominated by a
// fill (an element write, or handing the slice/its holder to a callee)
// is refused as a read of uninitialized memory.
//
// Like -certify and -races, the result is lint-lifetimes.json,
// staleness-gated in CI; unexplained refusals in lifeEnforcedDirs fail
// the gate. The pass is lexical and refusal-biased: statement order
// approximates dominance, calls into the substrate packages are
// non-retaining by documented contract, in-module helpers get real
// escape summaries, and dynamic callees refuse unless an out-param
// contract (lifeMethodContracts) covers them.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Checkout fate classes.
const (
	LifeReleased       = "released-in-scope"
	LifeRegionConfined = "region-confined"
	LifeWorkerConfined = "worker-confined"
	LifeRefused        = "refused"
)

// lifeEnforcedDirs are the directories where an unexplained refusal
// (no //lint:scared marker) fails the lifetimes gate. Unlike the races
// pass, internal/bench is enforced too: the kernels' checkout
// discipline is exactly what the census is about.
var lifeEnforcedDirs = []string{
	"internal/core", "internal/sched", "internal/mq",
	"internal/graph", "internal/arena", "internal/bench",
	"internal/suffix",
}

func lifeEnforced(rel string) bool {
	for _, d := range lifeEnforcedDirs {
		if strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// LifeSite is one classified arena checkout (or a Release-site
// violation, Origin "Release").
type LifeSite struct {
	File   string `json:"file"` // relative to the module root
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Func   string `json:"func"`   // enclosing function
	Origin string `json:"origin"` // Alloc | AllocUninit | AcquireBox | Release
	Expr   string `json:"expr"`   // the bound carrier ("_" when unbound)
	Class  string `json:"class"`
	Detail string `json:"detail,omitempty"` // proof evidence
	Reason string `json:"reason,omitempty"` // refusal proof chain
	Marker bool   `json:"marker,omitempty"` // refusal audited by //lint:scared
}

func (s LifeSite) String() string {
	head := fmt.Sprintf("%s:%d:%d: %s %s in %s: %s",
		s.File, s.Line, s.Col, s.Origin, s.Expr, s.Func, s.Class)
	if s.Detail != "" {
		head += " (" + s.Detail + ")"
	}
	if s.Class == LifeRefused {
		head += ": " + s.Reason
		if s.Marker {
			head += " (audited: //lint:scared)"
		}
	}
	return head
}

// LifeReport is the machine-readable census (lint-lifetimes.json).
type LifeReport struct {
	Version        int        `json:"version"`
	Module         string     `json:"module"`
	Regions        int        `json:"regions"`
	Marks          int        `json:"marks"`
	Checkouts      int        `json:"checkouts"`
	Released       int        `json:"released"`
	RegionConfined int        `json:"regionConfined"`
	WorkerConfined int        `json:"workerConfined"`
	Refused        int        `json:"refused"`
	Unexplained    int        `json:"unexplained"`
	Sites          []LifeSite `json:"sites"`
}

// Lifetimes runs the arena lifetime certification pass over the module
// under cfg.Root.
func Lifetimes(cfg Config) (*LifeReport, error) {
	a, err := newAnalysis(cfg)
	if err != nil {
		return nil, err
	}
	return a.lifetimes(), nil
}

// lifetimes runs the pass over an already-built analysis.
func (a *analysis) lifetimes() *LifeReport {
	loader := newTypeLoader(a)
	lp := &lifePass{
		a: a, loader: loader,
		escapes: map[*types.Func]*escEffect{},
		inEsc:   map[*types.Func]bool{},
	}
	lp.prescanBoxes()
	rep := &LifeReport{Version: 1, Module: a.mod}

	for _, pkg := range a.sortedPkgs() {
		if pkg.path == arenaPath || isPath(pkg.path, arenaPath) {
			continue // the substrate implementing the checkouts
		}
		tp := loader.check(pkg.path)
		if tp == nil || tp.tpkg == nil {
			continue
		}
		for _, f := range pkg.files {
			for _, decl := range f.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				regions := collectRegions(tp, f, fd)
				rep.Regions += len(regions)
				lw := newLifeWalk(lp, tp, f, fd, regions)
				lw.run()
				rep.Marks += lw.markCount
				rep.Sites = append(rep.Sites, lw.sites...)
			}
		}
	}

	sort.SliceStable(rep.Sites, func(i, j int) bool {
		si, sj := rep.Sites[i], rep.Sites[j]
		if si.File != sj.File {
			return si.File < sj.File
		}
		if si.Line != sj.Line {
			return si.Line < sj.Line
		}
		return si.Col < sj.Col
	})
	for i := range rep.Sites {
		s := &rep.Sites[i]
		switch s.Class {
		case LifeReleased:
			rep.Checkouts++
			rep.Released++
		case LifeRegionConfined:
			rep.Checkouts++
			rep.RegionConfined++
		case LifeWorkerConfined:
			rep.Checkouts++
			rep.WorkerConfined++
		default:
			if s.Origin != "Release" {
				rep.Checkouts++
			}
			rep.Refused++
			if !s.Marker && lifeEnforced(s.File) {
				rep.Unexplained++
			}
		}
	}
	return rep
}

// Marshal renders the report as the canonical lint-lifetimes.json bytes.
func (r *LifeReport) Marshal() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil
	}
	return append(b, '\n')
}

// String renders the per-site table and summary rpblint -lifetimes
// prints.
func (r *LifeReport) String() string {
	var sb strings.Builder
	for _, s := range r.Sites {
		sb.WriteString(s.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "lifetimes: %d regions, %d marks; %d checkouts: %d released-in-scope, %d region-confined, %d worker-confined, %d refused (%d unexplained)\n",
		r.Regions, r.Marks, r.Checkouts, r.Released, r.RegionConfined, r.WorkerConfined, r.Refused, r.Unexplained)
	return sb.String()
}

// LoadLifetimes reads a lifetime-certificate file.
func LoadLifetimes(path string) (*LifeReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r LifeReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("lint: bad lifetime report %s: %w", path, err)
	}
	return &r, nil
}

// lifePass is the shared state of one -lifetimes run.
type lifePass struct {
	a      *analysis
	loader *typeLoader

	escapes map[*types.Func]*escEffect
	inEsc   map[*types.Func]bool
	declIdx map[*types.Func]*effDecl
	idxDone map[string]bool

	// boxTypes are the named types instantiated in arena.AcquireBox[T]
	// anywhere in the module, keyed by type name: per-worker reusable
	// state a checkout may legitimately transit through.
	boxTypes map[string]bool
	// boxCleared records "Type.field" pairs assigned nil somewhere in
	// the module — the clearing half of a box-field handoff. A checkout
	// stored into a box field of a *parameter* is worker-confined only
	// when the field is provably cleared before the box is reused.
	boxCleared map[string]bool
}

// declOf finds the FuncDecl for an in-module *types.Func, indexing each
// package's declarations on first use (the raceeffect.go pattern).
func (lp *lifePass) declOf(fn *types.Func) *effDecl {
	if lp.declIdx == nil {
		lp.declIdx = map[*types.Func]*effDecl{}
		lp.idxDone = map[string]bool{}
	}
	if d, ok := lp.declIdx[fn]; ok {
		return d
	}
	if fn.Pkg() == nil {
		return nil
	}
	rel, ok := lp.a.modRel(fn.Pkg().Path())
	if !ok {
		return nil
	}
	if !lp.idxDone[rel] {
		lp.idxDone[rel] = true
		if tp := lp.loader.check(rel); tp != nil {
			for _, f := range tp.pkg.files {
				for _, decl := range f.ast.Decls {
					fd, isFn := decl.(*ast.FuncDecl)
					if !isFn {
						continue
					}
					if tf, isTF := tp.info.Defs[fd.Name].(*types.Func); isTF {
						lp.declIdx[tf] = &effDecl{tp: tp, f: f, fd: fd}
					}
				}
			}
		}
	}
	return lp.declIdx[fn]
}

// prescanBoxes walks the whole module once, collecting the AcquireBox
// instantiation types (boxTypes) and every "x.field = nil" clear whose
// base is one of them (boxCleared). The pass needs both globally: a
// helper may store into a box field its caller clears (core.packCount
// fills packBody.counts; packWrite clears it).
func (lp *lifePass) prescanBoxes() {
	lp.boxTypes = map[string]bool{}
	lp.boxCleared = map[string]bool{}

	type clearRec struct{ base, field string }
	var clears []clearRec
	for _, pkg := range lp.a.sortedPkgs() {
		tp := lp.loader.check(pkg.path)
		if tp == nil || tp.tpkg == nil {
			continue
		}
		for _, f := range pkg.files {
			ast.Inspect(f.ast, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CallExpr:
					pathStr, name, isPkg := callTarget(f, v)
					if isPkg && isPath(pathStr, arenaPath) && name == "AcquireBox" {
						if tv, ok := tp.info.Types[v]; ok && tv.Type != nil {
							if name := boxTypeName(tv.Type); name != "" {
								lp.boxTypes[name] = true
							}
						}
					}
				case *ast.AssignStmt:
					if len(v.Lhs) != len(v.Rhs) {
						return true
					}
					for i, lhs := range v.Lhs {
						sel, ok := unparen(lhs).(*ast.SelectorExpr)
						if !ok || !isNilExpr(tp, v.Rhs[i]) {
							continue
						}
						if tv, ok := tp.info.Types[sel.X]; ok && tv.Type != nil {
							if name := boxTypeName(tv.Type); name != "" {
								clears = append(clears, clearRec{name, sel.Sel.Name})
							}
						}
					}
				}
				return true
			})
		}
	}
	for _, c := range clears {
		lp.boxCleared[c.base+"."+c.field] = true
	}
}

// boxTypeName names the struct type behind a (pointer to a) named
// type, dropping type arguments: *gatherBody[T] -> "gatherBody".
func boxTypeName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch v := t.(type) {
	case *types.Named:
		return v.Obj().Name()
	case *types.Alias:
		return v.Obj().Name()
	}
	return ""
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(tp *typedPkg, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	if obj := tp.info.Uses[id]; obj != nil {
		return obj == types.Universe.Lookup("nil")
	}
	return id.Name == "nil"
}

// isArenaExpr reports whether e's type is (a pointer to) arena.Arena.
func isArenaExpr(tp *typedPkg, e ast.Expr) bool {
	tv, ok := tp.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Arena" && obj.Pkg() != nil &&
		isPath(obj.Pkg().Path(), arenaPath)
}
