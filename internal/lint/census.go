package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// StaticSite is one core.DeclareSite call recovered from source: the
// source-derived analog of core.Site, with its position.
type StaticSite struct {
	Bench   string `json:"bench"`
	Label   string `json:"label"`
	Pattern string `json:"pattern"`
	File    string `json:"file"`
	Line    int    `json:"line"`

	pattern core.Pattern
}

// StaticCensus is the source-derived pattern census, shaped like
// core.Census so the two can be diffed site-for-site.
type StaticCensus struct {
	Total     int                 `json:"total"`
	Irregular int                 `json:"irregular"`
	PerKind   map[string]int      `json:"perKind"`
	PerBench  map[string][]string `json:"perBench"`
	Sites     []StaticSite        `json:"sites"`
}

// ToCoreCensus converts the static census into core.Census form for
// direct comparison with core.TakeCensus().
func (c StaticCensus) ToCoreCensus() core.Census {
	out := core.Census{
		PerKind:  map[core.Pattern]int{},
		PerBench: map[string]map[core.Pattern]bool{},
	}
	for _, s := range c.Sites {
		out.Total++
		out.PerKind[s.pattern]++
		if s.pattern.Irregular() {
			out.Irregular++
		}
		m := out.PerBench[s.Bench]
		if m == nil {
			m = map[core.Pattern]bool{}
			out.PerBench[s.Bench] = m
		}
		m[s.pattern] = true
	}
	for b := range out.PerBench {
		out.Benches = append(out.Benches, b)
	}
	sort.Strings(out.Benches)
	return out
}

// patternByName maps source identifiers (core.RO, core.SngInd, ...) to
// patterns.
var patternByName = func() map[string]core.Pattern {
	m := map[string]core.Pattern{}
	for _, p := range core.Patterns {
		switch p {
		case core.DC:
			m["DC"] = p
		default:
			m[p.String()] = p
		}
	}
	return m
}()

// extractCensus walks every parsed file for core.DeclareSite calls,
// including calls made through file-local declaration-helper closures
// (a func literal bound to a variable whose string parameters feed
// DeclareSite, invoked with constant arguments — the style text.go uses
// to share one site list between sa and lrs). Conflicting
// re-declarations are recorded as pattern-mismatch diagnostics.
func (a *analysis) extractCensus() StaticCensus {
	c := StaticCensus{
		PerKind:  map[string]int{},
		PerBench: map[string][]string{},
	}
	seen := map[string]StaticSite{} // bench\x00label -> first site
	perBench := map[string]map[string]bool{}

	addSite := func(s StaticSite) {
		key := s.Bench + "\x00" + s.Label
		if prev, dup := seen[key]; dup {
			if prev.Pattern != s.Pattern {
				a.censusDiags = append(a.censusDiags, Diag{
					File: s.File, Line: s.Line, Col: 1,
					Rule:    "pattern-mismatch",
					Bench:   s.Bench,
					Pattern: s.Pattern,
					Msg: fmt.Sprintf("site %q re-declared as %s (first declared %s at %s:%d)",
						s.Label, s.Pattern, prev.Pattern, prev.File, prev.Line),
				})
			}
			return
		}
		seen[key] = s
		c.Sites = append(c.Sites, s)
		c.Total++
		c.PerKind[s.Pattern]++
		if s.pattern.Irregular() {
			c.Irregular++
		}
		if perBench[s.Bench] == nil {
			perBench[s.Bench] = map[string]bool{}
		}
		perBench[s.Bench][s.Pattern] = true
	}

	for _, pkg := range a.sortedPkgs() {
		for _, f := range pkg.files {
			a.extractFileSites(f, addSite)
		}
	}
	for b, pats := range perBench {
		list := make([]string, 0, len(pats))
		for _, p := range core.Patterns {
			name := p.String()
			if pats[name] {
				list = append(list, name)
			}
		}
		c.PerBench[b] = list
	}
	return c
}

// extractFileSites finds DeclareSite calls in one file, expanding
// file-local helper closures.
func (a *analysis) extractFileSites(f *fileInfo, add func(StaticSite)) {
	// Pass 1: find helper closures — func literals bound to an
	// identifier whose body calls DeclareSite with a string parameter as
	// the bench argument.
	helpers := map[string]*ast.FuncLit{}
	ast.Inspect(f.ast, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if lit, ok := assign.Rhs[0].(*ast.FuncLit); ok {
			helpers[id.Name] = lit
		}
		return true
	})

	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Direct core.DeclareSite(bench, label, pattern) calls. Calls
		// inside a helper closure's body are handled at the helper's
		// invocation sites, where the bench argument is known.
		if path, name, ok := callTarget(f, call); ok && isPath(path, corePath) && name == "DeclareSite" {
			for _, lit := range helpers {
				if call.Pos() >= lit.Body.Pos() && call.End() <= lit.Body.End() {
					return true
				}
			}
			if s, ok := a.declareSiteArgs(f, call, nil); ok {
				add(s)
			}
			return true
		}
		// Helper invocation: helperName("bench", ...).
		if id, ok := call.Fun.(*ast.Ident); ok {
			lit, isHelper := helpers[id.Name]
			if !isHelper {
				return true
			}
			binding := bindStringArgs(lit, call)
			if binding == nil {
				return true
			}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				innerCall, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				if path, name, ok := callTarget(f, innerCall); ok && isPath(path, corePath) && name == "DeclareSite" {
					if s, ok := a.declareSiteArgs(f, innerCall, binding); ok {
						add(s)
					}
				}
				return true
			})
		}
		return true
	})
}

// bindStringArgs maps a helper's parameter names to the constant string
// arguments of one invocation; nil when any argument is non-constant.
func bindStringArgs(lit *ast.FuncLit, call *ast.CallExpr) map[string]string {
	var params []string
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, name.Name)
		}
	}
	if len(params) != len(call.Args) {
		return nil
	}
	binding := map[string]string{}
	for i, arg := range call.Args {
		v, ok := stringConst(arg, nil)
		if !ok {
			return nil
		}
		binding[params[i]] = v
	}
	return binding
}

// stringConst evaluates a constant string expression: literals,
// concatenations, and identifiers present in binding.
func stringConst(e ast.Expr, binding map[string]string) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		return s, err == nil
	case *ast.Ident:
		if binding != nil {
			if s, ok := binding[v.Name]; ok {
				return s, true
			}
		}
		return "", false
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		l, lok := stringConst(v.X, binding)
		r, rok := stringConst(v.Y, binding)
		return l + r, lok && rok
	case *ast.ParenExpr:
		return stringConst(v.X, binding)
	}
	return "", false
}

// declareSiteArgs decodes one DeclareSite call's arguments.
func (a *analysis) declareSiteArgs(f *fileInfo, call *ast.CallExpr, binding map[string]string) (StaticSite, bool) {
	pos := a.fset.Position(call.Pos())
	if len(call.Args) != 3 {
		return StaticSite{}, false
	}
	bench, bok := stringConst(call.Args[0], binding)
	label, lok := stringConst(call.Args[1], binding)
	pat, pok := patternArg(f, call.Args[2])
	if !bok || !lok || !pok {
		a.censusDiags = append(a.censusDiags, Diag{
			File: f.rel, Line: pos.Line, Col: pos.Column,
			Rule: "pattern-mismatch",
			Msg:  "DeclareSite arguments are not statically resolvable; the static census cannot verify this site",
		})
		return StaticSite{}, false
	}
	return StaticSite{
		Bench:   bench,
		Label:   label,
		Pattern: pat.String(),
		File:    f.rel,
		Line:    pos.Line,
		pattern: pat,
	}, true
}

// patternArg decodes a core.<Pattern> selector argument.
func patternArg(f *fileInfo, e ast.Expr) (core.Pattern, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return 0, false
	}
	if path, imported := f.imports[id.Name]; !imported || !isPath(path, corePath) {
		return 0, false
	}
	p, ok := patternByName[sel.Sel.Name]
	return p, ok
}

// irregularDeclared reports which irregular patterns a declaration set
// contains.
func irregularDeclared(pats []string) map[core.Pattern]bool {
	m := map[core.Pattern]bool{}
	for _, name := range pats {
		if p, ok := patternByName[name]; ok && p.Irregular() {
			m[p] = true
		}
	}
	return m
}

// benchesDeclaredIn returns the benches and patterns declared in one
// file, from the census site list.
func (c StaticCensus) benchesDeclaredIn(rel string) (benches []string, patterns map[core.Pattern]bool) {
	patterns = map[core.Pattern]bool{}
	seen := map[string]bool{}
	for _, s := range c.Sites {
		if s.File != rel {
			continue
		}
		if !seen[s.Bench] {
			seen[s.Bench] = true
			benches = append(benches, s.Bench)
		}
		patterns[s.pattern] = true
	}
	sort.Strings(benches)
	return benches, patterns
}

// String renders the census as the same ASCII shape report.Fig3 uses.
func (c StaticCensus) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "static census: %d sites, %d irregular\n", c.Total, c.Irregular)
	for _, p := range core.Patterns {
		fmt.Fprintf(&sb, "  %-7s %3d\n", p, c.PerKind[p.String()])
	}
	return sb.String()
}
