package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLifetimesFixtureClean pins the positive fixtures: one function
// per proof form the lifetimes pass accepts. Every checkout must land
// in a non-refused class, and every class and release discipline the
// pass knows must fire at least once — a silent downgrade to refused
// is a regression even if the counts happen to balance.
func TestLifetimesFixtureClean(t *testing.T) {
	rep, err := Lifetimes(Config{Root: filepath.Join("testdata", "src", "lifetimes-clean")})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "lifetimes-clean.golden", rep.String())

	if rep.Refused != 0 || rep.Unexplained != 0 {
		t.Errorf("clean fixtures: %d refused (%d unexplained), want 0/0", rep.Refused, rep.Unexplained)
	}
	if rep.Released == 0 || rep.RegionConfined == 0 || rep.WorkerConfined == 0 {
		t.Errorf("clean fixtures: class counts %d/%d/%d, every class must fire",
			rep.Released, rep.RegionConfined, rep.WorkerConfined)
	}
	details := map[string]bool{}
	for _, s := range rep.Sites {
		details[s.Detail] = true
	}
	for _, want := range []string{
		"deferred", "ReleaseBox", "never leaves the region body",
		"standalone worker-lifetime arena", "cleared before box reuse",
	} {
		found := false
		for d := range details {
			if strings.Contains(d, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no clean-fixture site classified with detail containing %q", want)
		}
	}
}

// TestLifetimesFixtureBad pins the negative fixtures: every shape one
// obligation away from confinement must be refused with its
// proof-chain reason, and only the site carrying a //lint:scared
// marker escapes the unexplained count (the fixture package sits in an
// enforced directory).
func TestLifetimesFixtureBad(t *testing.T) {
	rep, err := Lifetimes(Config{Root: filepath.Join("testdata", "src", "lifetimes-bad")})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "lifetimes-bad.golden", rep.String())

	for _, s := range rep.Sites {
		if s.Class != LifeRefused {
			t.Errorf("bad-fixture site %s:%d classified %s, want refused", s.File, s.Line, s.Class)
		}
	}
	reasons := map[string]bool{}
	for _, s := range rep.Sites {
		reasons[s.Reason] = true
	}
	for _, want := range []string{
		"used after Release",        // use-after-release
		"out of LIFO order",         // mark released out of LIFO order
		"different worker goroutine", // cross-worker escape
		"returned from",             // returned checkout
		"stale mark",                // stale mark across Reset
		"used after Reset",          // checkout use across Reset
		"read before first write",   // AllocUninit read-before-write
		"package-level",             // global store
		"sent on a channel",         // channel escape
		"retained by",               // interprocedural escape summary
		"dynamic callee",            // opaque hand-off
	} {
		found := false
		for r := range reasons {
			if strings.Contains(r, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no bad-fixture refusal with reason containing %q", want)
		}
	}
	if rep.Unexplained != rep.Refused-1 {
		t.Errorf("bad fixtures: %d unexplained of %d refused, want all but the audited site", rep.Unexplained, rep.Refused)
	}
	for _, s := range rep.Sites {
		if s.Marker && s.Func != "Audited" {
			t.Errorf("site in %s carries a marker; only Audited should", s.Func)
		}
	}
}

// TestLifetimesRepo runs the pass over the repository itself: the
// enforced directories must stay free of unexplained refusals, and the
// committed lint-lifetimes.json must match what the pass derives — the
// same staleness contract `make lifetimes` enforces in CI.
func TestLifetimesRepo(t *testing.T) {
	rep, err := Lifetimes(Config{Root: filepath.Join("..", "..")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unexplained != 0 {
		t.Errorf("%d unexplained refusals in enforced directories, want 0:", rep.Unexplained)
		for _, s := range rep.Sites {
			if s.Class == LifeRefused && !s.Marker && lifeEnforced(s.File) {
				t.Errorf("  %s", s.String())
			}
		}
	}
	committed, err := os.ReadFile(filepath.Join("..", "..", "lint-lifetimes.json"))
	if err != nil {
		t.Fatalf("missing committed lint-lifetimes.json: %v (run make lifetimes-update)", err)
	}
	if string(committed) != string(rep.Marshal()) {
		t.Error("committed lint-lifetimes.json is stale (run make lifetimes-update)")
	}
}
