package lint

// The parallel-write certification pass (rpblint -races): enumerate
// every lexical parallel region — core primitive bodies, sched.Worker
// fork points, RangeBody.RunRange methods, mq worker loops, and go
// statements — and classify every write those regions make to captured
// or escaping state:
//
//	worker-local    the memory belongs to this task alone (a handed
//	                slot or chunk, an arena checkout, or state only
//	                one Join branch touches)
//	atomic          the write goes through sync/atomic or one of the
//	                core atomic helpers
//	lock-guarded    the write happens while a mutex is held
//	index-disjoint  distinct concurrent invocations provably write
//	                distinct elements (the Detail field names the
//	                subrule: task-affine, range-owner, block-owner,
//	                residue-class, unique-handout, worker-owned)
//	refused         the analysis cannot prove safety; a //lint:scared
//	                marker turns the refusal into an audited one
//
// Disjointness alone is enough for race freedom: Go bounds-checks every
// slice access, so an out-of-range index panics instead of racing.
//
// The pass is lexical and refusal-biased, like the offset-provenance
// certifier it delegates to: a call through a func-typed value or an
// interface inside a region is delegated (the callee owns its writes
// and is certified where its own regions appear); an in-module call is
// classified through a memoized write-effect summary (raceeffect.go);
// anything unproven is refused with a reason.
//
// The result is lint-races.json, staleness-gated in CI the same way
// lint-certs.json is. Refusals without markers in the enforced
// directories (raceEnforcedDirs) fail the gate.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Write classes.
const (
	RaceWorkerLocal   = "worker-local"
	RaceAtomic        = "atomic"
	RaceLockGuarded   = "lock-guarded"
	RaceIndexDisjoint = "index-disjoint"
	RaceRefused       = "refused"
)

// raceEnforcedDirs are the directories where an unexplained refusal
// (no //lint:scared marker) fails the races gate. The census still
// covers the whole module.
var raceEnforcedDirs = []string{
	"internal/core", "internal/sched", "internal/mq",
	"internal/graph", "internal/arena", "internal/suffix",
}

func raceEnforced(rel string) bool {
	for _, d := range raceEnforcedDirs {
		if strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// RaceSite is one classified shared write inside a parallel region.
type RaceSite struct {
	File   string `json:"file"` // relative to the module root
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Func   string `json:"func"`   // enclosing function
	Region string `json:"region"` // region-creating construct
	Target string `json:"target"` // written expression
	Class  string `json:"class"`
	Detail string `json:"detail,omitempty"` // subrule / evidence
	Reason string `json:"reason,omitempty"` // refusal explanation
	Marker bool   `json:"marker,omitempty"` // refusal audited by //lint:scared
}

func (s RaceSite) String() string {
	head := fmt.Sprintf("%s:%d:%d: %s in %s: %s %s",
		s.File, s.Line, s.Col, s.Target, s.Region, s.Class, s.Detail)
	head = strings.TrimRight(head, " ")
	if s.Class == RaceRefused {
		head += ": " + s.Reason
		if s.Marker {
			head += " (audited: //lint:scared)"
		}
	}
	return head
}

// RaceReport is the machine-readable census (lint-races.json).
type RaceReport struct {
	Version       int        `json:"version"`
	Module        string     `json:"module"`
	Regions       int        `json:"regions"`
	WorkerLocal   int        `json:"workerLocal"`
	Atomic        int        `json:"atomic"`
	LockGuarded   int        `json:"lockGuarded"`
	IndexDisjoint int        `json:"indexDisjoint"`
	Refused       int        `json:"refused"`
	Unexplained   int        `json:"unexplained"`
	Sites         []RaceSite `json:"sites"`
}

// Races runs the parallel-write certification pass over the module
// under cfg.Root.
func Races(cfg Config) (*RaceReport, error) {
	a, err := newAnalysis(cfg)
	if err != nil {
		return nil, err
	}
	return a.races(), nil
}

// races runs the pass over an already-built analysis.
func (a *analysis) races() *RaceReport {
	loader := newTypeLoader(a)
	rp := &racePass{a: a, loader: loader, effects: map[*types.Func]*writeEffect{}}
	rep := &RaceReport{Version: 1, Module: a.mod}

	for _, pkg := range a.sortedPkgs() {
		tp := loader.check(pkg.path)
		if tp == nil || tp.tpkg == nil {
			continue
		}
		for _, f := range pkg.files {
			for _, decl := range f.ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				regions := collectRegions(tp, f, fd)
				rep.Regions += len(regions)
				for _, r := range regions {
					rc := newRegionCheck(rp, tp, f, fd, r)
					rc.run()
					rep.Sites = append(rep.Sites, rc.sites...)
				}
			}
		}
	}

	rep.Sites = dedupRaceSites(rep.Sites)
	for i := range rep.Sites {
		s := &rep.Sites[i]
		switch s.Class {
		case RaceWorkerLocal:
			rep.WorkerLocal++
		case RaceAtomic:
			rep.Atomic++
		case RaceLockGuarded:
			rep.LockGuarded++
		case RaceIndexDisjoint:
			rep.IndexDisjoint++
		default:
			rep.Refused++
			if !s.Marker && raceEnforced(s.File) {
				rep.Unexplained++
			}
		}
	}
	return rep
}

// dedupRaceSites keeps one site per source position. A write can be
// seen from two regions (a nested closure walked by its enclosing
// region and claimed by an inner one); the proved classification wins
// over a refusal.
func dedupRaceSites(sites []RaceSite) []RaceSite {
	sort.SliceStable(sites, func(i, j int) bool {
		si, sj := sites[i], sites[j]
		if si.File != sj.File {
			return si.File < sj.File
		}
		if si.Line != sj.Line {
			return si.Line < sj.Line
		}
		return si.Col < sj.Col
	})
	out := sites[:0]
	for _, s := range sites {
		if n := len(out); n > 0 {
			p := &out[n-1]
			if p.File == s.File && p.Line == s.Line && p.Col == s.Col {
				if p.Class == RaceRefused && s.Class != RaceRefused {
					*p = s
				}
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// Marshal renders the report as the canonical lint-races.json bytes.
func (r *RaceReport) Marshal() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil
	}
	return append(b, '\n')
}

// String renders the per-site table and summary rpblint -races prints.
func (r *RaceReport) String() string {
	var sb strings.Builder
	for _, s := range r.Sites {
		sb.WriteString(s.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "races: %d regions; %d worker-local, %d atomic, %d lock-guarded, %d index-disjoint, %d refused (%d unexplained)\n",
		r.Regions, r.WorkerLocal, r.Atomic, r.LockGuarded, r.IndexDisjoint, r.Refused, r.Unexplained)
	return sb.String()
}

// LoadRaces reads a race-certificate file.
func LoadRaces(path string) (*RaceReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RaceReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("lint: bad race report %s: %w", path, err)
	}
	return &r, nil
}

// racePass is the shared state of one -races run.
type racePass struct {
	a       *analysis
	loader  *typeLoader
	effects map[*types.Func]*writeEffect
	inEff   map[*types.Func]bool
	declIdx map[*types.Func]*effDecl
	idxDone map[string]bool
}

// ---------------------------------------------------------------------
// Region enumeration
// ---------------------------------------------------------------------

// coreRegionSpec describes how one core primitive turns its closure
// arguments into parallel regions.
type coreRegionSpec struct {
	bodyArgs []int // closure argument positions
	task     []int // closure params invoked with a unique value per task
	handed   []int // closure params handing the task its own memory
	loArg    int   // range lower bound argument (-1: none / implicit 0)
	hiArg    int   // range upper bound / extent argument (-1: none)
}

// coreRegionSpecs maps core primitives to their region shapes. The
// task/handed columns encode each primitive's documented body contract:
// which closure parameters are guaranteed unique per concurrent
// invocation, and which hand the invocation exclusively owned memory.
var coreRegionSpecs = map[string]coreRegionSpec{
	"ForRange":            {bodyArgs: []int{4}, task: []int{0}, loArg: 1, hiArg: 2},
	"ForEachIdx":          {bodyArgs: []int{3}, task: []int{0}, handed: []int{1}, loArg: -1, hiArg: -1},
	"Chunks":              {bodyArgs: []int{3}, task: []int{0}, handed: []int{1}, loArg: -1, hiArg: -1},
	"Tabulate":            {bodyArgs: []int{2}, task: []int{0}, loArg: -1, hiArg: 1},
	"Stencil2D":           {bodyArgs: []int{4}, loArg: -1, hiArg: -1},
	"Reduce":              {bodyArgs: []int{3, 4}, loArg: -1, hiArg: -1},
	"MapReduce":           {bodyArgs: []int{3}, task: []int{0}, loArg: -1, hiArg: 1},
	"Count":               {bodyArgs: []int{2}, loArg: -1, hiArg: -1},
	"All":                 {bodyArgs: []int{2}, loArg: -1, hiArg: -1},
	"SegReduce":           {bodyArgs: []int{4, 5}, loArg: -1, hiArg: -1},
	"PackIndex":           {bodyArgs: []int{2}, task: []int{0}, loArg: -1, hiArg: 1},
	"PackIndexInto":       {bodyArgs: []int{2}, task: []int{0}, loArg: -1, hiArg: 1},
	"Filter":              {bodyArgs: []int{2}, loArg: -1, hiArg: -1},
	"FilterInto":          {bodyArgs: []int{2}, loArg: -1, hiArg: -1},
	"SortBy":              {bodyArgs: []int{2}, loArg: -1, hiArg: -1},
	"IsSorted":            {bodyArgs: []int{2}, loArg: -1, hiArg: -1},
	"ScanExclusiveOp":     {bodyArgs: []int{3}, loArg: -1, hiArg: -1},
	"IndForEach":          {bodyArgs: []int{3}, task: []int{0}, handed: []int{1}, loArg: -1, hiArg: -1},
	"IndForEachUnchecked": {bodyArgs: []int{3}, task: []int{0}, handed: []int{1}, loArg: -1, hiArg: -1},
	"IndChunks":           {bodyArgs: []int{3}, task: []int{0}, handed: []int{1}, loArg: -1, hiArg: -1},
	"IndChunksUnchecked":  {bodyArgs: []int{3}, task: []int{0}, handed: []int{1}, loArg: -1, hiArg: -1},
	"Async":               {bodyArgs: []int{1}, loArg: -1, hiArg: -1},
}

// mqRegionFuncs are the mq drivers whose task closures run on
// long-lived worker goroutines. The closure's first parameter is the
// worker id, unique per goroutine.
var mqRegionFuncs = map[string]bool{"Process": true, "ProcessOpt": true, "ProcessBatch": true}

// raceRegion is one lexical parallel region.
type raceRegion struct {
	kind    string          // display: creating construct
	at      token.Pos       // position the region is created at
	body    *ast.BlockStmt  // region body
	task    map[types.Object]string // unique-per-task params -> subrule seed
	handed  map[types.Object]bool   // params handing exclusively owned memory
	rangeLo types.Object    // handed subrange bounds (Worker.For, RunRange)
	rangeHi types.Object
	worker  types.Object // the invocation's *Worker param
	extent  ast.Expr     // task-index space size when the range starts at 0
	sibling *ast.BlockStmt // Join: the other branch

	claimed map[*ast.FuncLit]bool // nested region bodies, skipped by this region's walk
}

// collectRegions finds the parallel regions created inside one
// function, and the closure literals they claim (so enclosing regions
// do not re-walk a nested region's body). It is shared by the races
// pass (every region's writes are classified) and the lifetimes pass
// (a checkout's fate is judged against the region that owns it); see
// regionflow.go for the latter's flow walk.
func collectRegions(tp *typedPkg, f *fileInfo, fd *ast.FuncDecl) []*raceRegion {
	var regions []*raceRegion
	claimed := map[*ast.FuncLit]bool{}

	// Local closures: name := func(...) {...} — primitives are often
	// handed the closure by name (msf's clearBest/offer/commit).
	litOf := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if lit, ok := unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				if obj := tp.info.Defs[id]; obj != nil {
					litOf[obj] = lit
				}
			}
		}
		return true
	})
	resolveLit := func(arg ast.Expr) *ast.FuncLit {
		switch v := unparen(arg).(type) {
		case *ast.FuncLit:
			return v
		case *ast.Ident:
			if obj := tp.info.Uses[v]; obj != nil {
				return litOf[obj]
			}
		}
		return nil
	}
	litParam := func(lit *ast.FuncLit, i int) types.Object {
		idx := 0
		for _, fld := range lit.Type.Params.List {
			names := fld.Names
			if len(names) == 0 {
				idx++ // unnamed param
				continue
			}
			for _, nm := range names {
				if idx == i {
					return tp.info.Defs[nm]
				}
				idx++
			}
		}
		return nil
	}

	add := func(r *raceRegion, lit *ast.FuncLit) {
		if r.task == nil {
			r.task = map[types.Object]string{}
		}
		if r.handed == nil {
			r.handed = map[types.Object]bool{}
		}
		claimed[lit] = true
		r.body = lit.Body
		regions = append(regions, r)
	}

	walkWithPath(fd, func(n ast.Node, path []ast.Node) {
		switch v := n.(type) {
		case *ast.GoStmt:
			lit, ok := unparen(v.Call.Fun).(*ast.FuncLit)
			if !ok {
				return // handled as a site by the region walk of the enclosing region, if any
			}
			r := &raceRegion{kind: "go", at: v.Pos(), task: map[types.Object]string{}}
			// Spawn-loop idiom: a parameter fed the enclosing loop's
			// variable is unique per goroutine.
			for i, arg := range v.Call.Args {
				id, ok := unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				obj := tp.info.Uses[id]
				if obj == nil || !loopVarOf(tp, path, obj) {
					continue
				}
				if p := litParam(lit, i); p != nil {
					r.task[p] = "task-affine"
				}
			}
			add(r, lit)

		case *ast.CallExpr:
			if pathStr, name, isPkg := callTarget(f, v); isPkg {
				switch {
				case isPath(pathStr, corePath):
					spec, ok := coreRegionSpecs[name]
					if !ok {
						return
					}
					for _, ai := range spec.bodyArgs {
						if ai >= len(v.Args) {
							continue
						}
						lit := resolveLit(v.Args[ai])
						if lit == nil {
							continue
						}
						r := &raceRegion{kind: "core." + name, at: v.Pos(),
							task: map[types.Object]string{}, handed: map[types.Object]bool{}}
						// Task/handed params only apply to the primary
						// (per-task) body arg, the first in bodyArgs.
						if ai == spec.bodyArgs[0] {
							for _, ti := range spec.task {
								if p := litParam(lit, ti); p != nil {
									r.task[p] = "task-affine"
								}
							}
							for _, hi := range spec.handed {
								if p := litParam(lit, hi); p != nil {
									r.handed[p] = true
								}
							}
							if spec.hiArg >= 0 && spec.hiArg < len(v.Args) &&
								(spec.loArg < 0 || isZeroExpr(v.Args[spec.loArg])) {
								r.extent = v.Args[spec.hiArg]
							}
						}
						add(r, lit)
					}
				case isPath(pathStr, mqPath) && mqRegionFuncs[name]:
					if len(v.Args) == 0 {
						return
					}
					lit := resolveLit(v.Args[len(v.Args)-1])
					if lit == nil {
						return
					}
					r := &raceRegion{kind: "mq." + name, at: v.Pos(), task: map[types.Object]string{}}
					if p := litParam(lit, 0); p != nil {
						r.task[p] = "task-affine"
					}
					add(r, lit)
				}
				return
			}
			// Worker method fork points.
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok || !isWorkerExpr(tp, sel.X) {
				return
			}
			switch sel.Sel.Name {
			case "For":
				if len(v.Args) != 4 {
					return
				}
				if lit := resolveLit(v.Args[3]); lit != nil {
					r := &raceRegion{kind: "Worker.For", at: v.Pos()}
					r.worker = litParam(lit, 0)
					r.rangeLo, r.rangeHi = litParam(lit, 1), litParam(lit, 2)
					add(r, lit)
				}
			case "Join":
				if len(v.Args) != 2 {
					return
				}
				la, lb := resolveLit(v.Args[0]), resolveLit(v.Args[1])
				if la != nil {
					r := &raceRegion{kind: "Worker.Join", at: v.Pos(), worker: litParam(la, 0)}
					if lb != nil {
						r.sibling = lb.Body
					}
					add(r, la)
				}
				if lb != nil {
					r := &raceRegion{kind: "Worker.Join", at: v.Pos(), worker: litParam(lb, 0)}
					if la != nil {
						r.sibling = la.Body
					}
					add(r, lb)
				}
			case "SpawnTask":
				if len(v.Args) != 1 {
					return
				}
				if lit := resolveLit(v.Args[0]); lit != nil {
					r := &raceRegion{kind: "Worker.SpawnTask", at: v.Pos(), worker: litParam(lit, 0)}
					add(r, lit)
				}
			case "ForEachWorker":
				if len(v.Args) != 1 {
					return
				}
				if lit := resolveLit(v.Args[0]); lit != nil {
					r := &raceRegion{kind: "Worker.ForEachWorker", at: v.Pos(), worker: litParam(lit, 0)}
					add(r, lit)
				}
			}
		}
	})

	// A RangeBody's RunRange method is itself a region: sched.ForBody
	// invokes it concurrently over disjoint subranges.
	if r := runRangeRegion(tp, fd); r != nil {
		regions = append(regions, r)
	}

	for _, r := range regions {
		r.claimed = claimed
	}
	return regions
}

// runRangeRegion recognizes a RunRange(w *Worker, lo, hi int) method
// declaration (the sched.RangeBody contract) as a parallel region whose
// lo/hi parameters are a handed disjoint subrange.
func runRangeRegion(tp *typedPkg, fd *ast.FuncDecl) *raceRegion {
	if fd.Recv == nil || fd.Name.Name != "RunRange" || fd.Type.Params == nil {
		return nil
	}
	var params []types.Object
	for _, fld := range fd.Type.Params.List {
		if len(fld.Names) == 0 {
			params = append(params, nil)
			continue
		}
		for _, nm := range fld.Names {
			params = append(params, tp.info.Defs[nm])
		}
	}
	if len(params) != 3 {
		return nil
	}
	r := &raceRegion{
		kind: "RangeBody.RunRange", at: fd.Pos(), body: fd.Body,
		task:    map[types.Object]string{},
		handed:  map[types.Object]bool{},
		worker:  params[0],
		rangeLo: params[1], rangeHi: params[2],
		claimed: map[*ast.FuncLit]bool{},
	}
	return r
}

// loopVarOf reports whether obj is the loop variable of a for/range
// statement on the path (the spawn-loop idiom).
func loopVarOf(tp *typedPkg, path []ast.Node, obj types.Object) bool {
	for _, n := range path {
		switch v := n.(type) {
		case *ast.ForStmt:
			if as, ok := v.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && tp.info.Defs[id] == obj {
						return true
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if id, ok := e.(*ast.Ident); ok && tp.info.Defs[id] == obj {
					return true
				}
			}
		}
	}
	return false
}

// isWorkerExpr reports whether e's type is (a pointer to) the
// scheduler's Worker.
func isWorkerExpr(tp *typedPkg, e ast.Expr) bool {
	tv, ok := tp.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isWorkerNamed(tv.Type)
}

func isWorkerNamed(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if p, ok := t.(*types.Pointer); ok {
			named, ok = p.Elem().(*types.Named)
			if !ok {
				return false
			}
		} else {
			return false
		}
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Worker" && obj.Pkg() != nil &&
		isPath(obj.Pkg().Path(), schedPath)
}

// isZeroExpr reports whether e is the integer literal 0.
func isZeroExpr(e ast.Expr) bool {
	bl, ok := unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}
