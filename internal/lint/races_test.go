package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRacesFixtureClean pins the positive fixtures: one function per
// proof form the races pass accepts. Every shared write must land in a
// non-refused class, and every subrule the pass knows must fire at
// least once — a silent downgrade to refused is a regression even if
// the counts happen to balance.
func TestRacesFixtureClean(t *testing.T) {
	rep, err := Races(Config{Root: filepath.Join("testdata", "src", "races-clean")})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "races-clean.golden", rep.String())

	if rep.Refused != 0 || rep.Unexplained != 0 {
		t.Errorf("clean fixtures: %d refused (%d unexplained), want 0/0", rep.Refused, rep.Unexplained)
	}
	details := map[string]bool{}
	for _, s := range rep.Sites {
		details[s.Detail] = true
	}
	for _, want := range []string{
		"task-affine", "atomic.Add", "guarded by mu", "handed slot",
		"block-owner", "block-scaled", "unique-handout", "worker-owned",
		"range-owner", "join-branch-exclusive", "join-disjoint-slices",
	} {
		found := false
		for d := range details {
			if strings.Contains(d, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no clean-fixture site classified with detail containing %q", want)
		}
	}
}

// TestRacesFixtureBad pins the negative fixtures: shapes one obligation
// away from certifiable must all be refused, and only the site carrying
// a //lint:scared marker escapes the unexplained count (the fixture
// package sits in an enforced directory).
func TestRacesFixtureBad(t *testing.T) {
	rep, err := Races(Config{Root: filepath.Join("testdata", "src", "races-bad")})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "races-bad.golden", rep.String())

	for _, s := range rep.Sites {
		if s.Class != RaceRefused {
			t.Errorf("bad-fixture site %s:%d classified %s, want refused", s.File, s.Line, s.Class)
		}
	}
	if rep.Unexplained != 3 {
		t.Errorf("bad fixtures: %d unexplained, want 3 (only the audited site is exempt)", rep.Unexplained)
	}
	for _, s := range rep.Sites {
		if s.Marker && s.Func != "Audited" {
			t.Errorf("site in %s carries a marker; only Audited should", s.Func)
		}
	}
}

// TestRacesFixtureCallgraph pins callee-resolution shapes that once
// slipped through: generic instantiation, concrete methods, bound
// method values, defers, and call chains must all surface the shared
// write, while the allocation-fresh generic stays clean.
func TestRacesFixtureCallgraph(t *testing.T) {
	rep, err := Races(Config{Root: filepath.Join("testdata", "src", "callgraph")})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "races-callgraph.golden", rep.String())

	refusedIn := map[string]bool{}
	for _, s := range rep.Sites {
		if s.Class == RaceRefused {
			refusedIn[s.Func] = true
		} else if s.Func == "GenericFresh" {
			continue // the one clean region
		}
	}
	for _, fn := range []string{"GenericShared", "MethodShared", "MethodValue", "DeferShared", "ChainShared"} {
		if !refusedIn[fn] {
			t.Errorf("%s: shared write not refused — callee resolution gap", fn)
		}
	}
	if refusedIn["GenericFresh"] {
		t.Error("GenericFresh refused: allocation-fresh callee writes should be invisible")
	}
}

// TestRacesRepo runs the pass over the repository itself: the enforced
// directories must stay free of unexplained refusals, and the committed
// lint-races.json must match what the pass derives — the same staleness
// contract `make races` enforces in CI.
func TestRacesRepo(t *testing.T) {
	rep, err := Races(Config{Root: filepath.Join("..", "..")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unexplained != 0 {
		t.Errorf("%d unexplained refusals in enforced directories, want 0:", rep.Unexplained)
		for _, s := range rep.Sites {
			if s.Class == RaceRefused && !s.Marker && raceEnforced(s.File) {
				t.Errorf("  %s", s.String())
			}
		}
	}
	committed, err := os.ReadFile(filepath.Join("..", "..", "lint-races.json"))
	if err != nil {
		t.Fatalf("missing committed lint-races.json: %v (run make races-update)", err)
	}
	if string(committed) != string(rep.Marshal()) {
		t.Error("committed lint-races.json is stale (run make races-update)")
	}
}
