package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the bad-fixture golden file")

// TestFixtureClean runs the analyzer over a fixture module that obeys
// every rule: declared patterns, marker-contained mutex, task-indexed
// writes. Any diagnostic is a false positive.
func TestFixtureClean(t *testing.T) {
	rep, err := Run(Config{Root: filepath.Join("testdata", "src", "clean")})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diags {
		t.Errorf("false positive: %s", d)
	}
	if rep.Census.Total != 11 {
		t.Errorf("census total = %d, want 11", rep.Census.Total)
	}
	if got := rep.Census.PerKind["AW"]; got != 1 {
		t.Errorf("AW sites = %d, want 1 (bitmap frontier fixture)", got)
	}
	if got := rep.Census.PerKind["SngInd"]; got != 2 {
		t.Errorf("SngInd sites = %d, want 2", got)
	}
}

// TestFixtureBad runs the analyzer over the seeded-violation fixture
// and compares the rendered diagnostics against the golden file, so
// every rule's exact position and message stays pinned.
func TestFixtureBad(t *testing.T) {
	rep, err := Run(Config{Root: filepath.Join("testdata", "src", "bad")})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, d := range rep.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "bad.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}

	// Every rule class the fixture seeds must appear at least once.
	for _, rule := range []string{
		"undeclared-pattern", "undeclared-scared", "pattern-mismatch",
		"stale-declaration", "captured-write-nonindex", "captured-scalar-write",
		"worker-escape", "unchecked-in-example", "bad-marker",
	} {
		if !strings.Contains(got, rule) {
			t.Errorf("rule %s never fired:\n%s", rule, got)
		}
	}
}

// TestDirFilter pins the package-pattern normalization the CLI relies
// on ("./...", "internal/bench", "examples/...").
func TestDirFilter(t *testing.T) {
	cases := []struct {
		dirs []string
		rel  string
		want bool
	}{
		{nil, "internal/bench", true},
		{[]string{"./..."}, "internal/bench", true},
		{[]string{"internal/bench"}, "internal/bench", true},
		{[]string{"internal/bench"}, "internal/core", false},
		{[]string{"examples/..."}, "examples/demo", true},
		{[]string{"./internal/bench/..."}, "internal/bench", true},
		{[]string{"."}, "internal/core", true},
	}
	for _, c := range cases {
		if got := newDirFilter(c.dirs).match(c.rel); got != c.want {
			t.Errorf("filter(%v).match(%q) = %v, want %v", c.dirs, c.rel, got, c.want)
		}
	}
}
