package lint

// Interprocedural write-effect summaries for the races pass: when a
// parallel region calls an in-module function, the region's safety
// depends on what that function writes. effectOf summarizes a callee
// once, memoized per pass:
//
//	paramPlain   the callee performs plain writes through memory
//	             reachable from its parameters or receiver — the
//	             caller must hand it task-owned memory
//	paramAtomic  the callee writes through its parameters, but only
//	             with sync/atomic operations
//	shared       the callee writes package-level state (or something
//	             the summary cannot root) without synchronization;
//	             calling it from a region is refused outright
//
// Writes the callee makes under a held mutex, writes to memory it
// allocates itself, and atomic writes to shared state are all absent
// from the summary: they are safe regardless of the calling region.
// Function literals inside the callee are included — the dominant
// pattern here is a driver handing closures to a parallel primitive,
// and those closures' writes through the driver's parameters are
// exactly what the caller needs to know about.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// writeEffect is one function's summarized write behavior. The
// position sets record which parameters the writes actually reach
// (receiver = recvIdx), so a caller handing task-owned memory at the
// written positions can pass shared read-only data everywhere else —
// the compressed-CSR encoder's shape, where encodeRow(v, row, dst)
// writes dst but only reads the shared adjacency row. A raised flag
// with an empty set means the walk saw a parameter-rooted write it
// could not attribute to a position; every position then counts as
// written, the pre-positional conservative answer.
type writeEffect struct {
	paramPlain  bool
	paramAtomic bool
	shared      string // first offending write, for the refusal message

	plainIdx  map[int]bool
	atomicIdx map[int]bool
	plainAll  bool // an unattributed plain write: every position counts
	atomicAll bool
}

// recvIdx is the pseudo-position of a method receiver in the written-
// parameter sets.
const recvIdx = -1

// writesPlain reports whether the callee performs plain writes through
// the parameter at position idx.
func (e *writeEffect) writesPlain(idx int) bool {
	if !e.paramPlain {
		return false
	}
	return e.plainAll || len(e.plainIdx) == 0 || e.plainIdx[idx]
}

// writesAtomic is writesPlain for sync/atomic writes.
func (e *writeEffect) writesAtomic(idx int) bool {
	if !e.paramAtomic {
		return false
	}
	return e.atomicAll || len(e.atomicIdx) == 0 || e.atomicIdx[idx]
}

// writesThrough reports whether position idx is written at all.
func (e *writeEffect) writesThrough(idx int) bool {
	return e.writesPlain(idx) || e.writesAtomic(idx)
}

// effDecl locates a function's declaration with its type context.
type effDecl struct {
	tp *typedPkg
	f  *fileInfo
	fd *ast.FuncDecl
}

// effectOf returns fn's memoized write effect. Recursive cycles
// resolve optimistically (the first activation summarizes the rest of
// the body; a cycle participant's own frame contributes nothing extra).
func (rp *racePass) effectOf(fn *types.Func) *writeEffect {
	if eff, done := rp.effects[fn]; done {
		return eff
	}
	if rp.inEff == nil {
		rp.inEff = map[*types.Func]bool{}
	}
	if rp.inEff[fn] {
		return &writeEffect{}
	}
	rp.inEff[fn] = true
	defer delete(rp.inEff, fn)

	eff := rp.computeEffect(fn)
	rp.effects[fn] = eff
	return eff
}

func (rp *racePass) computeEffect(fn *types.Func) *writeEffect {
	d := rp.declOf(fn)
	if d == nil || d.fd.Body == nil {
		// In-module but undeclared (assembly stub, build-tagged out):
		// refuse rather than guess.
		return &writeEffect{shared: "body of " + fn.Name() + " not available to the analysis"}
	}
	w := &effWalk{
		rp: rp, tp: d.tp, f: d.f, fd: d.fd,
		eff:    &writeEffect{},
		params: map[types.Object]int{},
		defs:   map[types.Object]*effFact{},
	}
	if d.fd.Recv != nil {
		for _, fld := range d.fd.Recv.List {
			for _, nm := range fld.Names {
				if obj := d.tp.info.Defs[nm]; obj != nil {
					w.params[obj] = recvIdx
				}
			}
		}
	}
	if d.fd.Type.Params != nil {
		idx := 0
		for _, fld := range d.fd.Type.Params.List {
			if len(fld.Names) == 0 {
				idx++ // unnamed parameter still occupies a position
				continue
			}
			for _, nm := range fld.Names {
				if obj := d.tp.info.Defs[nm]; obj != nil {
					w.params[obj] = idx
				}
				idx++
			}
		}
	}
	w.collect()
	ast.Inspect(d.fd.Body, w.visit)
	return w.eff
}

// declOf finds the FuncDecl for an in-module *types.Func, indexing each
// package's declarations on first use.
func (rp *racePass) declOf(fn *types.Func) *effDecl {
	if rp.declIdx == nil {
		rp.declIdx = map[*types.Func]*effDecl{}
		rp.idxDone = map[string]bool{}
	}
	if d, ok := rp.declIdx[fn]; ok {
		return d
	}
	if fn.Pkg() == nil {
		return nil
	}
	rel, ok := rp.a.modRel(fn.Pkg().Path())
	if !ok {
		return nil
	}
	if !rp.idxDone[rel] {
		rp.idxDone[rel] = true
		if tp := rp.loader.check(rel); tp != nil {
			for _, f := range tp.pkg.files {
				for _, decl := range f.ast.Decls {
					fd, isFn := decl.(*ast.FuncDecl)
					if !isFn {
						continue
					}
					if tf, isTF := tp.info.Defs[fd.Name].(*types.Func); isTF {
						rp.declIdx[tf] = &effDecl{tp: tp, f: f, fd: fd}
					}
				}
			}
		}
	}
	return rp.declIdx[fn]
}

// ---------------------------------------------------------------------
// The callee body walk
// ---------------------------------------------------------------------

// effKind roots a memory access: callee-allocated, parameter-reachable,
// or package-shared. Order matters — merging takes the worst.
type effKind int

const (
	effLocal effKind = iota
	effParam
	effShared
)

// effFact accumulates every expression a variable was ever bound to;
// the variable's root is the worst root among them. unknown marks
// bindings the walk cannot model (tuple results, range clauses).
type effFact struct {
	srcs    []ast.Expr
	unknown bool
}

type effWalk struct {
	rp        *racePass
	tp        *typedPkg
	f         *fileInfo
	fd        *ast.FuncDecl
	eff       *writeEffect
	params    map[types.Object]int // param object -> position (receiver = recvIdx)
	defs      map[types.Object]*effFact
	litLocal  map[types.Object]bool     // region-closure params: per-invocation values
	litHanded map[types.Object]ast.Expr // region-closure handed params -> backing argument
	inRoot    map[types.Object]bool     // rootOf cycle guard (swap chains)
	held      int                       // mutex depth: writes under a held lock are the callee's business
}

// collect records every binding of every local for alias resolution.
func (w *effWalk) collect() {
	fact := func(obj types.Object) *effFact {
		fx := w.defs[obj]
		if fx == nil {
			fx = &effFact{}
			w.defs[obj] = fx
		}
		return fx
	}
	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i, lhs := range v.Lhs {
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := w.objOf(id)
					if obj == nil {
						continue
					}
					// x = append(x, ...) and x = x[i:j] rebind x to the
					// same underlying memory: no new root.
					if v.Tok != token.DEFINE && selfDerived(w.tp, v.Rhs[i], obj) {
						continue
					}
					fact(obj).srcs = append(fact(obj).srcs, v.Rhs[i])
				}
				return true
			}
			// Tuple call/assertion results: not modeled.
			for _, lhs := range v.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if obj := w.objOf(id); obj != nil {
						fact(obj).unknown = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, nm := range v.Names {
				obj := w.tp.info.Defs[nm]
				if obj == nil {
					continue
				}
				fx := fact(obj)
				switch {
				case len(v.Values) == len(v.Names):
					fx.srcs = append(fx.srcs, v.Values[i])
				case len(v.Values) > 0:
					fx.unknown = true // tuple initializer
				}
				// No initializer: zero value, srcs stays empty.
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := w.objOf(id); obj != nil {
						// The value variable may alias elements of the
						// ranged expression; root both through it.
						fact(obj).srcs = append(fact(obj).srcs, v.X)
					}
				}
			}
		case *ast.FuncLit:
			// Scalar and worker-handle parameters of any closure are
			// per-invocation values wherever the closure ends up invoked;
			// claim them so writes rooted at them stay local. Reference
			// parameters are left unclaimed (conservatively shared)
			// unless a region call site hands them memory.
			if v.Type.Params != nil {
				for _, fld := range v.Type.Params.List {
					for _, nm := range fld.Names {
						obj := w.tp.info.Defs[nm]
						if obj != nil && perInvocationParam(obj.Type()) {
							if w.litLocal == nil {
								w.litLocal = map[types.Object]bool{}
							}
							w.litLocal[obj] = true
						}
					}
				}
			}
		}
		return true
	})
}

// selfDerived reports whether rhs is append(x, ...) or a reslice of x —
// an assignment to x that preserves x's memory root.
func selfDerived(tp *typedPkg, rhs ast.Expr, obj types.Object) bool {
	isSelf := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && (tp.info.Uses[id] == obj || tp.info.Defs[id] == obj)
	}
	switch v := unparen(rhs).(type) {
	case *ast.SliceExpr:
		return isSelf(v.X)
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" && len(v.Args) > 0 {
			return isSelf(v.Args[0])
		}
	}
	return false
}

func (w *effWalk) objOf(id *ast.Ident) types.Object {
	if o := w.tp.info.Uses[id]; o != nil {
		return o
	}
	return w.tp.info.Defs[id]
}

// visit is the single-pass effect walk. Statement order is approximate
// (ast.Inspect order is source order within a function), which is
// enough for the straight-line Lock/Unlock discipline this module uses.
func (w *effWalk) visit(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.AssignStmt:
		if v.Tok == token.DEFINE {
			return true
		}
		for _, lhs := range v.Lhs {
			w.write(lhs)
		}
	case *ast.IncDecStmt:
		w.write(v.X)
	case *ast.DeferStmt:
		if w.lockOp(v.Call, true) {
			return false
		}
	case *ast.GoStmt:
		// The spawned body is walked by Inspect anyway if it is a
		// literal; a dynamic launch hides writes we cannot see.
		if _, ok := unparen(v.Call.Fun).(*ast.FuncLit); !ok {
			w.sharedAt(v, "launches a goroutine through "+types.ExprString(v.Call.Fun))
		}
	case *ast.CallExpr:
		return !w.call(v)
	}
	return true
}

// write classifies one assignment target in the callee.
func (w *effWalk) write(lhs ast.Expr) {
	base, steps, ok := peelTarget(lhs)
	if !ok {
		w.sharedAt(lhs, "writes through unmodeled expression "+types.ExprString(lhs))
		return
	}
	if len(steps) == 0 {
		return // writing a variable itself: callee-frame storage
	}
	obj := w.objOf(base)
	if obj == nil {
		w.sharedAt(lhs, "writes through unresolved "+types.ExprString(lhs))
		return
	}
	if !w.crosses(obj, steps) {
		return // stays inside a callee-frame variable (array/struct value)
	}
	ps := map[int]bool{}
	w.emit(w.rootOf(obj, 0, ps), lhs, false, ps)
}

// emit folds one rooted write into the summary. ps carries the
// parameter positions the write's memory can be rooted at; empty with
// kind effParam means attribution failed and every position is tainted.
func (w *effWalk) emit(kind effKind, at ast.Node, atomic bool, ps map[int]bool) {
	switch kind {
	case effLocal:
	case effParam:
		if atomic {
			w.eff.paramAtomic = true
			if len(ps) == 0 {
				w.eff.atomicAll = true
			}
			w.addIdx(&w.eff.atomicIdx, ps)
		} else if w.held == 0 {
			w.eff.paramPlain = true
			if len(ps) == 0 {
				w.eff.plainAll = true
			}
			w.addIdx(&w.eff.plainIdx, ps)
		}
	case effShared:
		if !atomic && w.held == 0 {
			w.sharedAt(at, "writes "+w.describe(at))
		}
	}
}

func (w *effWalk) addIdx(dst *map[int]bool, ps map[int]bool) {
	if len(ps) == 0 {
		return
	}
	if *dst == nil {
		*dst = map[int]bool{}
	}
	for i := range ps {
		(*dst)[i] = true
	}
}

func (w *effWalk) describe(at ast.Node) string {
	if e, ok := at.(ast.Expr); ok {
		return types.ExprString(e)
	}
	return "shared state"
}

func (w *effWalk) sharedAt(at ast.Node, what string) {
	if w.eff.shared != "" {
		return
	}
	pos := w.rp.a.fset.Position(at.Pos())
	w.eff.shared = fmt.Sprintf("%s at %s:%d", what, w.f.rel, pos.Line)
}

// crosses reports whether the access path leaves the variable's own
// storage (mirrors regionCheck.memClass's crossing analysis).
func (w *effWalk) crosses(obj types.Object, steps []targetStep) bool {
	t := obj.Type()
	for _, st := range steps {
		switch {
		case st.star:
			return true
		case st.index != nil:
			if _, isArr := t.Underlying().(*types.Array); !isArr {
				return true
			}
		case st.field != "":
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				return true
			}
		}
		t = stepType(t, st)
		if t == nil {
			return true
		}
	}
	return false
}

// rootOf resolves whose memory a variable's referent is: allocated
// here, reachable from a parameter, or package-shared. A variable's
// root is the worst root over everything it was ever bound to; every
// parameter that contributes a binding is recorded in ps.
func (w *effWalk) rootOf(obj types.Object, depth int, ps map[int]bool) effKind {
	if depth > 6 || obj == nil {
		return effShared
	}
	if idx, isParam := w.params[obj]; isParam {
		if ps != nil {
			ps[idx] = true
		}
		return effParam
	}
	if w.litLocal[obj] {
		return effLocal
	}
	if back, ok := w.litHanded[obj]; ok {
		return w.aliasRoot(back, depth+1, ps)
	}
	v, isVar := obj.(*types.Var)
	if !isVar {
		return effShared
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return effShared // package-level variable
	}
	fx := w.defs[obj]
	if fx == nil || fx.unknown {
		return effShared // untracked local (unclaimed closure param, tuple result)
	}
	if w.inRoot[obj] {
		// Binding cycle (a, b = b, a ping-pong): the cycle itself
		// introduces no memory; the true roots appear on the bindings
		// outside it, which the outer worst-of fold still visits.
		return effLocal
	}
	if w.inRoot == nil {
		w.inRoot = map[types.Object]bool{}
	}
	w.inRoot[obj] = true
	kind := effLocal // no bindings at all: the zero value
	for _, src := range fx.srcs {
		if k := w.aliasRoot(src, depth+1, ps); k > kind {
			kind = k
		}
	}
	delete(w.inRoot, obj)
	return kind
}

// aliasRoot resolves the root of the memory an expression evaluates to.
func (w *effWalk) aliasRoot(e ast.Expr, depth int, ps map[int]bool) effKind {
	if depth > 8 {
		return effShared
	}
	switch v := unparen(e).(type) {
	case *ast.Ident:
		if v.Name == "nil" {
			return effLocal
		}
		return w.rootOf(w.objOf(v), depth, ps)
	case *ast.SelectorExpr:
		return w.aliasRoot(v.X, depth+1, ps)
	case *ast.IndexExpr:
		return w.aliasRoot(v.X, depth+1, ps)
	case *ast.StarExpr:
		return w.aliasRoot(v.X, depth+1, ps)
	case *ast.SliceExpr:
		return w.aliasRoot(v.X, depth+1, ps)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return w.aliasRoot(v.X, depth+1, ps)
		}
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return effLocal
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok {
			switch {
			case id.Name == "make" || id.Name == "new":
				return effLocal
			case id.Name == "append" && len(v.Args) > 0:
				return w.aliasRoot(v.Args[0], depth+1, ps)
			}
		}
		if tv, ok := w.tp.info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return w.aliasRoot(v.Args[0], depth+1, ps)
		}
		// A call result is presumed derived from the call's reference
		// inputs: the receiver and by-reference arguments.
		kind := effLocal
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			isQualifier := false
			if id, isID := unparen(sel.X).(*ast.Ident); isID {
				_, isQualifier = w.objOf(id).(*types.PkgName)
			}
			if !isQualifier {
				if k := w.aliasRoot(sel.X, depth+1, ps); k > kind {
					kind = k
				}
			}
		}
		for _, arg := range byRefArgs(w.tp, v) {
			if k := w.aliasRoot(arg.expr, depth+1, ps); k > kind {
				kind = k
			}
		}
		return kind
	}
	return effShared
}

// lockOp tracks mutex depth inside the callee.
func (w *effWalk) lockOp(call *ast.CallExpr, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isNamedRecv(w.tp, sel.X, syncPath, "Mutex", "RWMutex") {
		return false
	}
	switch sel.Sel.Name {
	case "Lock":
		if !deferred {
			w.held++
		}
		return true
	case "Unlock":
		if !deferred && w.held > 0 {
			w.held--
		}
		return true
	case "RLock", "RUnlock", "TryLock":
		return true
	}
	return false
}

// call classifies one call inside the callee. Returns true when the
// call was fully handled (Inspect should not descend into it).
func (w *effWalk) call(call *ast.CallExpr) bool {
	if w.lockOp(call, false) {
		return true
	}
	w.claimRegionLits(call)
	if pathStr, name, isPkg := callTarget(w.f, call); isPkg {
		if isPath(pathStr, atomicPath) {
			if atomicWritePrefix(name) && len(call.Args) > 0 {
				ps := map[int]bool{}
				w.emit(w.targetRoot(call.Args[0], ps), call, true, ps)
			}
			return true
		}
		if isPath(pathStr, corePath) && coreAtomicHelpers[name] {
			if len(call.Args) > 0 {
				ps := map[int]bool{}
				w.emit(w.targetRoot(call.Args[0], ps), call, true, ps)
			}
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isAtomicRecv(w.tp, sel.X) {
			if atomicWriteMethods[sel.Sel.Name] {
				ps := map[int]bool{}
				w.emit(w.targetRoot(sel.X, ps), call, true, ps)
			}
			return true
		}
		if isNamedRecv(w.tp, sel.X, syncPath, "Mutex", "RWMutex", "WaitGroup", "Cond", "Once") {
			return true // synchronization, not user-state writes
		}
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "copy":
			if len(call.Args) == 2 {
				ps := map[int]bool{}
				w.emit(w.targetRoot(call.Args[0], ps), call, false, ps)
			}
			return false // still descend for the source expression
		case "delete":
			if len(call.Args) > 0 {
				ps := map[int]bool{}
				w.emit(w.targetRoot(call.Args[0], ps), call, false, ps)
			}
			return false
		}
	}

	fn, delegated := calleeOfTyped(w.tp, call)
	var boundRecv ast.Expr
	if fn == nil {
		if bf, recv := w.boundCallee(call.Fun); bf != nil {
			fn, delegated, boundRecv = bf, false, recv
		}
	}
	if delegated || fn == nil || fn.Pkg() == nil {
		return false
	}
	if _, inModule := w.rp.a.modRel(fn.Pkg().Path()); !inModule {
		key := fn.Pkg().Name() + "." + fn.Name()
		if stdlibMutators[key] && len(call.Args) > 0 {
			ps := map[int]bool{}
			w.emit(w.targetRoot(call.Args[0], ps), call, false, ps)
		}
		return false
	}

	// In-module sub-call: map the callee's summarized parameter writes
	// through this call's arguments at the written positions only —
	// read-only positions carry no write effect into this summary.
	sub := w.rp.effectOf(fn)
	if sub.shared != "" && w.held == 0 {
		w.sharedAt(call, "calls "+fn.Name()+", which "+sub.shared)
	}
	if sub.paramPlain || sub.paramAtomic {
		refs := byRefArgs(w.tp, call)
		if boundRecv != nil {
			if tv, ok := w.tp.info.Types[boundRecv]; !ok || tv.Type == nil || !isWorkerNamed(tv.Type) {
				refs = append(refs, effArg{expr: boundRecv, idx: recvIdx})
			}
		}
		for _, arg := range refs {
			if !sub.writesThrough(arg.idx) {
				continue
			}
			ps := map[int]bool{}
			root := w.targetRoot(arg.expr, ps)
			if sub.writesPlain(arg.idx) {
				w.emit(root, call, false, ps)
			}
			if sub.writesAtomic(arg.idx) {
				w.emit(root, call, true, ps)
			}
		}
	}
	return false
}

// targetRoot resolves an argument expression's memory root (through
// &x wrappers), recording contributing parameter positions in ps.
func (w *effWalk) targetRoot(e ast.Expr, ps map[int]bool) effKind {
	return w.aliasRoot(e, 0, ps)
}

// claimRegionLits registers the parameters of function literals handed
// to this call, before Inspect descends into the literal bodies. Value
// scalars and the per-task *Worker handle carry no caller memory, so
// writes rooted at them are invocation-local; parameters at a core
// primitive's handed positions alias elements of the primitive's data
// argument and root through it.
func (w *effWalk) claimRegionLits(call *ast.CallExpr) {
	handedIdx := map[int]ast.Expr{}
	primary := -1
	if pathStr, name, isPkg := callTarget(w.f, call); isPkg && isPath(pathStr, corePath) {
		if spec, ok := coreRegionSpecs[name]; ok && len(spec.bodyArgs) > 0 {
			primary = spec.bodyArgs[0]
			if len(call.Args) > 1 {
				for _, hi := range spec.handed {
					handedIdx[hi] = call.Args[1]
				}
			}
		}
	}
	for ai, arg := range call.Args {
		lit, ok := unparen(arg).(*ast.FuncLit)
		if !ok || lit.Type.Params == nil {
			continue
		}
		idx := 0
		for _, fld := range lit.Type.Params.List {
			if len(fld.Names) == 0 {
				idx++
				continue
			}
			for _, nm := range fld.Names {
				obj := w.tp.info.Defs[nm]
				if obj != nil {
					if back, isHanded := handedIdx[idx]; isHanded && ai == primary {
						if w.litHanded == nil {
							w.litHanded = map[types.Object]ast.Expr{}
						}
						w.litHanded[obj] = back
					} else if perInvocationParam(obj.Type()) {
						if w.litLocal == nil {
							w.litLocal = map[types.Object]bool{}
						}
						w.litLocal[obj] = true
					}
				}
				idx++
			}
		}
	}
}

// perInvocationParam reports whether a closure parameter of this type
// cannot carry caller-shared reference memory: a value scalar, or the
// worker handle the scheduler passes each task.
func perInvocationParam(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Basic); ok {
		return true
	}
	return isWorkerNamed(t)
}

// boundCallee resolves a call through a func-typed local that was
// bound exactly once to a method value or named function. A method
// value carries its receiver invisibly — f := c.bump; f() writes
// through c with no receiver in the call syntax — so the resolved
// binding returns the receiver expression for the caller to classify
// as by-reference memory. Func-typed parameters stay delegated: their
// bindings belong to callers the walk cannot see.
func (w *effWalk) boundCallee(fun ast.Expr) (*types.Func, ast.Expr) {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := w.objOf(id)
	if _, isParam := w.params[obj]; obj == nil || isParam {
		return nil, nil
	}
	fx := w.defs[obj]
	if fx == nil || fx.unknown || len(fx.srcs) != 1 {
		return nil, nil
	}
	return methodValueBinding(w.tp, fx.srcs[0])
}

// methodValueBinding resolves the expression a func-typed local was
// bound to: a concrete method value (returning the method and its
// bound receiver expression) or a named function. Anything else —
// literals, interface method values, call results — stays unresolved.
func methodValueBinding(tp *typedPkg, src ast.Expr) (fn *types.Func, recv ast.Expr) {
	if src == nil {
		return nil, nil
	}
	objOf := func(id *ast.Ident) types.Object {
		if o := tp.info.Uses[id]; o != nil {
			return o
		}
		return tp.info.Defs[id]
	}
	switch v := unparen(src).(type) {
	case *ast.Ident:
		if f, ok := objOf(v).(*types.Func); ok {
			return f, nil
		}
	case *ast.SelectorExpr:
		if selInfo, ok := tp.info.Selections[v]; ok {
			if selInfo.Kind() == types.MethodVal && !types.IsInterface(selInfo.Recv()) {
				if f, isF := selInfo.Obj().(*types.Func); isF {
					return f, v.X
				}
			}
			return nil, nil
		}
		if f, ok := objOf(v.Sel).(*types.Func); ok {
			return f, nil // package-qualified function value
		}
	}
	return nil, nil
}

// calleeOfTyped is calleeOf without a regionCheck: resolve a call to a
// declared function or report delegation.
func calleeOfTyped(tp *typedPkg, call *ast.CallExpr) (fn *types.Func, delegated bool) {
	fun := unparen(call.Fun)
	switch v := fun.(type) {
	case *ast.IndexExpr:
		fun = v.X
	case *ast.IndexListExpr:
		fun = v.X
	}
	objOf := func(id *ast.Ident) types.Object {
		if o := tp.info.Uses[id]; o != nil {
			return o
		}
		return tp.info.Defs[id]
	}
	switch v := unparen(fun).(type) {
	case *ast.Ident:
		switch obj := objOf(v).(type) {
		case *types.Func:
			return obj, false
		case *types.Var:
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				return nil, true
			}
		}
	case *ast.SelectorExpr:
		switch obj := objOf(v.Sel).(type) {
		case *types.Func:
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if types.IsInterface(sig.Recv().Type()) {
					return nil, true
				}
			}
			return obj, false
		case *types.Var:
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				return nil, true
			}
		}
	case *ast.FuncLit:
		return nil, true
	}
	return nil, false
}

// ---------------------------------------------------------------------
// By-reference arguments
// ---------------------------------------------------------------------

type effArg struct {
	expr ast.Expr
	idx  int // callee parameter position (receiver = recvIdx)
}

// byRefArgs lists the expressions a call could write through: the
// method receiver and every argument whose type carries references
// (pointer, slice, map, interface), each tagged with the callee
// parameter position it lands in. Function-typed arguments are
// excluded — they are delegated callees, not written-to memory — and
// so are *Worker handles: a callee's writes to its worker's scheduling
// state are the scheduler's synchronized business, not user state.
func byRefArgs(tp *typedPkg, call *ast.CallExpr) []effArg {
	var out []effArg
	var sig *types.Signature
	if tv, ok := tp.info.Types[call.Fun]; ok && tv.Type != nil {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selInfo, ok := tp.info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			if tv, ok := tp.info.Types[sel.X]; !ok || tv.Type == nil || !isWorkerNamed(tv.Type) {
				out = append(out, effArg{expr: sel.X, idx: recvIdx})
			}
		}
	}
	for ai, arg := range call.Args {
		tv, ok := tp.info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if isWorkerNamed(tv.Type) {
			continue
		}
		idx := ai
		if sig != nil && sig.Params().Len() > 0 && ai >= sig.Params().Len() {
			idx = sig.Params().Len() - 1 // variadic tail shares the last position
		}
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Interface:
			out = append(out, effArg{expr: arg, idx: idx})
		}
	}
	return out
}
