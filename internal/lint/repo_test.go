package lint

import (
	"reflect"
	"testing"

	// Importing bench for effect populates the runtime DeclareSite
	// registry the static census is checked against.
	_ "repro/internal/bench"
	"repro/internal/core"
)

// TestRepoClean asserts the linter runs clean over this repository:
// the compliance the PR establishes is enforced from here on.
func TestRepoClean(t *testing.T) {
	rep, err := Run(Config{Root: "../.."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diags {
		t.Errorf("repo diagnostic: %s", d)
	}
}

// TestStaticCensusMatchesRuntime diffs the source-derived census
// against core.TakeCensus for every benchmark: same benches, same
// per-bench pattern sets, same per-kind site counts.
func TestStaticCensusMatchesRuntime(t *testing.T) {
	rep, err := Run(Config{Root: "../.."})
	if err != nil {
		t.Fatal(err)
	}
	static := rep.Census.ToCoreCensus()
	runtime := core.TakeCensus()

	if len(runtime.Benches) != 18 {
		t.Fatalf("runtime census has %d benches, want 18: %v", len(runtime.Benches), runtime.Benches)
	}
	if !reflect.DeepEqual(static.Benches, runtime.Benches) {
		t.Fatalf("bench sets differ: static %v, runtime %v", static.Benches, runtime.Benches)
	}
	for _, b := range runtime.Benches {
		if !reflect.DeepEqual(static.PerBench[b], runtime.PerBench[b]) {
			t.Errorf("%s pattern set: static %v, runtime %v", b, static.PerBench[b], runtime.PerBench[b])
		}
	}
	if !reflect.DeepEqual(static.PerKind, runtime.PerKind) {
		t.Errorf("per-kind counts: static %v, runtime %v", static.PerKind, runtime.PerKind)
	}
	if static.Total != runtime.Total || static.Irregular != runtime.Irregular {
		t.Errorf("totals: static %d/%d irregular, runtime %d/%d irregular",
			static.Total, static.Irregular, runtime.Total, runtime.Irregular)
	}
	if len(core.SiteConflicts()) != 0 {
		t.Errorf("conflicting re-declarations in repo: %v", core.SiteConflicts())
	}
}
