// Package lint is rpblint's engine: a source-level "fear checker" for
// this reproduction, the static complement to internal/core's run-time
// checks.
//
// The paper's central claim is that Rust makes most parallel patterns
// fearless at *compile time*; the Go port reproduces the split only at
// *run time* (dynamic uniqueness/monotonicity checks, the DeclareSite
// census registry). This package closes the gap the way large
// unsafe-bearing codebases stay honest in practice — by statically
// auditing where the scary constructs live and checking the declared
// taxonomy against the code:
//
//  1. Static pattern census. Every call site of a core primitive is
//     classified into the paper's Table 3 taxonomy (Reduce/Sum → RO,
//     ForRange/ForEachIdx → Stride, Chunks/scans/packs → Block,
//     Sort/SortBy/Join → D&C, IndForEach[Unchecked] → SngInd,
//     IndChunks[Unchecked] → RngInd, atomics/locks/raw sync → AW), and
//     the core.DeclareSite registry is re-derived from source, so the
//     Table 1 / Fig 3 census is verifiable instead of self-reported.
//  2. Cross-checks. Inside internal/bench, a primitive call whose
//     pattern the benchmark never declares is an undeclared site; a
//     declared irregular pattern with no supporting construct anywhere
//     in the benchmark's kernel is a stale declaration; re-declaring a
//     (bench, label) site with a different pattern is a mismatch.
//  3. Scared-code containment. Unchecked primitives, raw goroutines,
//     and raw atomics/mutexes in internal/bench must be covered by an
//     irregular site declaration or an explicit "//lint:scared <reason>"
//     marker — the Go analog of an audited unsafe block. Unchecked
//     primitives are forbidden outright in examples/.
//  4. Race heuristics. Closures passed to Fearless primitives that
//     write a captured slice at an index unrelated to the task index,
//     writes to captured shared variables without atomics, and *Worker
//     values escaping into raw goroutines are all flagged.
//
// The package is stdlib-only (go/ast, go/parser, go/token): no type
// checker, no module loader. Resolution is syntactic — import aliases
// are honored, method calls resolve by name across imported in-module
// packages — which is exactly as strong as the repo's disciplined style
// needs and keeps the checker dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Role classifies a package directory's position in the suite's
// encapsulation hierarchy; rules are scoped by role.
type Role string

const (
	// RoleSubstrate packages (core, sched, arena, mq, specfor) implement
	// the primitives and their scratch memory: they encapsulate the
	// scared constructs the way a Rust library encapsulates unsafe
	// blocks. They are censused (how much
	// scared code the substrate contains) but not linted.
	RoleSubstrate Role = "substrate"
	// RoleBench packages declare census sites and are fully checked:
	// census cross-checks, containment, and race heuristics.
	RoleBench Role = "bench"
	// RoleKernel packages (suffix, geom, graph, ...) hold algorithm
	// kernels benches delegate to: race heuristics apply, and their
	// constructs serve as evidence for the benches that call them.
	RoleKernel Role = "kernel"
	// RoleExample packages are end-user documentation: unchecked
	// primitives are forbidden outright, race heuristics apply.
	RoleExample Role = "example"
)

// roleOf maps a slash-separated path relative to the module root to the
// role its rules run under.
func roleOf(rel string) Role {
	switch {
	case rel == "internal/core" || rel == "internal/sched" ||
		rel == "internal/arena" ||
		rel == "internal/mq" || rel == "internal/specfor":
		return RoleSubstrate
	case rel == "internal/bench" || strings.HasPrefix(rel, "internal/bench/"):
		return RoleBench
	case rel == "examples" || strings.HasPrefix(rel, "examples/"):
		return RoleExample
	default:
		return RoleKernel
	}
}

// Diag is one diagnostic: a rule violation at a source position.
type Diag struct {
	File    string `json:"file"` // path relative to the analysis root
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Bench   string `json:"bench,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Fear    string `json:"fear,omitempty"`
	Msg     string `json:"msg"`
}

func (d Diag) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
	if d.Fear != "" {
		s += fmt.Sprintf(" [%s]", d.Fear)
	}
	return s
}

// PackageStats counts the scared constructs a package contains — the
// encapsulation census of the related unsafe-auditing work, applied to
// this repo's own layers.
type PackageStats struct {
	Path      string `json:"path"` // relative to module root
	Role      Role   `json:"role"`
	Files     int    `json:"files"`
	Unchecked int    `json:"unchecked"`  // *Unchecked primitive calls
	Atomics   int    `json:"atomics"`    // sync/atomic calls and decls
	SyncDecls int    `json:"syncDecls"`  // sync.Mutex/WaitGroup/... decls
	GoStmts   int    `json:"goStmts"`    // raw go statements
	AWHelpers int    `json:"awHelpers"`  // WriteMin/CASLoop/ShardedLocks
	Engines   int    `json:"taskEngine"` // mq.Process / specfor.Run
}

// Scared reports the total scared-construct count.
func (p PackageStats) Scared() int {
	return p.Unchecked + p.Atomics + p.SyncDecls + p.GoStmts + p.AWHelpers + p.Engines
}

// Report is the full analysis result.
type Report struct {
	Census   StaticCensus   `json:"census"`
	Packages []PackageStats `json:"packages"`
	Diags    []Diag         `json:"diagnostics"`
}

// Config selects what to analyze.
type Config struct {
	// Root is the module root (the directory holding go.mod).
	Root string
	// Dirs restricts analysis to these directories (relative to Root).
	// Empty means the whole module.
	Dirs []string
	// CertsFile points at a lint-certs.json whose proved sites the
	// containment rules accept. Empty means <Root>/lint-certs.json,
	// loaded when present.
	CertsFile string
}

// newAnalysis parses the module under cfg.Root and builds the function
// index — the shared front half of Run and Certify.
func newAnalysis(cfg Config) (*analysis, error) {
	root := cfg.Root
	if root == "" {
		root = "."
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root (no go.mod): %w", root, err)
	}
	mod, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	pkgs, fset, err := parseModule(root)
	if err != nil {
		return nil, err
	}
	a := &analysis{
		fset:   fset,
		mod:    mod,
		pkgs:   pkgs,
		filter: newDirFilter(cfg.Dirs),
	}
	a.buildIndex()
	return a, nil
}

// loadCertIndex loads the certificate file the containment rules
// consult. An explicitly configured path must parse; the default path
// is best-effort (no certificates simply means no coverage — `make
// certify` is what keeps the committed file honest).
func (a *analysis) loadCertIndex(cfg Config) error {
	root := cfg.Root
	if root == "" {
		root = "."
	}
	path := cfg.CertsFile
	explicit := path != ""
	if !explicit {
		path = filepath.Join(root, "lint-certs.json")
	}
	certs, err := LoadCerts(path)
	if err != nil {
		if !explicit && os.IsNotExist(err) {
			return nil
		}
		if !explicit {
			return fmt.Errorf("lint: unreadable %s (regenerate with rpblint -certify -write-certs): %w", path, err)
		}
		return err
	}
	a.certs = certs.index()
	return nil
}

// Run analyzes the module under cfg.Root and returns the census, the
// per-package scared-construct stats, and all diagnostics.
func Run(cfg Config) (*Report, error) {
	a, err := newAnalysis(cfg)
	if err != nil {
		return nil, err
	}
	if err := a.loadCertIndex(cfg); err != nil {
		return nil, err
	}

	rep := &Report{}
	a.census = a.extractCensus()
	rep.Census = a.census
	for _, d := range a.censusDiags {
		a.report(d)
	}
	a.checkFiles()
	rep.Packages = a.packageStats()
	sort.Slice(a.diags, func(i, j int) bool {
		di, dj := a.diags[i], a.diags[j]
		if di.File != dj.File {
			return di.File < dj.File
		}
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		if di.Col != dj.Col {
			return di.Col < dj.Col
		}
		return di.Rule < dj.Rule
	})
	rep.Diags = a.diags
	return rep, nil
}

// moduleName reads the module path from a go.mod file.
func moduleName(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", path)
}

// fileInfo is one parsed non-test source file.
type fileInfo struct {
	pkg     *pkgInfo
	rel     string // path relative to module root
	ast     *ast.File
	imports map[string]string // local name -> import path
	markers map[int]string    // line -> //lint:scared reason
}

// pkgInfo is one parsed directory.
type pkgInfo struct {
	path  string // import path relative to module root ("" for root)
	role  Role
	files []*fileInfo
}

var skipDirs = map[string]bool{
	".git": true, ".github": true, "testdata": true,
	"docs": true, "inputs": true,
}

// parseModule parses every non-test .go file under root, grouped by
// directory.
func parseModule(root string) (map[string]*pkgInfo, *token.FileSet, error) {
	fset := token.NewFileSet()
	pkgs := map[string]*pkgInfo{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] || strings.HasPrefix(d.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		if dir == "." {
			dir = ""
		}
		p := pkgs[dir]
		if p == nil {
			p = &pkgInfo{path: dir, role: roleOf(dir)}
			pkgs[dir] = p
		}
		fi := &fileInfo{
			pkg:     p,
			rel:     rel,
			ast:     f,
			imports: importMap(f),
			markers: scanMarkers(fset, f),
		}
		p.files = append(p.files, fi)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return pkgs, fset, nil
}

// importMap maps each file-local import name to its import path.
func importMap(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		m[name] = path
	}
	return m
}

// markerPrefix is the audited-scared escape hatch, the analog of an
// unsafe block with a review comment.
const markerPrefix = "//lint:scared"

// scanMarkers collects //lint:scared markers by line. A marker with an
// empty reason maps to the empty string (reported by checkFiles).
func scanMarkers(fset *token.FileSet, f *ast.File) map[int]string {
	m := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, markerPrefix); ok {
				m[fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return m
}

// dirFilter restricts which directories produce diagnostics (census and
// call-graph evidence always use the whole module).
type dirFilter struct{ dirs []string }

func newDirFilter(dirs []string) *dirFilter {
	f := &dirFilter{}
	for _, d := range dirs {
		d = filepath.ToSlash(strings.TrimPrefix(d, "./"))
		d = strings.TrimSuffix(d, "...")
		d = strings.Trim(d, "/")
		if d == "." {
			d = ""
		}
		f.dirs = append(f.dirs, d)
	}
	return f
}

func (f *dirFilter) match(rel string) bool {
	if len(f.dirs) == 0 {
		return true
	}
	for _, d := range f.dirs {
		if d == "" || rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}
