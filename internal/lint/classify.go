package lint

import (
	"go/ast"

	"repro/internal/core"
)

// construct is a bitmask of the pattern-relevant constructs a piece of
// code uses. The low bits mirror the Table 3 taxonomy for recommended
// (Fearless/Comfortable) expressions; the high bits track the scared
// building blocks.
type construct uint32

const (
	cRO construct = 1 << iota
	cStride
	cBlock
	cDC
	cSngInd       // checked: IndForEach, Scatter
	cRngInd       // checked: IndChunks
	cUncheckedSng // IndForEachUnchecked, ScatterAtomic32
	cUncheckedRng // IndChunksUnchecked
	cAWHelper     // WriteMin*/WriteMax*/CASLoop*
	cLocks        // NewShardedLocks
	cAtomic       // sync/atomic call or declaration
	cSyncDecl     // sync.Mutex / RWMutex / WaitGroup / Cond declaration
	cGoStmt       // raw go statement
	cTaskEngine   // mq.Process / specfor.Run dynamic-task engines
)

// cAnySync marks the synchronized expression family: any of these can
// legitimately express an irregular (SngInd/RngInd/AW) access, the
// paper's "placate the type system" option.
const cAnySync = cAWHelper | cLocks | cAtomic | cSyncDecl | cGoStmt | cTaskEngine

// cScared are the constructs the containment rule audits — the Go
// analogs of unsafe blocks.
const cScared = cUncheckedSng | cUncheckedRng | cAnySync

// patternBit maps a Table 3 pattern to its checked-construct bit.
func patternBit(p core.Pattern) construct {
	switch p {
	case core.RO:
		return cRO
	case core.Stride:
		return cStride
	case core.Block:
		return cBlock
	case core.DC:
		return cDC
	case core.SngInd:
		return cSngInd
	case core.RngInd:
		return cRngInd
	}
	return 0
}

// corePath and friends are the import paths resolution keys on. The
// classifier matches by path suffix so it works from any module name.
const (
	corePath    = "internal/core"
	schedPath   = "internal/sched"
	mqPath      = "internal/mq"
	specforPath = "internal/specfor"
	atomicPath  = "sync/atomic"
	syncPath    = "sync"
)

func isPath(imported, want string) bool {
	return imported == want ||
		(len(imported) > len(want) && imported[len(imported)-len(want)-1] == '/' &&
			imported[len(imported)-len(want):] == want)
}

// coreCall describes one classified call of a core primitive.
type coreCall struct {
	name    string
	pattern core.Pattern
	fear    core.Fear
	mask    construct
	// worker reports whether the primitive's first argument is the
	// worker; such calls are skipped when that argument is a literal
	// nil (sequential use — not a parallel access site).
	worker bool
}

// coreCalls classifies every exported core primitive into the paper's
// taxonomy (the "Parallel expression" column of Table 3, extended to
// the whole library surface).
var coreCalls = map[string]coreCall{
	// RO — read-only operators: reductions never share an accumulator.
	"Reduce":    {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"MapReduce": {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"Sum":       {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"Max":       {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"Min":       {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"MaxIndex":  {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"Count":     {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"All":       {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"SegReduce": {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},
	"IsSorted":  {pattern: core.RO, fear: core.Fearless, mask: cRO, worker: true},

	// Stride — array[i] = f(): each task owns index i.
	"ForRange":   {pattern: core.Stride, fear: core.Fearless, mask: cStride, worker: true},
	"ForEachIdx": {pattern: core.Stride, fear: core.Fearless, mask: cStride, worker: true},
	"Fill":       {pattern: core.Stride, fear: core.Fearless, mask: cStride, worker: true},
	"Tabulate":   {pattern: core.Stride, fear: core.Fearless, mask: cStride, worker: true},
	"CopyInto":   {pattern: core.Stride, fear: core.Fearless, mask: cStride, worker: true},
	"Stencil2D":  {pattern: core.Stride, fear: core.Fearless, mask: cStride, worker: true},

	// Block — array[i*s..(i+1)*s] = f(): disjoint chunks, scans, packs.
	// The *Into forms are the destination-passing variants
	// (docs/MEMORY.md): same access pattern, caller-owned output.
	"Chunks":            {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"ScanExclusive":     {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"ScanInclusive":     {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"ScanExclusiveOp":   {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"ScanExclusiveInto": {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"ScanInclusiveInto": {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"PackIndex":         {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"PackIndexInto":     {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"Filter":            {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"FilterInto":        {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"Flatten":           {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},
	"FlattenInto":       {pattern: core.Block, fear: core.Fearless, mask: cBlock, worker: true},

	// D&C — divide and conquer: fork/join recursion.
	"Sort":     {pattern: core.DC, fear: core.Fearless, mask: cDC, worker: true},
	"SortBy":   {pattern: core.DC, fear: core.Fearless, mask: cDC, worker: true},
	"Async":    {pattern: core.DC, fear: core.Fearless, mask: cDC, worker: true},
	"Pipeline": {pattern: core.DC, fear: core.Fearless, mask: cDC, worker: true},

	// SngInd — array[B[i]] = f(): comfortable via the run-time
	// uniqueness check, scared unchecked.
	"IndForEach":          {pattern: core.SngInd, fear: core.Comfortable, mask: cSngInd, worker: true},
	"Scatter":             {pattern: core.SngInd, fear: core.Comfortable, mask: cSngInd, worker: true},
	"IndForEachUnchecked": {pattern: core.SngInd, fear: core.Scared, mask: cUncheckedSng, worker: true},
	"ScatterAtomic32":     {pattern: core.SngInd, fear: core.Scared, mask: cUncheckedSng, worker: true},

	// RngInd — array[B[i]..B[i+1]] = f(): comfortable via the run-time
	// monotonicity check, scared unchecked.
	"IndChunks":          {pattern: core.RngInd, fear: core.Comfortable, mask: cRngInd, worker: true},
	"IndChunksUnchecked": {pattern: core.RngInd, fear: core.Scared, mask: cUncheckedRng, worker: true},

	// AW — arbitrary reads and writes: the library's synchronization
	// helpers; always scared, declaration-only in the census.
	"WriteMin32":      {pattern: core.AW, fear: core.Scared, mask: cAWHelper},
	"WriteMin64":      {pattern: core.AW, fear: core.Scared, mask: cAWHelper},
	"WriteMax32":      {pattern: core.AW, fear: core.Scared, mask: cAWHelper},
	"WriteMinU32":     {pattern: core.AW, fear: core.Scared, mask: cAWHelper},
	"WriteMinU64":     {pattern: core.AW, fear: core.Scared, mask: cAWHelper},
	"CASLoop32":       {pattern: core.AW, fear: core.Scared, mask: cAWHelper},
	"SetBit":          {pattern: core.AW, fear: core.Scared, mask: cAWHelper},
	"NewShardedLocks": {pattern: core.AW, fear: core.Scared, mask: cLocks},
}

// parallelBodyArg gives, for primitives that take a per-task closure,
// the argument index of that closure. These are the "Fearless
// primitive body" positions the race heuristics inspect.
var parallelBodyArg = map[string][]int{
	"ForRange":            {4},
	"ForEachIdx":          {3},
	"Chunks":              {3},
	"Tabulate":            {2},
	"Fill":                nil,
	"Stencil2D":           {4},
	"Reduce":              {3, 4},
	"MapReduce":           {3, 4},
	"Count":               {2},
	"All":                 {2},
	"SegReduce":           {4, 5},
	"PackIndex":           {2},
	"PackIndexInto":       {2},
	"Filter":              {2},
	"FilterInto":          {2},
	"SortBy":              {2},
	"IsSorted":            {2},
	"ScanExclusiveOp":     {3},
	"IndForEach":          {3},
	"IndForEachUnchecked": {3},
	"IndChunks":           {3},
	"IndChunksUnchecked":  {3},
}

// syncDeclTypes are the raw-synchronization types whose declaration
// counts as a scared construct.
var syncDeclTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Cond": true, "Locker": true,
}

// isNilIdent reports whether e is the literal nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// callTarget resolves a call's package-qualified target: it returns the
// import path and selector name for pkg.Fn(...) calls — including
// explicitly instantiated generics like arena.Alloc[int32](a, n) — or
// ok=false for anything else (method values, locals, conversions).
func callTarget(f *fileInfo, call *ast.CallExpr) (path, name string, ok bool) {
	fun := call.Fun
	switch v := fun.(type) {
	case *ast.IndexExpr:
		fun = v.X
	case *ast.IndexListExpr:
		fun = v.X
	}
	sel, isSel := fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path, imported := f.imports[id.Name]
	if !imported {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// classifyCall classifies one call expression. It returns the matched
// coreCall (for core primitives) and/or a construct mask for the other
// scared building blocks. ok is false for unclassified calls.
func classifyCall(f *fileInfo, call *ast.CallExpr) (cc coreCall, mask construct, ok bool) {
	path, name, isPkgCall := callTarget(f, call)
	if !isPkgCall {
		return coreCall{}, 0, false
	}
	switch {
	case isPath(path, corePath):
		cc, found := coreCalls[name]
		if !found {
			return coreCall{}, 0, false
		}
		cc.name = name
		if cc.worker && len(call.Args) > 0 && isNilIdent(call.Args[0]) {
			// Sequential use (nil worker): not a parallel access site.
			return coreCall{}, 0, false
		}
		return cc, cc.mask, true
	case path == atomicPath:
		return coreCall{}, cAtomic, true
	case isPath(path, mqPath) && (name == "Process" || name == "ProcessOpt" || name == "ProcessBatch"),
		isPath(path, specforPath) && name == "Run":
		return coreCall{}, cTaskEngine, true
	}
	return coreCall{}, 0, false
}

// declConstruct classifies a variable/field declaration type as a
// scared construct (sync.Mutex, atomic.Int64, ...).
func declConstruct(f *fileInfo, typ ast.Expr) construct {
	sel, ok := typ.(*ast.SelectorExpr)
	if !ok {
		if star, isStar := typ.(*ast.StarExpr); isStar {
			return declConstruct(f, star.X)
		}
		return 0
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return 0
	}
	path, imported := f.imports[id.Name]
	if !imported {
		return 0
	}
	if path == syncPath && syncDeclTypes[sel.Sel.Name] {
		return cSyncDecl
	}
	if path == atomicPath {
		return cAtomic
	}
	return 0
}
