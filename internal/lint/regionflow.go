package lint

// The lifetimes flow walk: a per-function, statement-ordered dataflow
// over arena checkouts. Lexical order approximates dominance (the same
// bargain the certify and races passes strike): a statement is assumed
// to execute after the one above it, loops execute their body once,
// and both branches of an if are walked in order. The walk is
// refusal-biased — anything it cannot prove confined is refused with a
// proof-chain reason — so the approximation errs toward noise, never
// toward silence.
//
// Closure bodies are walked inline at their FIRST reference (call
// argument or direct call), not at their definition: a named closure
// like isort's syncScatter reads memory a helper call fills between
// the definition and the first use, and walking at the definition
// would refuse a read that can never happen uninitialized.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lifeMethodContracts are out-parameter contracts for dynamic
// (interface) callees the walk cannot summarize: the named method
// fills its slice argument and returns an alias of it, retaining
// nothing. RowInto/WRow are the Adjacency seam's row decoders.
var lifeMethodContracts = map[string]bool{
	"RowInto": true,
	"WRow":    true,
}

// arenaRec is one tracked arena identity.
type arenaRec struct {
	standalone bool // arena.Standalone(): owned by the creating goroutine
	gen        int  // bumped by Reset
	stack      []*markRec
}

// markRec is one live Mark checkout point.
type markRec struct {
	ar       *arenaRec
	gen      int // arena generation at Mark time
	released bool
	deferRel bool // released via defer: covers panic edges, all paths
}

// checkout is one tracked arena allocation and everything aliasing it.
type checkout struct {
	origin string // Alloc | AllocUninit | AcquireBox
	node   ast.Node
	expr   string // first binding, for display
	ar     *arenaRec
	mark   *markRec // innermost live mark at allocation (nil: unmarked)

	uninit  bool // AllocUninit: reads must be dominated by a fill
	written bool

	isBox     bool
	boxType   string
	fields    map[string]*checkout // live transit stores into this box
	deferRelB bool                 // ReleaseBox via defer

	regionBody *ast.BlockStmt // innermost parallel region at allocation
	goBody     *ast.BlockStmt // innermost go-launched closure at allocation

	workerConf string // worker-confined detail, decided at a store site

	released   bool
	releasedBy string // Release | Reset | ReleaseBox

	class, detail, reason string
	marker                bool
}

// valDesc is what an expression evaluates to, as far as the walk cares.
type valDesc struct {
	co   *checkout   // expression aliases this checkout's memory
	held []*checkout // expression holds references to these checkouts
	mark *markRec
	ar   *arenaRec
}

func (v *valDesc) all() []*checkout {
	if v == nil {
		return nil
	}
	if v.co != nil {
		return append([]*checkout{v.co}, v.held...)
	}
	return v.held
}

// lifeWalk is the per-function walk state.
type lifeWalk struct {
	lp *lifePass
	tp *typedPkg
	f  *fileInfo
	fd *ast.FuncDecl

	regions      []*raceRegion
	regionByBody map[*ast.BlockStmt]*raceRegion

	litOf  map[types.Object]*ast.FuncLit // named closures
	walked map[*ast.FuncLit]bool

	carriers map[types.Object]*checkout
	holders  map[types.Object][]*checkout
	marks    map[types.Object]*markRec
	arenas   map[types.Object]*arenaRec

	regionStack []*ast.BlockStmt
	goStack     []*ast.BlockStmt

	cos       []*checkout
	sites     []LifeSite
	markCount int
}

func newLifeWalk(lp *lifePass, tp *typedPkg, f *fileInfo, fd *ast.FuncDecl, regions []*raceRegion) *lifeWalk {
	lw := &lifeWalk{
		lp: lp, tp: tp, f: f, fd: fd, regions: regions,
		regionByBody: map[*ast.BlockStmt]*raceRegion{},
		litOf:        map[types.Object]*ast.FuncLit{},
		walked:       map[*ast.FuncLit]bool{},
		carriers:     map[types.Object]*checkout{},
		holders:      map[types.Object][]*checkout{},
		marks:        map[types.Object]*markRec{},
		arenas:       map[types.Object]*arenaRec{},
	}
	for _, r := range regions {
		lw.regionByBody[r.body] = r
	}
	if rr := runRangeRegion(tp, fd); rr != nil {
		lw.regions = append(lw.regions, rr)
	}
	// Named closures, resolvable when handed to a call or invoked.
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if lit, ok := unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				if obj := lw.tp.info.Defs[id]; obj != nil {
					lw.litOf[obj] = lit
				}
			}
		}
		return true
	})
	return lw
}

// run walks the function body and classifies every checkout.
func (lw *lifeWalk) run() {
	lw.walkStmts(lw.fd.Body.List)
	lw.finalize()
}

func (lw *lifeWalk) pos(n ast.Node) token.Position {
	return lw.lp.a.fset.Position(n.Pos())
}

// refuse records a refusal on a checkout, keeping the first reason.
func (lw *lifeWalk) refuse(co *checkout, n ast.Node, reason string) {
	if co == nil || co.class == LifeRefused {
		return
	}
	co.class, co.detail, co.reason = LifeRefused, "", reason
	co.marker = lw.lp.a.markerFor(lw.f, n) || lw.lp.a.markerFor(lw.f, co.node)
}

// violation records a refusal site that is not a checkout (a bad
// Release).
func (lw *lifeWalk) violation(n ast.Node, expr, reason string) {
	p := lw.pos(n)
	lw.sites = append(lw.sites, LifeSite{
		File: lw.f.rel, Line: p.Line, Col: p.Column,
		Func: lw.fd.Name.Name, Origin: "Release", Expr: expr,
		Class: LifeRefused, Reason: reason,
		Marker: lw.lp.a.markerFor(lw.f, n),
	})
}

// settle classifies a checkout that reached a release point.
func settle(co *checkout, class, detail string) {
	if co.class == LifeRefused {
		return
	}
	co.class, co.detail = class, detail
}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

func (lw *lifeWalk) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		lw.walkStmt(s)
	}
}

func (lw *lifeWalk) walkStmt(s ast.Stmt) {
	switch v := s.(type) {
	case nil:
	case *ast.AssignStmt:
		lw.assign(v)
	case *ast.ExprStmt:
		lw.eval(v.X)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						lw.bindIdent(name, lw.eval(vs.Values[i]), vs)
					}
				}
			}
		}
	case *ast.IfStmt:
		lw.walkStmt(v.Init)
		lw.eval(v.Cond)
		lw.walkStmts(v.Body.List)
		lw.walkStmt(v.Else)
	case *ast.ForStmt:
		lw.walkStmt(v.Init)
		if v.Cond != nil {
			lw.eval(v.Cond)
		}
		lw.walkStmts(v.Body.List)
		lw.walkStmt(v.Post)
	case *ast.RangeStmt:
		d := lw.eval(v.X)
		if d != nil && d.co != nil && v.Value != nil {
			lw.readCheck(d.co, v.X) // range-with-value reads elements
		}
		lw.walkStmts(v.Body.List)
	case *ast.BlockStmt:
		lw.walkStmts(v.List)
	case *ast.LabeledStmt:
		lw.walkStmt(v.Stmt)
	case *ast.SwitchStmt:
		lw.walkStmt(v.Init)
		if v.Tag != nil {
			lw.eval(v.Tag)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lw.eval(e)
				}
				lw.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		lw.walkStmt(v.Init)
		lw.walkStmt(v.Assign)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lw.walkStmt(cc.Comm)
				lw.walkStmts(cc.Body)
			}
		}
	case *ast.SendStmt:
		lw.eval(v.Chan)
		d := lw.eval(v.Value)
		for _, co := range d.all() {
			lw.refuse(co, v, "sent on a channel: the receiver outlives the checkout")
		}
	case *ast.ReturnStmt:
		for _, res := range v.Results {
			d := lw.eval(res)
			for _, co := range d.all() {
				lw.refuse(co, v, fmt.Sprintf("returned from %s: the caller outlives the checkout", lw.fd.Name.Name))
			}
		}
	case *ast.DeferStmt:
		lw.deferred(v.Call)
	case *ast.GoStmt:
		lw.goStmt(v)
	case *ast.IncDecStmt:
		// carrier[i]++ reads then writes the element.
		if ix, ok := unparen(v.X).(*ast.IndexExpr); ok {
			if co := lw.carrierOf(ix.X); co != nil {
				lw.readCheck(co, v)
				co.written = true
				lw.eval(ix.Index)
				return
			}
		}
		lw.eval(v.X)
	}
}

// deferred handles a defer statement: a deferred Release/ReleaseBox
// covers panic edges, so it proves release on all paths.
func (lw *lifeWalk) deferred(call *ast.CallExpr) {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && isArenaExpr(lw.tp, sel.X) {
		if sel.Sel.Name == "Release" && len(call.Args) == 1 {
			if mr := lw.markOf(call.Args[0]); mr != nil {
				mr.deferRel = true
				return
			}
		}
	}
	if pathStr, name, isPkg := callTarget(lw.f, call); isPkg && isPath(pathStr, arenaPath) &&
		name == "ReleaseBox" && len(call.Args) == 2 {
		if co := lw.carrierOf(call.Args[1]); co != nil && co.isBox {
			co.deferRelB = true
			return
		}
	}
	lw.eval(call)
}

// goStmt walks a spawned goroutine body under a goroutine boundary.
func (lw *lifeWalk) goStmt(v *ast.GoStmt) {
	if lit, ok := unparen(v.Call.Fun).(*ast.FuncLit); ok {
		for _, arg := range v.Call.Args {
			lw.eval(arg)
		}
		lw.goStack = append(lw.goStack, lit.Body)
		lw.walkLit(lit)
		lw.goStack = lw.goStack[:len(lw.goStack)-1]
		return
	}
	for _, arg := range v.Call.Args {
		d := lw.eval(arg)
		for _, co := range d.all() {
			lw.refuse(co, v, "handed to a new goroutine: escapes the spawning worker")
		}
	}
}

// walkLit walks a closure body inline, once, under the region that
// claimed it (if any).
func (lw *lifeWalk) walkLit(lit *ast.FuncLit) {
	if lit == nil || lw.walked[lit] {
		return
	}
	lw.walked[lit] = true
	isRegion := lw.regionByBody[lit.Body] != nil
	if isRegion {
		lw.regionStack = append(lw.regionStack, lit.Body)
	}
	lw.walkStmts(lit.Body.List)
	if isRegion {
		lw.regionStack = lw.regionStack[:len(lw.regionStack)-1]
	}
}

// ---------------------------------------------------------------------
// Assignment
// ---------------------------------------------------------------------

// assign is two-phase: evaluate every RHS first, then bind every LHS,
// so swaps (src, dst = dst, src) rebind correctly.
func (lw *lifeWalk) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		// Tuple call / comma-ok: evaluate, bind nothing trackable.
		for _, r := range as.Rhs {
			lw.eval(r)
		}
		return
	}
	descs := make([]*valDesc, len(as.Rhs))
	nils := make([]bool, len(as.Rhs))
	for i, r := range as.Rhs {
		if isNilExpr(lw.tp, r) {
			nils[i] = true
			continue
		}
		// Defer named-closure walking: a FuncLit RHS is recorded (in
		// litOf, built up front) but not walked here.
		if _, isLit := unparen(r).(*ast.FuncLit); isLit {
			continue
		}
		descs[i] = lw.eval(r)
	}
	for i, lhs := range as.Lhs {
		lw.bindLHS(lhs, descs[i], nils[i], as)
	}
}

func (lw *lifeWalk) bindLHS(lhs ast.Expr, d *valDesc, isNil bool, at ast.Node) {
	switch v := unparen(lhs).(type) {
	case *ast.Ident:
		lw.bindIdent(v, d, at)
	case *ast.IndexExpr:
		// carrier[i] = x: an element fill.
		if co := lw.carrierOf(v.X); co != nil {
			lw.useCheck(co, at)
			co.written = true
		}
		lw.eval(v.Index)
		// Storing a carrier into somebody else's element memory.
		for _, co := range d.all() {
			if lw.carrierOf(v.X) == nil {
				lw.refuse(co, at, "stored into indexed memory the pass cannot confine")
			}
		}
	case *ast.SelectorExpr:
		lw.bindField(v, d, isNil, at)
	case *ast.StarExpr:
		for _, co := range d.all() {
			lw.refuse(co, at, "stored through a pointer the pass cannot confine")
		}
	}
}

// bindIdent binds a value to a variable, refusing bindings that move a
// checkout out of the scope that owns it.
func (lw *lifeWalk) bindIdent(id *ast.Ident, d *valDesc, at ast.Node) {
	if id.Name == "_" {
		return
	}
	obj := lw.tp.info.Defs[id]
	if obj == nil {
		obj = lw.tp.info.Uses[id]
	}
	if obj == nil {
		return
	}
	// Rebinding a variable kills its old alias.
	delete(lw.carriers, obj)
	delete(lw.holders, obj)
	if d == nil {
		return
	}
	if d.mark != nil {
		lw.marks[obj] = d.mark
		return
	}
	if d.ar != nil {
		lw.arenas[obj] = d.ar
		return
	}
	cos := d.all()
	if len(cos) == 0 {
		return
	}
	// Escape checks: binding to a package-level variable, or to a
	// variable declared outside the region/goroutine that owns the
	// checkout, outlives the checkout.
	pkgLevel := obj.Parent() == lw.tp.tpkg.Scope()
	for _, co := range cos {
		switch {
		case pkgLevel:
			lw.refuse(co, id, "stored into package-level "+id.Name+": outlives every region")
		case co.regionBody != nil && !within(obj.Pos(), co.regionBody):
			lw.refuse(co, id, "escapes its region: stored into "+id.Name+" declared outside the region body")
		case co.goBody != nil && !within(obj.Pos(), co.goBody):
			lw.refuse(co, id, "escapes its goroutine: stored into "+id.Name+" declared outside the worker goroutine")
		}
	}
	if d.co != nil {
		if d.co.expr == "" || d.co.expr == "_" {
			d.co.expr = id.Name
		}
		lw.carriers[obj] = d.co
		if len(d.held) > 0 {
			lw.holders[obj] = d.held
		}
		return
	}
	lw.holders[obj] = d.held
}

// bindField handles x.f = v: box transit stores, box-field handoffs,
// clears, and refused escapes.
func (lw *lifeWalk) bindField(sel *ast.SelectorExpr, d *valDesc, isNil bool, at ast.Node) {
	base := unparen(sel.X)
	baseCo := lw.carrierOf(base)
	field := sel.Sel.Name

	if isNil {
		if baseCo != nil && baseCo.isBox {
			delete(baseCo.fields, field)
		}
		return
	}
	cos := d.all()
	if len(cos) == 0 {
		return
	}
	// The base's type decides the store's fate.
	tn := ""
	if tv, ok := lw.tp.info.Types[base]; ok && tv.Type != nil {
		tn = boxTypeName(tv.Type)
	}
	for _, co := range cos {
		switch {
		case baseCo != nil && baseCo.isBox:
			// Transit through a local box: must be cleared before the
			// box goes back through ReleaseBox.
			if baseCo.fields == nil {
				baseCo.fields = map[string]*checkout{}
			}
			baseCo.fields[field] = co
			if co.expr == "" || co.expr == "_" {
				co.expr = tn + "." + field
			}
		case tn != "" && lw.lp.boxTypes[tn]:
			// A box the caller owns (box-typed parameter): the handoff
			// is worker-confined iff the module provably clears the
			// field before the box is reused.
			if lw.lp.boxCleared[tn+"."+field] {
				if co.workerConf == "" {
					co.workerConf = "handed off via " + tn + "." + field + ", cleared before box reuse"
				}
				if co.expr == "" || co.expr == "_" {
					co.expr = tn + "." + field
				}
			} else {
				lw.refuse(co, at, "stored into "+tn+"."+field+", never cleared before the box is reused")
			}
		default:
			lw.refuse(co, at, "stored into a field of "+types.ExprString(base)+": the pass cannot confine the target")
		}
	}
}

// within reports whether a declaration position falls inside a block.
func within(p token.Pos, b *ast.BlockStmt) bool {
	return p >= b.Pos() && p <= b.End()
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

// carrierOf resolves an expression to the checkout it aliases, if the
// walk tracks one: a bound ident, a reslice of one, or a transit box
// field.
func (lw *lifeWalk) carrierOf(e ast.Expr) *checkout {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		if obj := lw.tp.info.Uses[v]; obj != nil {
			return lw.carriers[obj]
		}
	case *ast.SliceExpr:
		return lw.carrierOf(v.X)
	case *ast.SelectorExpr:
		if base := lw.carrierOf(v.X); base != nil && base.isBox {
			return base.fields[v.Sel.Name]
		}
	}
	return nil
}

// markOf resolves a Release argument to its mark.
func (lw *lifeWalk) markOf(e ast.Expr) *markRec {
	if id, ok := unparen(e).(*ast.Ident); ok {
		if obj := lw.tp.info.Uses[id]; obj != nil {
			return lw.marks[obj]
		}
	}
	return nil
}

// useCheck fires on any use of a checkout: use-after-release and
// cross-goroutine use.
func (lw *lifeWalk) useCheck(co *checkout, at ast.Node) {
	if co == nil {
		return
	}
	if co.released {
		lw.refuse(co, at, "used after "+co.releasedBy+": the memory has been reclaimed")
		return
	}
	if co.goBody != lw.curGo() {
		lw.refuse(co, at, "used on a different worker goroutine than the one that owns it")
	}
}

// readCheck is useCheck plus the AllocUninit read-before-write
// subrule, for element reads.
func (lw *lifeWalk) readCheck(co *checkout, at ast.Node) {
	if co == nil {
		return
	}
	lw.useCheck(co, at)
	if co.class != LifeRefused && co.uninit && !co.written {
		lw.refuse(co, at, "read before first write: AllocUninit memory holds garbage from earlier generations")
	}
}

// eval evaluates an expression for its lifetime effects and returns
// what it aliases.
func (lw *lifeWalk) eval(e ast.Expr) *valDesc {
	switch v := unparen(e).(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := lw.tp.info.Uses[v]
		if obj == nil {
			return nil
		}
		if co := lw.carriers[obj]; co != nil {
			// Mentioning a released carrier is already a use.
			lw.useCheck(co, v)
			return &valDesc{co: co, held: lw.holders[obj]}
		}
		if hs := lw.holders[obj]; hs != nil {
			return &valDesc{held: hs}
		}
		if mr := lw.marks[obj]; mr != nil {
			return &valDesc{mark: mr}
		}
		if ar := lw.arenas[obj]; ar != nil {
			return &valDesc{ar: ar}
		}
		return nil
	case *ast.CallExpr:
		return lw.call(v)
	case *ast.SliceExpr:
		lw.eval(v.Low)
		lw.eval(v.High)
		lw.eval(v.Max)
		return lw.eval(v.X) // slicing aliases; neutral for uninit
	case *ast.IndexExpr:
		d := lw.eval(v.X)
		lw.eval(v.Index)
		if d != nil && d.co != nil {
			lw.readCheck(d.co, v)
			return nil // an element value, not the carrier
		}
		return nil
	case *ast.IndexListExpr:
		return lw.eval(v.X)
	case *ast.SelectorExpr:
		if co := lw.carrierOf(v); co != nil {
			return &valDesc{co: co}
		}
		lw.eval(v.X)
		return nil
	case *ast.UnaryExpr:
		return lw.eval(v.X) // &composite passes holders through
	case *ast.StarExpr:
		lw.eval(v.X)
		return nil
	case *ast.BinaryExpr:
		lw.eval(v.X)
		lw.eval(v.Y)
		return nil
	case *ast.CompositeLit:
		var held []*checkout
		for _, elt := range v.Elts {
			ex := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				ex = kv.Value
			}
			d := lw.eval(ex)
			held = append(held, d.all()...)
		}
		if len(held) > 0 {
			return &valDesc{held: held}
		}
		return nil
	case *ast.TypeAssertExpr:
		return lw.eval(v.X)
	case *ast.FuncLit:
		// Deferred: walked when handed to a call or invoked.
		return nil
	}
	return nil
}

func (lw *lifeWalk) curGo() *ast.BlockStmt {
	if len(lw.goStack) > 0 {
		return lw.goStack[len(lw.goStack)-1]
	}
	return nil
}

// ---------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------

// call classifies one call's lifetime effects: the arena API itself,
// builtins, substrate contracts, summarized in-module helpers, and
// dynamic callees.
func (lw *lifeWalk) call(call *ast.CallExpr) *valDesc {
	// Arena package API.
	if pathStr, name, isPkg := callTarget(lw.f, call); isPkg && isPath(pathStr, arenaPath) {
		return lw.arenaCall(call, name)
	}
	// Arena methods: Mark / Release / Reset.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && isArenaExpr(lw.tp, sel.X) {
		return lw.arenaMethod(call, sel)
	}
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := lw.tp.info.Uses[id].(*types.Builtin); isB {
			return lw.builtin(call, id.Name)
		}
	}

	fn, delegated := calleeOfTyped(lw.tp, call)

	// Walk closure arguments at the call (first reference), under the
	// region the call creates if this argument is its body.
	for _, arg := range call.Args {
		if lit := lw.resolveLitArg(arg); lit != nil {
			lw.walkLit(lit)
		}
	}

	// Receiver + arguments that alias or hold checkouts.
	type carg struct {
		expr ast.Expr
		d    *valDesc
	}
	var cargs []carg
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if d := lw.evalQuiet(sel.X); d != nil && len(d.all()) > 0 {
			cargs = append(cargs, carg{sel.X, d})
		}
	}
	for _, arg := range call.Args {
		if lw.resolveLitArg(arg) != nil {
			continue
		}
		d := lw.eval(arg)
		if d != nil && len(d.all()) > 0 {
			cargs = append(cargs, carg{arg, d})
		}
	}
	if len(cargs) == 0 {
		// Direct invocation of a named closure with no tracked args.
		if delegated {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if obj := lw.tp.info.Uses[id]; obj != nil {
					lw.walkLit(lw.litOf[obj])
				}
			}
		}
		return nil
	}

	fill := func() {
		for _, ca := range cargs {
			for _, co := range ca.d.all() {
				fillCheckout(co)
			}
		}
	}
	// aliasRet: a slice-returning call on a single carrier argument
	// returns an alias of it (EnsureLen, RowInto).
	aliasRet := func() *valDesc {
		if tv, ok := lw.tp.info.Types[call]; ok && tv.Type != nil {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				for _, ca := range cargs {
					if ca.d.co != nil {
						return &valDesc{co: ca.d.co}
					}
				}
			}
		}
		return nil
	}

	switch {
	case fn != nil && lw.lp.isSubstrate(fn):
		// Substrate contract: core/sched/mq/specfor/arena primitives
		// are documented non-retaining — they use the memory for the
		// duration of the call (filling out-params) and let go.
		fill()
		return aliasRet()
	case fn != nil && fn.Pkg() != nil:
		if _, inMod := lw.lp.a.modRel(fn.Pkg().Path()); !inMod {
			// Outside the module (stdlib): knows nothing of arenas,
			// treated as use-without-retention.
			fill()
			return aliasRet()
		}
		// In-module helper: memoized escape summary, per argument.
		eff := lw.lp.escapeOf(fn)
		sig, _ := fn.Type().(*types.Signature)
		for _, ca := range cargs {
			pi := paramIndexOf(call, sig, ca.expr)
			ep := eff.param(pi)
			if ep != nil && ep.retains {
				for _, co := range ca.d.all() {
					lw.refuse(co, ca.expr, "retained by "+fn.Name()+": "+ep.why)
				}
				continue
			}
			for _, co := range ca.d.all() {
				fillCheckout(co)
			}
		}
		return aliasRet()
	case delegated:
		// Interface / func-value callee. A named out-param contract
		// (RowInto, WRow) fills and aliases; a named closure is walked
		// inline; anything else is an opaque hand-off.
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && lifeMethodContracts[sel.Sel.Name] {
			fill()
			return aliasRet()
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if obj := lw.tp.info.Uses[id]; obj != nil {
				if lit := lw.litOf[obj]; lit != nil {
					lw.walkLit(lit)
					fill()
					return aliasRet()
				}
				for _, ca := range cargs {
					for _, co := range ca.d.all() {
						lw.refuse(co, call, "handed to dynamic callee "+id.Name+": the pass cannot see where it goes")
					}
				}
				return nil
			}
		}
		for _, ca := range cargs {
			for _, co := range ca.d.all() {
				lw.refuse(co, call, "handed to a dynamic callee the pass cannot see through")
			}
		}
		return nil
	}
	fill()
	return aliasRet()
}

// fillCheckout marks a checkout written by a call, including the
// checkouts in transit through a box's fields: handing the box to a
// primitive (ForBody(0, n, 1, b)) is what fills them.
func fillCheckout(co *checkout) {
	co.written = true
	for _, h := range co.fields {
		h.written = true
	}
}

// evalQuiet resolves an expression's descriptor without firing read
// events (used for method receivers, which are handled as call args).
func (lw *lifeWalk) evalQuiet(e ast.Expr) *valDesc {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		if obj := lw.tp.info.Uses[v]; obj != nil {
			if co := lw.carriers[obj]; co != nil {
				return &valDesc{co: co, held: lw.holders[obj]}
			}
			if hs := lw.holders[obj]; hs != nil {
				return &valDesc{held: hs}
			}
		}
	case *ast.SliceExpr:
		return lw.evalQuiet(v.X)
	}
	return nil
}

// resolveLitArg resolves a call argument to a closure literal (inline
// or by name) so its body can be walked at this reference.
func (lw *lifeWalk) resolveLitArg(arg ast.Expr) *ast.FuncLit {
	switch v := unparen(arg).(type) {
	case *ast.FuncLit:
		return v
	case *ast.Ident:
		if obj := lw.tp.info.Uses[v]; obj != nil {
			return lw.litOf[obj]
		}
	}
	return nil
}

// paramIndexOf maps a call argument expression back to the callee
// parameter index (receiver = -1, variadic tail clamped).
func paramIndexOf(call *ast.CallExpr, sig *types.Signature, arg ast.Expr) int {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.X == arg {
		return escRecv
	}
	for i, a := range call.Args {
		if a == arg {
			if sig != nil && sig.Variadic() && i >= sig.Params().Len()-1 {
				return sig.Params().Len() - 1
			}
			return i
		}
	}
	return escRecv
}

// arenaCall handles the arena package-level API.
func (lw *lifeWalk) arenaCall(call *ast.CallExpr, name string) *valDesc {
	switch name {
	case "Alloc", "AllocUninit":
		if len(call.Args) < 1 {
			return nil
		}
		ar := lw.arenaOf(call.Args[0])
		lw.eval(call.Args[1])
		co := &checkout{
			origin: name, node: call, expr: "_", ar: ar,
			uninit:  name == "AllocUninit",
			written: name == "Alloc", // Alloc zeroes
		}
		if n := len(ar.stack); n > 0 {
			co.mark = ar.stack[n-1]
		}
		if n := len(lw.regionStack); n > 0 {
			co.regionBody = lw.regionStack[n-1]
		}
		co.goBody = lw.curGo()
		lw.cos = append(lw.cos, co)
		return &valDesc{co: co}
	case "AcquireBox":
		co := &checkout{origin: name, node: call, expr: "_", isBox: true, written: true}
		co.ar = &arenaRec{}
		if tv, ok := lw.tp.info.Types[call]; ok && tv.Type != nil {
			co.boxType = boxTypeName(tv.Type)
		}
		if n := len(lw.regionStack); n > 0 {
			co.regionBody = lw.regionStack[n-1]
		}
		co.goBody = lw.curGo()
		lw.cos = append(lw.cos, co)
		return &valDesc{co: co}
	case "ReleaseBox":
		if len(call.Args) != 2 {
			return nil
		}
		co := lw.carrierOf(call.Args[1])
		if co == nil || !co.isBox {
			return nil
		}
		for f, held := range co.fields {
			if held.class == "" && !held.released {
				lw.refuse(held, call, "still reachable through "+co.boxType+"."+f+" when the box was released for reuse")
			}
		}
		co.released, co.releasedBy = true, "ReleaseBox"
		settle(co, LifeReleased, "ReleaseBox")
		return nil
	case "Of":
		return &valDesc{ar: &arenaRec{}}
	case "Standalone":
		return &valDesc{ar: &arenaRec{standalone: true}}
	}
	for _, a := range call.Args {
		lw.eval(a)
	}
	return nil
}

// arenaMethod handles Mark / Release / Reset on an arena value.
func (lw *lifeWalk) arenaMethod(call *ast.CallExpr, sel *ast.SelectorExpr) *valDesc {
	ar := lw.arenaOf(sel.X)
	switch sel.Sel.Name {
	case "Mark":
		mr := &markRec{ar: ar, gen: ar.gen}
		ar.stack = append(ar.stack, mr)
		lw.markCount++
		return &valDesc{mark: mr}
	case "Release":
		if len(call.Args) != 1 {
			return nil
		}
		mr := lw.markOf(call.Args[0])
		if mr == nil {
			return nil
		}
		name := types.ExprString(call.Args[0])
		if mr.gen != mr.ar.gen {
			lw.violation(call, name, "Release of a stale mark: the arena was Reset while the checkout was live")
			return nil
		}
		if n := len(mr.ar.stack); n == 0 || mr.ar.stack[n-1] != mr {
			lw.violation(call, name, "mark released out of LIFO order: an inner mark is still live")
			return nil
		}
		mr.ar.stack = mr.ar.stack[:len(mr.ar.stack)-1]
		mr.released = true
		for _, co := range lw.cos {
			if co.mark == mr && !co.released {
				co.released, co.releasedBy = true, "Release"
				settle(co, LifeReleased, "")
			}
		}
		return nil
	case "Reset":
		ar.gen++
		for _, co := range lw.cos {
			if co.ar == ar && !co.released {
				co.released, co.releasedBy = true, "Reset"
				settle(co, LifeReleased, "reclaimed by Reset")
			}
		}
		return nil
	}
	return nil
}

// arenaOf resolves an arena expression to its tracked identity,
// synthesizing one for untracked shapes (parameters, fields).
func (lw *lifeWalk) arenaOf(e ast.Expr) *arenaRec {
	if id, ok := unparen(e).(*ast.Ident); ok {
		if obj := lw.tp.info.Uses[id]; obj != nil {
			if ar := lw.arenas[obj]; ar != nil {
				return ar
			}
			ar := &arenaRec{}
			lw.arenas[obj] = ar
			return ar
		}
	}
	if d := lw.eval(e); d != nil && d.ar != nil {
		return d.ar
	}
	return &arenaRec{}
}

// builtin handles the builtins that touch checkout memory.
func (lw *lifeWalk) builtin(call *ast.CallExpr, name string) *valDesc {
	switch name {
	case "clear":
		if len(call.Args) == 1 {
			if co := lw.carrierOf(call.Args[0]); co != nil {
				co.written = true
				return nil
			}
		}
	case "copy":
		if len(call.Args) == 2 {
			if src := lw.carrierOf(call.Args[1]); src != nil {
				lw.readCheck(src, call.Args[1])
			}
			if dst := lw.carrierOf(call.Args[0]); dst != nil {
				dst.written = true
			}
			return nil
		}
	case "append":
		if len(call.Args) >= 1 {
			if co := lw.carrierOf(call.Args[0]); co != nil {
				lw.readCheck(co, call.Args[0])
				for _, a := range call.Args[1:] {
					lw.eval(a)
				}
				return &valDesc{co: co}
			}
		}
	case "len", "cap":
		return nil // neutral: no element access
	}
	for _, a := range call.Args {
		lw.eval(a)
	}
	return nil
}

// ---------------------------------------------------------------------
// Finalize
// ---------------------------------------------------------------------

// finalize applies deferred releases and settles every checkout that
// reached the end of the function unclassified.
func (lw *lifeWalk) finalize() {
	for _, co := range lw.cos {
		if co.class == "" && co.mark != nil && co.mark.deferRel && !co.released {
			co.released, co.releasedBy = true, "Release"
			settle(co, LifeReleased, "deferred: covers panic edges")
		}
		if co.class == "" && co.isBox && co.deferRelB && !co.released {
			co.released, co.releasedBy = true, "ReleaseBox"
			settle(co, LifeReleased, "deferred ReleaseBox: covers panic edges")
		}
	}
	for _, co := range lw.cos {
		if co.class != "" {
			lw.emit(co)
			continue
		}
		switch {
		case co.workerConf != "":
			co.class, co.detail = LifeWorkerConfined, co.workerConf
		case co.ar != nil && co.ar.standalone && co.mark == nil:
			co.class, co.detail = LifeWorkerConfined, "standalone worker-lifetime arena"
		case co.regionBody != nil:
			co.class, co.detail = LifeRegionConfined, "never leaves the region body"
		case co.mark != nil:
			lw.refuse(co, co.node, "covering mark is never released on some path")
		default:
			lw.refuse(co, co.node, "checkout is neither released nor confined to a region")
		}
		lw.emit(co)
	}
}

func (lw *lifeWalk) emit(co *checkout) {
	p := lw.pos(co.node)
	lw.sites = append(lw.sites, LifeSite{
		File: lw.f.rel, Line: p.Line, Col: p.Column,
		Func: lw.fd.Name.Name, Origin: co.origin, Expr: co.expr,
		Class: co.class, Detail: co.detail, Reason: co.reason,
		Marker: co.marker,
	})
}
