// Package core is a type-checkable stand-in for the real substrate,
// mirroring the alias layout (core.Worker = sched.Worker) the races
// pass resolves against.
package core

import "fixture/internal/sched"

type Worker = sched.Worker

func Run(f func(w *Worker)) { f(&Worker{}) }

func ForRange(w *Worker, lo, hi, grain int, f func(i int)) {
	for i := lo; i < hi; i++ {
		f(i)
	}
}

func ForEachIdx[T any](w *Worker, xs []T, grain int, f func(i int, x *T)) {
	for i := range xs {
		f(i, &xs[i])
	}
}
