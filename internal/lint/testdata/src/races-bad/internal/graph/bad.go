// Negative write-certification fixtures: each function is one
// obligation away from a certifiable shape, and every shared write
// here must be refused. internal/graph is an enforced directory, so
// the unmarked refusals must also count as unexplained — only the
// //lint:scared site is exempt.
package graph

import (
	"sync"

	"fixture/internal/core"
)

// DroppedAtomic: a captured scalar updated with a plain read-modify-
// write where only an atomic would do.
func DroppedAtomic(w *core.Worker, n int) int64 {
	var total int64
	core.ForRange(w, 0, n, 0, func(i int) {
		total += int64(i)
	})
	return total
}

// EarlyUnlock: the lock is released before the write it was meant to
// guard.
func EarlyUnlock(w *core.Worker, n int) int {
	var mu sync.Mutex
	sum := 0
	core.ForRange(w, 0, n, 0, func(i int) {
		mu.Lock()
		mu.Unlock()
		sum += i
	})
	return sum
}

// AliasedOwner: the owner word starts as the task index but is
// conditionally rebound, so two tasks can collide on slot 0.
func AliasedOwner(w *core.Worker, out []int32, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		t := i
		if t > n/2 {
			t = 0
		}
		out[t] = int32(i)
	})
}

// Audited: a data-dependent scatter the analysis cannot prove, audited
// with a marker — refused, but not unexplained.
func Audited(w *core.Worker, out []int32, idx []int32, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		out[idx[i]] = int32(i) //lint:scared fixture: duplicate-free idx established by the generator
	})
}
