// Callgraph regression fixtures for the interprocedural write-effect
// engine: shapes that once slipped through callee resolution. Each
// pair is a shared/fresh variant — the shared one must be refused, the
// fresh one must stay clean — so a resolution gap shows up as a
// missing refusal, not a silently blessed write.
package bench

import "fixture/internal/core"

// fillG writes its slice parameter: the summary must survive generic
// instantiation.
func fillG[T any](dst []T, v T) {
	for i := range dst {
		dst[i] = v
	}
}

// freshG writes only memory it allocates.
func freshG[T any](n int, v T) []T {
	out := make([]T, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func GenericShared(w *core.Worker, xs []int, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		fillG(xs, i)
	})
}

func GenericFresh(w *core.Worker, res [][]int, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		res[i] = freshG(i, i)
	})
}

type counter struct{ n int64 }

func (c *counter) bump() { c.n++ }

// MethodShared: a concrete method call must resolve to its declaration
// and surface the receiver write.
func MethodShared(w *core.Worker, c *counter, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		c.bump()
	})
}

// MethodValue: binding the method first must not hide the write.
func MethodValue(w *core.Worker, c *counter, n int) {
	f := c.bump
	core.ForRange(w, 0, n, 0, func(i int) {
		f()
	})
}

// deferWrite performs its parameter write inside a defer.
func deferWrite(dst []int, i int) {
	defer func() { dst[i] = i }()
}

func DeferShared(w *core.Worker, xs []int, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		deferWrite(xs, i)
	})
}

// chain: the effect must propagate through an intermediate frame.
func chain(dst []int, i int) { leaf(dst, i) }

func leaf(dst []int, i int) { dst[i] = i }

func ChainShared(w *core.Worker, xs []int, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		chain(xs, i)
	})
}
