// The negative certification fixtures: offset shapes that look close
// to certifiable but break one obligation each. Every site here must
// come back "refused" — in particular none may be flagged
// elidable-check — and the DeclareSite entries below keep the lint
// rules themselves quiet so the certify golden isolates the prover.
package bench

import (
	"fixture/internal/core"
)

// refusePackMutated: a PackIndex result is no longer trustworthy after
// an element write.
func refusePackMutated(w *core.Worker, src []uint32) []uint32 {
	keep := core.PackIndex(w, len(src), func(i int) bool { return src[i] > 0 })
	keep[0] = 0
	out := make([]uint32, len(src))
	core.IndForEachUnchecked(w, out, keep, func(i int, slot *uint32) { *slot = 1 })
	return out
}

// refuseStrideZero: a complete fill whose affine form has stride 0 —
// every element gets the same value, so offsets repeat.
func refuseStrideZero(w *core.Worker, n int) []uint32 {
	dst := make([]uint32, n)
	off := make([]int32, n)
	core.ForRange(w, 0, n, 0, func(i int) { off[i] = 7 })
	core.IndForEachUnchecked(w, dst, off, func(i int, slot *uint32) { *slot = uint32(i) })
	return dst
}

// refuseSortedScan: scan output re-sorted before use — sorting keeps
// the values but the paired chunks no longer mean what the scan proved.
func refuseSortedScan(w *core.Worker, n int) []uint32 {
	offsets := make([]int32, n+1)
	core.ForRange(w, 0, n, 0, func(d int) {
		var t int32
		t++
		offsets[d+1] = t
	})
	total := core.ScanInclusive(w, offsets[1:])
	core.Sort(w, offsets)
	out := make([]uint32, total)
	core.IndChunksUnchecked(w, out, offsets, func(i int, chunk []uint32) {
		for j := range chunk {
			chunk[j] = uint32(i)
		}
	})
	return out
}

// refuseAliased: the offsets escape through a second slice header, so
// writes through the alias are invisible to the per-object analysis.
func refuseAliased(w *core.Worker, n int) []uint32 {
	dst := make([]uint32, n)
	off := make([]int32, n)
	core.ForRange(w, 0, n, 0, func(i int) { off[i] = int32(i) })
	alias := off
	alias[0] = int32(n - 1)
	core.IndForEachUnchecked(w, dst, off, func(i int, slot *uint32) { *slot = uint32(i) })
	return dst
}

// refuseSignedHelper: the size helper can return a negative sentinel,
// so its non-negativity summary fails and the prefix sum over its
// results cannot be proven monotone.
func refuseSignedHelper(w *core.Worker, rows [][]uint32) []byte {
	offsets := make([]int64, len(rows)+1)
	core.ForRange(w, 0, len(rows), 0, func(v int) {
		offsets[v+1] = int64(signedCost(rows[v]))
	})
	total := core.ScanInclusive(w, offsets[1:])
	out := make([]byte, total)
	core.IndChunksUnchecked(w, out, offsets, func(i int, chunk []byte) {
		for j := range chunk {
			chunk[j] = byte(i)
		}
	})
	return out
}

// signedCost returns -1 for empty rows — one signed return is enough
// to sink the whole summary.
func signedCost(row []uint32) int {
	if len(row) == 0 {
		return -1
	}
	return len(row)
}

func init() {
	core.DeclareSite("refuse", "pack offsets build", core.Block)
	core.DeclareSite("refuse", "affine-ish fills", core.Stride)
	core.DeclareSite("refuse", "offset sort", core.DC)
	core.DeclareSite("refuse", "refused scatter", core.SngInd)
	core.DeclareSite("refuse", "refused chunks", core.RngInd)
}
