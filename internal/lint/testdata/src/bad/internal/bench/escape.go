package bench

import (
	"fixture/internal/core"
)

func escapeKernel(w *core.Worker, done chan struct{}) {
	go func() {
		w.Join(func(w *core.Worker) {}, func(w *core.Worker) {})
		close(done)
	}()
	<-done
}
