package bench

import (
	"fixture/internal/core"
)

func staleKernel(w *core.Worker, dst []uint32) {
	core.ForRange(w, 0, len(dst), 0, func(i int) {
		dst[i] = 0
	})
}

func init() {
	core.DeclareSite("stale", "zero write", core.Stride)
	core.DeclareSite("stale", "chunk rewrite", core.RngInd)
}
