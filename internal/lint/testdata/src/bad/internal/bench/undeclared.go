// Package bench is the known-bad fixture: each file seeds one class of
// violation the linter must report with an exact position.
package bench

import (
	"fixture/internal/core"
)

// undeclaredKernel declares no sites at all: the Stride loop is an
// undeclared pattern and the unchecked scatter is uncontained scared
// code.
func undeclaredKernel(w *core.Worker, dst, src []uint32, pos []int) {
	core.ForRange(w, 0, len(src), 0, func(i int) {
		dst[i] = src[i]
	})
	core.IndForEachUnchecked(w, dst, pos, func(i int, slot *uint32) {
		*slot = src[i]
	})
}
