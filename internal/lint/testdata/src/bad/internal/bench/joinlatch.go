package bench

import (
	"fixture/internal/core"
)

// joinLatch hand-rolls a completion flag across the two branches of a
// Join: both branches write done, and the left branch also spins on it.
// The branches may run concurrently on different workers, so the shared
// scalar write is a race — the shape the scheduler's internal join
// frames exist to encapsulate behind an atomic latch.
func joinLatch(w *core.Worker, src []uint32) uint32 {
	done := false
	sum := uint32(0)
	w.Join(
		func(w *core.Worker) {
			for _, v := range src[:len(src)/2] {
				sum += v
			}
			done = true
		},
		func(w *core.Worker) {
			for _, v := range src[len(src)/2:] {
				sum += v
			}
			done = true
		},
	)
	_ = done
	return sum
}
