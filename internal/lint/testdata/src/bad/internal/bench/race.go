package bench

import (
	"fixture/internal/core"
)

func raceKernel(w *core.Worker, out, src []uint32) {
	total := uint32(0)
	core.ForRange(w, 0, len(src), 0, func(i int) {
		out[0] = src[i]
		total += src[i]
	})
	_ = total
}

func init() {
	core.DeclareSite("race", "copy write", core.Stride)
}
