package bench

//lint:scared
func markedWithoutReason() {}
