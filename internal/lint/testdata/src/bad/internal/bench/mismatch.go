package bench

import (
	"sync/atomic"

	"fixture/internal/core"
)

func mm2Kernel(flags []int32, i int) {
	atomic.StoreInt32(&flags[i], 1)
}

func init() {
	core.DeclareSite("mm2", "shared flag write", core.SngInd)
	core.DeclareSite("mm2", "shared flag write", core.AW)
}
