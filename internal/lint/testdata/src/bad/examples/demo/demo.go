// Demo seeds the unchecked-in-example violation: end-user examples must
// stay on the Fearless/Comfortable surface.
package main

import (
	"fixture/internal/core"
)

func main() {
	dst := make([]uint32, 4)
	pos := []int{3, 1, 0, 2}
	core.Run(func(w *core.Worker) {
		core.IndForEachUnchecked(w, dst, pos, func(i int, slot *uint32) {
			*slot = uint32(i)
		})
	})
}
