// Positive write-certification fixtures: one function per proof form
// the races pass accepts. Every shared write here must classify as
// worker-local, atomic, lock-guarded, or index-disjoint — a refusal in
// this file is a regression.
package bench

import (
	"sync"
	"sync/atomic"

	"fixture/internal/core"
)

// TaskAffine: the canonical disjoint scatter, out[i] owned by task i.
func TaskAffine(w *core.Worker, out []int32, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		out[i] = int32(i)
	})
}

// AtomicAdd: shared scalar updated only through sync/atomic.
func AtomicAdd(w *core.Worker, n int) int64 {
	var total atomic.Int64
	core.ForRange(w, 0, n, 0, func(i int) {
		total.Add(int64(i))
	})
	return total.Load()
}

// LockGuarded: shared accumulator under a held mutex.
func LockGuarded(w *core.Worker, n int) int {
	var mu sync.Mutex
	sum := 0
	core.ForRange(w, 0, n, 0, func(i int) {
		mu.Lock()
		sum += i
		mu.Unlock()
	})
	return sum
}

// HandedSlot: ForEachIdx hands each invocation its own element.
func HandedSlot(w *core.Worker, xs []int) {
	core.ForEachIdx(w, xs, 0, func(i int, x *int) {
		*x = i
	})
}

// BlockOwner: task b owns the block [b*bs, (b+1)*bs).
func BlockOwner(w *core.Worker, out []int, nb, bs int) {
	core.ForRange(w, 0, nb, 0, func(b int) {
		lo, hi := b*bs, (b+1)*bs
		for i := lo; i < hi; i++ {
			out[i] = i
		}
	})
}

// ResidueClass: task d owns the nb-slot segment starting at d*nb.
func ResidueClass(w *core.Worker, counts []int32, nd, nb int) {
	core.ForRange(w, 0, nd, 0, func(d int) {
		for b := 0; b < nb; b++ {
			counts[d*nb+b]++
		}
	})
}

// UniqueHandout: an atomic counter hands each write a fresh slot.
func UniqueHandout(w *core.Worker, out []int32, n int) int32 {
	var cnt atomic.Int32
	core.ForRange(w, 0, n, 0, func(i int) {
		if i%2 == 0 {
			out[cnt.Add(1)-1] = int32(i)
		}
	})
	return cnt.Load()
}

// WorkerOwned: each worker writes only its own slot of partial.
func WorkerOwned(w *core.Worker, partial []int) {
	w.For(0, len(partial), 1, func(w2 *core.Worker, lo, hi int) {
		partial[w2.ID()] += hi - lo
	})
}

// RangeOwner: a For body owns exactly its handed subrange.
func RangeOwner(w *core.Worker, out []int) {
	w.For(0, len(out), 1, func(w2 *core.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i
		}
	})
}

// JoinBranches: each Join branch writes a variable the other never
// touches.
func JoinBranches(w *core.Worker, xs []int) (int, int) {
	var a, b int
	mid := len(xs) / 2
	w.Join(
		func(w *core.Worker) { a = sum(xs[:mid]) },
		func(w *core.Worker) { b = sum(xs[mid:]) },
	)
	return a, b
}

// JoinHandout: the divide-and-conquer handout — each branch passes a
// callee a disjoint half of the same backing slice.
func JoinHandout(w *core.Worker, xs []int) {
	mid := len(xs) / 2
	w.Join(
		func(w *core.Worker) { fill(xs[:mid], 1) },
		func(w *core.Worker) { fill(xs[mid:], 2) },
	)
}

// CallsClean: a callee whose writes stay within memory it allocates is
// invisible to the region; the result lands in a task-affine slot.
func CallsClean(w *core.Worker, res [][]int, n int) {
	core.ForRange(w, 0, n, 0, func(i int) {
		res[i] = derive(i)
	})
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func fill(xs []int, v int) {
	for i := range xs {
		xs[i] = v
	}
}

func derive(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
