// Package sched is a type-checkable stand-in for the real scheduler:
// the races fixtures need go/types to resolve the Worker fork-method
// signatures (Join branches, For subranges, per-worker IDs). Bodies
// are sequential reference semantics; only the signatures matter.
package sched

type Worker struct{ id int }

func (w *Worker) ID() int { return w.id }

func (w *Worker) Join(fa, fb func(w *Worker)) { fa(w); fb(w) }

func (w *Worker) SpawnTask(f func(w *Worker)) { f(w) }

func (w *Worker) For(lo, hi, grain int, body func(w *Worker, lo, hi int)) {
	body(w, lo, hi)
}
