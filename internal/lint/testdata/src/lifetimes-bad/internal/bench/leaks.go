// Package bench holds the negative lifetimes fixtures: every shape one
// obligation away from confinement must be refused with a proof-chain
// reason. Only Audited carries a //lint:scared marker; every other
// refusal counts as unexplained.
package bench

import (
	"fixture/internal/arena"
)

var leaked []int32

var stash [][]int32

// UseAfterRelease reads the checkout after its covering mark was
// released: the memory has been rewound.
func UseAfterRelease(a *arena.Arena, n int) int32 {
	m := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	a.Release(m)
	return buf[0]
}

// LIFOViolation releases the outer mark while the inner one is still
// live; the inner mark's checkout is left covering reclaimed memory.
func LIFOViolation(a *arena.Arena, n int) {
	outer := a.Mark()
	inner := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	a.Release(outer)
	_ = inner
}

// CrossWorkerEscape hands the checkout to another goroutine: the
// spawning worker's arena discipline no longer covers it.
func CrossWorkerEscape(a *arena.Arena, n int, done chan struct{}) {
	m := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	go func() {
		buf[0] = 1
		done <- struct{}{}
	}()
	a.Release(m)
}

// ReturnedCheckout gives the caller a slice into memory the arena will
// rewind.
func ReturnedCheckout(a *arena.Arena, n int) []int32 {
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	return buf
}

// StaleMark Resets the arena while a mark is live: the Release is
// stale and the checkout's later use reads reclaimed memory.
func StaleMark(a *arena.Arena, n int) {
	m := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	a.Reset()
	a.Release(m)
	_ = buf
}

// UninitRead reads AllocUninit memory before anything wrote it:
// garbage from earlier generations.
func UninitRead(a *arena.Arena, n int) int32 {
	m := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	v := buf[0]
	a.Release(m)
	return v
}

// PackageEscape stores the checkout into a package-level variable that
// outlives every region.
func PackageEscape(a *arena.Arena, n int) {
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	leaked = buf
}

// ChannelEscape sends the checkout to a receiver that outlives it.
func ChannelEscape(a *arena.Arena, n int, ch chan []int32) {
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	ch <- buf
}

// HelperEscape hands the checkout to an in-module helper whose escape
// summary proves it retains the memory.
func HelperEscape(a *arena.Arena, n int) {
	m := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	retain(buf)
	a.Release(m)
}

func retain(xs []int32) {
	stash = append(stash, xs)
}

// Audited hands its checkout to a dynamic callback the pass cannot see
// through; the marker records why that is tolerated.
func Audited(a *arena.Arena, n int, sink func([]int32)) {
	m := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	//lint:scared fixture: sink is a test double that does not retain the slice
	sink(buf)
	a.Release(m)
}
