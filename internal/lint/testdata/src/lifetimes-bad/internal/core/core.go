// Package core is a type-checkable stand-in for the real substrate,
// mirroring the alias layout (core.Worker = sched.Worker) the
// lifetimes pass resolves against.
package core

import "fixture/internal/sched"

type Worker = sched.Worker

func ForRange(w *Worker, lo, hi, grain int, f func(i int)) {
	for i := lo; i < hi; i++ {
		f(i)
	}
}
