// Package arena is a type-checkable stand-in for the real arena
// substrate: the lifetimes fixtures need go/types to resolve the
// checkout API (Alloc/AllocUninit/AcquireBox, Mark/Release/Reset,
// Of/Standalone). Bodies are plain heap semantics; only the
// signatures and the package path suffix matter to the pass.
package arena

import "fixture/internal/sched"

type Arena struct{ gen int }

type Mark struct{ gen int }

func Of(w *sched.Worker) *Arena { return &Arena{} }

func Standalone() *Arena { return &Arena{} }

func (a *Arena) Mark() Mark { return Mark{gen: a.gen} }

func (a *Arena) Release(m Mark) {}

func (a *Arena) Reset() { a.gen++ }

func Alloc[T any](a *Arena, n int) []T { return make([]T, n) }

func AllocUninit[T any](a *Arena, n int) []T { return make([]T, n) }

func AcquireBox[T any](w *sched.Worker) *T { return new(T) }

func ReleaseBox[T any](w *sched.Worker, b *T) {}
