// Package bench holds the positive lifetimes fixtures: one function
// per proof form the pass accepts. Every checkout must land in a
// non-refused class, and every class and release discipline the pass
// knows must fire at least once.
package bench

import (
	"fixture/internal/arena"
	"fixture/internal/core"
)

// scanBox is per-worker reusable state; checkouts transit through its
// field and are cleared before the box goes back.
type scanBox struct {
	dst []int32
}

// ReleasedPlain: the canonical LIFO checkout — Mark, allocate, fill
// inside a region, Release.
func ReleasedPlain(w *core.Worker, a *arena.Arena, n int) {
	m := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	core.ForRange(w, 0, n, 1, func(i int) { buf[i] = int32(i) })
	a.Release(m)
}

// ReleasedDeferred: a deferred Release covers panic edges, proving
// release on all paths.
func ReleasedDeferred(w *core.Worker, a *arena.Arena, n int) {
	m := a.Mark()
	defer a.Release(m)
	buf := arena.AllocUninit[int32](a, n)
	core.ForRange(w, 0, n, 1, func(i int) { buf[i] = int32(i) })
}

// RegionConfined: the checkout is allocated inside the region body and
// never leaves it; the arena owner's Reset reclaims the memory.
func RegionConfined(w *core.Worker, a *arena.Arena, src, dst []int32) {
	core.ForRange(w, 0, len(src), 1, func(i int) {
		tmp := arena.AllocUninit[int32](a, 4)
		tmp[0] = src[i]
		dst[i] = tmp[0]
	})
}

// WorkerConfined: a standalone arena is owned by the goroutine that
// created it; its checkouts live exactly as long as the worker.
func WorkerConfined(n int, done chan struct{}) {
	go func() {
		a := arena.Standalone()
		buf := arena.AllocUninit[int32](a, n)
		for i := 0; i < n; i++ {
			buf[i] = int32(i)
		}
		done <- struct{}{}
	}()
}

// BoxTransit: a checkout transits through a local box's field, is
// cleared before ReleaseBox, and the box itself is a released
// checkout.
func BoxTransit(w *core.Worker, a *arena.Arena, n int) int32 {
	m := a.Mark()
	sums := arena.AllocUninit[int32](a, n)
	b := arena.AcquireBox[scanBox](w)
	b.dst = sums
	core.ForRange(w, 0, n, 1, func(i int) { b.dst[i] = int32(i) })
	var total int32
	for i := range sums {
		total += sums[i]
	}
	b.dst = nil
	arena.ReleaseBox(w, b)
	a.Release(m)
	return total
}

// FillBox: a helper allocating straight into a box-typed parameter's
// field — worker-confined because BoxTransit's clear proves the field
// is nil'ed before the box is reused.
func FillBox(w *core.Worker, a *arena.Arena, b *scanBox, n int) {
	b.dst = arena.AllocUninit[int32](a, n)
	core.ForRange(w, 0, n, 1, func(i int) { b.dst[i] = 0 })
}

// UninitFilled: AllocUninit memory read only after a full-slice fill —
// the read-before-write subrule must stay quiet.
func UninitFilled(a *arena.Arena, n int) int32 {
	m := a.Mark()
	buf := arena.AllocUninit[int32](a, n)
	clear(buf)
	v := buf[0]
	a.Release(m)
	return v
}

// HelperRead: a checkout handed to an in-module helper whose escape
// summary proves it retains nothing.
func HelperRead(a *arena.Arena, n int) int32 {
	m := a.Mark()
	data := arena.AllocUninit[int32](a, n)
	clear(data)
	total := sumOf(data)
	a.Release(m)
	return total
}

func sumOf(xs []int32) int32 {
	var s int32
	for i := range xs {
		s += xs[i]
	}
	return s
}
