// Package sched is a type-checkable stand-in for the real scheduler;
// the lifetimes fixtures only need the Worker type and the fork
// methods that create parallel regions.
package sched

type Worker struct{ id int }

func (w *Worker) ID() int { return w.id }

func (w *Worker) Join(fa, fb func(w *Worker)) { fa(w); fb(w) }

func (w *Worker) For(lo, hi, grain int, body func(w *Worker, lo, hi int)) {
	body(w, lo, hi)
}
