// bitmap.go mirrors the hybrid BFS frontier shapes (docs/GRAPH.md):
// a bitmap built by CAS bit-sets (AW helper next to its declaration),
// a word-owner MapReduce whose writes stay inside the task's 64-vertex
// word (RO plus plain stores at task-derived indexes), and the Block
// pack back to a sparse list.
package bench

import (
	"fixture/internal/core"
)

func bitmapFrontier(w *core.Worker, bm, next []uint64, frontier []int32, dist []uint32, out []int32) int {
	core.Fill(w, bm, 0)
	core.ForRange(w, 0, len(frontier), 0, func(i int) {
		core.SetBit(bm, frontier[i])
	})
	claimed := core.MapReduce(w, len(next), 0, func(wi int) int {
		var word uint64
		cnt := 0
		hi := wi*64 + 64
		if hi > len(dist) {
			hi = len(dist)
		}
		for v := wi * 64; v < hi; v++ {
			if core.TestBit(bm, int32(v)) {
				dist[v] = 1
				word |= 1 << uint(v-wi*64)
				cnt++
			}
		}
		next[wi] = word
		return cnt
	}, func(a, b int) int { return a + b })
	packed := core.PackIndexInto(w, len(bm)*64, func(i int) bool {
		return core.TestBit(bm, int32(i))
	}, out)
	return claimed + len(packed)
}

func init() {
	core.DeclareSite("bitmap", "frontier bit set", core.AW)
	core.DeclareSite("bitmap", "frontier scatter to bitmap", core.Stride)
	core.DeclareSite("bitmap", "word-owner dist/next writes", core.RO)
	core.DeclareSite("bitmap", "bitmap pack to sparse list", core.Block)
}
