// The positive certification fixtures: one function per proof form the
// offset-provenance prover accepts (docs/LINT.md "Certification").
// Every unchecked call here must come back "certified" and the checked
// scatter "elidable-check"; a refusal is a prover regression.
package bench

import (
	"fixture/internal/core"
)

// certPack — proof form P1: offsets are a core.PackIndex result used
// unmodified, and the target length equals the packed index space.
func certPack(w *core.Worker, src []uint32) []uint32 {
	keep := core.PackIndex(w, len(src), func(i int) bool { return src[i]&1 == 0 })
	out := make([]uint32, len(src))
	core.IndForEachUnchecked(w, out, keep, func(i int, slot *uint32) { *slot = 1 })
	return out
}

// certAffine — proof form P2: a complete affine fill off[i] = i over
// [0, len(off)) with stride 1. The checked call proves too, which the
// certifier reports as elidable-check.
func certAffine(w *core.Worker, n int) []uint32 {
	dst := make([]uint32, n)
	off := make([]int32, n)
	core.ForRange(w, 0, n, 0, func(i int) { off[i] = int32(i) })
	if err := core.IndForEach(w, dst, off, func(i int, slot *uint32) { *slot = uint32(i) }); err != nil {
		panic(err)
	}
	core.IndForEachUnchecked(w, dst, off, func(i int, slot *uint32) { *slot = uint32(i) + 1 })
	return dst
}

// certPermuted — proof form P3: an identity fill whose only subsequent
// mutation is a sort, so the slice stays a permutation of [0, n).
func certPermuted(w *core.Worker, n int) []uint32 {
	out := make([]uint32, n)
	perm := make([]int32, n)
	core.ForRange(w, 0, n, 0, func(i int) { perm[i] = int32(i) })
	core.SortBy(w, perm, func(a, b int32) bool { return a&7 < b&7 })
	core.IndForEachUnchecked(w, out, perm, func(i int, slot *uint32) { *slot = uint32(i) })
	return out
}

// certScan — proof form P4: chunk boundaries from an inclusive prefix
// sum over non-negative counts accumulated into a zero-initialized
// buffer, with the target sized by the scan's returned total.
func certScan(w *core.Worker, vals []uint32) []uint32 {
	const buckets = 8
	offsets := make([]int32, buckets+1)
	core.ForRange(w, 0, buckets, 0, func(d int) {
		var t int32
		for i := 0; i < len(vals); i++ {
			if int(vals[i]%buckets) == d {
				t++
			}
		}
		offsets[d+1] = t
	})
	total := core.ScanInclusive(w, offsets[1:])
	out := make([]uint32, total)
	core.IndChunksUnchecked(w, out, offsets, func(i int, chunk []uint32) {
		for j := range chunk {
			chunk[j] = uint32(i)
		}
	})
	return out
}

// certScanHelper — proof form P4 with the interprocedural
// non-negativity summary: the per-row byte sizes come from helpers the
// certifier summarizes as >= 0 for all inputs (rowCost -> itemWidth),
// and the offsets survive a post-scatter core.CopyInto because the
// copy source is read-only — the compressed-CSR encoder's exact shape.
func certScanHelper(w *core.Worker, rows [][]uint32) []byte {
	offsets := make([]int64, len(rows)+1)
	core.ForRange(w, 0, len(rows), 0, func(v int) {
		offsets[v+1] = int64(rowCost(rows[v]))
	})
	total := core.ScanInclusive(w, offsets[1:])
	out := make([]byte, total)
	core.IndChunksUnchecked(w, out, offsets, func(i int, chunk []byte) {
		for j := range chunk {
			chunk[j] = byte(i)
		}
	})
	saved := make([]int64, len(rows)+1)
	core.CopyInto(w, saved, offsets)
	return out
}

// rowCost is the summarized size helper: a width per element,
// accumulated with += from results that are themselves summarized
// non-negative one call deeper.
func rowCost(row []uint32) int {
	if len(row) == 0 {
		return 0
	}
	sz := itemWidth(uint64(row[0]))
	for _, u := range row[1:] {
		sz += itemWidth(uint64(u))
	}
	return sz
}

// itemWidth is the leaf helper: a constant seed mutated only by ++.
func itemWidth(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

func init() {
	core.DeclareSite("cert", "pack offsets build", core.Block)
	core.DeclareSite("cert", "affine fill", core.Stride)
	core.DeclareSite("cert", "permutation sort", core.DC)
	core.DeclareSite("cert", "certified scatter", core.SngInd)
	core.DeclareSite("cert", "certified chunks", core.RngInd)
}
