package bench

import "sync"

// mergeLocked folds partial results under a lock; the file declares no
// irregular site, so the marker is what contains the raw mutex.
//
//lint:scared fixture: lock-protected merge audited by hand
func mergeLocked(partials []int64) int64 {
	var mu sync.Mutex
	total := int64(0)
	for _, p := range partials {
		mu.Lock()
		total += p
		mu.Unlock()
	}
	return total
}
